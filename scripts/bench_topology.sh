#!/usr/bin/env bash
# bench_topology.sh — run the churn fleet over the hotspot-cell site
# graph under every placement policy at equal total capacity and emit
# a JSON snapshot of the placement metrics.
#
#	scripts/bench_topology.sh              # writes BENCH_5.json
#	scripts/bench_topology.sh out.json     # custom output path
#	BENCHTIME=1x scripts/bench_topology.sh # CI smoke budget
#
# The snapshot records, per placement policy: placement success ratio,
# QoE-weighted value (sum of value x locality-discounted QoE over
# served slice-epochs), acceptance ratio, peak per-site reserved RAN
# utilization, and inter-site RAN imbalance. Guardrails assert the
# subsystem's invariants: the placement ratio is a real number in
# [0, 1], no site's reserved RAN ever exceeds its local capacity, and
# the locality-aware policy beats first-fit packing on QoE-weighted
# value. A determinism gate reruns the topology fleet across worker
# counts and fails on any bit difference.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_5.json}"
benchtime="${BENCHTIME:-1x}"
pattern='^BenchmarkTopologyPlace(FirstFit|BestFit|Spread|Locality)$'

# Bit-identical across -workers with topology enabled: the dedicated
# determinism test compares worker counts 1 and 4 via reflect.DeepEqual
# over the full result (placements, site stats, imbalance, value).
go test -run '^TestFleetTopologyDeterministicAcrossWorkers$' ./internal/fleet/

raw="$(go test -run '^$' -bench "$pattern" -benchtime "$benchtime" .)"
echo "$raw"

echo "$raw" | awk -v go_version="$(go env GOVERSION)" -v benchtime="$benchtime" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^BenchmarkTopologyPlace/, "", name)
	iters[name] = $2
	ns[name] = $3
	# Custom metrics follow the "ns/op" unit as "value unit" pairs.
	for (i = 5; i + 1 <= NF; i += 2)
		metric[name, $(i + 1)] = $i
	order[n++] = name
}
END {
	printf "{\n"
	printf "  \"suite\": \"topology-placement\",\n"
	printf "  \"go\": \"%s\",\n", go_version
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"fleet\": {\"scenario\": \"churn\", \"topology\": \"hotspot-cell\", \"sites\": 5, \"horizon\": 60, \"seed\": 42},\n"
	printf "  \"placements\": [\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"placement_ratio\": %s, \"qoe_weighted_value\": %s, \"acceptance_ratio\": %s, \"peak_site_util\": %s, \"imbalance\": %s}%s\n", \
			name, iters[name], ns[name], \
			metric[name, "placement_ratio"] + 0, metric[name, "qoe_value"] + 0, \
			metric[name, "acceptance_ratio"] + 0, metric[name, "peak_site_util"] + 0, \
			metric[name, "imbalance"] + 0, \
			(i < n - 1 ? "," : "")
	}
	printf "  ]"
	if (metric["FirstFit", "qoe_value"] > 0)
		printf ",\n  \"locality_gain\": %.4f", \
			metric["Locality", "qoe_value"] / metric["FirstFit", "qoe_value"]
	printf "\n}\n"
}' > "$out"

echo "wrote $out"

# Guardrails: topology invariants and the placement ordering BENCH_5
# exists to track.
if command -v python3 >/dev/null 2>&1; then
	python3 - "$out" <<'EOF'
import json, math, sys
snap = json.load(open(sys.argv[1]))
pols = {p["name"]: p for p in snap["placements"]}
assert len(pols) >= 4, f"want 4 placement policies, got {list(pols)}"
for name, p in pols.items():
    pr = p["placement_ratio"]
    assert not math.isnan(pr) and 0 <= pr <= 1, f"{name}: placement ratio {pr} invalid"
    assert p["peak_site_util"] <= 1.0 + 1e-9, \
        f"{name}: site utilization {p['peak_site_util']} exceeds local capacity"
    assert p["imbalance"] >= 0, f"{name}: negative imbalance {p['imbalance']}"
ff, loc = pols["FirstFit"], pols["Locality"]
assert loc["qoe_weighted_value"] > ff["qoe_weighted_value"], \
    f"locality {loc['qoe_weighted_value']} did not beat first-fit {ff['qoe_weighted_value']}"
print(f"ok: placement ratio ff={ff['placement_ratio']:.3f} loc={loc['placement_ratio']:.3f}, "
      f"locality gain {snap['locality_gain']:.3f}x, per-site util <= 1")
EOF
fi
