#!/usr/bin/env bash
# bench_store.sh — measure cold vs. warm orchestration of a 16-slice
# single-class fleet through the artifact store and emit a JSON
# snapshot, seeding the warm-start trajectory across PRs.
#
#	scripts/bench_store.sh              # writes BENCH_3.json
#	scripts/bench_store.sh out.json     # custom output path
#	BENCHTIME=1x scripts/bench_store.sh # CI smoke budget
#
# The snapshot records end-to-end ns/op for the cold run (empty store:
# the in-run singleflight dedups 16 identical fingerprints to exactly
# one offline training) and the warm run (populated store: every policy
# restores from disk, zero training), plus the warm speedup and the
# per-run training/hit counts that verify train-once-per-class.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_3.json}"
benchtime="${BENCHTIME:-3x}"
pattern='^(BenchmarkStoreColdFleet|BenchmarkStoreWarmFleet)$'

raw="$(go test -run '^$' -bench "$pattern" -benchtime "$benchtime" .)"
echo "$raw"

echo "$raw" | awk -v go_version="$(go env GOVERSION)" -v benchtime="$benchtime" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	iters[name] = $2
	ns[name] = $3
	# Custom metrics follow the "ns/op" unit as "value unit" pairs.
	for (i = 5; i + 1 <= NF; i += 2)
		metric[name, $(i + 1)] = $i
	order[n++] = name
}
END {
	printf "{\n"
	printf "  \"suite\": \"artifact-store-fleet\",\n"
	printf "  \"go\": \"%s\",\n", go_version
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"fleet\": {\"slices\": 16, \"classes\": 1, \"intervals\": 2},\n"
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"trainings_per_run\": %s, \"store_hits_per_run\": %s}%s\n", \
			name, iters[name], ns[name], \
			metric[name, "trainings"] + 0, metric[name, "store_hits"] + 0, \
			(i < n - 1 ? "," : "")
	}
	printf "  ]"
	if (ns["StoreColdFleet"] > 0 && ns["StoreWarmFleet"] > 0)
		printf ",\n  \"warm_speedup\": %.2f", ns["StoreColdFleet"] / ns["StoreWarmFleet"]
	printf ",\n  \"cold_trainings_per_run\": %s", metric["StoreColdFleet", "trainings"] + 0
	printf ",\n  \"warm_trainings_per_run\": %s", metric["StoreWarmFleet", "trainings"] + 0
	printf "\n}\n"
}' > "$out"

echo "wrote $out"

# Guardrails: a dedup'd cold run must train each distinct fingerprint
# exactly once, and the warm run must be at least 5x faster end to end.
if command -v python3 >/dev/null 2>&1; then
	python3 - "$out" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
assert snap["cold_trainings_per_run"] == 1, f"cold run trained {snap['cold_trainings_per_run']} times, want 1"
assert snap["warm_trainings_per_run"] == 0, f"warm run trained {snap['warm_trainings_per_run']} times, want 0"
assert snap["warm_speedup"] >= 5, f"warm speedup {snap['warm_speedup']}x below 5x"
print(f"ok: warm speedup {snap['warm_speedup']}x, cold trainings 1, warm trainings 0")
EOF
fi
