#!/usr/bin/env bash
# bench_obs.sh — run the observability-overhead benchmarks and emit the
# BENCH_8 snapshot: the BENCH_7 one-shard-per-site workload with the
# full observability plane attached (metrics registry + discarded JSON
# decision trace + flight recorder + per-slice timelines) against its
# uninstrumented twin.
#
#	scripts/bench_obs.sh               # writes BENCH_8.json (best-of-3)
#	scripts/bench_obs.sh out.json      # custom output path
#	BENCHTIME=1x scripts/bench_obs.sh  # CI smoke budget
#	COUNT=5 scripts/bench_obs.sh       # best-of-5 (min ns per variant)
#
# Both variants run in ONE `go test` invocation so they share a binary,
# a warmed-up process, and interleaved repetitions — comparing two
# separate processes at smoke budgets measured scheduler luck, not
# instrumentation overhead. COUNT repetitions per variant are folded to
# the minimum-ns one before the ratio is taken.
#
# Guardrails: the metrics-on-vs-off parity tests must pass first (the
# observability plane is result-invariant by construction — a cheap
# counter is never bought with drift); NaN/zero throughput fails; any
# drift in the result fingerprint between the instrumented and
# uninstrumented runs fails; and the instrumented run must sustain at
# least ATLAS_OBS_OVERHEAD_FLOOR (default 0.9) of the uninstrumented
# arrivals/sec at real budgets (relaxed to 0.8 on the noisy 1x smoke:
# single-run iterations genuinely jitter by ~10-20% there, and a
# tighter floor flaked on noise rather than catching regressions).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_8.json}"
benchtime="${BENCHTIME:-1x}"
count="${COUNT:-3}"

# Result-invariance first: instrumented runs must replay uninstrumented
# runs bit-identically before any overhead number means anything.
go test -run 'TestFleetObsParity' ./internal/fleet

# One invocation, both variants: both benchmarks expose a shards=5
# sub-run, so one slash pattern selects exactly the one-shard-per-site
# workload from each.
raw="$(go test -run '^$' \
	-bench '^(BenchmarkFleetStepSharded|BenchmarkFleetStepInstrumented)$/^shards=5$' \
	-benchtime "$benchtime" -count "$count" .)"
echo "$raw"

printf '%s\n' "$raw" | awk -v go_version="$(go env GOVERSION)" -v benchtime="$benchtime" \
	-v count="$count" -v maxprocs="$(nproc)" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (name ~ /Instrumented/) name = "Instrumented"
	else name = "Uninstrumented"
	if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
	# Best-of-count: keep the lowest-noise (minimum ns) repetition and
	# the metrics that came with it.
	if (!(name in ns) || $3 + 0 < ns[name] + 0) {
		ns[name] = $3
		for (i = 5; i + 1 <= NF; i += 2) metric[name, $(i + 1)] = $i
	}
}
END {
	printf "{\n"
	printf "  \"suite\": \"observability-overhead\",\n"
	printf "  \"go\": \"%s\",\n", go_version
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"count\": %d,\n", count
	printf "  \"gomaxprocs\": %d,\n", maxprocs
	printf "  \"fleet\": {\"scenario\": \"churn\", \"topology\": \"hotspot-cell\", \"sites\": 5, \"shards\": 5, \"horizon\": 60, \"seed\": 42, \"placement\": \"locality\", \"admission\": \"first-fit\"},\n"
	printf "  \"instrumentation\": {\"metrics\": \"obs.Registry (full stack)\", \"trace\": \"slog JSON to io.Discard\", \"recorder\": \"obs.Recorder fleet series\", \"timelines\": \"obs.TimelineStore per-slice\"},\n"
	printf "  \"variants\": [\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns[name]
		printf ", \"arrivals_per_sec\": %s", metric[name, "arrivals/sec"]
		printf ", \"peak_live_slices\": %s", metric[name, "peak_live_slices"]
		printf ", \"qoe_value\": %s", metric[name, "qoe_value"]
		printf ", \"acceptance_ratio\": %s", metric[name, "acceptance_ratio"]
		printf ", \"placement_ratio\": %s", metric[name, "placement_ratio"]
		printf ", \"imbalance\": %s", metric[name, "imbalance"]
		printf "}%s\n", (i < n - 1 ? "," : "")
	}
	printf "  ]\n"
	printf "}\n"
}' > "$out"

echo "wrote $out"

python3 - "$out" "$benchtime" <<'EOF'
import json, math, os, sys

snap = json.load(open(sys.argv[1]))
smoke = sys.argv[2] == "1x"
variants = {v["name"]: v for v in snap["variants"]}
assert "Uninstrumented" in variants, "uninstrumented twin missing"
assert "Instrumented" in variants, "instrumented variant missing"

# Throughput must be a real positive number for both variants.
for name, v in variants.items():
    for key in ("arrivals_per_sec", "peak_live_slices"):
        assert not math.isnan(v[key]) and v[key] > 0, f"{name}: {key} = {v[key]}"

# Result-invariance guardrail: the instrumented run's fingerprint is
# identical — exactly, not approximately — to the uninstrumented twin.
# (The parity tests already compared full Results; this re-checks the
# actual benchmarked runs.)
ref = variants["Uninstrumented"]
ins = variants["Instrumented"]
for key in ("qoe_value", "acceptance_ratio", "placement_ratio", "imbalance", "peak_live_slices"):
    assert ins[key] == ref[key], f"Instrumented: {key} = {ins[key]} drifts from {ref[key]}"

# Overhead guardrail: counters are lock-free atomics, the trace is a
# formatting pass over already-made decisions, and the recorder is a
# handful of mutex-guarded ring appends per epoch, so the instrumented
# run must keep at least the floor fraction of uninstrumented
# throughput. The smoke floor is looser because 1x iterations are
# genuinely noisy, not because the overhead is larger there.
floor = float(os.environ.get("ATLAS_OBS_OVERHEAD_FLOOR", "0.8" if smoke else "0.9"))
ratio = ins["arrivals_per_sec"] / ref["arrivals_per_sec"]
assert ratio >= floor, f"instrumented throughput {ratio:.3f}x of uninstrumented, floor {floor}"

print(f"ok: instrumented sustains {ratio:.3f}x of uninstrumented arrivals/sec "
      f"({ins['arrivals_per_sec']:.2f} vs {ref['arrivals_per_sec']:.2f}), "
      f"zero fingerprint drift")
EOF
