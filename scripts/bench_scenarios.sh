#!/usr/bin/env bash
# bench_scenarios.sh — run one simulator episode benchmark per cataloged
# service class and emit a JSON snapshot of per-class episode throughput,
# seeding the workload-coverage trajectory across PRs.
#
#	scripts/bench_scenarios.sh            # writes BENCH_2.json
#	scripts/bench_scenarios.sh out.json   # custom output path
#	BENCHTIME=1x scripts/bench_scenarios.sh   # CI smoke budget
#
# The snapshot records ns/op and episodes/second for every service class
# in the scenario catalog (video analytics, teleoperation, IoT
# telemetry, bulk streaming, ...), so a regression in any class's episode
# pipeline is visible, not just the prototype's.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_2.json}"
benchtime="${BENCHTIME:-10x}"

raw="$(go test -run '^$' -bench '^BenchmarkScenarioEpisode$' -benchtime "$benchtime" .)"
echo "$raw"

echo "$raw" | awk -v go_version="$(go env GOVERSION)" -v benchtime="$benchtime" '
/^BenchmarkScenarioEpisode\// {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^BenchmarkScenarioEpisode\//, "", name)
	iters[name] = $2
	ns[name] = $3
	order[n++] = name
}
END {
	printf "{\n"
	printf "  \"suite\": \"scenario-episodes\",\n"
	printf "  \"go\": \"%s\",\n", go_version
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"classes\": [\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		eps = (ns[name] > 0) ? 1e9 / ns[name] : 0
		printf "    {\"class\": \"%s\", \"iters\": %s, \"ns_per_episode\": %s, \"episodes_per_sec\": %.2f}%s\n", \
			name, iters[name], ns[name], eps, (i < n - 1 ? "," : "")
	}
	printf "  ]\n"
	printf "}\n"
}' > "$out"

echo "wrote $out"
