#!/usr/bin/env bash
# bench_fleet.sh — run the churn-scenario fleet control plane under the
# first-fit and QoE-aware value-density admission policies at equal
# capacity and emit a JSON snapshot of the fleet metrics.
#
#	scripts/bench_fleet.sh              # writes BENCH_4.json
#	scripts/bench_fleet.sh out.json     # custom output path
#	BENCHTIME=1x scripts/bench_fleet.sh # CI smoke budget
#
# The snapshot records, per admission policy: acceptance ratio, peak
# bottleneck utilization, SLA-violation count, and QoE-weighted value
# (sum of value x delivered QoE over served slice-epochs). Guardrails
# assert the control plane's invariants: acceptance ratios are real
# numbers in [0, 1], reserved utilization never exceeds capacity, and
# the QoE-aware policy beats first-fit on QoE-weighted value.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_4.json}"
benchtime="${BENCHTIME:-1x}"
pattern='^(BenchmarkFleetFirstFit|BenchmarkFleetValueDensity)$'

raw="$(go test -run '^$' -bench "$pattern" -benchtime "$benchtime" .)"
echo "$raw"

echo "$raw" | awk -v go_version="$(go env GOVERSION)" -v benchtime="$benchtime" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^BenchmarkFleet/, "", name)
	iters[name] = $2
	ns[name] = $3
	# Custom metrics follow the "ns/op" unit as "value unit" pairs.
	for (i = 5; i + 1 <= NF; i += 2)
		metric[name, $(i + 1)] = $i
	order[n++] = name
}
END {
	printf "{\n"
	printf "  \"suite\": \"fleet-control-plane\",\n"
	printf "  \"go\": \"%s\",\n", go_version
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"fleet\": {\"scenario\": \"churn\", \"horizon\": 60, \"capacity_cells\": 1.5, \"seed\": 42},\n"
	printf "  \"policies\": [\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"acceptance_ratio\": %s, \"peak_util\": %s, \"sla_violations\": %s, \"qoe_weighted_value\": %s}%s\n", \
			name, iters[name], ns[name], \
			metric[name, "acceptance_ratio"] + 0, metric[name, "peak_util"] + 0, \
			metric[name, "sla_violations"] + 0, metric[name, "qoe_value"] + 0, \
			(i < n - 1 ? "," : "")
	}
	printf "  ]"
	if (metric["FirstFit", "qoe_value"] > 0)
		printf ",\n  \"value_density_gain\": %.4f", \
			metric["ValueDensity", "qoe_value"] / metric["FirstFit", "qoe_value"]
	printf "\n}\n"
}' > "$out"

echo "wrote $out"

# Guardrails: fleet invariants and the policy ordering BENCH_4 exists
# to track.
if command -v python3 >/dev/null 2>&1; then
	python3 - "$out" <<'EOF'
import json, math, sys
snap = json.load(open(sys.argv[1]))
pols = {p["name"]: p for p in snap["policies"]}
assert len(pols) >= 2, f"want >= 2 admission policies, got {list(pols)}"
for name, p in pols.items():
    ar = p["acceptance_ratio"]
    assert not math.isnan(ar) and 0 <= ar <= 1, f"{name}: acceptance ratio {ar} invalid"
    assert p["peak_util"] <= 1.0 + 1e-9, f"{name}: utilization {p['peak_util']} exceeds capacity"
ff, vd = pols["FirstFit"], pols["ValueDensity"]
assert vd["qoe_weighted_value"] > ff["qoe_weighted_value"], \
    f"value-density {vd['qoe_weighted_value']} did not beat first-fit {ff['qoe_weighted_value']}"
print(f"ok: acceptance ff={ff['acceptance_ratio']:.3f} vd={vd['acceptance_ratio']:.3f}, "
      f"value gain {snap['value_density_gain']:.3f}x, peak util <= 1")
EOF
fi
