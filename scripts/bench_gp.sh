#!/usr/bin/env bash
# bench_gp.sh — run the GP hot-path benchmarks and emit a JSON snapshot
# seeding the performance trajectory across PRs.
#
#	scripts/bench_gp.sh                 # writes BENCH_1.json
#	scripts/bench_gp.sh out.json        # custom output path
#	BENCHTIME=1x scripts/bench_gp.sh    # CI smoke budget
#
# The snapshot records ns/op for GP conditioning (full refit — the
# seed's only path — and the incremental rank-1 Cholesky extension),
# posterior prediction, and one simulator episode, plus the speedup of
# incremental conditioning over refitting from scratch.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_1.json}"
benchtime="${BENCHTIME:-10x}"
pattern='^(BenchmarkGPFit|BenchmarkGPPredict|BenchmarkGPObserveIncremental|BenchmarkGPObserveFullRefit|BenchmarkSimEpisode)$'

raw="$(go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" .)"
echo "$raw"

echo "$raw" | awk -v go_version="$(go env GOVERSION)" -v benchtime="$benchtime" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	iters[name] = $2
	ns[name] = $3
	# With -benchmem the value precedes each unit: "... 123 B/op 4 allocs/op".
	for (i = 4; i + 1 <= NF; i++) {
		if ($(i + 1) == "B/op") bytes[name] = $i
		if ($(i + 1) == "allocs/op") allocs[name] = $i
	}
	order[n++] = name
}
END {
	printf "{\n"
	printf "  \"suite\": \"gp-hot-paths\",\n"
	printf "  \"go\": \"%s\",\n", go_version
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			name, iters[name], ns[name], bytes[name] + 0, allocs[name] + 0, (i < n - 1 ? "," : "")
	}
	printf "  ]"
	if (ns["GPObserveFullRefit"] > 0 && ns["GPObserveIncremental"] > 0)
		printf ",\n  \"observe_speedup\": %.2f", \
			ns["GPObserveFullRefit"] / ns["GPObserveIncremental"]
	printf "\n}\n"
}' > "$out"

echo "wrote $out"
