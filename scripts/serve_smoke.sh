#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the slice-lifecycle daemon: build
# `atlas` with the race detector, start `atlas serve` against the
# hotspot-cell topology, drive one slice through the full lifecycle
# (request → activate → modify → deactivate → delete) over HTTP, SIGTERM
# the daemon, and assert
#
#   1. every API step lands in the expected lifecycle state,
#   2. the daemon exits 0 after a graceful drain (race detector clean),
#   3. the drain checkpoints every still-commissioned slice exactly
#      once (the parallel per-site tick must never double-checkpoint),
#   4. replaying the event log reproduces the API's final slice states.
#
#	scripts/serve_smoke.sh           # run with defaults
#	PORT=18099 scripts/serve_smoke.sh
#
# Training budgets are shrunk via -stage1-iters/-stage2-iters/-pool so
# the whole smoke stays in CI seconds; the lifecycle and the log replay
# are exactly the production paths.
set -euo pipefail
cd "$(dirname "$0")/.."

port="${PORT:-18099}"
base="http://127.0.0.1:${port}"
workdir="$(mktemp -d)"
log="${workdir}/events.jsonl"
trap 'kill "${pid:-}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -race -o "${workdir}/atlas" ./cmd/atlas

"${workdir}/atlas" serve \
	-addr "127.0.0.1:${port}" \
	-scenario churn \
	-topology hotspot-cell \
	-serve-log "$log" \
	-tick 150ms \
	-stage1-iters 10 -stage2-iters 12 -pool 100 \
	>"${workdir}/serve.out" 2>&1 &
pid=$!

for _ in $(seq 1 100); do
	curl -sf "${base}/healthz" >/dev/null 2>&1 && break
	kill -0 "$pid" 2>/dev/null || { echo "FAIL: daemon died during startup"; cat "${workdir}/serve.out"; exit 1; }
	sleep 0.3
done
curl -sf "${base}/healthz" >/dev/null || { echo "FAIL: daemon never became healthy"; cat "${workdir}/serve.out"; exit 1; }

# expect VERB PATH BODY FIELD WANT — one API call, one field assertion.
expect() {
	local verb="$1" path="$2" body="$3" field="$4" want="$5" got
	if [ -n "$body" ]; then
		got="$(curl -sf -X "$verb" "${base}${path}" -d "$body" | jq -r "$field")"
	else
		got="$(curl -sf -X "$verb" "${base}${path}" | jq -r "$field")"
	fi
	if [ "$got" != "$want" ]; then
		echo "FAIL: $verb $path: $field = $got, want $want"
		exit 1
	fi
	echo "ok: $verb $path → $field=$want"
}

# Lifecycle: the teleop slice trains (tiny budgets), admits onto the
# hotspot-cell graph, operates for a few ticks, resizes, and retires.
expect POST /slices '{"id":"smoke","class":"teleop","home":"hot"}' .state AVAILABLE
expect POST /slices/smoke/activate '' .state OPERATING
sleep 1
expect POST /slices/smoke/modify '{"traffic":2}' .traffic 2
epochs="$(curl -sf "${base}/slices/smoke" | jq -r .epochs)"
if [ "$epochs" -lt 1 ]; then
	echo "FAIL: slice served $epochs epochs, want >= 1"
	exit 1
fi
echo "ok: slice served $epochs epochs"
expect POST /slices/smoke/deactivate '' .state AVAILABLE
expect DELETE /slices/smoke '' .state DELETED

# A second slice left AVAILABLE makes the replay check non-trivial.
expect POST /slices '{"id":"smoke-2","class":"iot-telemetry"}' .state AVAILABLE

# A third slice activated on a cold site and left OPERATING at SIGTERM:
# the drain must checkpoint it (and smoke-2) exactly once, even though
# the reconciler's ticks step per-site shard groups in parallel.
expect POST /slices '{"id":"smoke-3","class":"teleop","home":"cold-1"}' .state AVAILABLE
expect POST /slices/smoke-3/activate '' .state OPERATING
sleep 0.5

events="$(curl -sf "${base}/events" | jq length)"
if [ "$events" -lt 8 ]; then
	echo "FAIL: event log has $events events, want >= 8"
	exit 1
fi
echo "ok: event log has $events events"

# Observability plane: /metrics must expose a well-formed Prometheus
# page carrying the full atlas vocabulary — online-scan and memo
# counters, admission decisions, shard-queue/barrier series, per-site
# ledger gauges, store traffic, and HTTP latencies.
curl -sf "${base}/metrics" >"${workdir}/metrics.txt"
series="$(grep -c '^atlas_' "${workdir}/metrics.txt" || true)"
if [ "$series" -lt 20 ]; then
	echo "FAIL: /metrics exposes $series atlas series, want >= 20"
	cat "${workdir}/metrics.txt"
	exit 1
fi
for fam in atlas_admission_decisions_total atlas_online_scans_total \
	atlas_online_memo_hits_total atlas_shard_events_total \
	atlas_shard_barrier_wait_seconds atlas_ledger_site_ran_utilization \
	atlas_store_hits_total atlas_http_request_seconds atlas_serve_epoch; do
	grep -q "^${fam}" "${workdir}/metrics.txt" || {
		echo "FAIL: /metrics missing family ${fam}"
		cat "${workdir}/metrics.txt"
		exit 1
	}
done
grep -q '^# TYPE atlas_admission_decisions_total counter$' "${workdir}/metrics.txt" || {
	echo "FAIL: /metrics missing TYPE metadata"
	exit 1
}
echo "ok: /metrics exposes $series atlas series"

# /stats must be one coherent JSON snapshot: serving epoch advanced,
# live census, engine decision counters, ledger utilization with
# per-site occupancy, and store traffic.
curl -sf "${base}/stats" >"${workdir}/stats.json"
jq -e '.epoch >= 1
	and .live >= 1
	and (.slices_by_state | type == "object")
	and .engine.arrivals >= 3
	and .engine.admitted >= 1
	and (.utilization.ran | type == "number")
	and (.sites | length) >= 1
	and (.store.hits + .store.misses) >= 0' \
	"${workdir}/stats.json" >/dev/null || {
	echo "FAIL: /stats malformed or incoherent:"
	cat "${workdir}/stats.json"
	exit 1
}
echo "ok: /stats is a coherent snapshot"

# Snapshot the API's view of every slice state, then drain.
curl -sf "${base}/slices" | jq -S 'map({key: .id, value: .state}) | from_entries' >"${workdir}/api-states.json"

kill -TERM "$pid"
if ! wait "$pid"; then
	echo "FAIL: daemon exited non-zero after SIGTERM"
	cat "${workdir}/serve.out"
	exit 1
fi
grep -q "drained cleanly" "${workdir}/serve.out" || { echo "FAIL: no clean-drain marker"; cat "${workdir}/serve.out"; exit 1; }
echo "ok: daemon drained cleanly (exit 0)"

# Exactly-once drain checkpoints: every slice still commissioned at
# SIGTERM must appear exactly once in the drain audit trail — the
# parallel per-site shard steps must never double-checkpoint a slice,
# and the deleted slice must not reappear.
for want in "smoke-2 AVAILABLE" "smoke-3 OPERATING"; do
	n="$(grep -c "^atlas serve: drain checkpoint ${want}\$" "${workdir}/serve.out" || true)"
	if [ "$n" -ne 1 ]; then
		echo "FAIL: drain checkpoint '${want}' appears ${n} times, want exactly 1"
		cat "${workdir}/serve.out"
		exit 1
	fi
done
if grep -q "^atlas serve: drain checkpoint smoke " "${workdir}/serve.out"; then
	echo "FAIL: deleted slice 'smoke' was checkpointed at drain"
	cat "${workdir}/serve.out"
	exit 1
fi
dups="$(grep "^atlas serve: drain checkpoint " "${workdir}/serve.out" | sort | uniq -d)"
if [ -n "$dups" ]; then
	echo "FAIL: duplicate drain checkpoints:"
	echo "$dups"
	exit 1
fi
echo "ok: drain checkpointed every live slice exactly once"

# Crash-recovery contract: folding the event log alone must reproduce
# exactly the final states the live API last reported.
"${workdir}/atlas" serve -replay "$log" | jq -S . >"${workdir}/replayed-states.json"
if ! diff -u "${workdir}/api-states.json" "${workdir}/replayed-states.json"; then
	echo "FAIL: replayed event log diverges from the API's final states"
	exit 1
fi
echo "ok: event log replays to identical final states"
echo "PASS: serve smoke"
