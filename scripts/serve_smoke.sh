#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the slice-lifecycle daemon: build
# `atlas` with the race detector, start `atlas serve` against the
# hotspot-cell topology, drive one slice through the full lifecycle
# (request → activate → modify → deactivate → delete) over HTTP, SIGTERM
# the daemon, and assert
#
#   1. every API step lands in the expected lifecycle state,
#   2. the daemon exits 0 after a graceful drain (race detector clean),
#   3. the drain checkpoints every still-commissioned slice exactly
#      once (the parallel per-site tick must never double-checkpoint),
#   4. replaying the event log reproduces the API's final slice states,
#   5. the flight recorder answers: /history carries sampled fleet
#      series, /slices/{id}/timeline cross-references every event-log
#      transition, /slo names every declared objective, and the drain
#      flushes per-slice timeline files plus the fsync'd -trace-file.
#
#	scripts/serve_smoke.sh           # run with defaults
#	PORT=18099 scripts/serve_smoke.sh
#	SMOKE_ARTIFACT_DIR=out scripts/serve_smoke.sh  # keep drained artifacts
#
# Training budgets are shrunk via -stage1-iters/-stage2-iters/-pool so
# the whole smoke stays in CI seconds; the lifecycle and the log replay
# are exactly the production paths.
set -euo pipefail
cd "$(dirname "$0")/.."

port="${PORT:-18099}"
base="http://127.0.0.1:${port}"
workdir="$(mktemp -d)"
log="${workdir}/events.jsonl"
trap 'kill "${pid:-}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -race -o "${workdir}/atlas" ./cmd/atlas

"${workdir}/atlas" serve \
	-addr "127.0.0.1:${port}" \
	-scenario churn \
	-topology hotspot-cell \
	-serve-log "$log" \
	-trace-file "${workdir}/trace.jsonl" \
	-tick 150ms \
	-stage1-iters 10 -stage2-iters 12 -pool 100 \
	>"${workdir}/serve.out" 2>&1 &
pid=$!

for _ in $(seq 1 100); do
	curl -sf "${base}/healthz" >/dev/null 2>&1 && break
	kill -0 "$pid" 2>/dev/null || { echo "FAIL: daemon died during startup"; cat "${workdir}/serve.out"; exit 1; }
	sleep 0.3
done
curl -sf "${base}/healthz" >/dev/null || { echo "FAIL: daemon never became healthy"; cat "${workdir}/serve.out"; exit 1; }

# expect VERB PATH BODY FIELD WANT — one API call, one field assertion.
expect() {
	local verb="$1" path="$2" body="$3" field="$4" want="$5" got
	if [ -n "$body" ]; then
		got="$(curl -sf -X "$verb" "${base}${path}" -d "$body" | jq -r "$field")"
	else
		got="$(curl -sf -X "$verb" "${base}${path}" | jq -r "$field")"
	fi
	if [ "$got" != "$want" ]; then
		echo "FAIL: $verb $path: $field = $got, want $want"
		exit 1
	fi
	echo "ok: $verb $path → $field=$want"
}

# Lifecycle: the teleop slice trains (tiny budgets), admits onto the
# hotspot-cell graph, operates for a few ticks, resizes, and retires.
expect POST /slices '{"id":"smoke","class":"teleop","home":"hot"}' .state AVAILABLE
expect POST /slices/smoke/activate '' .state OPERATING
sleep 1
expect POST /slices/smoke/modify '{"traffic":2}' .traffic 2
epochs="$(curl -sf "${base}/slices/smoke" | jq -r .epochs)"
if [ "$epochs" -lt 1 ]; then
	echo "FAIL: slice served $epochs epochs, want >= 1"
	exit 1
fi
echo "ok: slice served $epochs epochs"
expect POST /slices/smoke/deactivate '' .state AVAILABLE
expect DELETE /slices/smoke '' .state DELETED

# A second slice left AVAILABLE makes the replay check non-trivial.
expect POST /slices '{"id":"smoke-2","class":"iot-telemetry"}' .state AVAILABLE

# A third slice activated on a cold site and left OPERATING at SIGTERM:
# the drain must checkpoint it (and smoke-2) exactly once, even though
# the reconciler's ticks step per-site shard groups in parallel.
expect POST /slices '{"id":"smoke-3","class":"teleop","home":"cold-1"}' .state AVAILABLE
expect POST /slices/smoke-3/activate '' .state OPERATING
sleep 0.5

events="$(curl -sf "${base}/events" | jq length)"
if [ "$events" -lt 8 ]; then
	echo "FAIL: event log has $events events, want >= 8"
	exit 1
fi
echo "ok: event log has $events events"

# Observability plane: /metrics must expose a well-formed Prometheus
# page carrying the full atlas vocabulary — online-scan and memo
# counters, admission decisions, shard-queue/barrier series, per-site
# ledger gauges, store traffic, and HTTP latencies.
curl -sf "${base}/metrics" >"${workdir}/metrics.txt"
series="$(grep -c '^atlas_' "${workdir}/metrics.txt" || true)"
if [ "$series" -lt 20 ]; then
	echo "FAIL: /metrics exposes $series atlas series, want >= 20"
	cat "${workdir}/metrics.txt"
	exit 1
fi
for fam in atlas_admission_decisions_total atlas_online_scans_total \
	atlas_online_memo_hits_total atlas_shard_events_total \
	atlas_shard_barrier_wait_seconds atlas_ledger_site_ran_utilization \
	atlas_store_hits_total atlas_http_request_seconds atlas_serve_epoch; do
	grep -q "^${fam}" "${workdir}/metrics.txt" || {
		echo "FAIL: /metrics missing family ${fam}"
		cat "${workdir}/metrics.txt"
		exit 1
	}
done
grep -q '^# TYPE atlas_admission_decisions_total counter$' "${workdir}/metrics.txt" || {
	echo "FAIL: /metrics missing TYPE metadata"
	exit 1
}
echo "ok: /metrics exposes $series atlas series"

# /stats must be one coherent JSON snapshot: serving epoch advanced,
# live census, engine decision counters, ledger utilization with
# per-site occupancy, and store traffic.
curl -sf "${base}/stats" >"${workdir}/stats.json"
jq -e '.epoch >= 1
	and .live >= 1
	and (.slices_by_state | type == "object")
	and .engine.arrivals >= 3
	and .engine.admitted >= 1
	and (.utilization.ran | type == "number")
	and (.sites | length) >= 1
	and (.store.hits + .store.misses) >= 0' \
	"${workdir}/stats.json" >/dev/null || {
	echo "FAIL: /stats malformed or incoherent:"
	cat "${workdir}/stats.json"
	exit 1
}
echo "ok: /stats is a coherent snapshot"

# Flight recorder: /history must expose the sampled fleet series, every
# one carrying at least one point, with the available list matching the
# default (all-series) response; the ?series filter must restrict it.
curl -sf "${base}/history" >"${workdir}/history.json"
jq -e '(.series | length) >= 6
	and ((.available | sort) == ([.series[].name] | sort))
	and ([.series[] | select((.points | length) < 1)] | length) == 0
	and ([.series[].name] | index("live") != null)
	and ([.series[].name] | index("acceptance_ratio") != null)
	and ([.series[].name] | index("qoe_mean") != null)
	and ([.series[].name | select(startswith("site_ran_util:"))] | length) >= 1' \
	"${workdir}/history.json" >/dev/null || {
	echo "FAIL: /history malformed or missing series:"
	cat "${workdir}/history.json"
	exit 1
}
curl -sf "${base}/history?series=operating" | jq -e '.series | length == 1 and .[0].name == "operating"' >/dev/null || {
	echo "FAIL: /history?series= filter broken"
	exit 1
}
echo "ok: /history carries $(jq '.series | length' "${workdir}/history.json") sampled series"

# Per-slice timeline: every event-log transition for the smoke slice
# must appear exactly once (cross-referenced by log_seq), alongside the
# engine's decision entries and the per-epoch QoE samples.
ev_smoke="$(curl -sf "${base}/events" | jq '[.[] | select(.slice == "smoke")] | length')"
curl -sf "${base}/slices/smoke/timeline" >"${workdir}/timeline.json"
jq -e --argjson n "$ev_smoke" '.slice == "smoke"
	and ([.entries[] | select(.kind == "transition")] | length) == $n
	and ([.entries[] | select(.kind == "transition") | .log_seq] | unique | length) == $n
	and ([.entries[] | select(.kind == "decision")] | length) >= 2
	and ([.entries[] | select(.kind == "decision") | .seq] | all(. >= 1))
	and ([.entries[] | select(.kind == "sample")] | length) >= 1' \
	"${workdir}/timeline.json" >/dev/null || {
	echo "FAIL: /slices/smoke/timeline incomplete (event log has ${ev_smoke} transitions):"
	cat "${workdir}/timeline.json"
	exit 1
}
echo "ok: timeline cross-references all ${ev_smoke} event-log transitions"

# SLO report: every declared objective must be named — the admission
# p95 ceiling, the per-class QoE-violation ceilings for all four churn
# classes, and the placement-ratio floor (which has data on this
# topology run).
curl -sf "${base}/slo" >"${workdir}/slo.json"
jq -e '([.objectives[].name] | sort) == (["admission-p95-latency", "placement-ratio",
		"qoe-violation-rate:video-analytics", "qoe-violation-rate:teleop",
		"qoe-violation-rate:iot-telemetry", "qoe-violation-rate:embb-streaming"] | sort)
	and ([.objectives[] | select(.name == "admission-p95-latency")][0].status != "no_data")
	and ([.objectives[] | select(.name == "placement-ratio")][0].status != "no_data")
	and ([.objectives[] | select(.status == "breached")] | length) == .breached' \
	"${workdir}/slo.json" >/dev/null || {
	echo "FAIL: /slo report incomplete:"
	cat "${workdir}/slo.json"
	exit 1
}
echo "ok: /slo names every declared objective"

# Snapshot the API's view of every slice state, then drain.
curl -sf "${base}/slices" | jq -S 'map({key: .id, value: .state}) | from_entries' >"${workdir}/api-states.json"

kill -TERM "$pid"
if ! wait "$pid"; then
	echo "FAIL: daemon exited non-zero after SIGTERM"
	cat "${workdir}/serve.out"
	exit 1
fi
grep -q "drained cleanly" "${workdir}/serve.out" || { echo "FAIL: no clean-drain marker"; cat "${workdir}/serve.out"; exit 1; }
echo "ok: daemon drained cleanly (exit 0)"

# Exactly-once drain checkpoints: every slice still commissioned at
# SIGTERM must appear exactly once in the drain audit trail — the
# parallel per-site shard steps must never double-checkpoint a slice,
# and the deleted slice must not reappear.
for want in "smoke-2 AVAILABLE" "smoke-3 OPERATING"; do
	n="$(grep -c "^atlas serve: drain checkpoint ${want}\$" "${workdir}/serve.out" || true)"
	if [ "$n" -ne 1 ]; then
		echo "FAIL: drain checkpoint '${want}' appears ${n} times, want exactly 1"
		cat "${workdir}/serve.out"
		exit 1
	fi
done
if grep -q "^atlas serve: drain checkpoint smoke " "${workdir}/serve.out"; then
	echo "FAIL: deleted slice 'smoke' was checkpointed at drain"
	cat "${workdir}/serve.out"
	exit 1
fi
dups="$(grep "^atlas serve: drain checkpoint " "${workdir}/serve.out" | sort | uniq -d)"
if [ -n "$dups" ]; then
	echo "FAIL: duplicate drain checkpoints:"
	echo "$dups"
	exit 1
fi
echo "ok: drain checkpointed every live slice exactly once"

# The drain must have flushed one timeline file per tracked slice next
# to the event log, each parsing back to the slice it names with a
# drain entry for the still-commissioned ones.
for id in smoke smoke-2 smoke-3; do
	f="${workdir}/timelines/${id}.json"
	[ -s "$f" ] || { echo "FAIL: drained timeline ${f} missing"; ls -la "${workdir}/timelines" || true; exit 1; }
	jq -e --arg id "$id" '.slice == $id and (.entries | length) >= 1' "$f" >/dev/null || {
		echo "FAIL: drained timeline ${f} malformed"
		cat "$f"
		exit 1
	}
done
jq -e '[.entries[] | select(.event == "drain")] | length == 1' "${workdir}/timelines/smoke-3.json" >/dev/null || {
	echo "FAIL: drained timeline for smoke-3 lacks its drain entry"
	cat "${workdir}/timelines/smoke-3.json"
	exit 1
}
echo "ok: drain flushed per-slice timeline files"

# The -trace-file sink must hold the decision records, fsync'd by the
# drain: at least one admit per admitted smoke slice.
admits="$(grep -c '"event":"admit"' "${workdir}/trace.jsonl" || true)"
if [ "$admits" -lt 3 ]; then
	echo "FAIL: -trace-file has $admits admit records, want >= 3"
	cat "${workdir}/trace.jsonl"
	exit 1
fi
echo "ok: -trace-file holds $admits admit records"

# Crash-recovery contract: folding the event log alone must reproduce
# exactly the final states the live API last reported.
"${workdir}/atlas" serve -replay "$log" | jq -S . >"${workdir}/replayed-states.json"
if ! diff -u "${workdir}/api-states.json" "${workdir}/replayed-states.json"; then
	echo "FAIL: replayed event log diverges from the API's final states"
	exit 1
fi
echo "ok: event log replays to identical final states"

# Keep the drained flight-recorder artifacts for the CI workflow to
# upload (timeline files, decision trace, event log, daemon output).
if [ -n "${SMOKE_ARTIFACT_DIR:-}" ]; then
	mkdir -p "$SMOKE_ARTIFACT_DIR"
	cp -r "${workdir}/timelines" "$SMOKE_ARTIFACT_DIR/" 2>/dev/null || true
	cp "${workdir}/trace.jsonl" "$log" "${workdir}/serve.out" "$SMOKE_ARTIFACT_DIR/" 2>/dev/null || true
	echo "ok: drained artifacts copied to $SMOKE_ARTIFACT_DIR"
fi
echo "PASS: serve smoke"
