#!/usr/bin/env bash
# bench_hotpath.sh — run the batched-inference / zero-allocation hot-path
# benchmarks and emit the BENCH_6 sustained-throughput snapshot.
#
#	scripts/bench_hotpath.sh              # writes BENCH_6.json
#	scripts/bench_hotpath.sh out.json     # custom output path
#	BENCHTIME=1x scripts/bench_hotpath.sh # CI smoke budget
#
# Three layers are measured:
#   - internal/gp: the seed's sequential per-candidate posterior scan vs
#     PredictBatch (full posterior and the mean-only mode), at pool
#     sizes 64/256/1024 over a 100-point collection. The batched
#     benchmarks assert bit-identical outputs before timing, so a
#     speedup here is never bought with drift.
#   - online learner: the steady-state candidate scan through
#     CheapestFeasible — the per-interval hot path of every live slice —
#     whose B/op must stay near zero (scratch reuse).
#   - fleet: end-to-end sustained throughput under churn (slice-epochs
#     and arrivals per second).
#
# Guardrails (selection drift is separately re-checked by running the
# parity tests): NaN/zero throughput fails, the online-scan B/op
# ceiling fails, and at real budgets (not the 1x CI smoke, which is too
# noisy for ratios) the batched scan must beat the sequential baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_6.json}"
benchtime="${BENCHTIME:-20x}"

# Selection-drift guardrail: the batched paths must be bit-identical to
# the sequential ones before any number is worth snapshotting.
go test -run 'TestPredictBatchMatchesPredict|TestPredictBatchSnapshotRoundTrip|TestSolveLowerMultiInPlaceBitIdentical' ./internal/gp ./internal/mathx
go test -run 'TestScanPoolMatchesSequentialReference|TestCheapestFeasibleMatchesSequentialReference|TestScanPoolWorkerCountInvariant' ./internal/core

raw_gp="$(go test -run '^$' -bench '^BenchmarkCandidateScan(Sequential|Batched|BatchedMeanOnly)$' -benchmem -benchtime "$benchtime" ./internal/gp)"
echo "$raw_gp"
raw_sys="$(go test -run '^$' -bench '^(BenchmarkOnlineScanPool|BenchmarkFleetSustained)$' -benchmem -benchtime "$benchtime" .)"
echo "$raw_sys"

printf '%s\n%s\n' "$raw_gp" "$raw_sys" | awk -v go_version="$(go env GOVERSION)" -v benchtime="$benchtime" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	iters[name] = $2
	ns[name] = $3
	for (i = 4; i + 1 <= NF; i++) {
		u = $(i + 1)
		if (u == "B/op") bytes[name] = $i
		else if (u == "allocs/op") allocs[name] = $i
		else if (u ~ /\//) metric[name, u] = $i
	}
	order[n++] = name
}
END {
	printf "{\n"
	printf "  \"suite\": \"hot-path-throughput\",\n"
	printf "  \"go\": \"%s\",\n", go_version
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"fixture\": {\"gp_points\": 100, \"input_dim\": 9, \"fleet_scenario\": \"churn\", \"seed\": 42},\n"
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
			name, iters[name], ns[name], bytes[name] + 0, allocs[name] + 0
		if ((name, "scans/sec") in metric) printf ", \"scans_per_sec\": %s", metric[name, "scans/sec"]
		if ((name, "cands/sec") in metric) printf ", \"cands_per_sec\": %s", metric[name, "cands/sec"]
		if ((name, "arrivals/sec") in metric) printf ", \"arrivals_per_sec\": %s", metric[name, "arrivals/sec"]
		if ((name, "episodes/sec") in metric) printf ", \"episodes_per_sec\": %s", metric[name, "episodes/sec"]
		printf "}%s\n", (i < n - 1 ? "," : "")
	}
	printf "  ],\n"
	printf "  \"speedups\": {\n"
	sep = ""
	for (p = 0; p < 3; p++) {
		pool = (p == 0 ? 64 : p == 1 ? 256 : 1024)
		seq = ns["CandidateScanSequential/pool=" pool]
		bat = ns["CandidateScanBatched/pool=" pool]
		mo = ns["CandidateScanBatchedMeanOnly/pool=" pool]
		if (seq > 0 && bat > 0) {
			printf "%s    \"batched_pool_%d\": %.2f,\n    \"mean_only_pool_%d\": %.2f", \
				sep, pool, seq / bat, pool, seq / mo
			sep = ",\n"
		}
	}
	printf "\n  }\n"
	printf "}\n"
}' > "$out"

echo "wrote $out"

# Guardrails.
if command -v python3 >/dev/null 2>&1; then
	python3 - "$out" "$benchtime" <<'EOF'
import json, math, sys
snap = json.load(open(sys.argv[1]))
smoke = sys.argv[2] == "1x"
bench = {b["name"]: b for b in snap["benchmarks"]}

# Throughput must be a real positive number everywhere it is reported.
for name, b in bench.items():
    for key in ("scans_per_sec", "cands_per_sec", "arrivals_per_sec", "episodes_per_sec"):
        if key in b:
            v = b[key]
            assert not math.isnan(v) and v > 0, f"{name}: {key} = {v}"

# The batched scan allocates nothing on the steady-state path.
for pool in (64, 256, 1024):
    b = bench[f"CandidateScanBatched/pool={pool}"]
    assert b["bytes_per_op"] == 0, f"batched scan pool={pool} allocates {b['bytes_per_op']} B/op"

# The online learner's scan reuses its scratch: B/op stays far under the
# seed's ~1.8 KB-per-candidate footprint (ceiling leaves slack for the
# worker fan-out bookkeeping).
for pool in (64, 256):
    b = bench[f"OnlineScanPool/pool={pool}"]
    assert b["bytes_per_op"] <= 4096, f"online scan pool={pool}: {b['bytes_per_op']} B/op over ceiling 4096"

# At real budgets the batched posterior must beat the sequential seed
# baseline (the 1x CI smoke is too noisy for ratio guardrails).
if not smoke:
    for pool in (64, 256, 1024):
        s = snap["speedups"][f"batched_pool_{pool}"]
        assert s >= 1.0, f"batched pool={pool} speedup {s} < 1.0"
    s64 = snap["speedups"]["batched_pool_64"]
    assert s64 >= 2.0, f"pool=64 batched speedup {s64} < 2.0"

fleet = bench["FleetSustained"]
print(f"ok: speedups {snap['speedups']}, "
      f"fleet {fleet['episodes_per_sec']:.1f} episodes/sec {fleet['arrivals_per_sec']:.2f} arrivals/sec")
EOF
fi
