#!/usr/bin/env bash
# bench_fleet_long.sh — the nightly long-horizon fleet profile: 1000+
# control-plane epochs of sustained churn (hundreds of arrivals) at
# smoke training budgets, tracking control-plane overhead and
# steady-state acceptance. Gated behind the nightly schedule so PR CI
# stays fast.
#
#	scripts/bench_fleet_long.sh                     # writes BENCH_nightly.json
#	ATLAS_NIGHTLY_HORIZON=120 scripts/bench_fleet_long.sh  # local smoke
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_nightly.json}"
horizon="${ATLAS_NIGHTLY_HORIZON:-1000}"

raw="$(ATLAS_NIGHTLY_HORIZON="$horizon" go test -run '^$' -bench '^BenchmarkFleetLongHorizon$' -benchtime 1x -timeout 120m .)"
echo "$raw"

echo "$raw" | awk -v go_version="$(go env GOVERSION)" -v horizon="$horizon" '
/^BenchmarkFleetLongHorizon/ {
	ns = $3
	for (i = 5; i + 1 <= NF; i += 2)
		metric[$(i + 1)] = $i
}
END {
	printf "{\n"
	printf "  \"suite\": \"fleet-long-horizon\",\n"
	printf "  \"go\": \"%s\",\n", go_version
	printf "  \"fleet\": {\"scenario\": \"churn\", \"policy\": \"value-density\", \"horizon\": %s, \"capacity_cells\": 1.5, \"seed\": 42},\n", horizon
	printf "  \"ns_per_run\": %s,\n", ns
	printf "  \"arrivals\": %s,\n", metric["arrivals"] + 0
	printf "  \"acceptance_ratio\": %s,\n", metric["acceptance_ratio"] + 0
	printf "  \"qoe_weighted_value\": %s,\n", metric["qoe_value"] + 0
	printf "  \"downscales\": %s,\n", metric["downscales"] + 0
	printf "  \"peak_util\": %s\n", metric["peak_util"] + 0
	printf "}\n"
}' > "$out"

echo "wrote $out"

# Guardrails: sustained churn must keep the control-plane invariants.
if command -v python3 >/dev/null 2>&1; then
	python3 - "$out" "$horizon" <<'EOF'
import json, math, sys
snap = json.load(open(sys.argv[1]))
horizon = int(sys.argv[2])
ar = snap["acceptance_ratio"]
assert not math.isnan(ar) and 0 < ar <= 1, f"acceptance ratio {ar} invalid"
assert snap["peak_util"] <= 1.0 + 1e-9, f"utilization {snap['peak_util']} exceeds capacity"
# ~0.36 arrivals/epoch on the churn scenario: a full-length nightly run
# must see hundreds of arrivals (scaled-down smoke runs proportionally).
assert snap["arrivals"] >= 0.2 * horizon, \
    f"only {snap['arrivals']} arrivals over {horizon} epochs"
assert snap["qoe_weighted_value"] > 0, "no value earned under sustained churn"
print(f"ok: {snap['arrivals']:.0f} arrivals, acceptance {ar:.3f}, "
      f"peak util {snap['peak_util']:.3f}, {snap['ns_per_run']/1e9:.1f}s/run")
EOF
fi
