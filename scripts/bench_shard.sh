#!/usr/bin/env bash
# bench_shard.sh — run the site-sharded stepping benchmarks and emit the
# BENCH_7 sustained-throughput snapshot: arrivals handled per wall-clock
# second and peak concurrent slices on the BENCH_5 hotspot-cell/locality
# workload, for the legacy lockstep reference and the event-driven shard
# engine at one, two, and one-per-site shards.
#
#	scripts/bench_shard.sh               # writes BENCH_7.json
#	scripts/bench_shard.sh out.json      # custom output path
#	BENCHTIME=1x scripts/bench_shard.sh  # CI smoke budget
#	COUNT=3 scripts/bench_shard.sh       # best-of-3 (min ns per variant)
#
# The speedup headline compares the sharded engine against the ns/op the
# *committed* BENCH_5 snapshot recorded for the identical workload
# (TopologyPlaceLocality: same scenario, topology, seed, budgets) on the
# pre-sharding engine — `git show HEAD:BENCH_5.json`, so a CI job that
# regenerates BENCH_5.json in the workspace doesn't poison the baseline.
# The gain is algorithmic (the online stage's interval memo dedups
# bit-identical simulator queries), so it holds on serial hardware too;
# on multi-core hosts the shard fan-out adds wall-clock parallelism on
# top.
#
# Guardrails: the shard-parity property tests must pass first (bit-equal
# Result at every shard count — a speedup is never bought with drift);
# NaN/zero throughput fails; any drift in the result fingerprint across
# variants fails; sharded arrivals/sec below the live lockstep run
# (beyond serial-hardware noise slack) fails; and the one-shard-per-site
# engine must clear ATLAS_SHARD_SPEEDUP_FLOOR (default 1.5x) over the
# recorded baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_7.json}"
benchtime="${BENCHTIME:-1x}"
count="${COUNT:-1}"

# Determinism first: the sharded engine must replay the lockstep
# reference bit-identically before any throughput number means anything.
go test -run 'TestFleetShardParity' ./internal/fleet

# The committed pre-sharding baseline (falls back to the working tree
# outside a git checkout).
baseline_json="$(git show HEAD:BENCH_5.json 2>/dev/null || cat BENCH_5.json)"
baseline_ns="$(printf '%s' "$baseline_json" | python3 -c '
import json, sys
snap = json.load(sys.stdin)
print(next(p["ns_per_op"] for p in snap["placements"] if p["name"] == "Locality"))
')"

raw="$(go test -run '^$' -bench '^BenchmarkFleetStep(Lockstep|Sharded)$' -benchtime "$benchtime" -count "$count" .)"
echo "$raw"

printf '%s\n' "$raw" | awk -v go_version="$(go env GOVERSION)" -v benchtime="$benchtime" \
	-v count="$count" -v baseline_ns="$baseline_ns" -v maxprocs="$(nproc)" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^BenchmarkFleetStep/, "", name)
	if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
	# Best-of-count: keep the lowest-noise (minimum ns) repetition and
	# the metrics that came with it.
	if (!(name in ns) || $3 + 0 < ns[name] + 0) {
		ns[name] = $3
		for (i = 5; i + 1 <= NF; i += 2) metric[name, $(i + 1)] = $i
	}
}
END {
	printf "{\n"
	printf "  \"suite\": \"site-sharded-stepping\",\n"
	printf "  \"go\": \"%s\",\n", go_version
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"count\": %d,\n", count
	printf "  \"gomaxprocs\": %d,\n", maxprocs
	printf "  \"fleet\": {\"scenario\": \"churn\", \"topology\": \"hotspot-cell\", \"sites\": 5, \"horizon\": 60, \"seed\": 42, \"placement\": \"locality\", \"admission\": \"first-fit\"},\n"
	printf "  \"baseline\": {\"source\": \"BENCH_5.json (committed)\", \"benchmark\": \"TopologyPlaceLocality\", \"ns_per_op\": %s},\n", baseline_ns
	printf "  \"steppers\": [\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns[name]
		printf ", \"arrivals_per_sec\": %s", metric[name, "arrivals/sec"]
		printf ", \"peak_live_slices\": %s", metric[name, "peak_live_slices"]
		printf ", \"qoe_value\": %s", metric[name, "qoe_value"]
		printf ", \"acceptance_ratio\": %s", metric[name, "acceptance_ratio"]
		printf ", \"placement_ratio\": %s", metric[name, "placement_ratio"]
		printf ", \"imbalance\": %s", metric[name, "imbalance"]
		printf "}%s\n", (i < n - 1 ? "," : "")
	}
	printf "  ],\n"
	printf "  \"speedup_vs_baseline\": {\n"
	sep = ""
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "%s    \"%s\": %.2f", sep, name, baseline_ns / ns[name]
		sep = ",\n"
	}
	printf "\n  }\n"
	printf "}\n"
}' > "$out"

echo "wrote $out"

python3 - "$out" "$benchtime" <<'EOF'
import json, math, os, sys

snap = json.load(open(sys.argv[1]))
smoke = sys.argv[2] == "1x"
steppers = {s["name"]: s for s in snap["steppers"]}
assert "Lockstep" in steppers, "lockstep reference variant missing"
shard_names = [n for n in steppers if n.startswith("Sharded/")]
assert "Sharded/shards=5" in shard_names, "one-shard-per-site variant missing"

# Throughput must be a real positive number everywhere.
for name, s in steppers.items():
    for key in ("arrivals_per_sec", "peak_live_slices"):
        v = s[key]
        assert not math.isnan(v) and v > 0, f"{name}: {key} = {v}"

# Bit-drift guardrail: the sharding determinism property says the result
# fingerprint is identical — exactly, not approximately — for every
# stepper variant. (The parity tests already compared full Results; this
# re-checks the actual benchmarked runs.)
ref = steppers["Lockstep"]
for name, s in steppers.items():
    for key in ("qoe_value", "acceptance_ratio", "placement_ratio", "imbalance", "peak_live_slices"):
        assert s[key] == ref[key], f"{name}: {key} = {s[key]} drifts from lockstep {ref[key]}"

# Sharded must keep pace with the live lockstep run. On serial hardware
# (GOMAXPROCS=1) the two do identical work and differ only by noise, so
# the floor carries slack there; with real cores the sharded engine must
# not lose to lockstep.
floor = 0.85 if (snap["gomaxprocs"] <= 1 or smoke) else 1.0
for name in shard_names:
    r = steppers["Lockstep"]["ns_per_op"] / steppers[name]["ns_per_op"]
    assert r >= floor, f"{name}: {r:.2f}x vs live lockstep, floor {floor}"

# The headline: one shard per site clears the speedup floor over the
# committed pre-sharding baseline on the identical workload.
speed_floor = float(os.environ.get("ATLAS_SHARD_SPEEDUP_FLOOR", "1.5"))
s5 = snap["speedup_vs_baseline"]["Sharded/shards=5"]
assert s5 >= speed_floor, f"shards=5 speedup {s5:.2f}x < {speed_floor}x vs recorded baseline"

print(f"ok: shards=5 {s5:.2f}x vs recorded baseline, "
      f"{steppers['Sharded/shards=5']['arrivals_per_sec']:.2f} arrivals/sec, "
      f"peak {steppers['Sharded/shards=5']['peak_live_slices']:.0f} live slices, "
      f"zero drift across {len(steppers)} stepper variants")
EOF
