package atlas_test

import (
	"math/rand"
	"testing"

	"github.com/atlas-slicing/atlas"
)

// TestPublicAPIEndToEnd drives the whole system through the public
// package on tiny budgets: calibrate, train offline, adapt online. It is
// the integration test a downstream user's first program corresponds to.
func TestPublicAPIEndToEnd(t *testing.T) {
	real := atlas.NewRealNetwork()
	sim := atlas.NewSimulator()
	space := atlas.DefaultConfigSpace()
	sla := atlas.DefaultSLA()

	// Stage 1.
	dr := real.Collect(atlas.FullConfig(), 1, 1, 1)
	if len(dr) == 0 {
		t.Fatal("empty online collection")
	}
	copts := atlas.DefaultCalibratorOptions()
	copts.Iters, copts.Explore, copts.Batch, copts.Pool = 20, 6, 2, 150
	cal := atlas.NewCalibrator(sim, dr, copts)
	before := cal.Discrepancy(atlas.DefaultSimParams())
	calib := cal.Run(rand.New(rand.NewSource(2)))
	if calib.BestKL >= before {
		t.Fatalf("calibration regressed: %v -> %v", before, calib.BestKL)
	}
	aug := sim.WithParams(calib.BestParams)

	// Stage 2.
	oopts := atlas.DefaultOfflineOptions()
	oopts.Iters, oopts.Explore, oopts.Batch, oopts.Pool = 30, 10, 2, 150
	offline := atlas.NewOfflineTrainer(aug, oopts).Run(rand.New(rand.NewSource(3)))
	if offline.BestQoE < sla.Availability {
		t.Fatalf("offline optimum infeasible: %v", offline.BestQoE)
	}

	// Stage 3 through the generic runner.
	lopts := atlas.DefaultOnlineOptions()
	lopts.Pool, lopts.N = 150, 4
	learner := atlas.NewOnlineLearner(offline.Policy, aug, lopts, rand.New(rand.NewSource(4)))
	oracle := atlas.FindOracle(real, space, sla, 1, 60, 1, 5)
	run := atlas.RunOnline(learner, real, space, sla, 1, 6, oracle, 6)
	if len(run.QoEs) != 6 {
		t.Fatalf("online run logged %d intervals", len(run.QoEs))
	}
	if run.Regret.N != 6 {
		t.Fatal("regret not accumulated")
	}
}

// TestTypeAliasesInteroperate verifies that public aliases and internal
// types are the same types (zero-cost API surface).
func TestTypeAliasesInteroperate(t *testing.T) {
	var cfg atlas.Config
	cfg.BandwidthUL = 10
	space := atlas.DefaultConfigSpace()
	if u := space.Usage(cfg); u <= 0 {
		t.Fatalf("usage through aliases = %v", u)
	}
	sim := atlas.NewSimulator()
	tr := sim.Episode(atlas.FullConfig(), 1, 7)
	if tr.Frames == 0 {
		t.Fatal("no frames through alias path")
	}
	var env atlas.Env = atlas.NewRealNetwork()
	if env == nil {
		t.Fatal("real network does not satisfy Env")
	}
}
