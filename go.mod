module github.com/atlas-slicing/atlas

go 1.22
