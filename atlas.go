// Package atlas is the public API of the Atlas reproduction: an online
// network-slicing system that automates service configuration with
// three interrelated learning stages (CoNEXT '22, Liu, Choi & Han,
// "Atlas: Automate Online Service Configuration in Network Slicing").
//
//   - Stage 1 — learning-based simulator: Bayesian optimization with a
//     Bayesian neural network and parallel Thompson sampling searches the
//     simulator's parameters to minimize the KL divergence against real
//     measurements (Calibrator).
//   - Stage 2 — offline training: a Lagrangian adaptive penalty turns
//     the QoE-constrained minimum-usage problem into an unconstrained
//     one, optimized in the calibrated simulator (OfflineTrainer).
//   - Stage 3 — online learning: a Gaussian process learns only the
//     sim-to-real QoE residual while clipped randomized GP-UCB keeps
//     exploration conservative (OnlineLearner).
//
// The package also bundles the substrates the system runs on: a
// discrete-event LTE/backhaul/edge simulator (NewSimulator) and a
// real-network surrogate standing in for the paper's OAI/USRP testbed
// (NewRealNetwork).
//
// The smallest complete loop:
//
//	real := atlas.NewRealNetwork()
//	sim := atlas.NewSimulator()
//
//	// Stage 1: calibrate the simulator against real measurements.
//	dr := real.Collect(atlas.FullConfig(), 1, 3, 1)
//	cal := atlas.NewCalibrator(sim, dr, atlas.DefaultCalibratorOptions())
//	calib := cal.Run(rand.New(rand.NewSource(2)))
//	aug := sim.WithParams(calib.BestParams)
//
//	// Stage 2: train the configuration policy offline.
//	off := atlas.NewOfflineTrainer(aug, atlas.DefaultOfflineOptions()).
//		Run(rand.New(rand.NewSource(3)))
//
//	// Stage 3: adapt safely online.
//	learner := atlas.NewOnlineLearner(off.Policy, aug,
//		atlas.DefaultOnlineOptions(), rand.New(rand.NewSource(4)))
//	for it := 0; it < 100; it++ {
//		cfg := learner.Next(it, rng)
//		trace := real.Episode(cfg, 1, rng.Int63())
//		learner.Observe(it, cfg, atlas.DefaultConfigSpace().Usage(cfg),
//			trace.QoE(atlas.DefaultSLA()))
//	}
package atlas

import (
	"github.com/atlas-slicing/atlas/internal/baselines"
	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/realnet"
	"github.com/atlas-slicing/atlas/internal/scenarios"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/simnet/app"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/store"
)

// Domain vocabulary (see internal/slicing).
type (
	// Config is a slice service configuration (paper Table 2).
	Config = slicing.Config
	// ConfigSpace is the box of valid configurations with usage
	// accounting.
	ConfigSpace = slicing.ConfigSpace
	// SimParams are the searchable simulation parameters (Table 3).
	SimParams = slicing.SimParams
	// ParamSpace is the stage-1 search box with its trust region.
	ParamSpace = slicing.ParamSpace
	// SLA is a slice tenant's service-level agreement (threshold Y,
	// availability E).
	SLA = slicing.SLA
	// Trace is one configuration interval's observed outcome.
	Trace = slicing.Trace
	// Env is a queryable network environment.
	Env = slicing.Env
	// OnlinePolicy is a configuration-selection strategy for live
	// networks.
	OnlinePolicy = slicing.OnlinePolicy
	// Regret accumulates the paper's online regret metrics.
	Regret = slicing.Regret
)

// Service-class layer (see internal/slicing and internal/scenarios).
type (
	// ServiceClass bundles a named application profile, QoE model, SLA,
	// and traffic model — one tenant template.
	ServiceClass = slicing.ServiceClass
	// AppProfile describes an application workload (frame sizes, result
	// sizes, loading behavior, compute demand).
	AppProfile = app.Profile
	// QoEModel judges an episode trace, returning a QoE in [0, 1].
	QoEModel = slicing.QoEModel
	// AvailabilityQoE is the paper's latency-availability QoE.
	AvailabilityQoE = slicing.AvailabilityQoE
	// PercentileDeadlineQoE is the URLLC-style tail-deadline QoE.
	PercentileDeadlineQoE = slicing.PercentileDeadlineQoE
	// ThroughputFloorQoE is the eMBB-style goodput-floor QoE.
	ThroughputFloorQoE = slicing.ThroughputFloorQoE
	// TrafficModel shapes a slice's per-interval demand.
	TrafficModel = slicing.TrafficModel
	// ConstantTraffic is the paper's fixed-demand model.
	ConstantTraffic = slicing.ConstantTraffic
	// DiurnalTraffic swings demand sinusoidally over a period.
	DiurnalTraffic = slicing.DiurnalTraffic
	// BurstyTraffic draws Poisson demand per interval.
	BurstyTraffic = slicing.BurstyTraffic
	// ClassEnv is an environment that runs class-specific episodes.
	ClassEnv = slicing.ClassEnv
	// Scenario is a named multi-tenant workload from the catalog.
	Scenario = scenarios.Scenario
	// ClassMetrics aggregates one service class over an orchestrated
	// run.
	ClassMetrics = core.ClassMetrics
)

// The three stages (see internal/core).
type (
	// Calibrator is stage 1 (Algorithm 1).
	Calibrator = core.Calibrator
	// CalibratorOptions configures stage 1.
	CalibratorOptions = core.CalibratorOptions
	// CalibrationResult is stage 1's outcome.
	CalibrationResult = core.CalibrationResult
	// OfflineTrainer is stage 2 (Algorithm 2).
	OfflineTrainer = core.OfflineTrainer
	// OfflineOptions configures stage 2.
	OfflineOptions = core.OfflineOptions
	// OfflineResult is stage 2's outcome.
	OfflineResult = core.OfflineResult
	// Policy is the offline-trained configuration policy.
	Policy = core.Policy
	// OnlineLearner is stage 3 (Algorithm 3).
	OnlineLearner = core.OnlineLearner
	// OnlineOptions configures stage 3.
	OnlineOptions = core.OnlineOptions
	// System is the slice-lifecycle orchestrator (§10: admission,
	// removal, infrastructure changes, per-interval stepping).
	System = core.System
	// SliceInstance is one tenant's runtime state inside a System.
	SliceInstance = core.SliceInstance
	// Orchestrator runs N independent online-learning loops
	// concurrently over shared environment pools.
	Orchestrator = core.Orchestrator
	// OrchestratorOptions configures the concurrent control loop.
	OrchestratorOptions = core.OrchestratorOptions
	// OrchestratorResult is one orchestrated run's outcome.
	OrchestratorResult = core.OrchestratorResult
	// SliceSpec declares one tenant for the Orchestrator.
	SliceSpec = core.SliceSpec
	// SliceRun is one tenant's completed trajectory.
	SliceRun = core.SliceRun
	// EpochMetrics aggregates one interval across all slices.
	EpochMetrics = core.EpochMetrics
	// EnvPool hands out environments to concurrent slice loops.
	EnvPool = core.EnvPool

	// ArtifactStore is the content-addressed store that persists every
	// learned model (calibrations, offline policies, online residuals)
	// keyed by canonical fingerprints.
	ArtifactStore = store.Store
	// PolicySnapshot is the versioned serializable form of a Policy.
	PolicySnapshot = core.PolicySnapshot
	// OfflineArtifact is the store payload of one stage-2 training run.
	OfflineArtifact = core.OfflineArtifact
	// OnlineSnapshot is the serializable learned state of an
	// OnlineLearner (residual model + dual multiplier).
	OnlineSnapshot = core.OnlineSnapshot
	// OfflineOutcome reports how a stage-2 artifact was obtained
	// (trained, restored, diagnostic).
	OfflineOutcome = core.OfflineOutcome
)

// Substrates.
type (
	// Simulator is the discrete-event network simulator (the NS-3
	// analogue).
	Simulator = simnet.Simulator
	// RealNetwork is the real-network surrogate (the testbed
	// analogue).
	RealNetwork = realnet.Network
	// Oracle is the evaluation-only optimal policy reference.
	Oracle = baselines.Oracle
	// RunResult is one online-learning trajectory.
	RunResult = baselines.RunResult
)

// Constructors and defaults, re-exported for a one-import experience.
var (
	// NewSimulator returns the uncalibrated simulator.
	NewSimulator = simnet.NewDefault
	// NewSimulatorWith returns a simulator with explicit parameters.
	NewSimulatorWith = simnet.New
	// NewRealNetwork returns the real-network surrogate at 1 m.
	NewRealNetwork = realnet.New
	// NewRealNetworkAtDistance places the user at a distance in
	// metres.
	NewRealNetworkAtDistance = realnet.NewAtDistance

	// NewCalibrator builds stage 1.
	NewCalibrator = core.NewCalibrator
	// DefaultCalibratorOptions returns stage-1 defaults.
	DefaultCalibratorOptions = core.DefaultCalibratorOptions
	// NewOfflineTrainer builds stage 2.
	NewOfflineTrainer = core.NewOfflineTrainer
	// DefaultOfflineOptions returns stage-2 defaults.
	DefaultOfflineOptions = core.DefaultOfflineOptions
	// NewOnlineLearner builds stage 3.
	NewOnlineLearner = core.NewOnlineLearner
	// DefaultOnlineOptions returns stage-3 defaults.
	DefaultOnlineOptions = core.DefaultOnlineOptions
	// NewSystem builds the multi-slice lifecycle orchestrator.
	NewSystem = core.NewSystem
	// NewOrchestrator builds the concurrent multi-slice control loop.
	NewOrchestrator = core.NewOrchestrator
	// DefaultOrchestratorOptions returns orchestrator defaults.
	DefaultOrchestratorOptions = core.DefaultOrchestratorOptions
	// NewEnvPool builds a replica environment pool.
	NewEnvPool = core.NewEnvPool
	// SharedEnvPool wraps one concurrency-safe environment.
	SharedEnvPool = core.SharedEnvPool

	// DefaultConfigSpace returns the Table 2 configuration space.
	DefaultConfigSpace = slicing.DefaultConfigSpace
	// DefaultParamSpace returns the Table 3 search space.
	DefaultParamSpace = slicing.DefaultParamSpace
	// DefaultSimParams returns the original simulator parameters.
	DefaultSimParams = slicing.DefaultSimParams
	// DefaultSLA returns the evaluation SLA (Y=300 ms, E=0.9).
	DefaultSLA = slicing.DefaultSLA
	// FullConfig returns the all-resources measurement configuration.
	FullConfig = core.FullConfig

	// FindOracle locates the optimal policy for regret accounting.
	FindOracle = baselines.FindOracle
	// RunOnline drives any OnlinePolicy against an environment.
	RunOnline = baselines.RunOnline

	// DefaultServiceClass returns the paper's video-analytics class.
	DefaultServiceClass = slicing.DefaultServiceClass
	// EpisodeFor runs one episode under a service class when supported.
	EpisodeFor = slicing.EpisodeFor
	// GetScenario looks a scenario up in the catalog by name.
	GetScenario = scenarios.Get
	// ScenarioNames lists the catalog's scenario names.
	ScenarioNames = scenarios.Names
	// Scenarios returns every cataloged scenario.
	Scenarios = scenarios.All
	// ServiceClasses returns the distinct service classes across the
	// catalog.
	ServiceClasses = scenarios.Classes

	// OpenStore opens (or creates) an on-disk artifact store.
	OpenStore = store.Open
	// InMemoryStore returns a dirless artifact store (process-local
	// cache and dedup point).
	InMemoryStore = store.InMemory
	// SnapshotPolicy serializes a trained policy.
	SnapshotPolicy = core.SnapshotPolicy
	// PolicyFromSnapshot restores a policy for a service class.
	PolicyFromSnapshot = core.PolicyFromSnapshot
	// OfflineFingerprint computes the content address of a stage-2
	// training run (environment, class, SLA, traffic, budgets, seed).
	OfflineFingerprint = core.OfflineFingerprint
	// OfflineSeed derives the canonical training seed for a stage-2
	// run from a base seed and the run's seedless fingerprint.
	OfflineSeed = core.OfflineSeed
	// RunOfflineWithStore is the load-or-train path for stage 2.
	RunOfflineWithStore = core.RunOfflineWithStore
	// RunCalibrationWithStore is the load-or-search path for stage 1.
	RunCalibrationWithStore = core.RunCalibrationWithStore
)
