// Quickstart runs the whole Atlas loop end to end on small budgets:
// calibrate the simulator against real measurements (stage 1), train
// the configuration policy offline (stage 2), then learn safely online
// (stage 3). It finishes in about a minute on one core.
//
// Every learned artifact is persisted in a content-addressed store
// under ./atlas-artifacts, so running the program a second time
// warm-starts stages 1 and 2 from disk instead of retraining — the
// same behavior `atlas -store DIR -warm -save` exposes on the CLI.
package main

import (
	"fmt"
	"math/rand"

	"github.com/atlas-slicing/atlas"
)

func main() {
	real := atlas.NewRealNetwork()
	sim := atlas.NewSimulator()
	space := atlas.DefaultConfigSpace()
	sla := atlas.DefaultSLA()

	// The artifact store: calibrations and policies are keyed by a
	// canonical fingerprint of everything that determined them, so a
	// rerun with the same budgets and seeds hits instead of retraining.
	st, err := atlas.OpenStore("atlas-artifacts")
	if err != nil {
		fmt.Println("artifact store unavailable, running cold:", err)
	}

	// ---- Stage 1: learning-based simulator -------------------------
	// The operator logs slice latencies from the incumbent deployment;
	// that online collection D_r anchors the parameter search.
	dr := real.Collect(atlas.FullConfig(), 1, 3, 11)

	copts := atlas.DefaultCalibratorOptions()
	copts.Iters, copts.Explore = 80, 20
	cal := atlas.NewCalibrator(sim, dr, copts)
	before := cal.Discrepancy(atlas.DefaultSimParams())
	calib, _, calHit, _ := atlas.RunCalibrationWithStore(cal, 12, st, true, true)
	if calHit {
		fmt.Println("stage 1: calibration restored from the artifact store")
	}
	fmt.Printf("stage 1: discrepancy %.3f -> %.3f (param distance %.3f)\n",
		before, calib.BestKL, calib.BestDistance)

	aug := sim.WithParams(calib.BestParams)

	// ---- Stage 2: offline training ----------------------------------
	oopts := atlas.DefaultOfflineOptions()
	oopts.Iters, oopts.Explore = 120, 25
	oout := atlas.RunOfflineWithStore(aug, oopts, atlas.OfflineSeed(aug, 13, oopts), st, true, true)
	offline := oout.Result
	if oout.Hit {
		fmt.Printf("stage 2: policy %.12s restored from the artifact store\n", oout.Key)
	}
	fmt.Printf("stage 2: offline optimum %.1f%% usage at QoE %.3f\n",
		100*offline.BestUsage, offline.BestQoE)
	fmt.Printf("         config: %v\n", offline.BestConfig)

	// ---- Stage 3: online learning -----------------------------------
	lopts := atlas.DefaultOnlineOptions()
	lopts.Pool = 800
	learner := atlas.NewOnlineLearner(offline.Policy, aug, lopts, rand.New(rand.NewSource(14)))

	rng := rand.New(rand.NewSource(15))
	const intervals = 40
	for it := 0; it < intervals; it++ {
		cfg := learner.Next(it, rng)
		trace := real.Episode(cfg, 1, rng.Int63())
		usage, qoe := space.Usage(cfg), trace.QoE(sla)
		learner.Observe(it, cfg, usage, qoe)
		if it == 0 {
			fmt.Printf("stage 3: first online action %.1f%% usage, QoE %.3f "+
				"(the sim-to-real gap, before adaptation)\n", 100*usage, qoe)
		}
	}
	last := learner.QoEs[len(learner.QoEs)-8:]
	var q float64
	for _, v := range last {
		q += v
	}
	fmt.Printf("stage 3: after %d intervals QoE converges to %.3f (target %.1f)\n",
		intervals, q/float64(len(last)), sla.Availability)

	// The learner's residual GP snapshots too — System checkpoints it
	// every interval; here we just show the round trip.
	if snap, err := learner.Snapshot(); err == nil && st != nil {
		key := atlas.OfflineFingerprint(aug, oopts, atlas.OfflineSeed(aug, 13, oopts))
		_ = st.Put("online", key, snap)
		fmt.Printf("saved online residual checkpoint (%d observations); "+
			"rerun this program to warm-start stages 1+2 from %s\n",
			learner.Residuals(), st.Dir())
	}
}
