// Lifecycle demonstrates the full operator workflow through the
// System orchestrator (paper §10): calibrate the shared simulator once,
// admit slices with heterogeneous SLAs, step them through configuration
// intervals (each action flows through the four domain managers), handle
// an infrastructure change with warm-started re-calibration and policy
// fine-tuning, and finally remove a tenant.
package main

import (
	"fmt"

	"github.com/atlas-slicing/atlas"
)

func main() {
	sys := atlas.NewSystem(atlas.NewRealNetwork(), atlas.NewSimulator(), 99)
	// Small budgets so the example completes in about a minute.
	sys.CalOpts.Iters, sys.CalOpts.Explore = 60, 15
	sys.OffOpts.Iters, sys.OffOpts.Explore = 80, 20
	sys.OnOpts.Pool = 600

	cal, err := sys.Calibrate()
	if err != nil {
		panic(err)
	}
	fmt.Printf("shared calibration: discrepancy %.3f at parameter distance %.3f\n",
		cal.BestKL, cal.BestDistance)

	if _, err := sys.AdmitSlice("ar-headset", atlas.SLA{ThresholdMs: 300, Availability: 0.9}, 1); err != nil {
		panic(err)
	}
	if _, err := sys.AdmitSlice("telemetry", atlas.SLA{ThresholdMs: 500, Availability: 0.9}, 3); err != nil {
		panic(err)
	}
	fmt.Printf("admitted slices: %v\n", sys.Slices())

	for i := 0; i < 10; i++ {
		if err := sys.StepAll(); err != nil {
			panic(err)
		}
	}
	report(sys, "after 10 intervals")

	// The operator upgrades the backhaul: lower switch latency.
	fmt.Println("\n-- infrastructure change: faster backhaul --")
	sys.Sim.Profile.BackhaulDelayMs = 1.0
	if err := sys.InfrastructureChanged(40); err != nil {
		panic(err)
	}
	for i := 0; i < 10; i++ {
		if err := sys.StepAll(); err != nil {
			panic(err)
		}
	}
	report(sys, "after re-calibration + 10 more intervals")

	if err := sys.RemoveSlice("telemetry"); err != nil {
		panic(err)
	}
	fmt.Printf("\nremaining slices: %v\n", sys.Slices())

	inst, _ := sys.Slice("ar-headset")
	acts := inst.Domains.Audit()
	fmt.Printf("ar-headset domain actions recorded: %d (last: %s)\n",
		len(acts), acts[len(acts)-1].Detail)
}

func report(sys *atlas.System, label string) {
	fmt.Printf("%s:\n", label)
	for _, id := range sys.Slices() {
		inst, _ := sys.Slice(id)
		n := len(inst.QoEs)
		tail := 5
		if tail > n {
			tail = n
		}
		var usage, qoe float64
		for i := n - tail; i < n; i++ {
			usage += inst.Usages[i]
			qoe += inst.QoEs[i]
		}
		fmt.Printf("  %-12s usage %.1f%%  QoE %.3f (target %.1f)\n",
			id, 100*usage/float64(tail), qoe/float64(tail), inst.SLA.Availability)
	}
}
