// Multislice demonstrates the concurrent multi-slice orchestrator: one
// individualized Atlas instance per admitted slice, each with its own
// SLA, traffic profile, and learning state, sharing nothing but the
// physical infrastructure. Three heterogeneous tenants run side by
// side:
//
//   - an AR slice (tight 300 ms threshold, one user),
//   - a video-analytics slice (400 ms, two users),
//   - a bulk-telemetry slice (relaxed 500 ms, four users).
//
// Stage 1 is shared — the simulator models the infrastructure, not a
// tenant — while stages 2 and 3 run per tenant, scheduled concurrently
// over a bounded worker pool. Per-slice results are deterministic under
// a fixed seed at any worker count.
package main

import (
	"fmt"
	"math/rand"

	"github.com/atlas-slicing/atlas"
)

func main() {
	real := atlas.NewRealNetwork()
	sim := atlas.NewSimulator()

	// Stage 1 is shared: one calibration serves every slice (§10: "the
	// corresponding parts in the learning-based simulator will be
	// updated" only on infrastructure changes).
	dr := real.Collect(atlas.FullConfig(), 1, 3, 61)
	copts := atlas.DefaultCalibratorOptions()
	copts.Iters, copts.Explore = 80, 20
	calib := atlas.NewCalibrator(sim, dr, copts).Run(rand.New(rand.NewSource(62)))
	aug := sim.WithParams(calib.BestParams)
	fmt.Printf("shared stage 1: discrepancy %.3f at distance %.3f\n\n", calib.BestKL, calib.BestDistance)

	// Stages 2 and 3 are per-tenant: the orchestrator trains each
	// slice's offline policy on admission and runs every online loop
	// concurrently over the shared environment pools.
	specs := []atlas.SliceSpec{
		{ID: "ar-headset", SLA: atlas.SLA{ThresholdMs: 300, Availability: 0.9}, Traffic: 1, Train: true},
		{ID: "video-analytics", SLA: atlas.SLA{ThresholdMs: 400, Availability: 0.9}, Traffic: 2, Train: true},
		{ID: "bulk-telemetry", SLA: atlas.SLA{ThresholdMs: 500, Availability: 0.9}, Traffic: 4, Train: true},
	}

	const intervals = 30
	opts := atlas.DefaultOrchestratorOptions()
	opts.Intervals = intervals
	opts.Seed = 70
	opts.Online.Pool = 800
	opts.Offline.Iters, opts.Offline.Explore = 100, 20

	res := atlas.NewOrchestrator(real, aug, specs, opts).Run()

	tail := intervals / 4
	for _, sr := range res.Slices {
		var usage, qoe float64
		for j := intervals - tail; j < intervals; j++ {
			usage += sr.Usages[j]
			qoe += sr.QoEs[j]
		}
		fmt.Printf("%-16s traffic=%d Y=%.0fms: offline %.1f%% usage -> online %.1f%% usage, QoE %.3f (target %.1f)\n",
			sr.Spec.ID, sr.Spec.Traffic, sr.Spec.SLA.ThresholdMs,
			100*sr.Offline.BestUsage, 100*usage/float64(tail), qoe/float64(tail), sr.Spec.SLA.Availability)
	}
	fmt.Printf("\nQoE violations across the run: %d\n", res.TotalViolations())
}
