// Multislice demonstrates the scalability claim of the paper's §10: one
// individualized Atlas instance per admitted slice, each with its own
// SLA, traffic profile, and learning state, sharing nothing but the
// physical infrastructure. Three heterogeneous tenants run side by
// side:
//
//   - an AR slice (tight 300 ms threshold, one user),
//   - a video-analytics slice (400 ms, two users),
//   - a bulk-telemetry slice (relaxed 500 ms, four users).
//
// Because the prototype isolates slices in every domain, each instance
// trains and adapts independently; this example runs them sequentially
// and reports per-tenant outcomes.
package main

import (
	"fmt"
	"math/rand"

	"github.com/atlas-slicing/atlas"
)

type tenant struct {
	name    string
	sla     atlas.SLA
	traffic int
}

func main() {
	tenants := []tenant{
		{"ar-headset", atlas.SLA{ThresholdMs: 300, Availability: 0.9}, 1},
		{"video-analytics", atlas.SLA{ThresholdMs: 400, Availability: 0.9}, 2},
		{"bulk-telemetry", atlas.SLA{ThresholdMs: 500, Availability: 0.9}, 4},
	}

	real := atlas.NewRealNetwork()
	sim := atlas.NewSimulator()
	space := atlas.DefaultConfigSpace()

	// Stage 1 is shared: the simulator models the infrastructure, not a
	// tenant, so one calibration serves every slice (§10: "the
	// corresponding parts in the learning-based simulator will be
	// updated" only on infrastructure changes).
	dr := real.Collect(atlas.FullConfig(), 1, 3, 61)
	copts := atlas.DefaultCalibratorOptions()
	copts.Iters, copts.Explore = 80, 20
	calib := atlas.NewCalibrator(sim, dr, copts).Run(rand.New(rand.NewSource(62)))
	aug := sim.WithParams(calib.BestParams)
	fmt.Printf("shared stage 1: discrepancy %.3f at distance %.3f\n\n", calib.BestKL, calib.BestDistance)

	const intervals = 30
	for i, t := range tenants {
		// Stages 2 and 3 are per-tenant.
		oopts := atlas.DefaultOfflineOptions()
		oopts.SLA, oopts.Traffic = t.sla, t.traffic
		oopts.Iters, oopts.Explore = 100, 20
		offline := atlas.NewOfflineTrainer(aug, oopts).Run(rand.New(rand.NewSource(int64(70 + i))))

		lopts := atlas.DefaultOnlineOptions()
		lopts.Pool = 800
		learner := atlas.NewOnlineLearner(offline.Policy, aug, lopts, rand.New(rand.NewSource(int64(80+i))))

		oracle := atlas.FindOracle(real, space, t.sla, t.traffic, 250, 2, int64(90+i))
		run := atlas.RunOnline(learner, real, space, t.sla, t.traffic, intervals, oracle, int64(95+i))

		tail := intervals / 4
		var usage, qoe float64
		for j := intervals - tail; j < intervals; j++ {
			usage += run.Usages[j]
			qoe += run.QoEs[j]
		}
		fmt.Printf("%-16s traffic=%d Y=%.0fms: offline %.1f%% usage -> online %.1f%% usage, QoE %.3f (target %.1f)\n",
			t.name, t.traffic, t.sla.ThresholdMs,
			100*offline.BestUsage, 100*usage/float64(tail), qoe/float64(tail), t.sla.Availability)
	}
}
