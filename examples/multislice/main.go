// Multislice demonstrates the service-class layer on the concurrent
// multi-slice orchestrator: a mixed fleet expanded from the scenario
// catalog, where every tenant brings its own workload, QoE model, SLA,
// and traffic model —
//
//   - video analytics (the paper's prototype) under a diurnal demand
//     swing, judged by latency availability;
//   - URLLC-style teleoperation with small frames and light compute,
//     judged by the p95 latency against a hard deadline;
//   - IoT telemetry arriving in Poisson bursts;
//   - eMBB bulk streaming judged by delivered goodput against a floor.
//
// Stage 1 is shared — the simulator models the infrastructure, not a
// tenant — while stages 2 and 3 run per tenant over the class's own
// application profile, scheduled concurrently over a bounded worker
// pool. Per-slice results are deterministic under a fixed seed at any
// worker count.
package main

import (
	"fmt"
	"math/rand"

	"github.com/atlas-slicing/atlas"
)

func main() {
	real := atlas.NewRealNetwork()
	sim := atlas.NewSimulator()

	// Stage 1 is shared: one calibration serves every slice (§10: "the
	// corresponding parts in the learning-based simulator will be
	// updated" only on infrastructure changes).
	dr := real.Collect(atlas.FullConfig(), 1, 3, 61)
	copts := atlas.DefaultCalibratorOptions()
	copts.Iters, copts.Explore = 80, 20
	calib := atlas.NewCalibrator(sim, dr, copts).Run(rand.New(rand.NewSource(62)))
	aug := sim.WithParams(calib.BestParams)
	fmt.Printf("shared stage 1: discrepancy %.3f at distance %.3f\n\n", calib.BestKL, calib.BestDistance)

	// Stages 2 and 3 are per-tenant: the "mixed" scenario expands to a
	// heterogeneous fleet (one slice per class), each trained on
	// admission against its own workload and QoE model.
	scen, _ := atlas.GetScenario("mixed")
	specs := scen.Specs(4)
	for i := range specs {
		specs[i].Train = true
	}

	const intervals = 24
	opts := atlas.DefaultOrchestratorOptions()
	opts.Intervals = intervals
	opts.Seed = 70
	opts.Online.Pool = 800
	opts.Offline.Iters, opts.Offline.Explore = 100, 20

	res := atlas.NewOrchestrator(real, aug, specs, opts).Run()

	tail := intervals / 4
	for _, sr := range res.Slices {
		if sr.Err != nil {
			fmt.Printf("%-20s error: %v\n", sr.Spec.ID, sr.Err)
			continue
		}
		var usage, qoe float64
		for j := intervals - tail; j < intervals; j++ {
			usage += sr.Usages[j]
			qoe += sr.QoEs[j]
		}
		class := sr.Spec.Class
		fmt.Printf("%-20s qoe=%-19s traffic=%-14s usage %.1f%% QoE %.3f (target %.2f)\n",
			sr.Spec.ID, class.QoEModelName(), fmt.Sprintf("%s(%d)", class.TrafficModelName(), sr.Spec.Traffic),
			100*usage/float64(tail), qoe/float64(tail), sr.Spec.SLA.Availability)
	}

	fmt.Println("\nper-class aggregates:")
	for _, cm := range res.Classes {
		fmt.Printf("%-20s mean usage %.1f%% mean QoE %.3f violations %d\n",
			cm.Class, 100*cm.MeanUsage, cm.MeanQoE, cm.Violations)
	}
	fmt.Printf("\nQoE violations across the run: %d\n", res.TotalViolations())
}
