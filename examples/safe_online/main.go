// Safe_online contrasts exploration strategies during the online stage:
// the paper's clipped randomized GP-UCB against classic EI and the
// deterministic GP-UCB schedule. It reports each strategy's safety
// footprint — how often the explored configurations violated the slice
// SLA — mirroring the paper's Fig. 22.
package main

import (
	"fmt"
	"math/rand"

	"github.com/atlas-slicing/atlas"
	"github.com/atlas-slicing/atlas/internal/bo"
)

func main() {
	real := atlas.NewRealNetwork()
	sim := atlas.NewSimulator()
	space := atlas.DefaultConfigSpace()
	sla := atlas.DefaultSLA()

	// Stages 1 and 2 once, shared by all variants.
	dr := real.Collect(atlas.FullConfig(), 1, 3, 31)
	copts := atlas.DefaultCalibratorOptions()
	copts.Iters, copts.Explore = 80, 20
	calib := atlas.NewCalibrator(sim, dr, copts).Run(rand.New(rand.NewSource(32)))
	aug := sim.WithParams(calib.BestParams)

	oopts := atlas.DefaultOfflineOptions()
	oopts.Iters, oopts.Explore = 120, 25
	offline := atlas.NewOfflineTrainer(aug, oopts).Run(rand.New(rand.NewSource(33)))
	fmt.Printf("offline policy ready: %.1f%% usage at QoE %.3f in the simulator\n\n",
		100*offline.BestUsage, offline.BestQoE)

	oracle := atlas.FindOracle(real, space, sla, 1, 300, 2, 34)
	fmt.Printf("oracle: %.1f%% usage at QoE %.3f\n\n", 100*oracle.Usage, oracle.QoE)

	variants := []struct {
		name   string
		mutate func(*atlas.OnlineOptions)
	}{
		{"cRGP-UCB (ours)", nil},
		{"GP-UCB", func(o *atlas.OnlineOptions) { o.Schedule = bo.GPUCBSchedule{Delta: 0.1} }},
		{"EI", func(o *atlas.OnlineOptions) { o.Acq = bo.EI{} }},
	}
	const intervals = 40
	for i, v := range variants {
		opts := atlas.DefaultOnlineOptions()
		opts.Pool = 800
		if v.mutate != nil {
			v.mutate(&opts)
		}
		learner := atlas.NewOnlineLearner(offline.Policy, aug, opts, rand.New(rand.NewSource(int64(40+i))))
		run := atlas.RunOnline(learner, real, space, sla, 1, intervals, oracle, int64(50+i))

		violations := 0
		var usage float64
		for j, q := range run.QoEs {
			if q < sla.Availability {
				violations++
			}
			usage += run.Usages[j]
		}
		fmt.Printf("%-16s violations %2d/%d, mean usage %.1f%%, usage regret %.2f%%, QoE regret %.3f\n",
			v.name, violations, intervals, 100*usage/float64(intervals),
			100*run.Regret.AvgUsageRegret(), run.Regret.AvgQoERegret())
	}
}
