// Calibration explores stage 1 in depth: it compares the BNN+PTS
// searcher against a GP-based one, sweeps the discrepancy/parameter-
// distance tradeoff via the weight alpha (the paper's Fig. 12 Pareto
// boundary), and shows how parallel Thompson sampling accelerates the
// search (Fig. 13).
package main

import (
	"fmt"
	"math/rand"

	"github.com/atlas-slicing/atlas"
)

func main() {
	real := atlas.NewRealNetwork()
	sim := atlas.NewSimulator()
	dr := real.Collect(atlas.FullConfig(), 1, 3, 21)

	base := atlas.DefaultCalibratorOptions()
	base.Iters, base.Explore = 80, 20

	// Surrogate comparison: BNN+PTS (ours) vs GP+EI.
	fmt.Println("-- surrogate comparison --")
	for _, useGP := range []bool{false, true} {
		opts := base
		opts.UseGP = useGP
		cal := atlas.NewCalibrator(sim, dr, opts)
		res := cal.Run(rand.New(rand.NewSource(22)))
		name := "BNN+PTS (ours)"
		if useGP {
			name = "GP+EI"
		}
		fmt.Printf("%-16s discrepancy %.3f, distance %.3f, params %v\n",
			name, res.BestKL, res.BestDistance, res.BestParams)
	}

	// Pareto sweep over alpha.
	fmt.Println("\n-- alpha sweep (Pareto of discrepancy vs parameter distance) --")
	for _, alpha := range []float64{0.25, 1, 4} {
		opts := base
		opts.Alpha = alpha
		opts.Iters = 60
		cal := atlas.NewCalibrator(sim, dr, opts)
		res := cal.Run(rand.New(rand.NewSource(23)))
		fmt.Printf("alpha=%-5.2f discrepancy %.3f, distance %.3f\n",
			alpha, res.BestKL, res.BestDistance)
	}

	// Parallel queries.
	fmt.Println("\n-- parallel Thompson sampling --")
	for _, par := range []int{1, 4, 16} {
		opts := base
		opts.Iters, opts.Batch = 50, par
		cal := atlas.NewCalibrator(sim, dr, opts)
		res := cal.Run(rand.New(rand.NewSource(24)))
		fmt.Printf("parallel=%-3d best weighted discrepancy %.3f after %d queries\n",
			par, res.BestWeighted, len(res.History.Ys))
	}
}
