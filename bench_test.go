package atlas_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation as a testing.B benchmark (quick budgets, so
// `go test -bench=. -benchmem` completes on a laptop), plus
// micro-benchmarks of the substrates the pipeline spends its time in:
// simulator episodes, KL estimation, BNN training/inference, GP
// fitting, and Thompson-sampling selection.
//
// For a full-fidelity reproduction log use the CLI instead:
//
//	go run ./cmd/atlas-bench -run all          # default budgets
//	go run ./cmd/atlas-bench -run all -paper   # paper-scale budgets

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"testing"

	"github.com/atlas-slicing/atlas"
	"github.com/atlas-slicing/atlas/internal/bnn"
	"github.com/atlas-slicing/atlas/internal/bo"
	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/experiments"
	"github.com/atlas-slicing/atlas/internal/fleet"
	"github.com/atlas-slicing/atlas/internal/gp"
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/obs"
	"github.com/atlas-slicing/atlas/internal/realnet"
	"github.com/atlas-slicing/atlas/internal/scenarios"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/stats"
	"github.com/atlas-slicing/atlas/internal/store"
	"github.com/atlas-slicing/atlas/internal/topology"
)

// benchExperiment runs one registered paper artifact per iteration on
// the quick budget, sharing a lab across iterations so the incremental
// cost (not the one-time pipeline training) is measured after the first
// iteration for fixture-reusing experiments.
func benchExperiment(b *testing.B, id string) {
	f, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	budget := experiments.QuickBudget()
	lab := experiments.NewLab(42, budget)
	params := experiments.Params{Seed: 42, Budget: budget, Lab: lab}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := f(params)
		res.Print(io.Discard)
	}
}

// One benchmark per paper table.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// One benchmark per paper figure.
func BenchmarkFig2(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B) { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B) { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B) { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B) { benchExperiment(b, "fig21") }
func BenchmarkFig22(b *testing.B) { benchExperiment(b, "fig22") }
func BenchmarkFig23(b *testing.B) { benchExperiment(b, "fig23") }
func BenchmarkFig24(b *testing.B) { benchExperiment(b, "fig24") }
func BenchmarkFig25(b *testing.B) { benchExperiment(b, "fig25") }
func BenchmarkFig26(b *testing.B) { benchExperiment(b, "fig26") }

// ---- substrate micro-benchmarks ------------------------------------

// BenchmarkSimEpisode measures one 60-second configuration interval in
// the discrete-event simulator (the unit every stage queries).
func BenchmarkSimEpisode(b *testing.B) {
	sim := atlas.NewSimulator()
	cfg := atlas.FullConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Episode(cfg, 2, int64(i))
	}
}

// BenchmarkScenarioEpisode measures one configuration interval per
// cataloged service class — the per-class episode throughput the
// scenario bench script snapshots into BENCH_2.json.
func BenchmarkScenarioEpisode(b *testing.B) {
	sim := atlas.NewSimulator()
	cfg := atlas.FullConfig()
	for _, class := range atlas.ServiceClasses() {
		class := class
		b.Run(class.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim.EpisodeClass(class, cfg, class.Traffic, int64(i))
			}
		})
	}
}

// BenchmarkRealEpisode measures the real-network surrogate (fading,
// bursts and jitter enabled).
func BenchmarkRealEpisode(b *testing.B) {
	real := atlas.NewRealNetwork()
	cfg := atlas.FullConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		real.Episode(cfg, 2, int64(i))
	}
}

// BenchmarkKLDivergence measures the discrepancy estimator on
// episode-sized samples.
func BenchmarkKLDivergence(b *testing.B) {
	rng := mathx.NewRNG(1)
	mk := func(shift float64) []float64 {
		out := make([]float64, 500)
		for i := range out {
			out[i] = 150 + shift + 40*rng.NormFloat64()
		}
		return out
	}
	real, sim := mk(30), mk(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.KLDivergence(real, sim)
	}
}

// BenchmarkBNNFit measures one warm-start training pass over a
// stage-2-sized collection.
func BenchmarkBNNFit(b *testing.B) {
	rng := mathx.NewRNG(2)
	model := bnn.New(8, bnn.DefaultOptions(), mathx.NewRNG(3))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 400; i++ {
		x := make([]float64, 8)
		for j := range x {
			x[j] = rng.Float64()
		}
		xs = append(xs, x)
		ys = append(ys, x[0]+0.5*x[3])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Fit(xs, ys, 1, 128)
	}
}

// BenchmarkBNNThompsonDraw measures one function draw evaluated over a
// 2000-candidate pool (the PTS selection primitive).
func BenchmarkBNNThompsonDraw(b *testing.B) {
	rng := mathx.NewRNG(4)
	model := bnn.New(8, bnn.DefaultOptions(), mathx.NewRNG(5))
	xs := make([][]float64, 64)
	ys := make([]float64, 64)
	for i := range xs {
		x := make([]float64, 8)
		for j := range x {
			x[j] = rng.Float64()
		}
		xs[i] = x
		ys[i] = x[0]
	}
	model.Fit(xs, ys, 5, 32)
	pool := make([][]float64, 2000)
	for i := range pool {
		x := make([]float64, 8)
		for j := range x {
			x[j] = rng.Float64()
		}
		pool[i] = x
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		draw := model.Draw(rng)
		for _, x := range pool {
			model.Eval(draw, x)
		}
	}
}

// BenchmarkGPFit measures conditioning on an online-stage-sized (100
// point) collection, including the hyperparameter grid search.
func BenchmarkGPFit(b *testing.B) {
	rng := mathx.NewRNG(6)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, x[0]-x[1])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := gp.NewRegressor()
		if err := g.Fit(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// gpObserveFixture returns 120 points of a smooth 2-D target for the
// conditioning benchmarks.
func gpObserveFixture() (xs [][]float64, ys []float64) {
	rng := mathx.NewRNG(16)
	for i := 0; i < 120; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, x[0]-x[1])
	}
	return xs, ys
}

// BenchmarkGPObserveIncremental measures conditioning on 20 further
// observations at n≈100 via the rank-1 Cholesky extension — stage 3's
// per-interval hot path after the incremental update.
func BenchmarkGPObserveIncremental(b *testing.B) {
	xs, ys := gpObserveFixture()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := gp.NewRegressor()
		g.OptimizeHyper = false
		g.RefactorEvery = 1 << 30
		if err := g.Fit(xs[:100], ys[:100]); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for j := 100; j < 120; j++ {
			if err := g.Observe(xs[j], ys[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGPObserveFullRefit measures the same 20 conditioning steps
// done the seed way: a full O(n³) refactorization per observation.
func BenchmarkGPObserveFullRefit(b *testing.B) {
	xs, ys := gpObserveFixture()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := gp.NewRegressor()
		g.OptimizeHyper = false
		if err := g.Fit(xs[:100], ys[:100]); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for j := 100; j < 120; j++ {
			if err := g.Fit(xs[:j+1], ys[:j+1]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGPPredict measures posterior evaluation against 100 stored
// points.
func BenchmarkGPPredict(b *testing.B) {
	rng := mathx.NewRNG(7)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, x[0]-x[1])
	}
	g := gp.NewRegressor()
	if err := g.Fit(xs, ys); err != nil {
		b.Fatal(err)
	}
	q := []float64{0.3, 0.7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Predict(q)
	}
}

// BenchmarkCRGPUCBBeta measures the clipped randomized beta draw.
func BenchmarkCRGPUCBBeta(b *testing.B) {
	s := bo.CRGPUCBSchedule{Rho: 0.1, B: 10}
	rng := mathx.NewRNG(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Beta(i%100+1, rng)
	}
}

// ---- artifact-store fleet benchmarks --------------------------------

// storeFleetOrchestrator builds the BENCH_3 workload: a 16-slice fleet
// sharing one service class (the train-once-per-class case), each slice
// requesting on-admission offline training plus a short online loop.
func storeFleetOrchestrator(st *store.Store, warm bool) *atlas.Orchestrator {
	real := atlas.NewRealNetwork()
	sim := atlas.NewSimulator()
	specs := make([]atlas.SliceSpec, 16)
	for i := range specs {
		specs[i] = atlas.SliceSpec{
			ID:      fmt.Sprintf("slice-%02d", i),
			SLA:     atlas.DefaultSLA(),
			Traffic: 1,
			Train:   true,
		}
	}
	opts := atlas.DefaultOrchestratorOptions()
	opts.Seed = 7
	opts.Intervals = 2
	opts.Online.Pool = 64
	opts.Online.N = 2
	opts.Offline.Iters, opts.Offline.Explore = 120, 25
	opts.Offline.Pool, opts.Offline.Batch = 800, 4
	opts.Warm, opts.Save = warm, true
	orch := atlas.NewOrchestrator(real, sim, specs, opts)
	orch.Store = st
	return orch
}

func checkFleet(b *testing.B, res *atlas.OrchestratorResult) {
	b.Helper()
	for i := range res.Slices {
		if res.Slices[i].Err != nil {
			b.Fatalf("slice %d: %v", i, res.Slices[i].Err)
		}
	}
}

// BenchmarkStoreColdFleet measures end-to-end orchestration of the
// 16-slice single-class fleet against an empty store: the in-run
// singleflight dedups the sixteen identical fingerprints down to
// exactly one offline training, and the artifact lands in the store.
func BenchmarkStoreColdFleet(b *testing.B) {
	var trainings, hits float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res := storeFleetOrchestrator(st, true).Run()
		trainings += float64(res.OfflineTrainings)
		hits += float64(res.OfflineStoreHits)
		b.StopTimer()
		checkFleet(b, res)
		b.StartTimer()
	}
	b.ReportMetric(trainings/float64(b.N), "trainings")
	b.ReportMetric(hits/float64(b.N), "store_hits")
}

// BenchmarkStoreWarmFleet measures the same fleet against a populated
// store: every policy restores from disk (a fresh store handle per
// iteration, so the read-through is really exercised) and zero
// training runs.
func BenchmarkStoreWarmFleet(b *testing.B) {
	seedStore, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	dir := seedStore.Dir()
	checkFleet(b, storeFleetOrchestrator(seedStore, false).Run()) // populate
	b.ResetTimer()

	var trainings, hits float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res := storeFleetOrchestrator(st, true).Run()
		trainings += float64(res.OfflineTrainings)
		hits += float64(res.OfflineStoreHits)
		b.StopTimer()
		checkFleet(b, res)
		b.StartTimer()
	}
	b.ReportMetric(trainings/float64(b.N), "trainings")
	b.ReportMetric(hits/float64(b.N), "store_hits")
}

// BenchmarkOracleSearch measures the regret-anchor search at test
// budget.
func BenchmarkOracleSearch(b *testing.B) {
	real := atlas.NewRealNetwork()
	space := atlas.DefaultConfigSpace()
	sla := atlas.DefaultSLA()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atlas.FindOracle(real, space, sla, 1, 40, 1, int64(i))
	}
}

// benchFleetRun executes one churn-scenario fleet run at smoke budgets
// under the given admission policy. Same seed and capacity across
// policies, so BENCH_4 compares them on equal terms.
func benchFleetRun(b *testing.B, policy fleet.Policy) *fleet.Result {
	b.Helper()
	fs, ok := scenarios.GetFleet("churn")
	if !ok {
		b.Fatal("churn fleet scenario missing")
	}
	ctl := fleet.NewController(realnet.New(), simnet.NewDefault(), fs.Classes, fleet.Options{
		Horizon:  60,
		Capacity: fs.Capacity,
		Policy:   policy,
		Seed:     42,
		Tune: func(sys *core.System) {
			sys.CalOpts.Iters, sys.CalOpts.Explore, sys.CalOpts.Batch, sys.CalOpts.Pool = 15, 5, 2, 150
			sys.OffOpts.Iters, sys.OffOpts.Explore, sys.OffOpts.Batch, sys.OffOpts.Pool = 25, 8, 2, 150
			sys.OnOpts.Pool, sys.OnOpts.N = 120, 3
		},
	})
	res, err := ctl.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// benchFleetPolicy reports the fleet-control-plane metrics BENCH_4
// snapshots: acceptance ratio, peak bottleneck utilization, SLA
// violations, and QoE-weighted value.
func benchFleetPolicy(b *testing.B, policy fleet.Policy) {
	var acc, peak, viol, value float64
	for i := 0; i < b.N; i++ {
		res := benchFleetRun(b, policy)
		acc += res.AcceptanceRatio
		if u := res.PeakUtil.Max(); u > peak {
			peak = u
		}
		viol += float64(res.SLAViolations)
		value += res.QoEWeightedValue
	}
	n := float64(b.N)
	b.ReportMetric(acc/n, "acceptance_ratio")
	b.ReportMetric(peak, "peak_util")
	b.ReportMetric(viol/n, "sla_violations")
	b.ReportMetric(value/n, "qoe_value")
}

// BenchmarkFleetFirstFit: greedy admission, no arbitration.
func BenchmarkFleetFirstFit(b *testing.B) { benchFleetPolicy(b, fleet.FirstFit{}) }

// BenchmarkFleetValueDensity: QoE-aware value-density admission with
// preemption-free downscale arbitration.
func BenchmarkFleetValueDensity(b *testing.B) {
	benchFleetPolicy(b, fleet.ValueDensity{ReservePrice: 4})
}

// benchTopologyRun executes one fleet run over the hotspot-cell site
// graph at smoke budgets under the given placement policy. The
// admission policy is plain first-fit for every variant — no value
// gate, no arbitration — so BENCH_5 isolates what *placement* alone is
// worth at equal total capacity.
func benchTopologyRun(b *testing.B, place topology.Policy) *fleet.Result {
	b.Helper()
	preset, ok := scenarios.GetTopology("hotspot-cell")
	if !ok {
		b.Fatal("hotspot-cell topology preset missing")
	}
	topo, err := preset.Build(0)
	if err != nil {
		b.Fatal(err)
	}
	fs, ok := scenarios.GetFleet("churn")
	if !ok {
		b.Fatal("churn fleet scenario missing")
	}
	ctl := fleet.NewController(realnet.New(), simnet.NewDefault(), fs.Classes, fleet.Options{
		Horizon:   60,
		Topology:  topo,
		Placement: place,
		Policy:    fleet.FirstFit{},
		Seed:      42,
		Tune: func(sys *core.System) {
			sys.CalOpts.Iters, sys.CalOpts.Explore, sys.CalOpts.Batch, sys.CalOpts.Pool = 15, 5, 2, 150
			sys.OffOpts.Iters, sys.OffOpts.Explore, sys.OffOpts.Batch, sys.OffOpts.Pool = 25, 8, 2, 150
			sys.OnOpts.Pool, sys.OnOpts.N = 120, 3
		},
	})
	res, err := ctl.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// benchTopologyPlacement reports the placement metrics BENCH_5
// snapshots: placement success ratio, QoE-weighted value, peak
// per-site RAN utilization, and inter-site imbalance.
func benchTopologyPlacement(b *testing.B, place topology.Policy) {
	var ratio, value, acc, peakSite, imbalance float64
	for i := 0; i < b.N; i++ {
		res := benchTopologyRun(b, place)
		ratio += res.PlacementRatio
		value += res.QoEWeightedValue
		acc += res.AcceptanceRatio
		imbalance += res.Imbalance
		for _, ss := range res.Sites {
			if ss.PeakRanUtil > peakSite {
				peakSite = ss.PeakRanUtil
			}
		}
	}
	n := float64(b.N)
	b.ReportMetric(ratio/n, "placement_ratio")
	b.ReportMetric(value/n, "qoe_value")
	b.ReportMetric(acc/n, "acceptance_ratio")
	b.ReportMetric(peakSite, "peak_site_util")
	b.ReportMetric(imbalance/n, "imbalance")
}

// BenchmarkTopologyPlaceFirstFit: blind packing in graph order.
func BenchmarkTopologyPlaceFirstFit(b *testing.B) { benchTopologyPlacement(b, topology.FirstFit{}) }

// BenchmarkTopologyPlaceBestFit: tightest-bin packing.
func BenchmarkTopologyPlaceBestFit(b *testing.B) { benchTopologyPlacement(b, topology.BestFit{}) }

// BenchmarkTopologyPlaceSpread: fault-isolating load balancing.
func BenchmarkTopologyPlaceSpread(b *testing.B) { benchTopologyPlacement(b, topology.Spread{}) }

// BenchmarkTopologyPlaceLocality: home-cell-preferring scoring.
func BenchmarkTopologyPlaceLocality(b *testing.B) { benchTopologyPlacement(b, topology.Locality{}) }

// BenchmarkFleetLongHorizon is the nightly fleet profile: sustained
// churn at smoke training budgets, tracking control-plane overhead
// (ns/op) and steady-state acceptance. The plain benchmark suite runs
// it at a smoke horizon so `go test -bench .` stays fast; the nightly
// job sets ATLAS_NIGHTLY_HORIZON=1000 (hundreds of arrivals) via
// scripts/bench_fleet_long.sh.
func BenchmarkFleetLongHorizon(b *testing.B) {
	horizon := 60
	if s := os.Getenv("ATLAS_NIGHTLY_HORIZON"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			horizon = v
		}
	}
	fs, ok := scenarios.GetFleet("churn")
	if !ok {
		b.Fatal("churn fleet scenario missing")
	}
	var acc, arrivals, value, peak, downs float64
	for i := 0; i < b.N; i++ {
		ctl := fleet.NewController(realnet.New(), simnet.NewDefault(), fs.Classes, fleet.Options{
			Horizon:  horizon,
			Capacity: fs.Capacity,
			Policy:   fleet.ValueDensity{ReservePrice: 4},
			Seed:     42,
			Tune: func(sys *core.System) {
				sys.CalOpts.Iters, sys.CalOpts.Explore, sys.CalOpts.Batch, sys.CalOpts.Pool = 15, 5, 2, 150
				sys.OffOpts.Iters, sys.OffOpts.Explore, sys.OffOpts.Batch, sys.OffOpts.Pool = 25, 8, 2, 150
				sys.OnOpts.Pool, sys.OnOpts.N = 120, 3
			},
		})
		res, err := ctl.Run()
		if err != nil {
			b.Fatal(err)
		}
		acc += res.AcceptanceRatio
		arrivals += float64(res.Arrivals)
		value += res.QoEWeightedValue
		downs += float64(res.Downscales)
		if u := res.PeakUtil.Max(); u > peak {
			peak = u
		}
	}
	n := float64(b.N)
	b.ReportMetric(acc/n, "acceptance_ratio")
	b.ReportMetric(arrivals/n, "arrivals")
	b.ReportMetric(value/n, "qoe_value")
	b.ReportMetric(downs/n, "downscales")
	b.ReportMetric(peak, "peak_util")
}

// ---- sustained-throughput hot-path benchmarks (BENCH_6) -------------

// BenchmarkOnlineScanPool measures the steady-state candidate scan of a
// warm online learner — the per-interval hot path every live slice pays
// — via the mean-only arbitration entry point. B/op here is the
// guardrail scripts/bench_hotpath.sh enforces: the scan reuses the
// learner's scratch, so the steady state must stay near zero
// allocations regardless of pool size.
func BenchmarkOnlineScanPool(b *testing.B) {
	space := atlas.DefaultConfigSpace()
	for _, pool := range []int{64, 256} {
		pool := pool
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			opts := core.DefaultOnlineOptions()
			opts.Pool = pool
			opts.OfflineAccel = false
			l := core.NewOnlineLearner(nil, nil, opts, mathx.NewRNG(9))
			rng := mathx.NewRNG(10)
			for i := 0; i < 100; i++ {
				cfg := space.Sample(rng)
				l.Observe(i, cfg, space.Usage(cfg), 0.9+0.1*rng.Float64())
			}
			scanRng := mathx.NewRNG(11)
			if _, ok := l.CheapestFeasible(pool, scanRng); !ok {
				b.Fatal("warm learner found no feasible candidate")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.CheapestFeasible(pool, scanRng)
			}
			b.ReportMetric(float64(b.N*pool)/b.Elapsed().Seconds(), "cands/sec")
		})
	}
}

// ---- site-sharded stepping benchmarks (BENCH_7) ---------------------

// benchShardRun executes the BENCH_5 hotspot-cell/locality workload —
// identical scenario, budgets, and seed — under the given stepper
// configuration, so BENCH_7's sharded numbers compare against the
// recorded BENCH_5 lockstep baseline on equal terms.
func benchShardRun(b *testing.B, mutate func(*fleet.Options)) *fleet.Result {
	b.Helper()
	preset, ok := scenarios.GetTopology("hotspot-cell")
	if !ok {
		b.Fatal("hotspot-cell topology preset missing")
	}
	topo, err := preset.Build(0)
	if err != nil {
		b.Fatal(err)
	}
	fs, ok := scenarios.GetFleet("churn")
	if !ok {
		b.Fatal("churn fleet scenario missing")
	}
	opts := fleet.Options{
		Horizon:   60,
		Topology:  topo,
		Placement: topology.Locality{},
		Policy:    fleet.FirstFit{},
		Seed:      42,
		Tune: func(sys *core.System) {
			sys.CalOpts.Iters, sys.CalOpts.Explore, sys.CalOpts.Batch, sys.CalOpts.Pool = 15, 5, 2, 150
			sys.OffOpts.Iters, sys.OffOpts.Explore, sys.OffOpts.Batch, sys.OffOpts.Pool = 25, 8, 2, 150
			sys.OnOpts.Pool, sys.OnOpts.N = 120, 3
		},
	}
	if mutate != nil {
		mutate(&opts)
	}
	ctl := fleet.NewController(realnet.New(), simnet.NewDefault(), fs.Classes, opts)
	res, err := ctl.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// benchShardVariant reports the BENCH_7 headline metrics — sustained
// arrivals handled per wall-clock second and peak concurrent slices —
// plus the result fingerprint (value, ratios, imbalance) the bench
// script's bit-drift guardrail compares across stepper variants: the
// sharding determinism property says these must be identical at every
// shard count and on the lockstep reference.
func benchShardVariant(b *testing.B, mutate func(*fleet.Options)) {
	var arrivals, peakLive float64
	var last *fleet.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := benchShardRun(b, mutate)
		arrivals += float64(res.Arrivals)
		for _, es := range res.Epochs {
			if float64(es.Live) > peakLive {
				peakLive = float64(es.Live)
			}
		}
		last = res
	}
	sec := b.Elapsed().Seconds()
	b.ReportMetric(arrivals/sec, "arrivals/sec")
	b.ReportMetric(peakLive, "peak_live_slices")
	b.ReportMetric(last.QoEWeightedValue, "qoe_value")
	b.ReportMetric(last.AcceptanceRatio, "acceptance_ratio")
	b.ReportMetric(last.PlacementRatio, "placement_ratio")
	b.ReportMetric(last.Imbalance, "imbalance")
}

// BenchmarkFleetStepLockstep: the legacy epoch-lockstep reference path
// (the stepper BENCH_5 was recorded on).
func BenchmarkFleetStepLockstep(b *testing.B) {
	benchShardVariant(b, func(o *fleet.Options) { o.Lockstep = true })
}

// BenchmarkFleetStepSharded: the event-driven shard engine at one, two,
// and one-per-site (hotspot-cell has five sites) shards.
func BenchmarkFleetStepSharded(b *testing.B) {
	for _, n := range []int{1, 2, 5} {
		n := n
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			benchShardVariant(b, func(o *fleet.Options) { o.Shards = n })
		})
	}
}

// BenchmarkFleetStepInstrumented: the one-shard-per-site engine with
// the full observability plane attached — a live metrics registry, a
// JSON decision trace written to io.Discard, the flight-recorder time
// series, and per-slice timelines — on the identical workload as
// BenchmarkFleetStepSharded/shards=5. BENCH_8's overhead guardrail
// compares the two: instrumentation must stay within a few percent of
// the uninstrumented twin, and the result fingerprint must not move at
// all.
func BenchmarkFleetStepInstrumented(b *testing.B) {
	// The shards=5 sub-run mirrors the sharded benchmark's naming so one
	// `-bench '…$/^shards=5$'` pattern selects both variants fully — a
	// top-level benchmark without sub-runs only partially matches a
	// two-element pattern and reports nothing.
	b.Run("shards=5", func(b *testing.B) {
		benchShardVariant(b, func(o *fleet.Options) {
			o.Shards = 5
			o.Obs = obs.NewRegistry()
			o.Trace = slog.New(slog.NewJSONHandler(io.Discard, nil))
			o.Recorder = obs.NewRecorder(0)
			o.Timeline = obs.NewTimelineStore(0, 0)
		})
	})
}

// BenchmarkFleetSustained reports end-to-end control-plane throughput
// under churn: slice-epochs served and arrivals handled per wall-clock
// second, with allocations. This is the sustained-throughput number
// BENCH_6 snapshots and CI guards against regressing to NaN/zero.
func BenchmarkFleetSustained(b *testing.B) {
	var arrivals, episodes float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := benchFleetRun(b, fleet.ValueDensity{ReservePrice: 4})
		arrivals += float64(res.Arrivals)
		episodes += float64(res.ServedEpochs)
	}
	sec := b.Elapsed().Seconds()
	b.ReportMetric(arrivals/sec, "arrivals/sec")
	b.ReportMetric(episodes/sec, "episodes/sec")
}
