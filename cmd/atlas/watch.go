package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

// The watch subcommand is a terminal dashboard over a running daemon:
// it polls GET /history and GET /slo and renders fleet sparklines,
// per-site utilization bars, and the SLO table in place. It is a pure
// client — only the HTTP API, no shared state with the daemon.

// Local mirrors of the serve API bodies (watch is a client; it decodes
// only the fields it renders).
type watchPoint struct {
	Epoch int     `json:"epoch"`
	Value float64 `json:"value"`
}

type watchSeries struct {
	Name   string       `json:"name"`
	Points []watchPoint `json:"points"`
}

type watchHistory struct {
	Series []watchSeries `json:"series"`
}

type watchObjective struct {
	Name     string   `json:"name"`
	Target   float64  `json:"target"`
	Kind     string   `json:"kind"`
	Value    *float64 `json:"value"`
	BurnRate *float64 `json:"burn_rate"`
	Status   string   `json:"status"`
}

type watchSLO struct {
	Objectives []watchObjective `json:"objectives"`
	Breached   int              `json:"breached"`
}

// fleetSeries are the aggregate series rendered as sparklines, in
// display order; site series render as bars below them.
var fleetSeries = []string{
	"live", "operating", "acceptance_ratio",
	"qoe_mean", "qoe_value", "oracle_regret",
	"util_ran", "util_tn", "util_cn",
}

func runWatch(args []string) {
	fs := flag.NewFlagSet("atlas watch", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "base URL of the atlas serve daemon")
	interval := fs.Duration("interval", 2*time.Second, "poll period")
	window := fs.Int("window", 30, "sparkline width in samples")
	once := fs.Bool("once", false, "render one snapshot and exit (no screen clearing)")
	_ = fs.Parse(args)
	if *interval <= 0 || *window < 2 {
		fmt.Fprintln(os.Stderr, "atlas watch: -interval must be positive and -window at least 2")
		os.Exit(2)
	}
	base := strings.TrimRight(*addr, "/")

	for {
		frame, err := renderFrame(base, *window)
		if err != nil {
			if *once {
				fmt.Fprintf(os.Stderr, "atlas watch: %v\n", err)
				os.Exit(1)
			}
			frame = fmt.Sprintf("atlas watch: %v (retrying every %v)\n", err, *interval)
		}
		if !*once {
			// Home the cursor and clear below instead of wiping the whole
			// terminal: an in-place refresh without scrollback spam.
			fmt.Print("\x1b[H\x1b[2J")
		}
		fmt.Print(frame)
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// renderFrame polls both endpoints and builds one dashboard screen.
func renderFrame(base string, window int) (string, error) {
	var hist watchHistory
	if err := fetchJSON(base+"/history", &hist); err != nil {
		return "", err
	}
	var slo watchSLO
	if err := fetchJSON(base+"/slo", &slo); err != nil {
		return "", err
	}

	byName := map[string]watchSeries{}
	epoch := 0
	for _, s := range hist.Series {
		byName[s.Name] = s
		for _, p := range s.Points {
			epoch = max(epoch, p.Epoch)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "atlas watch — %s — epoch %d — %s\n\n", base, epoch, time.Now().Format("15:04:05"))

	b.WriteString("fleet\n")
	shown := map[string]bool{}
	for _, name := range fleetSeries {
		s, ok := byName[name]
		if !ok || len(s.Points) == 0 {
			continue
		}
		shown[name] = true
		last := s.Points[len(s.Points)-1].Value
		fmt.Fprintf(&b, "  %-18s %s  %s\n", name, sparkline(s.Points, window), formatValue(name, last))
	}
	if len(shown) == 0 {
		b.WriteString("  (no samples yet)\n")
	}

	// Per-site RAN utilization bars, sorted by site name.
	var sites []string
	for name := range byName {
		if site, ok := strings.CutPrefix(name, "site_ran_util:"); ok {
			sites = append(sites, site)
		}
	}
	if len(sites) > 0 {
		sort.Strings(sites)
		b.WriteString("\nsites (ran utilization)\n")
		for _, site := range sites {
			s := byName["site_ran_util:"+site]
			last := 0.0
			if len(s.Points) > 0 {
				last = s.Points[len(s.Points)-1].Value
			}
			fmt.Fprintf(&b, "  %-16s %s %5.1f%%\n", site, bar(last, 24), 100*last)
		}
	}

	b.WriteString("\nslo")
	if slo.Breached > 0 {
		fmt.Fprintf(&b, " — %d BREACHED", slo.Breached)
	}
	b.WriteString("\n")
	if len(slo.Objectives) == 0 {
		b.WriteString("  (none declared)\n")
	}
	nameWidth := 0
	for _, o := range slo.Objectives {
		if len(o.Name) > nameWidth {
			nameWidth = len(o.Name)
		}
	}
	for _, o := range slo.Objectives {
		rel := "<="
		if o.Kind == "floor" {
			rel = ">="
		}
		value, burn := "n/a", "n/a"
		if o.Value != nil {
			value = fmt.Sprintf("%.3f", *o.Value)
		}
		if o.BurnRate != nil {
			burn = fmt.Sprintf("%.2f", *o.BurnRate)
		}
		fmt.Fprintf(&b, "  %-*s %5s %s %.3f  burn %-5s %s\n",
			nameWidth, o.Name, value, rel, o.Target, burn, o.Status)
	}
	return b.String(), nil
}

// fetchJSON GETs url and decodes the body into v.
func fetchJSON(url string, v any) error {
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

var sparkRunes = []rune(" ▁▂▃▄▅▆▇█")

// sparkline renders the last `width` samples scaled to the window's own
// min..max — shape over absolute value; the printed last value anchors
// the scale.
func sparkline(points []watchPoint, width int) string {
	if len(points) > width {
		points = points[len(points)-width:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		lo = math.Min(lo, p.Value)
		hi = math.Max(hi, p.Value)
	}
	out := make([]rune, 0, width)
	for _, p := range points {
		idx := len(sparkRunes) / 2
		if hi > lo {
			idx = int((p.Value - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		out = append(out, sparkRunes[max(1, min(idx, len(sparkRunes)-1))])
	}
	for len(out) < width {
		out = append(out, ' ')
	}
	return string(out)
}

// bar renders a horizontal gauge for a 0..1 fraction.
func bar(frac float64, width int) string {
	if math.IsNaN(frac) {
		frac = 0
	}
	frac = math.Max(0, math.Min(1, frac))
	fill := int(frac*float64(width) + 0.5)
	return "[" + strings.Repeat("█", fill) + strings.Repeat("░", width-fill) + "]"
}

// formatValue picks a display format per series: counts as integers,
// ratios as percentages, the rest with three decimals.
func formatValue(name string, v float64) string {
	switch name {
	case "live", "operating":
		return fmt.Sprintf("%d", int(v+0.5))
	case "acceptance_ratio", "util_ran", "util_tn", "util_cn":
		return fmt.Sprintf("%5.1f%%", 100*v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
