package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles begins CPU profiling and/or arranges a heap profile,
// per the -cpuprofile / -memprofile flags. The returned stop function
// finishes both (it flushes the CPU profile and snapshots the heap
// after a forced GC) and must run before the process exits; it is safe
// to call when both paths are empty.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("create -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start -cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "atlas: create -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "atlas: write -memprofile: %v\n", err)
			}
		}
	}, nil
}
