package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/fleet"
	"github.com/atlas-slicing/atlas/internal/scenarios"
	"github.com/atlas-slicing/atlas/internal/serve"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/store"
	"github.com/atlas-slicing/atlas/internal/topology"
)

// serveOptions carries the flag-derived configuration of the serve
// subcommand into the daemon.
type serveOptions struct {
	policy      fleet.Policy
	topo        *topology.Graph
	placement   topology.Policy
	capacity    float64 // cells; 0 = scenario default (ignored with a topology)
	store       *store.Store
	logPath     string
	tick        time.Duration
	workers     int
	seed        int64
	tune        func(*core.System)
	trace       bool   // -trace: JSON decision records to stderr
	traceFile   string // -trace-file: JSON decision records to a file, fsync'd on drain
	historyCap  int    // -history-cap: flight-recorder points per series (0 = default)
	timelineCap int    // -timeline-cap: flight-recorder entries per slice (0 = default)
	debugAddr   string // -debug-addr: opt-in pprof listener
}

// runServe runs the slice-lifecycle daemon until SIGINT/SIGTERM, then
// drains gracefully: the HTTP listener stops first, every live slice's
// online residual is checkpointed, and the event log is flushed.
func runServe(addr string, fs scenarios.FleetScenario, o serveOptions) {
	capacity := fs.Capacity
	if o.capacity > 0 {
		capacity = slicing.CellCapacity(o.capacity)
	}
	fmt.Printf("== atlas serve: scenario %q catalog ==\n", fs.Name)
	if o.topo != nil {
		fmt.Printf("policy %s, topology %s (%d sites, %.2g cells), placement %s, tick %v\n",
			o.policy.Name(), o.topo.Name, len(o.topo.Sites), o.topo.TotalCells(), o.placement.Name(), o.tick)
	} else {
		fmt.Printf("policy %s, capacity %v, tick %v\n", o.policy.Name(), capacity, o.tick)
	}

	// The decision trace can go to stderr (-trace), a file (-trace-file),
	// or both; the file sink hands the reconciler a sync hook so the
	// drain fsyncs the last records alongside the event log.
	var trace *slog.Logger
	var traceSync func() error
	var sinks []io.Writer
	if o.trace {
		sinks = append(sinks, os.Stderr)
	}
	if o.traceFile != "" {
		f, err := os.OpenFile(o.traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atlas: serve: open -trace-file: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sinks = append(sinks, f)
		traceSync = f.Sync
	}
	if len(sinks) > 0 {
		trace = slog.New(slog.NewJSONHandler(io.MultiWriter(sinks...), nil))
	}
	srv, err := serve.New(addr, serve.Config{
		Classes:     fs.Classes,
		Policy:      o.policy,
		Topology:    o.topo,
		Placement:   o.placement,
		Capacity:    capacity,
		Tick:        o.tick,
		Workers:     o.workers,
		Seed:        o.seed,
		Store:       o.store,
		LogPath:     o.logPath,
		Tune:        o.tune,
		Trace:       trace,
		TraceSync:   traceSync,
		HistoryCap:  o.historyCap,
		TimelineCap: o.timelineCap,
		DebugAddr:   o.debugAddr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "atlas: serve: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "atlas: serve: %v\n", err)
		os.Exit(1)
	}
}

// runReplay folds an event log back into per-slice final states and
// prints them as JSON — the crash-recovery path, and what the CI smoke
// diffs against the live API's last snapshot.
func runReplay(path string) {
	states, n, err := serve.ReplayFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atlas: serve -replay: %v\n", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(states, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "atlas: serve -replay: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
	fmt.Fprintf(os.Stderr, "atlas: replayed %d events, %d slices\n", n, len(states))
}
