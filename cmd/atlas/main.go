// Command atlas runs the three-stage pipeline end to end against the
// bundled real-network surrogate, printing each stage's artifacts:
//
//	atlas                 # default budgets
//	atlas -stage1-iters 500 -stage2-iters 1000 -online-iters 100
//	atlas -traffic 2 -threshold 500 -availability 0.9
//
// With -slices N (N > 1) it switches to the concurrent multi-slice
// orchestrator: one shared stage-1 calibration, then N per-tenant
// stage-2/stage-3 pipelines scheduled over a bounded worker pool:
//
//	atlas -slices 8               # 8 tenants, GOMAXPROCS workers
//	atlas -slices 8 -workers 2    # same tenants, bounded concurrency
//
// With -scenario <name> the tenants come from the scenario catalog
// instead of N clones of the prototype service: heterogeneous service
// classes with their own workloads, QoE models, and (possibly
// time-varying) traffic models:
//
//	atlas -scenario mixed -slices 4   # video + teleop + IoT + eMBB
//	atlas -scenario urllc -slices 2   # deadline-percentile tenants
//
// With -store DIR every learned artifact (stage-1 calibration, stage-2
// policy) is keyed by its content fingerprint in an on-disk artifact
// store. -save writes trained artifacts back; -warm restores matching
// artifacts instead of retraining, which turns a repeated run into a
// warm start:
//
//	atlas -slices 16 -store ./artifacts -save          # cold: train once per class
//	atlas -slices 16 -store ./artifacts -warm -save    # warm: restore, zero training
//
// With -fleet the static spec list is replaced by the fleet control
// plane: a dynamic scenario's arrival processes admit, downscale, and
// release slices over finite per-domain capacity, reporting acceptance
// ratio, utilization, SLA violations, and QoE-weighted value against
// an infinite-capacity oracle:
//
//	atlas -fleet -scenario churn -horizon 200              # value-density policy
//	atlas -fleet -scenario flashcrowd -policy first-fit    # greedy baseline
//	atlas -fleet -scenario churn -capacity 2 -no-oracle    # 2 cells, skip oracle
//
// With -topology the single capacity pool becomes a multi-cell site
// graph: every arrival gets a home cell, a -placement policy picks its
// host site ahead of admission, and hosting away from home costs
// delivered QoE per transport hop:
//
//	atlas -fleet -scenario churn -topology hotspot-cell               # locality placement
//	atlas -fleet -scenario churn -topology uniform-grid -sites 9 -placement spread
//	atlas -fleet -scenario churn -topology edge-constrained -placement first-fit
//
// Fleet stepping is site-sharded and event-driven by default: each
// shard goroutine owns its sites' resident slices and steps them
// concurrently, with results bit-identical to the legacy lockstep
// path at any shard count. -shards overrides the shard count (0 = one
// per site) and -lockstep selects the unsharded reference path:
//
//	atlas -fleet -scenario churn -topology hotspot-cell -shards 2
//	atlas -fleet -scenario churn -lockstep
//
// Fleet-only flags (-policy, -capacity, -horizon, -no-oracle,
// -topology, -sites, -placement, -shards, -lockstep) are rejected
// without -fleet instead of being silently ignored.
//
// The serve subcommand turns the same fleet machinery into a
// long-lived slice-lifecycle daemon: an HTTP+JSON API through which
// tenants request, activate, modify, deactivate, and delete slices,
// with every transition appended to a replayable event log:
//
//	atlas serve -addr :8080 -scenario churn                    # single pool
//	atlas serve -topology hotspot-cell -serve-log events.jsonl # site graph + durable log
//	atlas serve -replay events.jsonl                           # fold a log to final states
//
// Serve-only flags (-addr, -serve-log, -tick, -replay, -trace,
// -trace-file, -history-cap, -timeline-cap, -debug-addr) are rejected
// without the serve subcommand,
// and batch-only flags (-fleet, -slices, -online-iters, ...) are
// rejected with it. The daemon exports Prometheus metrics on GET
// /metrics, a JSON introspection snapshot on GET /stats, flight-recorder
// time series on GET /history, per-slice timelines on GET
// /slices/{id}/timeline, and SLO burn rates on GET /slo; -trace streams
// one structured decision record per admission/placement/resize/release
// to stderr, -trace-file appends the same records to a file fsync'd on
// drain, and -debug-addr exposes net/http/pprof on its own listener.
//
// The watch subcommand is a terminal dashboard over a running daemon's
// /history and /slo endpoints:
//
//	atlas watch -addr http://127.0.0.1:8080 -interval 2s
//	atlas watch -once          # one snapshot, no screen clearing
//
// This is the programmatic equivalent of the paper's
// main_simulator.py / main_offline.py / main_online.py workflow.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/atlas-slicing/atlas/internal/baselines"
	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/fleet"
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/realnet"
	"github.com/atlas-slicing/atlas/internal/scenarios"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/store"
	"github.com/atlas-slicing/atlas/internal/topology"
)

func main() {
	var (
		seed         = flag.Int64("seed", 42, "master seed")
		traffic      = flag.Int("traffic", 1, "user traffic (concurrent on-the-fly frames, 1-4)")
		threshold    = flag.Float64("threshold", 300, "latency threshold Y in ms")
		availability = flag.Float64("availability", 0.9, "QoE requirement E")
		s1Iters      = flag.Int("stage1-iters", 150, "stage-1 search iterations")
		s2Iters      = flag.Int("stage2-iters", 200, "stage-2 training iterations")
		onIters      = flag.Int("online-iters", 100, "stage-3 online intervals")
		batch        = flag.Int("batch", 4, "parallel queries per iteration")
		pool         = flag.Int("pool", 1500, "candidate pool per selection")
		alpha        = flag.Float64("alpha", 1, "weighted-discrepancy alpha")
		slices       = flag.Int("slices", 1, "number of concurrent tenant slices (>1 enables the orchestrator)")
		workers      = flag.Int("workers", 0, "orchestrator worker bound (0 = GOMAXPROCS)")
		scenario     = flag.String("scenario", "", "named scenario from the catalog (heterogeneous service classes); empty = prototype service")
		storeDir     = flag.String("store", "", "artifact-store directory for learned models (empty = no persistence)")
		save         = flag.Bool("save", false, "write trained artifacts back to the store (requires -store)")
		warm         = flag.Bool("warm", false, "restore matching artifacts from the store instead of retraining (requires -store)")
		fleetMode    = flag.Bool("fleet", false, "run the fleet control plane: dynamic slice arrivals/departures over finite capacity (requires a dynamic -scenario)")
		horizon      = flag.Int("horizon", 0, "fleet horizon in control-plane epochs (0 = scenario default)")
		capacity     = flag.Float64("capacity", 0, "fleet capacity in prototype cells, e.g. 1.5 (0 = scenario default)")
		policyName   = flag.String("policy", "value-density", "fleet admission policy: "+strings.Join(fleet.PolicyNames(), ", "))
		noOracle     = flag.Bool("no-oracle", false, "skip the infinite-capacity oracle run in fleet mode")
		topoName     = flag.String("topology", "", "multi-cell site graph from the topology catalog (replaces the single capacity pool): "+strings.Join(scenarios.TopologyNames(), ", "))
		sites        = flag.Int("sites", 0, "site count for the -topology preset (0 = preset default)")
		placement    = flag.String("placement", "locality", "placement policy picking each arrival's host site: "+strings.Join(topology.PolicyNames(), ", "))
		shards       = flag.Int("shards", 0, "fleet: shard count for the site-sharded stepping engine, clamped to the site count (0 = one shard per site)")
		lockstep     = flag.Bool("lockstep", false, "fleet: step via the legacy epoch-lockstep reference path instead of the sharded event engine")
		addr         = flag.String("addr", ":8080", "serve: HTTP listen address")
		serveLog     = flag.String("serve-log", "", "serve: append-only slice-event log file (JSONL, replayable)")
		tick         = flag.Duration("tick", time.Second, "serve: serving epoch period (every tick steps all OPERATING slices)")
		replayPath   = flag.String("replay", "", "serve: fold an event log to final slice states and exit (no daemon)")
		traceFlag    = flag.Bool("trace", false, "serve: emit a structured JSON decision-trace record to stderr for every admission/placement/resize/release decision")
		traceFile    = flag.String("trace-file", "", "serve: append decision-trace records to this file (fsync'd on drain; combines with -trace)")
		historyCap   = flag.Int("history-cap", 0, "serve: flight-recorder points kept per time series (0 = default)")
		timelineCap  = flag.Int("timeline-cap", 0, "serve: flight-recorder entries kept per slice timeline (0 = default)")
		debugAddr    = flag.String("debug-addr", "", "serve: expose net/http/pprof on this extra listen address (empty = off)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file (pprof format; works in every mode)")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this file on exit (pprof format; works in every mode)")
	)
	// `atlas serve ...` is the daemon subcommand; everything after it is
	// ordinary flags. `atlas watch ...` is a self-contained client with
	// its own flag set and dispatches before the main parse.
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "watch" {
		runWatch(args[1:])
		return
	}
	serveMode := len(args) > 0 && args[0] == "serve"
	if serveMode {
		args = args[1:]
	}
	_ = flag.CommandLine.Parse(args)

	// Flags that only mean something in fleet mode (or only with a
	// topology) are rejected when their mode is off instead of being
	// silently ignored: a user typing `atlas -scenario mixed -policy
	// first-fit` should learn the policy never ran.
	explicitFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicitFlags[f.Name] = true })

	// Validate every flag in a single pass and report every problem at
	// once — one consolidated error message instead of a fix-rerun-fix
	// loop across the mixed per-flag styles the flags accreted.
	var errs []string
	badf := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}
	if *slices < 1 {
		badf("-slices must be at least 1, got %d", *slices)
	}
	if *traffic < 1 || *traffic > core.MaxTraffic {
		badf("-traffic must be in [1, %d], got %d", core.MaxTraffic, *traffic)
	}
	if *workers < 0 {
		badf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", *workers)
	}
	if *pool < 2 {
		badf("-pool must be at least 2, got %d", *pool)
	}
	if *onIters < 1 {
		badf("-online-iters must be at least 1, got %d", *onIters)
	}
	if *s1Iters < 1 || *s2Iters < 1 {
		badf("-stage1-iters and -stage2-iters must be at least 1, got %d and %d", *s1Iters, *s2Iters)
	}
	if *batch < 1 {
		badf("-batch must be at least 1, got %d", *batch)
	}
	if *threshold <= 0 {
		badf("-threshold must be positive milliseconds, got %v", *threshold)
	}
	if *availability <= 0 || *availability > 1 {
		badf("-availability must be in (0, 1], got %v", *availability)
	}
	if *horizon < 0 {
		badf("-horizon must be >= 0 (0 = scenario default), got %d", *horizon)
	}
	if *capacity < 0 {
		badf("-capacity must be >= 0 cells (0 = scenario default), got %v", *capacity)
	}
	if *sites < 0 {
		badf("-sites must be >= 0 (0 = preset default), got %d", *sites)
	}
	if *shards < 0 {
		badf("-shards must be >= 0 (0 = one shard per site), got %d", *shards)
	}
	if *shards > 0 && *lockstep {
		badf("-shards and -lockstep are mutually exclusive: the lockstep reference path is unsharded")
	}
	if !*fleetMode && !serveMode {
		var ignored []string
		for _, name := range []string{"policy", "capacity", "horizon", "no-oracle", "topology", "sites", "placement", "shards", "lockstep"} {
			if explicitFlags[name] {
				ignored = append(ignored, "-"+name)
			}
		}
		if len(ignored) > 0 {
			badf("fleet-only flags without -fleet: %s; add -fleet with a dynamic -scenario", strings.Join(ignored, ", "))
		}
	}
	if !serveMode {
		var ignored []string
		for _, name := range []string{"addr", "serve-log", "tick", "replay", "trace", "trace-file", "history-cap", "timeline-cap", "debug-addr"} {
			if explicitFlags[name] {
				ignored = append(ignored, "-"+name)
			}
		}
		if len(ignored) > 0 {
			badf("serve-only flags without the serve subcommand: %s; run `atlas serve ...`", strings.Join(ignored, ", "))
		}
	} else {
		var ignored []string
		for _, name := range []string{"fleet", "horizon", "no-oracle", "slices", "traffic", "threshold", "availability", "online-iters", "alpha", "batch", "save", "warm"} {
			if explicitFlags[name] {
				ignored = append(ignored, "-"+name)
			}
		}
		if len(ignored) > 0 {
			badf("batch-only flags with the serve subcommand: %s", strings.Join(ignored, ", "))
		}
		if *tick <= 0 {
			badf("-tick must be a positive duration, got %v", *tick)
		}
		if *historyCap < 0 || *timelineCap < 0 {
			badf("-history-cap and -timeline-cap must be >= 0 (0 = default), got %d and %d", *historyCap, *timelineCap)
		}
	}
	if *topoName == "" {
		var orphaned []string
		for _, name := range []string{"sites", "placement"} {
			if explicitFlags[name] {
				orphaned = append(orphaned, "-"+name)
			}
		}
		if len(orphaned) > 0 {
			badf("topology-only flags without -topology: %s; valid topologies: %s", strings.Join(orphaned, ", "), strings.Join(scenarios.TopologyNames(), ", "))
		}
	}
	var policy fleet.Policy
	if *fleetMode || serveMode {
		var ok bool
		if policy, ok = fleet.PolicyByName(*policyName); !ok {
			badf("unknown -policy %q; valid policies: %s", *policyName, strings.Join(fleet.PolicyNames(), ", "))
		}
	}
	var topo *topology.Graph
	var place topology.Policy
	if *topoName != "" {
		preset, ok := scenarios.GetTopology(*topoName)
		if !ok {
			badf("unknown -topology %q; valid topologies: %s", *topoName, strings.Join(scenarios.TopologyNames(), ", "))
		} else if g, err := preset.Build(*sites); err != nil {
			badf("build topology %q: %v", *topoName, err)
		} else {
			topo = g
		}
		if place, ok = topology.PolicyByName(*placement); !ok {
			badf("unknown -placement %q; valid placement policies: %s", *placement, strings.Join(topology.PolicyNames(), ", "))
		}
		if explicitFlags["capacity"] {
			badf("-capacity and -topology are exclusive: the site graph defines the capacity")
		}
	}
	var scen scenarios.Scenario
	var fscen scenarios.FleetScenario
	if serveMode && *scenario == "" {
		*scenario = "churn"
	}
	switch {
	case *fleetMode || serveMode:
		if *scenario == "" {
			badf("-fleet requires a dynamic -scenario; valid dynamic scenarios: %s", strings.Join(scenarios.FleetNames(), ", "))
		} else if fs, ok := scenarios.GetFleet(*scenario); ok {
			fscen = fs
		} else {
			badf("unknown dynamic scenario %q; valid dynamic scenarios: %s", *scenario, strings.Join(scenarios.FleetNames(), ", "))
		}
	case *scenario != "":
		var ok bool
		if scen, ok = scenarios.Get(*scenario); !ok {
			badf("unknown scenario %q; valid scenarios: %s", *scenario, strings.Join(scenarios.Names(), ", "))
		}
	}
	if (*save || *warm) && *storeDir == "" {
		badf("-save and -warm require -store DIR")
	}
	if *fleetMode && *storeDir != "" && (!*save || !*warm) {
		badf("-fleet with -store requires both -warm and -save: the control plane always restores artifacts by fingerprint, persists training, and tombstones released checkpoints")
	}
	var st *store.Store
	if *storeDir != "" && len(errs) == 0 {
		var err error
		if st, err = store.Open(*storeDir); err != nil {
			badf("open artifact store: %v", err)
		}
	}
	if len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "atlas: invalid flags:\n")
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "  - %s\n", e)
		}
		fmt.Fprintf(os.Stderr, "valid scenarios: %s; dynamic (fleet) scenarios: %s\n",
			strings.Join(scenarios.Names(), ", "), strings.Join(scenarios.FleetNames(), ", "))
		os.Exit(2)
	}

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atlas: %v\n", err)
		os.Exit(2)
	}
	defer stopProfiles()

	sla := slicing.SLA{ThresholdMs: *threshold, Availability: *availability}
	real := realnet.New()
	sim := simnet.NewDefault()
	space := slicing.DefaultConfigSpace()
	seeds := mathx.Split(*seed, 8)

	sc := storeCtx{st: st, warm: *warm, save: *save}

	if serveMode {
		if *replayPath != "" {
			runReplay(*replayPath)
			return
		}
		// Training-budget flags passed explicitly override the serve
		// defaults (CI smokes shrink them); unset ones keep the
		// fleet-scale defaults serve.NewReconciler applies.
		tune := func(sys *core.System) {
			if explicitFlags["stage1-iters"] {
				sys.CalOpts.Iters, sys.CalOpts.Explore = *s1Iters, max(1, *s1Iters/4)
			}
			if explicitFlags["stage2-iters"] {
				sys.OffOpts.Iters, sys.OffOpts.Explore = *s2Iters, max(1, *s2Iters/5)
			}
			if explicitFlags["pool"] {
				sys.CalOpts.Pool, sys.OffOpts.Pool, sys.OnOpts.Pool = *pool, *pool, *pool
			}
		}
		runServe(*addr, fscen, serveOptions{
			policy:      policy,
			topo:        topo,
			placement:   place,
			capacity:    *capacity,
			store:       st,
			logPath:     *serveLog,
			tick:        *tick,
			workers:     *workers,
			seed:        *seed,
			tune:        tune,
			trace:       *traceFlag,
			traceFile:   *traceFile,
			historyCap:  *historyCap,
			timelineCap: *timelineCap,
			debugAddr:   *debugAddr,
		})
		return
	}

	if *fleetMode {
		runFleet(real, sim, st, fscen, policy, topo, place, *horizon, *capacity, *workers, *shards, *lockstep, *seed, !*noOracle)
		return
	}

	if *scenario != "" {
		runScenario(real, sim, sc, scen, *slices, *workers, *seed, *s1Iters, *s2Iters, *onIters, *batch, *pool, *alpha,
			overrides{traffic: *traffic, threshold: *threshold, availability: *availability})
		return
	}

	if *slices > 1 {
		// Heterogeneous thresholds by default; an explicit -threshold
		// applies to every tenant.
		thresholds := []float64{300, 400, 500}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "threshold" {
				thresholds = []float64{*threshold}
			}
		})
		runMultiSlice(real, sim, sc, *slices, *workers, *seed, *s1Iters, *s2Iters, *onIters, *batch, *pool, *alpha, *traffic, thresholds, *availability)
		return
	}

	fmt.Println("== stage 1: learning-based simulator ==")
	cal := newSharedCalibrator(real, sim, seeds[0].Int63(), *s1Iters, *batch, *pool, *alpha, *traffic)
	orig := cal.Discrepancy(slicing.DefaultSimParams())
	cres := sc.calibrate(cal, seeds[1].Int63())
	fmt.Printf("original discrepancy: %.3f\n", orig)
	fmt.Printf("calibrated:           %.3f (%.0f%% reduction), parameter distance %.3f\n",
		cres.BestKL, 100*(1-cres.BestKL/orig), cres.BestDistance)
	fmt.Printf("best parameters:      %v\n\n", cres.BestParams)

	aug := sim.WithParams(cres.BestParams)

	fmt.Println("== stage 2: offline training ==")
	oopts := core.DefaultOfflineOptions()
	oopts.Iters, oopts.Batch, oopts.Pool, oopts.SLA, oopts.Traffic = *s2Iters, *batch, *pool, sla, *traffic
	oopts.Explore = *s2Iters / 5
	oout := core.RunOfflineWithStore(aug, oopts, core.OfflineSeed(aug, seeds[2].Int63(), oopts), sc.st, sc.warm, sc.save)
	if oout.Diag != nil {
		fmt.Fprintf(os.Stderr, "atlas: store diagnostic (stage 2): %v\n", oout.Diag)
	}
	if oout.Hit {
		fmt.Printf("restored policy %.12s from the artifact store\n", oout.Key)
	}
	ores := oout.Result
	fmt.Printf("best offline config:  %v\n", ores.BestConfig)
	fmt.Printf("offline usage/QoE:    %.1f%% / %.3f (lambda %.2f)\n\n",
		100*ores.BestUsage, ores.BestQoE, ores.Policy.Lambda)

	fmt.Println("== stage 3: online learning ==")
	oracle := baselines.FindOracle(real, space, sla, *traffic, 400, 2, seeds[3].Int63())
	fmt.Printf("oracle (phi*):        usage %.1f%% QoE %.3f\n", 100*oracle.Usage, oracle.QoE)

	lopts := core.DefaultOnlineOptions()
	lopts.Pool = *pool
	learner := core.NewOnlineLearner(ores.Policy, aug, lopts, seeds[4])
	run := baselines.RunOnline(learner, real, space, sla, *traffic, *onIters, oracle, seeds[5].Int63())
	fmt.Printf("first online action:  usage %.1f%% QoE %.3f (sim-to-real gap made visible)\n",
		100*run.Usages[0], run.QoEs[0])
	tail := max(1, *onIters/5)
	fmt.Printf("converged (last %d):  usage %.1f%% QoE %.3f\n",
		tail, 100*baselines.MeanTail(run.Usages, tail), baselines.MeanTail(run.QoEs, tail))
	fmt.Printf("avg usage regret:     %.2f%%\n", 100*run.Regret.AvgUsageRegret())
	fmt.Printf("avg QoE regret:       %.3f\n", run.Regret.AvgQoERegret())
}

// storeCtx bundles the artifact-store flags every run path threads
// through: the (optional) store plus the warm/save policy.
type storeCtx struct {
	st   *store.Store
	warm bool
	save bool
}

// calibrate runs (or restores) stage 1, reporting store traffic.
func (sc storeCtx) calibrate(cal *core.Calibrator, seed int64) *core.CalibrationResult {
	res, key, hit, diag := core.RunCalibrationWithStore(cal, seed, sc.st, sc.warm, sc.save)
	if diag != nil {
		fmt.Fprintf(os.Stderr, "atlas: store diagnostic (stage 1): %v\n", diag)
	}
	if hit {
		fmt.Printf("restored calibration %.12s from the artifact store\n", key)
	}
	return res
}

// apply wires the store into an orchestrator.
func (sc storeCtx) apply(orch *core.Orchestrator) {
	orch.Store = sc.st
	orch.Opts.Warm = sc.warm
	orch.Opts.Save = sc.save
}

// report prints the offline-training accounting of an orchestrated run.
func (sc storeCtx) report(res *core.OrchestratorResult) {
	fmt.Printf("\noffline training: %d trained, %d restored from store, %d shared in-run\n",
		res.OfflineTrainings, res.OfflineStoreHits, res.OfflineShared)
	seen := map[string]bool{}
	for _, sr := range res.Slices {
		// Shared flights surface the same diagnostic on every rider;
		// print each distinct one once.
		if sr.OfflineDiag != nil && !seen[sr.OfflineDiag.Error()] {
			seen[sr.OfflineDiag.Error()] = true
			fmt.Fprintf(os.Stderr, "atlas: store diagnostic: %v\n", sr.OfflineDiag)
		}
	}
}

// overrides carries the per-tenant flags a user set explicitly on top
// of a scenario. Scenario classes carry their own nominal demand and
// SLA; an explicitly passed -traffic / -threshold / -availability
// overrides them for every tenant instead of being silently ignored.
type overrides struct {
	traffic      int
	threshold    float64
	availability float64
}

// explicit zeroes the fields whose flags the user did not pass.
func (o overrides) explicit() overrides {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if !set["traffic"] {
		o.traffic = 0
	}
	if !set["threshold"] {
		o.threshold = 0
	}
	if !set["availability"] {
		o.availability = 0
	}
	return o
}

// apply folds the explicit overrides into one scenario spec. The
// orchestrator rebinds the class's QoE model to an overridden SLA.
func (o overrides) apply(spec *core.SliceSpec) {
	if o.traffic > 0 {
		spec.Traffic = o.traffic
	}
	if o.threshold > 0 {
		spec.SLA.ThresholdMs = o.threshold
	}
	if o.availability > 0 {
		spec.SLA.Availability = o.availability
	}
}

// newSharedCalibrator collects fresh real-network measurements and
// builds the stage-1 calibrator both the single- and multi-slice paths
// share.
func newSharedCalibrator(real *realnet.Network, sim *simnet.Simulator, drSeed int64, s1Iters, batch, pool int, alpha float64, traffic int) *core.Calibrator {
	dr := real.Collect(core.FullConfig(), traffic, 3, drSeed)
	copts := core.DefaultCalibratorOptions()
	copts.Iters, copts.Batch, copts.Pool, copts.Alpha, copts.Traffic = s1Iters, batch, pool, alpha, traffic
	copts.Explore = s1Iters / 5
	return core.NewCalibrator(sim, dr, copts)
}

// runFleet is the control-plane path: a dynamic fleet of slices
// arriving and departing over finite capacity — a single pool, or a
// multi-cell site graph with a placement stage — with capacity-aware
// admission and preemption-free downscale arbitration.
func runFleet(real *realnet.Network, sim *simnet.Simulator, st *store.Store, fs scenarios.FleetScenario, policy fleet.Policy, topo *topology.Graph, place topology.Policy, horizon int, capacityCells float64, workers, shards int, lockstep bool, seed int64, oracle bool) {
	if horizon <= 0 {
		horizon = fs.Horizon
	}
	capacity := fs.Capacity
	if capacityCells > 0 {
		capacity = slicing.CellCapacity(capacityCells)
	}
	fmt.Printf("== fleet scenario %q: %s ==\n", fs.Name, fs.Description)
	if topo != nil {
		fmt.Printf("policy %s, horizon %d epochs, topology %s (%d sites, %.2g cells), placement %s\n\n",
			policy.Name(), horizon, topo.Name, len(topo.Sites), topo.TotalCells(), place.Name())
	} else {
		fmt.Printf("policy %s, horizon %d epochs, capacity %v\n\n", policy.Name(), horizon, capacity)
	}

	ctl := fleet.NewController(real, sim, fs.Classes, fleet.Options{
		Horizon:   horizon,
		Capacity:  capacity,
		Topology:  topo,
		Placement: place,
		Policy:    policy,
		Seed:      seed,
		Workers:   workers,
		Shards:    shards,
		Lockstep:  lockstep,
		Oracle:    oracle,
		Store:     st,
	})
	res, err := ctl.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "atlas: fleet run: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("arrivals %d: admitted %d, rejected %d, departed %d (acceptance ratio %.3f)\n",
		res.Arrivals, res.Admitted, res.Rejected, res.Departed, res.AcceptanceRatio)
	fmt.Printf("utilization mean ran/tn/cn: %.1f%%/%.1f%%/%.1f%%  peak: %.1f%%/%.1f%%/%.1f%%\n",
		100*res.MeanUtil.RAN, 100*res.MeanUtil.TN, 100*res.MeanUtil.CN,
		100*res.PeakUtil.RAN, 100*res.PeakUtil.TN, 100*res.PeakUtil.CN)
	fmt.Printf("served %d slice-epochs, %d SLA violations, %d downscale arbitrations\n",
		res.ServedEpochs, res.SLAViolations, res.Downscales)
	fmt.Printf("QoE-weighted value: %.2f", res.QoEWeightedValue)
	if oracle {
		fmt.Printf(" (infinite-capacity oracle %.2f, regret %.2f)", res.OracleValue, res.Regret)
	}
	fmt.Println()

	if topo != nil {
		fmt.Printf("placement: %d/%d placed (ratio %.3f), inter-site RAN imbalance %.3f\n",
			res.Placed, res.PlacementAttempts, res.PlacementRatio, res.Imbalance)
		fmt.Println("\nper-site occupancy:")
		for _, ss := range res.Sites {
			fmt.Printf("%-16s placed %3d ran util mean %5.1f%% peak %5.1f%%\n",
				ss.Site, ss.Placed, 100*ss.MeanRanUtil, 100*ss.PeakRanUtil)
		}
	}

	fmt.Println("\nper-class admission:")
	for _, cs := range res.Classes {
		fmt.Printf("%-20s arrivals %3d admitted %3d rejected %3d value %8.2f\n",
			cs.Class, cs.Arrivals, cs.Admitted, cs.Rejected, cs.Value)
	}
	if n := len(res.Rejections); n > 0 {
		fmt.Printf("\nfirst rejections (of %d):\n", n)
		for i, rj := range res.Rejections {
			if i == 5 {
				break
			}
			fmt.Printf("epoch %3d %-20s %s\n", rj.Epoch, rj.ID, rj.Reason)
		}
	}
	for _, d := range res.Diags {
		fmt.Fprintf(os.Stderr, "atlas: store diagnostic: %v\n", d)
	}
}

// runScenario is the catalog-driven path: one shared stage-1
// calibration, then a heterogeneous fleet expanded from the scenario's
// service classes, with per-slice and per-class reporting.
func runScenario(real *realnet.Network, sim *simnet.Simulator, sc storeCtx, scen scenarios.Scenario, nSlices, workers int, seed int64, s1Iters, s2Iters, onIters, batch, pool int, alpha float64, over overrides) {
	over = over.explicit()
	seeds := mathx.Split(seed, 4)

	fmt.Printf("== scenario %q: %s ==\n", scen.Name, scen.Description)
	fmt.Printf("== stage 1 (shared): learning-based simulator ==\n")
	cres := sc.calibrate(newSharedCalibrator(real, sim, seeds[0].Int63(), s1Iters, batch, pool, alpha, 1), seeds[1].Int63())
	fmt.Printf("calibrated discrepancy %.3f, parameter distance %.3f\n\n", cres.BestKL, cres.BestDistance)
	aug := sim.WithParams(cres.BestParams)

	specs := scen.Specs(nSlices)
	for i := range specs {
		specs[i].Train = true
		over.apply(&specs[i])
	}

	opts := core.DefaultOrchestratorOptions()
	opts.Workers = workers
	opts.Intervals = onIters
	opts.Seed = seeds[2].Int63()
	opts.Online.Pool = pool
	opts.Offline.Iters, opts.Offline.Batch, opts.Offline.Pool = s2Iters, batch, pool
	opts.Offline.Explore = s2Iters / 5

	fmt.Printf("== stages 2+3: %d slices over %d classes, %d intervals each ==\n",
		nSlices, len(scen.Classes), onIters)
	orch := core.NewOrchestrator(real, aug, specs, opts)
	sc.apply(orch)
	res := orch.Run()
	tail := max(1, onIters/5)
	for _, sr := range res.Slices {
		if sr.Err != nil {
			fmt.Printf("%-20s error: %v\n", sr.Spec.ID, sr.Err)
			continue
		}
		class := sr.Spec.Class
		fmt.Printf("%-20s qoe=%s traffic=%s(%d): usage %.1f%% QoE %.3f (target %.2f, tail %d)\n",
			sr.Spec.ID, class.QoEModelName(), class.TrafficModelName(), sr.Spec.Traffic,
			100*baselines.MeanTail(sr.Usages, tail), baselines.MeanTail(sr.QoEs, tail),
			sr.Spec.SLA.Availability, tail)
	}

	fmt.Println("\nper-class epoch metrics:")
	for _, cm := range res.Classes {
		fmt.Printf("%-20s slices=%d mean usage %.1f%% mean QoE %.3f violations %d\n",
			cm.Class, cm.Slices, 100*cm.MeanUsage, cm.MeanQoE, cm.Violations)
	}
	last := res.Epochs[len(res.Epochs)-1]
	fmt.Printf("\nfinal epoch: mean usage %.1f%% mean QoE %.3f, %d violations across run\n",
		100*last.MeanUsage, last.MeanQoE, res.TotalViolations())
	sc.report(res)
}

// runMultiSlice is the legacy orchestrated path (no scenario): one
// shared stage-1 calibration, then nSlices per-tenant stage-2/stage-3
// pipelines running concurrently.
func runMultiSlice(real *realnet.Network, sim *simnet.Simulator, sc storeCtx, nSlices, workers int, seed int64, s1Iters, s2Iters, onIters, batch, pool int, alpha float64, traffic int, thresholds []float64, availability float64) {
	seeds := mathx.Split(seed, 4)

	fmt.Printf("== stage 1 (shared): learning-based simulator ==\n")
	cres := sc.calibrate(newSharedCalibrator(real, sim, seeds[0].Int63(), s1Iters, batch, pool, alpha, traffic), seeds[1].Int63())
	fmt.Printf("calibrated discrepancy %.3f, parameter distance %.3f\n\n", cres.BestKL, cres.BestDistance)
	aug := sim.WithParams(cres.BestParams)

	// Heterogeneous tenants: thresholds and traffic cycle over the
	// offered service classes.
	specs := make([]core.SliceSpec, nSlices)
	for i := range specs {
		specs[i] = core.SliceSpec{
			ID:      fmt.Sprintf("slice-%02d", i),
			SLA:     slicing.SLA{ThresholdMs: thresholds[i%len(thresholds)], Availability: availability},
			Traffic: 1 + i%core.MaxTraffic,
			Train:   true,
		}
	}

	opts := core.DefaultOrchestratorOptions()
	opts.Workers = workers
	opts.Intervals = onIters
	opts.Seed = seeds[2].Int63()
	opts.Online.Pool = pool
	opts.Offline.Iters, opts.Offline.Batch, opts.Offline.Pool = s2Iters, batch, pool
	opts.Offline.Explore = s2Iters / 5

	fmt.Printf("== stages 2+3: %d slices, %d intervals each ==\n", nSlices, onIters)
	orch := core.NewOrchestrator(real, aug, specs, opts)
	sc.apply(orch)
	res := orch.Run()
	for _, sr := range res.Slices {
		if sr.Err != nil {
			fmt.Printf("%-10s error: %v\n", sr.Spec.ID, sr.Err)
			continue
		}
		tail := max(1, onIters/5)
		fmt.Printf("%-10s traffic=%d Y=%.0fms: usage %.1f%% QoE %.3f (tail %d)\n",
			sr.Spec.ID, sr.Spec.Traffic, sr.Spec.SLA.ThresholdMs,
			100*baselines.MeanTail(sr.Usages, tail), baselines.MeanTail(sr.QoEs, tail), tail)
	}
	last := res.Epochs[len(res.Epochs)-1]
	fmt.Printf("\nfinal epoch: mean usage %.1f%% mean QoE %.3f, %d violations across run\n",
		100*last.MeanUsage, last.MeanQoE, res.TotalViolations())
	sc.report(res)
}
