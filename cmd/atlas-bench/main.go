// Command atlas-bench regenerates the paper's evaluation artifacts.
//
// Each table and figure of the paper is a registered experiment; run one
// by id or the whole suite:
//
//	atlas-bench -run table1
//	atlas-bench -run fig8,fig13
//	atlas-bench -run all
//	atlas-bench -run all -paper   # paper-scale budgets (hours)
//	atlas-bench -list
//
// Results print as aligned text tables with paper-vs-measured notes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/atlas-slicing/atlas/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment id(s), comma-separated, or 'all'")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		seed  = flag.Int64("seed", 42, "master seed")
		paper = flag.Bool("paper", false, "paper-scale budgets (500/1000/100 iterations)")
		quick = flag.Bool("quick", false, "tiny budgets (smoke testing)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.SortedIDs() {
			fmt.Println(id)
		}
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}

	budget := experiments.DefaultBudget()
	if *paper {
		budget = experiments.PaperBudget()
	}
	if *quick {
		budget = experiments.QuickBudget()
	}

	ids := strings.Split(*run, ",")
	if strings.EqualFold(*run, "all") {
		ids = experiments.SortedIDs()
	}

	lab := experiments.NewLab(*seed, budget)
	params := experiments.Params{Seed: *seed, Budget: budget, Lab: lab}

	for _, id := range ids {
		id = strings.TrimSpace(strings.ToLower(id))
		f, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "atlas-bench: unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		res := f(params)
		res.AddNote("wall time %.1fs", time.Since(start).Seconds())
		res.Print(os.Stdout)
	}
}
