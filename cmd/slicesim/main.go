// Command slicesim runs the network simulator (or the real-network
// surrogate) standalone for one configuration interval and prints the
// trace: latency statistics, component breakdown, and link-layer
// metrics. It is the debugging companion of the simulator substrate.
//
//	slicesim -env sim -traffic 2 -ul 20 -dl 10 -backhaul 25 -cpu 0.6
//	slicesim -env real -measure
//	slicesim -env sim -trace frames.csv   # per-frame tracer output
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/atlas-slicing/atlas/internal/realnet"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/stats"
)

func main() {
	var (
		env      = flag.String("env", "sim", "environment: sim | real")
		traffic  = flag.Int("traffic", 1, "concurrent on-the-fly frames")
		seed     = flag.Int64("seed", 1, "episode seed")
		distance = flag.Float64("distance", 1, "user-eNB distance in metres (real env)")
		measure  = flag.Bool("measure", false, "run the Table-1 link-layer measurement instead of an episode")

		ul       = flag.Float64("ul", 50, "uplink PRBs")
		dl       = flag.Float64("dl", 50, "downlink PRBs")
		mcsUL    = flag.Float64("mcs-ul", 0, "uplink MCS offset")
		mcsDL    = flag.Float64("mcs-dl", 0, "downlink MCS offset")
		backhaul = flag.Float64("backhaul", 100, "backhaul bandwidth (Mbps)")
		cpu      = flag.Float64("cpu", 1, "edge CPU ratio")
		y        = flag.Float64("threshold", 300, "latency threshold Y (ms) for QoE")
		trace    = flag.String("trace", "", "write per-frame tracer records as CSV to this file (sim env only)")
	)
	flag.Parse()

	cfg := slicing.Config{
		BandwidthUL: *ul, BandwidthDL: *dl,
		MCSOffsetUL: *mcsUL, MCSOffsetDL: *mcsDL,
		BackhaulMbps: *backhaul, CPURatio: *cpu,
	}

	var network slicing.Env
	var measurer interface {
		Measure(slicing.Config, int64) slicing.Trace
	}
	var tracer *simnet.Simulator
	switch *env {
	case "sim":
		s := simnet.NewDefault()
		network, measurer, tracer = s, s, s
	case "real":
		n := realnet.NewAtDistance(*distance)
		network, measurer = n, n
	default:
		fmt.Fprintf(os.Stderr, "slicesim: unknown env %q\n", *env)
		os.Exit(2)
	}

	if *trace != "" {
		if tracer == nil {
			fmt.Fprintln(os.Stderr, "slicesim: -trace requires -env sim (the real network exposes no tracer)")
			os.Exit(2)
		}
		_, recs := tracer.EpisodeRecords(cfg, *traffic, *seed)
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slicesim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := simnet.WriteFrameCSV(f, recs); err != nil {
			fmt.Fprintln(os.Stderr, "slicesim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d frame records to %s\n", len(recs), *trace)
		return
	}

	if *measure {
		m := measurer.Measure(cfg, *seed)
		fmt.Printf("ping        %.1f ms\n", m.PingMs)
		fmt.Printf("UL tput     %.2f Mbps\n", m.ULThroughputMbps)
		fmt.Printf("DL tput     %.2f Mbps\n", m.DLThroughputMbps)
		fmt.Printf("UL PER      %.2e\n", m.ULPER)
		fmt.Printf("DL PER      %.2e\n", m.DLPER)
		return
	}

	tr := network.Episode(cfg, *traffic, *seed)
	sla := slicing.SLA{ThresholdMs: *y, Availability: 0.9}
	s := stats.Summarize(tr.LatenciesMs)
	fmt.Printf("config      %v\n", cfg)
	fmt.Printf("usage       %.1f%%\n", 100*slicing.DefaultConfigSpace().Usage(cfg))
	fmt.Printf("frames      %d\n", tr.Frames)
	fmt.Printf("latency     mean %.1f ms, std %.1f, p50 %.1f, p95 %.1f, p99 %.1f\n",
		s.Mean, s.Std,
		stats.Quantile(tr.LatenciesMs, 0.5), stats.Quantile(tr.LatenciesMs, 0.95), stats.Quantile(tr.LatenciesMs, 0.99))
	fmt.Printf("QoE(Y=%.0f)  %.3f\n", *y, tr.QoE(sla))
	fmt.Printf("breakdown   loading %.1f | UL %.1f | backhaul %.1f | queue %.1f | compute %.1f | DL %.1f ms\n",
		tr.MeanLoadingMs, tr.MeanULMs, tr.MeanBackhaulMs, tr.MeanQueueMs, tr.MeanComputeMs, tr.MeanDLMs)
	fmt.Printf("PER         UL %.2e, DL %.2e\n", tr.ULPER, tr.DLPER)
}
