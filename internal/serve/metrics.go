package serve

import (
	"time"

	"github.com/atlas-slicing/atlas/internal/obs"
)

// serveMetrics is the daemon's own observability bundle, layered on
// top of the engine/core/store/ledger instrumentation the reconciler's
// registry already carries: the serving-epoch tick fan-out (registered
// under the same shard families the batch engine exports, so both
// execution modes speak one shard vocabulary), the daemon's live-state
// gauges, and per-route HTTP latencies. Like every obs bundle it is
// nil-safe and result-invariant — recordings are atomic stores after
// the fact.
type serveMetrics struct {
	reg *obs.Registry

	ticks       *obs.Counter
	queueDepth  *obs.Gauge
	barrierWait *obs.Histogram

	epoch     *obs.Gauge
	live      *obs.Gauge
	operating *obs.Gauge
}

func newServeMetrics(reg *obs.Registry, log *EventLog) *serveMetrics {
	if reg == nil {
		return nil
	}
	m := &serveMetrics{
		reg: reg,
		ticks: reg.Counter("atlas_shard_events_total",
			"Events routed to shard queues by kind.", obs.L("kind", "tick")),
		queueDepth: reg.Gauge("atlas_shard_queue_depth",
			"Shard event-queue depth observed at the most recent send."),
		barrierWait: reg.Histogram("atlas_shard_barrier_wait_seconds",
			"Coordinator wall time from tick broadcast to the last shard ack.", nil),
		epoch: reg.Gauge("atlas_serve_epoch",
			"Current serving epoch (reconciler ticks since start)."),
		live: reg.Gauge("atlas_serve_slices_live",
			"Live (admitted, undeleted) slices the engine tracks."),
		operating: reg.Gauge("atlas_serve_slices_operating",
			"Slices in the OPERATING state, stepped every tick."),
	}
	// The event log is its own lock domain, so its length is collected
	// at scrape time instead of being mirrored into a gauge on every
	// transition.
	reg.GaugeFunc("atlas_serve_events",
		"Slice state transitions appended to the event log.",
		func() float64 { return float64(log.Len()) })
	return m
}

// recordTick accounts one serving-epoch fan-out: groups per-site step
// groups dispatched (the serve path's shard queue), operating the
// slices stepped, barrier the StepGroups start time.
func (m *serveMetrics) recordTick(groups, operating int, barrier time.Time) {
	if m == nil {
		return
	}
	m.ticks.Inc()
	m.queueDepth.Set(float64(groups))
	m.operating.Set(float64(operating))
	m.barrierWait.ObserveSince(barrier)
}

// recordState refreshes the daemon's state gauges after a command or
// tick mutated the slice books.
func (m *serveMetrics) recordState(epoch, live int) {
	if m == nil {
		return
	}
	m.epoch.Set(float64(epoch))
	m.live.Set(float64(live))
}

// httpMetrics is the HTTP front's per-route accounting, built once at
// mux construction.
type httpMetrics struct {
	requests *obs.Counter
	seconds  *obs.Histogram
}

func newHTTPMetrics(reg *obs.Registry, route string) httpMetrics {
	if reg == nil {
		return httpMetrics{}
	}
	return httpMetrics{
		requests: reg.Counter("atlas_http_requests_total",
			"API requests served by route.", obs.L("route", route)),
		seconds: reg.Histogram("atlas_http_request_seconds",
			"API request latency by route.", nil, obs.L("route", route)),
	}
}

func (m httpMetrics) record(start time.Time) {
	m.requests.Inc()
	m.seconds.ObserveSince(start)
}
