// Package serve is the slice-lifecycle control-plane daemon over the
// fleet engine: a long-lived HTTP+JSON API through which external
// tenants request, activate, modify, deactivate, and delete network
// slices, mirroring the GST→NEST creation-phase orchestration of
// ONAP-style slice automation. Batch runs replay a fixed arrival trace
// and print a Result struct; serve turns the same admission + placement
// + online-learning machinery into a serving system — an async request
// queue feeds a single-writer reconciler goroutine, per-slice state is
// persisted as events in an append-only log (replayable for crash
// recovery), and SIGTERM drains gracefully by checkpointing every live
// slice.
package serve

import "fmt"

// State is one slice's lifecycle state, following the
// commissioned/operating phases of the 3GPP/GSMA slice lifecycle: a
// REQUESTED slice awaits the admission decision, an AVAILABLE slice
// holds a capacity reservation but is not stepping, an OPERATING slice
// is served (stepped, accruing QoE) every reconciler epoch. REJECTED
// and DELETED are terminal.
type State string

const (
	StateRequested State = "REQUESTED"
	StateAvailable State = "AVAILABLE"
	StateOperating State = "OPERATING"
	StateRejected  State = "REJECTED"
	StateDeleted   State = "DELETED"
)

// Op is one lifecycle operation. OpRequest, OpAdmit, and OpReject are
// reconciler-internal (a POST /slices produces a request event followed
// by the admission decision); the rest map one-to-one onto API verbs.
type Op string

const (
	OpRequest    Op = "request"
	OpAdmit      Op = "admit"
	OpReject     Op = "reject"
	OpActivate   Op = "activate"
	OpModify     Op = "modify"
	OpDeactivate Op = "deactivate"
	OpDelete     Op = "delete"
)

// transitions is the legal state machine. Deleting an OPERATING slice
// is deliberately illegal — it must deactivate first, as in the 3GPP
// lifecycle where decommissioning requires deactivation — and modify
// is legal in both commissioned states (the reservation resizes whether
// or not the slice is currently stepping). The empty state is genesis:
// only a request leaves it.
var transitions = map[State]map[Op]State{
	"":             {OpRequest: StateRequested},
	StateRequested: {OpAdmit: StateAvailable, OpReject: StateRejected},
	StateAvailable: {OpActivate: StateOperating, OpModify: StateAvailable, OpDelete: StateDeleted},
	StateOperating: {OpModify: StateOperating, OpDeactivate: StateAvailable},
	StateRejected:  {},
	StateDeleted:   {},
}

// Next returns the state op leads to from s, or an error when the
// transition is illegal.
func Next(s State, op Op) (State, error) {
	if to, ok := transitions[s][op]; ok {
		return to, nil
	}
	return "", fmt.Errorf("serve: illegal transition: %s from state %q", op, s)
}

// Terminal reports whether no operation can leave the state.
func Terminal(s State) bool {
	return len(transitions[s]) == 0
}
