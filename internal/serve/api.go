package serve

import (
	"errors"

	"github.com/atlas-slicing/atlas/internal/fleet"
	"github.com/atlas-slicing/atlas/internal/obs"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/store"
)

// CreateRequest is the body of POST /slices: a tenant asking for a
// slice of a cataloged service class.
type CreateRequest struct {
	// ID names the slice; empty lets the server assign slice-NNNN.
	ID string `json:"id,omitempty"`
	// Class is a service-class name from the serving catalog (the
	// configured fleet scenario's classes).
	Class string `json:"class"`
	// Traffic overrides the class's nominal demand (0 = class default).
	Traffic int `json:"traffic,omitempty"`
	// Home is the tenant's home cell on topology runs (empty = the
	// daemon picks none; hosting away from home costs delivered QoE).
	Home string `json:"home,omitempty"`
	// Value overrides the catalog's per-epoch revenue weight (nil =
	// catalog default); Elastic likewise overrides whether the downscale
	// arbitrator may shrink this tenant.
	Value   *float64 `json:"value,omitempty"`
	Elastic *bool    `json:"elastic,omitempty"`
}

// ModifyRequest is the body of POST /slices/{id}/modify: a first-class
// re-optimization of a live slice. The reconciler re-runs stage 2 for
// the new demand, resizes the reservation envelope in place, and — when
// in-place growth does not fit on a topology run — re-runs placement
// and migrates the reservation.
type ModifyRequest struct {
	// Traffic is the new nominal demand (required, >= 1).
	Traffic int `json:"traffic"`
}

// DemandView is a reservation footprint in API form.
type DemandView struct {
	RanPRB float64 `json:"ran_prb"`
	TnMbps float64 `json:"tn_mbps"`
	CnCPU  float64 `json:"cn_cpu"`
}

func demandView(d slicing.Demand) *DemandView {
	if d.IsZero() {
		return nil
	}
	return &DemandView{RanPRB: d.RanPRB, TnMbps: d.TnMbps, CnCPU: d.CnCPU}
}

// SliceView is one slice's externally visible state, returned by every
// slice endpoint.
type SliceView struct {
	ID      string  `json:"id"`
	Class   string  `json:"class"`
	State   State   `json:"state"`
	Traffic int     `json:"traffic"`
	Value   float64 `json:"value"`
	Elastic bool    `json:"elastic"`
	Home    string  `json:"home,omitempty"`
	Site    string  `json:"site,omitempty"`
	// Reason is the rejection reason ("policy" or "capacity") on
	// REJECTED slices.
	Reason string `json:"reason,omitempty"`
	// Demand is the reserved envelope; PredictedQoE the offline
	// artifact's predicted quality.
	Demand       *DemandView `json:"demand,omitempty"`
	PredictedQoE float64     `json:"predicted_qoe,omitempty"`
	// Epochs counts served configuration intervals; LastQoE and MeanQoE
	// summarize delivered quality over them.
	Epochs  int     `json:"epochs"`
	LastQoE float64 `json:"last_qoe,omitempty"`
	MeanQoE float64 `json:"mean_qoe,omitempty"`
	// Downscales counts arbitration-driven envelope tightenings this
	// slice's admission caused (on the newcomer's view).
	Downscales int `json:"downscales,omitempty"`
}

// Event is one append-only-log entry: a slice's state transition. The
// log is the serve path's system of record — folding events through the
// state machine reproduces every slice's final state exactly (see
// Fold), which is what crash recovery and the CI smoke's replay check
// rely on. Epoch is the reconciler epoch at which the transition fired,
// not wall-clock time, so replay is deterministic.
type Event struct {
	Seq    int    `json:"seq"`
	Epoch  int    `json:"epoch"`
	Slice  string `json:"slice"`
	Op     Op     `json:"op"`
	From   State  `json:"from,omitempty"`
	To     State  `json:"to"`
	Detail string `json:"detail,omitempty"`
}

// Health is the GET /healthz body.
type Health struct {
	Status string `json:"status"`
	Epoch  int    `json:"epoch"`
	Slices int    `json:"slices"`
	Events int    `json:"events"`
}

// UtilizationView is the ledger's per-domain reserved fraction in API
// form.
type UtilizationView struct {
	RAN float64 `json:"ran"`
	TN  float64 `json:"tn"`
	CN  float64 `json:"cn"`
}

// SiteStatsView is one site's occupancy in the GET /stats body.
type SiteStatsView struct {
	Site           string  `json:"site"`
	RanUtilization float64 `json:"ran_utilization"`
	Reservations   int     `json:"reservations"`
}

// StoreStatsView is the artifact store's traffic counters in API form.
type StoreStatsView struct {
	Hits    int `json:"hits"`
	Misses  int `json:"misses"`
	Corrupt int `json:"corrupt"`
	Puts    int `json:"puts"`
	Deletes int `json:"deletes"`
}

func storeStatsView(s store.Stats) StoreStatsView {
	return StoreStatsView{Hits: s.Hits, Misses: s.Misses, Corrupt: s.Corrupt, Puts: s.Puts, Deletes: s.Deletes}
}

// StatsView is the GET /stats body: one internally consistent snapshot
// of the daemon — lifecycle census by state, the engine's decision
// accounting, ledger utilization (aggregate and per site on topology
// runs), artifact-store traffic, and any accumulated store
// diagnostics. Assembled on the reconciler goroutine, so every field
// describes the same instant.
type StatsView struct {
	Epoch  int                  `json:"epoch"`
	States map[string]int       `json:"slices_by_state"`
	Live   int                  `json:"live"`
	Events int                  `json:"events"`
	Engine fleet.EngineCounters `json:"engine"`

	Utilization *UtilizationView `json:"utilization,omitempty"`
	Sites       []SiteStatsView  `json:"sites,omitempty"`

	Store            StoreStatsView `json:"store"`
	StoreDiagnostics []string       `json:"store_diagnostics,omitempty"`
}

// HistoryView is the GET /history body: the requested flight-recorder
// series plus the full list of recorded series names, so a client can
// discover what it may ask for.
type HistoryView struct {
	Series    []obs.SeriesHistory `json:"series"`
	Available []string            `json:"available"`
}

// SLOView is the GET /slo body: every declared objective's evaluation
// plus a breach count for at-a-glance health.
type SLOView struct {
	Objectives []obs.SLOStatus `json:"objectives"`
	Breached   int             `json:"breached"`
}

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// Sentinel errors the reconciler returns; the HTTP layer maps them to
// status codes (404, 409, 400).
var (
	ErrNotFound   = errors.New("serve: slice not found")
	ErrConflict   = errors.New("serve: conflict")
	ErrBadRequest = errors.New("serve: bad request")
)
