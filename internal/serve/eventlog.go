package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// EventLog is the append-only slice-lifecycle log: every state
// transition the reconciler performs lands here, in memory and (when
// opened with a path) as one JSON line per event on disk. The disk form
// is the serve path's durable system of record — ReplayFile folds it
// back into per-slice final states for crash recovery and for the CI
// smoke's replay check.
//
// Appends are cheap (buffered writes); Sync flushes the buffer and
// fsyncs, and the reconciler calls it on drain. The log tolerates a
// missing file path (pure in-memory operation) so tests and ephemeral
// runs need no disk.
type EventLog struct {
	mu      sync.Mutex
	events  []Event
	f       *os.File
	w       *bufio.Writer
	path    string
	lastErr error
}

// OpenEventLog opens (or creates) the log at path; an empty path keeps
// the log purely in memory. An existing file is replayed first — its
// events seed the in-memory view and the sequence counter, so a
// restarted daemon appends where the crashed one stopped.
func OpenEventLog(path string) (*EventLog, error) {
	l := &EventLog{path: path}
	if path == "" {
		return l, nil
	}
	if prior, err := readEvents(path); err != nil {
		if !os.IsNotExist(err) {
			return nil, fmt.Errorf("serve: replay event log %s: %w", path, err)
		}
	} else {
		l.events = prior
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: open event log %s: %w", path, err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	return l, nil
}

// Append stamps the event with the next sequence number, records it,
// and (with a file) writes its JSON line. Write errors are sticky and
// surface from Sync/Close; the in-memory log stays authoritative.
func (l *EventLog) Append(e Event) Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = len(l.events) + 1
	l.events = append(l.events, e)
	if l.w != nil {
		b, err := json.Marshal(e)
		if err == nil {
			b = append(b, '\n')
			_, err = l.w.Write(b)
		}
		if err != nil && l.lastErr == nil {
			l.lastErr = err
		}
	}
	return e
}

// Since returns the events with Seq > seq (all events for seq <= 0).
func (l *EventLog) Since(seq int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < 0 {
		seq = 0
	}
	if seq >= len(l.events) {
		return nil
	}
	return append([]Event(nil), l.events[seq:]...)
}

// Len returns the number of events appended so far.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Sync flushes buffered lines to disk (fsync included) and reports the
// first write error seen so far.
func (l *EventLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *EventLog) syncLocked() error {
	if l.w != nil {
		if err := l.w.Flush(); err != nil && l.lastErr == nil {
			l.lastErr = err
		}
	}
	if l.f != nil {
		if err := l.f.Sync(); err != nil && l.lastErr == nil {
			l.lastErr = err
		}
	}
	return l.lastErr
}

// Close flushes and closes the file (a memory-only log is a no-op).
func (l *EventLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.syncLocked()
	if l.f != nil {
		if cerr := l.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		l.f, l.w = nil, nil
	}
	return err
}

// readEvents parses one JSONL event file.
func readEvents(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Fold replays events through the state machine, validating every
// transition, and returns each slice's final state. This is the crash
// recovery primitive: the log alone reproduces the control plane's
// slice states, with no Result struct in sight.
func Fold(events []Event) (map[string]State, error) {
	states := map[string]State{}
	for _, e := range events {
		cur := states[e.Slice]
		if cur != e.From {
			return nil, fmt.Errorf("serve: event %d: slice %q is %q, event claims %q", e.Seq, e.Slice, cur, e.From)
		}
		to, err := Next(cur, e.Op)
		if err != nil {
			return nil, fmt.Errorf("serve: event %d: %w", e.Seq, err)
		}
		if to != e.To {
			return nil, fmt.Errorf("serve: event %d: %s from %q leads to %q, event claims %q", e.Seq, e.Op, cur, to, e.To)
		}
		states[e.Slice] = to
	}
	return states, nil
}

// ReplayFile reads a JSONL event log and folds it to final states,
// returning also the number of events replayed.
func ReplayFile(path string) (map[string]State, int, error) {
	events, err := readEvents(path)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: replay %s: %w", path, err)
	}
	states, err := Fold(events)
	if err != nil {
		return nil, 0, err
	}
	return states, len(events), nil
}
