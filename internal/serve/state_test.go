package serve

import "testing"

// TestTransitionTable walks every state x op pair and asserts exactly
// the legal set succeeds, with the documented target states.
func TestTransitionTable(t *testing.T) {
	states := []State{"", StateRequested, StateAvailable, StateOperating, StateRejected, StateDeleted}
	ops := []Op{OpRequest, OpAdmit, OpReject, OpActivate, OpModify, OpDeactivate, OpDelete}
	legal := map[State]map[Op]State{
		"":             {OpRequest: StateRequested},
		StateRequested: {OpAdmit: StateAvailable, OpReject: StateRejected},
		StateAvailable: {OpActivate: StateOperating, OpModify: StateAvailable, OpDelete: StateDeleted},
		StateOperating: {OpModify: StateOperating, OpDeactivate: StateAvailable},
		StateRejected:  {},
		StateDeleted:   {},
	}
	for _, s := range states {
		for _, op := range ops {
			want, ok := legal[s][op]
			got, err := Next(s, op)
			if ok {
				if err != nil {
					t.Errorf("Next(%q, %s): unexpected error %v", s, op, err)
				} else if got != want {
					t.Errorf("Next(%q, %s) = %q, want %q", s, op, got, want)
				}
			} else if err == nil {
				t.Errorf("Next(%q, %s) = %q, want illegal", s, op, got)
			}
		}
	}
}

// TestDeleteWhileOperatingIllegal pins the 3GPP-style rule that an
// OPERATING slice must deactivate before deletion.
func TestDeleteWhileOperatingIllegal(t *testing.T) {
	if _, err := Next(StateOperating, OpDelete); err == nil {
		t.Fatal("delete from OPERATING should be illegal")
	}
	if _, err := Next(StateAvailable, OpDelete); err != nil {
		t.Fatalf("delete from AVAILABLE should be legal: %v", err)
	}
}

// TestTerminal asserts exactly the two terminal states admit no ops.
func TestTerminal(t *testing.T) {
	for _, s := range []State{StateRejected, StateDeleted} {
		if !Terminal(s) {
			t.Errorf("Terminal(%q) = false, want true", s)
		}
	}
	for _, s := range []State{"", StateRequested, StateAvailable, StateOperating} {
		if Terminal(s) {
			t.Errorf("Terminal(%q) = true, want false", s)
		}
	}
}
