package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/url"
	"os"
	"path/filepath"

	"github.com/atlas-slicing/atlas/internal/obs"
)

// This file wires the flight recorder into the daemon: per-epoch fleet
// time series behind GET /history, per-slice timelines behind GET
// /slices/{id}/timeline (flushed to disk on drain), and the declarative
// SLO engine behind GET /slo and the atlas_slo_* metric series.

// Flight exposes the fleet time-series recorder (read-side: GET
// /history). Series rings are internally locked, so handlers read them
// without a reconciler round-trip.
func (r *Reconciler) Flight() *obs.Recorder { return r.flight }

// Timelines exposes the per-slice timeline store (read-side: GET
// /slices/{id}/timeline).
func (r *Reconciler) Timelines() *obs.TimelineStore { return r.timelines }

// SLO exposes the objective engine (read-side: GET /slo).
func (r *Reconciler) SLO() *obs.SLOEngine { return r.slo }

// Default SLO targets. Declarative and deliberately opinionated: a
// half-second admission path, one QoE miss in ten served slice-epochs,
// and nine in ten placement attempts hosted.
const (
	sloAdmissionP95Target  = 0.5
	sloQoEViolationTarget  = 0.1
	sloPlacementRatioFloor = 0.9
)

// declareSLOs builds the daemon's objective set. Every SLI reads
// concurrency-safe state (atomic counters, locked rings), so the
// engine evaluates at HTTP/export time without touching the reconciler
// goroutine.
func (r *Reconciler) declareSLOs() *obs.SLOEngine {
	e := obs.NewSLOEngine()
	// The admission-latency SLI reads the same histogram the engine
	// observes into: re-registering the family name returns the shared
	// handle.
	handle := r.reg.Histogram("atlas_admission_handle_seconds",
		"Wall time of one arrival's full admission path.", nil)
	e.Declare(obs.Objective{
		Name:   "admission-p95-latency",
		Help:   "95th percentile of the arrival admission path, seconds.",
		Target: sloAdmissionP95Target,
		SLI:    func() float64 { return handle.Quantile(0.95) },
	})
	for _, ac := range r.classes {
		class := ac.Class.Name
		served := r.flight.Series("served:" + class)
		violations := r.flight.Series("violations:" + class)
		e.Declare(obs.Objective{
			Name:   "qoe-violation-rate:" + class,
			Help:   "Fraction of served slice-epochs whose delivered QoE missed the class SLA, over the recorded window.",
			Target: sloQoEViolationTarget,
			SLI: func() float64 {
				s := served.WindowSum()
				if s == 0 {
					return math.NaN()
				}
				return violations.WindowSum() / s
			},
		})
	}
	e.Declare(obs.Objective{
		Name:   "placement-ratio",
		Help:   "Fraction of placement attempts hosted at a site (no data on single-pool runs).",
		Target: sloPlacementRatioFloor,
		Floor:  true,
		SLI: func() float64 {
			c := r.eng.Counters()
			if c.PlacementAttempts == 0 {
				return math.NaN()
			}
			return float64(c.Placements) / float64(c.PlacementAttempts)
		},
	})
	return e
}

// recordEpoch samples one serving epoch's already-computed aggregates
// into the flight recorder: census, delivered QoE (locality toll
// applied), utilization, and the per-class served/violation counts the
// QoE SLOs window over. ids and qoes are the stepped OPERATING slices
// and their tolled QoE this epoch (NaN = not served); both may be
// empty. Runs on the reconciler goroutine, post-step — no RNG, no
// feedback.
func (r *Reconciler) recordEpoch(live int, ids []string, qoes []float64) {
	epoch := r.epoch
	r.flight.Record(epoch, "live", float64(live))
	r.flight.Record(epoch, "operating", float64(len(ids)))
	c := r.eng.Counters()
	acc := 1.0
	if c.Arrivals > 0 {
		acc = c.AcceptanceRatio
	}
	r.flight.Record(epoch, "acceptance_ratio", acc)

	served := map[string]float64{}
	violated := map[string]float64{}
	qoeSum, value := 0.0, 0.0
	n := 0
	for i, id := range ids {
		if i >= len(qoes) || math.IsNaN(qoes[i]) {
			continue
		}
		rec := r.slices[id]
		qoe := qoes[i]
		qoeSum += qoe
		value += rec.value * qoe
		n++
		served[rec.class]++
		if qoe < r.classes[rec.classIdx].Class.SLA.Availability {
			violated[rec.class]++
		}
	}
	mean := 0.0
	if n > 0 {
		mean = qoeSum / float64(n)
	}
	r.flight.Record(epoch, "qoe_mean", mean)
	r.flight.Record(epoch, "qoe_value", value)
	for _, ac := range r.classes {
		class := ac.Class.Name
		r.flight.Record(epoch, "served:"+class, served[class])
		r.flight.Record(epoch, "violations:"+class, violated[class])
	}

	if r.sys.Ledger != nil {
		u := r.sys.Ledger.Utilization()
		r.flight.Record(epoch, "util_ran", u.RAN)
		r.flight.Record(epoch, "util_tn", u.TN)
		r.flight.Record(epoch, "util_cn", u.CN)
		if r.topo != nil {
			for _, su := range r.sys.Ledger.SiteUtilizations() {
				r.flight.Record(epoch, "site_ran_util:"+string(su.Site), su.RAN)
			}
		}
	}
}

// flushTimelines writes every tracked slice's timeline as one JSON file
// under <event-log dir>/timelines/, fsync'd — the drain-time flight
// record a postmortem reads next to the replayable event log. A
// memory-only daemon (no LogPath) skips the flush.
func (r *Reconciler) flushTimelines() error {
	if r.logPath == "" {
		return nil
	}
	dir := filepath.Join(filepath.Dir(r.logPath), "timelines")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: timeline dir: %w", err)
	}
	var firstErr error
	for _, id := range r.timelines.Slices() {
		view, ok := r.timelines.Get(id)
		if !ok {
			continue
		}
		b, err := json.MarshalIndent(view, "", "  ")
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("serve: timeline %s: %w", id, err)
			}
			continue
		}
		path := filepath.Join(dir, url.PathEscape(id)+".json")
		if err := writeFileSync(path, append(b, '\n')); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("serve: timeline %s: %w", id, err)
			}
		}
	}
	return firstErr
}

// writeFileSync writes data to path and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
