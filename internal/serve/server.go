package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Server fronts one Reconciler with the HTTP+JSON slice-lifecycle API:
//
//	POST   /slices                  create (request → admission decision)
//	GET    /slices                  list all slices
//	GET    /slices/{id}             one slice
//	POST   /slices/{id}/activate    AVAILABLE → OPERATING
//	POST   /slices/{id}/modify      resize (re-optimization)
//	POST   /slices/{id}/deactivate  OPERATING → AVAILABLE
//	DELETE /slices/{id}             AVAILABLE → DELETED
//	GET    /events?since=N          the append-only transition log
//	GET    /healthz                 liveness + counters
//
// Handlers only marshal: every mutation round-trips through the
// reconciler goroutine, so concurrent clients serialize there.
type Server struct {
	rec  *Reconciler
	addr string
}

// New builds the daemon: reconciler plus HTTP front.
func New(addr string, cfg Config) (*Server, error) {
	rec, err := NewReconciler(cfg)
	if err != nil {
		return nil, err
	}
	return &Server{rec: rec, addr: addr}, nil
}

// Reconciler exposes the command surface (tests drive it directly).
func (s *Server) Reconciler() *Reconciler { return s.rec }

// Handler builds the API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /slices", s.handleCreate)
	mux.HandleFunc("GET /slices", s.handleList)
	mux.HandleFunc("GET /slices/{id}", s.handleGet)
	mux.HandleFunc("POST /slices/{id}/activate", s.lifecycle(OpActivate))
	mux.HandleFunc("POST /slices/{id}/modify", s.handleModify)
	mux.HandleFunc("POST /slices/{id}/deactivate", s.lifecycle(OpDeactivate))
	mux.HandleFunc("DELETE /slices/{id}", s.lifecycle(OpDelete))
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// Run serves until ctx is cancelled, then shuts down gracefully: the
// HTTP listener drains first (in-flight handlers still reach the
// reconciler), the reconciler drains second (checkpoints + log flush).
// The ordering matters — handlers block on reconciler replies, so the
// reconciler must outlive them.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return err
	}
	recCtx, stopRec := context.WithCancel(context.Background())
	defer stopRec()
	recDone := make(chan struct{})
	go func() {
		defer close(recDone)
		s.rec.Run(recCtx)
	}()

	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("atlas serve: listening on %s\n", ln.Addr())

	select {
	case err := <-errc:
		stopRec()
		<-recDone
		return err
	case <-ctx.Done():
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutErr := srv.Shutdown(shutCtx)
	stopRec()
	<-recDone
	for _, d := range s.rec.Diagnostics() {
		fmt.Printf("atlas serve: diagnostic: %v\n", d)
	}
	for _, line := range s.rec.DrainReport() {
		fmt.Printf("atlas serve: drain checkpoint %s\n", line)
	}
	if shutErr != nil {
		return fmt.Errorf("serve: shutdown: %w", shutErr)
	}
	fmt.Println("atlas serve: drained cleanly")
	return nil
}

// writeJSON emits one JSON body with status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps reconciler sentinels onto status codes.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrConflict):
		status = http.StatusConflict
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	view, err := s.rec.Create(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	// A policy/capacity rejection is a completed decision, not an HTTP
	// error: the slice exists, terminally REJECTED.
	writeJSON(w, http.StatusCreated, view)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	views, err := s.rec.List()
	if err != nil {
		writeErr(w, err)
		return
	}
	if views == nil {
		views = []SliceView{}
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	view, err := s.rec.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) lifecycle(op Op) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		view, err := s.rec.Lifecycle(op, r.PathValue("id"), ModifyRequest{})
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, view)
	}
}

func (s *Server) handleModify(w http.ResponseWriter, r *http.Request) {
	var req ModifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	view, err := s.rec.Lifecycle(OpModify, r.PathValue("id"), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	since := 0
	if q := r.URL.Query().Get("since"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: since=%q", ErrBadRequest, q))
			return
		}
		since = n
	}
	events := s.rec.Log().Since(since)
	if events == nil {
		events = []Event{}
	}
	writeJSON(w, http.StatusOK, events)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h, err := s.rec.Health()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, h)
}
