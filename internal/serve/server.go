package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/atlas-slicing/atlas/internal/obs"
)

// Server fronts one Reconciler with the HTTP+JSON slice-lifecycle API:
//
//	POST   /slices                  create (request → admission decision)
//	GET    /slices                  list all slices
//	GET    /slices/{id}             one slice
//	POST   /slices/{id}/activate    AVAILABLE → OPERATING
//	POST   /slices/{id}/modify      resize (re-optimization)
//	POST   /slices/{id}/deactivate  OPERATING → AVAILABLE
//	DELETE /slices/{id}             AVAILABLE → DELETED
//	GET    /events?since=N          the append-only transition log
//	GET    /healthz                 liveness + counters
//	GET    /metrics                 Prometheus text exposition
//	GET    /stats                   JSON introspection snapshot
//	GET    /history?series=a,b&since=N   flight-recorder time series
//	GET    /slices/{id}/timeline    one slice's flight-recorder timeline
//	GET    /slo                     SLO evaluation with burn rates
//
// Handlers only marshal: every mutation round-trips through the
// reconciler goroutine, so concurrent clients serialize there.
type Server struct {
	rec       *Reconciler
	addr      string
	debugAddr string
}

// New builds the daemon: reconciler plus HTTP front.
func New(addr string, cfg Config) (*Server, error) {
	rec, err := NewReconciler(cfg)
	if err != nil {
		return nil, err
	}
	return &Server{rec: rec, addr: addr, debugAddr: cfg.DebugAddr}, nil
}

// Reconciler exposes the command surface (tests drive it directly).
func (s *Server) Reconciler() *Reconciler { return s.rec }

// Handler builds the API mux. Every route is wrapped in per-route
// request/latency accounting against the reconciler's registry.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(route string, h http.HandlerFunc) {
		m := newHTTPMetrics(s.rec.Registry(), route)
		mux.HandleFunc(route, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			h(w, r)
			m.record(start)
		})
	}
	handle("POST /slices", s.handleCreate)
	handle("GET /slices", s.handleList)
	handle("GET /slices/{id}", s.handleGet)
	handle("POST /slices/{id}/activate", s.lifecycle(OpActivate))
	handle("POST /slices/{id}/modify", s.handleModify)
	handle("POST /slices/{id}/deactivate", s.lifecycle(OpDeactivate))
	handle("DELETE /slices/{id}", s.lifecycle(OpDelete))
	handle("GET /slices/{id}/timeline", s.handleTimeline)
	handle("GET /events", s.handleEvents)
	handle("GET /healthz", s.handleHealth)
	handle("GET /metrics", s.handleMetrics)
	handle("GET /stats", s.handleStats)
	handle("GET /history", s.handleHistory)
	handle("GET /slo", s.handleSLO)
	return mux
}

// debugHandler builds the opt-in pprof mux served on DebugAddr — kept
// off the API listener so profiling exposure is an explicit choice.
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Run serves until ctx is cancelled, then shuts down gracefully: the
// HTTP listener drains first (in-flight handlers still reach the
// reconciler), the reconciler drains second (checkpoints + log flush).
// The ordering matters — handlers block on reconciler replies, so the
// reconciler must outlive them.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return err
	}
	recCtx, stopRec := context.WithCancel(context.Background())
	defer stopRec()
	recDone := make(chan struct{})
	go func() {
		defer close(recDone)
		s.rec.Run(recCtx)
	}()

	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("atlas serve: listening on %s\n", ln.Addr())

	var dbg *http.Server
	if s.debugAddr != "" {
		dln, err := net.Listen("tcp", s.debugAddr)
		if err != nil {
			_ = srv.Close()
			stopRec()
			<-recDone
			return fmt.Errorf("serve: debug listener: %w", err)
		}
		dbg = &http.Server{Handler: debugHandler()}
		go func() {
			if err := dbg.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Printf("atlas serve: debug listener: %v\n", err)
			}
		}()
		fmt.Printf("atlas serve: pprof on %s/debug/pprof/\n", dln.Addr())
	}

	select {
	case err := <-errc:
		stopRec()
		<-recDone
		return err
	case <-ctx.Done():
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutErr := srv.Shutdown(shutCtx)
	if dbg != nil {
		_ = dbg.Shutdown(shutCtx)
	}
	stopRec()
	<-recDone
	for _, d := range s.rec.Diagnostics() {
		fmt.Printf("atlas serve: diagnostic: %v\n", d)
	}
	for _, line := range s.rec.DrainReport() {
		fmt.Printf("atlas serve: drain checkpoint %s\n", line)
	}
	if shutErr != nil {
		return fmt.Errorf("serve: shutdown: %w", shutErr)
	}
	fmt.Println("atlas serve: drained cleanly")
	return nil
}

// writeJSON emits one JSON body with status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps reconciler sentinels onto status codes.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrConflict):
		status = http.StatusConflict
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	view, err := s.rec.Create(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	// A policy/capacity rejection is a completed decision, not an HTTP
	// error: the slice exists, terminally REJECTED.
	writeJSON(w, http.StatusCreated, view)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	views, err := s.rec.List()
	if err != nil {
		writeErr(w, err)
		return
	}
	if views == nil {
		views = []SliceView{}
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	view, err := s.rec.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) lifecycle(op Op) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		view, err := s.rec.Lifecycle(op, r.PathValue("id"), ModifyRequest{})
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, view)
	}
}

func (s *Server) handleModify(w http.ResponseWriter, r *http.Request) {
	var req ModifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	view, err := s.rec.Lifecycle(OpModify, r.PathValue("id"), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	since := 0
	if q := r.URL.Query().Get("since"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: since=%q", ErrBadRequest, q))
			return
		}
		since = n
	}
	events := s.rec.Log().Since(since)
	if events == nil {
		events = []Event{}
	}
	writeJSON(w, http.StatusOK, events)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h, err := s.rec.Health()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.rec.Registry().WritePrometheus(w)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	v, err := s.rec.Stats()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleHistory serves the flight-recorder time series. ?series=a,b
// restricts to the named series (default: all, in registration order);
// ?since=N restricts to samples with epoch >= N. The recorder's rings
// are internally locked, so no reconciler round-trip is needed.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	since := 0
	if q := r.URL.Query().Get("since"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: since=%q", ErrBadRequest, q))
			return
		}
		since = n
	}
	var names []string
	if q := r.URL.Query().Get("series"); q != "" {
		for _, name := range strings.Split(q, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
	}
	rec := s.rec.Flight()
	series := rec.History(names, since)
	if series == nil {
		series = []obs.SeriesHistory{}
	}
	writeJSON(w, http.StatusOK, HistoryView{Series: series, Available: rec.Names()})
}

// handleTimeline serves one slice's flight-recorder timeline.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := s.rec.Timelines().Get(id)
	if !ok {
		writeErr(w, fmt.Errorf("%w: no timeline for %q", ErrNotFound, id))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleSLO serves the objective evaluation with burn rates.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	objectives := s.rec.SLO().Evaluate()
	if objectives == nil {
		objectives = []obs.SLOStatus{}
	}
	breached := 0
	for _, o := range objectives {
		if o.Status == obs.SLOBreached {
			breached++
		}
	}
	writeJSON(w, http.StatusOK, SLOView{Objectives: objectives, Breached: breached})
}
