package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/atlas-slicing/atlas/internal/obs"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// TestHistoryEndpoint drives a slice through a few serving epochs and
// checks GET /history: every fleet series carries one point per epoch,
// the ?series and ?since filters apply, and a bad since is a 400.
func TestHistoryEndpoint(t *testing.T) {
	// A finite capacity gives the daemon a ledger, so the util_* series
	// record too.
	h := startHarness(t, Config{Capacity: slicing.CellCapacity(2)})
	var v SliceView
	if code := h.call("POST", "/slices", CreateRequest{ID: "s1", Class: "video-analytics"}, &v); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if code := h.call("POST", "/slices/s1/activate", nil, &v); code != http.StatusOK {
		t.Fatalf("activate: %d", code)
	}
	for i := 0; i < 3; i++ {
		if err := h.srv.Reconciler().StepNow(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}

	var hist HistoryView
	if code := h.call("GET", "/history", nil, &hist); code != http.StatusOK {
		t.Fatalf("GET /history: %d", code)
	}
	byName := map[string][]obs.Point{}
	for _, s := range hist.Series {
		byName[s.Name] = s.Points
	}
	for _, name := range []string{"live", "operating", "acceptance_ratio", "qoe_mean", "qoe_value",
		"served:video-analytics", "violations:video-analytics", "util_ran"} {
		if len(byName[name]) != 3 {
			t.Fatalf("series %q has %d points, want 3 (one per epoch): %+v", name, len(byName[name]), hist)
		}
	}
	if last := byName["operating"][2]; last.Value != 1 {
		t.Fatalf("operating last point = %+v, want value 1", last)
	}
	for _, name := range hist.Available {
		if _, ok := byName[name]; !ok {
			t.Fatalf("available lists %q but series body lacks it", name)
		}
	}

	// Filters: one named series, restricted to the last epoch.
	if code := h.call("GET", "/history?series=qoe_mean&since=2", nil, &hist); code != http.StatusOK {
		t.Fatalf("filtered /history: %d", code)
	}
	if len(hist.Series) != 1 || hist.Series[0].Name != "qoe_mean" || len(hist.Series[0].Points) != 1 {
		t.Fatalf("filtered history = %+v, want qoe_mean with 1 point", hist.Series)
	}
	// Unknown names keep a stable shape; bad since is the client's fault.
	if code := h.call("GET", "/history?series=nope", nil, &hist); code != http.StatusOK || len(hist.Series[0].Points) != 0 {
		t.Fatalf("unknown series: code %d body %+v", code, hist.Series)
	}
	if code := h.call("GET", "/history?since=abc", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad since: %d, want 400", code)
	}
}

// TestTimelineEndpoint walks a slice through the full lifecycle and
// checks its timeline: one transition entry per event-log record
// (cross-referenced by LogSeq), decision entries from the engine with
// trace sequence numbers, and per-epoch samples; unknown slices 404.
func TestTimelineEndpoint(t *testing.T) {
	h := startHarness(t, Config{})
	var v SliceView
	if code := h.call("POST", "/slices", CreateRequest{ID: "s1", Class: "video-analytics"}, &v); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	h.call("POST", "/slices/s1/activate", nil, &v)
	if err := h.srv.Reconciler().StepNow(); err != nil {
		t.Fatalf("step: %v", err)
	}
	h.call("POST", "/slices/s1/modify", ModifyRequest{Traffic: 2}, &v)
	h.call("POST", "/slices/s1/deactivate", nil, &v)
	h.call("DELETE", "/slices/s1", nil, &v)

	var events []Event
	h.call("GET", "/events", nil, &events)
	var tl obs.TimelineView
	if code := h.call("GET", "/slices/s1/timeline", nil, &tl); code != http.StatusOK {
		t.Fatalf("GET timeline: %d", code)
	}
	if tl.Slice != "s1" {
		t.Fatalf("timeline slice = %q", tl.Slice)
	}

	transitions := map[int]obs.TimelineEntry{}
	decisions, samples := 0, 0
	for _, e := range tl.Entries {
		switch e.Kind {
		case obs.KindTransition:
			transitions[e.LogSeq] = e
		case obs.KindDecision:
			decisions++
			if e.Seq == 0 {
				t.Fatalf("decision entry without trace seq: %+v", e)
			}
		case obs.KindSample:
			samples++
		}
	}
	// Every event-log record for s1 must have exactly one transition
	// entry cross-referencing its seq.
	for _, ev := range events {
		if ev.Slice != "s1" {
			continue
		}
		tr, ok := transitions[ev.Seq]
		if !ok {
			t.Fatalf("event seq %d (%s → %s) has no timeline transition; timeline: %+v", ev.Seq, ev.Op, ev.To, tl.Entries)
		}
		if tr.Event != string(ev.To) {
			t.Fatalf("transition for seq %d names %q, event log says %q", ev.Seq, tr.Event, ev.To)
		}
		delete(transitions, ev.Seq)
	}
	if len(transitions) != 0 {
		t.Fatalf("timeline has transitions with no matching event: %+v", transitions)
	}
	// The admit and the modify resize both go through the engine.
	if decisions < 2 {
		t.Fatalf("timeline has %d decision entries, want at least admit + resize", decisions)
	}
	if samples != 1 {
		t.Fatalf("timeline has %d sample entries, want 1 (one serving epoch)", samples)
	}

	if code := h.call("GET", "/slices/nope/timeline", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown timeline: %d, want 404", code)
	}
}

// TestSLOEndpoint checks GET /slo names every declared objective, that
// admission latency has data once an arrival was handled, and that the
// atlas_slo_* series reach /metrics.
func TestSLOEndpoint(t *testing.T) {
	h := startHarness(t, Config{})
	var v SliceView
	if code := h.call("POST", "/slices", CreateRequest{ID: "s1", Class: "video-analytics"}, &v); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	h.call("POST", "/slices/s1/activate", nil, &v)
	if err := h.srv.Reconciler().StepNow(); err != nil {
		t.Fatalf("step: %v", err)
	}

	var slo SLOView
	if code := h.call("GET", "/slo", nil, &slo); code != http.StatusOK {
		t.Fatalf("GET /slo: %d", code)
	}
	byName := map[string]obs.SLOStatus{}
	for _, o := range slo.Objectives {
		byName[o.Name] = o
	}
	for _, name := range []string{"admission-p95-latency", "qoe-violation-rate:video-analytics", "placement-ratio"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("objective %q missing from /slo: %+v", name, slo.Objectives)
		}
	}
	if st := byName["admission-p95-latency"].Status; st != obs.SLOHealthy && st != obs.SLOBreached {
		t.Fatalf("admission latency has no data after an arrival: %+v", byName["admission-p95-latency"])
	}
	if st := byName["qoe-violation-rate:video-analytics"].Status; st == obs.SLONoData {
		t.Fatalf("QoE violation rate has no data after a served epoch: %+v", byName["qoe-violation-rate:video-analytics"])
	}
	// Single-pool run: no placement attempts, so the floor has no data.
	if st := byName["placement-ratio"].Status; st != obs.SLONoData {
		t.Fatalf("placement ratio on a single pool = %q, want no_data", st)
	}

	resp, err := http.Get(h.http.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	for _, want := range []string{"atlas_slo_value", "atlas_slo_burn_rate", "atlas_slo_healthy"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}
}

// TestDrainFlushesTimelines checks the SIGTERM drain writes every
// tracked slice's timeline, with a drain entry, as fsync'd JSON files
// next to the event log.
func TestDrainFlushesTimelines(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Classes: testCatalog(),
		Tick:    time.Hour,
		Tune:    tinyTune,
		Seed:    7,
		LogPath: filepath.Join(dir, "events.jsonl"),
	}
	srv, err := New("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv.Reconciler().Run(ctx) }()
	ts := httptest.NewServer(srv.Handler())

	body, _ := json.Marshal(CreateRequest{ID: "s1", Class: "video-analytics"})
	resp, err := http.Post(ts.URL+"/slices", "application/json", bytes.NewReader(body))
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %v / %v", err, resp)
	}
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/slices/s1/activate", "application/json", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("activate: %v / %v", err, resp)
	}
	resp.Body.Close()

	ts.Close()
	cancel()
	<-done

	path := filepath.Join(dir, "timelines", url.PathEscape("s1")+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("drained timeline file: %v", err)
	}
	var view obs.TimelineView
	if err := json.Unmarshal(b, &view); err != nil {
		t.Fatalf("drained timeline parse: %v", err)
	}
	if view.Slice != "s1" || len(view.Entries) == 0 {
		t.Fatalf("drained timeline = %+v", view)
	}
	drained := false
	for _, e := range view.Entries {
		if e.Event == "drain" {
			drained = true
		}
	}
	if !drained {
		t.Fatalf("drained timeline lacks the drain entry: %+v", view.Entries)
	}
}
