package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"time"

	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/fleet"
	"github.com/atlas-slicing/atlas/internal/obs"
	"github.com/atlas-slicing/atlas/internal/realnet"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/store"
	"github.com/atlas-slicing/atlas/internal/topology"
)

// Config parameterizes one serving daemon.
type Config struct {
	// Classes is the serving catalog: the service classes tenants may
	// request, with their default per-epoch value and elasticity
	// (typically a fleet scenario's arrival classes).
	Classes []fleet.ArrivalClass
	// Policy is the admission policy (nil = value-density is NOT
	// defaulted here; nil means FirstFit, matching the fleet engine).
	Policy fleet.Policy
	// Topology, Placement, and Capacity shape the infrastructure
	// exactly as in fleet.Options: a site graph with a placement stage,
	// or a single pool (zero Capacity = unlimited).
	Topology  *topology.Graph
	Placement topology.Policy
	Capacity  slicing.Capacity
	// Tick is the serving epoch period: every Tick the reconciler steps
	// all OPERATING slices one configuration interval (0 = 1s).
	Tick time.Duration
	// Workers bounds the per-epoch stepping fan-out (0 = GOMAXPROCS).
	Workers int
	// Seed drives every random draw.
	Seed int64
	// Store persists learned artifacts and online checkpoints; nil uses
	// a fresh in-memory store.
	Store *store.Store
	// LogPath is the append-only event log file ("" = in-memory only).
	LogPath string
	// DownscalePool sizes the arbitration candidate pool (0 = 250).
	DownscalePool int
	// Tune adjusts the core.System after serve defaults are applied
	// (training budgets, online options).
	Tune func(*core.System)
	// Real and Sim override the environment (nil = bundled surrogate
	// and default simulator).
	Real slicing.Env
	Sim  *simnet.Simulator
	// Obs is the metrics registry behind GET /metrics and /stats (nil =
	// the daemon creates its own; serving is always instrumented).
	// Trace receives one structured record per admission/placement/
	// resize/release decision (nil = off). Both are result-invariant.
	Obs   *obs.Registry
	Trace *slog.Logger
	// TraceSync, when set, is called by the SIGTERM drain after the last
	// decision record is written — the hook the CLI uses to flush and
	// fsync a -trace-file sink alongside the event log.
	TraceSync func() error
	// HistoryCap bounds each flight-recorder time series (0 =
	// obs.DefaultSeriesCap); TimelineCap bounds each per-slice timeline
	// (0 = obs.DefaultTimelineCap). The daemon always records — the
	// flight recorder backs GET /history, /slices/{id}/timeline, and
	// /slo.
	HistoryCap  int
	TimelineCap int
	// DebugAddr exposes net/http/pprof on its own listener ("" = off).
	DebugAddr string
}

// sliceRec is the reconciler's per-slice record: lifecycle state plus
// the serving statistics the API reports. Only the reconciler goroutine
// touches it.
type sliceRec struct {
	id           string
	class        string
	classIdx     int
	state        State
	traffic      int
	value        float64
	elastic      bool
	home         slicing.SiteID
	site         slicing.SiteID
	reason       string
	demand       slicing.Demand
	predictedQoE float64
	downscales   int
	epochs       int
	lastQoE      float64
	qoeSum       float64
}

// cmdKind discriminates queued reconciler commands.
type cmdKind int

const (
	cmdCreate cmdKind = iota
	cmdActivate
	cmdModify
	cmdDeactivate
	cmdDelete
	cmdGet
	cmdList
	cmdHealth
	cmdStats
	cmdStep
)

type command struct {
	kind   cmdKind
	id     string
	create CreateRequest
	modify ModifyRequest
	reply  chan cmdResult
}

type cmdResult struct {
	view   SliceView
	list   []SliceView
	health Health
	stats  StatsView
	err    error
}

// Reconciler is the single-writer heart of the daemon: an async
// command queue (fed by the HTTP handlers) and a serving ticker drain
// into one goroutine that owns the fleet engine, the slice records,
// and the event log. Single-writer means no locks around the engine or
// the lifecycle states — concurrency is handled by serialization, and
// every state transition appends exactly one event.
type Reconciler struct {
	sys     *core.System
	eng     *fleet.Engine
	log     *EventLog
	classes []fleet.ArrivalClass
	topo    *topology.Graph
	tick    time.Duration
	workers int

	reg *obs.Registry
	met *serveMetrics
	trc *slog.Logger

	// Flight-recorder surfaces: per-epoch fleet time series (GET
	// /history), per-slice timelines (GET /slices/{id}/timeline), and
	// the SLO engine (GET /slo). traceSync flushes the CLI's trace-file
	// sink on drain; logPath anchors where drained timelines land.
	flight    *obs.Recorder
	timelines *obs.TimelineStore
	slo       *obs.SLOEngine
	traceSync func() error
	logPath   string

	cmds   chan command
	done   chan struct{}
	epoch  int
	serial int
	slices map[string]*sliceRec
	ids    []string // creation order, for listing
	diags  []error

	// drained records "<id> <state>" for every slice checkpointed by
	// the shutdown drain, in drain order — the observable audit trail
	// the e2e smoke uses to assert exactly-once checkpointing.
	drained []string

	// Per-tick scratch: the live-id snapshot and the OPERATING subset
	// are rebuilt into these buffers each step instead of being
	// re-allocated every tick. groupBuf holds the per-site shard
	// partition of the step work list.
	liveBuf  []string
	stepIDs  []string
	groupBuf [][]string
}

// NewReconciler builds the daemon core. The system gets the same
// fleet-scale training budgets as the batch controller (the store
// amortizes them to once per class); Config.Tune can override.
func NewReconciler(cfg Config) (*Reconciler, error) {
	if len(cfg.Classes) == 0 {
		return nil, errors.New("serve: no service classes in the catalog")
	}
	if cfg.Real == nil {
		cfg.Real = realnet.New()
	}
	if cfg.Sim == nil {
		cfg.Sim = simnet.NewDefault()
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Second
	}
	st := cfg.Store
	if st == nil {
		st = store.InMemory()
	}
	sys := core.NewSystem(cfg.Real, cfg.Sim, cfg.Seed)
	sys.Store = st
	if cfg.Topology != nil {
		sys.Ledger = cfg.Topology.NewLedger()
	} else if !cfg.Capacity.IsZero() {
		sys.Ledger = slicing.NewCapacityLedger(cfg.Capacity)
	}
	sys.CalOpts.Iters, sys.CalOpts.Explore, sys.CalOpts.Batch, sys.CalOpts.Pool = 40, 10, 2, 300
	sys.OffOpts.Iters, sys.OffOpts.Explore, sys.OffOpts.Batch, sys.OffOpts.Pool = 60, 12, 2, 300
	sys.OnOpts.Pool, sys.OnOpts.N = 250, 5
	if cfg.Tune != nil {
		cfg.Tune(sys)
	}
	log, err := OpenEventLog(cfg.LogPath)
	if err != nil {
		return nil, err
	}
	// The daemon is always instrumented: a registry backs GET /metrics
	// and /stats even when the caller supplies none. NewEngine threads
	// it through sys.Instrument, covering core, store, and ledger.
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	// The flight recorder is always on, like the registry: bounded ring
	// buffers are the price of answering "how did we get here".
	flight := obs.NewRecorder(cfg.HistoryCap)
	timelines := obs.NewTimelineStore(cfg.TimelineCap, 0)
	eng := fleet.NewEngine(sys, fleet.EngineConfig{
		Policy:        cfg.Policy,
		Placement:     cfg.Placement,
		Topology:      cfg.Topology,
		Capacity:      cfg.Capacity,
		DownscalePool: cfg.DownscalePool,
		Obs:           reg,
		Trace:         cfg.Trace,
		Timeline:      timelines,
	})
	r := &Reconciler{
		sys:       sys,
		eng:       eng,
		log:       log,
		classes:   append([]fleet.ArrivalClass(nil), cfg.Classes...),
		topo:      cfg.Topology,
		tick:      cfg.Tick,
		workers:   cfg.Workers,
		reg:       reg,
		met:       newServeMetrics(reg, log),
		trc:       cfg.Trace,
		flight:    flight,
		timelines: timelines,
		traceSync: cfg.TraceSync,
		logPath:   cfg.LogPath,
		cmds:      make(chan command, 64),
		done:      make(chan struct{}),
		slices:    map[string]*sliceRec{},
	}
	r.slo = r.declareSLOs()
	r.slo.Instrument(reg)
	return r, nil
}

// Registry exposes the metrics registry (read-side: GET /metrics).
func (r *Reconciler) Registry() *obs.Registry { return r.reg }

// Log exposes the event log (read-side: GET /events).
func (r *Reconciler) Log() *EventLog { return r.log }

// Run is the reconciler loop; it exits only when ctx is cancelled,
// after draining: every commissioned slice's online residual is
// checkpointed to the store and the event log is flushed and closed.
// Callers must stop accepting commands (HTTP shutdown) before
// cancelling ctx.
func (r *Reconciler) Run(ctx context.Context) {
	defer close(r.done)
	ticker := time.NewTicker(r.tick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			r.drain()
			return
		case c := <-r.cmds:
			r.handle(c)
		case <-ticker.C:
			r.step()
		}
	}
}

// drain is the graceful-shutdown hook: checkpoint all live slices,
// flush the log. Every commissioned slice is checkpointed exactly once
// — the engine's live set holds each id once, and the drain runs after
// the ticker loop has exited, so no concurrent shard step can race a
// second checkpoint in. Each checkpoint is recorded in r.drained so the
// daemon can surface the audit trail at shutdown.
func (r *Reconciler) drain() {
	for _, id := range r.eng.Live() {
		if err := r.sys.CheckpointSlice(id); err != nil {
			r.diags = append(r.diags, err)
			continue
		}
		state := State("UNKNOWN")
		if rec, ok := r.slices[id]; ok {
			state = rec.state
		}
		r.drained = append(r.drained, fmt.Sprintf("%s %s", id, state))
		r.timelines.Append(id, obs.TimelineEntry{
			Epoch:  r.epoch,
			Kind:   obs.KindDecision,
			Event:  "drain",
			Detail: string(state),
		})
		if r.trc != nil {
			r.trc.LogAttrs(context.Background(), slog.LevelInfo, "decision",
				slog.String("event", "drain_checkpoint"),
				slog.String("slice", id),
				slog.String("state", string(state)),
				slog.Int("epoch", r.epoch))
		}
	}
	// Flush every per-slice timeline next to the event log so the flight
	// record survives the process, then sync the trace-file sink.
	if err := r.flushTimelines(); err != nil {
		r.diags = append(r.diags, err)
	}
	if r.traceSync != nil {
		if err := r.traceSync(); err != nil {
			r.diags = append(r.diags, fmt.Errorf("serve: trace sync: %w", err))
		}
	}
	if err := r.log.Close(); err != nil {
		r.diags = append(r.diags, fmt.Errorf("serve: event log close: %w", err))
	}
}

// DrainReport returns one "<id> <state>" entry per slice the shutdown
// drain checkpointed, in drain order. Only meaningful after Run
// returned.
func (r *Reconciler) DrainReport() []string {
	return append([]string(nil), r.drained...)
}

// Diagnostics returns the non-fatal errors the reconciler accumulated
// (stepping failures, checkpoint failures, log write errors). Only
// meaningful after Run returned.
func (r *Reconciler) Diagnostics() []error {
	return append(append([]error(nil), r.diags...), r.sys.StoreDiagnostics()...)
}

// do round-trips one command through the reconciler goroutine.
func (r *Reconciler) do(c command) cmdResult {
	c.reply = make(chan cmdResult, 1)
	select {
	case r.cmds <- c:
	case <-r.done:
		return cmdResult{err: errors.New("serve: reconciler stopped")}
	}
	select {
	case res := <-c.reply:
		return res
	case <-r.done:
		return cmdResult{err: errors.New("serve: reconciler stopped")}
	}
}

// Public command surface (used by the HTTP layer and tests).

func (r *Reconciler) Create(req CreateRequest) (SliceView, error) {
	res := r.do(command{kind: cmdCreate, create: req})
	return res.view, res.err
}

func (r *Reconciler) Lifecycle(op Op, id string, mod ModifyRequest) (SliceView, error) {
	kind, ok := map[Op]cmdKind{
		OpActivate:   cmdActivate,
		OpModify:     cmdModify,
		OpDeactivate: cmdDeactivate,
		OpDelete:     cmdDelete,
	}[op]
	if !ok {
		return SliceView{}, fmt.Errorf("%w: unknown operation %q", ErrBadRequest, op)
	}
	res := r.do(command{kind: kind, id: id, modify: mod})
	return res.view, res.err
}

func (r *Reconciler) Get(id string) (SliceView, error) {
	res := r.do(command{kind: cmdGet, id: id})
	return res.view, res.err
}

func (r *Reconciler) List() ([]SliceView, error) {
	res := r.do(command{kind: cmdList})
	return res.list, res.err
}

func (r *Reconciler) Health() (Health, error) {
	res := r.do(command{kind: cmdHealth})
	return res.health, res.err
}

// Stats snapshots the daemon's full introspection view (GET /stats):
// lifecycle census, engine decision counters, utilization, and store
// traffic. The snapshot is taken on the reconciler goroutine, so it is
// internally consistent.
func (r *Reconciler) Stats() (StatsView, error) {
	res := r.do(command{kind: cmdStats})
	return res.stats, res.err
}

// StepNow forces one serving epoch outside the ticker cadence —
// deterministic stepping for tests and manual drills.
func (r *Reconciler) StepNow() error {
	res := r.do(command{kind: cmdStep})
	return res.err
}

// handle dispatches one queued command on the reconciler goroutine.
func (r *Reconciler) handle(c command) {
	r.eng.NoteEpoch(r.epoch)
	var res cmdResult
	switch c.kind {
	case cmdCreate:
		res.view, res.err = r.create(c.create)
	case cmdActivate:
		res.view, res.err = r.transition(c.id, OpActivate, "")
	case cmdModify:
		res.view, res.err = r.modify(c.id, c.modify)
	case cmdDeactivate:
		res.view, res.err = r.transition(c.id, OpDeactivate, "")
	case cmdDelete:
		res.view, res.err = r.delete(c.id)
	case cmdGet:
		rec, ok := r.slices[c.id]
		if !ok {
			res.err = fmt.Errorf("%w: %q", ErrNotFound, c.id)
		} else {
			res.view = r.view(rec)
		}
	case cmdList:
		for _, id := range r.ids {
			res.list = append(res.list, r.view(r.slices[id]))
		}
	case cmdHealth:
		res.health = Health{Status: "ok", Epoch: r.epoch, Slices: len(r.eng.Live()), Events: r.log.Len()}
	case cmdStats:
		res.stats = r.stats()
	case cmdStep:
		res.err = r.stepErr()
	}
	r.met.recordState(r.epoch, len(r.eng.Live()))
	c.reply <- res
}

// stats assembles the GET /stats body on the reconciler goroutine.
func (r *Reconciler) stats() StatsView {
	v := StatsView{
		Epoch:  r.epoch,
		States: map[string]int{},
		Live:   len(r.eng.Live()),
		Events: r.log.Len(),
		Engine: r.eng.Counters(),
		Store:  storeStatsView(r.sys.Store.Stats()),
	}
	for _, rec := range r.slices {
		v.States[string(rec.state)]++
	}
	if r.sys.Ledger != nil {
		u := r.sys.Ledger.Utilization()
		v.Utilization = &UtilizationView{RAN: u.RAN, TN: u.TN, CN: u.CN}
		if r.topo != nil {
			for _, su := range r.sys.Ledger.SiteUtilizations() {
				v.Sites = append(v.Sites, SiteStatsView{
					Site: string(su.Site), RanUtilization: su.RAN, Reservations: su.Count,
				})
			}
		}
	}
	for _, d := range r.sys.StoreDiagnostics() {
		v.StoreDiagnostics = append(v.StoreDiagnostics, d.Error())
	}
	return v
}

// event applies op to the slice's state machine and appends the
// transition to the log. Transitions are pre-validated by callers; an
// illegal one here is a reconciler bug and surfaces as ErrConflict.
func (r *Reconciler) event(rec *sliceRec, op Op, detail string) error {
	to, err := Next(rec.state, op)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrConflict, err)
	}
	stamped := r.log.Append(Event{Epoch: r.epoch, Slice: rec.id, Op: op, From: rec.state, To: to, Detail: detail})
	rec.state = to
	// Mirror the transition on the slice's flight-recorder timeline,
	// cross-referenced to the event log by sequence number.
	r.timelines.Append(rec.id, obs.TimelineEntry{
		Epoch:  r.epoch,
		Kind:   obs.KindTransition,
		Event:  string(to),
		Site:   string(rec.site),
		Detail: string(op) + detailSep(detail) + detail,
		LogSeq: stamped.Seq,
	})
	return nil
}

// detailSep joins an op name and a non-empty detail with a space.
func detailSep(detail string) string {
	if detail == "" {
		return ""
	}
	return " "
}

// create runs the full request → admission-decision path for one POST.
func (r *Reconciler) create(req CreateRequest) (SliceView, error) {
	id := req.ID
	if id == "" {
		id = fmt.Sprintf("slice-%04d", r.serial)
		r.serial++
	}
	if _, dup := r.slices[id]; dup {
		return SliceView{}, fmt.Errorf("%w: slice %q already exists", ErrConflict, id)
	}
	ci := -1
	for i, ac := range r.classes {
		if ac.Class.Name == req.Class {
			ci = i
			break
		}
	}
	if ci < 0 {
		return SliceView{}, fmt.Errorf("%w: unknown class %q (catalog: %v)", ErrBadRequest, req.Class, r.classNames())
	}
	if req.Traffic < 0 || req.Traffic > core.MaxTraffic {
		return SliceView{}, fmt.Errorf("%w: traffic %d outside [0, %d]", ErrBadRequest, req.Traffic, core.MaxTraffic)
	}
	home := slicing.SiteID(req.Home)
	if home != "" {
		if r.topo == nil {
			return SliceView{}, fmt.Errorf("%w: home cell %q on a single-pool run", ErrBadRequest, home)
		}
		known := false
		for _, s := range r.topo.SiteIDs() {
			if s == home {
				known = true
				break
			}
		}
		if !known {
			return SliceView{}, fmt.Errorf("%w: unknown home cell %q (sites: %v)", ErrBadRequest, home, r.topo.SiteIDs())
		}
	}
	ac := r.classes[ci]
	value, elastic := ac.Value, ac.Elastic
	if req.Value != nil {
		if *req.Value < 0 {
			return SliceView{}, fmt.Errorf("%w: negative value", ErrBadRequest)
		}
		value = *req.Value
	}
	if req.Elastic != nil {
		elastic = *req.Elastic
	}

	rec := &sliceRec{
		id: id, class: ac.Class.Name, classIdx: ci,
		traffic: req.Traffic, value: value, elastic: elastic, home: home,
	}
	r.slices[id] = rec
	r.ids = append(r.ids, id)
	if err := r.event(rec, OpRequest, ""); err != nil {
		return SliceView{}, err
	}

	dec, err := r.eng.Handle(fleet.Arrival{
		Epoch:    r.epoch,
		ID:       id,
		ClassIdx: ci,
		Class:    ac.Class,
		Traffic:  req.Traffic,
		Value:    value,
		Elastic:  elastic,
		Home:     home,
	})
	if err != nil {
		// Systemic failure (training/ledger): the request terminates as
		// rejected so the log stays a total record, and the error
		// surfaces as a 5xx.
		rec.reason = "error"
		_ = r.event(rec, OpReject, "internal: "+err.Error())
		return SliceView{}, err
	}
	rec.demand = dec.Demand
	rec.predictedQoE = dec.PredictedQoE
	rec.downscales = dec.Downscales
	if !dec.Admitted {
		rec.reason = dec.Reason
		if err := r.event(rec, OpReject, dec.Reason); err != nil {
			return SliceView{}, err
		}
		return r.view(rec), nil
	}
	rec.site = dec.Site
	if err := r.event(rec, OpAdmit, "site="+string(dec.Site)); err != nil {
		return SliceView{}, err
	}
	return r.view(rec), nil
}

// transition handles the bodyless lifecycle verbs (activate,
// deactivate).
func (r *Reconciler) transition(id string, op Op, detail string) (SliceView, error) {
	rec, ok := r.slices[id]
	if !ok {
		return SliceView{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if _, err := Next(rec.state, op); err != nil {
		return SliceView{}, fmt.Errorf("%w: %v", ErrConflict, err)
	}
	if err := r.event(rec, op, detail); err != nil {
		return SliceView{}, err
	}
	return r.view(rec), nil
}

// modify is the first-class re-optimization path: stage 2 re-runs for
// the new demand, the envelope resizes in place, and on topology runs
// that cannot grow in place the placement policy re-runs and the
// reservation migrates.
func (r *Reconciler) modify(id string, req ModifyRequest) (SliceView, error) {
	rec, ok := r.slices[id]
	if !ok {
		return SliceView{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if _, err := Next(rec.state, OpModify); err != nil {
		return SliceView{}, fmt.Errorf("%w: %v", ErrConflict, err)
	}
	if req.Traffic < 1 || req.Traffic > core.MaxTraffic {
		return SliceView{}, fmt.Errorf("%w: traffic %d outside [1, %d]", ErrBadRequest, req.Traffic, core.MaxTraffic)
	}
	d, site, err := r.eng.Resize(id, req.Traffic)
	if err != nil {
		if errors.Is(err, core.ErrInsufficientCapacity) {
			return SliceView{}, fmt.Errorf("%w: %v", ErrConflict, err)
		}
		return SliceView{}, err
	}
	detail := fmt.Sprintf("traffic=%d", req.Traffic)
	if site != rec.site {
		detail += fmt.Sprintf(" migrated=%s->%s", rec.site, site)
	}
	rec.traffic = req.Traffic
	rec.demand = d
	rec.site = site
	if err := r.event(rec, OpModify, detail); err != nil {
		return SliceView{}, err
	}
	return r.view(rec), nil
}

// delete decommissions an AVAILABLE slice: capacity freed, checkpoint
// tombstoned, terminal DELETED state.
func (r *Reconciler) delete(id string) (SliceView, error) {
	rec, ok := r.slices[id]
	if !ok {
		return SliceView{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if _, err := Next(rec.state, OpDelete); err != nil {
		return SliceView{}, fmt.Errorf("%w: %v", ErrConflict, err)
	}
	if _, err := r.eng.Release(id); err != nil {
		return SliceView{}, err
	}
	if err := r.event(rec, OpDelete, ""); err != nil {
		return SliceView{}, err
	}
	return r.view(rec), nil
}

// step advances every OPERATING slice one configuration interval and
// aggregates delivered QoE (with the topology's locality toll), then
// advances the serving epoch.
func (r *Reconciler) step() {
	if err := r.stepErr(); err != nil {
		r.diags = append(r.diags, err)
	}
}

// shardGroups partitions the step work list into per-site shards, each
// stepped by its own goroutine — the reconciler's parallel tick. Group
// order follows the sites' first appearance in admission order and ids
// stay in admission order within a group, so the partition (and with
// it every per-slice trajectory) is deterministic. Each OPERATING
// slice lands in exactly one group: a slice has one host site, so the
// concurrent shard steps can never double-step (and therefore never
// double-checkpoint) a slice.
func (r *Reconciler) shardGroups(ids []string) [][]string {
	groups := r.groupBuf[:0]
	if r.topo == nil {
		groups = append(groups, ids)
		r.groupBuf = groups
		return groups
	}
	idx := make(map[slicing.SiteID]int, len(r.topo.Sites))
	for _, id := range ids {
		site := r.slices[id].site
		g, ok := idx[site]
		if !ok {
			g = len(groups)
			idx[site] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], id)
	}
	r.groupBuf = groups
	return groups
}

func (r *Reconciler) stepErr() error {
	r.eng.NoteEpoch(r.epoch)
	r.liveBuf = r.eng.LiveAppend(r.liveBuf[:0])
	ids := r.stepIDs[:0]
	for _, id := range r.liveBuf {
		if rec, ok := r.slices[id]; ok && rec.state == StateOperating {
			ids = append(ids, id)
		}
	}
	r.stepIDs = ids
	defer func() {
		r.epoch++
		r.met.recordState(r.epoch, len(r.liveBuf))
	}()
	if len(ids) == 0 {
		r.recordEpoch(len(r.liveBuf), ids, nil)
		return nil
	}
	groups := r.shardGroups(ids)
	barrier := time.Now()
	err := r.sys.StepGroups(groups)
	r.met.recordTick(len(groups), len(ids), barrier)
	qoes := make([]float64, len(ids))
	for i, id := range ids {
		qoes[i] = math.NaN()
		rec := r.slices[id]
		inst, ok := r.sys.Slice(id)
		if !ok || len(inst.QoEs) == 0 {
			continue
		}
		qoe := inst.QoEs[len(inst.QoEs)-1]
		if r.topo != nil {
			qoe *= r.topo.QoEFactor(rec.home, rec.site)
		}
		rec.epochs++
		rec.lastQoE = qoe
		rec.qoeSum += qoe
		qoes[i] = qoe
	}
	r.recordEpoch(len(r.liveBuf), ids, qoes)
	if err != nil {
		return fmt.Errorf("serve: step epoch %d: %w", r.epoch, err)
	}
	return nil
}

func (r *Reconciler) classNames() []string {
	out := make([]string, len(r.classes))
	for i, ac := range r.classes {
		out[i] = ac.Class.Name
	}
	return out
}

// view renders one record as its API shape.
func (r *Reconciler) view(rec *sliceRec) SliceView {
	traffic := rec.traffic
	if traffic == 0 {
		traffic = r.classes[rec.classIdx].Class.Traffic
	}
	v := SliceView{
		ID:           rec.id,
		Class:        rec.class,
		State:        rec.state,
		Traffic:      traffic,
		Value:        rec.value,
		Elastic:      rec.elastic,
		Home:         string(rec.home),
		Site:         string(rec.site),
		Reason:       rec.reason,
		Demand:       demandView(rec.demand),
		PredictedQoE: rec.predictedQoE,
		Epochs:       rec.epochs,
		LastQoE:      rec.lastQoE,
		Downscales:   rec.downscales,
	}
	if rec.epochs > 0 {
		v.MeanQoE = rec.qoeSum / float64(rec.epochs)
	}
	return v
}
