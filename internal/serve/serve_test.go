package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/fleet"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// tinyTune shrinks every training budget so lifecycle tests run in
// seconds (the store caches artifacts, so each class trains once).
func tinyTune(sys *core.System) {
	sys.CalOpts.Iters, sys.CalOpts.Explore, sys.CalOpts.Batch, sys.CalOpts.Pool = 12, 4, 2, 120
	sys.OffOpts.Iters, sys.OffOpts.Explore, sys.OffOpts.Batch, sys.OffOpts.Pool = 15, 5, 2, 120
	sys.OnOpts.Pool, sys.OnOpts.N = 100, 2
}

func testCatalog() []fleet.ArrivalClass {
	return []fleet.ArrivalClass{{Class: slicing.DefaultServiceClass(), Value: 2, Elastic: true}}
}

// harness is an httptest front over a running reconciler. Tick is huge:
// serving epochs advance only via StepNow, keeping tests deterministic.
type harness struct {
	t    *testing.T
	srv  *Server
	http *httptest.Server
	stop func()
}

func startHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	if cfg.Classes == nil {
		cfg.Classes = testCatalog()
	}
	if cfg.Tick == 0 {
		cfg.Tick = time.Hour
	}
	if cfg.Tune == nil {
		cfg.Tune = tinyTune
	}
	cfg.Seed = 7
	srv, err := New("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Reconciler().Run(ctx)
	}()
	ts := httptest.NewServer(srv.Handler())
	h := &harness{t: t, srv: srv, http: ts}
	h.stop = func() {
		ts.Close() // waits for in-flight handlers before the reconciler dies
		cancel()
		<-done
	}
	t.Cleanup(h.stop)
	return h
}

// call round-trips one request; the decoded body lands in out (nil to
// discard).
func (h *harness) call(method, path string, body any, out any) int {
	h.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			h.t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, h.http.URL+path, rd)
	if err != nil {
		h.t.Fatalf("request: %v", err)
	}
	resp, err := h.http.Client().Do(req)
	if err != nil {
		h.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			h.t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// foldedStates folds GET /events through the state machine.
func (h *harness) foldedStates() map[string]State {
	h.t.Helper()
	var events []Event
	if code := h.call("GET", "/events", nil, &events); code != http.StatusOK {
		h.t.Fatalf("GET /events: %d", code)
	}
	states, err := Fold(events)
	if err != nil {
		h.t.Fatalf("fold: %v", err)
	}
	return states
}

// TestLifecycleOverHTTP drives one slice through the full lifecycle and
// checks the event log folds to exactly the states the API reports.
func TestLifecycleOverHTTP(t *testing.T) {
	h := startHarness(t, Config{})

	var v SliceView
	if code := h.call("POST", "/slices", CreateRequest{ID: "s1", Class: "video-analytics", Traffic: 1}, &v); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if v.State != StateAvailable {
		t.Fatalf("after create: state %q, want AVAILABLE", v.State)
	}
	if v.Demand == nil {
		t.Fatal("admitted slice has no demand envelope")
	}

	if code := h.call("POST", "/slices/s1/activate", nil, &v); code != http.StatusOK || v.State != StateOperating {
		t.Fatalf("activate: status %d state %q", code, v.State)
	}

	for i := 0; i < 3; i++ {
		if err := h.srv.Reconciler().StepNow(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if code := h.call("GET", "/slices/s1", nil, &v); code != http.StatusOK {
		t.Fatalf("get: %d", code)
	}
	if v.Epochs != 3 || v.MeanQoE <= 0 {
		t.Fatalf("after 3 steps: epochs=%d meanQoE=%v", v.Epochs, v.MeanQoE)
	}

	if code := h.call("POST", "/slices/s1/modify", ModifyRequest{Traffic: 2}, &v); code != http.StatusOK {
		t.Fatalf("modify: %d", code)
	}
	if v.State != StateOperating || v.Traffic != 2 {
		t.Fatalf("after modify: state %q traffic %d", v.State, v.Traffic)
	}

	if code := h.call("POST", "/slices/s1/deactivate", nil, &v); code != http.StatusOK || v.State != StateAvailable {
		t.Fatalf("deactivate: status %d state %q", code, v.State)
	}
	if code := h.call("DELETE", "/slices/s1", nil, &v); code != http.StatusOK || v.State != StateDeleted {
		t.Fatalf("delete: status %d state %q", code, v.State)
	}

	// The log must replay to the live view.
	states := h.foldedStates()
	if states["s1"] != StateDeleted {
		t.Fatalf("folded state %q, want DELETED", states["s1"])
	}
	var list []SliceView
	if code := h.call("GET", "/slices", nil, &list); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if len(list) != 1 || states[list[0].ID] != list[0].State {
		t.Fatalf("fold/list mismatch: %v vs %+v", states, list)
	}
}

// TestHTTPErrorMapping checks the sentinel → status-code mapping:
// unknown class 400, unknown id 404, illegal transition 409.
func TestHTTPErrorMapping(t *testing.T) {
	h := startHarness(t, Config{})

	var e apiError
	if code := h.call("POST", "/slices", CreateRequest{Class: "no-such-class"}, &e); code != http.StatusBadRequest {
		t.Fatalf("unknown class: status %d (%s)", code, e.Error)
	}
	if code := h.call("GET", "/slices/ghost", nil, &e); code != http.StatusNotFound {
		t.Fatalf("unknown id: status %d", code)
	}

	var v SliceView
	if code := h.call("POST", "/slices", CreateRequest{ID: "a", Class: "video-analytics"}, &v); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	// Delete while OPERATING is illegal; so is a duplicate id.
	h.call("POST", "/slices/a/activate", nil, nil)
	if code := h.call("DELETE", "/slices/a", nil, &e); code != http.StatusConflict {
		t.Fatalf("delete while OPERATING: status %d", code)
	}
	if code := h.call("POST", "/slices", CreateRequest{ID: "a", Class: "video-analytics"}, &e); code != http.StatusConflict {
		t.Fatalf("duplicate id: status %d", code)
	}
	if code := h.call("POST", "/slices/a/modify", ModifyRequest{Traffic: 0}, &e); code != http.StatusBadRequest {
		t.Fatalf("zero traffic modify: status %d", code)
	}
}

// TestRejectionIsADecision pins that a capacity rejection is a 201 with
// a terminal REJECTED slice — a completed admission decision, not an
// HTTP error — and that terminal slices refuse lifecycle verbs.
func TestRejectionIsADecision(t *testing.T) {
	h := startHarness(t, Config{
		Capacity: slicing.Capacity{RanPRB: 1e-6, TnMbps: 1e-6, CnCPU: 1e-6},
	})
	var v SliceView
	if code := h.call("POST", "/slices", CreateRequest{ID: "r", Class: "video-analytics"}, &v); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if v.State != StateRejected || v.Reason == "" {
		t.Fatalf("state %q reason %q, want REJECTED with reason", v.State, v.Reason)
	}
	var e apiError
	if code := h.call("POST", "/slices/r/activate", nil, &e); code != http.StatusConflict {
		t.Fatalf("activate rejected slice: status %d", code)
	}
	if st := h.foldedStates()["r"]; st != StateRejected {
		t.Fatalf("folded %q, want REJECTED", st)
	}
}

// TestConcurrentClients hammers the API from many goroutines (run under
// -race in CI): no 5xx may escape, and afterwards the event log must
// fold to exactly the per-slice states the API reports.
func TestConcurrentClients(t *testing.T) {
	h := startHarness(t, Config{})

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients*8)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			id := fmt.Sprintf("c%02d", c)
			check := func(op string, code int) {
				if code >= 500 {
					errs <- fmt.Errorf("%s %s: status %d", id, op, code)
				}
			}
			var v SliceView
			check("create", h.call("POST", "/slices", CreateRequest{ID: id, Class: "video-analytics"}, &v))
			check("activate", h.call("POST", "/slices/"+id+"/activate", nil, nil))
			check("modify", h.call("POST", "/slices/"+id+"/modify", ModifyRequest{Traffic: 2}, nil))
			if c%2 == 0 {
				check("deactivate", h.call("POST", "/slices/"+id+"/deactivate", nil, nil))
				check("delete", h.call("DELETE", "/slices/"+id, nil, nil))
			}
			check("get", h.call("GET", "/slices/"+id, nil, nil))
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	states := h.foldedStates()
	var list []SliceView
	if code := h.call("GET", "/slices", nil, &list); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if len(list) != clients {
		t.Fatalf("%d slices, want %d", len(list), clients)
	}
	for _, v := range list {
		if states[v.ID] != v.State {
			t.Errorf("slice %s: folded %q, API %q", v.ID, states[v.ID], v.State)
		}
	}
}

// TestEventLogReplayFile runs a lifecycle against an on-disk log,
// drains, and checks ReplayFile reproduces the final states — the crash
// recovery contract the CI smoke also asserts.
func TestEventLogReplayFile(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "events.jsonl")
	h := startHarness(t, Config{LogPath: logPath})

	var v SliceView
	h.call("POST", "/slices", CreateRequest{ID: "d1", Class: "video-analytics"}, &v)
	h.call("POST", "/slices/d1/activate", nil, nil)
	h.call("POST", "/slices", CreateRequest{ID: "d2", Class: "video-analytics"}, &v)
	want := map[string]State{"d1": StateOperating, "d2": StateAvailable}

	h.stop() // drain: flush + close the log (Cleanup tolerates a second call)

	states, n, err := ReplayFile(logPath)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n == 0 {
		t.Fatal("no events replayed")
	}
	for id, st := range want {
		if states[id] != st {
			t.Errorf("replayed %s: %q, want %q", id, states[id], st)
		}
	}

	// A restarted log continues the sequence where the old one stopped.
	log, err := OpenEventLog(logPath)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer log.Close()
	if log.Len() != n {
		t.Fatalf("reopened log has %d events, want %d", log.Len(), n)
	}
	e := log.Append(Event{Slice: "d2", Op: OpActivate, From: StateAvailable, To: StateOperating})
	if e.Seq != n+1 {
		t.Fatalf("appended seq %d, want %d", e.Seq, n+1)
	}
}

// TestMetricsAndStatsEndpoints is the introspection contract: a daemon
// that admitted, activated, and stepped a slice exposes the full atlas
// metrics vocabulary on GET /metrics and a coherent snapshot on
// GET /stats.
func TestMetricsAndStatsEndpoints(t *testing.T) {
	h := startHarness(t, Config{})

	var v SliceView
	h.call("POST", "/slices", CreateRequest{ID: "m1", Class: "video-analytics"}, &v)
	h.call("POST", "/slices/m1/activate", nil, nil)
	if err := h.srv.Reconciler().StepNow(); err != nil {
		t.Fatalf("StepNow: %v", err)
	}

	resp, err := h.http.Client().Get(h.http.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	page := string(body)
	for _, fam := range []string{
		"atlas_admission_decisions_total",
		"atlas_online_scans_total",
		"atlas_online_memo_hits_total",
		"atlas_shard_events_total",
		"atlas_shard_barrier_wait_seconds",
		"atlas_store_hits_total",
		"atlas_http_requests_total",
		"atlas_serve_epoch",
	} {
		if !strings.Contains(page, fam) {
			t.Errorf("/metrics missing family %s", fam)
		}
	}
	series := 0
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, "atlas_") {
			series++
		}
	}
	if series < 20 {
		t.Errorf("/metrics exposes %d series, want >= 20", series)
	}

	var stats StatsView
	if code := h.call("GET", "/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("GET /stats: %d", code)
	}
	if stats.Epoch < 1 {
		t.Errorf("stats epoch %d, want >= 1", stats.Epoch)
	}
	if stats.Live != 1 || stats.States[string(StateOperating)] != 1 {
		t.Errorf("stats census live=%d states=%v, want one OPERATING slice", stats.Live, stats.States)
	}
	if stats.Engine.Arrivals != 1 || stats.Engine.Admitted != 1 {
		t.Errorf("engine counters %+v, want 1 arrival admitted", stats.Engine)
	}
	if stats.Store.Hits+stats.Store.Misses == 0 {
		t.Error("store stats show no traffic; the admission trains or restores artifacts")
	}
}
