package baselines

import (
	"math"
	"math/rand"
	"testing"

	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/realnet"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

func testScenario() (slicing.ConfigSpace, slicing.SLA) {
	return slicing.DefaultConfigSpace(), slicing.DefaultSLA()
}

func TestFindOracleFeasibleAndCheap(t *testing.T) {
	env := realnet.New()
	space, sla := testScenario()
	o := FindOracle(env, space, sla, 1, 150, 2, 1)
	if o.QoE < sla.Availability {
		t.Fatalf("oracle QoE %v below requirement (validation failed)", o.QoE)
	}
	if o.Usage <= 0 || o.Usage > 1 {
		t.Fatalf("oracle usage %v", o.Usage)
	}
	// Full resources are always feasible, so the oracle must not be the
	// trivial fallback on a reasonable budget.
	if o.Usage > 0.9 {
		t.Fatalf("oracle fell back to full resources (%v)", o.Usage)
	}
}

func TestFindOracleUnreachableSLAFallsBack(t *testing.T) {
	env := realnet.New()
	space := slicing.DefaultConfigSpace()
	impossible := slicing.SLA{ThresholdMs: 1, Availability: 0.999}
	o := FindOracle(env, space, impossible, 1, 30, 1, 2)
	if o.Config != space.Max {
		t.Fatalf("expected full-resource fallback, got %v", o.Config)
	}
}

func TestRunOnlineAccounting(t *testing.T) {
	env := simnet.NewDefault()
	space, sla := testScenario()
	oracle := Oracle{Usage: 0.2, QoE: 0.9}
	fixed := &fixedPolicy{cfg: slicing.Config{BandwidthUL: 20, BandwidthDL: 10, BackhaulMbps: 30, CPURatio: 0.9}}
	res := RunOnline(fixed, env, space, sla, 1, 10, oracle, 3)
	if len(res.Usages) != 10 || len(res.QoEs) != 10 || len(res.Configs) != 10 {
		t.Fatal("trajectory length wrong")
	}
	wantUsage := space.Usage(fixed.cfg)
	for _, u := range res.Usages {
		if u != wantUsage {
			t.Fatalf("usage %v want %v", u, wantUsage)
		}
	}
	if res.Regret.N != 10 {
		t.Fatalf("regret N = %d", res.Regret.N)
	}
	wantReg := wantUsage - 0.2
	if math.Abs(res.Regret.AvgUsageRegret()-wantReg) > 1e-12 {
		t.Fatalf("usage regret %v want %v", res.Regret.AvgUsageRegret(), wantReg)
	}
}

type fixedPolicy struct{ cfg slicing.Config }

func (f *fixedPolicy) Name() string                                  { return "fixed" }
func (f *fixedPolicy) Next(int, *rand.Rand) slicing.Config           { return f.cfg }
func (f *fixedPolicy) Observe(int, slicing.Config, float64, float64) {}

func TestMeanTail(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := MeanTail(xs, 2); got != 3.5 {
		t.Fatalf("MeanTail = %v", got)
	}
	if got := MeanTail(xs, 10); got != 2.5 {
		t.Fatalf("oversized window = %v", got)
	}
	if got := MeanTail(nil, 3); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestDirectBOImprovesObjective(t *testing.T) {
	env := realnet.New()
	space, sla := testScenario()
	b := NewDirectBO(space, sla, 1)
	b.Pool = 300
	oracle := Oracle{Usage: 0.2, QoE: 0.9}
	res := RunOnline(b, env, space, sla, 1, 20, oracle, 4)

	obj := func(i int) float64 {
		return res.Usages[i] + 2*math.Max(sla.Availability-res.QoEs[i], 0)
	}
	bestEarly, bestLate := math.Inf(1), math.Inf(1)
	for i := 0; i < 5; i++ {
		if v := obj(i); v < bestEarly {
			bestEarly = v
		}
	}
	for i := 0; i < len(res.Usages); i++ {
		if v := obj(i); v < bestLate {
			bestLate = v
		}
	}
	if bestLate > bestEarly {
		t.Fatalf("BO never improved over warmup: %v vs %v", bestLate, bestEarly)
	}
}

func TestDLDAGridAndSelection(t *testing.T) {
	space, sla := testScenario()
	d := NewDLDA(space, sla, 1, mathx.NewRNG(5))
	d.GridValues = []float64{0, 0.45, 0.9}
	d.SelectionPool = 500
	grid := d.GridConfigs()
	if len(grid) != int(math.Pow(3, 6)) {
		t.Fatalf("grid size = %d", len(grid))
	}
	d.TrainOffline(simnet.NewDefault(), 6)
	cfg := d.Next(0, mathx.NewRNG(7))
	if u := space.Usage(cfg); u <= 0 || u > 1 {
		t.Fatalf("selected usage %v", u)
	}
	// Observing a violation and retraining must not crash and keeps the
	// student usable.
	d.Observe(0, cfg, space.Usage(cfg), 0.2)
	_ = d.Next(1, mathx.NewRNG(8))
}

func TestDLDAUntrainedFallsBackToRandom(t *testing.T) {
	space, sla := testScenario()
	d := NewDLDA(space, sla, 1, mathx.NewRNG(9))
	cfg := d.Next(0, mathx.NewRNG(10))
	if cfg == (slicing.Config{}) {
		t.Fatal("untrained DLDA returned zero config")
	}
}

func TestVirtualEdgeAdapts(t *testing.T) {
	env := realnet.New()
	space, sla := testScenario()
	v := NewVirtualEdge(space, sla, 1)
	oracle := Oracle{Usage: 0.2, QoE: 0.9}
	res := RunOnline(v, env, space, sla, 1, 15, oracle, 11)
	if len(res.Usages) != 15 {
		t.Fatal("trajectory length wrong")
	}
	// After warmup the moves must stay in the box.
	for _, cfg := range res.Configs {
		n := space.Normalize(cfg)
		for _, x := range n {
			if x < -1e-9 || x > 1+1e-9 {
				t.Fatalf("config out of box: %v", cfg)
			}
		}
	}
}
