package baselines

import (
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// RunResult is one method's online-learning trajectory on an
// environment.
type RunResult struct {
	Name    string
	Configs []slicing.Config
	Usages  []float64
	QoEs    []float64
	Regret  slicing.Regret
}

// RunOnline drives an OnlinePolicy for iters configuration intervals on
// env, measuring usage and QoE each interval and accumulating regret
// against the oracle. The same seed reproduces the same run for any
// deterministic policy.
func RunOnline(policy slicing.OnlinePolicy, env slicing.Env, space slicing.ConfigSpace, sla slicing.SLA, traffic, iters int, oracle Oracle, seed int64) *RunResult {
	rng := mathx.NewRNG(seed)
	res := &RunResult{
		Name:   policy.Name(),
		Regret: slicing.Regret{OptUsage: oracle.Usage, OptQoE: oracle.QoE},
	}
	for it := 0; it < iters; it++ {
		cfg := policy.Next(it, rng)
		tr := env.Episode(cfg, traffic, rng.Int63())
		usage := space.Usage(cfg)
		qoe := tr.QoE(sla)
		policy.Observe(it, cfg, usage, qoe)

		res.Configs = append(res.Configs, cfg)
		res.Usages = append(res.Usages, usage)
		res.QoEs = append(res.QoEs, qoe)
		res.Regret.Observe(usage, qoe)
	}
	return res
}

// MeanTail returns the mean of the last k values of xs (or of all of
// them when fewer exist) — a convergence summary for trajectories.
func MeanTail(xs []float64, k int) float64 {
	if len(xs) == 0 {
		return 0
	}
	if k > len(xs) {
		k = len(xs)
	}
	var sum float64
	for _, x := range xs[len(xs)-k:] {
		sum += x
	}
	return sum / float64(k)
}
