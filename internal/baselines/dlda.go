package baselines

import (
	"math"
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/nn"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// DLDA re-implements the transfer-learning comparator (Shi et al.,
// NSDI'21) at the interface the paper uses it (§8): a teacher DNN is
// trained offline on a grid-searched simulator dataset, a student copy
// is fine-tuned online with real transitions, and each interval the
// method picks — from 10K sampled configurations — the one with the
// minimum resource usage whose predicted QoE meets the requirement.
type DLDA struct {
	Space   slicing.ConfigSpace
	SLA     slicing.SLA
	Traffic int
	// GridValues are the per-dimension normalized levels of the offline
	// grid dataset (paper: [0.0, 0.3, 0.6, 0.9]).
	GridValues []float64
	// SelectionPool is the number of sampled configurations per
	// decision (paper: 10K).
	SelectionPool int
	// FinetuneEpochs is the online training budget per observation.
	FinetuneEpochs int

	student *nn.MLP
	rng     *rand.Rand
	xs      [][]float64
	ys      [][]float64
}

// NewDLDA constructs the comparator; call TrainOffline before use.
func NewDLDA(space slicing.ConfigSpace, sla slicing.SLA, traffic int, rng *rand.Rand) *DLDA {
	return &DLDA{
		Space: space, SLA: sla, Traffic: traffic,
		GridValues:     []float64{0.0, 0.3, 0.6, 0.9},
		SelectionPool:  10000,
		FinetuneEpochs: 15,
		rng:            rng,
	}
}

// Name implements slicing.OnlinePolicy.
func (d *DLDA) Name() string { return "DLDA" }

func (d *DLDA) encode(cfg slicing.Config) []float64 {
	return core.EncodeInput(d.Space, d.Traffic, d.SLA, nil, cfg)
}

// GridConfigs enumerates the offline dataset's configurations: the
// Cartesian product of GridValues over the six dimensions.
func (d *DLDA) GridConfigs() []slicing.Config {
	levels := d.GridValues
	var out []slicing.Config
	u := make([]float64, slicing.ConfigDim)
	var rec func(dim int)
	rec = func(dim int) {
		if dim == slicing.ConfigDim {
			out = append(out, d.Space.Denormalize(append([]float64(nil), u...)))
			return
		}
		for _, v := range levels {
			u[dim] = v
			rec(dim + 1)
		}
	}
	rec(0)
	return out
}

// TrainOffline collects the grid dataset from env (the simulator) and
// trains the teacher network; the student starts as a copy. Each grid
// point is measured with one episode, matching the paper's 60-second
// collections ("approximately 68.5 hours in total" on the testbed —
// the simulator makes this cheap).
func (d *DLDA) TrainOffline(env slicing.Env, seed int64) {
	rng := mathx.NewRNG(seed)
	cfgs := d.GridConfigs()
	traces := make([][]float64, len(cfgs))
	for i, cfg := range cfgs {
		tr := env.Episode(cfg, d.Traffic, rng.Int63())
		traces[i] = tr.LatenciesMs
	}
	d.TrainFromTraces(cfgs, traces, seed+1)
}

// TrainFromTraces trains the teacher from pre-collected latency traces
// (QoE labels are derived under the method's SLA), so one grid
// collection can serve several threshold settings.
func (d *DLDA) TrainFromTraces(cfgs []slicing.Config, traces [][]float64, seed int64) {
	rng := mathx.NewRNG(seed)
	var xs [][]float64
	var ys [][]float64
	for i, cfg := range cfgs {
		xs = append(xs, d.encode(cfg))
		ys = append(ys, []float64{d.SLA.QoE(traces[i])})
	}
	teacher := nn.NewMLP(core.PolicyInputDim, []int{64, 64}, 1, rng)
	teacher.Fit(xs, ys, nn.TrainOptions{Epochs: 80, BatchSize: 64, LR: 1.0, Gamma: 0.999}, rng)
	d.student = teacher
	d.xs = xs
	d.ys = ys
}

// Next implements slicing.OnlinePolicy: minimum predicted-feasible
// usage over a large sampled pool, falling back to the highest
// predicted QoE when nothing is predicted feasible.
func (d *DLDA) Next(_ int, rng *rand.Rand) slicing.Config {
	if d.student == nil {
		return d.Space.Sample(rng)
	}
	bestUsage := math.Inf(1)
	bestQ := math.Inf(-1)
	var pick, fallback slicing.Config
	feasible := false
	for i := 0; i < d.SelectionPool; i++ {
		cfg := d.Space.Sample(rng)
		q := d.student.Forward(d.encode(cfg))[0]
		if q > bestQ {
			bestQ, fallback = q, cfg
		}
		if q >= d.SLA.Availability {
			if usage := d.Space.Usage(cfg); usage < bestUsage {
				bestUsage, pick = usage, cfg
				feasible = true
			}
		}
	}
	if !feasible {
		return fallback
	}
	return pick
}

// Observe implements slicing.OnlinePolicy: online transitions fine-tune
// the student (transfer learning). Online samples are weighted by
// repetition so the small real dataset can override the offline prior
// near the operating point.
func (d *DLDA) Observe(_ int, cfg slicing.Config, _ float64, qoe float64) {
	const onlineWeight = 8
	for i := 0; i < onlineWeight; i++ {
		d.xs = append(d.xs, d.encode(cfg))
		d.ys = append(d.ys, []float64{qoe})
	}
	if d.student != nil {
		d.student.Fit(d.xs, d.ys, nn.TrainOptions{Epochs: d.FinetuneEpochs, BatchSize: 128, LR: 0.5, Gamma: 0.999}, d.rng)
	}
}
