// Package baselines implements the comparison methods of the paper's
// evaluation — the direct Bayesian-optimization Baseline, DLDA
// (Shi et al., NSDI'21) and VirtualEdge (Liu & Han, ICDCS'19), both
// modified for service configuration exactly as §8 describes — plus the
// evaluation-only oracle that finds the optimal policy φ* used by the
// regret metrics, and the harness that runs any slicing.OnlinePolicy
// against an environment.
package baselines

import (
	"math"
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// Oracle is the evaluation-only optimum: the minimum-usage configuration
// whose measured QoE meets the SLA on the target environment. The
// online-learning regrets (Eqs. 10–11) are computed against it.
type Oracle struct {
	Config slicing.Config
	Usage  float64
	QoE    float64
}

// FindOracle searches env for φ* with `budget` random probes followed by
// local refinement. Each probe averages `episodes` episodes. This is
// far more interaction than any online method is allowed — it exists
// only to anchor the regret metrics, like the paper's "best policy"
// reference.
func FindOracle(env slicing.Env, space slicing.ConfigSpace, sla slicing.SLA, traffic, budget, episodes int, seed int64) Oracle {
	rng := mathx.NewRNG(seed)
	if episodes < 1 {
		episodes = 1
	}
	measure := func(cfg slicing.Config, n int) float64 {
		var sum float64
		for e := 0; e < n; e++ {
			tr := env.Episode(cfg, traffic, rng.Int63())
			sum += tr.QoE(sla)
		}
		return sum / float64(n)
	}

	// Screening pass: keep a shortlist of the cheapest configurations
	// that look feasible under the screening budget. Validating the
	// shortlist with extra episodes afterwards avoids the winner's
	// curse (accepting a config that passed on one lucky episode).
	type cand struct {
		cfg   slicing.Config
		usage float64
	}
	var shortlist []cand
	worst := math.Inf(1) // most expensive usage currently on the shortlist
	const shortlistCap = 8
	consider := func(cfg slicing.Config) {
		usage := space.Usage(cfg)
		if len(shortlist) == shortlistCap && usage >= worst {
			return
		}
		if q := measure(cfg, episodes); q < sla.Availability {
			return
		}
		shortlist = append(shortlist, cand{cfg, usage})
		if len(shortlist) > shortlistCap {
			// Drop the most expensive.
			maxI := 0
			for i, c := range shortlist {
				if c.usage > shortlist[maxI].usage {
					maxI = i
				}
			}
			shortlist = append(shortlist[:maxI], shortlist[maxI+1:]...)
		}
		worst = 0
		for _, c := range shortlist {
			if c.usage > worst {
				worst = c.usage
			}
		}
	}

	for i := 0; i < budget; i++ {
		consider(space.Sample(rng))
	}
	// Local refinement around the current cheapest shortlist entry.
	for i := 0; i < budget/3 && len(shortlist) > 0; i++ {
		minI := 0
		for j, c := range shortlist {
			if c.usage < shortlist[minI].usage {
				minI = j
			}
		}
		consider(perturb(space, shortlist[minI].cfg, 0.08, rng))
	}

	// Validation pass: re-measure the shortlist with a larger budget and
	// keep the cheapest configuration that is genuinely feasible.
	const validateEpisodes = 6
	best := Oracle{Usage: math.Inf(1)}
	for _, c := range shortlist {
		q := measure(c.cfg, validateEpisodes)
		if q >= sla.Availability && c.usage < best.Usage {
			best = Oracle{Config: c.cfg, Usage: c.usage, QoE: q}
		}
	}
	if math.IsInf(best.Usage, 1) {
		// SLA unreachable (or screening too noisy): fall back to full
		// resources.
		full := space.Max
		best = Oracle{Config: full, Usage: space.Usage(full), QoE: measure(full, validateEpisodes)}
	}
	return best
}

// perturb jitters a configuration by `scale` of each dimension's range,
// clamped to the box.
func perturb(space slicing.ConfigSpace, cfg slicing.Config, scale float64, rng *rand.Rand) slicing.Config {
	u := space.Normalize(cfg)
	for i := range u {
		u[i] = mathx.Clip(u[i]+scale*rng.NormFloat64(), 0, 1)
	}
	return space.Denormalize(u)
}
