package baselines

import (
	"math"
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/bo"
	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/gp"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// DirectBO is the paper's "Baseline": Bayesian optimization with a
// Gaussian-process model and the expected-improvement acquisition,
// learning directly in the real network with no offline stage. The
// constrained problem is scalarized with a fixed penalty on QoE
// shortfall, so the GP models a single objective
// f(a) = F(a) + C·max(E − Q(a), 0).
type DirectBO struct {
	Space   slicing.ConfigSpace
	SLA     slicing.SLA
	Traffic int
	// Penalty is the scalarization weight C.
	Penalty float64
	// Warmup is the number of initial random probes.
	Warmup int
	// Pool is the candidate pool per EI maximization.
	Pool int

	model *gp.Regressor
	xs    [][]float64
	ys    []float64
	last  slicing.Config
}

// NewDirectBO returns the baseline with the evaluation's settings.
func NewDirectBO(space slicing.ConfigSpace, sla slicing.SLA, traffic int) *DirectBO {
	return &DirectBO{
		Space: space, SLA: sla, Traffic: traffic,
		Penalty: 2.0, Warmup: 5, Pool: 2000,
		model: gp.NewRegressor(),
	}
}

// Name implements slicing.OnlinePolicy.
func (d *DirectBO) Name() string { return "Baseline" }

func (d *DirectBO) encode(cfg slicing.Config) []float64 {
	return core.EncodeInput(d.Space, d.Traffic, d.SLA, nil, cfg)
}

// Next implements slicing.OnlinePolicy.
func (d *DirectBO) Next(iter int, rng *rand.Rand) slicing.Config {
	if iter < d.Warmup || !d.model.Fitted() {
		d.last = d.Space.Sample(rng)
		return d.last
	}
	best := math.Inf(1)
	for _, y := range d.ys {
		if y < best {
			best = y
		}
	}
	acq := bo.EI{}
	var pick slicing.Config
	bestScore := math.Inf(-1)
	for i := 0; i < d.Pool; i++ {
		cfg := d.Space.Sample(rng)
		mean, std := d.model.Predict(d.encode(cfg))
		if s := acq.Score(mean, std, best); s > bestScore {
			pick, bestScore = cfg, s
		}
	}
	d.last = pick
	return pick
}

// Observe implements slicing.OnlinePolicy.
func (d *DirectBO) Observe(_ int, cfg slicing.Config, usage, qoe float64) {
	f := usage + d.Penalty*math.Max(d.SLA.Availability-qoe, 0)
	d.xs = append(d.xs, d.encode(cfg))
	d.ys = append(d.ys, f)
	_ = d.model.Fit(d.xs, d.ys)
}
