package baselines

import (
	"math"
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/gp"
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// VirtualEdge re-implements the multi-domain orchestration comparator
// (Liu & Han, ICDCS'19) at the interface the paper uses it: a Gaussian
// process learns the slice QoE function online, and a predictive
// gradient-descent step updates the current configuration — shrinking
// resources while the predicted QoE holds, growing them along the
// predicted QoE gradient when it does not.
type VirtualEdge struct {
	Space   slicing.ConfigSpace
	SLA     slicing.SLA
	Traffic int
	// Warmup random probes seed the GP.
	Warmup int
	// Step is the gradient step size in normalized configuration
	// space.
	Step float64
	// Dither adds exploration noise to each move.
	Dither float64

	model   *gp.Regressor
	xs      [][]float64
	ys      []float64
	current []float64 // normalized configuration
}

// NewVirtualEdge returns the comparator with evaluation settings.
func NewVirtualEdge(space slicing.ConfigSpace, sla slicing.SLA, traffic int) *VirtualEdge {
	return &VirtualEdge{
		Space: space, SLA: sla, Traffic: traffic,
		Warmup: 5, Step: 0.08, Dither: 0.02,
		model: gp.NewRegressor(),
	}
}

// Name implements slicing.OnlinePolicy.
func (v *VirtualEdge) Name() string { return "VirtualEdge" }

func (v *VirtualEdge) encode(u []float64) []float64 {
	return core.EncodeInput(v.Space, v.Traffic, v.SLA, nil, v.Space.Denormalize(u))
}

// predict returns the GP's QoE estimate at normalized point u.
func (v *VirtualEdge) predict(u []float64) float64 {
	mean, _ := v.model.Predict(v.encode(u))
	return mathx.Clip(mean, 0, 1)
}

// gradient estimates ∂Q̂/∂u by central differences.
func (v *VirtualEdge) gradient(u []float64) []float64 {
	const h = 0.05
	g := make([]float64, len(u))
	for i := range u {
		up := append([]float64(nil), u...)
		dn := append([]float64(nil), u...)
		up[i] = mathx.Clip(u[i]+h, 0, 1)
		dn[i] = mathx.Clip(u[i]-h, 0, 1)
		span := up[i] - dn[i]
		if span == 0 {
			continue
		}
		g[i] = (v.predict(up) - v.predict(dn)) / span
	}
	return g
}

// Next implements slicing.OnlinePolicy.
func (v *VirtualEdge) Next(iter int, rng *rand.Rand) slicing.Config {
	if iter < v.Warmup || !v.model.Fitted() {
		cfg := v.Space.Sample(rng)
		v.current = v.Space.Normalize(cfg)
		return cfg
	}
	u := append([]float64(nil), v.current...)
	if v.predict(u) >= v.SLA.Availability {
		// Feasible: descend resource usage uniformly, but prefer the
		// dimensions the QoE gradient says are least needed.
		g := v.gradient(u)
		for i := range u {
			// Shrink more where QoE is insensitive (small gradient).
			sensitivity := mathx.Clip(g[i]*4, 0, 1)
			u[i] -= v.Step * (1 - sensitivity)
		}
	} else {
		// Infeasible: climb the predicted QoE gradient.
		g := v.gradient(u)
		norm := 0.0
		for _, x := range g {
			norm += x * x
		}
		if norm > 0 {
			scale := v.Step * 2 / mathx.Clip(math.Sqrt(norm), 1e-6, 1e9)
			for i := range u {
				u[i] += scale * g[i]
			}
		} else {
			for i := range u {
				u[i] += v.Step
			}
		}
	}
	for i := range u {
		u[i] = mathx.Clip(u[i]+v.Dither*rng.NormFloat64(), 0, 1)
	}
	v.current = u
	return v.Space.Denormalize(u)
}

// Observe implements slicing.OnlinePolicy.
func (v *VirtualEdge) Observe(_ int, cfg slicing.Config, _ float64, qoe float64) {
	v.xs = append(v.xs, core.EncodeInput(v.Space, v.Traffic, v.SLA, nil, cfg))
	v.ys = append(v.ys, qoe)
	_ = v.model.Fit(v.xs, v.ys)
}
