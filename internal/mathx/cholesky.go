package mathx

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite even after the maximum
// jitter has been applied.
var ErrNotPositiveDefinite = errors.New("mathx: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ.
// A must be symmetric positive definite; only the lower triangle of A is
// read. The returned matrix has zeros above the diagonal.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("mathx: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// CholeskyJitter behaves like Cholesky but, on failure, retries with
// geometrically increasing jitter added to the diagonal, starting at
// startJitter and giving up after ten doublings of magnitude. It returns
// the factor and the jitter that succeeded.
func CholeskyJitter(a *Matrix, startJitter float64) (*Matrix, float64, error) {
	if l, err := Cholesky(a); err == nil {
		return l, 0, nil
	}
	jitter := startJitter
	for i := 0; i < 10; i++ {
		aj := a.Clone().AddDiag(jitter)
		if l, err := Cholesky(aj); err == nil {
			return l, jitter, nil
		}
		jitter *= 10
	}
	return nil, 0, ErrNotPositiveDefinite
}

// CholAppend returns a new factor extending L by one observation: given
// the factor L of an n×n matrix A (left untouched), the cross-covariance
// vector k and the new diagonal entry kappa, it returns the
// (n+1)×(n+1) factor of
//
//	⎡ A   k     ⎤
//	⎣ kᵀ  kappa ⎦
//
// in O(n²) — the incremental alternative to an O(n³) refactorization when
// observations arrive one at a time. It fails with ErrNotPositiveDefinite
// when the extended matrix is not (numerically) positive definite, in
// which case the caller should fall back to a full factorization with
// jitter.
func CholAppend(l *Matrix, k Vector, kappa float64) (*Matrix, error) {
	n := l.Rows
	mustSameLen(n, len(k))
	// New off-diagonal row: solve L·l₁₂ = k.
	l12 := SolveLower(l, k)
	// New diagonal entry: l₂₂² = kappa − l₁₂·l₁₂.
	d := kappa - l12.Dot(l12)
	if d <= 0 || math.IsNaN(d) {
		return nil, ErrNotPositiveDefinite
	}
	out := NewMatrix(n+1, n+1)
	for i := 0; i < n; i++ {
		copy(out.Data[i*(n+1):i*(n+1)+n], l.Data[i*n:(i+1)*n])
	}
	copy(out.Data[n*(n+1):n*(n+1)+n], l12)
	out.Set(n, n, math.Sqrt(d))
	return out, nil
}

// SolveLower solves L·x = b for lower-triangular L by forward substitution.
func SolveLower(l *Matrix, b Vector) Vector {
	x := make(Vector, len(b))
	copy(x, b)
	SolveLowerInPlace(l, x)
	return x
}

// SolveLowerInPlace solves L·x = b by forward substitution, overwriting
// b with x — the allocation-free core of SolveLower. The row of L is
// hoisted to a subslice once per step, so the inner loop runs without
// per-element index arithmetic.
func SolveLowerInPlace(l *Matrix, b Vector) {
	n := l.Rows
	mustSameLen(n, len(b))
	for i := 0; i < n; i++ {
		row := l.Data[i*l.Cols : i*l.Cols+i]
		sum := b[i]
		for k, lk := range row {
			sum -= lk * b[k]
		}
		b[i] = sum / l.Data[i*l.Cols+i]
	}
}

// SolveLowerMultiInPlace solves L·xⱼ = bⱼ for the m right-hand sides
// stored as the rows of b (an m×n matrix), overwriting each row with
// its solution — the multi-RHS forward substitution batched posterior
// inference rides on. The diagonal step i is outermost so each hoisted
// L row stays hot across all m substitutions; per row the arithmetic
// (subtraction order, division by the diagonal) is exactly
// SolveLowerInPlace, so results are bit-identical to m independent
// solves.
func SolveLowerMultiInPlace(l *Matrix, b *Matrix) {
	n := l.Rows
	mustSameLen(n, b.Cols)
	m := b.Rows
	for i := 0; i < n; i++ {
		lrow := l.Data[i*l.Cols : i*l.Cols+i]
		diag := l.Data[i*l.Cols+i]
		// Four right-hand sides at a time: each keeps its own
		// accumulator, so the four multiply-subtract dependency chains
		// run in parallel while sharing every load of L's row. The
		// per-RHS operation order is untouched — unrolling across
		// independent solves changes nothing bit-wise.
		j := 0
		for ; j+4 <= m; j += 4 {
			x0 := b.Data[j*n : j*n+i+1]
			x1 := b.Data[(j+1)*n : (j+1)*n+i+1]
			x2 := b.Data[(j+2)*n : (j+2)*n+i+1]
			x3 := b.Data[(j+3)*n : (j+3)*n+i+1]
			s0, s1, s2, s3 := x0[i], x1[i], x2[i], x3[i]
			for k, lk := range lrow {
				s0 -= lk * x0[k]
				s1 -= lk * x1[k]
				s2 -= lk * x2[k]
				s3 -= lk * x3[k]
			}
			x0[i], x1[i], x2[i], x3[i] = s0/diag, s1/diag, s2/diag, s3/diag
		}
		for ; j < m; j++ {
			x := b.Data[j*n : j*n+i+1]
			sum := x[i]
			for k, lk := range lrow {
				sum -= lk * x[k]
			}
			x[i] = sum / diag
		}
	}
}

// SolveUpperT solves Lᵀ·x = b given lower-triangular L by backward
// substitution (without forming the transpose).
func SolveUpperT(l *Matrix, b Vector) Vector {
	n := l.Rows
	mustSameLen(n, len(b))
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// CholSolve solves A·x = b given the Cholesky factor L of A.
func CholSolve(l *Matrix, b Vector) Vector {
	return SolveUpperT(l, SolveLower(l, b))
}

// LogDetFromChol returns log|A| given the Cholesky factor L of A.
func LogDetFromChol(l *Matrix) float64 {
	var sum float64
	for i := 0; i < l.Rows; i++ {
		sum += math.Log(l.At(i, i))
	}
	return 2 * sum
}
