package mathx

import (
	"fmt"
	"math"
)

// Vector is a slice of float64 with the small set of dense linear-algebra
// helpers Atlas needs. Operations that produce a new vector never alias
// their inputs.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns v + w element-wise. It panics if lengths differ.
func (v Vector) Add(w Vector) Vector {
	mustSameLen(len(v), len(w))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w element-wise. It panics if lengths differ.
func (v Vector) Sub(w Vector) Vector {
	mustSameLen(len(v), len(w))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns s*v.
func (v Vector) Scale(s float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// Dot returns the inner product of v and w. It panics if lengths differ.
func (v Vector) Dot(w Vector) float64 {
	mustSameLen(len(v), len(w))
	var sum float64
	for i := range v {
		sum += v[i] * w[i]
	}
	return sum
}

// Norm2 returns the Euclidean (l2) norm of v.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// Norm1 returns the l1 norm of v.
func (v Vector) Norm1() float64 {
	var sum float64
	for i := range v {
		sum += math.Abs(v[i])
	}
	return sum
}

// Dist2 returns the Euclidean distance |v - w|₂.
func (v Vector) Dist2(w Vector) float64 {
	mustSameLen(len(v), len(w))
	var sum float64
	for i := range v {
		d := v[i] - w[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var sum float64
	for i := range v {
		sum += v[i]
	}
	return sum
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Min returns the smallest element and its index. It panics on an empty
// vector.
func (v Vector) Min() (float64, int) {
	if len(v) == 0 {
		panic("mathx: Min of empty vector")
	}
	best, idx := v[0], 0
	for i, x := range v {
		if x < best {
			best, idx = x, i
		}
	}
	return best, idx
}

// Max returns the largest element and its index. It panics on an empty
// vector.
func (v Vector) Max() (float64, int) {
	if len(v) == 0 {
		panic("mathx: Max of empty vector")
	}
	best, idx := v[0], 0
	for i, x := range v {
		if x > best {
			best, idx = x, i
		}
	}
	return best, idx
}

// Clip returns a copy of v with every element clamped to [lo, hi].
func (v Vector) Clip(lo, hi float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = Clip(v[i], lo, hi)
	}
	return out
}

// Clip clamps x to [lo, hi].
func Clip(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a and b: a + t*(b-a).
func Lerp(a, b, t float64) float64 { return a + t*(b-a) }

func mustSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("mathx: length mismatch %d != %d", a, b))
	}
}
