package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	sum := v.Add(w)
	if sum[0] != 5 || sum[1] != 7 || sum[2] != 9 {
		t.Fatalf("Add = %v", sum)
	}
	diff := w.Sub(v)
	if diff[0] != 3 || diff[1] != 3 || diff[2] != 3 {
		t.Fatalf("Sub = %v", diff)
	}
	// Inputs untouched.
	if v[0] != 1 || w[0] != 4 {
		t.Fatal("inputs mutated")
	}
}

func TestVectorAddPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.Add(Vector{1, 2})
}

func TestVectorDotNorm(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Dot(v); got != 25 {
		t.Fatalf("Dot = %v", got)
	}
	if got := v.Norm2(); got != 5 {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Fatalf("Norm1 = %v", got)
	}
	if got := (Vector{0, 0}).Dist2(v); got != 5 {
		t.Fatalf("Dist2 = %v", got)
	}
}

func TestVectorMinMaxMean(t *testing.T) {
	v := Vector{2, -1, 7, 3}
	if m, i := v.Min(); m != -1 || i != 1 {
		t.Fatalf("Min = %v,%d", m, i)
	}
	if m, i := v.Max(); m != 7 || i != 2 {
		t.Fatalf("Max = %v,%d", m, i)
	}
	if got := v.Mean(); got != 2.75 {
		t.Fatalf("Mean = %v", got)
	}
	if got := (Vector{}).Mean(); got != 0 {
		t.Fatalf("empty Mean = %v", got)
	}
}

func TestClip(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 1, 1},
		{-5, 0, 1, 0},
		{0.5, 0, 1, 0.5},
	}
	for _, c := range cases {
		if got := Clip(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clip(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

// Property: triangle inequality for Dist2 on random 4-vectors.
func TestDist2TriangleInequality(t *testing.T) {
	f := func(a, b, c [4]float64) bool {
		va, vb, vc := Vector(a[:]), Vector(b[:]), Vector(c[:])
		for _, x := range append(append(append([]float64{}, a[:]...), b[:]...), c[:]...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		return va.Dist2(vc) <= va.Dist2(vb)+vb.Dist2(vc)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Scale distributes over Add.
func TestScaleDistributes(t *testing.T) {
	f := func(a, b [3]float64, s float64) bool {
		for _, x := range []float64{a[0], a[1], a[2], b[0], b[1], b[2], s} {
			if math.IsNaN(x) || math.Abs(x) > 1e50 {
				return true
			}
		}
		va, vb := Vector(a[:]), Vector(b[:])
		left := va.Add(vb).Scale(s)
		right := va.Scale(s).Add(vb.Scale(s))
		for i := range left {
			tol := 1e-9 * (1 + math.Abs(left[i]))
			if !almostEq(left[i], right[i], tol) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := Split(42, 3)
	b := Split(42, 3)
	for i := range a {
		for j := 0; j < 10; j++ {
			if a[i].Int63() != b[i].Int63() {
				t.Fatalf("child %d diverged", i)
			}
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	// Child i must not depend on how many draws child i-1 made.
	a := Split(7, 2)
	b := Split(7, 2)
	a[0].Int63() // extra draw on a's first child
	if b[1].Int63() != a[1].Int63() {
		t.Fatal("sibling streams not independent")
	}
}

func TestChildSeedMatchesSplit(t *testing.T) {
	rngs := Split(99, 4)
	for i := 0; i < 4; i++ {
		want := NewRNG(ChildSeed(99, i)).Int63()
		if got := rngs[i].Int63(); got != want {
			t.Fatalf("child %d: Split=%d ChildSeed=%d", i, got, want)
		}
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(2, 4, 0.5); got != 3 {
		t.Fatalf("Lerp = %v", got)
	}
	if got := Lerp(2, 4, 0); got != 2 {
		t.Fatalf("Lerp(0) = %v", got)
	}
	if got := Lerp(2, 4, 1); got != 4 {
		t.Fatalf("Lerp(1) = %v", got)
	}
}
