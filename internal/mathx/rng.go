// Package mathx provides the small numerical toolbox Atlas is built on:
// vectors, dense matrices, Cholesky factorization, probability
// distributions, and deterministic RNG splitting.
//
// Everything uses float64 and the standard library only. The package is
// deliberately minimal: it implements exactly what the Bayesian
// optimization stack (Gaussian processes, Bayesian neural networks,
// Thompson sampling) and the network simulator need, with predictable
// numerical behaviour rather than maximal generality.
package mathx

import "math/rand"

// SplitMix64 advances a SplitMix64 state and returns the next value.
// It is used to derive independent child seeds from a parent seed so that
// experiments are reproducible regardless of the order in which their
// subsystems draw random numbers.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a rand.Rand seeded with the given seed.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Split derives n independent RNGs from a single seed using SplitMix64.
// Child i is a pure function of (seed, i): inserting additional draws in
// one child never perturbs its siblings.
func Split(seed int64, n int) []*rand.Rand {
	state := uint64(seed)
	out := make([]*rand.Rand, n)
	for i := range out {
		out[i] = NewRNG(int64(SplitMix64(&state)))
	}
	return out
}

// ChildSeed returns the idx-th child seed derived from seed. It is the
// scalar form of Split for callers that construct their own RNGs.
func ChildSeed(seed int64, idx int) int64 {
	state := uint64(seed)
	var v uint64
	for i := 0; i <= idx; i++ {
		v = SplitMix64(&state)
	}
	return int64(v)
}
