package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almostEq(got, c.want, 1e-6) {
			t.Errorf("NormalCDF(%v) = %v want %v", c.x, got, c.want)
		}
	}
}

func TestNormalPDFIntegratesToOne(t *testing.T) {
	// Trapezoid over [-8, 8].
	sum := 0.0
	const step = 1e-3
	for x := -8.0; x < 8; x += step {
		sum += NormalPDF(x) * step
	}
	if !almostEq(sum, 1, 1e-4) {
		t.Fatalf("integral = %v", sum)
	}
}

func TestSampleGammaMoments(t *testing.T) {
	rng := NewRNG(3)
	for _, c := range []struct{ shape, scale float64 }{
		{0.5, 1}, {2, 0.5}, {48, 0.1},
	} {
		const n = 20000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := SampleGamma(rng, c.shape, c.scale)
			if x < 0 {
				t.Fatalf("negative gamma sample %v", x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if !almostEq(mean, wantMean, 0.05*wantMean+0.01) {
			t.Errorf("Gamma(%v,%v) mean=%v want %v", c.shape, c.scale, mean, wantMean)
		}
		if !almostEq(variance, wantVar, 0.15*wantVar+0.01) {
			t.Errorf("Gamma(%v,%v) var=%v want %v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestSampleGammaPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SampleGamma(NewRNG(1), -1, 1)
}

func TestLogNormalParamsRoundTrip(t *testing.T) {
	rng := NewRNG(4)
	mu, sigma := LogNormalParams(100, 30)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += SampleLogNormal(rng, mu, sigma)
	}
	if mean := sum / n; !almostEq(mean, 100, 2) {
		t.Fatalf("lognormal mean = %v want 100", mean)
	}
}

func TestSampleTruncNormalBounds(t *testing.T) {
	rng := NewRNG(5)
	for i := 0; i < 1000; i++ {
		x := SampleTruncNormal(rng, 0, 10, -1, 1)
		if x < -1 || x > 1 {
			t.Fatalf("sample %v outside bounds", x)
		}
	}
}

func TestSoftplusInverse(t *testing.T) {
	f := func(raw float64) bool {
		y := math.Abs(raw)
		if math.IsNaN(y) || y < 1e-6 || y > 1e6 {
			return true
		}
		got := Softplus(SoftplusInv(y))
		return almostEq(got, y, 1e-9*(1+y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftplusPositive(t *testing.T) {
	for _, x := range []float64{-100, -1, 0, 1, 100} {
		if Softplus(x) <= 0 {
			t.Errorf("Softplus(%v) = %v not positive", x, Softplus(x))
		}
	}
}

func TestSigmoidRangeAndSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > 500 {
			return true
		}
		s := Sigmoid(x)
		if s < 0 || s > 1 {
			return false
		}
		return almostEq(s+Sigmoid(-x), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogGaussianPDFMatchesPDF(t *testing.T) {
	got := LogGaussianPDF(1.3, 0, 1)
	want := math.Log(NormalPDF(1.3))
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("LogGaussianPDF = %v want %v", got, want)
	}
}

func TestSampleExpMean(t *testing.T) {
	rng := NewRNG(6)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += SampleExp(rng, 4)
	}
	if mean := sum / n; !almostEq(mean, 0.25, 0.01) {
		t.Fatalf("exp mean = %v want 0.25", mean)
	}
}
