package mathx

import "fmt"

// MatrixState is the serializable form of a Matrix: a versioned,
// deterministic encoding (fields marshal in declaration order under
// encoding/json) used by the artifact store to persist learned models'
// linear-algebra state — most importantly Cholesky factors, whose exact
// bits must survive a snapshot/restore round trip so that incremental
// rank-1 extensions continue identically after a warm start.
type MatrixState struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// State returns a deep-copied serializable snapshot of m. A nil matrix
// snapshots to nil.
func (m *Matrix) State() *MatrixState {
	if m == nil {
		return nil
	}
	return &MatrixState{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

// MatrixFromState rebuilds a Matrix from its serialized state,
// validating dimensions against the data length. A nil state restores
// to nil.
func MatrixFromState(s *MatrixState) (*Matrix, error) {
	if s == nil {
		return nil, nil
	}
	if s.Rows < 0 || s.Cols < 0 {
		return nil, fmt.Errorf("mathx: matrix state with negative dims %dx%d", s.Rows, s.Cols)
	}
	if len(s.Data) != s.Rows*s.Cols {
		return nil, fmt.Errorf("mathx: matrix state %dx%d wants %d elements, has %d",
			s.Rows, s.Cols, s.Rows*s.Cols, len(s.Data))
	}
	m := NewMatrix(s.Rows, s.Cols)
	copy(m.Data, s.Data)
	return m, nil
}

// CopyVecs deep-copies a slice of float64 vectors (snapshot hygiene:
// restored models must not alias the snapshot's backing arrays).
func CopyVecs(xs [][]float64) [][]float64 {
	if xs == nil {
		return nil
	}
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = append([]float64(nil), x...)
	}
	return out
}
