package mathx

import "fmt"

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len = Rows*Cols, row-major
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mathx: negative matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m·v. It panics if dimensions are incompatible.
func (m *Matrix) MulVec(v Vector) Vector {
	mustSameLen(m.Cols, len(v))
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var sum float64
		for j, x := range row {
			sum += x * v[j]
		}
		out[i] = sum
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m·b. It panics if dimensions are incompatible.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mathx: matmul dims %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, x := range brow {
				orow[j] += a * x
			}
		}
	}
	return out
}

// AddDiag adds v to the diagonal of m in place and returns m. It panics if
// m is not square or v has the wrong length.
func (m *Matrix) AddDiag(v float64) *Matrix {
	if m.Rows != m.Cols {
		panic("mathx: AddDiag on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += v
	}
	return m
}
