package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD builds a random symmetric positive-definite matrix A = BᵀB + I.
func randomSPD(n int, rng *rand.Rand) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := b.Transpose().Mul(b)
	a.AddDiag(1.0)
	return a
}

func TestCholeskyReconstruct(t *testing.T) {
	rng := NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(8)
		a := randomSPD(n, rng)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// L·Lᵀ must reconstruct A.
		recon := l.Mul(l.Transpose())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(recon.At(i, j), a.At(i, j), 1e-8*(1+math.Abs(a.At(i, j)))) {
					t.Fatalf("trial %d: recon[%d][%d]=%v want %v", trial, i, j, recon.At(i, j), a.At(i, j))
				}
			}
		}
		// Upper triangle of L must be zero.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("L not lower triangular at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected failure on indefinite matrix")
	}
}

func TestCholeskyJitterRecovers(t *testing.T) {
	// Singular PSD matrix: rank-1.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	l, jitter, err := CholeskyJitter(a, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if jitter <= 0 {
		t.Fatal("expected positive jitter for singular input")
	}
	if l == nil {
		t.Fatal("nil factor")
	}
}

func TestCholSolve(t *testing.T) {
	rng := NewRNG(2)
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(8)
		a := randomSPD(n, rng)
		x := make(Vector, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		got := CholSolve(l, b)
		for i := range x {
			if !almostEq(got[i], x[i], 1e-7*(1+math.Abs(x[i]))) {
				t.Fatalf("trial %d: solve[%d]=%v want %v", trial, i, got[i], x[i])
			}
		}
	}
}

func TestLogDetFromChol(t *testing.T) {
	// diag(4, 9): det = 36, logdet = log 36.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 9)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := LogDetFromChol(l); !almostEq(got, math.Log(36), 1e-12) {
		t.Fatalf("logdet = %v want %v", got, math.Log(36))
	}
}

// Property: solving against the identity returns the input.
func TestSolveIdentity(t *testing.T) {
	f := func(raw [5]float64) bool {
		n := len(raw)
		eye := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			eye.Set(i, i, 1)
		}
		b := make(Vector, n)
		for i, x := range raw {
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				return true
			}
			b[i] = x
		}
		l, err := Cholesky(eye)
		if err != nil {
			return false
		}
		got := CholSolve(l, b)
		for i := range b {
			if got[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixOps(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 1, 3)
	v := m.MulVec(Vector{1, 1, 1})
	if v[0] != 3 || v[1] != 3 {
		t.Fatalf("MulVec = %v", v)
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 0) != 2 {
		t.Fatalf("Transpose wrong: %+v", tr)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone aliases source")
	}
}

func TestCholAppendMatchesFullFactorization(t *testing.T) {
	rng := NewRNG(9)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		a := randomSPD(n, rng)
		// Factor the leading 2×2 block, then grow one row/column at a
		// time and compare against factoring the full leading block.
		lead := func(m int) *Matrix {
			out := NewMatrix(m, m)
			for i := 0; i < m; i++ {
				for j := 0; j < m; j++ {
					out.Set(i, j, a.At(i, j))
				}
			}
			return out
		}
		l, err := Cholesky(lead(2))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for m := 3; m <= n; m++ {
			k := make(Vector, m-1)
			for i := 0; i < m-1; i++ {
				k[i] = a.At(m-1, i)
			}
			l, err = CholAppend(l, k, a.At(m-1, m-1))
			if err != nil {
				t.Fatalf("trial %d append to %d: %v", trial, m, err)
			}
			full, err := Cholesky(lead(m))
			if err != nil {
				t.Fatalf("trial %d full %d: %v", trial, m, err)
			}
			for i := 0; i < m; i++ {
				for j := 0; j < m; j++ {
					if d := math.Abs(l.At(i, j) - full.At(i, j)); d > 1e-10 {
						t.Fatalf("trial %d size %d: L(%d,%d) differs by %g", trial, m, i, j, d)
					}
				}
			}
		}
	}
}

func TestCholAppendRejectsIndefiniteExtension(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Extending with a cross-covariance too large for the new diagonal
	// makes the Schur complement negative.
	if _, err := CholAppend(l, Vector{2, 0}, 1); err == nil {
		t.Fatal("expected ErrNotPositiveDefinite for indefinite extension")
	}
}

// refSolveLower is the pre-optimization forward substitution (fresh
// output vector, At-based indexing) the in-place and multi-RHS solvers
// must match bit for bit.
func refSolveLower(l *Matrix, b Vector) Vector {
	n := l.Rows
	x := make(Vector, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

func TestSolveLowerInPlaceBitIdentical(t *testing.T) {
	rng := NewRNG(11)
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(12)
		l, err := Cholesky(randomSPD(n, rng))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b := make(Vector, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := refSolveLower(l, b)
		got := SolveLower(l, b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: SolveLower[%d]=%v want %v (bit-exact)", trial, i, got[i], want[i])
			}
		}
		inPlace := append(Vector(nil), b...)
		SolveLowerInPlace(l, inPlace)
		for i := range want {
			if inPlace[i] != want[i] {
				t.Fatalf("trial %d: SolveLowerInPlace[%d]=%v want %v (bit-exact)", trial, i, inPlace[i], want[i])
			}
		}
	}
}

func TestSolveLowerMultiInPlaceBitIdentical(t *testing.T) {
	rng := NewRNG(12)
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		m := 1 + rng.Intn(9)
		l, err := Cholesky(randomSPD(n, rng))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b := NewMatrix(m, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		want := make([]Vector, m)
		for j := 0; j < m; j++ {
			want[j] = refSolveLower(l, b.Row(j))
		}
		SolveLowerMultiInPlace(l, b)
		for j := 0; j < m; j++ {
			for i := 0; i < n; i++ {
				if b.At(j, i) != want[j][i] {
					t.Fatalf("trial %d: rhs %d elem %d = %v want %v (bit-exact)", trial, j, i, b.At(j, i), want[j][i])
				}
			}
		}
	}
}
