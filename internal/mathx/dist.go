package mathx

import (
	"math"
	"math/rand"
)

// NormalPDF returns the standard normal density at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// NormalCDF returns the standard normal cumulative distribution at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// SampleNormal draws from N(mean, std²).
func SampleNormal(rng *rand.Rand, mean, std float64) float64 {
	return mean + std*rng.NormFloat64()
}

// SampleTruncNormal draws from N(mean, std²) truncated to [lo, hi] by
// rejection, falling back to clipping after 64 rejections (which only
// happens when the interval has negligible mass).
func SampleTruncNormal(rng *rand.Rand, mean, std, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		x := SampleNormal(rng, mean, std)
		if x >= lo && x <= hi {
			return x
		}
	}
	return Clip(mean, lo, hi)
}

// SampleLogNormal draws from LogNormal(mu, sigma²) where mu and sigma are
// the mean and standard deviation of the underlying normal.
func SampleLogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(SampleNormal(rng, mu, sigma))
}

// LogNormalParams converts a desired mean m and standard deviation s of a
// lognormal variate into the (mu, sigma) of the underlying normal.
func LogNormalParams(m, s float64) (mu, sigma float64) {
	if m <= 0 {
		panic("mathx: lognormal mean must be positive")
	}
	v := s * s / (m * m)
	sigma = math.Sqrt(math.Log(1 + v))
	mu = math.Log(m) - sigma*sigma/2
	return mu, sigma
}

// SampleExp draws from Exponential(rate).
func SampleExp(rng *rand.Rand, rate float64) float64 {
	return rng.ExpFloat64() / rate
}

// SampleGamma draws from Gamma(shape k, scale θ) using the
// Marsaglia–Tsang method (with Johnk boost for shape < 1).
func SampleGamma(rng *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("mathx: gamma shape and scale must be positive")
	}
	if shape < 1 {
		// Gamma(k) = Gamma(k+1) * U^{1/k}
		u := rng.Float64()
		return SampleGamma(rng, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Softplus returns log(1+exp(x)) computed stably.
func Softplus(x float64) float64 {
	if x > 30 {
		return x
	}
	if x < -30 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}

// SoftplusInv returns the inverse of Softplus: log(exp(y)-1).
func SoftplusInv(y float64) float64 {
	if y > 30 {
		return y
	}
	return math.Log(math.Expm1(y))
}

// Sigmoid returns 1/(1+exp(-x)).
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// LogGaussianPDF returns log N(x | mean, std²).
func LogGaussianPDF(x, mean, std float64) float64 {
	z := (x - mean) / std
	return -0.5*z*z - math.Log(std) - 0.5*math.Log(2*math.Pi)
}
