package scenarios

import (
	"reflect"
	"testing"

	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/fleet"
	"github.com/atlas-slicing/atlas/internal/realnet"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// TestRegistryLookup: every name resolves, unknown names don't.
func TestRegistryLookup(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("catalog has %d scenarios, want at least 5", len(names))
	}
	for _, name := range names {
		s, ok := Get(name)
		if !ok || s.Name != name {
			t.Fatalf("scenario %q not resolvable", name)
		}
		if len(s.Classes) == 0 || s.Description == "" {
			t.Fatalf("scenario %q incomplete: %+v", name, s)
		}
	}
	if _, ok := Get("no-such-scenario"); ok {
		t.Fatal("unknown scenario resolved")
	}
}

// TestScenariosExpandToValidSpecs: every registered scenario expands to
// specs the orchestrator accepts: a class, a positive nominal traffic,
// an availability target in (0, 1], and unique IDs.
func TestScenariosExpandToValidSpecs(t *testing.T) {
	for _, scen := range All() {
		specs := scen.Specs(6)
		if len(specs) != 6 {
			t.Fatalf("%s: expanded to %d specs", scen.Name, len(specs))
		}
		ids := map[string]bool{}
		for i, spec := range specs {
			if spec.Class == nil {
				t.Fatalf("%s spec %d: no class", scen.Name, i)
			}
			if spec.Traffic < 1 || spec.Traffic > core.MaxTraffic {
				t.Fatalf("%s spec %d: traffic %d outside [1, %d]", scen.Name, i, spec.Traffic, core.MaxTraffic)
			}
			if a := spec.SLA.Availability; a <= 0 || a > 1 {
				t.Fatalf("%s spec %d: availability %v", scen.Name, i, a)
			}
			if ids[spec.ID] {
				t.Fatalf("%s spec %d: duplicate id %q", scen.Name, i, spec.ID)
			}
			ids[spec.ID] = true
		}
	}
}

// TestMixedScenarioIsHeterogeneous: the mixed fleet covers at least 3
// distinct classes, 2 distinct QoE models, and a time-varying traffic
// model (the acceptance shape of the service-class refactor).
func TestMixedScenarioIsHeterogeneous(t *testing.T) {
	scen, ok := Get("mixed")
	if !ok {
		t.Fatal("mixed scenario missing")
	}
	specs := scen.Specs(4)
	classes := map[string]bool{}
	qoes := map[string]bool{}
	timeVarying := false
	for _, spec := range specs {
		classes[spec.Class.Name] = true
		qoes[spec.Class.QoEModelName()] = true
		if spec.Class.TrafficModelName() != (slicing.ConstantTraffic{}).Name() {
			timeVarying = true
		}
	}
	if len(classes) < 3 {
		t.Fatalf("mixed fleet has %d distinct classes, want >= 3", len(classes))
	}
	if len(qoes) < 2 {
		t.Fatalf("mixed fleet has %d distinct QoE models, want >= 2", len(qoes))
	}
	if !timeVarying {
		t.Fatal("mixed fleet has no time-varying traffic model")
	}
}

// TestClassQoEModelsStayInUnitInterval: every cataloged class's QoE
// model maps both simulator and surrogate-testbed episodes — and
// degenerate traces — into [0, 1].
func TestClassQoEModelsStayInUnitInterval(t *testing.T) {
	sim := simnet.NewDefault()
	real := realnet.New()
	cfg := slicing.Config{BandwidthUL: 40, BandwidthDL: 40, BackhaulMbps: 80, CPURatio: 0.8}
	starved := slicing.Config{BandwidthUL: 1, BandwidthDL: 1, BackhaulMbps: 2, CPURatio: 0.05}
	for _, class := range Classes() {
		for i, env := range []slicing.Env{sim, real} {
			for j, c := range []slicing.Config{cfg, starved} {
				tr := slicing.EpisodeFor(env, &class, c, class.Traffic, int64(17+i+10*j))
				q := class.Eval(tr)
				if q < 0 || q > 1 {
					t.Fatalf("%s env %d cfg %d: QoE %v outside [0, 1]", class.Name, i, j, q)
				}
			}
		}
		if q := class.Eval(slicing.Trace{}); q < 0 || q > 1 {
			t.Fatalf("%s: empty-trace QoE %v outside [0, 1]", class.Name, q)
		}
	}
}

// TestClassWorkloadsDiffer: class app profiles actually change what the
// episode pipeline produces (frame counts or goodput), i.e. the engine
// is really parameterized by the class.
func TestClassWorkloadsDiffer(t *testing.T) {
	sim := simnet.NewDefault()
	cfg := slicing.Config{BandwidthUL: 40, BandwidthDL: 40, BackhaulMbps: 80, CPURatio: 0.8}
	teleop := Teleoperation()
	embb := BulkStreaming()
	trTele := sim.EpisodeClass(teleop, cfg, 1, 5)
	trEmbb := sim.EpisodeClass(embb, cfg, 1, 5)
	if trTele.Frames <= trEmbb.Frames {
		t.Fatalf("teleop (%d frames) should out-pace bulk streaming (%d frames)", trTele.Frames, trEmbb.Frames)
	}
	if trEmbb.ULThroughputMbps <= trTele.ULThroughputMbps {
		t.Fatalf("bulk streaming goodput %v should exceed teleop %v",
			trEmbb.ULThroughputMbps, trTele.ULThroughputMbps)
	}
}

// quickMixedOpts keeps orchestrated scenario runs test-sized.
func quickMixedOpts(intervals, workers int) core.OrchestratorOptions {
	opts := core.DefaultOrchestratorOptions()
	opts.Intervals = intervals
	opts.Workers = workers
	opts.Seed = 11
	opts.Online.Pool = 64
	opts.Online.N = 4
	return opts
}

// TestMixedFleetDeterministicAcrossWorkers: a heterogeneous mixed-class
// run must be bit-identical at any worker count — per-slice
// trajectories, per-interval traffic, the epoch aggregate, and the
// per-class aggregates.
func TestMixedFleetDeterministicAcrossWorkers(t *testing.T) {
	real := realnet.New()
	sim := simnet.NewDefault()
	scen, _ := Get("mixed")

	runAt := func(workers int) *core.OrchestratorResult {
		return core.NewOrchestrator(real, sim, scen.Specs(4), quickMixedOpts(4, workers)).Run()
	}
	seq := runAt(1)
	par := runAt(8)

	for i := range seq.Slices {
		a, b := seq.Slices[i], par.Slices[i]
		if a.Err != nil || b.Err != nil {
			t.Fatalf("slice %d errs: %v, %v", i, a.Err, b.Err)
		}
		for j := range a.Usages {
			if a.Usages[j] != b.Usages[j] || a.QoEs[j] != b.QoEs[j] ||
				a.Configs[j] != b.Configs[j] || a.Traffics[j] != b.Traffics[j] {
				t.Fatalf("slice %d interval %d diverged across worker counts", i, j)
			}
		}
	}
	for e := range seq.Epochs {
		if seq.Epochs[e] != par.Epochs[e] {
			t.Fatalf("epoch %d aggregate not bit-identical: %+v vs %+v", e, seq.Epochs[e], par.Epochs[e])
		}
	}
	if len(seq.Classes) != len(par.Classes) {
		t.Fatalf("class aggregate counts %d vs %d", len(seq.Classes), len(par.Classes))
	}
	for c := range seq.Classes {
		a, b := seq.Classes[c], par.Classes[c]
		if a.Class != b.Class || a.Slices != b.Slices || a.MeanUsage != b.MeanUsage ||
			a.MeanQoE != b.MeanQoE || a.Violations != b.Violations {
			t.Fatalf("class %q aggregate not bit-identical", a.Class)
		}
		for e := range a.Epochs {
			if a.Epochs[e] != b.Epochs[e] {
				t.Fatalf("class %q epoch %d not bit-identical", a.Class, e)
			}
		}
	}

	// Repeated runs at the same worker count are bit-identical too.
	again := runAt(8)
	for i := range par.Slices {
		for j := range par.Slices[i].Usages {
			if par.Slices[i].Usages[j] != again.Slices[i].Usages[j] {
				t.Fatalf("slice %d interval %d not reproducible", i, j)
			}
		}
	}
}

// TestMixedFleetExercisesTimeVaryingTraffic: at least one slice's
// per-interval demand actually changes over the run.
func TestMixedFleetExercisesTimeVaryingTraffic(t *testing.T) {
	real := realnet.New()
	sim := simnet.NewDefault()
	scen, _ := Get("mixed")
	res := core.NewOrchestrator(real, sim, scen.Specs(4), quickMixedOpts(12, 4)).Run()
	varied := false
	for _, sr := range res.Slices {
		if sr.Err != nil {
			t.Fatalf("%s: %v", sr.Spec.ID, sr.Err)
		}
		for j := 1; j < len(sr.Traffics); j++ {
			if sr.Traffics[j] != sr.Traffics[0] {
				varied = true
			}
			if sr.Traffics[j] < 1 || sr.Traffics[j] > core.MaxTraffic {
				t.Fatalf("%s interval %d: traffic %d outside [1, %d]",
					sr.Spec.ID, j, sr.Traffics[j], core.MaxTraffic)
			}
		}
	}
	if !varied {
		t.Fatal("no slice's demand varied over 12 intervals")
	}
}

// TestFleetScenarioCatalog: every dynamic scenario is retrievable,
// internally consistent (an arrival process, a lifetime, a value, and a
// finite capacity per class), and produces a non-empty deterministic
// arrival trace over its default horizon.
func TestFleetScenarioCatalog(t *testing.T) {
	names := FleetNames()
	if len(names) != len(AllFleet()) {
		t.Fatalf("FleetNames %v does not cover the registry", names)
	}
	for _, want := range []string{"churn", "flashcrowd", "diurnal-fleet"} {
		if _, ok := GetFleet(want); !ok {
			t.Fatalf("dynamic scenario %q missing", want)
		}
	}
	if _, ok := GetFleet("paper"); ok {
		t.Fatal("static scenario resolved as a fleet scenario")
	}
	for _, fs := range AllFleet() {
		if fs.Capacity.IsZero() || fs.Horizon <= 0 {
			t.Fatalf("%s: missing capacity or horizon", fs.Name)
		}
		if len(fs.Classes) == 0 {
			t.Fatalf("%s: no arrival classes", fs.Name)
		}
		for _, ac := range fs.Classes {
			if ac.Class.Name == "" {
				t.Fatalf("%s: unnamed class", fs.Name)
			}
			if ac.Rate <= 0 && ac.Every <= 0 && ac.Surge.Len == 0 {
				t.Fatalf("%s/%s: no arrival process", fs.Name, ac.Class.Name)
			}
			if ac.Value <= 0 {
				t.Fatalf("%s/%s: non-positive value", fs.Name, ac.Class.Name)
			}
			if ac.MeanLifetime < 0 {
				t.Fatalf("%s/%s: negative lifetime", fs.Name, ac.Class.Name)
			}
		}
		a := fleet.Trace(fs.Classes, fs.Horizon, 42)
		if len(a) == 0 {
			t.Fatalf("%s: empty arrival trace over %d epochs", fs.Name, fs.Horizon)
		}
		b := fleet.Trace(fs.Classes, fs.Horizon, 42)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: trace not deterministic", fs.Name)
		}
	}
	// The flashcrowd surge actually lands inside its window.
	fs, _ := GetFleet("flashcrowd")
	surged := 0
	for _, ev := range fleet.Trace(fs.Classes, fs.Horizon, 42) {
		if ev.Class.Name == "teleop" && ev.Epoch >= 80 && ev.Epoch < 120 {
			surged++
		}
	}
	if surged < 5 {
		t.Fatalf("flashcrowd surge produced only %d teleop arrivals in the window", surged)
	}
}

func TestTopologyCatalog(t *testing.T) {
	if len(TopologyNames()) != len(AllTopologies()) {
		t.Fatal("topology name/registry length mismatch")
	}
	if _, ok := GetTopology("nope"); ok {
		t.Fatal("unknown topology resolved")
	}
	for _, p := range AllTopologies() {
		if p.Name == "" || p.Description == "" || p.DefaultSites < 2 {
			t.Fatalf("preset %+v underspecified", p)
		}
		g, err := p.Build(0)
		if err != nil {
			t.Fatalf("%s: default build: %v", p.Name, err)
		}
		if len(g.Sites) != p.DefaultSites {
			t.Fatalf("%s: default build has %d sites, want %d", p.Name, len(g.Sites), p.DefaultSites)
		}
		// Every site must be large enough to host at least a small
		// slice envelope — sub-envelope sites would host nothing.
		for _, s := range g.Sites {
			if s.Cells < 1 {
				t.Fatalf("%s: site %s has %v cells (< 1 hosts no envelope)", p.Name, s.ID, s.Cells)
			}
		}
		scaled, err := p.Build(6)
		if err != nil {
			t.Fatalf("%s: build(6): %v", p.Name, err)
		}
		if len(scaled.Sites) != 6 {
			t.Fatalf("%s: build(6) has %d sites", p.Name, len(scaled.Sites))
		}
	}
	// The uniform grid honors exact site counts, including
	// non-rectangular ones (a partial last row, not a rounded-up
	// rectangle that would inflate the total capacity).
	p, _ := GetTopology("uniform-grid")
	for _, n := range []int{5, 7, 9} {
		g, err := p.Build(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Sites) != n || g.TotalCells() != float64(n) {
			t.Fatalf("grid(%d) has %d sites, %v cells", n, len(g.Sites), g.TotalCells())
		}
	}
}
