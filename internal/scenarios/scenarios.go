// Package scenarios is the catalog of named multi-tenant workloads: each
// scenario expands to a heterogeneous set of core.SliceSpec templates
// built from the service-class presets below. The paper evaluates one
// service (540p video analytics under a latency-availability SLA); this
// registry treats that as just one template among eMBB-, URLLC- and
// mMTC-style classes, so every scaling and learning experiment can be
// exercised against mixed fleets instead of N clones of the same slice.
package scenarios

import (
	"fmt"
	"sort"

	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/fleet"
	"github.com/atlas-slicing/atlas/internal/simnet/app"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/topology"
)

// VideoAnalytics is the paper's prototype service: 540p frame upload
// with edge feature extraction, judged by latency availability.
func VideoAnalytics() slicing.ServiceClass {
	return slicing.DefaultServiceClass()
}

// Teleoperation is a URLLC-style class: small command/sensor frames,
// light compute, and a hard tail-latency deadline — the p95 frame
// latency must stay within 150 ms.
func Teleoperation() slicing.ServiceClass {
	return slicing.ServiceClass{
		Name: "teleop",
		App: app.Profile{
			FrameKBitMean: 12, FrameKBitStd: 3,
			ResultKBit:    4,
			LoadingBaseMs: 2,
			ComputeScale:  0.08,
		},
		QoE:          slicing.PercentileDeadlineQoE{Percentile: 0.95, DeadlineMs: 150},
		SLA:          slicing.SLA{ThresholdMs: 150, Availability: 0.95},
		Traffic:      1,
		TrafficModel: slicing.ConstantTraffic{},
	}
}

// IoTTelemetry is an mMTC-style class: small sensor reports arriving in
// Poisson bursts, judged by a relaxed latency availability.
func IoTTelemetry() slicing.ServiceClass {
	return slicing.ServiceClass{
		Name: "iot-telemetry",
		App: app.Profile{
			FrameKBitMean: 40, FrameKBitStd: 12,
			ResultKBit:    2,
			LoadingBaseMs: 5,
			ComputeScale:  0.15,
		},
		QoE:          slicing.AvailabilityQoE{ThresholdMs: 500},
		SLA:          slicing.SLA{ThresholdMs: 500, Availability: 0.85},
		Traffic:      2,
		TrafficModel: slicing.BurstyTraffic{},
	}
}

// BulkStreaming is an eMBB-style class: large frames whose QoE is the
// delivered uplink goodput against a contracted floor, with a diurnal
// demand swing.
func BulkStreaming() slicing.ServiceClass {
	return slicing.ServiceClass{
		Name: "embb-streaming",
		App: app.Profile{
			FrameKBitMean: 800, FrameKBitStd: 200,
			ResultKBit:    8,
			LoadingBaseMs: 10,
			ComputeScale:  0.05,
		},
		QoE:          slicing.ThroughputFloorQoE{FloorMbps: 6},
		SLA:          slicing.SLA{ThresholdMs: 800, Availability: 0.9},
		Traffic:      3,
		TrafficModel: slicing.DiurnalTraffic{PeriodIntervals: 24, MinFactor: 0.3},
	}
}

// DiurnalVideoAnalytics is the prototype service under a day-night
// demand swing (the mixed fleet's time-varying tenant).
func DiurnalVideoAnalytics() slicing.ServiceClass {
	c := VideoAnalytics()
	c.Traffic = 2
	c.TrafficModel = slicing.DiurnalTraffic{PeriodIntervals: 24, MinFactor: 0.25}
	return c
}

// Scenario is one named multi-tenant workload: slices cycle over its
// class templates.
type Scenario struct {
	Name        string
	Description string
	Classes     []slicing.ServiceClass
}

// Specs expands the scenario to n slice specs, cycling over the class
// templates. SLA and nominal traffic come from each class; Train is
// left unset for the caller to decide.
func (s Scenario) Specs(n int) []core.SliceSpec {
	specs := make([]core.SliceSpec, n)
	for i := range specs {
		class := s.Classes[i%len(s.Classes)]
		specs[i] = core.SliceSpec{
			ID:      fmt.Sprintf("%s-%02d", class.Name, i),
			SLA:     class.SLA,
			Traffic: class.Traffic,
			Class:   &class,
		}
	}
	return specs
}

// registry holds the named scenarios in catalog order.
var registry = []Scenario{
	{
		Name:        "paper",
		Description: "the paper's evaluation: homogeneous 540p video analytics, constant traffic",
		Classes:     []slicing.ServiceClass{VideoAnalytics()},
	},
	{
		Name:        "mixed",
		Description: "heterogeneous fleet: diurnal video analytics, URLLC teleoperation, bursty IoT telemetry, eMBB streaming",
		Classes: []slicing.ServiceClass{
			DiurnalVideoAnalytics(),
			Teleoperation(),
			IoTTelemetry(),
			BulkStreaming(),
		},
	},
	{
		Name:        "urllc",
		Description: "teleoperation-only fleet under a p95 deadline QoE",
		Classes:     []slicing.ServiceClass{Teleoperation()},
	},
	{
		Name:        "iot",
		Description: "telemetry-only fleet with Poisson burst traffic",
		Classes:     []slicing.ServiceClass{IoTTelemetry()},
	},
	{
		Name:        "embb",
		Description: "bulk-streaming fleet judged by a throughput floor with diurnal demand",
		Classes:     []slicing.ServiceClass{BulkStreaming()},
	},
}

// Get returns a registered scenario by name.
func Get(name string) (Scenario, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	sort.Strings(out)
	return out
}

// All returns every registered scenario in catalog order.
func All() []Scenario {
	return append([]Scenario(nil), registry...)
}

// FleetScenario is one named dynamic-arrival workload for the fleet
// control plane: per-class arrival processes, lifetimes, and values
// over a suggested finite capacity and horizon. Static scenarios above
// answer "configure these N slices"; fleet scenarios answer "tenants
// of these populations keep arriving and departing — decide who runs".
type FleetScenario struct {
	Name        string
	Description string
	Classes     []fleet.ArrivalClass
	// Capacity is the scenario's default infrastructure; Horizon its
	// default epoch count. Both can be overridden by the caller.
	Capacity slicing.Capacity
	Horizon  int
}

// fleetRegistry holds the named dynamic scenarios in catalog order.
var fleetRegistry = []FleetScenario{
	{
		Name:        "churn",
		Description: "steady Poisson arrivals/departures of all four classes over 1.5 cells — the baseline admission-control workload",
		Classes: []fleet.ArrivalClass{
			{Class: VideoAnalytics(), Rate: 0.08, MeanLifetime: 25, Value: 2, Elastic: true},
			{Class: Teleoperation(), Rate: 0.10, MeanLifetime: 20, Value: 5},
			{Class: IoTTelemetry(), Rate: 0.12, MeanLifetime: 30, Value: 1, Elastic: true},
			{Class: BulkStreaming(), Rate: 0.06, MeanLifetime: 35, Value: 1.5, Elastic: true},
		},
		Capacity: slicing.CellCapacity(1.5),
		Horizon:  200,
	},
	{
		Name:        "flashcrowd",
		Description: "background IoT/video churn plus a mid-run teleoperation surge — premium demand spikes against a warm fleet",
		Classes: []fleet.ArrivalClass{
			{Class: VideoAnalytics(), Rate: 0.07, MeanLifetime: 30, Value: 2, Elastic: true},
			{Class: IoTTelemetry(), Rate: 0.10, MeanLifetime: 40, Value: 1, Elastic: true},
			{Class: Teleoperation(), Rate: 0.02, Surge: fleet.SurgeWindow{Start: 80, Len: 40, Rate: 0.35}, MeanLifetime: 15, Value: 5},
		},
		Capacity: slicing.CellCapacity(1.25),
		Horizon:  200,
	},
	{
		Name:        "diurnal-fleet",
		Description: "deterministic arrivals of diurnal-demand classes — time-varying load inside slices while the fleet itself churns",
		Classes: []fleet.ArrivalClass{
			{Class: DiurnalVideoAnalytics(), Every: 12, MeanLifetime: 40, Value: 2, Elastic: true},
			{Class: BulkStreaming(), Every: 18, Phase: 6, MeanLifetime: 45, Value: 1.5, Elastic: true},
			{Class: Teleoperation(), Every: 15, Phase: 3, MeanLifetime: 25, Value: 5},
		},
		Capacity: slicing.CellCapacity(1.25),
		Horizon:  200,
	},
}

// GetFleet returns a registered dynamic scenario by name.
func GetFleet(name string) (FleetScenario, bool) {
	for _, s := range fleetRegistry {
		if s.Name == name {
			return s, true
		}
	}
	return FleetScenario{}, false
}

// FleetNames returns the registered dynamic scenario names, sorted.
func FleetNames() []string {
	out := make([]string, len(fleetRegistry))
	for i, s := range fleetRegistry {
		out[i] = s.Name
	}
	sort.Strings(out)
	return out
}

// AllFleet returns every registered dynamic scenario in catalog order.
func AllFleet() []FleetScenario {
	return append([]FleetScenario(nil), fleetRegistry...)
}

// TopologyPreset is one named site-graph of the topology catalog: a
// deterministic builder parameterized only by the site count, so
// `-sites N` scales a preset without changing its shape. Fleet
// scenarios above answer "who arrives"; topology presets answer "what
// infrastructure they land on".
type TopologyPreset struct {
	Name        string
	Description string
	// DefaultSites is the site count Build uses when given 0.
	DefaultSites int
	// build constructs the graph with the given site count (>= 1; the
	// DefaultSites fallback lives in Build so the catalog states each
	// default exactly once).
	build func(sites int) (*topology.Graph, error)
}

// Build constructs the preset's graph with the given site count (<= 0
// uses DefaultSites).
func (p TopologyPreset) Build(sites int) (*topology.Graph, error) {
	if sites <= 0 {
		sites = p.DefaultSites
	}
	return p.build(sites)
}

// topologyRegistry holds the named site graphs in catalog order. Sites
// are sized in whole prototype cells: a slice envelope is a sizable
// fraction of one cell, so sub-cell sites could host nothing.
var topologyRegistry = []TopologyPreset{
	{
		Name:         "hotspot-cell",
		Description:  "star of one 2-cell hot site and n-1 single-cell edge sites — packing policies pile onto the hot cell while homes spread uniformly",
		DefaultSites: 5,
		build: func(sites int) (*topology.Graph, error) {
			return topology.Hotspot("hotspot-cell", sites, 2, 1)
		},
	},
	{
		Name:         "uniform-grid",
		Description:  "near-square lattice of single-cell sites with 4-neighbor transport links — the homogeneous dense-urban layout",
		DefaultSites: 4,
		build: func(sites int) (*topology.Graph, error) {
			return topology.GridN("uniform-grid", sites, 1)
		},
	},
	{
		Name:         "edge-constrained",
		Description:  "ring of single-cell sites with the shared edge-compute tier at 45% — RAN is ample, the regional compute is the bottleneck",
		DefaultSites: 4,
		build: func(sites int) (*topology.Graph, error) {
			return topology.Ring("edge-constrained", sites, 1, 0.45)
		},
	},
}

// GetTopology returns a registered topology preset by name.
func GetTopology(name string) (TopologyPreset, bool) {
	for _, p := range topologyRegistry {
		if p.Name == name {
			return p, true
		}
	}
	return TopologyPreset{}, false
}

// TopologyNames returns the registered topology preset names, sorted.
func TopologyNames() []string {
	out := make([]string, len(topologyRegistry))
	for i, p := range topologyRegistry {
		out[i] = p.Name
	}
	sort.Strings(out)
	return out
}

// AllTopologies returns every registered preset in catalog order.
func AllTopologies() []TopologyPreset {
	return append([]TopologyPreset(nil), topologyRegistry...)
}

// Classes returns the distinct service classes across all scenarios, in
// first-appearance order (the per-class benchmark set).
func Classes() []slicing.ServiceClass {
	var out []slicing.ServiceClass
	seen := map[string]bool{}
	for _, s := range registry {
		for _, c := range s.Classes {
			if !seen[c.Name] {
				seen[c.Name] = true
				out = append(out, c)
			}
		}
	}
	return out
}
