package simnet

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// FrameRecord is the per-frame detail the paper's simulator exposes via
// the NS-3 tracer (§7.2: "reading the tracer including not only
// end-to-end latency of every frame, but also transmission and computing
// details, e.g., queuing time, computing time, and uplink and downlink
// transmission time"). All fields are milliseconds except SizeKBit.
type FrameRecord struct {
	GenMs      float64 // generation time (episode clock)
	SizeKBit   float64
	LoadingMs  float64
	ULMs       float64 // uplink wait + transmission
	BackhaulMs float64 // serialization + propagation + core processing
	QueueMs    float64 // edge queue wait
	ComputeMs  float64
	DLMs       float64 // downlink wait + transmission
	LatencyMs  float64 // end-to-end
}

// WriteFrameCSV writes records as CSV with a header row, the same layout
// the paper's plot scripts consume from the tracer output.
func WriteFrameCSV(w io.Writer, records []FrameRecord) error {
	cw := csv.NewWriter(w)
	header := []string{"gen_ms", "size_kbit", "loading_ms", "ul_ms", "backhaul_ms", "queue_ms", "compute_ms", "dl_ms", "latency_ms"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range records {
		row := []string{
			fmt.Sprintf("%.3f", r.GenMs),
			fmt.Sprintf("%.1f", r.SizeKBit),
			fmt.Sprintf("%.3f", r.LoadingMs),
			fmt.Sprintf("%.3f", r.ULMs),
			fmt.Sprintf("%.3f", r.BackhaulMs),
			fmt.Sprintf("%.3f", r.QueueMs),
			fmt.Sprintf("%.3f", r.ComputeMs),
			fmt.Sprintf("%.3f", r.DLMs),
			fmt.Sprintf("%.3f", r.LatencyMs),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SortRecordsByLatency orders records ascending by end-to-end latency
// (useful for CDF export).
func SortRecordsByLatency(records []FrameRecord) {
	sort.Slice(records, func(i, j int) bool { return records[i].LatencyMs < records[j].LatencyMs })
}
