package simnet

import (
	"testing"

	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/stats"
)

func fullConfig() slicing.Config {
	return slicing.Config{BandwidthUL: 50, BandwidthDL: 50, BackhaulMbps: 100, CPURatio: 1}
}

func TestEpisodeDeterministic(t *testing.T) {
	s := NewDefault()
	a := s.Episode(fullConfig(), 2, 42)
	b := s.Episode(fullConfig(), 2, 42)
	if a.Frames != b.Frames || len(a.LatenciesMs) != len(b.LatenciesMs) {
		t.Fatal("episode not deterministic")
	}
	for i := range a.LatenciesMs {
		if a.LatenciesMs[i] != b.LatenciesMs[i] {
			t.Fatalf("latency %d diverged", i)
		}
	}
	c := s.Episode(fullConfig(), 2, 43)
	if len(c.LatenciesMs) == len(a.LatenciesMs) && c.LatenciesMs[0] == a.LatenciesMs[0] {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestEpisodeProducesFrames(t *testing.T) {
	s := NewDefault()
	tr := s.Episode(fullConfig(), 1, 1)
	if tr.Frames < 100 {
		t.Fatalf("only %d frames in 60s", tr.Frames)
	}
	for _, lat := range tr.LatenciesMs {
		if lat <= 0 || lat > 60000 {
			t.Fatalf("implausible latency %v", lat)
		}
	}
}

func TestLatencyGrowsWithTraffic(t *testing.T) {
	s := NewDefault()
	prev := 0.0
	for traffic := 1; traffic <= 4; traffic++ {
		tr := s.Episode(fullConfig(), traffic, 7)
		m := stats.Summarize(tr.LatenciesMs).Mean
		if m <= prev {
			t.Fatalf("latency not increasing at traffic %d: %v <= %v", traffic, m, prev)
		}
		prev = m
	}
}

func TestMoreResourcesLowerLatency(t *testing.T) {
	s := NewDefault()
	scarce := slicing.Config{BandwidthUL: 8, BandwidthDL: 5, BackhaulMbps: 5, CPURatio: 0.4}
	rich := fullConfig()
	mScarce := stats.Summarize(s.Episode(scarce, 1, 9).LatenciesMs).Mean
	mRich := stats.Summarize(s.Episode(rich, 1, 9).LatenciesMs).Mean
	if mRich >= mScarce {
		t.Fatalf("more resources should cut latency: rich %v vs scarce %v", mRich, mScarce)
	}
}

func TestThroughputBudget(t *testing.T) {
	s := NewDefault()
	m := s.Measure(fullConfig(), 3)
	// Table 1 anchors: ~19.9 UL, ~32.4 DL on the real testbed spec.
	if m.ULThroughputMbps < 17 || m.ULThroughputMbps > 22 {
		t.Fatalf("UL throughput %v outside LTE 10MHz budget", m.ULThroughputMbps)
	}
	if m.DLThroughputMbps < 29 || m.DLThroughputMbps > 36 {
		t.Fatalf("DL throughput %v outside LTE 10MHz budget", m.DLThroughputMbps)
	}
	if m.PingMs < 15 || m.PingMs > 50 {
		t.Fatalf("ping %v implausible", m.PingMs)
	}
	if m.ULPER <= 0 || m.ULPER > 0.05 || m.DLPER <= 0 || m.DLPER > 0.05 {
		t.Fatalf("PER out of range: UL %v DL %v", m.ULPER, m.DLPER)
	}
}

func TestHalfPRBsRoughlyHalveThroughput(t *testing.T) {
	s := NewDefault()
	full := s.Measure(fullConfig(), 5)
	half := fullConfig()
	half.BandwidthUL = 25
	hm := s.Measure(half, 5)
	ratio := hm.ULThroughputMbps / full.ULThroughputMbps
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("UL throughput ratio %v, want ~0.5", ratio)
	}
}

func TestConnectivityFloorApplies(t *testing.T) {
	s := NewDefault()
	zero := slicing.Config{BackhaulMbps: 50, CPURatio: 1}
	tr := s.Episode(zero, 1, 11)
	// With the 6/3 PRB floor the slice still completes frames.
	if tr.Frames == 0 {
		t.Fatal("connectivity floor failed to keep the slice alive")
	}
}

func TestQoEMonotoneInThreshold(t *testing.T) {
	s := NewDefault()
	tr := s.Episode(fullConfig(), 2, 13)
	prev := -1.0
	for _, y := range []float64{100, 200, 300, 500, 1000} {
		q := tr.QoE(slicing.SLA{ThresholdMs: y, Availability: 0.9})
		if q < prev {
			t.Fatalf("QoE not monotone in Y at %v", y)
		}
		prev = q
	}
}

func TestComponentBreakdownConsistent(t *testing.T) {
	s := NewDefault()
	tr := s.Episode(fullConfig(), 1, 17)
	parts := tr.MeanLoadingMs + tr.MeanULMs + tr.MeanBackhaulMs +
		tr.MeanQueueMs + tr.MeanComputeMs + tr.MeanDLMs
	mean := stats.Summarize(tr.LatenciesMs).Mean
	// The breakdown must explain most of the latency (return-path
	// propagation is the only piece not itemized).
	if parts < 0.8*mean || parts > 1.1*mean {
		t.Fatalf("breakdown %v vs mean %v", parts, mean)
	}
}

func TestMCSOffsetCostsLatency(t *testing.T) {
	s := NewDefault()
	plain := slicing.Config{BandwidthUL: 10, BandwidthDL: 5, BackhaulMbps: 20, CPURatio: 0.8}
	backoff := plain
	backoff.MCSOffsetUL = 6
	mp := stats.Summarize(s.Episode(plain, 1, 19).LatenciesMs).Mean
	mb := stats.Summarize(s.Episode(backoff, 1, 19).LatenciesMs).Mean
	if mb <= mp {
		t.Fatalf("MCS backoff should slow the clean channel: %v vs %v", mb, mp)
	}
}

func TestWithParamsDoesNotMutate(t *testing.T) {
	s := NewDefault()
	p := s.Params
	mod := slicing.SimParams{BaselineLoss: 45, LoadingTime: 10}
	s2 := s.WithParams(mod)
	if s.Params != p {
		t.Fatal("WithParams mutated the receiver")
	}
	if s2.Params != mod {
		t.Fatal("WithParams did not apply")
	}
}

func TestLoadingTimeParameterShiftsLatency(t *testing.T) {
	base := NewDefault()
	shifted := base.WithParams(slicing.SimParams{
		BaselineLoss: 38.57, ENBNoiseFig: 5, UENoiseFig: 9, LoadingTime: 30,
	})
	mb := stats.Summarize(base.Episode(fullConfig(), 1, 23).LatenciesMs).Mean
	ms := stats.Summarize(shifted.Episode(fullConfig(), 1, 23).LatenciesMs).Mean
	if d := ms - mb; d < 20 || d > 40 {
		t.Fatalf("loading_time=30 shifted mean by %v, want ~30", d)
	}
}

func TestBackhaulDelayParameterShiftsLatency(t *testing.T) {
	base := NewDefault()
	shifted := base.WithParams(slicing.SimParams{
		BaselineLoss: 38.57, ENBNoiseFig: 5, UENoiseFig: 9, BackhaulDelay: 20,
	})
	mb := stats.Summarize(base.Episode(fullConfig(), 1, 29).LatenciesMs).Mean
	ms := stats.Summarize(shifted.Episode(fullConfig(), 1, 29).LatenciesMs).Mean
	// The delay applies on both directions of the backhaul.
	if d := ms - mb; d < 30 || d > 50 {
		t.Fatalf("backhaul_delay=20 shifted mean by %v, want ~40", d)
	}
}
