// Package des implements a small discrete-event simulation kernel: a
// time-ordered event heap with deterministic tie-breaking, plus a FIFO
// single-server station primitive used to model network elements
// (radio links, backhaul, edge servers) as tandem queues.
package des

import "container/heap"

// event is a scheduled callback.
type event struct {
	time float64 // simulation time, milliseconds
	seq  uint64  // insertion order, breaks ties deterministically
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Kernel is a discrete-event simulation clock and scheduler. The zero
// value is ready to use with the clock at time 0. Times are in
// milliseconds by convention throughout Atlas.
type Kernel struct {
	heap eventHeap
	now  float64
	seq  uint64
}

// Now returns the current simulation time in milliseconds.
func (k *Kernel) Now() float64 { return k.now }

// Schedule runs fn after the given delay (clamped to be non-negative).
func (k *Kernel) Schedule(delayMs float64, fn func()) {
	if delayMs < 0 {
		delayMs = 0
	}
	k.ScheduleAt(k.now+delayMs, fn)
}

// ScheduleAt runs fn at absolute time t (clamped to not precede the
// current clock).
func (k *Kernel) ScheduleAt(t float64, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.heap.pushEvent(event{time: t, seq: k.seq, fn: fn})
	k.seq++
}

// Step executes the earliest pending event, advancing the clock. It
// returns false when no events remain.
func (k *Kernel) Step() bool {
	if len(k.heap) == 0 {
		return false
	}
	e := k.heap.popEvent()
	k.now = e.time
	e.fn()
	return true
}

// Run executes events until the clock passes untilMs or no events
// remain. Events scheduled exactly at untilMs still run; later ones are
// left pending.
func (k *Kernel) Run(untilMs float64) {
	for len(k.heap) > 0 && k.heap.peek().time <= untilMs {
		k.Step()
	}
	if k.now < untilMs {
		k.now = untilMs
	}
}

// Pending returns the number of scheduled events.
func (k *Kernel) Pending() int { return len(k.heap) }
