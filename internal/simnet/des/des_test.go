package des

import (
	"testing"
)

func TestKernelOrdering(t *testing.T) {
	k := &Kernel{}
	var order []int
	k.Schedule(30, func() { order = append(order, 3) })
	k.Schedule(10, func() { order = append(order, 1) })
	k.Schedule(20, func() { order = append(order, 2) })
	k.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if k.Now() != 100 {
		t.Fatalf("clock = %v, want advanced to horizon", k.Now())
	}
}

func TestKernelTieBreakFIFO(t *testing.T) {
	k := &Kernel{}
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.Schedule(10, func() { order = append(order, i) })
	}
	k.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestKernelHorizonCutoff(t *testing.T) {
	k := &Kernel{}
	ran := false
	k.Schedule(50, func() { ran = true })
	k.Run(49)
	if ran {
		t.Fatal("event past horizon ran")
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d", k.Pending())
	}
	k.Run(50)
	if !ran {
		t.Fatal("event at horizon must run")
	}
}

func TestKernelNegativeDelayClamped(t *testing.T) {
	k := &Kernel{}
	k.Schedule(10, func() {
		k.Schedule(-5, func() {
			if k.Now() != 10 {
				t.Errorf("negative delay ran at %v", k.Now())
			}
		})
	})
	k.Run(100)
}

func TestKernelNestedScheduling(t *testing.T) {
	k := &Kernel{}
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 10 {
			k.Schedule(1, rec)
		}
	}
	k.Schedule(0, rec)
	k.Run(100)
	if depth != 10 {
		t.Fatalf("depth = %d", depth)
	}
	if k.Now() != 100 {
		t.Fatalf("now = %v", k.Now())
	}
}

func TestStationFIFO(t *testing.T) {
	k := &Kernel{}
	st := NewStation(k)
	var done []int
	for i := 0; i < 3; i++ {
		i := i
		st.Enqueue(func() float64 { return 10 }, func(wait, svc float64) {
			done = append(done, i)
			wantWait := float64(i * 10)
			if wait != wantWait {
				t.Errorf("job %d wait = %v want %v", i, wait, wantWait)
			}
			if svc != 10 {
				t.Errorf("job %d service = %v", i, svc)
			}
		})
	}
	k.Run(1000)
	if len(done) != 3 || done[0] != 0 || done[2] != 2 {
		t.Fatalf("completion order = %v", done)
	}
	if st.Served != 3 {
		t.Fatalf("served = %d", st.Served)
	}
	if st.BusyMs != 30 {
		t.Fatalf("busy = %v", st.BusyMs)
	}
}

func TestStationServiceTimeEvaluatedAtStart(t *testing.T) {
	k := &Kernel{}
	st := NewStation(k)
	var evalTimes []float64
	for i := 0; i < 2; i++ {
		st.Enqueue(func() float64 {
			evalTimes = append(evalTimes, k.Now())
			return 5
		}, nil)
	}
	k.Run(100)
	if len(evalTimes) != 2 || evalTimes[0] != 0 || evalTimes[1] != 5 {
		t.Fatalf("service evaluated at %v, want [0 5]", evalTimes)
	}
}

func TestStationIdleRestart(t *testing.T) {
	k := &Kernel{}
	st := NewStation(k)
	finished := 0
	st.Enqueue(func() float64 { return 1 }, func(_, _ float64) { finished++ })
	k.Run(10)
	// The station drained; a later arrival must restart service.
	k.Schedule(5, func() {
		st.Enqueue(func() float64 { return 1 }, func(wait, _ float64) {
			finished++
			if wait != 0 {
				t.Errorf("second job waited %v on idle station", wait)
			}
		})
	})
	k.Run(30)
	if finished != 2 {
		t.Fatalf("finished = %d", finished)
	}
	if st.Busy() {
		t.Fatal("station should be idle")
	}
	if st.QueueLen() != 0 {
		t.Fatal("queue should be empty")
	}
}

func TestStationNegativeServiceClamped(t *testing.T) {
	k := &Kernel{}
	st := NewStation(k)
	st.Enqueue(func() float64 { return -3 }, func(_, svc float64) {
		if svc < 0 {
			t.Errorf("negative service %v", svc)
		}
	})
	k.Run(10)
}
