package des

// Station is a FIFO single-server queue attached to a Kernel. Jobs are
// served one at a time; the per-job service time is supplied by the
// caller when the job is enqueued, and is evaluated when service
// *starts* (so time-varying channels are sampled at transmission time,
// not arrival time).
//
// Stations model the serialization points of the slice data path: the
// uplink radio, the backhaul link, the edge server, and the downlink
// radio.
type Station struct {
	k     *Kernel
	busy  bool
	queue []stationJob

	// BusyMs accumulates total service time, for utilization metrics.
	BusyMs float64
	// Served counts completed jobs.
	Served int
}

type stationJob struct {
	arrive  float64
	service func() float64
	done    func(waitMs, serviceMs float64)
}

// NewStation returns an idle station bound to k.
func NewStation(k *Kernel) *Station {
	return &Station{k: k}
}

// Enqueue adds a job. service is called once, when the server picks the
// job up, and must return the service duration in milliseconds. done is
// called at completion with the queueing wait and the service time.
func (s *Station) Enqueue(service func() float64, done func(waitMs, serviceMs float64)) {
	s.queue = append(s.queue, stationJob{arrive: s.k.Now(), service: service, done: done})
	if !s.busy {
		s.startNext()
	}
}

func (s *Station) startNext() {
	if len(s.queue) == 0 {
		s.busy = false
		return
	}
	s.busy = true
	job := s.queue[0]
	s.queue = s.queue[1:]
	wait := s.k.Now() - job.arrive
	dur := job.service()
	if dur < 0 {
		dur = 0
	}
	s.BusyMs += dur
	s.k.Schedule(dur, func() {
		s.Served++
		if job.done != nil {
			job.done(wait, dur)
		}
		s.startNext()
	})
}

// QueueLen returns the number of jobs waiting (excluding the one in
// service).
func (s *Station) QueueLen() int { return len(s.queue) }

// Busy reports whether a job is currently in service.
func (s *Station) Busy() bool { return s.busy }
