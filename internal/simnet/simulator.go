package simnet

import (
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/simnet/app"
	"github.com/atlas-slicing/atlas/internal/simnet/des"
	"github.com/atlas-slicing/atlas/internal/simnet/edge"
	"github.com/atlas-slicing/atlas/internal/simnet/radio"
	"github.com/atlas-slicing/atlas/internal/simnet/transport"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/store"
)

// Simulator is a network environment: a structural Profile plus the
// searchable simulation parameters. It implements slicing.Env.
//
// Two configurations of the same engine cover both sides of the
// sim-to-real divide:
//
//   - simulator: CleanProfile() + whatever parameters stage 1 is testing;
//   - real network: a hidden structural profile + hidden ground-truth
//     parameters (see package realnet).
type Simulator struct {
	Profile Profile
	Params  slicing.SimParams
}

// New returns a simulator with the clean profile and the given
// parameters.
func New(params slicing.SimParams) *Simulator {
	return &Simulator{Profile: CleanProfile(), Params: params}
}

// NewDefault returns the uncalibrated simulator (original Table 3
// parameters).
func NewDefault() *Simulator { return New(slicing.DefaultSimParams()) }

// WithParams returns a copy of s using the given parameters.
func (s *Simulator) WithParams(params slicing.SimParams) *Simulator {
	return &Simulator{Profile: s.Profile, Params: params}
}

// EnvFingerprint identifies this simulator for artifact-store keys: a
// content hash of the structural profile and the (calibrated)
// simulation parameters. Policies trained in differently-calibrated
// simulators therefore never share an artifact.
func (s *Simulator) EnvFingerprint() string {
	return store.Fingerprint(struct {
		Kind    string            `json:"kind"`
		Profile Profile           `json:"profile"`
		Params  slicing.SimParams `json:"params"`
	}{"simnet", s.Profile, s.Params})
}

// frame carries per-frame bookkeeping through the pipeline closures.
type frame struct {
	genMs     float64
	loadingMs float64
	ulMs      float64
	bhMs      float64
	queueMs   float64
	computeMs float64
	dlMs      float64
	sizeKBit  float64
}

// Episode runs one configuration interval: `traffic` concurrent
// on-the-fly frames flowing UE → RAN → backhaul → edge → backhaul → RAN
// for Profile.EpisodeMs simulated milliseconds. It returns the per-frame
// latency trace with component breakdowns and residual PER.
func (s *Simulator) Episode(cfg slicing.Config, traffic int, seed int64) slicing.Trace {
	tr, _ := s.run(cfg, traffic, seed, false)
	return tr
}

// EpisodeClass runs one configuration interval under a service class's
// application workload (frame sizes, result sizes, loading behavior,
// compute demand) instead of the structural profile's prototype app.
// Classes without their own app profile fall back to the prototype.
// It implements slicing.ClassEnv.
func (s *Simulator) EpisodeClass(class slicing.ServiceClass, cfg slicing.Config, traffic int, seed int64) slicing.Trace {
	tr, _ := s.runWith(s.classAppProfile(class), cfg, traffic, seed, false)
	return tr
}

// EpisodeRecords runs an episode and additionally returns every frame's
// tracer record (the NS-3 tracer analogue, §7.2), ordered by completion.
func (s *Simulator) EpisodeRecords(cfg slicing.Config, traffic int, seed int64) (slicing.Trace, []FrameRecord) {
	return s.run(cfg, traffic, seed, true)
}

// baseAppProfile assembles the structural profile's prototype
// application plus the searchable loading-time parameter.
func (s *Simulator) baseAppProfile() app.Profile {
	p := s.Profile
	return app.Profile{
		FrameKBitMean: p.FrameKBitMean, FrameKBitStd: p.FrameKBitStd,
		ResultKBit:    p.ResultKBit,
		LoadingBaseMs: p.LoadingBaseMs, LoadingExtraMs: s.Params.LoadingTime,
		LoadingJitterMs: p.LoadingJitterMs,
	}
}

// classAppProfile merges a service class's workload with the
// environment's structural reality: the class dictates what the
// application sends and computes, while the profile's loading jitter and
// the searchable loading-time parameter still apply on top (they model
// the platform, not the workload).
func (s *Simulator) classAppProfile(class slicing.ServiceClass) app.Profile {
	if !class.HasApp() {
		return s.baseAppProfile()
	}
	ap := class.App
	ap.LoadingExtraMs += s.Params.LoadingTime
	ap.LoadingJitterMs += s.Profile.LoadingJitterMs
	return ap
}

func (s *Simulator) run(cfg slicing.Config, traffic int, seed int64, collect bool) (slicing.Trace, []FrameRecord) {
	return s.runWith(s.baseAppProfile(), cfg, traffic, seed, collect)
}

func (s *Simulator) runWith(appProf app.Profile, cfg slicing.Config, traffic int, seed int64, collect bool) (slicing.Trace, []FrameRecord) {
	if traffic < 1 {
		traffic = 1
	}
	cfg = slicing.DefaultConfigSpace().Clamp(cfg)
	cfg = slicing.ApplyConnectivityFloor(cfg)

	rngs := mathx.Split(seed, 5)
	chanRNG, appRNG, ulRNG, dlRNG, edgeRNG := rngs[0], rngs[1], rngs[2], rngs[3], rngs[4]

	p := s.Profile
	horizon := p.EpisodeMs
	model := p.channelModel(s.Params.BaselineLoss, s.Params.ENBNoiseFig, s.Params.UENoiseFig)
	channel := radio.NewChannelState(model, horizon, chanRNG)

	ul := &radio.Link{
		Dir: radio.Uplink, PRBs: cfg.BandwidthUL, MCSOffset: cfg.MCSOffsetUL,
		AccessDelayMs: p.AccessULMs, AccessJitterMs: p.ULAccessJitterMs,
		Efficiency: p.ULEfficiency,
		BasePER:    p.BasePERUL, Channel: channel,
	}
	dl := &radio.Link{
		Dir: radio.Downlink, PRBs: cfg.BandwidthDL, MCSOffset: cfg.MCSOffsetDL,
		AccessDelayMs: p.AccessDLMs, Efficiency: p.DLEfficiency,
		BasePER: p.BasePERDL, Channel: channel,
	}
	bh := transport.Link{
		BandwidthMbps: cfg.BackhaulMbps,
		HeadroomMbps:  s.Params.BackhaulBW + p.BackhaulHeadroom,
		PortCapMbps:   p.PortCapMbps,
		DelayMs:       p.BackhaulDelayMs + s.Params.BackhaulDelay,
	}
	computeScale := appProf.ComputeScale
	if computeScale <= 0 {
		computeScale = 1
	}
	server := edge.Server{
		BaseMeanMs: computeScale * p.ComputeMeanMs, BaseStdMs: computeScale * p.ComputeStdMs,
		CPURatio:    cfg.CPURatio,
		ExtraMs:     s.Params.ComputeTime + p.ComputeExtraMs,
		JitterSigma: p.ComputeJitterSigma,
		StallProb:   p.ComputeStallProb, StallFactor: p.ComputeStallFactor,
	}

	k := &des.Kernel{}
	ulSt := des.NewStation(k)
	bhSt := des.NewStation(k)
	edgeSt := des.NewStation(k)
	dlSt := des.NewStation(k)

	var (
		tr                                       slicing.Trace
		ulTBs                                    int
		ulErrs                                   int
		dlTBs                                    int
		dlErrs                                   int
		sumLoad, sumUL, sumBH, sumQ, sumC, sumDL float64
		sumKBit                                  float64
	)

	var records []FrameRecord
	var launch func()
	finish := func(f *frame) {
		if k.Now() <= horizon {
			tr.LatenciesMs = append(tr.LatenciesMs, k.Now()-f.genMs)
			tr.Frames++
			sumLoad += f.loadingMs
			sumUL += f.ulMs
			sumBH += f.bhMs
			sumQ += f.queueMs
			sumC += f.computeMs
			sumDL += f.dlMs
			sumKBit += f.sizeKBit
			if collect {
				records = append(records, FrameRecord{
					GenMs:      f.genMs,
					SizeKBit:   f.sizeKBit,
					LoadingMs:  f.loadingMs,
					ULMs:       f.ulMs,
					BackhaulMs: f.bhMs,
					QueueMs:    f.queueMs,
					ComputeMs:  f.computeMs,
					DLMs:       f.dlMs,
					LatencyMs:  k.Now() - f.genMs,
				})
			}
		}
		launch() // closed loop: the window slot is free again
	}

	launch = func() {
		if k.Now() > horizon {
			return
		}
		f := &frame{genMs: k.Now(), sizeKBit: appProf.FrameKBits(appRNG)}
		f.loadingMs = appProf.LoadingMs(appRNG)
		k.Schedule(f.loadingMs, func() {
			// Uplink radio transmission.
			ulSt.Enqueue(func() float64 {
				res := ul.Transmit(k.Now(), f.sizeKBit, ulRNG)
				ulTBs += res.TBs
				ulErrs += res.Errors
				return res.DurationMs
			}, func(wait, svc float64) {
				f.ulMs = wait + svc
				// Backhaul serialization, then propagation + core
				// processing as pure delay.
				bhSt.Enqueue(func() float64 {
					return bh.SerializationMs(f.sizeKBit)
				}, func(wait, svc float64) {
					f.bhMs = wait + svc + bh.DelayMs + p.CoreProcMs
					k.Schedule(bh.DelayMs+p.CoreProcMs, func() {
						// Edge compute.
						edgeSt.Enqueue(func() float64 {
							return server.ServiceMs(edgeRNG)
						}, func(wait, svc float64) {
							f.queueMs = wait
							f.computeMs = svc
							// Return path: core + backhaul as delay (the
							// small result does not contend for the
							// meter), then downlink radio.
							k.Schedule(bh.DelayMs+p.CoreProcMs, func() {
								dlSt.Enqueue(func() float64 {
									res := dl.Transmit(k.Now(), appProf.ResultKBit, dlRNG)
									dlTBs += res.TBs
									dlErrs += res.Errors
									return res.DurationMs
								}, func(wait, svc float64) {
									f.dlMs = wait + svc
									finish(f)
								})
							})
						})
					})
				})
			})
		})
	}

	for i := 0; i < traffic; i++ {
		launch()
	}
	k.Run(horizon)

	if tr.Frames > 0 {
		n := float64(tr.Frames)
		tr.MeanLoadingMs = sumLoad / n
		tr.MeanULMs = sumUL / n
		tr.MeanBackhaulMs = sumBH / n
		tr.MeanQueueMs = sumQ / n
		tr.MeanComputeMs = sumC / n
		tr.MeanDLMs = sumDL / n
	}
	if horizon > 0 {
		// Delivered application goodput (kbit/ms == Mbps) — what the
		// throughput-floor QoE models judge.
		tr.ULThroughputMbps = sumKBit / horizon
		tr.DLThroughputMbps = float64(tr.Frames) * appProf.ResultKBit / horizon
	}
	if ulTBs > 0 {
		tr.ULPER = float64(ulErrs) / float64(ulTBs)
	}
	if dlTBs > 0 {
		tr.DLPER = float64(dlErrs) / float64(dlTBs)
	}
	return tr, records
}

// Measure runs the link-layer measurement campaign of Table 1 against a
// configuration: saturation uplink and downlink throughput, residual
// PER, and small-probe ping. The returned trace has only the link-layer
// fields set.
func (s *Simulator) Measure(cfg slicing.Config, seed int64) slicing.Trace {
	cfg = slicing.DefaultConfigSpace().Clamp(cfg)
	cfg = slicing.ApplyConnectivityFloor(cfg)
	rngs := mathx.Split(seed, 3)
	chanRNG, ulRNG, dlRNG := rngs[0], rngs[1], rngs[2]

	p := s.Profile
	horizon := p.EpisodeMs
	model := p.channelModel(s.Params.BaselineLoss, s.Params.ENBNoiseFig, s.Params.UENoiseFig)
	channel := radio.NewChannelState(model, horizon, chanRNG)

	ulTput, ulPER := s.saturate(radio.Uplink, cfg, channel, horizon, ulRNG)
	dlTput, dlPER := s.saturate(radio.Downlink, cfg, channel, horizon, dlRNG)

	bh := transport.Link{
		BandwidthMbps: cfg.BackhaulMbps,
		HeadroomMbps:  s.Params.BackhaulBW + p.BackhaulHeadroom,
		PortCapMbps:   p.PortCapMbps,
		DelayMs:       p.BackhaulDelayMs + s.Params.BackhaulDelay,
	}
	// A ping probe crosses the radio both ways and the backhaul both
	// ways; it does not touch the application or the edge queue.
	// Sporadic probes pay the cold access latency (SR + RACH cycle),
	// unlike the application's pipelined transmissions.
	const probeKBit = 0.8
	ul := &radio.Link{Dir: radio.Uplink, PRBs: cfg.BandwidthUL, MCSOffset: cfg.MCSOffsetUL,
		AccessDelayMs: p.PingAccessULMs, AccessJitterMs: p.ULAccessJitterMs,
		Efficiency: p.ULEfficiency, BasePER: p.BasePERUL, Channel: channel}
	dl := &radio.Link{Dir: radio.Downlink, PRBs: cfg.BandwidthDL, MCSOffset: cfg.MCSOffsetDL,
		AccessDelayMs: p.PingAccessDLMs,
		Efficiency:    p.DLEfficiency, BasePER: p.BasePERDL, Channel: channel}
	var pingSum float64
	const pings = 100
	for i := 0; i < pings; i++ {
		t := float64(i) * horizon / pings
		up := ul.Transmit(t, probeKBit, ulRNG)
		down := dl.Transmit(t, probeKBit, dlRNG)
		pingSum += up.DurationMs + down.DurationMs +
			2*(bh.SerializationMs(probeKBit)+bh.DelayMs) + p.CoreProcMs
	}

	return slicing.Trace{
		ULThroughputMbps: ulTput,
		DLThroughputMbps: dlTput,
		ULPER:            ulPER,
		DLPER:            dlPER,
		PingMs:           pingSum / pings,
	}
}

// saturate measures one direction's goodput by transmitting
// back-to-back bulk transport blocks for the whole horizon.
func (s *Simulator) saturate(dir radio.Direction, cfg slicing.Config, channel *radio.ChannelState, horizon float64, rng *rand.Rand) (tputMbps, per float64) {
	link := &radio.Link{Dir: dir, Channel: channel,
		BasePER: s.Profile.BasePERUL}
	if dir == radio.Uplink {
		link.PRBs, link.MCSOffset, link.Efficiency = cfg.BandwidthUL, cfg.MCSOffsetUL, s.Profile.ULEfficiency
	} else {
		link.PRBs, link.MCSOffset, link.Efficiency = cfg.BandwidthDL, cfg.MCSOffsetDL, s.Profile.DLEfficiency
		link.BasePER = s.Profile.BasePERDL
	}
	// Access delay amortizes away under saturation (pipelined grants).
	link.AccessDelayMs = 0

	const chunkKBit = 400
	t, delivered := 0.0, 0.0
	tbs, errs := 0, 0
	for t < horizon {
		res := link.Transmit(t, chunkKBit, rng)
		// RLC recovery is per-packet latency, not a link stall: under
		// saturation other data keeps flowing while a lost block is
		// retransmitted, so exclude the recovery penalty from the
		// air-time accounting.
		t += res.DurationMs - radio.RLCPenaltyMs*float64(res.Errors)
		tbs += res.TBs
		errs += res.Errors
		delivered += chunkKBit * (1 - float64(res.Errors)/float64(res.TBs))
	}
	if t > 0 {
		tputMbps = delivered / t
	}
	if tbs > 0 {
		per = float64(errs) / float64(tbs)
	}
	return tputMbps, per
}
