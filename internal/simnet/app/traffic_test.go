package app

import (
	"math/rand"
	"testing"
)

func TestFrameSizeDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := DefaultProfile()
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		s := p.FrameKBits(rng)
		if s < 24 {
			t.Fatalf("frame below floor: %v", s)
		}
		sum += s
	}
	mean := sum / n
	if mean < 220 || mean > 240 {
		t.Fatalf("frame mean = %v kbit, want ~230.4", mean)
	}
}

func TestLoadingComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := DefaultProfile()
	p.LoadingExtraMs = 7
	if got := p.LoadingMs(rng); got != 27 {
		t.Fatalf("loading = %v, want base+extra = 27", got)
	}
}

func TestLoadingJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := DefaultProfile()
	p.LoadingJitterMs = 10
	for i := 0; i < 5000; i++ {
		got := p.LoadingMs(rng)
		if got < 20 || got >= 30 {
			t.Fatalf("loading %v outside [20, 30)", got)
		}
	}
}
