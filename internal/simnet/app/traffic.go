// Package app models the slice application of the paper's prototype: an
// Android client that continuously uploads 540p video frames to the edge
// server and receives feature-extraction results, with the number of
// on-the-fly frames capped for congestion control. The cap doubles as
// the "user traffic" knob (a cap of four emulates the traffic of four
// users).
package app

import (
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/mathx"
)

// Profile describes the application's traffic characteristics.
type Profile struct {
	// FrameKBitMean and FrameKBitStd describe uplink frame sizes in
	// kilobits (the paper matched 28.8 kB mean, 9.9 kB std — i.e.
	// 230.4 kbit mean, 79.2 kbit std).
	FrameKBitMean float64
	FrameKBitStd  float64
	// ResultKBit is the downlink result size in kilobits.
	ResultKBit float64
	// LoadingBaseMs is the frame capture/encode time on the UE before
	// upload starts.
	LoadingBaseMs float64
	// LoadingExtraMs is the loading_time simulation parameter (or real
	// overhead).
	LoadingExtraMs float64
	// LoadingJitterMs, when positive, adds uniform [0, jitter) noise to
	// the loading time (Android scheduling; zero in the simulator).
	LoadingJitterMs float64
	// ComputeScale scales the edge compute demand relative to the
	// prototype's feature-extraction workload (teleoperation commands
	// and telemetry decoding are far lighter than ORB extraction). Zero
	// means 1.0.
	ComputeScale float64
}

// DefaultProfile returns the prototype application's traffic profile.
func DefaultProfile() Profile {
	return Profile{
		FrameKBitMean: 230.4, // 28.8 kB
		FrameKBitStd:  79.2,  // 9.9 kB
		ResultKBit:    16,    // 2 kB of extracted features
		LoadingBaseMs: 20,
	}
}

// FrameKBits draws one frame's size in kilobits, truncated to stay
// positive.
func (p Profile) FrameKBits(rng *rand.Rand) float64 {
	return mathx.SampleTruncNormal(rng, p.FrameKBitMean, p.FrameKBitStd, 24, p.FrameKBitMean+5*p.FrameKBitStd)
}

// LoadingMs draws one frame's loading time.
func (p Profile) LoadingMs(rng *rand.Rand) float64 {
	t := p.LoadingBaseMs + p.LoadingExtraMs
	if p.LoadingJitterMs > 0 {
		t += rng.Float64() * p.LoadingJitterMs
	}
	return t
}
