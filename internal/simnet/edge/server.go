// Package edge models the slice's edge server: a queue-based compute
// service (the paper's Docker container running ORB feature extraction)
// whose service rate scales with the container's CPU ratio.
package edge

import (
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/mathx"
)

// Server describes the compute service of one slice.
type Server struct {
	// BaseMeanMs and BaseStdMs describe the per-frame compute time at
	// CPU ratio 1.0 (the paper matched 81 ms mean, 35 ms std from
	// experimental collections).
	BaseMeanMs float64
	BaseStdMs  float64
	// CPURatio is the container's CPU share; service time scales as
	// 1/CPURatio.
	CPURatio float64
	// ExtraMs is a fixed additional compute time (the compute_time
	// simulation parameter, or real-world container overhead).
	ExtraMs float64
	// JitterSigma, when positive, multiplies the service time by a
	// lognormal factor exp(N(0, σ²)) (OS scheduling noise on real
	// hardware; zero in the clean simulator). The factor's mean is
	// exp(σ²/2) > 1: real jitter both widens and slows the service.
	JitterSigma float64
	// StallProb and StallFactor model occasional container stalls
	// (garbage collection, page faults): with probability StallProb the
	// service time is multiplied by StallFactor. Zero disables stalls.
	StallProb   float64
	StallFactor float64
}

// DefaultServer returns the prototype's edge service at full CPU.
func DefaultServer() Server {
	return Server{BaseMeanMs: 81, BaseStdMs: 35, CPURatio: 1}
}

// ServiceMs draws one frame's compute time. A CPU ratio of zero models a
// stalled container as a very large service time.
func (s Server) ServiceMs(rng *rand.Rand) float64 {
	cpu := s.CPURatio
	if cpu <= 0.01 {
		cpu = 0.01
	}
	base := mathx.SampleTruncNormal(rng, s.BaseMeanMs, s.BaseStdMs, 5, s.BaseMeanMs+6*s.BaseStdMs)
	t := base/cpu + s.ExtraMs
	if s.JitterSigma > 0 {
		t *= mathx.SampleLogNormal(rng, 0, s.JitterSigma)
	}
	if s.StallProb > 0 && rng.Float64() < s.StallProb {
		t *= s.StallFactor
	}
	return t
}
