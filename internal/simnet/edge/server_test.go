package edge

import (
	"math/rand"
	"testing"
)

func mean(n int, f func() float64) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += f()
	}
	return sum / float64(n)
}

func TestServiceMeanTracksBase(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := DefaultServer()
	m := mean(20000, func() float64 { return s.ServiceMs(rng) })
	if m < 75 || m > 90 {
		t.Fatalf("mean service = %v, want near 81", m)
	}
}

func TestCPURatioScalesService(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	full := DefaultServer()
	half := DefaultServer()
	half.CPURatio = 0.5
	mf := mean(20000, func() float64 { return full.ServiceMs(rng) })
	mh := mean(20000, func() float64 { return half.ServiceMs(rng) })
	ratio := mh / mf
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("half CPU should double service: ratio %v", ratio)
	}
}

func TestZeroCPUStalls(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := DefaultServer()
	s.CPURatio = 0
	if got := s.ServiceMs(rng); got < 1000 {
		t.Fatalf("zero CPU service = %v, want a stall", got)
	}
}

func TestExtraAddsFixedOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := DefaultServer()
	extra := DefaultServer()
	extra.ExtraMs = 25
	mb := mean(20000, func() float64 { return base.ServiceMs(rng) })
	me := mean(20000, func() float64 { return extra.ServiceMs(rng) })
	if d := me - mb; d < 23 || d > 27 {
		t.Fatalf("extra offset = %v, want ~25", d)
	}
}

func TestJitterRaisesMeanAndSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	clean := DefaultServer()
	noisy := DefaultServer()
	noisy.JitterSigma = 0.4
	mc := mean(20000, func() float64 { return clean.ServiceMs(rng) })
	mn := mean(20000, func() float64 { return noisy.ServiceMs(rng) })
	// exp(σ²/2) ≈ 1.083 mean inflation.
	if mn < mc*1.03 {
		t.Fatalf("lognormal jitter should raise the mean: %v vs %v", mn, mc)
	}
}

func TestStallsInflateTail(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := DefaultServer()
	s.StallProb = 1.0
	s.StallFactor = 3
	m := mean(5000, func() float64 { return s.ServiceMs(rng) })
	if m < 230 || m > 260 {
		t.Fatalf("always-stalling mean = %v, want ~3x81", m)
	}
}

func TestServiceAlwaysPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := DefaultServer()
	s.JitterSigma = 0.5
	s.StallProb = 0.2
	s.StallFactor = 4
	for i := 0; i < 10000; i++ {
		if got := s.ServiceMs(rng); got <= 0 {
			t.Fatalf("non-positive service %v", got)
		}
	}
}
