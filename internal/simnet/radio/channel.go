package radio

import (
	"math"
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/mathx"
)

// ChannelModel describes the radio propagation environment of an
// episode. The fields split into the *searchable* simulation parameters
// (reference loss, noise figures — paper Table 3) and the *structural*
// environment (distance, pathloss exponent, SINR ceiling, fading and
// interference processes) that a simulator may or may not model.
type ChannelModel struct {
	// Link budget.
	UETxPowerDBm  float64 // uplink transmit power
	ENBTxPowerDBm float64 // downlink transmit power
	BaselineLoss  float64 // reference pathloss at 1 m, dB (searchable)
	PathlossExp   float64 // log-distance exponent
	DistanceM     float64 // user–eNB distance, metres
	ENBNoiseFig   float64 // eNB receiver noise figure, dB (searchable)
	UENoiseFig    float64 // UE receiver noise figure, dB (searchable)
	SINRCapDB     float64 // effective SINR ceiling (EVM/quantization limits)

	// Shadow fading: an AR(1) process in dB sampled on a 100 ms grid.
	// Sigma of zero disables fading (ideal simulator channel).
	FadingSigmaDB float64
	FadingRho     float64

	// Interference bursts: Poisson episodes during which the SINR drops
	// by BurstDepthDB. Rate of zero disables bursts.
	BurstRatePerS float64
	BurstDurMeanS float64
	BurstDepthDB  float64
}

// DefaultChannel returns the clean simulator channel at 1 m (paper §7.2:
// log-distance pathloss, no fading).
func DefaultChannel() ChannelModel {
	return ChannelModel{
		UETxPowerDBm:  23,
		ENBTxPowerDBm: 30,
		BaselineLoss:  38.57,
		PathlossExp:   3.0,
		DistanceM:     1.0,
		ENBNoiseFig:   5.0,
		UENoiseFig:    9.0,
		SINRCapDB:     28,
	}
}

// Pathloss returns the log-distance pathloss in dB at the configured
// distance: PL = PL₀ + 10·n·log10(d/1m).
func (c ChannelModel) Pathloss() float64 {
	d := c.DistanceM
	if d < 1 {
		d = 1
	}
	return c.BaselineLoss + 10*c.PathlossExp*math.Log10(d)
}

// MeanSINR returns the burst- and fading-free SINR in dB for a
// direction, assuming the transmit power is spread over nPRB resource
// blocks.
func (c ChannelModel) MeanSINR(dir Direction, nPRB int) float64 {
	if nPRB < 1 {
		nPRB = 1
	}
	var tx, nf float64
	switch dir {
	case Uplink:
		tx, nf = c.UETxPowerDBm, c.ENBNoiseFig
	default:
		tx, nf = c.ENBTxPowerDBm, c.UENoiseFig
	}
	perPRBTx := tx - 10*math.Log10(float64(nPRB))
	noise := ThermalNoiseDBmPerHz + 10*math.Log10(PRBBandwidthHz) + nf
	sinr := perPRBTx - c.Pathloss() - noise
	if sinr > c.SINRCapDB {
		sinr = c.SINRCapDB
	}
	return sinr
}

// ChannelState is a realized channel trajectory for one episode:
// precomputed fading samples and interference-burst intervals, queryable
// at any simulation time. It is deterministic given the RNG it was built
// with.
type ChannelState struct {
	model     ChannelModel
	fading    []float64 // dB offsets on a fadingStepMs grid
	bursts    [][2]float64
	horizonMs float64
}

const fadingStepMs = 100.0

// NewChannelState realizes fading and burst processes over [0, horizonMs].
func NewChannelState(model ChannelModel, horizonMs float64, rng *rand.Rand) *ChannelState {
	st := &ChannelState{model: model, horizonMs: horizonMs}
	steps := int(horizonMs/fadingStepMs) + 2
	st.fading = make([]float64, steps)
	if model.FadingSigmaDB > 0 {
		rho := mathx.Clip(model.FadingRho, 0, 0.999)
		innov := model.FadingSigmaDB * math.Sqrt(1-rho*rho)
		x := model.FadingSigmaDB * rng.NormFloat64()
		for i := range st.fading {
			st.fading[i] = x
			x = rho*x + innov*rng.NormFloat64()
		}
	}
	if model.BurstRatePerS > 0 {
		t := 0.0
		for {
			gapMs := mathx.SampleExp(rng, model.BurstRatePerS) * 1000
			t += gapMs
			if t >= horizonMs {
				break
			}
			durMs := mathx.SampleExp(rng, 1/model.BurstDurMeanS) * 1000
			st.bursts = append(st.bursts, [2]float64{t, t + durMs})
			t += durMs
		}
	}
	return st
}

// Model returns the underlying channel model.
func (s *ChannelState) Model() ChannelModel { return s.model }

// fadingAt returns the shadow-fading offset in dB at time t.
func (s *ChannelState) fadingAt(tMs float64) float64 {
	if len(s.fading) == 0 {
		return 0
	}
	idx := int(tMs / fadingStepMs)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.fading) {
		idx = len(s.fading) - 1
	}
	return s.fading[idx]
}

// inBurst reports whether an interference burst is active at time t.
func (s *ChannelState) inBurst(tMs float64) bool {
	for _, b := range s.bursts {
		if tMs >= b[0] && tMs < b[1] {
			return true
		}
	}
	return false
}

// SINRAt returns the effective SINR in dB at time t for a direction and
// PRB allocation, including fading and bursts, capped at the model's
// SINR ceiling.
func (s *ChannelState) SINRAt(tMs float64, dir Direction, nPRB int) float64 {
	sinr := s.model.MeanSINR(dir, nPRB) - s.fadingAt(tMs)
	if s.inBurst(tMs) {
		sinr -= s.model.BurstDepthDB
	}
	if sinr > s.model.SINRCapDB {
		sinr = s.model.SINRCapDB
	}
	return sinr
}
