// Package radio models an LTE-style radio link at the granularity Atlas
// needs: log-distance pathloss, an SINR budget with noise figures, a
// CQI/MCS table mapping SINR to spectral efficiency, a BLER waterfall
// with HARQ retransmissions, shadow fading, and interference bursts.
//
// The model follows the conventions of NS-3 LENA (which the paper's
// simulator is built on): 180 kHz physical resource blocks, 1 ms TTIs,
// and link adaptation targeting 10% first-transmission BLER.
package radio

// PRB and TTI constants for a 10 MHz LTE carrier.
const (
	// REsPerPRBPerTTI is 12 subcarriers × 14 OFDM symbols.
	REsPerPRBPerTTI = 168
	// TTIMs is the transmission time interval in milliseconds.
	TTIMs = 1.0
	// HARQRTTMs is the HARQ retransmission round-trip in milliseconds.
	HARQRTTMs = 8.0
	// RLCPenaltyMs is the recovery delay when all HARQ attempts fail
	// and RLC AM retransmits the PDU.
	RLCPenaltyMs = 40.0
	// MaxHARQ is the number of transmission attempts before RLC takes
	// over.
	MaxHARQ = 4
	// ThermalNoiseDBmPerHz is the thermal noise density at 290 K.
	ThermalNoiseDBmPerHz = -174.0
	// PRBBandwidthHz is the bandwidth of one physical resource block.
	PRBBandwidthHz = 180e3
)

// cqiEntry maps a CQI index to its spectral efficiency (bits per resource
// element) and the SINR at which a first transmission achieves roughly
// 10% BLER (the link-adaptation operating point).
type cqiEntry struct {
	Eff    float64 // bits per RE
	SINRdB float64 // 10%-BLER threshold
}

// cqiTable is the 3GPP 4-bit CQI table (36.213 Table 7.2.3-1) with
// commonly used AWGN thresholds. Index 0 is out-of-range.
var cqiTable = []cqiEntry{
	{0, -9999}, // CQI 0: out of range
	{0.1523, -6.7},
	{0.2344, -4.7},
	{0.3770, -2.3},
	{0.6016, 0.2},
	{0.8770, 2.4},
	{1.1758, 4.3},
	{1.4766, 5.9},
	{1.9141, 8.1},
	{2.4063, 10.3},
	{2.7305, 11.7},
	{3.3223, 14.1},
	{3.9023, 16.3},
	{4.5234, 18.7},
	{5.1152, 21.0},
	{5.5547, 22.7},
}

// MaxCQI is the highest CQI index.
const MaxCQI = 15

// Direction selects uplink or downlink link budgets and modulation caps.
type Direction int

// Link directions.
const (
	Uplink Direction = iota
	Downlink
)

// maxCQIFor caps the modulation per direction: LTE category-4 UEs
// transmit at most 16QAM uplink (CQI 11 efficiency class), while the
// downlink reaches 64QAM (CQI 15).
func maxCQIFor(dir Direction) int {
	if dir == Uplink {
		return 11
	}
	return MaxCQI
}

// CQIFromSINR returns the highest CQI whose threshold is at or below the
// given SINR, capped per direction. It returns 0 when even CQI 1 is not
// supportable.
func CQIFromSINR(sinrDB float64, dir Direction) int {
	best := 0
	limit := maxCQIFor(dir)
	for c := 1; c <= limit; c++ {
		if sinrDB >= cqiTable[c].SINRdB {
			best = c
		}
	}
	return best
}

// Efficiency returns the spectral efficiency in bits/RE for a CQI index.
func Efficiency(cqi int) float64 {
	if cqi < 0 {
		cqi = 0
	}
	if cqi > MaxCQI {
		cqi = MaxCQI
	}
	return cqiTable[cqi].Eff
}

// Threshold returns the 10%-BLER SINR threshold for a CQI index.
func Threshold(cqi int) float64 {
	if cqi <= 0 {
		return cqiTable[1].SINRdB
	}
	if cqi > MaxCQI {
		cqi = MaxCQI
	}
	return cqiTable[cqi].SINRdB
}

// ApplyMCSOffset backs the selected CQI off by the configured offset
// (rounded down), flooring at CQI 1. Backing off trades rate for a lower
// block error rate, mirroring the mcs_offset_ul/dl knobs of the paper's
// prototype (Table 2).
func ApplyMCSOffset(cqi int, offset float64) int {
	c := cqi - int(offset)
	if c < 1 {
		c = 1
	}
	return c
}
