package radio

import (
	"math"
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/mathx"
)

// Link models one direction of the radio access for a slice: a PRB
// allocation with an MCS offset over a realized channel, plus the fixed
// access latency of the LTE MAC (scheduling request/grant cycle).
type Link struct {
	Dir       Direction
	PRBs      float64 // PRBs allocated to the slice (may be fractional)
	MCSOffset float64 // link-adaptation backoff steps

	// AccessDelayMs is the fixed scheduling latency before data flows
	// (SR + grant cycle on the uplink, scheduling delay on the
	// downlink).
	AccessDelayMs float64
	// AccessJitterMs adds uniform [0, jitter) noise to the access delay
	// (grant re-acquisition after CQI changes on real hardware; zero in
	// the clean simulator).
	AccessJitterMs float64

	// Efficiency scales the ideal PHY rate to account for protocol and
	// implementation overheads (1.0 = ideal).
	Efficiency float64

	// BasePER is the residual packet error floor independent of SINR
	// (decoding glitches, HARQ feedback errors).
	BasePER float64

	Channel *ChannelState
}

// RateMbps returns the instantaneous goodput in Mbps at time t, given the
// realized channel. A 30% resource-element overhead (control, reference
// signals) is applied on top of the spectral efficiency.
func (l *Link) RateMbps(tMs float64) float64 {
	if l.PRBs <= 0 {
		return 0
	}
	sinr := l.Channel.SINRAt(tMs, l.Dir, int(math.Ceil(l.PRBs)))
	cqi := CQIFromSINR(sinr, l.Dir)
	cqi = ApplyMCSOffset(cqi, l.MCSOffset)
	eff := Efficiency(cqi)
	const overhead = 0.70 // usable fraction of REs
	bitsPerMs := l.PRBs * REsPerPRBPerTTI * eff * overhead
	return bitsPerMs * l.Efficiency / 1000 // kbit/ms → Mbit/s numerically equal
}

// bler returns the first-transmission block error rate at time t: 10% at
// the CQI threshold, decaying one decade per 2 dB of margin, capped near
// 1 with a small irreducible floor.
func (l *Link) bler(tMs float64) float64 {
	sinr := l.Channel.SINRAt(tMs, l.Dir, int(math.Ceil(l.PRBs)))
	cqi := CQIFromSINR(sinr, l.Dir)
	cqi = ApplyMCSOffset(cqi, l.MCSOffset)
	margin := sinr - Threshold(cqi)
	p := 0.1 * math.Pow(10, -margin/2)
	return mathx.Clip(p, 1e-4, 0.95)
}

// TxResult is the outcome of transmitting one frame over the link.
type TxResult struct {
	DurationMs float64 // total time including access delay, HARQ, RLC recovery
	TBs        int     // transport blocks sent
	Errors     int     // TBs that exhausted HARQ (recovered by RLC)
}

// Transmit models sending sizeKBits kilobits starting at time t. Each
// TTI carries one transport block; blocks failing their first
// transmission enter HARQ (up to MaxHARQ attempts with combining gain),
// and blocks exhausting HARQ pay the RLC recovery penalty and count as
// residual packet errors.
func (l *Link) Transmit(tMs, sizeKBits float64, rng *rand.Rand) TxResult {
	rate := l.RateMbps(tMs)
	if rate <= 0 {
		// No resources: model a stalled link as a very long delay so the
		// latency distribution (and hence QoE) reflects the outage.
		return TxResult{DurationMs: 10000, TBs: 1, Errors: 1}
	}
	baseTxMs := sizeKBits / rate // kbit / (kbit/ms)
	tbs := int(math.Ceil(baseTxMs / TTIMs))
	if tbs < 1 {
		tbs = 1
	}
	p1 := l.bler(tMs)
	extra := 0.0
	errors := 0
	for i := 0; i < tbs; i++ {
		// Residual glitches (HARQ feedback errors, decoder aborts) lose
		// the block outright regardless of SINR; RLC AM recovers it.
		if rng.Float64() < l.BasePER {
			errors++
			extra += RLCPenaltyMs
			continue
		}
		p := p1
		attempt := 1
		for rng.Float64() < p {
			attempt++
			if attempt > MaxHARQ {
				errors++
				extra += RLCPenaltyMs
				break
			}
			extra += HARQRTTMs
			p /= 4 // HARQ soft-combining gain per retransmission
		}
	}
	access := l.AccessDelayMs
	if l.AccessJitterMs > 0 {
		access += rng.Float64() * l.AccessJitterMs
	}
	return TxResult{
		DurationMs: access + baseTxMs + extra,
		TBs:        tbs,
		Errors:     errors,
	}
}
