package radio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCQIMonotoneInSINR(t *testing.T) {
	prev := 0
	for sinr := -10.0; sinr <= 30; sinr += 0.5 {
		c := CQIFromSINR(sinr, Downlink)
		if c < prev {
			t.Fatalf("CQI decreased at %v dB: %d < %d", sinr, c, prev)
		}
		prev = c
	}
}

func TestCQIDirectionCaps(t *testing.T) {
	// At very high SINR the uplink caps at 16QAM-class CQI.
	if got := CQIFromSINR(40, Uplink); got != 11 {
		t.Fatalf("UL cap = %d, want 11", got)
	}
	if got := CQIFromSINR(40, Downlink); got != MaxCQI {
		t.Fatalf("DL cap = %d, want %d", got, MaxCQI)
	}
}

func TestCQIOutOfRange(t *testing.T) {
	if got := CQIFromSINR(-20, Uplink); got != 0 {
		t.Fatalf("CQI at -20 dB = %d", got)
	}
}

func TestEfficiencyMonotone(t *testing.T) {
	for c := 2; c <= MaxCQI; c++ {
		if Efficiency(c) <= Efficiency(c-1) {
			t.Fatalf("efficiency not increasing at CQI %d", c)
		}
	}
	if Efficiency(0) != 0 {
		t.Fatal("CQI 0 must carry nothing")
	}
	if Efficiency(-1) != 0 || Efficiency(99) != Efficiency(MaxCQI) {
		t.Fatal("out-of-range CQI not clamped")
	}
}

func TestApplyMCSOffset(t *testing.T) {
	if got := ApplyMCSOffset(10, 3); got != 7 {
		t.Fatalf("offset = %d", got)
	}
	if got := ApplyMCSOffset(2, 10); got != 1 {
		t.Fatalf("offset floor = %d", got)
	}
	if got := ApplyMCSOffset(10, 0.9); got != 10 {
		t.Fatalf("fractional offset truncates: %d", got)
	}
}

func TestPathlossGrowsWithDistance(t *testing.T) {
	m := DefaultChannel()
	m.DistanceM = 1
	pl1 := m.Pathloss()
	m.DistanceM = 10
	pl10 := m.Pathloss()
	if pl10 != pl1+30 { // exponent 3 → 30 dB per decade
		t.Fatalf("pathloss: %v at 1m, %v at 10m", pl1, pl10)
	}
	// Sub-metre distances clamp to the 1 m reference.
	m.DistanceM = 0.1
	if m.Pathloss() != pl1 {
		t.Fatal("sub-metre pathloss not clamped")
	}
}

func TestMeanSINRCapped(t *testing.T) {
	m := DefaultChannel()
	if got := m.MeanSINR(Uplink, 50); got != m.SINRCapDB {
		t.Fatalf("SINR at 1m = %v, want capped at %v", got, m.SINRCapDB)
	}
}

func TestChannelStateDeterministic(t *testing.T) {
	m := DefaultChannel()
	m.FadingSigmaDB = 3
	m.FadingRho = 0.9
	m.BurstRatePerS = 0.1
	m.BurstDurMeanS = 1
	m.BurstDepthDB = 10
	a := NewChannelState(m, 60000, rand.New(rand.NewSource(7)))
	b := NewChannelState(m, 60000, rand.New(rand.NewSource(7)))
	for ts := 0.0; ts < 60000; ts += 997 {
		if a.SINRAt(ts, Uplink, 50) != b.SINRAt(ts, Uplink, 50) {
			t.Fatalf("channel diverged at %v", ts)
		}
	}
}

func TestChannelNoFadingIsFlat(t *testing.T) {
	m := DefaultChannel()
	st := NewChannelState(m, 60000, rand.New(rand.NewSource(8)))
	ref := st.SINRAt(0, Downlink, 50)
	for ts := 0.0; ts < 60000; ts += 1000 {
		if st.SINRAt(ts, Downlink, 50) != ref {
			t.Fatal("clean channel should be time-invariant")
		}
	}
}

func TestBurstsReduceSINR(t *testing.T) {
	m := DefaultChannel()
	m.BurstRatePerS = 50 // essentially always bursting
	m.BurstDurMeanS = 10
	m.BurstDepthDB = 12
	st := NewChannelState(m, 10000, rand.New(rand.NewSource(9)))
	inBurst := 0
	for ts := 0.0; ts < 10000; ts += 100 {
		if st.SINRAt(ts, Downlink, 50) < m.SINRCapDB {
			inBurst++
		}
	}
	if inBurst == 0 {
		t.Fatal("no burst impact observed")
	}
}

func TestLinkRateMonotoneInPRBs(t *testing.T) {
	st := NewChannelState(DefaultChannel(), 1000, rand.New(rand.NewSource(10)))
	prev := 0.0
	for prbs := 5.0; prbs <= 50; prbs += 5 {
		l := &Link{Dir: Uplink, PRBs: prbs, Efficiency: 1, Channel: st}
		r := l.RateMbps(0)
		if r <= prev {
			t.Fatalf("rate not increasing at %v PRBs: %v <= %v", prbs, r, prev)
		}
		prev = r
	}
}

func TestLinkRateZeroPRBs(t *testing.T) {
	st := NewChannelState(DefaultChannel(), 1000, rand.New(rand.NewSource(11)))
	l := &Link{Dir: Uplink, PRBs: 0, Efficiency: 1, Channel: st}
	if l.RateMbps(0) != 0 {
		t.Fatal("zero PRBs must carry nothing")
	}
	res := l.Transmit(0, 100, rand.New(rand.NewSource(12)))
	if res.DurationMs < 1000 {
		t.Fatalf("stalled link should report a large delay, got %v", res.DurationMs)
	}
}

func TestMCSOffsetReducesRate(t *testing.T) {
	st := NewChannelState(DefaultChannel(), 1000, rand.New(rand.NewSource(13)))
	fast := &Link{Dir: Downlink, PRBs: 50, Efficiency: 1, Channel: st}
	slow := &Link{Dir: Downlink, PRBs: 50, MCSOffset: 5, Efficiency: 1, Channel: st}
	if slow.RateMbps(0) >= fast.RateMbps(0) {
		t.Fatal("MCS backoff must reduce rate")
	}
}

func TestTransmitAccounting(t *testing.T) {
	st := NewChannelState(DefaultChannel(), 1000, rand.New(rand.NewSource(14)))
	l := &Link{Dir: Uplink, PRBs: 50, Efficiency: 1, AccessDelayMs: 8, Channel: st}
	rng := rand.New(rand.NewSource(15))
	res := l.Transmit(0, 400, rng)
	if res.TBs < 1 {
		t.Fatalf("TBs = %d", res.TBs)
	}
	minDur := 8 + 400/l.RateMbps(0)
	if res.DurationMs < minDur-1e-9 {
		t.Fatalf("duration %v below physical floor %v", res.DurationMs, minDur)
	}
}

func TestTransmitErrorRateMatchesBasePER(t *testing.T) {
	st := NewChannelState(DefaultChannel(), 1000, rand.New(rand.NewSource(16)))
	l := &Link{Dir: Uplink, PRBs: 50, Efficiency: 1, BasePER: 0.05, Channel: st}
	rng := rand.New(rand.NewSource(17))
	tbs, errs := 0, 0
	for i := 0; i < 500; i++ {
		res := l.Transmit(0, 400, rng)
		tbs += res.TBs
		errs += res.Errors
	}
	per := float64(errs) / float64(tbs)
	if per < 0.03 || per > 0.08 {
		t.Fatalf("observed PER %v, want near 0.05", per)
	}
}

func TestAccessJitterWithinBounds(t *testing.T) {
	st := NewChannelState(DefaultChannel(), 1000, rand.New(rand.NewSource(18)))
	l := &Link{Dir: Uplink, PRBs: 50, Efficiency: 1, AccessDelayMs: 5, AccessJitterMs: 4, Channel: st}
	rng := rand.New(rand.NewSource(19))
	base := &Link{Dir: Uplink, PRBs: 50, Efficiency: 1, Channel: st}
	baseTx := 400 / base.RateMbps(0)
	for i := 0; i < 200; i++ {
		res := l.Transmit(0, 400, rng)
		access := res.DurationMs - baseTx - 40*float64(res.Errors)
		// HARQ retransmissions add multiples of 8 ms; subtract the
		// largest explanation and check the remainder stays in bounds.
		for access >= 9+baseTx*0 && access > 9 {
			access -= HARQRTTMs
		}
		if access < 5-1e-9 {
			t.Fatalf("access %v below floor", access)
		}
	}
}

// Property: thresholds are increasing in CQI.
func TestThresholdMonotone(t *testing.T) {
	f := func(raw uint8) bool {
		c := int(raw%14) + 2
		return Threshold(c) > Threshold(c-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
