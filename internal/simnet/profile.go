// Package simnet is Atlas's network simulator: a from-scratch
// discrete-event model of the paper's end-to-end slicing testbed — an
// LTE radio access network, an SDN backhaul, a core/edge segment with a
// queue-based compute server, and the closed-loop frame application.
//
// It plays the role NS-3 plays in the paper: a queryable offline
// environment whose *simulation parameters* (slicing.SimParams, Table 3)
// can be searched to match a real network. The same engine, configured
// with a hidden "structural" Profile, also powers the real-network
// surrogate in package realnet; the profile captures everything a
// simulator typically gets wrong (fading, implementation efficiency,
// jitter), which is exactly what creates the sim-to-real discrepancy.
package simnet

import "github.com/atlas-slicing/atlas/internal/simnet/radio"

// Profile is the structural description of a network environment: the
// parts of reality that are *not* exposed as searchable simulation
// parameters. The clean simulator profile has no fading, no jitter and
// ideal efficiency; the real-network profile (internal/realnet) sets all
// of them.
type Profile struct {
	// Radio environment.
	PathlossExp   float64 // log-distance exponent
	DistanceM     float64 // user–eNB distance
	SINRCapDB     float64 // effective SINR ceiling
	FadingSigmaDB float64 // shadow-fading σ (0 = none)
	FadingRho     float64 // shadow-fading AR(1) coefficient
	BurstRatePerS float64 // interference-burst rate (0 = none)
	BurstDurMeanS float64 // mean burst duration
	BurstDepthDB  float64 // SINR drop during bursts

	ULEfficiency     float64 // implementation efficiency of the uplink PHY/MAC
	DLEfficiency     float64 // implementation efficiency of the downlink
	BasePERUL        float64 // residual uplink packet error floor
	BasePERDL        float64 // residual downlink packet error floor
	AccessULMs       float64 // steady-state uplink scheduling latency (warm grants)
	AccessDLMs       float64 // steady-state downlink scheduling latency
	ULAccessJitterMs float64 // uniform jitter on uplink access (0 = none)
	PingAccessULMs   float64 // cold uplink access for sporadic probes (SR + RACH)
	PingAccessDLMs   float64 // cold downlink access for sporadic probes

	// Transport and core.
	BackhaulDelayMs  float64 // one-way backhaul propagation + stack delay
	BackhaulHeadroom float64 // Mbps beyond the metered rate (token-bucket burst)
	PortCapMbps      float64 // physical port capacity
	CoreProcMs       float64 // core-network processing per direction

	// Edge compute.
	ComputeMeanMs      float64 // per-frame compute at CPU ratio 1
	ComputeStdMs       float64
	ComputeExtraMs     float64 // fixed overhead (e.g. container runtime)
	ComputeJitterSigma float64 // lognormal service-time jitter (0 = none)
	ComputeStallProb   float64 // probability of a container stall per frame
	ComputeStallFactor float64 // service-time multiplier during a stall

	// Application.
	FrameKBitMean   float64
	FrameKBitStd    float64
	ResultKBit      float64
	LoadingBaseMs   float64
	LoadingJitterMs float64

	// EpisodeMs is the duration of one configuration interval's
	// measurement window (the paper collects 60 s per configuration).
	EpisodeMs float64
}

// CleanProfile returns the simulator's structural profile: the idealized
// environment NS-3-style simulators model (no fading, no jitter, ideal
// efficiency, log-distance pathloss with exponent 3).
func CleanProfile() Profile {
	return Profile{
		PathlossExp: 3.0,
		DistanceM:   1.0,
		SINRCapDB:   28,

		ULEfficiency:   1.0,
		DLEfficiency:   1.0,
		BasePERUL:      0.004,
		BasePERDL:      0.002,
		AccessULMs:     8,
		AccessDLMs:     4,
		PingAccessULMs: 14,
		PingAccessDLMs: 8,

		BackhaulDelayMs: 2.0,
		PortCapMbps:     1000,
		CoreProcMs:      2.5,

		ComputeMeanMs: 81,
		ComputeStdMs:  35,

		FrameKBitMean: 230.4,
		FrameKBitStd:  79.2,
		ResultKBit:    16,
		LoadingBaseMs: 20,

		EpisodeMs: 60000,
	}
}

// channelModel assembles the radio.ChannelModel for this profile given
// the searchable radio parameters.
func (p Profile) channelModel(baselineLoss, enbNF, ueNF float64) radio.ChannelModel {
	return radio.ChannelModel{
		UETxPowerDBm:  23,
		ENBTxPowerDBm: 30,
		BaselineLoss:  baselineLoss,
		PathlossExp:   p.PathlossExp,
		DistanceM:     p.DistanceM,
		ENBNoiseFig:   enbNF,
		UENoiseFig:    ueNF,
		SINRCapDB:     p.SINRCapDB,
		FadingSigmaDB: p.FadingSigmaDB,
		FadingRho:     p.FadingRho,
		BurstRatePerS: p.BurstRatePerS,
		BurstDurMeanS: p.BurstDurMeanS,
		BurstDepthDB:  p.BurstDepthDB,
	}
}
