package simnet

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestEpisodeRecordsMatchTrace(t *testing.T) {
	s := NewDefault()
	tr, recs := s.EpisodeRecords(fullConfig(), 2, 31)
	if len(recs) != tr.Frames {
		t.Fatalf("records %d vs frames %d", len(recs), tr.Frames)
	}
	for i, r := range recs {
		if r.LatencyMs != tr.LatenciesMs[i] {
			t.Fatalf("record %d latency %v vs trace %v", i, r.LatencyMs, tr.LatenciesMs[i])
		}
		sum := r.LoadingMs + r.ULMs + r.BackhaulMs + r.QueueMs + r.ComputeMs + r.DLMs
		// The breakdown plus the (un-itemized) return-path propagation
		// must reconstruct the latency.
		if sum > r.LatencyMs+1e-6 {
			t.Fatalf("record %d components %v exceed latency %v", i, sum, r.LatencyMs)
		}
		if r.LatencyMs-sum > 20 {
			t.Fatalf("record %d unexplained latency %v", i, r.LatencyMs-sum)
		}
		if r.SizeKBit <= 0 {
			t.Fatalf("record %d size %v", i, r.SizeKBit)
		}
	}
}

func TestEpisodeRecordsDeterministicWithEpisode(t *testing.T) {
	s := NewDefault()
	plain := s.Episode(fullConfig(), 1, 33)
	traced, _ := s.EpisodeRecords(fullConfig(), 1, 33)
	if len(plain.LatenciesMs) != len(traced.LatenciesMs) {
		t.Fatal("collection changed the simulation")
	}
	for i := range plain.LatenciesMs {
		if plain.LatenciesMs[i] != traced.LatenciesMs[i] {
			t.Fatal("collection perturbed the random streams")
		}
	}
}

func TestWriteFrameCSV(t *testing.T) {
	s := NewDefault()
	_, recs := s.EpisodeRecords(fullConfig(), 1, 35)
	var buf bytes.Buffer
	if err := WriteFrameCSV(&buf, recs[:5]); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "gen_ms,") {
		t.Fatalf("header = %q", lines[0])
	}
	if got := strings.Count(lines[1], ","); got != 8 {
		t.Fatalf("columns = %d", got+1)
	}
}

func TestSortRecordsByLatency(t *testing.T) {
	recs := []FrameRecord{{LatencyMs: 3}, {LatencyMs: 1}, {LatencyMs: 2}}
	SortRecordsByLatency(recs)
	if recs[0].LatencyMs != 1 || recs[2].LatencyMs != 3 {
		t.Fatalf("sorted = %v", recs)
	}
}

func TestRecordsHaveFiniteFields(t *testing.T) {
	s := NewDefault()
	_, recs := s.EpisodeRecords(fullConfig(), 4, 37)
	for _, r := range recs {
		for _, v := range []float64{r.GenMs, r.LoadingMs, r.ULMs, r.BackhaulMs, r.QueueMs, r.ComputeMs, r.DLMs, r.LatencyMs} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("bad field %v in %+v", v, r)
			}
		}
	}
}
