// Package transport models the slice's backhaul: a point-to-point link
// with a metered bandwidth (the transport domain manager's OpenFlow
// meter), a fixed propagation/stack delay, and FIFO serialization.
package transport

// Link is the transport-network segment between the eNB and the core.
type Link struct {
	// BandwidthMbps is the metered rate granted to the slice.
	BandwidthMbps float64
	// HeadroomMbps is extra effective bandwidth beyond the metered rate
	// (token-bucket burst allowance); in the simulator it is the
	// backhaul_bw simulation parameter, in the real network a property
	// of the switch.
	HeadroomMbps float64
	// PortCapMbps is the physical port capacity; the effective rate
	// never exceeds it.
	PortCapMbps float64
	// DelayMs is the one-way propagation plus stack delay.
	DelayMs float64
}

// EffectiveRateMbps returns the serialization rate seen by slice
// traffic.
func (l Link) EffectiveRateMbps() float64 {
	r := l.BandwidthMbps + l.HeadroomMbps
	if l.PortCapMbps > 0 && r > l.PortCapMbps {
		r = l.PortCapMbps
	}
	if r < 0 {
		r = 0
	}
	return r
}

// SerializationMs returns the time to clock sizeKBits onto the link, or
// a large stall value when the slice has no transport bandwidth.
func (l Link) SerializationMs(sizeKBits float64) float64 {
	r := l.EffectiveRateMbps()
	if r <= 0 {
		return 10000
	}
	return sizeKBits / r
}
