package transport

import "testing"

func TestEffectiveRate(t *testing.T) {
	l := Link{BandwidthMbps: 50, HeadroomMbps: 10, PortCapMbps: 1000}
	if got := l.EffectiveRateMbps(); got != 60 {
		t.Fatalf("rate = %v", got)
	}
}

func TestEffectiveRatePortCap(t *testing.T) {
	l := Link{BandwidthMbps: 900, HeadroomMbps: 200, PortCapMbps: 1000}
	if got := l.EffectiveRateMbps(); got != 1000 {
		t.Fatalf("rate = %v, want capped at port", got)
	}
}

func TestEffectiveRateNeverNegative(t *testing.T) {
	l := Link{BandwidthMbps: -5, HeadroomMbps: 0, PortCapMbps: 1000}
	if got := l.EffectiveRateMbps(); got != 0 {
		t.Fatalf("rate = %v", got)
	}
}

func TestSerialization(t *testing.T) {
	l := Link{BandwidthMbps: 10, PortCapMbps: 1000}
	// 100 kbit at 10 Mbps = 10 ms.
	if got := l.SerializationMs(100); got != 10 {
		t.Fatalf("serialization = %v", got)
	}
}

func TestSerializationStallsWithoutBandwidth(t *testing.T) {
	l := Link{BandwidthMbps: 0, PortCapMbps: 1000}
	if got := l.SerializationMs(100); got < 1000 {
		t.Fatalf("zero-bandwidth link should stall, got %v ms", got)
	}
}
