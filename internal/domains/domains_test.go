package domains

import (
	"fmt"
	"strings"
	"testing"

	"github.com/atlas-slicing/atlas/internal/slicing"
)

func validConfig() slicing.Config {
	return slicing.Config{BandwidthUL: 20, BandwidthDL: 10, MCSOffsetUL: 2, BackhaulMbps: 40, CPURatio: 0.6}
}

func TestRANValidation(t *testing.T) {
	m := NewRANManager()
	if err := m.Validate(validConfig()); err != nil {
		t.Fatal(err)
	}
	bad := validConfig()
	bad.BandwidthUL = 99
	if err := m.Validate(bad); err == nil {
		t.Fatal("accepted over-allocation")
	}
	bad = validConfig()
	bad.MCSOffsetDL = 11
	if err := m.Validate(bad); err == nil {
		t.Fatal("accepted bad MCS offset")
	}
}

func TestRANApplyRecordsState(t *testing.T) {
	m := NewRANManager()
	acts, err := m.Apply(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 2 {
		t.Fatalf("actions = %d", len(acts))
	}
	if m.Current().BandwidthUL != 20 {
		t.Fatal("state not recorded")
	}
}

func TestTransportMeter(t *testing.T) {
	m := NewTransportManager()
	if _, err := m.Apply(validConfig()); err != nil {
		t.Fatal(err)
	}
	if m.CurrentMbps() != 40 {
		t.Fatalf("meter = %v", m.CurrentMbps())
	}
	bad := validConfig()
	bad.BackhaulMbps = 2000
	if err := m.Validate(bad); err == nil {
		t.Fatal("accepted rate beyond port capacity")
	}
}

func TestCoreUserMapping(t *testing.T) {
	m := NewCoreManager("ar-slice")
	m.Attach("001010000000001")
	m.Attach("001010000000002")
	if m.Users() != 2 {
		t.Fatalf("users = %d", m.Users())
	}
	m.Detach("001010000000001")
	if m.Users() != 1 {
		t.Fatalf("users after detach = %d", m.Users())
	}
	acts, err := m.Apply(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(acts[0].Detail, "ar-slice") {
		t.Fatalf("audit detail %q", acts[0].Detail)
	}
}

func TestEdgeCPU(t *testing.T) {
	m := NewEdgeManager()
	if _, err := m.Apply(validConfig()); err != nil {
		t.Fatal(err)
	}
	if m.CurrentRatio() != 0.6 {
		t.Fatalf("ratio = %v", m.CurrentRatio())
	}
	bad := validConfig()
	bad.CPURatio = 1.5
	if err := m.Validate(bad); err == nil {
		t.Fatal("accepted ratio > 1")
	}
}

func TestOrchestratorAppliesAllDomains(t *testing.T) {
	o := NewOrchestrator("s1")
	acts, err := o.Apply(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, a := range acts {
		seen[a.Domain] = true
	}
	for _, d := range []string{"ran", "transport", "core", "edge"} {
		if !seen[d] {
			t.Fatalf("domain %s missing from actions", d)
		}
	}
	if len(o.Audit()) != len(acts) {
		t.Fatal("audit trail incomplete")
	}
}

func TestOrchestratorValidatesBeforeApplying(t *testing.T) {
	o := NewOrchestrator("s1")
	bad := validConfig()
	bad.CPURatio = 7 // edge invalid, but RAN valid
	if _, err := o.Apply(bad); err == nil {
		t.Fatal("orchestrator accepted invalid config")
	}
	// Nothing may have been applied: RAN state must be untouched.
	if o.RAN.Current() != (slicing.Config{}) {
		t.Fatal("partial application after validation failure")
	}
	if len(o.Audit()) != 0 {
		t.Fatal("audit recorded a failed transaction")
	}
}

// failingManager validates cleanly but fails on Apply after n successful
// applications — a domain whose controller connection drops mid-apply.
type failingManager struct {
	applied int
	failAt  int
}

func (m *failingManager) Domain() string                { return "placement" }
func (m *failingManager) Validate(slicing.Config) error { return nil }
func (m *failingManager) Apply(slicing.Config) ([]Action, error) {
	if m.applied >= m.failAt {
		return nil, fmt.Errorf("placement: controller unreachable")
	}
	m.applied++
	return []Action{{Domain: "placement", Detail: "pod pinned"}}, nil
}

// TestOrchestratorAuditRecordsPartialApply: when a later domain fails
// mid-apply, the actions already enforced on earlier domains must land
// in the audit trail — the audit reflects enforced state, not just
// fully successful transactions.
func TestOrchestratorAuditRecordsPartialApply(t *testing.T) {
	o := NewOrchestrator("s1")
	o.Extra = []Manager{&failingManager{failAt: 0}}
	acts, err := o.Apply(validConfig())
	if err == nil {
		t.Fatal("mid-apply failure not surfaced")
	}
	if len(acts) == 0 {
		t.Fatal("partially applied actions not returned")
	}
	audit := o.Audit()
	if len(audit) != len(acts) {
		t.Fatalf("audit has %d actions, %d were enforced", len(audit), len(acts))
	}
	// The built-in domains all applied before the failure.
	seen := map[string]bool{}
	for _, a := range audit {
		seen[a.Domain] = true
	}
	for _, d := range []string{"ran", "transport", "core", "edge"} {
		if !seen[d] {
			t.Fatalf("enforced domain %s missing from audit", d)
		}
	}
	// A subsequent successful apply appends to — not replaces — the
	// partial record.
	o.Extra = nil
	more, err := o.Apply(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(o.Audit()); got != len(acts)+len(more) {
		t.Fatalf("audit has %d actions want %d", got, len(acts)+len(more))
	}
}
