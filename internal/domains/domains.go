// Package domains implements the management plane of the paper's
// prototype (§7.1): one domain manager per technical domain, each
// translating its share of a slice configuration into domain-level
// actions —
//
//   - radio: PRB allocation and MCS offsets via the FlexRAN-style
//     controller;
//   - transport: per-slice bandwidth via OpenFlow meter updates;
//   - core: mapping the slice's users to its dedicated SPGW-U instance;
//   - edge: the container's CPU ratio via the runtime (docker update).
//
// Managers validate their slice of the configuration, record an audit
// trail of applied actions, and expose the currently enforced state.
// The orchestrator (internal/core's lifecycle) drives them as a unit.
package domains

import (
	"fmt"
	"sync"
	"time"

	"github.com/atlas-slicing/atlas/internal/slicing"
)

// Action is one applied management-plane operation, kept for audit.
type Action struct {
	Domain  string
	Detail  string
	Applied time.Time
}

// Manager configures one technical domain for one slice.
type Manager interface {
	// Domain names the technical domain (ran, transport, core, edge).
	Domain() string
	// Validate checks the manager's share of the configuration against
	// domain limits without applying it.
	Validate(cfg slicing.Config) error
	// Apply enforces the configuration and returns the actions taken.
	Apply(cfg slicing.Config) ([]Action, error)
}

// RANManager allocates PRBs and MCS offsets (the FlexRAN agent role).
type RANManager struct {
	MaxPRB float64 // cell capacity per direction

	mu      sync.Mutex
	current slicing.Config
}

// NewRANManager returns a manager for a 10 MHz cell (50 PRBs).
func NewRANManager() *RANManager { return &RANManager{MaxPRB: 50} }

// Domain implements Manager.
func (m *RANManager) Domain() string { return "ran" }

// Validate implements Manager.
func (m *RANManager) Validate(cfg slicing.Config) error {
	if cfg.BandwidthUL < 0 || cfg.BandwidthUL > m.MaxPRB {
		return fmt.Errorf("ran: uplink PRBs %.1f outside [0, %.0f]", cfg.BandwidthUL, m.MaxPRB)
	}
	if cfg.BandwidthDL < 0 || cfg.BandwidthDL > m.MaxPRB {
		return fmt.Errorf("ran: downlink PRBs %.1f outside [0, %.0f]", cfg.BandwidthDL, m.MaxPRB)
	}
	if cfg.MCSOffsetUL < 0 || cfg.MCSOffsetUL > 10 || cfg.MCSOffsetDL < 0 || cfg.MCSOffsetDL > 10 {
		return fmt.Errorf("ran: MCS offsets (%.1f, %.1f) outside [0, 10]", cfg.MCSOffsetUL, cfg.MCSOffsetDL)
	}
	return nil
}

// Apply implements Manager.
func (m *RANManager) Apply(cfg slicing.Config) ([]Action, error) {
	if err := m.Validate(cfg); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.current = cfg
	now := time.Now()
	return []Action{
		{Domain: "ran", Applied: now,
			Detail: fmt.Sprintf("slice PRB allocation ul=%.0f dl=%.0f", cfg.BandwidthUL, cfg.BandwidthDL)},
		{Domain: "ran", Applied: now,
			Detail: fmt.Sprintf("link-adaptation backoff mcs_ul=%.0f mcs_dl=%.0f", cfg.MCSOffsetUL, cfg.MCSOffsetDL)},
	}, nil
}

// Current returns the enforced radio allocation.
func (m *RANManager) Current() slicing.Config {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.current
}

// TransportManager meters the slice's backhaul bandwidth (the
// OpenDayLight/OpenFlow meter role).
type TransportManager struct {
	PortCapMbps float64

	mu      sync.Mutex
	current float64
}

// NewTransportManager returns a manager for a 1 Gbps port.
func NewTransportManager() *TransportManager { return &TransportManager{PortCapMbps: 1000} }

// Domain implements Manager.
func (m *TransportManager) Domain() string { return "transport" }

// Validate implements Manager.
func (m *TransportManager) Validate(cfg slicing.Config) error {
	if cfg.BackhaulMbps < 0 || cfg.BackhaulMbps > m.PortCapMbps {
		return fmt.Errorf("transport: meter rate %.1f Mbps outside [0, %.0f]", cfg.BackhaulMbps, m.PortCapMbps)
	}
	return nil
}

// Apply implements Manager.
func (m *TransportManager) Apply(cfg slicing.Config) ([]Action, error) {
	if err := m.Validate(cfg); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.current = cfg.BackhaulMbps
	return []Action{{Domain: "transport", Applied: time.Now(),
		Detail: fmt.Sprintf("OpenFlow meter set to %.1f Mbps", cfg.BackhaulMbps)}}, nil
}

// CurrentMbps returns the enforced meter rate.
func (m *TransportManager) CurrentMbps() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.current
}

// CoreManager pins the slice's users to its dedicated SPGW-U instance
// (control/data-plane separation with per-slice user planes).
type CoreManager struct {
	mu    sync.Mutex
	spgwu map[string]string // user IMSI → SPGW-U instance
	slice string
}

// NewCoreManager returns a manager for the named slice.
func NewCoreManager(sliceID string) *CoreManager {
	return &CoreManager{spgwu: map[string]string{}, slice: sliceID}
}

// Domain implements Manager.
func (m *CoreManager) Domain() string { return "core" }

// Validate implements Manager: the core share of the configuration has
// no numeric knobs; it always validates.
func (m *CoreManager) Validate(slicing.Config) error { return nil }

// Apply implements Manager: it (re-)asserts the user→SPGW-U mapping.
func (m *CoreManager) Apply(slicing.Config) ([]Action, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return []Action{{Domain: "core", Applied: time.Now(),
		Detail: fmt.Sprintf("slice %s served by dedicated SPGW-U (%d users attached)", m.slice, len(m.spgwu))}}, nil
}

// Attach maps a user to the slice's SPGW-U.
func (m *CoreManager) Attach(imsi string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.spgwu[imsi] = "spgwu-" + m.slice
}

// Detach removes a user.
func (m *CoreManager) Detach(imsi string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.spgwu, imsi)
}

// Users returns the number of attached users.
func (m *CoreManager) Users() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.spgwu)
}

// EdgeManager scales the slice's edge container (docker update
// --cpus).
type EdgeManager struct {
	mu      sync.Mutex
	current float64
}

// NewEdgeManager returns an edge manager.
func NewEdgeManager() *EdgeManager { return &EdgeManager{} }

// Domain implements Manager.
func (m *EdgeManager) Domain() string { return "edge" }

// Validate implements Manager.
func (m *EdgeManager) Validate(cfg slicing.Config) error {
	if cfg.CPURatio < 0 || cfg.CPURatio > 1 {
		return fmt.Errorf("edge: cpu ratio %.2f outside [0, 1]", cfg.CPURatio)
	}
	return nil
}

// Apply implements Manager.
func (m *EdgeManager) Apply(cfg slicing.Config) ([]Action, error) {
	if err := m.Validate(cfg); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.current = cfg.CPURatio
	return []Action{{Domain: "edge", Applied: time.Now(),
		Detail: fmt.Sprintf("docker update --cpus=%.2f", cfg.CPURatio)}}, nil
}

// CurrentRatio returns the enforced CPU ratio.
func (m *EdgeManager) CurrentRatio() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.current
}

// Orchestrator drives all four domain managers as one transaction-ish
// unit: Validate everything first, then Apply everything, collecting the
// audit trail. A validation failure applies nothing.
type Orchestrator struct {
	RAN       *RANManager
	Transport *TransportManager
	Core      *CoreManager
	Edge      *EdgeManager
	// Extra appends additional domain managers (e.g. a tenant-specific
	// placement domain); they validate and apply after the built-ins.
	Extra []Manager

	mu    sync.Mutex
	audit []Action
}

// NewOrchestrator wires the default managers for one slice.
func NewOrchestrator(sliceID string) *Orchestrator {
	return &Orchestrator{
		RAN:       NewRANManager(),
		Transport: NewTransportManager(),
		Core:      NewCoreManager(sliceID),
		Edge:      NewEdgeManager(),
	}
}

// managers returns the domain managers in application order.
func (o *Orchestrator) managers() []Manager {
	return append([]Manager{o.RAN, o.Transport, o.Core, o.Edge}, o.Extra...)
}

// Apply validates the configuration against every domain and then
// enforces it, returning the full action list. On a mid-apply failure
// the actions applied before the failing domain are still recorded in
// the audit trail — the audit must reflect the state actually enforced
// on the network, not just fully successful transactions.
func (o *Orchestrator) Apply(cfg slicing.Config) ([]Action, error) {
	for _, m := range o.managers() {
		if err := m.Validate(cfg); err != nil {
			return nil, fmt.Errorf("validate %s: %w", m.Domain(), err)
		}
	}
	var all []Action
	record := func() {
		if len(all) == 0 {
			return
		}
		o.mu.Lock()
		o.audit = append(o.audit, all...)
		o.mu.Unlock()
	}
	for _, m := range o.managers() {
		acts, err := m.Apply(cfg)
		all = append(all, acts...)
		if err != nil {
			record()
			return all, fmt.Errorf("apply %s: %w", m.Domain(), err)
		}
	}
	record()
	return all, nil
}

// Audit returns a copy of the applied-action history.
func (o *Orchestrator) Audit() []Action {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Action(nil), o.audit...)
}
