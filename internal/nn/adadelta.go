package nn

import (
	"fmt"
	"math"
)

// adadelta implements the Adadelta optimizer (Zeiler 2012): per-parameter
// adaptive steps from running averages of squared gradients and squared
// updates, scaled by a learning rate (PyTorch semantics, where Adadelta
// takes an lr that multiplies the computed step).
type adadelta struct {
	rho, eps float64
	// One accumulator pair per layer, split into W and B blocks.
	egW, edW [][]float64
	egB, edB [][]float64
}

func newAdadelta(m *MLP) *adadelta {
	a := &adadelta{rho: 0.95, eps: 1e-6}
	for _, l := range m.Layers {
		a.egW = append(a.egW, make([]float64, len(l.W)))
		a.edW = append(a.edW, make([]float64, len(l.W)))
		a.egB = append(a.egB, make([]float64, len(l.B)))
		a.edB = append(a.edB, make([]float64, len(l.B)))
	}
	return a
}

// step applies one Adadelta update. Gradients in g are sums over the
// batch; scale converts them to means; lr scales the final step.
func (a *adadelta) step(m *MLP, g *grads, scale, lr float64) {
	for li := range m.Layers {
		a.apply(m.Layers[li].W, g.W[li], a.egW[li], a.edW[li], scale, lr)
		a.apply(m.Layers[li].B, g.B[li], a.egB[li], a.edB[li], scale, lr)
	}
}

func (a *adadelta) apply(params, grad, eg, ed []float64, scale, lr float64) {
	for i := range params {
		gi := grad[i] * scale
		eg[i] = a.rho*eg[i] + (1-a.rho)*gi*gi
		dx := -math.Sqrt(ed[i]+a.eps) / math.Sqrt(eg[i]+a.eps) * gi
		ed[i] = a.rho*ed[i] + (1-a.rho)*dx*dx
		params[i] += lr * dx
	}
}

// AdadeltaState is a reusable per-parameter Adadelta accumulator for
// callers (like the Bayesian network) that manage flat parameter slices
// themselves.
type AdadeltaState struct {
	rho, eps float64
	eg, ed   []float64
}

// NewAdadeltaState returns an accumulator for n parameters.
func NewAdadeltaState(n int) *AdadeltaState {
	return &AdadeltaState{rho: 0.95, eps: 1e-6, eg: make([]float64, n), ed: make([]float64, n)}
}

// AdadeltaSnapshot is the serializable form of an AdadeltaState: the
// running squared-gradient and squared-update averages that make a
// restored model continue training exactly where the original left off.
type AdadeltaSnapshot struct {
	Rho float64   `json:"rho"`
	Eps float64   `json:"eps"`
	EG  []float64 `json:"eg"`
	ED  []float64 `json:"ed"`
}

// Snapshot returns a deep-copied serializable snapshot of the
// accumulator. A nil state snapshots to nil.
func (s *AdadeltaState) Snapshot() *AdadeltaSnapshot {
	if s == nil {
		return nil
	}
	return &AdadeltaSnapshot{
		Rho: s.rho,
		Eps: s.eps,
		EG:  append([]float64(nil), s.eg...),
		ED:  append([]float64(nil), s.ed...),
	}
}

// AdadeltaFromSnapshot rebuilds an accumulator for n parameters from its
// snapshot, validating lengths. A nil snapshot restores a fresh
// accumulator so older artifacts without optimizer state stay loadable.
func AdadeltaFromSnapshot(snap *AdadeltaSnapshot, n int) (*AdadeltaState, error) {
	if snap == nil {
		return NewAdadeltaState(n), nil
	}
	if len(snap.EG) != n || len(snap.ED) != n {
		return nil, fmt.Errorf("nn: adadelta snapshot has %d/%d accumulators, want %d", len(snap.EG), len(snap.ED), n)
	}
	s := NewAdadeltaState(n)
	if snap.Rho > 0 {
		s.rho = snap.Rho
	}
	if snap.Eps > 0 {
		s.eps = snap.Eps
	}
	copy(s.eg, snap.EG)
	copy(s.ed, snap.ED)
	return s, nil
}

// Step applies one update to params given mean gradients grad, scaled by
// lr. The three slices must have the accumulator's length.
func (s *AdadeltaState) Step(params, grad []float64, lr float64) {
	for i := range params {
		gi := grad[i]
		s.eg[i] = s.rho*s.eg[i] + (1-s.rho)*gi*gi
		dx := -math.Sqrt(s.ed[i]+s.eps) / math.Sqrt(s.eg[i]+s.eps) * gi
		s.ed[i] = s.rho*s.ed[i] + (1-s.rho)*dx*dx
		params[i] += lr * dx
	}
}
