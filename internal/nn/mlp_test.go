package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(3, []int{8, 8}, 2, rng)
	out := m.Forward([]float64{1, 2, 3})
	if len(out) != 2 {
		t.Fatalf("output dim = %d", len(out))
	}
	if m.NumParams() != 3*8+8+8*8+8+8*2+2 {
		t.Fatalf("NumParams = %d", m.NumParams())
	}
}

func TestFitLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(2, []int{16}, 1, rng)
	var xs, ys [][]float64
	for i := 0; i < 400; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, []float64{2*x[0] - x[1] + 0.5})
	}
	mse := m.Fit(xs, ys, TrainOptions{Epochs: 200, BatchSize: 64, LR: 1, Gamma: 1}, rng)
	if mse > 0.01 {
		t.Fatalf("final MSE %v too high for a linear target", mse)
	}
}

func TestFitNonlinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(1, []int{32, 32}, 1, rng)
	var xs, ys [][]float64
	for i := 0; i < 600; i++ {
		x := rng.Float64()*4 - 2
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{math.Sin(2 * x)})
	}
	mse := m.Fit(xs, ys, TrainOptions{Epochs: 300, BatchSize: 64, LR: 1, Gamma: 0.999}, rng)
	if mse > 0.05 {
		t.Fatalf("final MSE %v too high for sin target", mse)
	}
}

// TestGradientFiniteDifference verifies backprop against numeric
// gradients on a tiny network.
func TestGradientFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP(2, []int{3}, 1, rng)
	x := []float64{0.7, -0.4}
	y := []float64{0.3}

	loss := func() float64 {
		pred := m.Forward(x)
		d := pred[0] - y[0]
		return 0.5 * d * d
	}

	g := m.newGrads()
	pred, c := m.forwardCache(x)
	m.backward(c, pred, y, g)

	const h = 1e-6
	for li := range m.Layers {
		for wi := range m.Layers[li].W {
			orig := m.Layers[li].W[wi]
			m.Layers[li].W[wi] = orig + h
			up := loss()
			m.Layers[li].W[wi] = orig - h
			down := loss()
			m.Layers[li].W[wi] = orig
			numeric := (up - down) / (2 * h)
			if math.Abs(numeric-g.W[li][wi]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d W[%d]: analytic %v numeric %v", li, wi, g.W[li][wi], numeric)
			}
		}
		for bi := range m.Layers[li].B {
			orig := m.Layers[li].B[bi]
			m.Layers[li].B[bi] = orig + h
			up := loss()
			m.Layers[li].B[bi] = orig - h
			down := loss()
			m.Layers[li].B[bi] = orig
			numeric := (up - down) / (2 * h)
			if math.Abs(numeric-g.B[li][bi]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d B[%d]: analytic %v numeric %v", li, bi, g.B[li][bi], numeric)
			}
		}
	}
}

func TestFitPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(1, []int{4}, 1, rng)
	m.Fit([][]float64{{1}}, nil, DefaultTrainOptions(), rng)
}

func TestAdadeltaStateStep(t *testing.T) {
	// Minimizing f(x) = (x-3)² with Adadelta must move toward 3.
	s := NewAdadeltaState(1)
	x := []float64{0.0}
	for i := 0; i < 4000; i++ {
		g := []float64{x[0] - 3}
		s.Step(x, g, 1.0)
	}
	if math.Abs(x[0]-3) > 0.2 {
		t.Fatalf("Adadelta converged to %v, want 3", x[0])
	}
}

func TestFitEmptyDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP(1, []int{4}, 1, rng)
	if got := m.Fit(nil, nil, DefaultTrainOptions(), rng); got != 0 {
		t.Fatalf("empty fit MSE = %v", got)
	}
}
