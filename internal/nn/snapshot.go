package nn

import "fmt"

// MLPSnapshotVersion tags the MLP snapshot encoding. Bump it whenever
// the layout changes; restore rejects unknown versions with a
// diagnostic instead of misreading old bytes.
const MLPSnapshotVersion = 1

// LayerState is the serializable form of one fully connected layer.
type LayerState struct {
	In  int       `json:"in"`
	Out int       `json:"out"`
	W   []float64 `json:"w"`
	B   []float64 `json:"b"`
}

// MLPState is the versioned, deterministic serializable form of an MLP:
// just the weights — an MLP carries no other state — so a restored
// network forwards bit-identically to the original.
type MLPState struct {
	Version int          `json:"version"`
	Layers  []LayerState `json:"layers"`
}

// Snapshot returns a deep-copied serializable snapshot of the network.
func (m *MLP) Snapshot() *MLPState {
	s := &MLPState{Version: MLPSnapshotVersion}
	for _, l := range m.Layers {
		s.Layers = append(s.Layers, LayerState{
			In:  l.In,
			Out: l.Out,
			W:   append([]float64(nil), l.W...),
			B:   append([]float64(nil), l.B...),
		})
	}
	return s
}

// MLPFromSnapshot rebuilds a network from its snapshot, validating the
// version tag and every layer's dimensions.
func MLPFromSnapshot(s *MLPState) (*MLP, error) {
	if s == nil {
		return nil, fmt.Errorf("nn: nil MLP snapshot")
	}
	if s.Version != MLPSnapshotVersion {
		return nil, fmt.Errorf("nn: MLP snapshot version %d, want %d", s.Version, MLPSnapshotVersion)
	}
	if len(s.Layers) == 0 {
		return nil, fmt.Errorf("nn: MLP snapshot has no layers")
	}
	m := &MLP{}
	for i, ls := range s.Layers {
		if ls.In <= 0 || ls.Out <= 0 {
			return nil, fmt.Errorf("nn: layer %d has bad dims %dx%d", i, ls.In, ls.Out)
		}
		if i > 0 && ls.In != s.Layers[i-1].Out {
			return nil, fmt.Errorf("nn: layer %d input dim %d does not chain from previous output %d",
				i, ls.In, s.Layers[i-1].Out)
		}
		if len(ls.W) != ls.In*ls.Out || len(ls.B) != ls.Out {
			return nil, fmt.Errorf("nn: layer %d has %d weights and %d biases, want %d and %d",
				i, len(ls.W), len(ls.B), ls.In*ls.Out, ls.Out)
		}
		m.Layers = append(m.Layers, Layer{
			In:  ls.In,
			Out: ls.Out,
			W:   append([]float64(nil), ls.W...),
			B:   append([]float64(nil), ls.B...),
		})
	}
	return m, nil
}
