// Package nn implements a small deterministic multilayer perceptron with
// manual backpropagation and the Adadelta optimizer, matching the
// training setup of the paper's implementation (§7.3: fully connected
// ReLU layers, Adadelta with initial learning rate 1.0 and StepLR
// decay). It is the building block for the DLDA baseline's teacher and
// student networks; the Bayesian neural network of package bnn
// implements its own layers because every weight there is a
// distribution.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is one fully connected layer with ReLU activation (the output
// layer is linear).
type Layer struct {
	In, Out int
	W       []float64 // Out×In, row-major
	B       []float64 // Out
}

// MLP is a feed-forward network: hidden layers use ReLU, the final layer
// is linear.
type MLP struct {
	Layers []Layer
}

// NewMLP builds a network with the given input dimension, hidden widths
// and output dimension, using He initialization.
func NewMLP(in int, hidden []int, out int, rng *rand.Rand) *MLP {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: bad dims in=%d out=%d", in, out))
	}
	dims := append([]int{in}, hidden...)
	dims = append(dims, out)
	m := &MLP{}
	for i := 0; i+1 < len(dims); i++ {
		l := Layer{In: dims[i], Out: dims[i+1]}
		l.W = make([]float64, l.Out*l.In)
		l.B = make([]float64, l.Out)
		scale := math.Sqrt(2.0 / float64(l.In))
		for j := range l.W {
			l.W[j] = scale * rng.NormFloat64()
		}
		m.Layers = append(m.Layers, l)
	}
	return m
}

// NumParams returns the total number of trainable parameters.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.Layers {
		n += len(l.W) + len(l.B)
	}
	return n
}

// Forward evaluates the network on input x.
func (m *MLP) Forward(x []float64) []float64 {
	a := x
	for i := range m.Layers {
		a = m.Layers[i].forward(a, i < len(m.Layers)-1)
	}
	return a
}

func (l *Layer) forward(x []float64, relu bool) []float64 {
	out := make([]float64, l.Out)
	for o := 0; o < l.Out; o++ {
		sum := l.B[o]
		row := l.W[o*l.In : (o+1)*l.In]
		for i, w := range row {
			sum += w * x[i]
		}
		if relu && sum < 0 {
			sum = 0
		}
		out[o] = sum
	}
	return out
}

// cache holds forward activations for backprop.
type cache struct {
	acts [][]float64 // acts[0] = input, acts[i+1] = output of layer i (post-activation)
}

func (m *MLP) forwardCache(x []float64) ([]float64, *cache) {
	c := &cache{acts: make([][]float64, len(m.Layers)+1)}
	c.acts[0] = x
	a := x
	for i := range m.Layers {
		a = m.Layers[i].forward(a, i < len(m.Layers)-1)
		c.acts[i+1] = a
	}
	return a, c
}

// grads mirrors the layer parameters.
type grads struct {
	W [][]float64
	B [][]float64
}

func (m *MLP) newGrads() *grads {
	g := &grads{W: make([][]float64, len(m.Layers)), B: make([][]float64, len(m.Layers))}
	for i, l := range m.Layers {
		g.W[i] = make([]float64, len(l.W))
		g.B[i] = make([]float64, len(l.B))
	}
	return g
}

// backward accumulates gradients of 0.5*Σ(pred-y)² into g for one
// example, given the forward cache.
func (m *MLP) backward(c *cache, pred, target []float64, g *grads) {
	// Output delta for squared error with linear output.
	delta := make([]float64, len(pred))
	for i := range pred {
		delta[i] = pred[i] - target[i]
	}
	for li := len(m.Layers) - 1; li >= 0; li-- {
		l := &m.Layers[li]
		in := c.acts[li]
		// Parameter gradients.
		for o := 0; o < l.Out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			g.B[li][o] += d
			grow := g.W[li][o*l.In : (o+1)*l.In]
			for i, x := range in {
				grow[i] += d * x
			}
		}
		if li == 0 {
			break
		}
		// Propagate to previous layer, applying the ReLU mask of the
		// previous layer's output.
		prev := make([]float64, l.In)
		for i := 0; i < l.In; i++ {
			if in[i] <= 0 { // ReLU inactive (inputs to layer li are post-ReLU)
				continue
			}
			var sum float64
			for o := 0; o < l.Out; o++ {
				sum += delta[o] * l.W[o*l.In+i]
			}
			prev[i] = sum
		}
		delta = prev
	}
}

// TrainOptions controls Fit.
type TrainOptions struct {
	Epochs    int
	BatchSize int
	// LR is the initial Adadelta learning rate (the paper uses 1.0).
	LR float64
	// Gamma is the per-epoch StepLR decay (the paper uses 0.999).
	Gamma float64
}

// DefaultTrainOptions mirrors the paper's §7.3 training setup.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 40, BatchSize: 128, LR: 1.0, Gamma: 0.999}
}

// Fit trains the network on (xs, ys) with mini-batch Adadelta and
// returns the final mean squared error.
func (m *MLP) Fit(xs [][]float64, ys [][]float64, opt TrainOptions, rng *rand.Rand) float64 {
	if len(xs) == 0 {
		return 0
	}
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("nn: %d inputs but %d targets", len(xs), len(ys)))
	}
	if opt.BatchSize <= 0 {
		opt.BatchSize = 128
	}
	if opt.Epochs <= 0 {
		opt.Epochs = 1
	}
	if opt.LR <= 0 {
		opt.LR = 1.0
	}
	if opt.Gamma <= 0 {
		opt.Gamma = 1.0
	}

	ada := newAdadelta(m)
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	lr := opt.LR
	var lastMSE float64
	for ep := 0; ep < opt.Epochs; ep++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var sse float64
		var count int
		for start := 0; start < len(idx); start += opt.BatchSize {
			end := start + opt.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			g := m.newGrads()
			for _, i := range idx[start:end] {
				pred, c := m.forwardCache(xs[i])
				for j := range pred {
					d := pred[j] - ys[i][j]
					sse += d * d
				}
				count++
				m.backward(c, pred, ys[i], g)
			}
			scale := 1 / float64(end-start)
			ada.step(m, g, scale, lr)
		}
		lr *= opt.Gamma
		lastMSE = sse / float64(count)
	}
	return lastMSE
}
