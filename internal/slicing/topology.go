package slicing

import (
	"fmt"
	"sync"
)

// This file generalizes the fleet control plane's capacity vocabulary
// from one aggregated pool per domain to a multi-site topology: each
// cell/edge site owns its local RAN capacity (the PRBs of its cells),
// while transport bandwidth and edge compute are regional tiers every
// site shares. The TopologyLedger below books one reservation per
// admitted slice against (host site RAN, shared TN, shared CN); the
// single-pool CapacityLedger of the pre-topology control plane is the
// one-site special case and survives as an alias.

// SiteID identifies one cell/edge site of a multi-site infrastructure.
// The empty SiteID addresses the ledger's default (first) site, which
// is what keeps the single-pool API working unchanged.
type SiteID string

// DefaultSite is the site a single-pool ledger books against.
const DefaultSite SiteID = "site-0"

// SiteCapacity is one site's local RAN capacity: the uplink plus
// downlink PRBs its cells offer.
type SiteCapacity struct {
	ID     SiteID
	RanPRB float64
}

// TopologyCapacity describes a multi-site infrastructure: per-site RAN
// capacity plus the regionally shared transport-bandwidth and
// edge-compute tiers.
type TopologyCapacity struct {
	Sites  []SiteCapacity
	TnMbps float64
	CnCPU  float64
}

// SingleSite wraps an aggregated per-domain capacity as a one-site
// topology (the pre-topology model).
func SingleSite(c Capacity) TopologyCapacity {
	return TopologyCapacity{
		Sites:  []SiteCapacity{{ID: DefaultSite, RanPRB: c.RanPRB}},
		TnMbps: c.TnMbps,
		CnCPU:  c.CnCPU,
	}
}

// Total returns the aggregated per-domain capacity: the sum of every
// site's RAN plus the shared tiers.
func (tc TopologyCapacity) Total() Capacity {
	out := Capacity{TnMbps: tc.TnMbps, CnCPU: tc.CnCPU}
	for _, s := range tc.Sites {
		out.RanPRB += s.RanPRB
	}
	return out
}

// SiteUtilization is one site's reserved state: the local RAN used
// fraction and how many reservations the site hosts.
type SiteUtilization struct {
	Site  SiteID
	RAN   float64
	Count int
}

// reservation is one booked slice: its host site and demand.
type reservation struct {
	site SiteID
	d    Demand
}

// TopologyLedger is the concurrency-safe reservation book of a
// multi-site infrastructure: one reservation per admitted slice,
// booked against its host site's RAN capacity and the shared
// transport/compute tiers. All mutating operations are atomic — a
// reservation either fits entirely (site RAN and both shared tiers)
// and books, or leaves the ledger untouched — so concurrent admissions
// cannot overbook any tier. A one-site ledger behaves exactly like the
// historical single-pool CapacityLedger.
type TopologyLedger struct {
	topo TopologyCapacity
	idx  map[SiteID]int

	mu  sync.Mutex
	res map[string]reservation
	// ids holds the reservation keys in booking order. Sums always
	// iterate this slice, never the map: float addition is not
	// associative, so map-order summation would make "identical" runs
	// differ by ULPs — the bit-identical replay guarantee depends on a
	// deterministic summation order.
	ids []string
}

// CapacityLedger is the single-pool special case of the TopologyLedger:
// one site owning all RAN, shared tiers equal to the pool's TN/CN.
type CapacityLedger = TopologyLedger

// NewTopologyLedger builds an empty ledger over the given topology. It
// panics on an empty site list or duplicate site ids — topology
// construction is deterministic configuration, not runtime input.
func NewTopologyLedger(topo TopologyCapacity) *TopologyLedger {
	if len(topo.Sites) == 0 {
		panic("slicing: topology ledger needs at least one site")
	}
	topo.Sites = append([]SiteCapacity(nil), topo.Sites...)
	idx := make(map[SiteID]int, len(topo.Sites))
	for i, s := range topo.Sites {
		if _, dup := idx[s.ID]; dup {
			panic(fmt.Sprintf("slicing: duplicate site id %q", s.ID))
		}
		idx[s.ID] = i
	}
	return &TopologyLedger{topo: topo, idx: idx, res: map[string]reservation{}}
}

// NewCapacityLedger builds a single-pool ledger over the given
// aggregated capacity (one default site owning all RAN).
func NewCapacityLedger(capacity Capacity) *CapacityLedger {
	return NewTopologyLedger(SingleSite(capacity))
}

// Capacity returns the aggregated per-domain totals.
func (l *TopologyLedger) Capacity() Capacity { return l.topo.Total() }

// Topology returns the ledger's site/tier description.
func (l *TopologyLedger) Topology() TopologyCapacity {
	out := l.topo
	out.Sites = append([]SiteCapacity(nil), l.topo.Sites...)
	return out
}

// Sites returns the site ids in topology order.
func (l *TopologyLedger) Sites() []SiteID {
	out := make([]SiteID, len(l.topo.Sites))
	for i, s := range l.topo.Sites {
		out[i] = s.ID
	}
	return out
}

// site resolves a SiteID ("" = default site) to its index, or -1.
func (l *TopologyLedger) site(id SiteID) int {
	if id == "" {
		return 0
	}
	if i, ok := l.idx[id]; ok {
		return i
	}
	return -1
}

// usedLocked sums the booked reservations: the aggregate demand plus
// the per-site RAN breakdown (caller holds the lock). Recomputing from
// the map instead of keeping running totals avoids floating-point
// drift over long admit/release churn.
func (l *TopologyLedger) usedLocked() (Demand, []float64) {
	var used Demand
	perSite := make([]float64, len(l.topo.Sites))
	for _, id := range l.ids {
		r := l.res[id]
		used = used.Add(r.d)
		if i := l.site(r.site); i >= 0 {
			perSite[i] += r.d.RanPRB
		}
	}
	return used, perSite
}

// freeAtLocked returns the headroom a reservation at site i sees: the
// site's local RAN free plus the shared-tier free (caller holds the
// lock).
func (l *TopologyLedger) freeAtLocked(i int, used Demand, perSite []float64) Demand {
	return Demand{
		RanPRB: l.topo.Sites[i].RanPRB - perSite[i],
		TnMbps: l.topo.TnMbps - used.TnMbps,
		CnCPU:  l.topo.CnCPU - used.CnCPU,
	}
}

// ReserveAt books a new reservation for id at the given site ("" =
// default site). It fails when the site is unknown, the id already
// holds a reservation, or the demand does not fit the site's free RAN
// plus the shared tiers.
func (l *TopologyLedger) ReserveAt(site SiteID, id string, d Demand) bool {
	i := l.site(site)
	if i < 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.res[id]; dup {
		return false
	}
	used, perSite := l.usedLocked()
	if !d.Fits(l.freeAtLocked(i, used, perSite)) {
		return false
	}
	l.res[id] = reservation{site: l.topo.Sites[i].ID, d: d}
	l.ids = append(l.ids, id)
	return true
}

// Reserve books a new reservation for id at the default site — the
// single-pool API.
func (l *TopologyLedger) Reserve(id string, d Demand) bool {
	return l.ReserveAt("", id, d)
}

// Update resizes an existing reservation in place at its host site.
// Shrinking always succeeds; growing succeeds only when the extra
// demand fits the site's RAN and the shared tiers.
func (l *TopologyLedger) Update(id string, d Demand) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	old, ok := l.res[id]
	if !ok {
		return false
	}
	i := l.site(old.site)
	if i < 0 {
		return false
	}
	used, perSite := l.usedLocked()
	free := l.freeAtLocked(i, used, perSite).Add(old.d)
	if !d.Fits(free) {
		return false
	}
	l.res[id] = reservation{site: old.site, d: d}
	return true
}

// Release frees id's reservation, returning the freed demand (zero when
// the id held none).
func (l *TopologyLedger) Release(id string) Demand {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.res[id]
	if !ok {
		return Demand{}
	}
	delete(l.res, id)
	for i, v := range l.ids {
		if v == id {
			l.ids = append(l.ids[:i], l.ids[i+1:]...)
			break
		}
	}
	return r.d
}

// Reserved returns id's current reservation.
func (l *TopologyLedger) Reserved(id string) (Demand, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.res[id]
	return r.d, ok
}

// SiteOf returns the site hosting id's reservation.
func (l *TopologyLedger) SiteOf(id string) (SiteID, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.res[id]
	return r.site, ok
}

// Used returns the total booked demand across every site.
func (l *TopologyLedger) Used() Demand {
	l.mu.Lock()
	defer l.mu.Unlock()
	used, _ := l.usedLocked()
	return used
}

// Free returns the aggregate per-domain headroom (total capacity minus
// total booked demand). Multi-site callers deciding placement should
// use FreeAt — aggregate RAN headroom may be fragmented across sites.
func (l *TopologyLedger) Free() Demand {
	l.mu.Lock()
	defer l.mu.Unlock()
	used, _ := l.usedLocked()
	return l.topo.Total().Free(used)
}

// FreeAt returns the headroom a reservation at the given site sees:
// its local RAN free plus the shared-tier free ("" = default site; a
// zero Demand for unknown sites).
func (l *TopologyLedger) FreeAt(site SiteID) Demand {
	i := l.site(site)
	if i < 0 {
		return Demand{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	used, perSite := l.usedLocked()
	return l.freeAtLocked(i, used, perSite)
}

// SiteFree is one site's headroom in a FreeAllSites snapshot.
type SiteFree struct {
	Site SiteID
	Free Demand
}

// FreeAllSites returns every site's headroom (local RAN free plus the
// shared-tier free) under a single lock, in topology order — one
// consistent snapshot for placement scoring, instead of S separately
// locked O(reservations) summations.
func (l *TopologyLedger) FreeAllSites() []SiteFree {
	l.mu.Lock()
	defer l.mu.Unlock()
	used, perSite := l.usedLocked()
	out := make([]SiteFree, len(l.topo.Sites))
	for i, s := range l.topo.Sites {
		out[i] = SiteFree{Site: s.ID, Free: l.freeAtLocked(i, used, perSite)}
	}
	return out
}

// FitsAt reports whether a new demand would fit at the given site right
// now (advisory: book with ReserveAt).
func (l *TopologyLedger) FitsAt(site SiteID, d Demand) bool {
	i := l.site(site)
	if i < 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	used, perSite := l.usedLocked()
	return d.Fits(l.freeAtLocked(i, used, perSite))
}

// Fits reports whether a new demand would fit at some site right now
// (for a single-pool ledger: the historical aggregate check).
func (l *TopologyLedger) Fits(d Demand) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	used, perSite := l.usedLocked()
	for i := range l.topo.Sites {
		if d.Fits(l.freeAtLocked(i, used, perSite)) {
			return true
		}
	}
	return false
}

// Utilization returns the aggregate per-domain used fraction.
func (l *TopologyLedger) Utilization() Utilization {
	l.mu.Lock()
	defer l.mu.Unlock()
	used, _ := l.usedLocked()
	return l.topo.Total().Utilization(used)
}

// SiteUtilizations returns every site's local RAN used fraction and
// reservation count, in topology order.
func (l *TopologyLedger) SiteUtilizations() []SiteUtilization {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, perSite := l.usedLocked()
	out := make([]SiteUtilization, len(l.topo.Sites))
	for i, s := range l.topo.Sites {
		out[i] = SiteUtilization{Site: s.ID}
		if s.RanPRB > 0 {
			out[i].RAN = perSite[i] / s.RanPRB
		}
	}
	for _, id := range l.ids {
		if i := l.site(l.res[id].site); i >= 0 {
			out[i].Count++
		}
	}
	return out
}

// Count returns how many reservations the ledger holds.
func (l *TopologyLedger) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.res)
}
