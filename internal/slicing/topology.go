package slicing

import (
	"fmt"
	"sync"

	"github.com/atlas-slicing/atlas/internal/obs"
)

// This file generalizes the fleet control plane's capacity vocabulary
// from one aggregated pool per domain to a multi-site topology: each
// cell/edge site owns its local RAN capacity (the PRBs of its cells),
// while transport bandwidth and edge compute are regional tiers every
// site shares. The TopologyLedger below books one reservation per
// admitted slice against (host site RAN, shared TN, shared CN); the
// single-pool CapacityLedger of the pre-topology control plane is the
// one-site special case and survives as an alias.

// SiteID identifies one cell/edge site of a multi-site infrastructure.
// The empty SiteID addresses the ledger's default (first) site, which
// is what keeps the single-pool API working unchanged.
type SiteID string

// DefaultSite is the site a single-pool ledger books against.
const DefaultSite SiteID = "site-0"

// SiteCapacity is one site's local RAN capacity: the uplink plus
// downlink PRBs its cells offer.
type SiteCapacity struct {
	ID     SiteID
	RanPRB float64
}

// TopologyCapacity describes a multi-site infrastructure: per-site RAN
// capacity plus the regionally shared transport-bandwidth and
// edge-compute tiers.
type TopologyCapacity struct {
	Sites  []SiteCapacity
	TnMbps float64
	CnCPU  float64
}

// SingleSite wraps an aggregated per-domain capacity as a one-site
// topology (the pre-topology model).
func SingleSite(c Capacity) TopologyCapacity {
	return TopologyCapacity{
		Sites:  []SiteCapacity{{ID: DefaultSite, RanPRB: c.RanPRB}},
		TnMbps: c.TnMbps,
		CnCPU:  c.CnCPU,
	}
}

// Total returns the aggregated per-domain capacity: the sum of every
// site's RAN plus the shared tiers.
func (tc TopologyCapacity) Total() Capacity {
	out := Capacity{TnMbps: tc.TnMbps, CnCPU: tc.CnCPU}
	for _, s := range tc.Sites {
		out.RanPRB += s.RanPRB
	}
	return out
}

// SiteUtilization is one site's reserved state: the local RAN used
// fraction and how many reservations the site hosts.
type SiteUtilization struct {
	Site  SiteID
	RAN   float64
	Count int
}

// siteTier is one site's local RAN reservation book. Each site owns
// its lock, so reserve/release traffic against different sites never
// contends — the striping a site-sharded control plane needs.
type siteTier struct {
	mu  sync.Mutex
	res map[string]Demand
	// ranUsed is the running local RAN total. It is maintained
	// incrementally (O(1) per op, replacing the historical
	// O(reservations) booking-order recompute) and snapped back to
	// exactly zero whenever the site empties, so admit/release churn
	// cannot accumulate floating-point drift across occupancy cycles.
	ranUsed float64
}

// sharedTier is the regional transport/compute book: the only
// cross-site synchronization point, guarded by one short lock.
type sharedTier struct {
	mu     sync.Mutex
	tnUsed float64
	cnUsed float64
	count  int
}

// TopologyLedger is the concurrency-safe reservation book of a
// multi-site infrastructure: one reservation per admitted slice,
// booked against its host site's RAN capacity and the shared
// transport/compute tiers. All mutating operations are atomic — a
// reservation either fits entirely (site RAN and both shared tiers)
// and books, or leaves the ledger untouched — so concurrent admissions
// cannot overbook any tier.
//
// Locking is striped by site: each site's RAN book has its own mutex,
// and only the shared TN/CN tier takes a (short, O(1)) global lock, so
// reservations against different sites proceed in parallel. Running
// totals are deterministic for a deterministic operation sequence —
// callers that need bit-identical replays (the fleet controller)
// already serialize their admission/release events into a fixed order.
// A one-site ledger behaves exactly like the historical single-pool
// CapacityLedger.
type TopologyLedger struct {
	topo TopologyCapacity
	idx  map[SiteID]int

	sites  []siteTier
	shared sharedTier
	// sitemap maps a reservation id to its host-site index. An id is
	// claimed here (LoadOrStore) before fitting and unclaimed on
	// failure, which both rejects duplicate ids and lets Release find
	// the owning site without a global lock.
	sitemap sync.Map

	// m holds the optional observability gauges (nil = uninstrumented).
	// Gauge writes happen under the same site/shared locks as the
	// booking mutation they mirror and never feed back into any fit
	// decision, so instrumentation is result-invariant.
	m *ledgerMetrics
}

// ledgerMetrics are the ledger's exported occupancy gauges: per-site
// RAN utilization and reservation counts plus the shared-tier used
// fractions. All methods are nil-safe.
type ledgerMetrics struct {
	siteRAN   []*obs.Gauge
	siteCount []*obs.Gauge
	tnUtil    *obs.Gauge
	cnUtil    *obs.Gauge
	count     *obs.Gauge
}

// siteLocked refreshes site i's gauges. Caller holds the site lock.
func (m *ledgerMetrics) siteLocked(l *TopologyLedger, i int) {
	if m == nil {
		return
	}
	util := 0.0
	if c := l.topo.Sites[i].RanPRB; c > 0 {
		util = l.sites[i].ranUsed / c
	}
	m.siteRAN[i].Set(util)
	m.siteCount[i].Set(float64(len(l.sites[i].res)))
}

// sharedLocked refreshes the shared-tier gauges. Caller holds the
// shared lock.
func (m *ledgerMetrics) sharedLocked(l *TopologyLedger) {
	if m == nil {
		return
	}
	if l.topo.TnMbps > 0 {
		m.tnUtil.Set(l.shared.tnUsed / l.topo.TnMbps)
	}
	if l.topo.CnCPU > 0 {
		m.cnUtil.Set(l.shared.cnUsed / l.topo.CnCPU)
	}
	m.count.Set(float64(l.shared.count))
}

// Instrument registers the ledger's occupancy gauges with reg and
// seeds them from the current state. Call once, before the ledger sees
// concurrent traffic (registration itself is not synchronized with
// in-flight bookings). No-op on a nil registry.
func (l *TopologyLedger) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m := &ledgerMetrics{
		siteRAN:   make([]*obs.Gauge, len(l.topo.Sites)),
		siteCount: make([]*obs.Gauge, len(l.topo.Sites)),
		tnUtil: reg.Gauge("atlas_ledger_utilization",
			"Shared-tier used fraction by domain.", obs.L("domain", "tn")),
		cnUtil: reg.Gauge("atlas_ledger_utilization",
			"Shared-tier used fraction by domain.", obs.L("domain", "cn")),
		count: reg.Gauge("atlas_ledger_reservations",
			"Reservations currently booked across all sites."),
	}
	for i, s := range l.topo.Sites {
		site := obs.L("site", string(s.ID))
		m.siteRAN[i] = reg.Gauge("atlas_ledger_site_ran_utilization",
			"Per-site local RAN used fraction.", site)
		m.siteCount[i] = reg.Gauge("atlas_ledger_site_reservations",
			"Reservations hosted at the site.", site)
		reg.GaugeFunc("atlas_ledger_site_ran_capacity_prb",
			"Per-site local RAN capacity in PRBs.",
			func(c float64) func() float64 { return func() float64 { return c } }(s.RanPRB),
			site)
	}
	l.m = m
	l.lockAll()
	for i := range l.topo.Sites {
		m.siteLocked(l, i)
	}
	m.sharedLocked(l)
	l.unlockAll()
}

// CapacityLedger is the single-pool special case of the TopologyLedger:
// one site owning all RAN, shared tiers equal to the pool's TN/CN.
type CapacityLedger = TopologyLedger

// NewTopologyLedger builds an empty ledger over the given topology. It
// panics on an empty site list or duplicate site ids — topology
// construction is deterministic configuration, not runtime input.
func NewTopologyLedger(topo TopologyCapacity) *TopologyLedger {
	if len(topo.Sites) == 0 {
		panic("slicing: topology ledger needs at least one site")
	}
	topo.Sites = append([]SiteCapacity(nil), topo.Sites...)
	idx := make(map[SiteID]int, len(topo.Sites))
	for i, s := range topo.Sites {
		if _, dup := idx[s.ID]; dup {
			panic(fmt.Sprintf("slicing: duplicate site id %q", s.ID))
		}
		idx[s.ID] = i
	}
	l := &TopologyLedger{topo: topo, idx: idx, sites: make([]siteTier, len(topo.Sites))}
	for i := range l.sites {
		l.sites[i].res = map[string]Demand{}
	}
	return l
}

// NewCapacityLedger builds a single-pool ledger over the given
// aggregated capacity (one default site owning all RAN).
func NewCapacityLedger(capacity Capacity) *CapacityLedger {
	return NewTopologyLedger(SingleSite(capacity))
}

// Capacity returns the aggregated per-domain totals.
func (l *TopologyLedger) Capacity() Capacity { return l.topo.Total() }

// Topology returns the ledger's site/tier description.
func (l *TopologyLedger) Topology() TopologyCapacity {
	out := l.topo
	out.Sites = append([]SiteCapacity(nil), l.topo.Sites...)
	return out
}

// Sites returns the site ids in topology order.
func (l *TopologyLedger) Sites() []SiteID {
	out := make([]SiteID, len(l.topo.Sites))
	for i, s := range l.topo.Sites {
		out[i] = s.ID
	}
	return out
}

// site resolves a SiteID ("" = default site) to its index, or -1.
func (l *TopologyLedger) site(id SiteID) int {
	if id == "" {
		return 0
	}
	if i, ok := l.idx[id]; ok {
		return i
	}
	return -1
}

// siteOf looks up the host-site index of a booked id, or -1.
func (l *TopologyLedger) siteOf(id string) int {
	if v, ok := l.sitemap.Load(id); ok {
		return v.(int)
	}
	return -1
}

// freeLocked returns the headroom a reservation at site i sees: the
// site's local RAN free plus the shared-tier free. The caller holds
// both the site's and the shared tier's lock.
func (l *TopologyLedger) freeLocked(i int) Demand {
	return Demand{
		RanPRB: l.topo.Sites[i].RanPRB - l.sites[i].ranUsed,
		TnMbps: l.topo.TnMbps - l.shared.tnUsed,
		CnCPU:  l.topo.CnCPU - l.shared.cnUsed,
	}
}

// ReserveAt books a new reservation for id at the given site ("" =
// default site). It fails when the site is unknown, the id already
// holds a reservation, or the demand does not fit the site's free RAN
// plus the shared tiers.
func (l *TopologyLedger) ReserveAt(site SiteID, id string, d Demand) bool {
	i := l.site(site)
	if i < 0 {
		return false
	}
	// Claim the id before fitting: concurrent ReserveAt calls for the
	// same id race on this one lock-free registration, and exactly one
	// proceeds.
	if _, dup := l.sitemap.LoadOrStore(id, i); dup {
		return false
	}
	st := &l.sites[i]
	st.mu.Lock()
	l.shared.mu.Lock()
	if !d.Fits(l.freeLocked(i)) {
		l.shared.mu.Unlock()
		st.mu.Unlock()
		l.sitemap.Delete(id)
		return false
	}
	st.res[id] = d
	st.ranUsed += d.RanPRB
	l.shared.tnUsed += d.TnMbps
	l.shared.cnUsed += d.CnCPU
	l.shared.count++
	l.m.siteLocked(l, i)
	l.m.sharedLocked(l)
	l.shared.mu.Unlock()
	st.mu.Unlock()
	return true
}

// Reserve books a new reservation for id at the default site — the
// single-pool API.
func (l *TopologyLedger) Reserve(id string, d Demand) bool {
	return l.ReserveAt("", id, d)
}

// Update resizes an existing reservation in place at its host site.
// Shrinking always succeeds; growing succeeds only when the extra
// demand fits the site's RAN and the shared tiers.
func (l *TopologyLedger) Update(id string, d Demand) bool {
	i := l.siteOf(id)
	if i < 0 {
		return false
	}
	st := &l.sites[i]
	st.mu.Lock()
	l.shared.mu.Lock()
	old, ok := st.res[id]
	if !ok {
		l.shared.mu.Unlock()
		st.mu.Unlock()
		return false
	}
	free := l.freeLocked(i).Add(old)
	if !d.Fits(free) {
		l.shared.mu.Unlock()
		st.mu.Unlock()
		return false
	}
	st.res[id] = d
	st.ranUsed += d.RanPRB - old.RanPRB
	l.shared.tnUsed += d.TnMbps - old.TnMbps
	l.shared.cnUsed += d.CnCPU - old.CnCPU
	l.m.siteLocked(l, i)
	l.m.sharedLocked(l)
	l.shared.mu.Unlock()
	st.mu.Unlock()
	return true
}

// Release frees id's reservation, returning the freed demand (zero when
// the id held none).
func (l *TopologyLedger) Release(id string) Demand {
	i := l.siteOf(id)
	if i < 0 {
		return Demand{}
	}
	st := &l.sites[i]
	st.mu.Lock()
	l.shared.mu.Lock()
	d, ok := st.res[id]
	if !ok {
		// The id is claimed by an in-flight ReserveAt that has not
		// booked yet; from this caller's view nothing is reserved.
		l.shared.mu.Unlock()
		st.mu.Unlock()
		return Demand{}
	}
	delete(st.res, id)
	st.ranUsed -= d.RanPRB
	if len(st.res) == 0 {
		// Snap the running total back to exactly zero on an empty
		// site: incremental subtraction cannot drift across occupancy
		// cycles.
		st.ranUsed = 0
	}
	l.shared.tnUsed -= d.TnMbps
	l.shared.cnUsed -= d.CnCPU
	l.shared.count--
	if l.shared.count == 0 {
		l.shared.tnUsed, l.shared.cnUsed = 0, 0
	}
	l.m.siteLocked(l, i)
	l.m.sharedLocked(l)
	l.shared.mu.Unlock()
	st.mu.Unlock()
	l.sitemap.Delete(id)
	return d
}

// Reserved returns id's current reservation.
func (l *TopologyLedger) Reserved(id string) (Demand, bool) {
	i := l.siteOf(id)
	if i < 0 {
		return Demand{}, false
	}
	st := &l.sites[i]
	st.mu.Lock()
	d, ok := st.res[id]
	st.mu.Unlock()
	return d, ok
}

// SiteOf returns the site hosting id's reservation.
func (l *TopologyLedger) SiteOf(id string) (SiteID, bool) {
	i := l.siteOf(id)
	if i < 0 {
		return "", false
	}
	st := &l.sites[i]
	st.mu.Lock()
	_, ok := st.res[id]
	st.mu.Unlock()
	if !ok {
		return "", false
	}
	return l.topo.Sites[i].ID, true
}

// lockAll acquires every site lock (ascending index) plus the shared
// lock — the consistent-snapshot path the aggregate accessors use.
// Mutating ops nest site-then-shared in the same order, so the two
// patterns cannot deadlock.
func (l *TopologyLedger) lockAll() {
	for i := range l.sites {
		l.sites[i].mu.Lock()
	}
	l.shared.mu.Lock()
}

func (l *TopologyLedger) unlockAll() {
	l.shared.mu.Unlock()
	for i := len(l.sites) - 1; i >= 0; i-- {
		l.sites[i].mu.Unlock()
	}
}

// usedAllLocked sums the per-site RAN totals (ascending site order)
// with the shared tiers. Caller holds all locks.
func (l *TopologyLedger) usedAllLocked() Demand {
	used := Demand{TnMbps: l.shared.tnUsed, CnCPU: l.shared.cnUsed}
	for i := range l.sites {
		used.RanPRB += l.sites[i].ranUsed
	}
	return used
}

// Used returns the total booked demand across every site.
func (l *TopologyLedger) Used() Demand {
	l.lockAll()
	defer l.unlockAll()
	return l.usedAllLocked()
}

// Free returns the aggregate per-domain headroom (total capacity minus
// total booked demand). Multi-site callers deciding placement should
// use FreeAt — aggregate RAN headroom may be fragmented across sites.
func (l *TopologyLedger) Free() Demand {
	l.lockAll()
	defer l.unlockAll()
	return l.topo.Total().Free(l.usedAllLocked())
}

// FreeAt returns the headroom a reservation at the given site sees:
// its local RAN free plus the shared-tier free ("" = default site; a
// zero Demand for unknown sites).
func (l *TopologyLedger) FreeAt(site SiteID) Demand {
	i := l.site(site)
	if i < 0 {
		return Demand{}
	}
	st := &l.sites[i]
	st.mu.Lock()
	l.shared.mu.Lock()
	free := l.freeLocked(i)
	l.shared.mu.Unlock()
	st.mu.Unlock()
	return free
}

// SiteFree is one site's headroom in a FreeAllSites snapshot.
type SiteFree struct {
	Site SiteID
	Free Demand
}

// FreeAllSites returns every site's headroom (local RAN free plus the
// shared-tier free), in topology order — one consistent snapshot for
// placement scoring.
func (l *TopologyLedger) FreeAllSites() []SiteFree {
	l.lockAll()
	defer l.unlockAll()
	out := make([]SiteFree, len(l.topo.Sites))
	for i, s := range l.topo.Sites {
		out[i] = SiteFree{Site: s.ID, Free: l.freeLocked(i)}
	}
	return out
}

// FitsAt reports whether a new demand would fit at the given site right
// now (advisory: book with ReserveAt).
func (l *TopologyLedger) FitsAt(site SiteID, d Demand) bool {
	i := l.site(site)
	if i < 0 {
		return false
	}
	st := &l.sites[i]
	st.mu.Lock()
	l.shared.mu.Lock()
	ok := d.Fits(l.freeLocked(i))
	l.shared.mu.Unlock()
	st.mu.Unlock()
	return ok
}

// Fits reports whether a new demand would fit at some site right now
// (for a single-pool ledger: the historical aggregate check).
func (l *TopologyLedger) Fits(d Demand) bool {
	l.lockAll()
	defer l.unlockAll()
	for i := range l.topo.Sites {
		if d.Fits(l.freeLocked(i)) {
			return true
		}
	}
	return false
}

// Utilization returns the aggregate per-domain used fraction.
func (l *TopologyLedger) Utilization() Utilization {
	l.lockAll()
	defer l.unlockAll()
	return l.topo.Total().Utilization(l.usedAllLocked())
}

// SiteUtilizations returns every site's local RAN used fraction and
// reservation count, in topology order.
func (l *TopologyLedger) SiteUtilizations() []SiteUtilization {
	l.lockAll()
	defer l.unlockAll()
	out := make([]SiteUtilization, len(l.topo.Sites))
	for i, s := range l.topo.Sites {
		out[i] = SiteUtilization{Site: s.ID, Count: len(l.sites[i].res)}
		if s.RanPRB > 0 {
			out[i].RAN = l.sites[i].ranUsed / s.RanPRB
		}
	}
	return out
}

// Count returns how many reservations the ledger holds.
func (l *TopologyLedger) Count() int {
	l.shared.mu.Lock()
	defer l.shared.mu.Unlock()
	return l.shared.count
}
