package slicing

import "math/rand"

// OnlinePolicy is a configuration-selection strategy interacting with a
// live network: each configuration interval it proposes a configuration,
// then observes the delivered usage and QoE. Atlas's online learner and
// every comparison baseline (direct BO, DLDA, VirtualEdge) implement
// this interface, so the evaluation harness can run them identically.
type OnlinePolicy interface {
	// Name identifies the method in reports.
	Name() string
	// Next returns the configuration to apply at iteration iter.
	Next(iter int, rng *rand.Rand) Config
	// Observe reports the measured outcome of iteration iter.
	Observe(iter int, cfg Config, usage, qoe float64)
}

// Regret accumulates the paper's online-learning regret metrics
// (Eqs. 10–11) against the optimal policy (φ*): the cumulative extra
// resource usage and the cumulative QoE shortfall.
type Regret struct {
	OptUsage float64 // F(φ*)
	OptQoE   float64 // Q(φ*)

	CumUsage float64 // Σ (F(φ_j) − F(φ*))
	CumQoE   float64 // Σ max(Q(φ*) − Q(φ_j), 0)
	N        int
}

// Observe folds one iteration's outcome into the regret.
func (r *Regret) Observe(usage, qoe float64) {
	r.CumUsage += usage - r.OptUsage
	if d := r.OptQoE - qoe; d > 0 {
		r.CumQoE += d
	}
	r.N++
}

// AvgUsageRegret returns the mean per-iteration usage regret (the
// paper's "avg usage regret", reported in percent of total resources).
func (r *Regret) AvgUsageRegret() float64 {
	if r.N == 0 {
		return 0
	}
	return r.CumUsage / float64(r.N)
}

// AvgQoERegret returns the mean per-iteration QoE regret.
func (r *Regret) AvgQoERegret() float64 {
	if r.N == 0 {
		return 0
	}
	return r.CumQoE / float64(r.N)
}
