package slicing

import (
	"hash/fnv"
	"math"

	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/simnet/app"
	"github.com/atlas-slicing/atlas/internal/stats"
)

// This file is the service-class layer: the vocabulary that turns "one
// hard-coded 540p video-analytics slice" into a catalog of heterogeneous
// tenants. A ServiceClass bundles a named application/traffic profile, a
// pluggable quality-of-experience model, an SLA, and a (possibly
// time-varying) traffic model. Every layer above — the simulator, the
// offline trainer, the online learner, the orchestrator, the CLI —
// consumes classes instead of baked-in prototype constants, so one
// engine serves video analytics, small-frame teleoperation, IoT
// telemetry bursts, and bulk streaming side by side.

// QoEModel maps one configuration interval's observable Trace to a
// unified quality of experience in [0, 1]. The paper's model
// (AvailabilityQoE) is the fraction of frames meeting a latency
// threshold; other service classes judge the same trace differently —
// URLLC-style classes by a tail percentile against a deadline,
// eMBB-style classes by delivered goodput against a floor.
type QoEModel interface {
	// Name identifies the model in reports and scenario catalogs.
	Name() string
	// Eval returns the QoE of a trace, in [0, 1] by construction.
	Eval(tr Trace) float64
}

// AvailabilityQoE is the paper's unified QoE: the fraction of frames
// whose end-to-end latency stays at or below ThresholdMs.
type AvailabilityQoE struct {
	ThresholdMs float64
}

// Name implements QoEModel.
func (q AvailabilityQoE) Name() string { return "latency-availability" }

// Eval implements QoEModel.
func (q AvailabilityQoE) Eval(tr Trace) float64 {
	return stats.FracBelow(tr.LatenciesMs, q.ThresholdMs)
}

// PercentileDeadlineQoE is the URLLC-style model: the QoE is governed by
// the Percentile-th latency (e.g. p95) against a hard DeadlineMs. A
// trace whose tail latency meets the deadline scores 1; beyond it the
// score decays as deadline/tail, so "how badly the tail missed" stays
// visible to the learner instead of collapsing to zero.
type PercentileDeadlineQoE struct {
	Percentile float64 // in (0, 1), e.g. 0.95
	DeadlineMs float64
}

// Name implements QoEModel.
func (q PercentileDeadlineQoE) Name() string { return "deadline-percentile" }

// Eval implements QoEModel.
func (q PercentileDeadlineQoE) Eval(tr Trace) float64 {
	if len(tr.LatenciesMs) == 0 || q.DeadlineMs <= 0 {
		return 0
	}
	p := q.Percentile
	if p <= 0 || p >= 1 {
		p = 0.95
	}
	tail := stats.Quantile(tr.LatenciesMs, p)
	if tail <= q.DeadlineMs {
		return 1
	}
	return mathx.Clip(q.DeadlineMs/tail, 0, 1)
}

// ThroughputFloorQoE is the eMBB-style model: the QoE is the delivered
// uplink goodput relative to a contracted FloorMbps, capped at 1.
type ThroughputFloorQoE struct {
	FloorMbps float64
}

// Name implements QoEModel.
func (q ThroughputFloorQoE) Name() string { return "throughput-floor" }

// Eval implements QoEModel.
func (q ThroughputFloorQoE) Eval(tr Trace) float64 {
	if q.FloorMbps <= 0 {
		return 0
	}
	return mathx.Clip(tr.ULThroughputMbps/q.FloorMbps, 0, 1)
}

// TrafficModel produces a slice's demand trajectory: the number of
// concurrent on-the-fly frames for each configuration interval. Models
// are pure functions of (interval, base, seed) — no internal state — so
// mixed-class multi-slice runs stay deterministic at any worker count.
type TrafficModel interface {
	// Name identifies the model in reports and scenario catalogs.
	Name() string
	// TrafficAt returns the demand at the given interval. base is the
	// slice's nominal traffic and seed a per-slice deterministic seed;
	// implementations must return at least 1.
	TrafficAt(interval, base int, seed int64) int
}

// ConstantTraffic is the paper's model: the nominal demand every
// interval.
type ConstantTraffic struct{}

// Name implements TrafficModel.
func (ConstantTraffic) Name() string { return "constant" }

// TrafficAt implements TrafficModel.
func (ConstantTraffic) TrafficAt(_, base int, _ int64) int {
	if base < 1 {
		return 1
	}
	return base
}

// DiurnalTraffic swings sinusoidally between MinFactor·base and base
// over PeriodIntervals configuration intervals (a compressed
// day-night cycle).
type DiurnalTraffic struct {
	PeriodIntervals int     // full cycle length; <= 0 defaults to 24
	MinFactor       float64 // trough as a fraction of base, in [0, 1]
}

// Name implements TrafficModel.
func (DiurnalTraffic) Name() string { return "diurnal" }

// TrafficAt implements TrafficModel.
func (d DiurnalTraffic) TrafficAt(interval, base int, _ int64) int {
	period := d.PeriodIntervals
	if period <= 0 {
		period = 24
	}
	minf := mathx.Clip(d.MinFactor, 0, 1)
	phase := 2 * math.Pi * float64(interval%period) / float64(period)
	factor := minf + (1-minf)*0.5*(1+math.Sin(phase))
	t := int(math.Round(factor * float64(base)))
	if t < 1 {
		return 1
	}
	return t
}

// BurstyTraffic draws each interval's demand from a Poisson
// distribution with mean base (IoT telemetry: long quiet stretches
// punctuated by reporting bursts). The draw's randomness derives from
// (seed, interval) alone, so trajectories replay identically.
type BurstyTraffic struct{}

// Name implements TrafficModel.
func (BurstyTraffic) Name() string { return "bursty-poisson" }

// TrafficAt implements TrafficModel.
func (BurstyTraffic) TrafficAt(interval, base int, seed int64) int {
	if base < 1 {
		base = 1
	}
	rng := mathx.NewRNG(mathx.ChildSeed(seed, interval))
	// Knuth's method is fine at the small means slices use.
	limit := math.Exp(-float64(base))
	k, p := 0, 1.0
	for p > limit && k < 64*base {
		k++
		p *= rng.Float64()
	}
	if k-1 < 1 {
		return 1
	}
	return k - 1
}

// ServiceClass is one named tenant template: the application's traffic
// profile, how its quality of experience is judged, the contracted SLA,
// and how its demand varies over time. The zero App profile means "use
// the environment's built-in prototype application".
type ServiceClass struct {
	// Name identifies the class (e.g. "video-analytics", "teleop").
	Name string
	// App is the workload the episode pipeline runs: frame sizes,
	// result sizes, loading behavior, compute demand.
	App app.Profile
	// QoE judges an episode trace; nil falls back to the SLA's
	// latency-availability model.
	QoE QoEModel
	// SLA carries the availability target E (the required QoE level for
	// every model) and the latency threshold Y (consumed by the
	// latency-based models and the policy encoding).
	SLA SLA
	// Traffic is the nominal demand in concurrent on-the-fly frames.
	Traffic int
	// TrafficModel shapes the demand over intervals; nil means
	// constant.
	TrafficModel TrafficModel
}

// DefaultServiceClass is the paper's prototype: 540p video analytics
// under the latency-availability QoE with constant traffic.
func DefaultServiceClass() ServiceClass {
	sla := DefaultSLA()
	return ServiceClass{
		Name:         "video-analytics",
		App:          app.DefaultProfile(),
		QoE:          AvailabilityQoE{ThresholdMs: sla.ThresholdMs},
		SLA:          sla,
		Traffic:      1,
		TrafficModel: ConstantTraffic{},
	}
}

// HasApp reports whether the class carries its own application profile
// (as opposed to deferring to the environment's built-in one).
func (c ServiceClass) HasApp() bool { return c.App.FrameKBitMean > 0 }

// QoEModelName returns the class's QoE model name ("latency-availability"
// when deferring to the SLA).
func (c ServiceClass) QoEModelName() string {
	if c.QoE == nil {
		return AvailabilityQoE{}.Name()
	}
	return c.QoE.Name()
}

// TrafficModelName returns the class's traffic model name ("constant"
// when none is set).
func (c ServiceClass) TrafficModelName() string {
	if c.TrafficModel == nil {
		return ConstantTraffic{}.Name()
	}
	return c.TrafficModel.Name()
}

// Eval judges a trace under the class's QoE model (falling back to the
// SLA's latency-availability model).
func (c ServiceClass) Eval(tr Trace) float64 {
	if c.QoE == nil {
		return tr.QoE(c.SLA)
	}
	return c.QoE.Eval(tr)
}

// WithSLA returns a copy of the class bound to a different SLA. For
// latency-availability QoE models the threshold follows the new SLA's,
// so an SLA override changes what the model actually judges instead of
// leaving the QoE frozen at the class's construction threshold.
func (c ServiceClass) WithSLA(sla SLA) ServiceClass {
	c.SLA = sla
	if q, ok := c.QoE.(AvailabilityQoE); ok && q.ThresholdMs != sla.ThresholdMs {
		c.QoE = AvailabilityQoE{ThresholdMs: sla.ThresholdMs}
	}
	return c
}

// TrafficAt returns the class's demand at one interval given the
// slice's nominal traffic and deterministic seed.
func (c ServiceClass) TrafficAt(interval, base int, seed int64) int {
	if base < 1 {
		base = 1
	}
	if c.TrafficModel == nil {
		return base
	}
	t := c.TrafficModel.TrafficAt(interval, base, seed)
	if t < 1 {
		return 1
	}
	return t
}

// Feature is a stable [0, 1) fingerprint of the class's QoE model,
// used as a policy-encoding input so one surrogate can tell service
// classes apart.
func (c ServiceClass) Feature() float64 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(c.QoEModelName()))
	return float64(h.Sum32()%1024) / 1024
}

// ClassEnv is a network environment that can run episodes under a
// specific service class's application profile. The bundled simulator
// and real-network surrogate implement it; plain Envs fall back to their
// built-in prototype application via EpisodeFor.
type ClassEnv interface {
	Env
	// EpisodeClass runs one configuration interval with the class's
	// application workload.
	EpisodeClass(class ServiceClass, cfg Config, traffic int, seed int64) Trace
}

// EpisodeFor runs one episode under a class when both the environment
// and the class support it, falling back to the plain prototype episode
// otherwise. A nil class always takes the plain path.
func EpisodeFor(env Env, class *ServiceClass, cfg Config, traffic int, seed int64) Trace {
	if class != nil {
		if ce, ok := env.(ClassEnv); ok {
			return ce.EpisodeClass(*class, cfg, traffic, seed)
		}
	}
	return env.Episode(cfg, traffic, seed)
}

// EvalFor judges one trace: under the class's QoE model when class is
// non-nil, else under the SLA's latency-availability model. It is the
// single evaluation path every layer (offline trainer, online learner,
// orchestrator, lifecycle) shares.
func EvalFor(class *ServiceClass, sla SLA, tr Trace) float64 {
	if class != nil {
		return class.Eval(tr)
	}
	return tr.QoE(sla)
}
