package slicing

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/atlas-slicing/atlas/internal/mathx"
)

func TestConfigVectorRoundTrip(t *testing.T) {
	c := Config{BandwidthUL: 10, BandwidthDL: 20, MCSOffsetUL: 3, MCSOffsetDL: 4, BackhaulMbps: 50, CPURatio: 0.7}
	if got := ConfigFromVector(c.Vector()); got != c {
		t.Fatalf("roundtrip = %+v", got)
	}
}

func TestNormalizeDenormalizeRoundTrip(t *testing.T) {
	space := DefaultConfigSpace()
	f := func(raw [6]float64) bool {
		u := make(mathx.Vector, 6)
		for i, x := range raw {
			if math.IsNaN(x) {
				return true
			}
			u[i] = math.Mod(math.Abs(x), 1)
		}
		cfg := space.Denormalize(u)
		back := space.Normalize(cfg)
		for i := range u {
			if math.Abs(back[i]-u[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUsageBounds(t *testing.T) {
	space := DefaultConfigSpace()
	if got := space.Usage(Config{}); got != 0 {
		t.Fatalf("empty usage = %v", got)
	}
	if got := space.Usage(space.Max); math.Abs(got-1) > 1e-12 {
		t.Fatalf("full usage = %v", got)
	}
	rng := mathx.NewRNG(1)
	for i := 0; i < 200; i++ {
		u := space.Usage(space.Sample(rng))
		if u < 0 || u > 1 {
			t.Fatalf("usage %v out of range", u)
		}
	}
}

func TestClampRestrictsToBox(t *testing.T) {
	space := DefaultConfigSpace()
	c := Config{BandwidthUL: 500, BandwidthDL: -10, CPURatio: 3}
	got := space.Clamp(c)
	if got.BandwidthUL != 50 || got.BandwidthDL != 0 || got.CPURatio != 1 {
		t.Fatalf("clamp = %+v", got)
	}
}

func TestConnectivityFloor(t *testing.T) {
	c := ApplyConnectivityFloor(Config{})
	if c.BandwidthUL != MinULPRB || c.BandwidthDL != MinDLPRB {
		t.Fatalf("floor = %+v", c)
	}
	rich := ApplyConnectivityFloor(Config{BandwidthUL: 40, BandwidthDL: 40})
	if rich.BandwidthUL != 40 || rich.BandwidthDL != 40 {
		t.Fatal("floor must not reduce rich allocations")
	}
}

func TestParamsVectorRoundTrip(t *testing.T) {
	p := SimParams{BaselineLoss: 40, ENBNoiseFig: 3, UENoiseFig: 7, BackhaulBW: 5, BackhaulDelay: 2, ComputeTime: 1, LoadingTime: 4}
	if got := ParamsFromVector(p.Vector()); got != p {
		t.Fatalf("roundtrip = %+v", got)
	}
}

func TestParamDistanceProperties(t *testing.T) {
	space := DefaultParamSpace()
	if d := space.Distance(space.Original); d != 0 {
		t.Fatalf("distance to original = %v", d)
	}
	// Distance is bounded by 1 inside the box (RMS of normalized deltas).
	rng := mathx.NewRNG(2)
	for i := 0; i < 200; i++ {
		u := make(mathx.Vector, ParamDim)
		for j := range u {
			u[j] = rng.Float64()
		}
		p := space.Denormalize(u)
		if d := space.Distance(p); d < 0 || d > 1 {
			t.Fatalf("distance %v out of [0,1]", d)
		}
	}
}

func TestParamSampleRespectsTrustRegion(t *testing.T) {
	space := DefaultParamSpace()
	rng := mathx.NewRNG(3)
	for i := 0; i < 300; i++ {
		p := space.Sample(rng)
		if !space.InTrustRegion(p) {
			t.Fatalf("sample %v outside trust region (d=%v)", p, space.Distance(p))
		}
	}
}

func TestSampleNearContractsIntoRegion(t *testing.T) {
	space := DefaultParamSpace()
	space.H = 0.05 // very tight region
	rng := mathx.NewRNG(4)
	for i := 0; i < 100; i++ {
		p := space.SampleNear(rng, space.Hi, 0.5)
		if !space.InTrustRegion(p) {
			t.Fatalf("SampleNear escaped tight region: d=%v", space.Distance(p))
		}
	}
}

func TestSLAQoE(t *testing.T) {
	sla := SLA{ThresholdMs: 100, Availability: 0.9}
	q := sla.QoE([]float64{50, 80, 100, 150})
	if q != 0.75 {
		t.Fatalf("QoE = %v", q)
	}
	if sla.Satisfied(q) {
		t.Fatal("0.75 should not satisfy E=0.9")
	}
	if !sla.Satisfied(0.95) {
		t.Fatal("0.95 should satisfy")
	}
}

func TestRegretAccounting(t *testing.T) {
	r := Regret{OptUsage: 0.2, OptQoE: 0.9}
	r.Observe(0.3, 0.8) // +0.1 usage, +0.1 qoe shortfall
	r.Observe(0.2, 0.95)
	if math.Abs(r.AvgUsageRegret()-0.05) > 1e-12 {
		t.Fatalf("usage regret = %v", r.AvgUsageRegret())
	}
	if math.Abs(r.AvgQoERegret()-0.05) > 1e-12 {
		t.Fatalf("qoe regret = %v", r.AvgQoERegret())
	}
	var empty Regret
	if empty.AvgUsageRegret() != 0 || empty.AvgQoERegret() != 0 {
		t.Fatal("empty regret must be zero")
	}
}

func TestQoEExceedingOptimumIsNotNegativeRegret(t *testing.T) {
	r := Regret{OptUsage: 0.2, OptQoE: 0.9}
	r.Observe(0.2, 1.0) // better QoE than optimal: no shortfall credit
	if r.AvgQoERegret() != 0 {
		t.Fatalf("qoe regret = %v, want 0", r.AvgQoERegret())
	}
}
