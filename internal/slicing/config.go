// Package slicing defines the domain vocabulary of Atlas: the 6-dim
// network configuration space (paper Table 2), the 7-dim simulation
// parameter space (paper Table 3), service-level agreements, quality of
// experience, and resource-usage accounting.
//
// The numeric conventions follow the paper's prototype: an LTE cell with
// 10 MHz (50 physical resource blocks), a transport link capped at
// 100 Mbps, and a Docker edge server whose CPU share is a ratio in
// [0, 1].
package slicing

import (
	"fmt"
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/mathx"
)

// ConfigDim is the dimensionality of the slice configuration action.
const ConfigDim = 6

// Minimum radio resources kept for connectivity, per the paper's
// evaluation ("we set a minimum of 6 uplink and 3 downlink PRBs for
// maintaining radio connectivities of users").
const (
	MinULPRB = 6
	MinDLPRB = 3
)

// Config is a slice service configuration a_t (paper Table 2): the
// cross-domain resources assigned to one slice for one configuration
// interval.
type Config struct {
	BandwidthUL  float64 // maximum uplink PRBs, [0, 50]
	BandwidthDL  float64 // maximum downlink PRBs, [0, 50]
	MCSOffsetUL  float64 // uplink MCS backoff steps, [0, 10]
	MCSOffsetDL  float64 // downlink MCS backoff steps, [0, 10]
	BackhaulMbps float64 // transport bandwidth, [0, 100] Mbps
	CPURatio     float64 // CPU share of the edge container, [0, 1]
}

// ConfigSpace describes the axis-aligned box of valid configurations
// (the constraint 0 ≤ a_t ≤ A of the paper's problem P1).
type ConfigSpace struct {
	Max Config // per-dimension maxima A
}

// DefaultConfigSpace returns the prototype's configuration space
// (Table 2).
func DefaultConfigSpace() ConfigSpace {
	return ConfigSpace{Max: Config{
		BandwidthUL:  50,
		BandwidthDL:  50,
		MCSOffsetUL:  10,
		MCSOffsetDL:  10,
		BackhaulMbps: 100,
		CPURatio:     1.0,
	}}
}

// Vector returns the configuration as an ordered vector
// [ulPRB, dlPRB, mcsUL, mcsDL, backhaul, cpu].
func (c Config) Vector() mathx.Vector {
	return mathx.Vector{c.BandwidthUL, c.BandwidthDL, c.MCSOffsetUL, c.MCSOffsetDL, c.BackhaulMbps, c.CPURatio}
}

// ConfigFromVector is the inverse of Config.Vector. It panics if v does
// not have ConfigDim elements.
func ConfigFromVector(v mathx.Vector) Config {
	if len(v) != ConfigDim {
		panic(fmt.Sprintf("slicing: config vector needs %d dims, got %d", ConfigDim, len(v)))
	}
	return Config{
		BandwidthUL:  v[0],
		BandwidthDL:  v[1],
		MCSOffsetUL:  v[2],
		MCSOffsetDL:  v[3],
		BackhaulMbps: v[4],
		CPURatio:     v[5],
	}
}

// vec is Config.Vector as a fixed-size array: the allocation-free form
// the hot-path helpers below iterate over.
func (c Config) vec() [ConfigDim]float64 {
	return [ConfigDim]float64{c.BandwidthUL, c.BandwidthDL, c.MCSOffsetUL, c.MCSOffsetDL, c.BackhaulMbps, c.CPURatio}
}

// Normalize maps a configuration into [0,1]^6 relative to the space
// maxima. Zero maxima map to zero.
func (s ConfigSpace) Normalize(c Config) mathx.Vector {
	out := make(mathx.Vector, ConfigDim)
	s.NormalizeInto(c, out)
	return out
}

// NormalizeInto writes Normalize(c) into out (length ConfigDim) without
// allocating — the form candidate-pool encoding uses per scan.
func (s ConfigSpace) NormalizeInto(c Config, out []float64) {
	maxv := s.Max.vec()
	cv := c.vec()
	for i := range cv {
		if maxv[i] > 0 {
			out[i] = cv[i] / maxv[i]
		} else {
			out[i] = 0
		}
	}
}

// Denormalize maps u ∈ [0,1]^6 back to a configuration, clamping to the
// box.
func (s ConfigSpace) Denormalize(u mathx.Vector) Config {
	if len(u) != ConfigDim {
		panic(fmt.Sprintf("slicing: normalized vector needs %d dims, got %d", ConfigDim, len(u)))
	}
	maxv := s.Max.Vector()
	out := make(mathx.Vector, ConfigDim)
	for i := range u {
		out[i] = mathx.Clip(u[i], 0, 1) * maxv[i]
	}
	return ConfigFromVector(out)
}

// Clamp returns c restricted to the box [0, Max].
func (s ConfigSpace) Clamp(c Config) Config {
	maxv := s.Max.Vector()
	cv := c.Vector()
	for i := range cv {
		cv[i] = mathx.Clip(cv[i], 0, maxv[i])
	}
	return ConfigFromVector(cv)
}

// Sample draws a configuration uniformly from the box. It is
// allocation-free: the draw order and per-element arithmetic are
// exactly Denormalize on a fresh uniform vector, so results are
// bit-identical to the allocating form at every RNG state.
func (s ConfigSpace) Sample(rng *rand.Rand) Config {
	var u [ConfigDim]float64
	for i := range u {
		u[i] = rng.Float64()
	}
	maxv := s.Max.vec()
	for i := range u {
		u[i] = mathx.Clip(u[i], 0, 1) * maxv[i]
	}
	return Config{
		BandwidthUL:  u[0],
		BandwidthDL:  u[1],
		MCSOffsetUL:  u[2],
		MCSOffsetDL:  u[3],
		BackhaulMbps: u[4],
		CPURatio:     u[5],
	}
}

// Usage is the resource-usage objective F(a) = |a/A|₁ / dim, reported as
// a fraction in [0, 1]. The paper reports it as a percentage; dividing by
// the dimension keeps the value in [0, 1] so it composes with QoE in the
// Lagrangian without additional scaling. Allocation-free; the summation
// order matches Normalize(c).Sum() term for term.
func (s ConfigSpace) Usage(c Config) float64 {
	maxv := s.Max.vec()
	cv := c.vec()
	var sum float64
	for i := range cv {
		term := 0.0
		if maxv[i] > 0 {
			term = cv[i] / maxv[i]
		}
		sum += term
	}
	return sum / ConfigDim
}

// ApplyConnectivityFloor raises the radio allocations to the minimum PRB
// counts that keep users attached. This mirrors the prototype, where the
// scheduler always grants a connectivity floor regardless of the slice
// configuration. The floor affects the delivered service, not the billed
// usage.
func ApplyConnectivityFloor(c Config) Config {
	if c.BandwidthUL < MinULPRB {
		c.BandwidthUL = MinULPRB
	}
	if c.BandwidthDL < MinDLPRB {
		c.BandwidthDL = MinDLPRB
	}
	return c
}

// String implements fmt.Stringer with the Table 2 field order.
func (c Config) String() string {
	return fmt.Sprintf("ul=%.1fPRB dl=%.1fPRB mcsUL=%.1f mcsDL=%.1f bh=%.1fMbps cpu=%.2f",
		c.BandwidthUL, c.BandwidthDL, c.MCSOffsetUL, c.MCSOffsetDL, c.BackhaulMbps, c.CPURatio)
}
