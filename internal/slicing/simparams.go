package slicing

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/mathx"
)

// ParamDim is the dimensionality of the simulation parameter vector.
const ParamDim = 7

// SimParams are the tunable simulation parameters of the network
// simulator (paper Table 3). Stage 1 searches this space to shrink the
// sim-to-real discrepancy.
type SimParams struct {
	BaselineLoss  float64 // reference pathloss at 1 m in the log-distance model, dB
	ENBNoiseFig   float64 // eNB receiver noise figure (uplink reception), dB
	UENoiseFig    float64 // UE receiver noise figure (downlink reception), dB
	BackhaulBW    float64 // additional transport bandwidth, Mbps
	BackhaulDelay float64 // additional transport delay, ms
	ComputeTime   float64 // additional edge compute time, ms
	LoadingTime   float64 // additional frame loading time in the UE, ms
}

// Vector returns the parameters in Table 3 order.
func (p SimParams) Vector() mathx.Vector {
	return mathx.Vector{p.BaselineLoss, p.ENBNoiseFig, p.UENoiseFig, p.BackhaulBW, p.BackhaulDelay, p.ComputeTime, p.LoadingTime}
}

// ParamsFromVector is the inverse of SimParams.Vector. It panics if v
// does not have ParamDim elements.
func ParamsFromVector(v mathx.Vector) SimParams {
	if len(v) != ParamDim {
		panic(fmt.Sprintf("slicing: param vector needs %d dims, got %d", ParamDim, len(v)))
	}
	return SimParams{
		BaselineLoss:  v[0],
		ENBNoiseFig:   v[1],
		UENoiseFig:    v[2],
		BackhaulBW:    v[3],
		BackhaulDelay: v[4],
		ComputeTime:   v[5],
		LoadingTime:   v[6],
	}
}

// DefaultSimParams are the simulator defaults before any calibration:
// NS-3's LogDistancePropagationLossModel reference loss and the LENA
// noise figures, with zero additional transport/compute/loading terms
// (paper Table 4, "Original Simulator" row).
func DefaultSimParams() SimParams {
	return SimParams{
		BaselineLoss: 38.57,
		ENBNoiseFig:  5.0,
		UENoiseFig:   9.0,
	}
}

// ParamSpace is the axis-aligned search box for simulation parameters
// together with the trust region |x − x̂|₂ ≤ H around the original
// parameters x̂ (paper Eq. 2). Distances are computed on range-normalized
// coordinates so heterogeneous units compare sensibly.
type ParamSpace struct {
	Lo, Hi   SimParams // box bounds
	Original SimParams // x̂
	H        float64   // trust-region radius on normalized distance
}

// DefaultParamSpace returns the search space used throughout the
// evaluation: ±10 dB around the pathloss reference, the full plausible
// noise-figure ranges, and up to 20 units of each additional term.
func DefaultParamSpace() ParamSpace {
	return ParamSpace{
		Lo: SimParams{BaselineLoss: 30, ENBNoiseFig: 0, UENoiseFig: 0,
			BackhaulBW: 0, BackhaulDelay: 0, ComputeTime: 0, LoadingTime: 0},
		Hi: SimParams{BaselineLoss: 50, ENBNoiseFig: 10, UENoiseFig: 15,
			BackhaulBW: 30, BackhaulDelay: 30, ComputeTime: 30, LoadingTime: 30},
		Original: DefaultSimParams(),
		H:        0.5,
	}
}

// Normalize maps parameters into [0,1]^7 relative to the box.
func (s ParamSpace) Normalize(p SimParams) mathx.Vector {
	lo, hi, pv := s.Lo.Vector(), s.Hi.Vector(), p.Vector()
	out := make(mathx.Vector, ParamDim)
	for i := range pv {
		span := hi[i] - lo[i]
		if span > 0 {
			out[i] = (pv[i] - lo[i]) / span
		}
	}
	return out
}

// Denormalize maps u ∈ [0,1]^7 back into the box.
func (s ParamSpace) Denormalize(u mathx.Vector) SimParams {
	if len(u) != ParamDim {
		panic(fmt.Sprintf("slicing: normalized param vector needs %d dims, got %d", ParamDim, len(u)))
	}
	lo, hi := s.Lo.Vector(), s.Hi.Vector()
	out := make(mathx.Vector, ParamDim)
	for i := range u {
		out[i] = lo[i] + mathx.Clip(u[i], 0, 1)*(hi[i]-lo[i])
	}
	return ParamsFromVector(out)
}

// Distance is the parameter distance |x − x̂|₂ of the paper, computed as
// the root-mean-square of range-normalized per-dimension deltas so that a
// distance of 1 means "every parameter moved across its full range".
func (s ParamSpace) Distance(p SimParams) float64 {
	a := s.Normalize(p)
	b := s.Normalize(s.Original)
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum / ParamDim)
}

// InTrustRegion reports whether p satisfies the constraint
// Distance(p) ≤ H.
func (s ParamSpace) InTrustRegion(p SimParams) bool {
	return s.Distance(p) <= s.H
}

// Sample draws parameters uniformly from the box, rejecting points
// outside the trust region (falling back to the original parameters if
// the region is tiny).
func (s ParamSpace) Sample(rng *rand.Rand) SimParams {
	for i := 0; i < 256; i++ {
		u := make(mathx.Vector, ParamDim)
		for j := range u {
			u[j] = rng.Float64()
		}
		p := s.Denormalize(u)
		if s.InTrustRegion(p) {
			return p
		}
	}
	return s.SampleNear(rng, s.Original, 0.25)
}

// SampleNear draws parameters from a normalized Gaussian ball of radius
// scale around center, clamped to the box and trust region (by
// shrinking toward the original parameters if necessary).
func (s ParamSpace) SampleNear(rng *rand.Rand, center SimParams, scale float64) SimParams {
	cu := s.Normalize(center)
	u := make(mathx.Vector, ParamDim)
	for j := range u {
		u[j] = mathx.Clip(cu[j]+scale*rng.NormFloat64(), 0, 1)
	}
	p := s.Denormalize(u)
	for i := 0; i < 32 && !s.InTrustRegion(p); i++ {
		// Contract halfway toward the original parameters.
		pv, ov := p.Vector(), s.Original.Vector()
		for j := range pv {
			pv[j] = (pv[j] + ov[j]) / 2
		}
		p = ParamsFromVector(pv)
	}
	return p
}

// String implements fmt.Stringer with the Table 3 field order.
func (p SimParams) String() string {
	return fmt.Sprintf("[%.2f, %.2f, %.2f, %.2f, %.2f, %.2f, %.2f]",
		p.BaselineLoss, p.ENBNoiseFig, p.UENoiseFig, p.BackhaulBW, p.BackhaulDelay, p.ComputeTime, p.LoadingTime)
}
