package slicing

import (
	"math"
	"testing"
)

func sampleTrace() Trace {
	return Trace{
		LatenciesMs:      []float64{40, 80, 120, 160, 200, 240, 280, 320, 360, 400},
		Frames:           10,
		ULThroughputMbps: 4,
	}
}

func TestAvailabilityQoEMatchesSLA(t *testing.T) {
	tr := sampleTrace()
	sla := SLA{ThresholdMs: 250, Availability: 0.9}
	m := AvailabilityQoE{ThresholdMs: 250}
	if got, want := m.Eval(tr), tr.QoE(sla); got != want {
		t.Fatalf("availability QoE %v want %v", got, want)
	}
}

func TestPercentileDeadlineQoE(t *testing.T) {
	tr := sampleTrace()
	relaxed := PercentileDeadlineQoE{Percentile: 0.95, DeadlineMs: 1000}
	if q := relaxed.Eval(tr); q != 1 {
		t.Fatalf("relaxed deadline QoE %v want 1", q)
	}
	tight := PercentileDeadlineQoE{Percentile: 0.95, DeadlineMs: 50}
	q := tight.Eval(tr)
	if q <= 0 || q >= 1 {
		t.Fatalf("tight deadline QoE %v want in (0, 1)", q)
	}
	// Tighter deadlines can never score higher.
	tighter := PercentileDeadlineQoE{Percentile: 0.95, DeadlineMs: 25}
	if tighter.Eval(tr) > q {
		t.Fatal("deadline QoE not monotone in the deadline")
	}
	if e := (PercentileDeadlineQoE{Percentile: 0.95, DeadlineMs: 100}).Eval(Trace{}); e != 0 {
		t.Fatalf("empty trace QoE %v want 0", e)
	}
}

func TestThroughputFloorQoE(t *testing.T) {
	tr := sampleTrace()
	if q := (ThroughputFloorQoE{FloorMbps: 2}).Eval(tr); q != 1 {
		t.Fatalf("above-floor QoE %v want 1", q)
	}
	if q := (ThroughputFloorQoE{FloorMbps: 8}).Eval(tr); q != 0.5 {
		t.Fatalf("half-floor QoE %v want 0.5", q)
	}
	if q := (ThroughputFloorQoE{}).Eval(tr); q != 0 {
		t.Fatalf("zero-floor QoE %v want 0", q)
	}
}

func TestTrafficModelsDeterministicAndPositive(t *testing.T) {
	models := []TrafficModel{
		ConstantTraffic{},
		DiurnalTraffic{PeriodIntervals: 24, MinFactor: 0.25},
		BurstyTraffic{},
	}
	for _, m := range models {
		for it := 0; it < 100; it++ {
			a := m.TrafficAt(it, 3, 12345)
			b := m.TrafficAt(it, 3, 12345)
			if a != b {
				t.Fatalf("%s: interval %d not deterministic: %d vs %d", m.Name(), it, a, b)
			}
			if a < 1 {
				t.Fatalf("%s: interval %d traffic %d below 1", m.Name(), it, a)
			}
		}
	}
}

func TestDiurnalTrafficSwings(t *testing.T) {
	d := DiurnalTraffic{PeriodIntervals: 24, MinFactor: 0.25}
	lo, hi := math.MaxInt, 0
	for it := 0; it < 24; it++ {
		v := d.TrafficAt(it, 4, 0)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo >= hi {
		t.Fatalf("diurnal traffic flat: lo %d hi %d", lo, hi)
	}
	if hi > 4 {
		t.Fatalf("diurnal traffic %d exceeds base", hi)
	}
}

func TestBurstyTrafficVaries(t *testing.T) {
	b := BurstyTraffic{}
	seen := map[int]bool{}
	for it := 0; it < 200; it++ {
		seen[b.TrafficAt(it, 3, 99)] = true
	}
	if len(seen) < 2 {
		t.Fatal("bursty traffic never varied")
	}
}

func TestServiceClassDefaults(t *testing.T) {
	c := DefaultServiceClass()
	if !c.HasApp() {
		t.Fatal("default class has no app profile")
	}
	tr := sampleTrace()
	if got, want := c.Eval(tr), tr.QoE(c.SLA); got != want {
		t.Fatalf("default class eval %v want %v", got, want)
	}
	// A class without a QoE model falls back to the SLA.
	bare := ServiceClass{SLA: SLA{ThresholdMs: 250, Availability: 0.9}}
	if got, want := bare.Eval(tr), tr.QoE(bare.SLA); got != want {
		t.Fatalf("bare class eval %v want %v", got, want)
	}
	if bare.TrafficAt(5, 2, 1) != 2 {
		t.Fatal("bare class traffic not constant")
	}
	if bare.TrafficAt(5, 0, 1) != 1 {
		t.Fatal("bare class traffic floor not applied")
	}
}

func TestServiceClassFeatureDistinguishesQoEModels(t *testing.T) {
	a := ServiceClass{QoE: AvailabilityQoE{ThresholdMs: 300}}
	b := ServiceClass{QoE: PercentileDeadlineQoE{Percentile: 0.95, DeadlineMs: 150}}
	c := ServiceClass{QoE: ThroughputFloorQoE{FloorMbps: 6}}
	if a.Feature() == b.Feature() || b.Feature() == c.Feature() || a.Feature() == c.Feature() {
		t.Fatal("QoE-model fingerprints collide")
	}
	for _, cls := range []ServiceClass{a, b, c, {}} {
		f := cls.Feature()
		if f < 0 || f >= 1 {
			t.Fatalf("fingerprint %v outside [0, 1)", f)
		}
	}
	// Nil QoE shares the availability fingerprint (same model).
	if (ServiceClass{}).Feature() != a.Feature() {
		t.Fatal("nil QoE fingerprint differs from availability")
	}
}

func TestWithSLARebindsAvailabilityThreshold(t *testing.T) {
	c := DefaultServiceClass() // availability QoE at 300 ms
	override := SLA{ThresholdMs: 500, Availability: 0.8}
	d := c.WithSLA(override)
	if d.SLA != override {
		t.Fatalf("SLA not rebound: %+v", d.SLA)
	}
	if q, ok := d.QoE.(AvailabilityQoE); !ok || q.ThresholdMs != 500 {
		t.Fatalf("availability threshold not rebound: %+v", d.QoE)
	}
	// The original class is untouched.
	if q := c.QoE.(AvailabilityQoE); q.ThresholdMs != 300 {
		t.Fatalf("original class mutated: %+v", q)
	}
	// Non-latency models keep their own parameters.
	e := ServiceClass{QoE: ThroughputFloorQoE{FloorMbps: 6}, SLA: SLA{ThresholdMs: 800, Availability: 0.9}}
	if f := e.WithSLA(override).QoE.(ThroughputFloorQoE); f.FloorMbps != 6 {
		t.Fatalf("floor model perturbed by SLA rebind: %+v", f)
	}
}

func TestEvalForSharedHelper(t *testing.T) {
	tr := sampleTrace()
	sla := SLA{ThresholdMs: 250, Availability: 0.9}
	if got, want := EvalFor(nil, sla, tr), tr.QoE(sla); got != want {
		t.Fatalf("nil-class eval %v want %v", got, want)
	}
	c := ServiceClass{QoE: ThroughputFloorQoE{FloorMbps: 8}}
	if got := EvalFor(&c, sla, tr); got != 0.5 {
		t.Fatalf("class eval %v want 0.5", got)
	}
}
