package slicing

import (
	"math"
	"testing"
)

func TestDemandOfAndCellCapacity(t *testing.T) {
	cfg := Config{BandwidthUL: 20, BandwidthDL: 10, MCSOffsetUL: 5, MCSOffsetDL: 5, BackhaulMbps: 40, CPURatio: 0.5}
	d := DemandOf(cfg)
	if d.RanPRB != 30 || d.TnMbps != 40 || d.CnCPU != 0.5 {
		t.Fatalf("DemandOf = %v", d)
	}
	c := CellCapacity(2)
	if c.RanPRB != 200 || c.TnMbps != 200 || c.CnCPU != 2 {
		t.Fatalf("CellCapacity(2) = %v", c)
	}
	u := c.Utilization(d)
	if u.RAN != 0.15 || u.TN != 0.2 || u.CN != 0.25 {
		t.Fatalf("utilization = %v", u)
	}
	if u.Max() != 0.25 {
		t.Fatalf("bottleneck = %v", u.Max())
	}
	if got := d.BottleneckFrac(c); got != 0.25 {
		t.Fatalf("BottleneckFrac = %v", got)
	}
}

func TestCapacityLedgerReserveUpdateRelease(t *testing.T) {
	l := NewCapacityLedger(CellCapacity(1))
	big := Demand{RanPRB: 80, TnMbps: 70, CnCPU: 0.8}
	small := Demand{RanPRB: 10, TnMbps: 10, CnCPU: 0.1}

	if !l.Reserve("a", big) {
		t.Fatal("first reservation rejected")
	}
	if l.Reserve("a", small) {
		t.Fatal("duplicate id reserved")
	}
	if l.Reserve("b", big) {
		t.Fatal("overbooked: second big reservation accepted")
	}
	if !l.Reserve("b", small) {
		t.Fatal("fitting reservation rejected")
	}
	if l.Count() != 2 {
		t.Fatalf("count = %d", l.Count())
	}
	if u := l.Utilization(); u.RAN != 0.9 || u.Max() > 1 {
		t.Fatalf("utilization = %v", u)
	}

	// Shrinking an existing reservation frees capacity atomically.
	if !l.Update("a", small) {
		t.Fatal("downscale update rejected")
	}
	if !l.Fits(big) {
		t.Fatal("freed capacity not visible")
	}
	// Growing beyond capacity fails and leaves the ledger untouched.
	if l.Update("a", Demand{RanPRB: 200, TnMbps: 10, CnCPU: 0.1}) {
		t.Fatal("over-capacity grow accepted")
	}
	if got, _ := l.Reserved("a"); got != small {
		t.Fatalf("failed update mutated the reservation: %v", got)
	}
	if l.Update("ghost", small) {
		t.Fatal("update of unknown id accepted")
	}

	if freed := l.Release("a"); freed != small {
		t.Fatalf("release freed %v", freed)
	}
	if freed := l.Release("a"); !freed.IsZero() {
		t.Fatalf("double release freed %v", freed)
	}
	l.Release("b")
	if used := l.Used(); !used.IsZero() {
		t.Fatalf("empty ledger reports usage %v", used)
	}
}

func TestConfineDemandAndScale(t *testing.T) {
	space := DefaultConfigSpace()
	cfg := Config{BandwidthUL: 40, BandwidthDL: 10, MCSOffsetUL: 8, MCSOffsetDL: 8, BackhaulMbps: 90, CPURatio: 0.2}
	cap := Config{BandwidthUL: 20, BandwidthDL: 30, MCSOffsetUL: 1, MCSOffsetDL: 1, BackhaulMbps: 50, CPURatio: 0.9}
	m := ConfineDemand(cfg, cap)
	// Demand dimensions clamp to the envelope; the demand-free MCS
	// offsets pass through so online adaptation stays unconstrained.
	want := Config{BandwidthUL: 20, BandwidthDL: 10, MCSOffsetUL: 8, MCSOffsetDL: 8, BackhaulMbps: 50, CPURatio: 0.2}
	if m != want {
		t.Fatalf("ConfineDemand = %v", m)
	}
	if d := DemandOf(m); !d.Fits(DemandOf(cap)) {
		t.Fatalf("confined demand %v escapes envelope %v", d, DemandOf(cap))
	}
	// Scale clamps to the space: a near-max config cannot exceed it.
	s := space.Scale(Config{BandwidthUL: 45, BandwidthDL: 45, MCSOffsetUL: 9, MCSOffsetDL: 9, BackhaulMbps: 95, CPURatio: 0.95}, 2)
	if s != space.Max {
		t.Fatalf("Scale past max = %v", s)
	}
	s = space.Scale(Config{BandwidthUL: 10, BackhaulMbps: 20, CPURatio: 0.2}, 1.5)
	if s.BandwidthUL != 15 || s.BackhaulMbps != 30 || math.Abs(s.CPURatio-0.3) > 1e-12 {
		t.Fatalf("Scale = %v", s)
	}
}
