package slicing

import "fmt"

// This file is the capacity vocabulary of the fleet control plane: the
// finite per-domain infrastructure a dynamic fleet of slices shares.
// A slice configuration (Table 2) spends resources in three capacity
// domains — radio PRBs at the RAN centralized units, transport-network
// bandwidth, and core/edge compute — and the TopologyLedger (see
// topology.go) tracks every admitted slice's reservation against its
// host site's RAN and the shared tiers, so admission control can
// reject (or downscale) instead of overbooking.

// Demand is a slice's footprint across the three capacity domains.
type Demand struct {
	// RanPRB is the radio demand: uplink plus downlink PRBs.
	RanPRB float64
	// TnMbps is the transport-network bandwidth demand.
	TnMbps float64
	// CnCPU is the core/edge compute demand (CPU share).
	CnCPU float64
}

// DemandOf maps a configuration to its per-domain capacity footprint.
func DemandOf(c Config) Demand {
	return Demand{
		RanPRB: c.BandwidthUL + c.BandwidthDL,
		TnMbps: c.BackhaulMbps,
		CnCPU:  c.CPURatio,
	}
}

// Add returns the componentwise sum.
func (d Demand) Add(o Demand) Demand {
	return Demand{RanPRB: d.RanPRB + o.RanPRB, TnMbps: d.TnMbps + o.TnMbps, CnCPU: d.CnCPU + o.CnCPU}
}

// Sub returns the componentwise difference.
func (d Demand) Sub(o Demand) Demand {
	return Demand{RanPRB: d.RanPRB - o.RanPRB, TnMbps: d.TnMbps - o.TnMbps, CnCPU: d.CnCPU - o.CnCPU}
}

// Fits reports whether d fits inside free in every domain.
func (d Demand) Fits(free Demand) bool {
	return d.RanPRB <= free.RanPRB && d.TnMbps <= free.TnMbps && d.CnCPU <= free.CnCPU
}

// IsZero reports an empty footprint.
func (d Demand) IsZero() bool { return d == Demand{} }

// String implements fmt.Stringer.
func (d Demand) String() string {
	return fmt.Sprintf("ran=%.1fPRB tn=%.1fMbps cn=%.2fcpu", d.RanPRB, d.TnMbps, d.CnCPU)
}

// Capacity is the finite per-domain total of the shared infrastructure:
// RAN centralized-unit PRBs, transport-network bandwidth, and core/edge
// compute. The zero value means "unlimited" to callers that treat
// capacity as optional.
type Capacity struct {
	RanPRB float64
	TnMbps float64
	CnCPU  float64
}

// IsZero reports the unlimited (unset) capacity.
func (c Capacity) IsZero() bool { return c == Capacity{} }

// Free returns the headroom left after used.
func (c Capacity) Free(used Demand) Demand {
	return Demand{RanPRB: c.RanPRB - used.RanPRB, TnMbps: c.TnMbps - used.TnMbps, CnCPU: c.CnCPU - used.CnCPU}
}

// Utilization is the per-domain used fraction of capacity.
type Utilization struct {
	RAN float64
	TN  float64
	CN  float64
}

// Max returns the bottleneck domain's utilization.
func (u Utilization) Max() float64 {
	m := u.RAN
	if u.TN > m {
		m = u.TN
	}
	if u.CN > m {
		m = u.CN
	}
	return m
}

// Utilization returns the per-domain used fraction (zero-capacity
// domains report zero).
func (c Capacity) Utilization(used Demand) Utilization {
	frac := func(u, total float64) float64 {
		if total <= 0 {
			return 0
		}
		return u / total
	}
	return Utilization{
		RAN: frac(used.RanPRB, c.RanPRB),
		TN:  frac(used.TnMbps, c.TnMbps),
		CN:  frac(used.CnCPU, c.CnCPU),
	}
}

// BottleneckFrac returns the largest per-domain fraction of capacity d
// would consume — the footprint of a slice as seen by value-density
// admission policies.
func (d Demand) BottleneckFrac(c Capacity) float64 {
	return c.Utilization(d).Max()
}

// CellCapacity returns the capacity of the given number of prototype
// cells: each cell offers one full configuration space of resources
// (50+50 PRBs, 100 Mbps transport, one edge CPU).
func CellCapacity(cells float64) Capacity {
	maxc := DefaultConfigSpace().Max
	return Capacity{
		RanPRB: cells * (maxc.BandwidthUL + maxc.BandwidthDL),
		TnMbps: cells * maxc.BackhaulMbps,
		CnCPU:  cells * maxc.CPURatio,
	}
}

// ConfineDemand returns cfg with its demand-bearing dimensions clamped
// to the envelope cap: radio PRBs, transport bandwidth, and CPU share.
// The MCS offsets pass through untouched — they carry no capacity
// demand (see DemandOf), and capping them would block the online
// learner's sim-to-real adaptation without freeing any resource.
func ConfineDemand(cfg, cap Config) Config {
	if cfg.BandwidthUL > cap.BandwidthUL {
		cfg.BandwidthUL = cap.BandwidthUL
	}
	if cfg.BandwidthDL > cap.BandwidthDL {
		cfg.BandwidthDL = cap.BandwidthDL
	}
	if cfg.BackhaulMbps > cap.BackhaulMbps {
		cfg.BackhaulMbps = cap.BackhaulMbps
	}
	if cfg.CPURatio > cap.CPURatio {
		cfg.CPURatio = cap.CPURatio
	}
	return cfg
}

// Scale returns the configuration scaled by f and clamped to the space
// — the headroom envelope a reservation grants above the offline
// optimum so online exploration has room to move.
func (s ConfigSpace) Scale(c Config, f float64) Config {
	v := c.Vector()
	for i := range v {
		v[i] *= f
	}
	return s.Clamp(ConfigFromVector(v))
}
