package slicing

import "testing"

// twoSite builds the canonical test topology: site A with 100 local
// PRBs, site B with 50, sharing 100 Mbps transport and 1 CPU.
func twoSite() *TopologyLedger {
	return NewTopologyLedger(TopologyCapacity{
		Sites:  []SiteCapacity{{ID: "A", RanPRB: 100}, {ID: "B", RanPRB: 50}},
		TnMbps: 100,
		CnCPU:  1,
	})
}

func TestTopologyLedgerSiteLocalRAN(t *testing.T) {
	l := twoSite()
	if got := l.Capacity(); got != (Capacity{RanPRB: 150, TnMbps: 100, CnCPU: 1}) {
		t.Fatalf("aggregate capacity = %v", got)
	}
	big := Demand{RanPRB: 80, TnMbps: 10, CnCPU: 0.1}
	if !l.ReserveAt("A", "a", big) {
		t.Fatal("fitting reservation at A rejected")
	}
	// RAN is site-local: B has 50 PRBs free, not the aggregate 70.
	if l.ReserveAt("B", "b", big) {
		t.Fatal("80 PRBs booked against B's 50-PRB local RAN")
	}
	if !l.FitsAt("B", Demand{RanPRB: 50}) || l.FitsAt("B", Demand{RanPRB: 51}) {
		t.Fatalf("B free RAN = %v, want exactly 50", l.FreeAt("B").RanPRB)
	}
	// Fits reports placement feasibility: 80 PRBs fit nowhere now
	// (A has 20 local free, B has 50), though 70 are free in aggregate.
	if l.Fits(Demand{RanPRB: 80}) {
		t.Fatal("Fits accepted a demand no single site can host")
	}
	if !l.Fits(Demand{RanPRB: 50}) {
		t.Fatal("Fits rejected a demand B can host")
	}
	if site, ok := l.SiteOf("a"); !ok || site != "A" {
		t.Fatalf("SiteOf(a) = %q, %v", site, ok)
	}
}

func TestTopologyLedgerSharedTiers(t *testing.T) {
	l := twoSite()
	if !l.ReserveAt("A", "a", Demand{RanPRB: 10, TnMbps: 70, CnCPU: 0.2}) {
		t.Fatal("first reservation rejected")
	}
	// Transport is regional: A's booking squeezes B's headroom too.
	if free := l.FreeAt("B"); free.TnMbps != 30 || free.RanPRB != 50 {
		t.Fatalf("FreeAt(B) = %v, want tn=30 ran=50", free)
	}
	if l.ReserveAt("B", "b", Demand{RanPRB: 10, TnMbps: 40, CnCPU: 0.1}) {
		t.Fatal("shared transport overbooked across sites")
	}
	if !l.ReserveAt("B", "b", Demand{RanPRB: 10, TnMbps: 30, CnCPU: 0.1}) {
		t.Fatal("fitting cross-site reservation rejected")
	}
	// Update stays at the host site and respects both tiers.
	if l.Update("b", Demand{RanPRB: 60, TnMbps: 10, CnCPU: 0.1}) {
		t.Fatal("update grew past B's local RAN")
	}
	if !l.Update("b", Demand{RanPRB: 50, TnMbps: 10, CnCPU: 0.1}) {
		t.Fatal("fitting update rejected")
	}
	if site, _ := l.SiteOf("b"); site != "B" {
		t.Fatalf("update moved b to %q", site)
	}
	us := l.SiteUtilizations()
	if len(us) != 2 || us[0].Site != "A" || us[1].Site != "B" {
		t.Fatalf("site utilizations = %+v", us)
	}
	if us[0].RAN != 0.1 || us[1].RAN != 1.0 || us[0].Count != 1 || us[1].Count != 1 {
		t.Fatalf("site utilizations = %+v", us)
	}
	if freed := l.Release("b"); freed.RanPRB != 50 {
		t.Fatalf("release freed %v", freed)
	}
	if _, ok := l.SiteOf("b"); ok {
		t.Fatal("released id still sited")
	}
}

func TestTopologyLedgerDefaultSiteCompat(t *testing.T) {
	// The single-pool constructor behaves exactly like the historical
	// CapacityLedger: Reserve books at the default site.
	l := NewCapacityLedger(CellCapacity(1))
	if !l.Reserve("a", Demand{RanPRB: 80, TnMbps: 70, CnCPU: 0.8}) {
		t.Fatal("single-pool reserve rejected")
	}
	if site, _ := l.SiteOf("a"); site != DefaultSite {
		t.Fatalf("single-pool reservation sited at %q", site)
	}
	if got, want := l.FreeAt(""), l.Free(); got != want {
		t.Fatalf("FreeAt(\"\") = %v, Free() = %v", got, want)
	}
	// Unknown sites never fit and report no headroom.
	if l.ReserveAt("ghost", "b", Demand{RanPRB: 1}) || l.FitsAt("ghost", Demand{}) {
		t.Fatal("unknown site accepted a reservation")
	}
}
