package slicing

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// twoSite builds the canonical test topology: site A with 100 local
// PRBs, site B with 50, sharing 100 Mbps transport and 1 CPU.
func twoSite() *TopologyLedger {
	return NewTopologyLedger(TopologyCapacity{
		Sites:  []SiteCapacity{{ID: "A", RanPRB: 100}, {ID: "B", RanPRB: 50}},
		TnMbps: 100,
		CnCPU:  1,
	})
}

func TestTopologyLedgerSiteLocalRAN(t *testing.T) {
	l := twoSite()
	if got := l.Capacity(); got != (Capacity{RanPRB: 150, TnMbps: 100, CnCPU: 1}) {
		t.Fatalf("aggregate capacity = %v", got)
	}
	big := Demand{RanPRB: 80, TnMbps: 10, CnCPU: 0.1}
	if !l.ReserveAt("A", "a", big) {
		t.Fatal("fitting reservation at A rejected")
	}
	// RAN is site-local: B has 50 PRBs free, not the aggregate 70.
	if l.ReserveAt("B", "b", big) {
		t.Fatal("80 PRBs booked against B's 50-PRB local RAN")
	}
	if !l.FitsAt("B", Demand{RanPRB: 50}) || l.FitsAt("B", Demand{RanPRB: 51}) {
		t.Fatalf("B free RAN = %v, want exactly 50", l.FreeAt("B").RanPRB)
	}
	// Fits reports placement feasibility: 80 PRBs fit nowhere now
	// (A has 20 local free, B has 50), though 70 are free in aggregate.
	if l.Fits(Demand{RanPRB: 80}) {
		t.Fatal("Fits accepted a demand no single site can host")
	}
	if !l.Fits(Demand{RanPRB: 50}) {
		t.Fatal("Fits rejected a demand B can host")
	}
	if site, ok := l.SiteOf("a"); !ok || site != "A" {
		t.Fatalf("SiteOf(a) = %q, %v", site, ok)
	}
}

func TestTopologyLedgerSharedTiers(t *testing.T) {
	l := twoSite()
	if !l.ReserveAt("A", "a", Demand{RanPRB: 10, TnMbps: 70, CnCPU: 0.2}) {
		t.Fatal("first reservation rejected")
	}
	// Transport is regional: A's booking squeezes B's headroom too.
	if free := l.FreeAt("B"); free.TnMbps != 30 || free.RanPRB != 50 {
		t.Fatalf("FreeAt(B) = %v, want tn=30 ran=50", free)
	}
	if l.ReserveAt("B", "b", Demand{RanPRB: 10, TnMbps: 40, CnCPU: 0.1}) {
		t.Fatal("shared transport overbooked across sites")
	}
	if !l.ReserveAt("B", "b", Demand{RanPRB: 10, TnMbps: 30, CnCPU: 0.1}) {
		t.Fatal("fitting cross-site reservation rejected")
	}
	// Update stays at the host site and respects both tiers.
	if l.Update("b", Demand{RanPRB: 60, TnMbps: 10, CnCPU: 0.1}) {
		t.Fatal("update grew past B's local RAN")
	}
	if !l.Update("b", Demand{RanPRB: 50, TnMbps: 10, CnCPU: 0.1}) {
		t.Fatal("fitting update rejected")
	}
	if site, _ := l.SiteOf("b"); site != "B" {
		t.Fatalf("update moved b to %q", site)
	}
	us := l.SiteUtilizations()
	if len(us) != 2 || us[0].Site != "A" || us[1].Site != "B" {
		t.Fatalf("site utilizations = %+v", us)
	}
	if us[0].RAN != 0.1 || us[1].RAN != 1.0 || us[0].Count != 1 || us[1].Count != 1 {
		t.Fatalf("site utilizations = %+v", us)
	}
	if freed := l.Release("b"); freed.RanPRB != 50 {
		t.Fatalf("release freed %v", freed)
	}
	if _, ok := l.SiteOf("b"); ok {
		t.Fatal("released id still sited")
	}
}

func TestTopologyLedgerDefaultSiteCompat(t *testing.T) {
	// The single-pool constructor behaves exactly like the historical
	// CapacityLedger: Reserve books at the default site.
	l := NewCapacityLedger(CellCapacity(1))
	if !l.Reserve("a", Demand{RanPRB: 80, TnMbps: 70, CnCPU: 0.8}) {
		t.Fatal("single-pool reserve rejected")
	}
	if site, _ := l.SiteOf("a"); site != DefaultSite {
		t.Fatalf("single-pool reservation sited at %q", site)
	}
	if got, want := l.FreeAt(""), l.Free(); got != want {
		t.Fatalf("FreeAt(\"\") = %v, Free() = %v", got, want)
	}
	// Unknown sites never fit and report no headroom.
	if l.ReserveAt("ghost", "b", Demand{RanPRB: 1}) || l.FitsAt("ghost", Demand{}) {
		t.Fatal("unknown site accepted a reservation")
	}
}

// TestTopologyLedgerConcurrentReserveRelease hammers the striped
// ledger from many goroutines — concurrent reserve/update/release
// traffic against all sites plus aggregate readers — and checks that
// no tier is ever overbooked and that the books balance exactly once
// the churn settles. Demands use power-of-two floats so every running
// total is exact and the final assertions can compare ==. Run with
// -race to exercise the striped locking.
func TestTopologyLedgerConcurrentReserveRelease(t *testing.T) {
	const (
		workers = 8
		rounds  = 200
	)
	l := NewTopologyLedger(TopologyCapacity{
		Sites: []SiteCapacity{
			{ID: "A", RanPRB: 64}, {ID: "B", RanPRB: 64},
			{ID: "C", RanPRB: 64}, {ID: "D", RanPRB: 64},
		},
		TnMbps: 128,
		CnCPU:  16,
	})
	sites := []SiteID{"A", "B", "C", "D"}
	d := Demand{RanPRB: 4, TnMbps: 2, CnCPU: 0.25}
	grown := Demand{RanPRB: 8, TnMbps: 2, CnCPU: 0.25}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			site := sites[w%len(sites)]
			for r := 0; r < rounds; r++ {
				id := fmt.Sprintf("w%d-r%d", w, r)
				if !l.ReserveAt(site, id, d) {
					continue // transiently full; fine
				}
				if free := l.FreeAt(site); free.RanPRB < 0 || free.TnMbps < 0 || free.CnCPU < 0 {
					t.Errorf("site %s overbooked: free %v", site, free)
				}
				if r%3 == 0 {
					l.Update(id, grown)
				}
				// Aggregate readers race against writers on other sites.
				if u := l.Utilization(); u.RAN > 1 || u.TN > 1 || u.CN > 1 {
					t.Errorf("utilization above 1: %v", u)
				}
				l.Release(id)
			}
		}(w)
	}
	wg.Wait()

	if n := l.Count(); n != 0 {
		t.Fatalf("count after full churn = %d, want 0", n)
	}
	if used := l.Used(); used != (Demand{}) {
		t.Fatalf("used after full churn = %v, want zero", used)
	}
	for _, su := range l.SiteUtilizations() {
		if su.RAN != 0 || su.Count != 0 {
			t.Fatalf("site %s not empty after churn: %+v", su.Site, su)
		}
	}
}

// TestTopologyLedgerConcurrentDuplicateID races many goroutines on the
// same reservation id: exactly one ReserveAt may win.
func TestTopologyLedgerConcurrentDuplicateID(t *testing.T) {
	l := twoSite()
	const contenders = 16
	var wins atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < contenders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if l.ReserveAt([]SiteID{"A", "B"}[w%2], "contested", Demand{RanPRB: 1}) {
				wins.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d concurrent ReserveAt calls won for one id, want 1", wins.Load())
	}
	if n := l.Count(); n != 1 {
		t.Fatalf("count = %d, want 1", n)
	}
}
