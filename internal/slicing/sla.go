package slicing

import "github.com/atlas-slicing/atlas/internal/stats"

// SLA is a slice tenant's service-level agreement: the slice's QoE —
// the probability that per-frame end-to-end latency stays at or below
// ThresholdMs (paper's Y) — must be at least Availability (paper's E).
type SLA struct {
	ThresholdMs  float64 // Y: latency threshold in milliseconds
	Availability float64 // E: required Pr(latency ≤ Y)
}

// DefaultSLA returns the evaluation's application SLA (E = 0.9,
// Y = 300 ms).
func DefaultSLA() SLA {
	return SLA{ThresholdMs: 300, Availability: 0.9}
}

// QoE computes the unified quality of experience of a latency trace
// under this SLA: the fraction of frames meeting the threshold. The
// value is in [0, 1] by construction, matching the paper's unified QoE.
func (s SLA) QoE(latenciesMs []float64) float64 {
	return stats.FracBelow(latenciesMs, s.ThresholdMs)
}

// Satisfied reports whether a measured QoE meets the availability
// requirement.
func (s SLA) Satisfied(qoe float64) bool {
	return qoe >= s.Availability
}

// Trace is the observable outcome of running one configuration interval
// (an "episode") against a network environment — either the simulator or
// the real network.
type Trace struct {
	LatenciesMs []float64 // per-frame end-to-end latency
	Frames      int       // frames completed in the episode

	// Component breakdown (mean milliseconds per completed frame).
	MeanLoadingMs  float64
	MeanULMs       float64
	MeanBackhaulMs float64
	MeanQueueMs    float64
	MeanComputeMs  float64
	MeanDLMs       float64

	// Link-layer measurements.
	ULThroughputMbps float64 // delivered uplink goodput
	DLThroughputMbps float64 // delivered downlink goodput
	ULPER            float64 // residual uplink packet error rate
	DLPER            float64 // residual downlink packet error rate
	PingMs           float64 // mean small-probe round-trip time
}

// QoE evaluates the trace under an SLA.
func (t Trace) QoE(sla SLA) float64 { return sla.QoE(t.LatenciesMs) }

// Env is a queryable network environment: one episode maps a
// configuration and a traffic level (number of concurrent on-the-fly
// frames, the paper's "user traffic") to a Trace. Implementations must
// be deterministic given the seed.
type Env interface {
	Episode(cfg Config, traffic int, seed int64) Trace
}
