package gp

import (
	"fmt"
	"math"
	"testing"

	"github.com/atlas-slicing/atlas/internal/mathx"
)

// predictSeed reproduces the pre-batching Predict arithmetic — a fresh
// kernel-row allocation, an allocating At()-indexed forward solve, and
// interface-dispatched kernel evaluations per candidate. It is kept
// verbatim as the BENCH_6 "sequential" baseline so the measured speedup
// cannot silently deflate as Predict itself improves; the benchmark
// below asserts its outputs still match the live path bit for bit.
func predictSeed(g *Regressor, x []float64) (mean, std float64) {
	prior := math.Sqrt(g.Kernel.Eval(x, x) + g.NoiseVar)
	if !g.fitted {
		return 0, prior
	}
	n := len(g.x)
	kstar := make(mathx.Vector, n)
	for i := range g.x {
		kstar[i] = g.Kernel.Eval(x, g.x[i])
	}
	mu := kstar.Dot(g.alpha)
	v := seedSolveLower(g.l, kstar)
	variance := g.Kernel.Eval(x, x) - v.Dot(v)
	if variance < 0 {
		variance = 0
	}
	return g.scaler.Inverse(mu), g.scaler.InverseStd(math.Sqrt(variance))
}

// seedSolveLower is the seed's forward substitution: allocating, with
// per-element At() index arithmetic.
func seedSolveLower(l *mathx.Matrix, b mathx.Vector) mathx.Vector {
	n := l.Rows
	x := make(mathx.Vector, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// benchRegressor conditions a GP on an online-stage-sized collection
// (n points, PolicyInputDim-like 9-dim inputs) and returns it with a
// candidate pool to scan.
func benchRegressor(b *testing.B, n, pool int) (*Regressor, [][]float64) {
	b.Helper()
	rng := mathx.NewRNG(42)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, 9)
		for j := range x {
			x[j] = rng.Float64()
		}
		xs[i] = x
		ys[i] = x[0] - 0.5*x[8] + 0.1*rng.NormFloat64()
	}
	g := NewRegressor()
	g.OptimizeHyper = false
	if err := g.Fit(xs, ys); err != nil {
		b.Fatal(err)
	}
	cands := make([][]float64, pool)
	for i := range cands {
		x := make([]float64, 9)
		for j := range x {
			x[j] = rng.Float64()
		}
		cands[i] = x
	}
	return g, cands
}

// scanPools sizes the candidate-scan benchmark pair; BENCH_6's ≥2x
// guardrail is judged at Pool ≥ 64.
var scanPools = []int{64, 256, 1024}

// BenchmarkCandidateScanSequential is the BENCH_6 sequential baseline:
// one posterior query per candidate with the seed's per-candidate
// allocate-and-solve arithmetic.
func BenchmarkCandidateScanSequential(b *testing.B) {
	for _, pool := range scanPools {
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			g, cands := benchRegressor(b, 100, pool)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, x := range cands {
					predictSeed(g, x)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "scans/sec")
		})
	}
}

// BenchmarkCandidateScanBatched is the same scan through PredictBatch:
// blocked kernel-matrix build + multi-RHS forward solve, bit-identical
// outputs (asserted before timing).
func BenchmarkCandidateScanBatched(b *testing.B) {
	for _, pool := range scanPools {
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			g, cands := benchRegressor(b, 100, pool)
			means := make([]float64, pool)
			stds := make([]float64, pool)
			g.PredictBatch(cands, means, stds)
			for j, x := range cands {
				if wm, ws := predictSeed(g, x); means[j] != wm || stds[j] != ws {
					b.Fatalf("cand %d: batched (%v, %v) drifted from seed baseline (%v, %v)",
						j, means[j], stds[j], wm, ws)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.PredictBatch(cands, means, stds)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "scans/sec")
		})
	}
}

// BenchmarkCandidateScanBatchedMeanOnly measures the stds == nil mode
// feasibility scans use: no triangular solves at all.
func BenchmarkCandidateScanBatchedMeanOnly(b *testing.B) {
	for _, pool := range scanPools {
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			g, cands := benchRegressor(b, 100, pool)
			means := make([]float64, pool)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.PredictBatch(cands, means, nil)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "scans/sec")
		})
	}
}
