// Package gp implements exact Gaussian-process regression with the
// Matérn-5/2 kernel used by the paper's online stage (§7.3: sklearn's
// GaussianProcessRegressor with a Matérn ν=2.5 kernel and standardized
// targets): jittered Cholesky factorization, posterior mean/std,
// log-marginal-likelihood-based hyperparameter selection, and posterior
// sampling.
package gp

import "math"

// Kernel is a positive-definite covariance function.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
}

// Matern52 is the Matérn kernel with ν = 5/2:
// k(r) = σ²·(1 + √5·r/ℓ + 5r²/(3ℓ²))·exp(−√5·r/ℓ).
type Matern52 struct {
	LengthScale float64
	Variance    float64 // σ², the output scale
}

// Eval implements Kernel.
func (k Matern52) Eval(a, b []float64) float64 {
	r := dist(a, b) / k.LengthScale
	s := math.Sqrt(5) * r
	return k.Variance * (1 + s + 5*r*r/3) * math.Exp(-s)
}

// RBF is the squared-exponential kernel
// k(r) = σ²·exp(−r²/(2ℓ²)).
type RBF struct {
	LengthScale float64
	Variance    float64
}

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	r := dist(a, b) / k.LengthScale
	return k.Variance * math.Exp(-0.5*r*r)
}

func dist(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}
