package gp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/stats"
)

// Regressor is an exact Gaussian-process regressor. Targets are
// standardized internally (mean removed, unit variance), mirroring the
// paper's preprocessing. The zero value predicts the prior (mean 0 in
// original units only after Fit; before any data it reports the prior in
// standardized units mapped through an identity scaler).
type Regressor struct {
	Kernel Kernel
	// NoiseVar is the observation noise variance in standardized target
	// units (the diagonal jitter α of sklearn's regressor).
	NoiseVar float64
	// OptimizeHyper enables a small log-marginal-likelihood grid search
	// over the kernel length scale and variance on every Fit.
	OptimizeHyper bool
	// RefactorEvery bounds how many incremental Observe updates may pass
	// between full refactorizations (numerical hygiene plus, with
	// OptimizeHyper, hyperparameter refresh). Zero selects the default.
	RefactorEvery int

	x      [][]float64
	y      []float64
	scaler stats.Scaler
	l      *mathx.Matrix // Cholesky factor of K + noise·I
	ty     mathx.Vector  // standardized targets
	alpha  mathx.Vector  // (K+σ²I)⁻¹ y (standardized)
	fitted bool
	// sinceRefactor counts incremental updates since the last full
	// factorization.
	sinceRefactor int
}

// defaultRefactorEvery is the incremental-update budget between full
// refactorizations when RefactorEvery is unset.
const defaultRefactorEvery = 25

// bootstrapN is the collection size below which Observe always refits
// from scratch: small-n factorizations are cheap and full refits keep
// the early hyperparameter tuning (which Fit starts at n = 4)
// responsive exactly when each new point moves the posterior most.
const bootstrapN = 8

// NewRegressor returns a GP with the Matérn-5/2 kernel, unit length
// scale and variance, and a small noise floor — the configuration the
// paper uses for the online stage.
func NewRegressor() *Regressor {
	return &Regressor{
		Kernel:        Matern52{LengthScale: 1.0, Variance: 1.0},
		NoiseVar:      1e-4,
		OptimizeHyper: true,
	}
}

// N returns the number of stored observations.
func (g *Regressor) N() int { return len(g.x) }

// Fitted reports whether the regressor has data.
func (g *Regressor) Fitted() bool { return g.fitted }

// Fit conditions the GP on (xs, ys). It copies its inputs.
func (g *Regressor) Fit(xs [][]float64, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("gp: %d inputs but %d targets", len(xs), len(ys))
	}
	if len(xs) == 0 {
		g.fitted = false
		g.x = nil
		g.y = nil
		g.ty = nil
		g.l = nil
		g.alpha = nil
		return nil
	}
	g.x = make([][]float64, len(xs))
	for i, x := range xs {
		g.x[i] = append([]float64(nil), x...)
	}
	g.y = append([]float64(nil), ys...)
	g.scaler = stats.Scaler{}
	g.scaler.Fit(ys)
	ty := g.scaler.TransformAll(ys)

	if g.OptimizeHyper && len(xs) >= 4 {
		g.tuneHyper(ty)
	}
	if err := g.factorize(ty); err != nil {
		return err
	}
	g.ty = mathx.Vector(ty)
	g.fitted = true
	g.sinceRefactor = 0
	return nil
}

// Observe conditions the GP on one more observation. When possible it
// extends the existing Cholesky factor with an O(n²) incremental update
// (mathx.CholAppend) instead of the O(n³) refactorization a full Fit
// performs; every RefactorEvery updates — or whenever the incremental
// extension loses positive definiteness — it falls back to a full Fit
// for numerical hygiene and (with OptimizeHyper) a hyperparameter
// refresh. Between refactorizations the kernel hyperparameters are
// frozen, so the posterior matches a full refactorization at the same
// hyperparameters exactly (up to rounding).
func (g *Regressor) Observe(x []float64, y float64) error {
	g.x = append(g.x, append([]float64(nil), x...))
	g.y = append(g.y, y)

	every := g.RefactorEvery
	if every <= 0 {
		every = defaultRefactorEvery
	}
	n := len(g.x)
	if !g.fitted || n < bootstrapN || g.sinceRefactor+1 >= every {
		return g.refit()
	}

	// The factor depends only on inputs and hyperparameters, so the
	// target standardization can be refreshed at O(n) cost without
	// touching it.
	g.scaler = stats.Scaler{}
	g.scaler.Fit(g.y)
	ty := mathx.Vector(g.scaler.TransformAll(g.y))

	k := make(mathx.Vector, n-1)
	for i := 0; i < n-1; i++ {
		k[i] = g.Kernel.Eval(x, g.x[i])
	}
	kappa := g.Kernel.Eval(x, x) + g.NoiseVar
	l, err := mathx.CholAppend(g.l, k, kappa)
	if err != nil {
		return g.refit()
	}
	g.l = l
	g.ty = ty
	g.alpha = mathx.CholSolve(l, ty)
	g.sinceRefactor++
	return nil
}

// refit reruns the full Fit pipeline on the stored observations.
func (g *Regressor) refit() error {
	xs, ys := g.x, g.y
	return g.Fit(xs, ys)
}

// factorize builds K + σ²I, its Cholesky factor, and alpha.
func (g *Regressor) factorize(ty []float64) error {
	n := len(g.x)
	k := mathx.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := g.Kernel.Eval(g.x[i], g.x[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	k.AddDiag(g.NoiseVar)
	l, _, err := mathx.CholeskyJitter(k, 1e-8)
	if err != nil {
		return errors.New("gp: covariance not positive definite")
	}
	g.l = l
	g.alpha = mathx.CholSolve(l, mathx.Vector(ty))
	return nil
}

// tuneHyper grid-searches kernel hyperparameters by log marginal
// likelihood on standardized targets.
func (g *Regressor) tuneHyper(ty []float64) {
	lengths := []float64{0.1, 0.2, 0.4, 0.8, 1.6, 3.2}
	variances := []float64{0.25, 1.0, 4.0}
	bestLML := math.Inf(-1)
	bestKernel := g.Kernel
	for _, ls := range lengths {
		for _, v := range variances {
			g.Kernel = withHyper(g.Kernel, ls, v)
			if err := g.factorize(ty); err != nil {
				continue
			}
			lml := g.logMarginalLikelihood(ty)
			if lml > bestLML {
				bestLML = lml
				bestKernel = g.Kernel
			}
		}
	}
	g.Kernel = bestKernel
}

func withHyper(k Kernel, ls, v float64) Kernel {
	switch k.(type) {
	case Matern52:
		return Matern52{LengthScale: ls, Variance: v}
	case RBF:
		return RBF{LengthScale: ls, Variance: v}
	default:
		return k
	}
}

// logMarginalLikelihood returns log p(y|X) for standardized targets
// given the current factorization.
func (g *Regressor) logMarginalLikelihood(ty []float64) float64 {
	n := float64(len(ty))
	var fit float64
	for i, y := range ty {
		fit += y * g.alpha[i]
	}
	return -0.5*fit - 0.5*mathx.LogDetFromChol(g.l) - 0.5*n*math.Log(2*math.Pi)
}

// predictScratch holds the reusable buffers of posterior queries. The
// buffers live in a package-level sync.Pool rather than on the
// Regressor so Predict and PredictBatch stay safe for concurrent
// readers (each call borrows its own buffers) and Regressor values
// remain freely copyable.
type predictScratch struct {
	vec mathx.Vector
	blk mathx.Matrix
}

var scratchPool = sync.Pool{New: func() any { return new(predictScratch) }}

// vector returns the scratch vector resized to n (contents undefined).
func (s *predictScratch) vector(n int) mathx.Vector {
	if cap(s.vec) < n {
		s.vec = make(mathx.Vector, n)
	}
	s.vec = s.vec[:n]
	return s.vec
}

// block returns the scratch matrix resized to rows×cols (contents
// undefined).
func (s *predictScratch) block(rows, cols int) *mathx.Matrix {
	if cap(s.blk.Data) < rows*cols {
		s.blk.Data = make([]float64, rows*cols)
	}
	s.blk.Rows, s.blk.Cols, s.blk.Data = rows, cols, s.blk.Data[:rows*cols]
	return &s.blk
}

// fillKernelRow writes k(x, Xᵢ) for every stored input into row. The
// type switch devirtualizes the two bundled kernels so the per-element
// Eval inlines in the hot path; unknown kernels fall back to the
// interface call with identical results.
func (g *Regressor) fillKernelRow(row mathx.Vector, x []float64) {
	switch k := g.Kernel.(type) {
	case Matern52:
		for i, xi := range g.x {
			row[i] = k.Eval(x, xi)
		}
	case RBF:
		for i, xi := range g.x {
			row[i] = k.Eval(x, xi)
		}
	default:
		for i, xi := range g.x {
			row[i] = g.Kernel.Eval(x, xi)
		}
	}
}

// Predict returns the posterior mean and standard deviation at x in
// original target units. Before any data it returns the prior (mean 0,
// std = √(k(x,x) + noise)). Safe for concurrent readers: the kernel-row
// and solve buffers come from a shared pool, so steady-state queries
// allocate nothing.
func (g *Regressor) Predict(x []float64) (mean, std float64) {
	kxx := g.Kernel.Eval(x, x)
	if !g.fitted {
		return 0, math.Sqrt(kxx + g.NoiseVar)
	}
	s := scratchPool.Get().(*predictScratch)
	kstar := s.vector(len(g.x))
	g.fillKernelRow(kstar, x)
	mu := kstar.Dot(g.alpha)
	mathx.SolveLowerInPlace(g.l, kstar)
	variance := kxx - kstar.Dot(kstar)
	if variance < 0 {
		variance = 0
	}
	mean, std = g.scaler.Inverse(mu), g.scaler.InverseStd(math.Sqrt(variance))
	scratchPool.Put(s)
	return mean, std
}

// predictBlock bounds how many candidates one batched block processes:
// large enough to amortize the factor traversal, small enough that the
// kernel-row block stays cache-resident against typical collection
// sizes (128 rows × n=100 ≈ 100 KB).
const predictBlock = 128

// PredictBatch evaluates the posterior at every candidate in xs,
// writing results into means and (when non-nil) stds — one blocked
// K(X*, X) build plus one multi-RHS forward solve per block against the
// cached Cholesky factor, instead of len(xs) independent builds and
// solves. Passing stds == nil skips the O(n²)-per-candidate triangular
// solves entirely — the mean-only mode feasibility scans run on.
// Results are bit-identical to calling Predict per candidate, at any
// batch size. Safe for concurrent readers, allocation-free at steady
// state.
func (g *Regressor) PredictBatch(xs [][]float64, means, stds []float64) {
	m := len(xs)
	if len(means) != m || (stds != nil && len(stds) != m) {
		panic(fmt.Sprintf("gp: PredictBatch of %d inputs into %d means, %d stds", m, len(means), len(stds)))
	}
	if !g.fitted {
		for j, x := range xs {
			means[j] = 0
			if stds != nil {
				stds[j] = math.Sqrt(g.Kernel.Eval(x, x) + g.NoiseVar)
			}
		}
		return
	}
	n := len(g.x)
	s := scratchPool.Get().(*predictScratch)
	for lo := 0; lo < m; lo += predictBlock {
		hi := lo + predictBlock
		if hi > m {
			hi = m
		}
		kb := s.block(hi-lo, n)
		for j := lo; j < hi; j++ {
			row := kb.Row(j - lo)
			g.fillKernelRow(row, xs[j])
			means[j] = row.Dot(g.alpha)
		}
		if stds != nil {
			mathx.SolveLowerMultiInPlace(g.l, kb)
			for j := lo; j < hi; j++ {
				v := kb.Row(j - lo)
				variance := g.Kernel.Eval(xs[j], xs[j]) - v.Dot(v)
				if variance < 0 {
					variance = 0
				}
				stds[j] = g.scaler.InverseStd(math.Sqrt(variance))
			}
		}
		for j := lo; j < hi; j++ {
			means[j] = g.scaler.Inverse(means[j])
		}
	}
	scratchPool.Put(s)
}

// Sample draws an (independent-marginal) posterior sample at x: a
// cheap Thompson-style draw that avoids the O(m³) joint sampling cost
// over large candidate pools.
func (g *Regressor) Sample(x []float64, rng *rand.Rand) float64 {
	mean, std := g.Predict(x)
	return mean + std*rng.NormFloat64()
}

// LogMarginalLikelihood returns log p(y|X) of the fitted data, or -Inf
// when unfitted.
func (g *Regressor) LogMarginalLikelihood() float64 {
	if !g.fitted {
		return math.Inf(-1)
	}
	return g.logMarginalLikelihood(g.ty)
}
