package gp

import (
	"fmt"

	"github.com/atlas-slicing/atlas/internal/mathx"
)

// SnapshotVersion tags the GP snapshot encoding; restore rejects other
// versions with a diagnostic instead of misreading bytes.
const SnapshotVersion = 1

// Kernel names used by the snapshot encoding.
const (
	kernelMatern52 = "matern52"
	kernelRBF      = "rbf"
)

// State is the versioned serializable form of a Regressor: kernel
// hyperparameters, the observed collection, and the Cholesky factor of
// K + σ²I, so a restored regressor predicts bit-identically and
// continues incremental rank-1 conditioning exactly where the original
// left off.
type State struct {
	Version       int                `json:"version"`
	Kernel        string             `json:"kernel"`
	LengthScale   float64            `json:"length_scale"`
	Variance      float64            `json:"variance"`
	NoiseVar      float64            `json:"noise_var"`
	OptimizeHyper bool               `json:"optimize_hyper"`
	RefactorEvery int                `json:"refactor_every"`
	SinceRefactor int                `json:"since_refactor"`
	X             [][]float64        `json:"x"`
	Y             []float64          `json:"y"`
	L             *mathx.MatrixState `json:"l,omitempty"`
	Fitted        bool               `json:"fitted"`
}

// Snapshot returns a deep-copied serializable snapshot of the
// regressor. Only the Matérn-5/2 and RBF kernels are supported; other
// kernels return an error so callers never persist an artifact they
// cannot restore.
func (g *Regressor) Snapshot() (*State, error) {
	s := &State{
		Version:       SnapshotVersion,
		NoiseVar:      g.NoiseVar,
		OptimizeHyper: g.OptimizeHyper,
		RefactorEvery: g.RefactorEvery,
		SinceRefactor: g.sinceRefactor,
		X:             mathx.CopyVecs(g.x),
		Y:             append([]float64(nil), g.y...),
		Fitted:        g.fitted,
	}
	switch k := g.Kernel.(type) {
	case Matern52:
		s.Kernel, s.LengthScale, s.Variance = kernelMatern52, k.LengthScale, k.Variance
	case RBF:
		s.Kernel, s.LengthScale, s.Variance = kernelRBF, k.LengthScale, k.Variance
	default:
		return nil, fmt.Errorf("gp: kernel %T is not snapshottable", g.Kernel)
	}
	if g.fitted {
		s.L = g.l.State()
	}
	return s, nil
}

// FromSnapshot rebuilds a regressor from its snapshot, validating the
// version tag, the kernel name, and the factor dimensions. The target
// scaler and alpha vector are recomputed from the stored collection —
// the same arithmetic Fit/Observe performs, so the restored posterior
// matches the original bit for bit.
func FromSnapshot(s *State) (*Regressor, error) {
	if s == nil {
		return nil, fmt.Errorf("gp: nil snapshot")
	}
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("gp: snapshot version %d, want %d", s.Version, SnapshotVersion)
	}
	g := &Regressor{
		NoiseVar:      s.NoiseVar,
		OptimizeHyper: s.OptimizeHyper,
		RefactorEvery: s.RefactorEvery,
	}
	switch s.Kernel {
	case kernelMatern52:
		g.Kernel = Matern52{LengthScale: s.LengthScale, Variance: s.Variance}
	case kernelRBF:
		g.Kernel = RBF{LengthScale: s.LengthScale, Variance: s.Variance}
	default:
		return nil, fmt.Errorf("gp: unknown kernel %q in snapshot", s.Kernel)
	}
	if len(s.X) != len(s.Y) {
		return nil, fmt.Errorf("gp: snapshot has %d inputs but %d targets", len(s.X), len(s.Y))
	}
	if !s.Fitted {
		if len(s.X) != 0 {
			return nil, fmt.Errorf("gp: unfitted snapshot carries %d observations", len(s.X))
		}
		return g, nil
	}
	n := len(s.X)
	if n == 0 {
		return nil, fmt.Errorf("gp: fitted snapshot has no observations")
	}
	dim := len(s.X[0])
	for i, x := range s.X {
		if len(x) != dim {
			return nil, fmt.Errorf("gp: snapshot input %d has dim %d, want %d", i, len(x), dim)
		}
	}
	l, err := mathx.MatrixFromState(s.L)
	if err != nil {
		return nil, fmt.Errorf("gp: snapshot factor: %w", err)
	}
	if l == nil || l.Rows != n || l.Cols != n {
		return nil, fmt.Errorf("gp: snapshot factor dims do not match %d observations", n)
	}
	g.x = mathx.CopyVecs(s.X)
	g.y = append([]float64(nil), s.Y...)
	g.scaler.Fit(g.y)
	ty := mathx.Vector(g.scaler.TransformAll(g.y))
	g.l = l
	g.ty = ty
	g.alpha = mathx.CholSolve(l, ty)
	g.fitted = true
	g.sinceRefactor = s.SinceRefactor
	return g, nil
}
