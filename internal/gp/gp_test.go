package gp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/atlas-slicing/atlas/internal/mathx"
)

func TestKernelSymmetryAndPeak(t *testing.T) {
	f := func(rawA, rawB [3]float64) bool {
		a, b := rawA[:], rawB[:]
		for _, x := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(x) || math.Abs(x) > 1e6 {
				return true
			}
		}
		for _, k := range []Kernel{Matern52{1, 1}, RBF{1, 1}} {
			kab, kba := k.Eval(a, b), k.Eval(b, a)
			if kab != kba {
				return false
			}
			if kab > k.Eval(a, a)+1e-12 {
				return false // peak at zero distance
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKernelDecay(t *testing.T) {
	k := Matern52{LengthScale: 1, Variance: 1}
	prev := k.Eval([]float64{0}, []float64{0})
	for d := 0.5; d < 10; d += 0.5 {
		v := k.Eval([]float64{0}, []float64{d})
		if v >= prev {
			t.Fatalf("kernel not decaying at distance %v", d)
		}
		prev = v
	}
}

func TestGramMatrixIsPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(10)
		xs := make([][]float64, n)
		for i := range xs {
			xs[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		k := Matern52{LengthScale: 0.7, Variance: 2}
		g := mathx.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				g.Set(i, j, k.Eval(xs[i], xs[j]))
			}
		}
		g.AddDiag(1e-8)
		if _, _, err := mathx.CholeskyJitter(g, 1e-10); err != nil {
			t.Fatalf("gram matrix not PSD: %v", err)
		}
	}
}

func TestInterpolatesTrainingData(t *testing.T) {
	g := NewRegressor()
	g.OptimizeHyper = false
	g.NoiseVar = 1e-8
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{1, -1, 2}
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mean, std := g.Predict(x)
		if math.Abs(mean-ys[i]) > 1e-3 {
			t.Fatalf("mean at training point %v = %v, want %v", x, mean, ys[i])
		}
		if std > 0.05 {
			t.Fatalf("std at training point = %v, want tiny", std)
		}
	}
}

func TestPriorFarFromData(t *testing.T) {
	g := NewRegressor()
	g.OptimizeHyper = false
	xs := [][]float64{{0}, {0.1}}
	ys := []float64{5, 5.1}
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	_, stdNear := g.Predict([]float64{0.05})
	_, stdFar := g.Predict([]float64{100})
	if stdFar <= stdNear {
		t.Fatalf("uncertainty should grow away from data: near %v far %v", stdNear, stdFar)
	}
}

func TestUnfittedPredictsPrior(t *testing.T) {
	g := NewRegressor()
	mean, std := g.Predict([]float64{1, 2})
	if mean != 0 {
		t.Fatalf("prior mean = %v", mean)
	}
	if std <= 0 {
		t.Fatalf("prior std = %v", std)
	}
}

func TestFitRecoversFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := NewRegressor()
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		x := []float64{rng.Float64() * 2}
		xs = append(xs, x)
		ys = append(ys, math.Sin(3*x[0]))
	}
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	var sse float64
	const n = 40
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 2}
		mean, _ := g.Predict(x)
		d := mean - math.Sin(3*x[0])
		sse += d * d
	}
	if rmse := math.Sqrt(sse / n); rmse > 0.05 {
		t.Fatalf("RMSE %v too high", rmse)
	}
}

func TestFitMismatch(t *testing.T) {
	g := NewRegressor()
	if err := g.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error on length mismatch")
	}
}

func TestFitEmptyResets(t *testing.T) {
	g := NewRegressor()
	if err := g.Fit([][]float64{{1}}, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if err := g.Fit(nil, nil); err != nil {
		t.Fatal(err)
	}
	if g.Fitted() {
		t.Fatal("empty fit should reset")
	}
}

func TestFitCopiesInputs(t *testing.T) {
	g := NewRegressor()
	x := []float64{1}
	if err := g.Fit([][]float64{x}, []float64{3}); err != nil {
		t.Fatal(err)
	}
	before, _ := g.Predict([]float64{1})
	x[0] = 99 // mutate caller's slice
	after, _ := g.Predict([]float64{1})
	if before != after {
		t.Fatal("regressor aliases caller data")
	}
}

func TestSampleCentersOnPosterior(t *testing.T) {
	g := NewRegressor()
	g.OptimizeHyper = false
	g.NoiseVar = 1e-6
	if err := g.Fit([][]float64{{0}, {1}}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		sum += g.Sample([]float64{0.5}, rng)
	}
	mean, _ := g.Predict([]float64{0.5})
	if math.Abs(sum/n-mean) > 0.05 {
		t.Fatalf("sample mean %v vs posterior mean %v", sum/n, mean)
	}
}

func TestLogMarginalLikelihoodFinite(t *testing.T) {
	g := NewRegressor()
	if !math.IsInf(g.LogMarginalLikelihood(), -1) {
		t.Fatal("unfitted LML should be -Inf")
	}
	if err := g.Fit([][]float64{{0}, {1}, {2}}, []float64{1, 2, 1}); err != nil {
		t.Fatal(err)
	}
	lml := g.LogMarginalLikelihood()
	if math.IsNaN(lml) || math.IsInf(lml, 0) {
		t.Fatalf("LML = %v", lml)
	}
}

func TestHyperOptImprovesFit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 40; i++ {
		x := []float64{rng.Float64() * 0.2} // short length-scale data
		xs = append(xs, x)
		ys = append(ys, math.Sin(40*x[0]))
	}
	tuned := NewRegressor()
	if err := tuned.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if k, ok := tuned.Kernel.(Matern52); ok && k.LengthScale >= 1.6 {
		t.Fatalf("hyper-opt kept a long length scale %v for wiggly data", k.LengthScale)
	}
}

// observeFixture returns a noisy 2-D regression sample.
func observeFixture(n int, rng *rand.Rand) (xs [][]float64, ys []float64) {
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, math.Sin(3*x[0])-x[1]*x[1]+0.05*rng.NormFloat64())
	}
	return xs, ys
}

// TestObserveMatchesFullRefactorization: the incremental rank-1
// Cholesky path must reproduce a from-scratch factorization at the same
// hyperparameters to tight tolerance.
func TestObserveMatchesFullRefactorization(t *testing.T) {
	rng := mathx.NewRNG(11)
	xs, ys := observeFixture(60, rng)

	inc := NewRegressor()
	inc.OptimizeHyper = false
	inc.RefactorEvery = 1000 // stay on the incremental path throughout
	if err := inc.Fit(xs[:5], ys[:5]); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < len(xs); i++ {
		if err := inc.Observe(xs[i], ys[i]); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}

	full := NewRegressor()
	full.OptimizeHyper = false
	if err := full.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 25; trial++ {
		q := []float64{rng.Float64(), rng.Float64()}
		m1, s1 := inc.Predict(q)
		m2, s2 := full.Predict(q)
		if math.Abs(m1-m2) > 1e-8 || math.Abs(s1-s2) > 1e-8 {
			t.Fatalf("posterior diverged at %v: mean %g vs %g, std %g vs %g", q, m1, m2, s1, s2)
		}
	}
	if lml1, lml2 := inc.LogMarginalLikelihood(), full.LogMarginalLikelihood(); math.Abs(lml1-lml2) > 1e-8 {
		t.Fatalf("LML diverged: %g vs %g", lml1, lml2)
	}
}

// TestObservePeriodicRefactorization: with a small RefactorEvery the
// regressor interleaves incremental and full updates and still matches
// the from-scratch posterior (hyperparameters fixed).
func TestObservePeriodicRefactorization(t *testing.T) {
	rng := mathx.NewRNG(12)
	xs, ys := observeFixture(40, rng)

	inc := NewRegressor()
	inc.OptimizeHyper = false
	inc.RefactorEvery = 4
	for i := range xs {
		if err := inc.Observe(xs[i], ys[i]); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}

	full := NewRegressor()
	full.OptimizeHyper = false
	if err := full.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	q := []float64{0.4, 0.6}
	m1, s1 := inc.Predict(q)
	m2, s2 := full.Predict(q)
	if math.Abs(m1-m2) > 1e-8 || math.Abs(s1-s2) > 1e-8 {
		t.Fatalf("posterior diverged: mean %g vs %g, std %g vs %g", m1, m2, s1, s2)
	}
}

// TestObserveFromEmpty: Observe must bootstrap an unfitted regressor.
func TestObserveFromEmpty(t *testing.T) {
	g := NewRegressor()
	g.OptimizeHyper = false
	rng := mathx.NewRNG(13)
	xs, ys := observeFixture(10, rng)
	for i := range xs {
		if err := g.Observe(xs[i], ys[i]); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	if g.N() != 10 || !g.Fitted() {
		t.Fatalf("n = %d fitted = %v", g.N(), g.Fitted())
	}
	m, _ := g.Predict(xs[3])
	if math.Abs(m-ys[3]) > 0.2 {
		t.Fatalf("poor interpolation after incremental fits: %g vs %g", m, ys[3])
	}
}

// TestObserveWithHyperTuning: the default configuration (hyperparameter
// search on) must keep the model healthy across many Observe calls.
func TestObserveWithHyperTuning(t *testing.T) {
	g := NewRegressor()
	g.RefactorEvery = 8
	rng := mathx.NewRNG(14)
	xs, ys := observeFixture(30, rng)
	for i := range xs {
		if err := g.Observe(xs[i], ys[i]); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	if !g.Fitted() {
		t.Fatal("not fitted")
	}
	var se float64
	for i := range xs {
		m, _ := g.Predict(xs[i])
		se += (m - ys[i]) * (m - ys[i])
	}
	if rmse := math.Sqrt(se / float64(len(xs))); rmse > 0.15 {
		t.Fatalf("rmse %g too high after incremental conditioning", rmse)
	}
}
