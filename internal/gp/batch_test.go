package gp

import (
	"math"
	"testing"

	"github.com/atlas-slicing/atlas/internal/mathx"
)

// randomPool draws m random dim-dimensional query points.
func randomPool(m, dim int, rng interface{ Float64() float64 }) [][]float64 {
	xs := make([][]float64, m)
	for i := range xs {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.Float64()
		}
		xs[i] = x
	}
	return xs
}

// fitRandom conditions a fresh regressor on n random points of a smooth
// target.
func fitRandom(t *testing.T, kernel Kernel, n, dim int, seed int64) *Regressor {
	t.Helper()
	rng := mathx.NewRNG(seed)
	xs := randomPool(n, dim, rng)
	ys := make([]float64, n)
	for i, x := range xs {
		ys[i] = x[0] - 0.5*x[dim-1] + 0.1*rng.NormFloat64()
	}
	g := NewRegressor()
	g.Kernel = kernel
	g.OptimizeHyper = false
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPredictBatchMatchesPredict is the batched-inference property
// test: across kernels, collection sizes, and pool sizes straddling the
// block boundary, PredictBatch must reproduce sequential Predict bit
// for bit — in both full and mean-only modes.
func TestPredictBatchMatchesPredict(t *testing.T) {
	kernels := []Kernel{
		Matern52{LengthScale: 0.8, Variance: 1.5},
		RBF{LengthScale: 1.2, Variance: 0.7},
	}
	pools := []int{1, 3, predictBlock - 1, predictBlock, predictBlock + 1, 3*predictBlock + 17}
	for ki, kernel := range kernels {
		for _, n := range []int{1, 7, 60} {
			g := fitRandom(t, kernel, n, 9, int64(100+ki*10+n))
			rng := mathx.NewRNG(int64(7 + n))
			for _, m := range pools {
				xs := randomPool(m, 9, rng)
				means := make([]float64, m)
				stds := make([]float64, m)
				g.PredictBatch(xs, means, stds)
				meansOnly := make([]float64, m)
				g.PredictBatch(xs, meansOnly, nil)
				for j, x := range xs {
					wm, ws := g.Predict(x)
					if means[j] != wm || stds[j] != ws {
						t.Fatalf("kernel %d n=%d m=%d cand %d: batch (%v, %v) vs sequential (%v, %v)",
							ki, n, m, j, means[j], stds[j], wm, ws)
					}
					if meansOnly[j] != wm {
						t.Fatalf("kernel %d n=%d m=%d cand %d: mean-only %v vs sequential %v",
							ki, n, m, j, meansOnly[j], wm)
					}
				}
			}
		}
	}
}

// TestPredictBatchUnfitted checks the prior path: zero mean, prior std,
// matching Predict exactly.
func TestPredictBatchUnfitted(t *testing.T) {
	g := NewRegressor()
	xs := randomPool(10, 4, mathx.NewRNG(5))
	means := make([]float64, 10)
	stds := make([]float64, 10)
	g.PredictBatch(xs, means, stds)
	for j, x := range xs {
		wm, ws := g.Predict(x)
		if means[j] != wm || stds[j] != ws {
			t.Fatalf("cand %d: unfitted batch (%v, %v) vs Predict (%v, %v)", j, means[j], stds[j], wm, ws)
		}
		if means[j] != 0 || math.IsNaN(stds[j]) {
			t.Fatalf("cand %d: prior should be (0, finite), got (%v, %v)", j, means[j], stds[j])
		}
	}
}

// TestPredictBatchSnapshotRoundTrip exercises the batched path on a
// restored regressor: after a snapshot/restore cycle — including
// incremental Observes on both sides — batched predictions from the
// restored model must equal the original's, bit for bit.
func TestPredictBatchSnapshotRoundTrip(t *testing.T) {
	g := fitRandom(t, Matern52{LengthScale: 0.9, Variance: 1.1}, 40, 9, 77)
	rng := mathx.NewRNG(78)
	for i := 0; i < 10; i++ {
		x := randomPool(1, 9, rng)[0]
		if err := g.Observe(x, rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}

	xs := randomPool(300, 9, rng)
	wantMeans := make([]float64, len(xs))
	wantStds := make([]float64, len(xs))
	g.PredictBatch(xs, wantMeans, wantStds)
	gotMeans := make([]float64, len(xs))
	gotStds := make([]float64, len(xs))
	r.PredictBatch(xs, gotMeans, gotStds)
	for j := range xs {
		if gotMeans[j] != wantMeans[j] || gotStds[j] != wantStds[j] {
			t.Fatalf("cand %d: restored batch (%v, %v) vs original (%v, %v)",
				j, gotMeans[j], gotStds[j], wantMeans[j], wantStds[j])
		}
		wm, ws := r.Predict(xs[j])
		if gotMeans[j] != wm || gotStds[j] != ws {
			t.Fatalf("cand %d: restored batch (%v, %v) vs restored Predict (%v, %v)",
				j, gotMeans[j], gotStds[j], wm, ws)
		}
	}
}
