package core

import (
	"math"
	"math/rand"
	"sync"

	"github.com/atlas-slicing/atlas/internal/bnn"
	"github.com/atlas-slicing/atlas/internal/bo"
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// PolicyInputDim is the input dimensionality of the QoE surrogate:
// [traffic, latency threshold Y, service-class fingerprint, six
// configuration dimensions], all normalized (paper §5.2: "its inputs
// include the network state s_t, threshold Y and network configuration
// a_t" — the class fingerprint extends the state so one surrogate can
// tell heterogeneous service classes apart).
const PolicyInputDim = 3 + slicing.ConfigDim

// MaxTraffic normalizes the traffic state (the prototype emulates up to
// four users).
const MaxTraffic = 4

// EncodeInput builds the surrogate input vector for a scenario and
// configuration. traffic is the *current interval's* demand, so
// time-varying traffic models surface in the encoding; a nil class
// encodes the default latency-availability fingerprint.
func EncodeInput(space slicing.ConfigSpace, traffic int, sla slicing.SLA, class *slicing.ServiceClass, cfg slicing.Config) []float64 {
	v := make([]float64, PolicyInputDim)
	EncodeInputInto(space, traffic, sla, class, cfg, v)
	return v
}

// EncodeInputInto is EncodeInput writing into a caller-provided
// PolicyInputDim-sized buffer — the allocation-free form the online hot
// path encodes whole candidate pools with.
func EncodeInputInto(space slicing.ConfigSpace, traffic int, sla slicing.SLA, class *slicing.ServiceClass, cfg slicing.Config, v []float64) {
	var c slicing.ServiceClass
	if class != nil {
		c = *class
	}
	v[0] = float64(traffic) / MaxTraffic
	v[1] = sla.ThresholdMs / 1000
	v[2] = c.Feature()
	space.NormalizeInto(cfg, v[3:PolicyInputDim])
}

// Policy is the offline-trained configuration policy: the BNN
// approximation of the simulator QoE function Q_s plus the final dual
// multiplier. It is the artifact stage 2 hands to stage 3.
type Policy struct {
	Model   *bnn.Model
	Space   slicing.ConfigSpace
	SLA     slicing.SLA
	Traffic int
	Lambda  float64
	// Class is the service class the policy was trained for; nil means
	// the prototype video-analytics class under the SLA's
	// latency-availability QoE.
	Class *slicing.ServiceClass
}

// Encode builds the model input for a configuration under the policy's
// scenario.
func (p *Policy) Encode(cfg slicing.Config) []float64 {
	return EncodeInput(p.Space, p.Traffic, p.SLA, p.Class, cfg)
}

// PredictQoE returns the model's posterior mean and std of the simulator
// QoE for cfg, clamped into [0, 1].
func (p *Policy) PredictQoE(cfg slicing.Config, samples int, rng *rand.Rand) (mean, std float64) {
	mean, std = p.Model.Predict(p.Encode(cfg), samples, rng)
	return mathx.Clip(mean, 0, 1), std
}

// PredictQoEBatch estimates the posterior mean and std of the simulator
// QoE for many encoded inputs at once, drawing k weight samples and
// evaluating every input under each — k draws total instead of k per
// input, which is what makes large candidate pools affordable.
func (p *Policy) PredictQoEBatch(inputs [][]float64, k int, rng *rand.Rand) (means, stds []float64) {
	n := len(inputs)
	means = make([]float64, n)
	stds = make([]float64, n)
	p.PredictQoEBatchInto(inputs, k, rng, means, stds)
	return means, stds
}

// PredictQoEBatchInto is PredictQoEBatch writing into caller-provided
// buffers, which double as the running sum and sum-of-squares
// accumulators — no per-scan allocation beyond the k weight draws.
// Identical draws, identical accumulation order, identical results.
func (p *Policy) PredictQoEBatchInto(inputs [][]float64, k int, rng *rand.Rand, means, stds []float64) {
	if k < 2 {
		k = 2
	}
	n := len(inputs)
	sum, sumSq := means[:n], stds[:n]
	for i := range sum {
		sum[i], sumSq[i] = 0, 0
	}
	for d := 0; d < k; d++ {
		draw := p.Model.Draw(rng)
		p.Model.EvalBatchAccum(draw, inputs, sum, sumSq)
	}
	kf := float64(k)
	for i := 0; i < n; i++ {
		m := sum[i] / kf
		variance := sumSq[i]/kf - m*m
		if variance < 0 {
			variance = 0
		}
		means[i] = m
		stds[i] = math.Sqrt(variance * kf / (kf - 1))
	}
}

// SelectConfig picks the configuration minimizing the Lagrangian
// F(a) − λ(Q̂(a) − E) over a random pool using the posterior-mean QoE —
// the greedy deployment action of the trained policy.
func (p *Policy) SelectConfig(pool int, rng *rand.Rand) slicing.Config {
	draw := p.Model.MeanDraw()
	best, bestL := slicing.Config{}, math.Inf(1)
	for i := 0; i < pool; i++ {
		cfg := p.Space.Sample(rng)
		q := mathx.Clip(p.Model.Eval(draw, p.Encode(cfg)), 0, 1)
		l := p.Space.Usage(cfg) - p.Lambda*(q-p.SLA.Availability)
		if l < bestL {
			best, bestL = cfg, l
		}
	}
	return best
}

// OfflineOptions configures stage 2.
type OfflineOptions struct {
	Space   slicing.ConfigSpace
	SLA     slicing.SLA
	Traffic int
	// Class selects the service class trained for: its application
	// profile drives the simulator episodes and its QoE model judges
	// them. Nil keeps the prototype workload under the SLA's
	// latency-availability QoE.
	Class *slicing.ServiceClass

	Iters   int // total iterations (paper: 1000)
	Explore int // initial pure exploration (paper: 100)
	Pool    int // candidate pool per selection
	Batch   int // parallel simulator queries per iteration

	// Eps is the dual step size ε of Eq. 9 (paper: 0.1).
	Eps float64
	// Episodes averaged per QoE query.
	Episodes int

	BNN       bnn.Options
	FitEpochs int

	// UseGP switches the surrogate to a Gaussian process and GPAcq
	// selects its acquisition — the GP-EI / GP-PI / GP-UCB comparators
	// of Fig. 17. With UseGP false, selection is the paper's parallel
	// Thompson sampling on the BNN.
	UseGP bool
	GPAcq bo.Acquisition
}

// DefaultOfflineOptions returns harness-scale defaults.
func DefaultOfflineOptions() OfflineOptions {
	return OfflineOptions{
		Space:     slicing.DefaultConfigSpace(),
		SLA:       slicing.DefaultSLA(),
		Traffic:   1,
		Iters:     250,
		Explore:   40,
		Pool:      2000,
		Batch:     4,
		Eps:       0.1,
		Episodes:  1,
		BNN:       bnn.DefaultOptions(),
		FitEpochs: 15,
	}
}

// OfflineResult is the outcome of stage 2.
type OfflineResult struct {
	Policy *Policy
	// BestConfig is the queried configuration with the lowest usage
	// among those meeting the QoE requirement (measured in the
	// simulator); BestUsage and BestQoE are its measurements.
	BestConfig slicing.Config
	BestUsage  float64
	BestQoE    float64
	// UsageCurve and QoECurve are per-iteration batch means (the
	// training-progress series of Fig. 16).
	UsageCurve []float64
	QoECurve   []float64
	// LambdaCurve tracks the dual multiplier.
	LambdaCurve []float64
}

// OfflineTrainer runs stage 2 (Algorithm 2) against a simulator.
type OfflineTrainer struct {
	Opts OfflineOptions
	// Env is the (augmented) simulator used as the offline environment.
	Env slicing.Env
}

// NewOfflineTrainer builds a trainer against env.
func NewOfflineTrainer(env slicing.Env, opts OfflineOptions) *OfflineTrainer {
	return &OfflineTrainer{Opts: opts, Env: env}
}

// MeasureQoE queries the environment for the QoE of cfg, averaging the
// configured number of episodes. Seeds derive from the configuration so
// parallel queries are deterministic. With a service class set, the
// episodes run the class's workload and the class's QoE model judges
// them.
func (t *OfflineTrainer) MeasureQoE(cfg slicing.Config) float64 {
	base := seedOf(cfg.Vector())
	var sum float64
	n := max(1, t.Opts.Episodes)
	for e := 0; e < n; e++ {
		tr := slicing.EpisodeFor(t.Env, t.Opts.Class, cfg, t.Opts.Traffic, mathx.ChildSeed(base, e))
		sum += t.evalTrace(tr)
	}
	return sum / float64(n)
}

// evalTrace judges one episode trace under the configured service class
// (falling back to the SLA's latency-availability QoE).
func (t *OfflineTrainer) evalTrace(tr slicing.Trace) float64 {
	return slicing.EvalFor(t.Opts.Class, t.Opts.SLA, tr)
}

// Run executes offline training and returns the trained policy.
func (t *OfflineTrainer) Run(rng *rand.Rand) *OfflineResult {
	opts := t.Opts
	space := opts.Space
	model := bnn.New(PolicyInputDim, opts.BNN, mathx.NewRNG(rng.Int63()))
	pol := &Policy{Model: model, Space: space, SLA: opts.SLA, Traffic: opts.Traffic, Class: opts.Class}

	var gpSur *bo.GPSurrogate
	if opts.UseGP {
		gpSur = bo.NewGPSurrogate()
		if opts.GPAcq == nil {
			// selectBatch reads t.Opts, so the default must land there.
			t.Opts.GPAcq = bo.EI{}
			opts = t.Opts
		}
	}
	bnnSur := bo.NewBNNSurrogate(model, mathx.NewRNG(rng.Int63()))
	bnnSur.FitEpochs = opts.FitEpochs

	res := &OfflineResult{Policy: pol, BestUsage: math.Inf(1)}
	var xs [][]float64
	var ys []float64
	lambda := 0.0

	for it := 0; it < opts.Iters; it++ {
		batch := t.selectBatch(it, lambda, gpSur, bnnSur, rng)

		// Parallel simulator queries (the paper's multiprocessing PTS).
		qoes := make([]float64, len(batch))
		var wg sync.WaitGroup
		for i := range batch {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				qoes[i] = t.MeasureQoE(batch[i])
			}(i)
		}
		wg.Wait()

		var usageSum, qoeSum float64
		for i, cfg := range batch {
			usage := space.Usage(cfg)
			usageSum += usage
			qoeSum += qoes[i]
			xs = append(xs, pol.Encode(cfg))
			ys = append(ys, qoes[i])
			if qoes[i] >= opts.SLA.Availability && usage < res.BestUsage {
				res.BestConfig, res.BestUsage, res.BestQoE = cfg, usage, qoes[i]
			}
		}
		meanUsage := usageSum / float64(len(batch))
		meanQoE := qoeSum / float64(len(batch))
		res.UsageCurve = append(res.UsageCurve, meanUsage)
		res.QoECurve = append(res.QoECurve, meanQoE)

		// Dual update (Eq. 9), averaged over the parallel queries.
		lambda = math.Max(0, lambda-opts.Eps*(meanQoE-opts.SLA.Availability))
		res.LambdaCurve = append(res.LambdaCurve, lambda)

		// Refit the surrogate on the grown collection.
		if opts.UseGP {
			_ = gpSur.Fit(xs, ys)
		} else {
			_ = bnnSur.Fit(xs, ys)
		}
	}
	pol.Lambda = lambda
	if math.IsInf(res.BestUsage, 1) {
		// Nothing met the SLA: fall back to the highest-QoE query.
		bestQ := -1.0
		for i, x := range xs {
			if ys[i] > bestQ {
				bestQ = ys[i]
				res.BestConfig = decodeConfig(space, x)
				res.BestUsage = space.Usage(res.BestConfig)
				res.BestQoE = ys[i]
			}
		}
	}
	return res
}

// selectBatch picks the next configurations to query: random during
// warmup, Lagrangian Thompson sampling on the BNN otherwise (or the
// acquisition-scored GP comparator).
func (t *OfflineTrainer) selectBatch(it int, lambda float64, gpSur *bo.GPSurrogate, bnnSur *bo.BNNSurrogate, rng *rand.Rand) []slicing.Config {
	opts := t.Opts
	space := opts.Space
	batch := max(1, opts.Batch)
	if it < opts.Explore {
		out := make([]slicing.Config, batch)
		for i := range out {
			out[i] = space.Sample(rng)
		}
		return out
	}

	pool := make([]slicing.Config, max(2, opts.Pool))
	for i := range pool {
		pool[i] = space.Sample(rng)
	}

	if opts.UseGP {
		// Score the Lagrangian posterior with the acquisition: the
		// Lagrangian mean is F − λ(μ_Q − E) and its std is λ·σ_Q.
		type scored struct {
			idx int
			s   float64
		}
		bestL := math.Inf(1)
		means := make([]float64, len(pool))
		stds := make([]float64, len(pool))
		for i, cfg := range pool {
			mu, sd := gpSur.Predict(encodeFor(space, opts, cfg))
			mu = mathx.Clip(mu, 0, 1)
			means[i] = space.Usage(cfg) - lambda*(mu-opts.SLA.Availability)
			stds[i] = lambda * sd
			if means[i] < bestL {
				bestL = means[i]
			}
		}
		scores := make([]scored, len(pool))
		for i := range pool {
			scores[i] = scored{i, opts.GPAcq.Score(means[i], stds[i], bestL)}
		}
		picks := make([]slicing.Config, 0, batch)
		used := make(map[int]bool)
		for b := 0; b < batch; b++ {
			bi, bs := -1, math.Inf(-1)
			for _, s := range scores {
				if !used[s.idx] && s.s > bs {
					bi, bs = s.idx, s.s
				}
			}
			if bi < 0 {
				break
			}
			used[bi] = true
			picks = append(picks, pool[bi])
		}
		return picks
	}

	// Parallel Thompson sampling: one BNN draw per batch slot, each
	// minimizing the Lagrangian over the pool (Algorithm 2, lines 3–7).
	picks := make([]slicing.Config, batch)
	for b := 0; b < batch; b++ {
		draw := bnnSur.DrawFunc(rng)
		best, bestL := pool[0], math.Inf(1)
		for _, cfg := range pool {
			q := mathx.Clip(draw(encodeFor(space, opts, cfg)), 0, 1)
			l := space.Usage(cfg) - lambda*(q-opts.SLA.Availability)
			if l < bestL {
				best, bestL = cfg, l
			}
		}
		picks[b] = best
	}
	return picks
}

func encodeFor(space slicing.ConfigSpace, opts OfflineOptions, cfg slicing.Config) []float64 {
	return EncodeInput(space, opts.Traffic, opts.SLA, opts.Class, cfg)
}

func decodeConfig(space slicing.ConfigSpace, x []float64) slicing.Config {
	return space.Denormalize(x[PolicyInputDim-slicing.ConfigDim:])
}
