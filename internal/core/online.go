package core

import (
	"math"
	"math/rand"
	"runtime"
	"sync"

	"github.com/atlas-slicing/atlas/internal/bnn"
	"github.com/atlas-slicing/atlas/internal/bo"
	"github.com/atlas-slicing/atlas/internal/gp"
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// ResidualModel selects what the online stage learns (the Fig. 23
// ablation).
type ResidualModel int

// Residual-model choices.
const (
	// ResidualGP is the paper's design: a Gaussian process learns only
	// the sim-to-real QoE difference G = Q − Q_s.
	ResidualGP ResidualModel = iota
	// ResidualBNN replaces the GP with a freshly initialized Bayesian
	// network — sample-inefficient with ~100 online transitions.
	ResidualBNN
	// ContinueBNN drops the residual idea and keeps training the
	// offline BNN directly on real QoE observations ("BNN-Cont'd").
	ContinueBNN
)

// OnlineOptions configures stage 3.
type OnlineOptions struct {
	// N is the number of simulator queries used to update the dual
	// multiplier after each online action (paper: 20).
	N int
	// Pool is the candidate pool per selection.
	Pool int
	// Eps is the dual step size of Eq. 15.
	Eps float64
	// Schedule produces β_t; defaults to the paper's cRGP-UCB with
	// ρ = 0.1, B = 10.
	Schedule bo.BetaSchedule
	// Acq, when non-nil, replaces the confidence-bound selection with a
	// classic acquisition on the Lagrangian posterior (the EI/PI
	// comparators of Fig. 22).
	Acq bo.Acquisition
	// Model selects the online learner (Fig. 23 ablation).
	Model ResidualModel
	// OfflineAccel enables the simulator-driven multiplier updates;
	// disabling it reproduces the "No Offline Acc." ablation.
	OfflineAccel bool
	// PredictSamples is the number of BNN draws for posterior
	// estimates.
	PredictSamples int
	// Episodes averaged per simulator query.
	Episodes int
}

// DefaultOnlineOptions mirrors the paper's §8 settings.
func DefaultOnlineOptions() OnlineOptions {
	return OnlineOptions{
		N:              20,
		Pool:           2000,
		Eps:            0.1,
		Schedule:       bo.CRGPUCBSchedule{Rho: 0.1, B: 3},
		Model:          ResidualGP,
		OfflineAccel:   true,
		PredictSamples: 8,
		Episodes:       1,
	}
}

// OnlineLearner is stage 3 (Algorithm 3): it implements
// slicing.OnlinePolicy, choosing one configuration per interval for the
// real network while querying the augmented simulator on the side.
type OnlineLearner struct {
	Opts OnlineOptions
	// Policy is the stage-2 artifact (offline BNN + multiplier). A nil
	// model (see NewColdStart) reproduces the "No stage 2" ablation:
	// everything must be learned online.
	Policy *Policy
	// Sim is the augmented simulator (stage-1 output). Nil disables
	// simulator-side queries entirely.
	Sim slicing.Env
	// Class is the tenant's service class: its application profile
	// drives simulator queries and its QoE model judges them. Nil falls
	// back to the policy's class, then to the prototype workload under
	// the SLA's latency-availability QoE.
	Class *slicing.ServiceClass

	lambda     float64
	rng        *rand.Rand
	curTraffic int

	// Residual learner state.
	gpModel  *gp.Regressor
	bnnModel *bnn.Model
	xs       [][]float64
	ys       []float64

	// scan is the candidate-scan scratch, reused every interval so the
	// steady-state hot path (scanPoolN → evalResiduals) allocates
	// nothing. Only the scanning goroutine touches it; the worker
	// fan-out inside evalResiduals writes disjoint spans.
	scan scanScratch

	// memo caches simulator queries within an interval. Q_s(cfg) is a
	// pure function of (cfg, class, traffic): episode seeds derive from
	// the config vector, and the simulator holds no cross-episode
	// state. The accel loop's argmin frequently re-selects the same
	// candidate as λ drifts, and Observe re-queries the applied config
	// — both would re-run bit-identical episodes without the memo.
	memo simMemo

	// Per-iteration log.
	Usages []float64
	QoEs   []float64

	// met is the orchestrator's shared observability bundle (nil =
	// uninstrumented). Recordings are atomic adds that consume no
	// randomness, so the scan hot path stays allocation-free and
	// bit-identical either way.
	met *coreMetrics
}

// NewOnlineLearner builds the online stage from the offline artifacts.
func NewOnlineLearner(policy *Policy, sim slicing.Env, opts OnlineOptions, rng *rand.Rand) *OnlineLearner {
	l := &OnlineLearner{Opts: opts, Policy: policy, Sim: sim, rng: rng}
	if policy != nil {
		l.lambda = policy.Lambda
	}
	if l.lambda <= 0 {
		l.lambda = 1.0
	}
	switch opts.Model {
	case ResidualBNN:
		l.bnnModel = bnn.New(PolicyInputDim, bnn.DefaultOptions(), mathx.NewRNG(rng.Int63()))
	case ContinueBNN:
		// Continues training policy.Model; no extra model needed.
	default:
		l.gpModel = gp.NewRegressor()
	}
	return l
}

// Name implements slicing.OnlinePolicy.
func (l *OnlineLearner) Name() string { return "Atlas" }

// space returns the configuration space (from the policy when present).
func (l *OnlineLearner) space() slicing.ConfigSpace {
	if l.Policy != nil {
		return l.Policy.Space
	}
	return slicing.DefaultConfigSpace()
}

func (l *OnlineLearner) sla() slicing.SLA {
	if l.Policy != nil {
		return l.Policy.SLA
	}
	return slicing.DefaultSLA()
}

func (l *OnlineLearner) traffic() int {
	if l.curTraffic > 0 {
		return l.curTraffic
	}
	if l.Policy != nil {
		return l.Policy.Traffic
	}
	return 1
}

// SetTraffic overrides the traffic level used for simulator queries and
// model inputs — the per-interval demand of a time-varying traffic
// model. Zero restores the policy default.
func (l *OnlineLearner) SetTraffic(t int) { l.curTraffic = t }

// class resolves the effective service class (learner override first,
// then the policy's training class).
func (l *OnlineLearner) class() *slicing.ServiceClass {
	if l.Class != nil {
		return l.Class
	}
	if l.Policy != nil {
		return l.Policy.Class
	}
	return nil
}

// evalTrace judges one episode trace under the effective service class.
func (l *OnlineLearner) evalTrace(tr slicing.Trace) float64 {
	return slicing.EvalFor(l.class(), l.sla(), tr)
}

func (l *OnlineLearner) encode(cfg slicing.Config) []float64 {
	return EncodeInput(l.space(), l.traffic(), l.sla(), l.class(), cfg)
}

// qs returns the offline model's QoE posterior (mean, std) for cfg, or
// (0, 0) without a stage-2 policy.
func (l *OnlineLearner) qs(cfg slicing.Config) (float64, float64) {
	if l.Policy == nil || l.Policy.Model == nil || !l.Policy.Model.Fitted() {
		return 0, 0
	}
	mean, std := l.Policy.PredictQoE(cfg, l.Opts.PredictSamples, l.rng)
	return mean, std
}

// residual returns the online model's estimate (mean, std) of
// G = Q − Q_s at cfg.
func (l *OnlineLearner) residual(cfg slicing.Config) (float64, float64) {
	x := l.encode(cfg)
	switch l.Opts.Model {
	case ResidualBNN:
		if !l.bnnModel.Fitted() {
			return 0, 0.3
		}
		return l.bnnModel.Predict(x, l.Opts.PredictSamples, l.rng)
	case ContinueBNN:
		// The residual concept is dropped; qoe comes straight from the
		// (continually trained) offline model, so the residual is zero.
		return 0, 0.1
	default:
		if l.gpModel == nil || !l.gpModel.Fitted() {
			return 0, 0.3
		}
		return l.gpModel.Predict(x)
	}
}

// simQoE queries the augmented simulator for Q_s(cfg), deduplicating
// repeat queries at the same configuration through the interval memo.
// Correctness of the cache rests on Q_s being a deterministic pure
// function of (cfg, traffic) for a fixed class and simulator: episode
// seeds derive from the config vector, not from any learner RNG, so a
// cached value is bit-identical to a recomputation and skipping the
// recomputation perturbs no random stream.
func (l *OnlineLearner) simQoE(cfg slicing.Config) float64 {
	if l.Sim == nil {
		return 0
	}
	if v, ok := l.memo.lookup(cfg, l.traffic()); ok {
		l.met.recordMemo(true)
		return v
	}
	l.met.recordMemo(false)
	v := l.simQoEUncached(cfg)
	l.memo.add(cfg, l.traffic(), v)
	return v
}

func (l *OnlineLearner) simQoEUncached(cfg slicing.Config) float64 {
	base := seedOf(cfg.Vector())
	n := max(1, l.Opts.Episodes)
	l.met.recordSimEpisodes(n)
	var sum float64
	for e := 0; e < n; e++ {
		tr := slicing.EpisodeFor(l.Sim, l.class(), cfg, l.traffic(), mathx.ChildSeed(base, e))
		sum += l.evalTrace(tr)
	}
	return sum / float64(n)
}

// simMemo is a tiny exact-match cache of simulator queries. Entries
// are valid for one traffic level; a traffic change (or capacity
// overflow) clears it. Configs are compared field-for-field, so a hit
// can only ever return the exact value the dropped recomputation
// would have produced.
type simMemo struct {
	cfgs    []slicing.Config
	vals    []float64
	traffic int
}

// simMemoCap bounds the memo so lookups stay a short linear scan; the
// accel loop touches only a handful of distinct candidates per
// interval, so the cap is never hit in practice.
const simMemoCap = 64

func (m *simMemo) lookup(cfg slicing.Config, traffic int) (float64, bool) {
	if traffic != m.traffic {
		return 0, false
	}
	for i := range m.cfgs {
		if m.cfgs[i] == cfg {
			return m.vals[i], true
		}
	}
	return 0, false
}

// InvalidateSimCache drops all cached simulator queries. Callers that
// swap the learner's policy, class, or simulator mid-life (resize
// migration, infrastructure change) must invalidate: the memo key is
// (cfg, traffic) and assumes those stay fixed.
func (l *OnlineLearner) InvalidateSimCache() {
	l.memo.cfgs = l.memo.cfgs[:0]
	l.memo.vals = l.memo.vals[:0]
	l.memo.traffic = 0
}

func (m *simMemo) add(cfg slicing.Config, traffic int, v float64) {
	if traffic != m.traffic || len(m.cfgs) >= simMemoCap {
		m.cfgs = m.cfgs[:0]
		m.vals = m.vals[:0]
		m.traffic = traffic
	}
	m.cfgs = append(m.cfgs, cfg)
	m.vals = append(m.vals, v)
}

// candidatePool is one scan of the configuration space: candidates with
// their usage and the decomposed QoE posterior (offline Q_s and online
// residual G, Eq. 12). Scanning once per interval and reusing the scan
// across the inner dual updates keeps the cost independent of N.
type candidatePool struct {
	cfgs   []slicing.Config
	usage  []float64
	qsMean []float64
	qsStd  []float64
	gMean  []float64
	gStd   []float64
}

// mean returns the combined QoE mean for candidate i.
func (p *candidatePool) mean(i int) float64 { return p.qsMean[i] + p.gMean[i] }

// std returns the combined QoE std for candidate i.
func (p *candidatePool) std(i int) float64 {
	return math.Sqrt(p.qsStd[i]*p.qsStd[i] + p.gStd[i]*p.gStd[i])
}

// scanScratch is the reusable backing store of a candidate scan. The
// pool slices, the flat encoding buffer and the span table grow to the
// largest pool the learner has seen and are then recycled verbatim, so
// a steady-state scan performs no heap allocation at all.
type scanScratch struct {
	pool     candidatePool
	inputs   [][]float64
	enc      []float64 // n × PolicyInputDim, rows aliased by inputs
	spans    [residualChunks]scanSpan
	acqMeans []float64
	acqStds  []float64
}

// scanSpan is one contiguous chunk of the pool, with the deterministic
// child RNG the BNN path consumes (nil for the randomness-free models).
type scanSpan struct {
	lo, hi int
	rng    *rand.Rand
}

// growF resizes a scratch float slice to n reusing capacity. Contents
// are unspecified; every caller overwrites (or zeroes) the full slice.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func zeroF(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// scanPool samples a fresh candidate pool and evaluates both posterior
// components over it. The offline BNN is evaluated with a constant
// number of weight draws shared across the whole pool.
func (l *OnlineLearner) scanPool(space slicing.ConfigSpace, rng *rand.Rand) *candidatePool {
	return l.scanPoolN(space, l.Opts.Pool, rng, true)
}

// scanPoolN is scanPool with an explicit pool size. needStd=false skips
// the residual-GP variance solves (the dominant cost of a batched
// posterior sweep) for callers that judge candidates on the mean alone;
// the gStd entries of those spans are zeroed. The returned pool aliases
// the learner's scratch and is only valid until the next scan.
func (l *OnlineLearner) scanPoolN(space slicing.ConfigSpace, pool int, rng *rand.Rand, needStd bool) *candidatePool {
	n := max(2, pool)
	l.met.recordScan(n)
	p := &l.scan.pool
	if cap(p.cfgs) < n {
		p.cfgs = make([]slicing.Config, n)
	}
	p.cfgs = p.cfgs[:n]
	p.usage = growF(p.usage, n)
	p.qsMean = growF(p.qsMean, n)
	p.qsStd = growF(p.qsStd, n)
	p.gMean = growF(p.gMean, n)
	p.gStd = growF(p.gStd, n)
	if cap(l.scan.enc) < n*PolicyInputDim {
		l.scan.enc = make([]float64, n*PolicyInputDim)
	}
	enc := l.scan.enc[:n*PolicyInputDim]
	if cap(l.scan.inputs) < n {
		l.scan.inputs = make([][]float64, n)
	}
	l.scan.inputs = l.scan.inputs[:n]
	inputs := l.scan.inputs

	// The encoding prefix (traffic, SLA threshold, class feature) is
	// constant across the scan — compute it once instead of per
	// candidate (the class feature alone hashes the QoE model name).
	tn := float64(l.traffic()) / MaxTraffic
	th := l.sla().ThresholdMs / 1000
	var cls slicing.ServiceClass
	if c := l.class(); c != nil {
		cls = *c
	}
	feat := cls.Feature()
	for i := 0; i < n; i++ {
		p.cfgs[i] = space.Sample(rng)
		p.usage[i] = space.Usage(p.cfgs[i])
		row := enc[i*PolicyInputDim : (i+1)*PolicyInputDim]
		row[0], row[1], row[2] = tn, th, feat
		space.NormalizeInto(p.cfgs[i], row[3:])
		inputs[i] = row
	}
	if l.Policy != nil && l.Policy.Model != nil && l.Policy.Model.Fitted() {
		l.Policy.PredictQoEBatchInto(inputs, l.Opts.PredictSamples, l.rng, p.qsMean, p.qsStd)
	} else {
		zeroF(p.qsMean)
		zeroF(p.qsStd)
	}
	if l.Opts.Model != ContinueBNN {
		l.evalResiduals(p, inputs, needStd)
	} else {
		zeroF(p.gMean)
		zeroF(p.gStd)
	}
	return p
}

// residualChunks fixes the fan-out of the parallel pool scan: the pool
// splits into this many contiguous chunks regardless of GOMAXPROCS, so
// per-chunk RNG derivation — and therefore every scan result — is
// independent of the host's core count.
const residualChunks = 16

// evalResiduals fills the residual posterior over the whole pool,
// fanning contiguous candidate chunks out across worker goroutines —
// the same parallel evaluation stage 1 uses for its Thompson-sampling
// batches (bo.Minimizer). GP prediction is read-only and consumes no
// randomness; the BNN path derives one deterministic child RNG per
// chunk from the learner RNG before any goroutine starts, so results do
// not depend on goroutine scheduling. Workers pick spans by a fixed
// stride instead of draining a channel, so the fan-out itself is
// allocation-free.
func (l *OnlineLearner) evalResiduals(p *candidatePool, inputs [][]float64, needStd bool) {
	n := len(inputs)
	chunks := residualChunks
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	spans := l.scan.spans[:0]
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		var crng *rand.Rand
		if l.Opts.Model == ResidualBNN {
			crng = mathx.NewRNG(l.rng.Int63())
		}
		spans = append(spans, scanSpan{lo, hi, crng})
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(spans) {
		workers = len(spans)
	}
	if workers <= 1 {
		for _, s := range spans {
			l.evalSpan(p, inputs, s, needStd)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for si := w; si < len(spans); si += workers {
				l.evalSpan(p, inputs, spans[si], needStd)
			}
		}(w)
	}
	wg.Wait()
}

// evalSpan fills the residual posterior over one contiguous span. The
// GP path batches the whole span through one blocked posterior solve;
// the BNN path keeps per-candidate Monte-Carlo prediction on the span's
// own RNG (bit-identical to the sequential scan).
func (l *OnlineLearner) evalSpan(p *candidatePool, inputs [][]float64, s scanSpan, needStd bool) {
	switch l.Opts.Model {
	case ResidualBNN:
		if !l.bnnModel.Fitted() {
			for i := s.lo; i < s.hi; i++ {
				p.gMean[i], p.gStd[i] = 0, 0.3
			}
			return
		}
		for i := s.lo; i < s.hi; i++ {
			p.gMean[i], p.gStd[i] = l.bnnModel.Predict(inputs[i], l.Opts.PredictSamples, s.rng)
		}
	default:
		if l.gpModel == nil || !l.gpModel.Fitted() {
			for i := s.lo; i < s.hi; i++ {
				p.gMean[i], p.gStd[i] = 0, 0.3
			}
			return
		}
		stds := p.gStd[s.lo:s.hi]
		if !needStd {
			zeroF(stds)
			stds = nil
		}
		l.gpModel.PredictBatch(inputs[s.lo:s.hi], p.gMean[s.lo:s.hi], stds)
	}
}

// argmin returns the pool index minimizing the Lagrangian
// F(a) − λ·(clip(Q̂(a) + w·σ(a)) − E) with optimism weight w.
func (p *candidatePool) argmin(lambda, optimism, availability float64) int {
	best, bestL := 0, math.Inf(1)
	for i := range p.cfgs {
		q := mathx.Clip(p.mean(i)+optimism*p.std(i), 0, 1)
		lag := p.usage[i] - lambda*(q-availability)
		if lag < bestL {
			best, bestL = i, lag
		}
	}
	return best
}

// Next implements slicing.OnlinePolicy (Algorithm 3).
func (l *OnlineLearner) Next(iter int, rng *rand.Rand) slicing.Config {
	space := l.space()
	sla := l.sla()

	// The very first online action is the offline optimum, when one
	// exists.
	if iter == 0 && l.Policy != nil && l.Policy.Model != nil && l.Policy.Model.Fitted() {
		return l.Policy.SelectConfig(max(2, l.Opts.Pool), rng)
	}

	pool := l.scanPool(space, rng)

	// Offline acceleration: N simulator interactions refresh the dual
	// multiplier around the current residual estimate (lines 3–10). The
	// models do not change inside this loop — only λ does — so the pool
	// scan is shared and each step re-minimizes the Lagrangian, queries
	// the simulator at the chosen point, and updates λ with Eq. 15.
	if l.Opts.OfflineAccel && l.Sim != nil {
		for j := 0; j < l.Opts.N; j++ {
			i := pool.argmin(l.lambda, 0, sla.Availability)
			qs := l.simQoE(pool.cfgs[i])
			l.lambda = math.Max(0, l.lambda-l.Opts.Eps*(qs+pool.gMean[i]-sla.Availability))
		}
	}

	// Online selection.
	if l.Opts.Acq != nil {
		return l.selectAcq(pool, sla)
	}
	beta := 0.0
	if l.Opts.Schedule != nil {
		beta = l.Opts.Schedule.Beta(iter+1, rng)
	}
	i := pool.argmin(l.lambda, math.Sqrt(beta), sla.Availability)
	return pool.cfgs[i]
}

// selectAcq scores the pool with a classic acquisition on the Lagrangian
// posterior (Fig. 22 comparators).
func (l *OnlineLearner) selectAcq(pool *candidatePool, sla slicing.SLA) slicing.Config {
	n := len(pool.cfgs)
	l.scan.acqMeans = growF(l.scan.acqMeans, n)
	l.scan.acqStds = growF(l.scan.acqStds, n)
	means, stds := l.scan.acqMeans, l.scan.acqStds
	bestMean := math.Inf(1)
	for i := 0; i < n; i++ {
		mu := mathx.Clip(pool.mean(i), 0, 1)
		means[i] = pool.usage[i] - l.lambda*(mu-sla.Availability)
		stds[i] = l.lambda * pool.std(i)
		if means[i] < bestMean {
			bestMean = means[i]
		}
	}
	best, bestScore := 0, math.Inf(-1)
	for i := 0; i < n; i++ {
		if s := l.Opts.Acq.Score(means[i], stds[i], bestMean); s > bestScore {
			best, bestScore = i, s
		}
	}
	return pool.cfgs[best]
}

// Observe implements slicing.OnlinePolicy: it logs the outcome, learns
// the residual from the paired simulator query (line 13 of Algorithm 3),
// and — without offline acceleration — performs the single-sample dual
// update.
func (l *OnlineLearner) Observe(iter int, cfg slicing.Config, usage, qoe float64) {
	l.Usages = append(l.Usages, usage)
	l.QoEs = append(l.QoEs, qoe)

	x := l.encode(cfg)
	switch l.Opts.Model {
	case ContinueBNN:
		if l.Policy != nil && l.Policy.Model != nil {
			l.xs = append(l.xs, x)
			l.ys = append(l.ys, qoe)
			l.Policy.Model.Fit(l.xs, l.ys, 20, 32)
		}
	default:
		g := qoe - l.simQoE(cfg)
		if l.Opts.Model == ResidualBNN {
			// The BNN retrains on the whole collection, so it keeps one.
			l.xs = append(l.xs, x)
			l.ys = append(l.ys, g)
			l.bnnModel.Fit(l.xs, l.ys, 20, 32)
		} else {
			// Incremental conditioning: O(n²) rank-1 Cholesky extension
			// instead of refactorizing from scratch every interval. The
			// GP stores its own copy of the collection.
			_ = l.gpModel.Observe(x, g)
		}
	}

	if !l.Opts.OfflineAccel {
		sla := l.sla()
		g, _ := l.residual(cfg)
		qs, _ := l.qs(cfg)
		l.lambda = math.Max(0, l.lambda-l.Opts.Eps*(qs+g-sla.Availability))
	}
}

// CheapestFeasible scans a fresh candidate pool and returns the
// minimum-usage configuration whose combined QoE posterior mean
// (offline model plus online residual) meets the SLA availability
// target. Feasibility is judged on the mean, not a lower confidence
// bound: early in a slice's life the residual prior's σ would veto
// every candidate, and the arbitration caller tolerates optimism —
// the learner keeps adapting inside the tightened envelope. It reports
// false when no candidate is posterior-feasible; the caller must then
// leave the slice alone. pool <= 0 falls back to the learner's
// configured pool size.
func (l *OnlineLearner) CheapestFeasible(pool int, rng *rand.Rand) (slicing.Config, bool) {
	space := l.space()
	sla := l.sla()
	if pool <= 0 {
		pool = l.Opts.Pool
	}
	p := l.scanPoolN(space, pool, rng, false)
	best, bestU := -1, math.Inf(1)
	for i := range p.cfgs {
		q := mathx.Clip(p.mean(i), 0, 1)
		if q >= sla.Availability && p.usage[i] < bestU {
			best, bestU = i, p.usage[i]
		}
	}
	if best < 0 {
		return slicing.Config{}, false
	}
	return p.cfgs[best], true
}

// Lambda returns the current dual multiplier (exported for inspection
// and tests).
func (l *OnlineLearner) Lambda() float64 { return l.lambda }

// Residuals returns how many online observations the residual model has
// conditioned on (exported for inspection and checkpoint reporting).
func (l *OnlineLearner) Residuals() int {
	switch l.Opts.Model {
	case ResidualBNN, ContinueBNN:
		return len(l.xs)
	default:
		if l.gpModel == nil {
			return 0
		}
		return l.gpModel.N()
	}
}
