package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/realnet"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/store"
)

// policyBytes canonicalizes a policy for bit-identity comparison.
func policyBytes(t *testing.T, p *Policy) []byte {
	t.Helper()
	raw, err := json.Marshal(SnapshotPolicy(p))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestOrchestratorDedupsIdenticalSpecs: identical (Class, SLA, Traffic)
// Train specs must share one OfflineResult via the in-run singleflight,
// and the shared artifact must be bit-identical to what per-slice
// training at the same canonical seed would have produced.
func TestOrchestratorDedupsIdenticalSpecs(t *testing.T) {
	real := realnet.New()
	sim := simnet.NewDefault()
	sla := slicing.SLA{ThresholdMs: 400, Availability: 0.9}
	specs := make([]SliceSpec, 4)
	for i := range specs {
		specs[i] = SliceSpec{ID: string(rune('a' + i)), SLA: sla, Traffic: 2, Train: true}
	}
	// One odd one out: a different SLA must train separately.
	specs[3].SLA = slicing.SLA{ThresholdMs: 300, Availability: 0.9}

	opts := quickOrchOpts(2)
	opts.Workers = 4
	orch := NewOrchestrator(real, sim, specs, opts)
	res := orch.Run()

	for i, sr := range res.Slices {
		if sr.Err != nil {
			t.Fatalf("slice %d: %v", i, sr.Err)
		}
	}
	if res.Slices[0].Offline != res.Slices[1].Offline || res.Slices[1].Offline != res.Slices[2].Offline {
		t.Fatal("identical specs did not share one OfflineResult")
	}
	if res.Slices[3].Offline == res.Slices[0].Offline {
		t.Fatal("distinct SLA shared the dedup'd artifact")
	}
	if res.OfflineTrainings != 2 {
		t.Fatalf("trained %d distinct fingerprints, want 2", res.OfflineTrainings)
	}
	if res.OfflineShared != 2 {
		t.Fatalf("shared count %d, want 2", res.OfflineShared)
	}

	// Bit-identity: per-slice training at the same canonical seed
	// reproduces the shared artifact exactly.
	oo := opts.Offline
	oo.SLA = sla
	oo.Traffic = 2
	seed := OfflineSeed(sim, opts.Seed, oo)
	solo := NewOfflineTrainer(sim, oo).Run(mathx.NewRNG(seed))
	if got, want := policyBytes(t, solo.Policy), policyBytes(t, res.Slices[0].Offline.Policy); string(got) != string(want) {
		t.Fatal("dedup'd policy is not bit-identical to per-slice training at the same seed")
	}
	if solo.BestConfig != res.Slices[0].Offline.BestConfig || solo.BestUsage != res.Slices[0].Offline.BestUsage {
		t.Fatal("dedup'd optimum differs from per-slice training at the same seed")
	}
}

// TestOrchestratorWarmRun: a second orchestrated run against a
// populated store restores every policy instead of training, and the
// warm trajectories match the cold ones exactly (same seeds, same
// policy bits).
func TestOrchestratorWarmRun(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	real := realnet.New()
	sim := simnet.NewDefault()
	specs := make([]SliceSpec, 3)
	for i := range specs {
		specs[i] = SliceSpec{ID: string(rune('a' + i)), SLA: slicing.DefaultSLA(), Traffic: 1, Train: true}
	}
	opts := quickOrchOpts(3)
	opts.Warm, opts.Save = true, true

	cold := NewOrchestrator(real, sim, specs, opts)
	cold.Store = st
	cres := cold.Run()
	if cres.OfflineTrainings != 1 || cres.OfflineStoreHits != 0 {
		t.Fatalf("cold run: trainings=%d hits=%d", cres.OfflineTrainings, cres.OfflineStoreHits)
	}

	warm := NewOrchestrator(real, sim, specs, opts)
	warm.Store = st
	wres := warm.Run()
	if wres.OfflineTrainings != 0 || wres.OfflineStoreHits != 1 {
		t.Fatalf("warm run: trainings=%d hits=%d", wres.OfflineTrainings, wres.OfflineStoreHits)
	}
	for i := range wres.Slices {
		if !wres.Slices[i].WarmHit {
			t.Fatalf("slice %d not marked as a warm hit", i)
		}
		for it := range wres.Slices[i].Usages {
			if wres.Slices[i].Usages[it] != cres.Slices[i].Usages[it] ||
				wres.Slices[i].QoEs[it] != cres.Slices[i].QoEs[it] {
				t.Fatalf("slice %d interval %d: warm trajectory diverged from cold", i, it)
			}
		}
	}
}

// TestOnlineLearnerRoundTripDeterminism: a learner restored from a
// snapshot must produce the exact same Next() configuration sequence as
// the original for 20 intervals — covering the GP's observed
// collection, its Cholesky factor, the dual multiplier, and the policy
// encoding.
func TestOnlineLearnerRoundTripDeterminism(t *testing.T) {
	sim := simnet.NewDefault()
	real := realnet.New()
	off := NewOfflineTrainer(sim, quickOffOpts()).Run(mathx.NewRNG(5))

	lopts := DefaultOnlineOptions()
	lopts.Pool, lopts.N = 96, 3
	orig := NewOnlineLearner(off.Policy, sim, lopts, mathx.NewRNG(9))
	space := slicing.DefaultConfigSpace()
	sla := off.Policy.SLA

	// Warm the learner so the snapshot carries real GP state (Cholesky
	// factor included).
	warmRNG := mathx.NewRNG(21)
	for it := 0; it < 10; it++ {
		cfg := orig.Next(it, warmRNG)
		tr := real.Episode(cfg, 1, warmRNG.Int63())
		orig.Observe(it, cfg, space.Usage(cfg), tr.QoE(sla))
	}

	snap, err := orig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Serialize through JSON: the round trip must survive the actual
	// persistence encoding, not just the in-memory structs.
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded OnlineSnapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}

	restored := NewOnlineLearner(off.Policy, sim, lopts, mathx.NewRNG(77))
	if err := restored.Restore(&decoded); err != nil {
		t.Fatal(err)
	}
	if restored.Lambda() != orig.Lambda() {
		t.Fatalf("restored lambda %v, want %v", restored.Lambda(), orig.Lambda())
	}

	// Snapshots never carry RNG state; reseed both learners identically
	// and drive them with identical run RNGs and observations.
	orig.Reseed(1234)
	restored.Reseed(1234)
	rngA, rngB := mathx.NewRNG(555), mathx.NewRNG(555)
	for it := 10; it < 30; it++ {
		ca := orig.Next(it, rngA)
		cb := restored.Next(it, rngB)
		if ca != cb {
			t.Fatalf("interval %d: original chose %v, restored chose %v", it, ca, cb)
		}
		tr := real.Episode(ca, 1, int64(it)*101)
		usage, qoe := space.Usage(ca), tr.QoE(sla)
		orig.Observe(it, ca, usage, qoe)
		restored.Observe(it, cb, usage, qoe)
	}
}

// TestRunOfflineWithStoreFallbacks: truncated JSON, a wrong version
// tag, and a fingerprint mismatch must all fall back to fresh training
// with a non-nil diagnostic — never a panic, never a nil result.
func TestRunOfflineWithStoreFallbacks(t *testing.T) {
	sim := simnet.NewDefault()
	oo := quickOffOpts()
	oo.Iters, oo.Explore = 6, 2
	seed := OfflineSeed(sim, 3, oo)
	key := OfflineFingerprint(sim, oo, seed)

	corruptions := map[string]func(t *testing.T, dir string){
		"truncated-json": func(t *testing.T, dir string) {
			path := filepath.Join(dir, store.KindOffline, key+".json")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"wrong-version": func(t *testing.T, dir string) {
			path := filepath.Join(dir, store.KindOffline, key+".json")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var env store.Envelope
			if err := json.Unmarshal(data, &env); err != nil {
				t.Fatal(err)
			}
			// Version skew one level down: the artifact payload claims a
			// future encoding.
			var art OfflineArtifact
			if err := json.Unmarshal(env.Payload, &art); err != nil {
				t.Fatal(err)
			}
			art.Version = 99
			payload, _ := json.Marshal(art)
			env.Payload = payload
			out, _ := json.Marshal(env)
			if err := os.WriteFile(path, out, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"fingerprint-mismatch": func(t *testing.T, dir string) {
			path := filepath.Join(dir, store.KindOffline, key+".json")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var env store.Envelope
			if err := json.Unmarshal(data, &env); err != nil {
				t.Fatal(err)
			}
			var art OfflineArtifact
			if err := json.Unmarshal(env.Payload, &art); err != nil {
				t.Fatal(err)
			}
			art.Fingerprint = "deadbeef" + art.Fingerprint[8:]
			payload, _ := json.Marshal(art)
			env.Payload = payload
			out, _ := json.Marshal(env)
			if err := os.WriteFile(path, out, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}

	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			// Seed the store with a valid artifact, then corrupt it.
			cold := RunOfflineWithStore(sim, oo, seed, st, true, true)
			if !cold.Trained || cold.Diag != nil {
				t.Fatalf("cold run: trained=%v diag=%v", cold.Trained, cold.Diag)
			}
			corrupt(t, dir)

			// A fresh store over the same dir (no memory layer) must
			// detect the damage, report it, and train anyway.
			st2, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			out := RunOfflineWithStore(sim, oo, seed, st2, true, true)
			if out.Result == nil || out.Result.Policy == nil {
				t.Fatal("fallback produced no result")
			}
			if !out.Trained {
				t.Fatal("corrupt artifact did not fall back to training")
			}
			if out.Hit {
				t.Fatal("corrupt artifact counted as a hit")
			}
			if out.Diag == nil {
				t.Fatal("fallback carried no diagnostic")
			}
			// The fallback re-saved a valid artifact: the next read hits.
			st3, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			again := RunOfflineWithStore(sim, oo, seed, st3, true, true)
			if !again.Hit || again.Diag != nil {
				t.Fatalf("post-repair read: hit=%v diag=%v", again.Hit, again.Diag)
			}
		})
	}
}

// TestRunOfflineWithStoreMissingIsClean: a plain miss trains without a
// diagnostic (missing is normal, corrupt is reported).
func TestRunOfflineWithStoreMissingIsClean(t *testing.T) {
	sim := simnet.NewDefault()
	oo := quickOffOpts()
	oo.Iters, oo.Explore = 6, 2
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	out := RunOfflineWithStore(sim, oo, 17, st, true, true)
	if !out.Trained || out.Hit || out.Diag != nil {
		t.Fatalf("miss: trained=%v hit=%v diag=%v", out.Trained, out.Hit, out.Diag)
	}
}

// TestPolicySnapshotClassMismatch: restoring a policy for a different
// service class is refused with a diagnostic.
func TestPolicySnapshotClassMismatch(t *testing.T) {
	sim := simnet.NewDefault()
	class := slicing.DefaultServiceClass()
	oo := quickOffOpts()
	oo.Iters, oo.Explore = 6, 2
	oo.Class = &class
	off := NewOfflineTrainer(sim, oo).Run(mathx.NewRNG(4))
	snap := SnapshotPolicy(off.Policy)

	other := class
	other.Name = "teleop"
	other.QoE = slicing.PercentileDeadlineQoE{Percentile: 0.95, DeadlineMs: 150}
	if _, err := PolicyFromSnapshot(snap, &other, mathx.NewRNG(1)); err == nil {
		t.Fatal("class mismatch accepted")
	}
	restored, err := PolicyFromSnapshot(snap, &class, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// The restored model predicts bit-identically (posterior mean path
	// consumes no randomness).
	cfg := FullConfig()
	a := off.Policy.Model.Eval(off.Policy.Model.MeanDraw(), off.Policy.Encode(cfg))
	b := restored.Model.Eval(restored.Model.MeanDraw(), restored.Encode(cfg))
	if a != b {
		t.Fatalf("restored mean prediction %v, want %v", b, a)
	}
}

// TestOfflineFingerprintSensitivity: the content address must move with
// the environment calibration, the class, the budgets, and the seed —
// and stay put for equal inputs.
func TestOfflineFingerprintSensitivity(t *testing.T) {
	sim := simnet.NewDefault()
	oo := quickOffOpts()
	base := OfflineFingerprint(sim, oo, 1)
	if OfflineFingerprint(sim, oo, 1) != base {
		t.Fatal("fingerprint not deterministic")
	}
	if OfflineFingerprint(sim, oo, 2) == base {
		t.Fatal("fingerprint insensitive to seed")
	}
	oo2 := oo
	oo2.Iters++
	if OfflineFingerprint(sim, oo2, 1) == base {
		t.Fatal("fingerprint insensitive to budgets")
	}
	class := slicing.DefaultServiceClass()
	oo3 := oo
	oo3.Class = &class
	if OfflineFingerprint(sim, oo3, 1) == base {
		t.Fatal("fingerprint insensitive to class")
	}
	// Same class by value, different pointer: same fingerprint (this is
	// what makes per-class sharing work across specs).
	classCopy := slicing.DefaultServiceClass()
	oo4 := oo
	oo4.Class = &classCopy
	if OfflineFingerprint(sim, oo4, 1) != OfflineFingerprint(sim, oo3, 1) {
		t.Fatal("equal classes at different addresses fingerprint differently")
	}
	// A recalibrated simulator is a different environment.
	aug := sim.WithParams(slicing.SimParams{BaselineLoss: 40, ENBNoiseFig: 4, UENoiseFig: 8})
	if OfflineFingerprint(aug, oo, 1) == base {
		t.Fatal("fingerprint insensitive to environment calibration")
	}
}

// TestSystemWarmAdmission: a second system over the same store admits
// the same class without retraining, and per-step checkpoints let the
// online residual warm-start.
func TestSystemWarmAdmission(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mkSystem := func() *System {
		s := quickSystem()
		s.Store = st
		return s
	}

	s1 := mkSystem()
	inst1, err := s1.AdmitSlice("a", slicing.DefaultSLA(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if inst1.WarmStart {
		t.Fatal("first admission claims a warm start")
	}
	for i := 0; i < 3; i++ {
		if err := s1.Step("a"); err != nil {
			t.Fatal(err)
		}
	}

	// A restarted system (same seed, same store): offline policy and
	// online residual both come back from disk.
	s2 := mkSystem()
	inst2, err := s2.AdmitSlice("a", slicing.DefaultSLA(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !inst2.WarmStart {
		t.Fatal("second admission retrained despite a stored artifact")
	}
	if !inst2.ResidualWarm {
		t.Fatal("online residual did not warm-start from the checkpoint")
	}
	if got, want := policyBytes(t, inst2.Offline.Policy), policyBytes(t, inst1.Offline.Policy); string(got) != string(want) {
		t.Fatal("warm policy differs from the trained one")
	}
	if inst2.Learner.Lambda() != inst1.Learner.Lambda() {
		t.Fatalf("warm lambda %v, want %v", inst2.Learner.Lambda(), inst1.Learner.Lambda())
	}
	if err := s2.Step("a"); err != nil {
		t.Fatal(err)
	}
	if diags := s2.StoreDiagnostics(); len(diags) != 0 {
		t.Fatalf("clean warm admission recorded diagnostics: %v", diags)
	}
}

// TestSystemRecordsStoreDiagnostics: a corrupt offline artifact makes
// admission fall back to fresh training AND surfaces the diagnostic on
// the instance and the system, instead of silently retraining.
func TestSystemRecordsStoreDiagnostics(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := quickSystem()
	s1.Store = st
	inst1, err := s1.AdmitSlice("a", slicing.DefaultSLA(), 1)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate the stored policy artifact.
	path := filepath.Join(dir, store.KindOffline, inst1.storeKey+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir) // fresh handle: no memory layer
	if err != nil {
		t.Fatal(err)
	}
	s2 := quickSystem()
	s2.Store = st2
	inst2, err := s2.AdmitSlice("a", slicing.DefaultSLA(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if inst2.WarmStart {
		t.Fatal("corrupt artifact claimed a warm start")
	}
	if inst2.Offline == nil || inst2.Offline.Policy == nil {
		t.Fatal("fallback training produced no policy")
	}
	if inst2.StoreDiag == nil {
		t.Fatal("corrupt artifact left no diagnostic on the instance")
	}
	if diags := s2.StoreDiagnostics(); len(diags) == 0 {
		t.Fatal("corrupt artifact left no diagnostic on the system")
	}
}
