package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/store"
)

// This file is the concurrent multi-slice control loop: one Atlas
// instance per tenant, all learning online at the same time over shared
// infrastructure. The paper evaluates slices one at a time (§10 argues
// the isolation makes that sound); the Orchestrator is the production
// shape of that argument — a worker-pool scheduler that runs N
// independent OnlineLearner loops concurrently, with deterministic
// per-slice seeding and aggregated per-epoch metrics.

// EnvPool hands out network environments to concurrent slice loops.
// Two shapes are supported:
//
//   - a shared pool wraps one Env whose Episode is safe for concurrent
//     use (the bundled simulator and real-network surrogate are
//     stateless per episode) — Get never blocks;
//   - a replica pool serializes access to each of a fixed set of
//     replicas, for environments that keep per-episode mutable state.
//     Size replica pools with at least as many entries as the
//     orchestrator has workers, or slices will queue for an
//     environment.
type EnvPool struct {
	shared slicing.Env
	ch     chan slicing.Env
}

// SharedEnvPool wraps a concurrency-safe environment.
func SharedEnvPool(env slicing.Env) *EnvPool { return &EnvPool{shared: env} }

// NewEnvPool builds a replica pool over the given environments.
func NewEnvPool(envs ...slicing.Env) *EnvPool {
	if len(envs) == 1 {
		return SharedEnvPool(envs[0])
	}
	ch := make(chan slicing.Env, len(envs))
	for _, e := range envs {
		ch <- e
	}
	return &EnvPool{ch: ch}
}

// Get checks an environment out; replica pools block until one is free.
func (p *EnvPool) Get() slicing.Env {
	if p.shared != nil {
		return p.shared
	}
	return <-p.ch
}

// Put returns a checked-out environment to the pool.
func (p *EnvPool) Put(env slicing.Env) {
	if p.shared != nil {
		return
	}
	p.ch <- env
}

// SliceSpec declares one tenant for the orchestrator.
type SliceSpec struct {
	ID      string
	SLA     slicing.SLA
	Traffic int

	// Class is the tenant's service class: application workload, QoE
	// model, and traffic model. Nil keeps the prototype video-analytics
	// behavior (constant traffic, latency-availability QoE). When the
	// spec's SLA or Traffic are zero they default from the class.
	Class *slicing.ServiceClass

	// Policy optionally supplies a pre-trained stage-2 artifact. When
	// nil, Train decides between on-admission offline training and a
	// cold start ("No stage 2").
	Policy *Policy
	// Train requests stage-2 offline training during admission, using
	// the orchestrator's Offline options with this spec's SLA/Traffic.
	Train bool

	// OptUsage and OptQoE anchor the slice's regret accounting at the
	// oracle φ*. Leave zero to record raw cumulative sums instead.
	OptUsage float64
	OptQoE   float64
}

// OrchestratorOptions configures the concurrent control loop.
type OrchestratorOptions struct {
	// Workers bounds how many slice loops run at once; zero selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Intervals is the number of online configuration intervals per
	// slice.
	Intervals int
	// Seed is the master seed. Slice i's RNGs are a pure function of
	// (Seed, i), so results are reproducible at any worker count and
	// independent of scheduling order.
	Seed int64
	// Online configures every slice's stage-3 learner.
	Online OnlineOptions
	// Offline configures on-admission training for Train specs; its
	// SLA and Traffic are overridden per slice.
	Offline OfflineOptions

	// Warm consults the orchestrator's artifact store before offline
	// training; Save writes trained artifacts back. Both are no-ops
	// without a Store. In-flight dedup of identical fingerprints is
	// always on: repeated specs train once per run regardless.
	Warm bool
	Save bool
}

// DefaultOrchestratorOptions mirrors the single-slice defaults.
func DefaultOrchestratorOptions() OrchestratorOptions {
	return OrchestratorOptions{
		Workers:   0,
		Intervals: 50,
		Seed:      1,
		Online:    DefaultOnlineOptions(),
		Offline:   DefaultOfflineOptions(),
	}
}

// EpochMetrics aggregates one configuration interval across every
// slice that reached it.
type EpochMetrics struct {
	Epoch  int
	Slices int
	// MeanUsage and MeanQoE average over the slices.
	MeanUsage float64
	MeanQoE   float64
	// Violations counts slices whose delivered QoE fell below their
	// SLA availability target this epoch.
	Violations int
	// UsageRegret and QoERegret sum the per-slice regret increments
	// (zero-anchored for specs without an oracle).
	UsageRegret float64
	QoERegret   float64
}

// ClassMetrics aggregates one service class's slices over the whole run.
type ClassMetrics struct {
	// Class is the service-class name ("default" for class-less specs).
	Class  string
	Slices int
	// Epochs are the per-interval aggregates restricted to this class.
	Epochs []EpochMetrics
	// MeanUsage and MeanQoE average over every (slice, interval) of the
	// class; Violations counts its SLA misses across the run.
	MeanUsage  float64
	MeanQoE    float64
	Violations int
}

// SliceRun is one tenant's completed trajectory.
type SliceRun struct {
	Spec    SliceSpec
	Learner *OnlineLearner
	// Offline holds the on-admission training artifact for Train specs.
	// Identical fingerprints share one result (train-once-per-class);
	// WarmHit marks artifacts restored from the store instead of
	// trained, and OfflineDiag carries the non-fatal diagnostic of a
	// store read that fell back to training.
	Offline     *OfflineResult
	WarmHit     bool
	OfflineDiag error
	Configs     []slicing.Config
	// Traffics records the per-interval demand the traffic model
	// produced.
	Traffics []int
	Usages   []float64
	QoEs     []float64
	Regret   slicing.Regret
	Err      error
}

// OrchestratorResult is the outcome of one orchestrated run.
type OrchestratorResult struct {
	Slices []SliceRun
	Epochs []EpochMetrics
	// Classes are the per-service-class aggregates, ordered by first
	// appearance in the spec list (deterministic at any worker count).
	Classes []ClassMetrics

	// Offline-training accounting: how many distinct fingerprints
	// actually trained, how many were restored from the store, and how
	// many Train specs rode along on a result another slice produced
	// (in-run dedup).
	OfflineTrainings int
	OfflineStoreHits int
	OfflineShared    int
}

// TotalViolations sums QoE violations across all epochs.
func (r *OrchestratorResult) TotalViolations() int {
	var n int
	for _, e := range r.Epochs {
		n += e.Violations
	}
	return n
}

// ClassByName returns the aggregate for one service class.
func (r *OrchestratorResult) ClassByName(name string) (ClassMetrics, bool) {
	for _, c := range r.Classes {
		if c.Class == name {
			return c, true
		}
	}
	return ClassMetrics{}, false
}

// classNameOf labels a spec's service class for aggregation.
func classNameOf(spec SliceSpec) string {
	if spec.Class != nil && spec.Class.Name != "" {
		return spec.Class.Name
	}
	return "default"
}

// aggregate computes the per-epoch and per-class aggregates from the
// completed runs. It walks the runs in spec order, so every float
// accumulation happens in a deterministic sequence regardless of how the
// worker pool scheduled the slices — repeated runs are bit-identical at
// any worker count.
func aggregate(runs []SliceRun, intervals int) ([]EpochMetrics, []ClassMetrics) {
	epochs := make([]EpochMetrics, intervals)
	for e := range epochs {
		epochs[e].Epoch = e
	}
	var classes []ClassMetrics
	classIdx := map[string]int{}

	fold := func(e *EpochMetrics, run *SliceRun, it int) {
		spec := run.Spec
		e.Slices++
		e.MeanUsage += run.Usages[it]
		e.MeanQoE += run.QoEs[it]
		if run.QoEs[it] < spec.SLA.Availability {
			e.Violations++
		}
		e.UsageRegret += run.Usages[it] - spec.OptUsage
		e.QoERegret += max(spec.OptQoE-run.QoEs[it], 0)
	}

	for i := range runs {
		run := &runs[i]
		if run.Err != nil {
			continue
		}
		name := classNameOf(run.Spec)
		ci, ok := classIdx[name]
		if !ok {
			ci = len(classes)
			classIdx[name] = ci
			cm := ClassMetrics{Class: name, Epochs: make([]EpochMetrics, intervals)}
			for e := range cm.Epochs {
				cm.Epochs[e].Epoch = e
			}
			classes = append(classes, cm)
		}
		classes[ci].Slices++
		for it := 0; it < len(run.Usages) && it < intervals; it++ {
			fold(&epochs[it], run, it)
			fold(&classes[ci].Epochs[it], run, it)
		}
	}

	finalize := func(es []EpochMetrics) (meanU, meanQ float64, viol, n int) {
		for e := range es {
			if es[e].Slices > 0 {
				meanU += es[e].MeanUsage
				meanQ += es[e].MeanQoE
				n += es[e].Slices
				es[e].MeanUsage /= float64(es[e].Slices)
				es[e].MeanQoE /= float64(es[e].Slices)
			}
			viol += es[e].Violations
		}
		return meanU, meanQ, viol, n
	}
	finalize(epochs)
	for ci := range classes {
		u, q, viol, n := finalize(classes[ci].Epochs)
		if n > 0 {
			classes[ci].MeanUsage = u / float64(n)
			classes[ci].MeanQoE = q / float64(n)
		}
		classes[ci].Violations = viol
	}
	return epochs, classes
}

// Orchestrator runs N independent online-learning loops concurrently:
// per-slice stage-2/stage-3 pipelines scheduled over a bounded worker
// pool, querying a shared simulator pool and applying configurations to
// a shared real-network pool.
type Orchestrator struct {
	// Real is the live network the slices run on.
	Real *EnvPool
	// Sim is the (augmented) simulator pool the learners query.
	Sim *EnvPool
	// Space is the shared configuration space.
	Space slicing.ConfigSpace
	Opts  OrchestratorOptions
	// Store is the optional artifact store consulted (Opts.Warm) and
	// written (Opts.Save) around offline training.
	Store *store.Store

	specs []SliceSpec

	// flights dedups offline training in-flight: one entry per distinct
	// fingerprint, so identical (class, SLA, traffic) specs train once
	// and share the result across the worker pool.
	flightMu sync.Mutex
	flights  map[string]*offlineFlight
}

// offlineFlight is one singleflight slot: the first slice to request a
// fingerprint runs the load-or-train path, everyone else blocks on the
// Once and shares the outcome.
type offlineFlight struct {
	once sync.Once
	out  OfflineOutcome
}

// offlineFor returns the shared offline outcome for oo, training (or
// restoring) it exactly once per distinct fingerprint per run. The
// training seed derives from (master seed, seedless fingerprint), so
// the shared result is bit-identical to what any of the deduped slices
// would have trained alone.
func (o *Orchestrator) offlineFor(oo OfflineOptions) *OfflineOutcome {
	fpSim := o.Sim.Get()
	seed := OfflineSeed(fpSim, o.Opts.Seed, oo)
	key := OfflineFingerprint(fpSim, oo, seed)
	o.Sim.Put(fpSim)
	o.flightMu.Lock()
	f := o.flights[key]
	if f == nil {
		f = &offlineFlight{}
		o.flights[key] = f
	}
	o.flightMu.Unlock()
	f.once.Do(func() {
		sim := o.Sim.Get()
		defer o.Sim.Put(sim)
		f.out = RunOfflineWithStore(sim, oo, seed, o.Store, o.Opts.Warm, o.Opts.Save)
	})
	return &f.out
}

// NewOrchestrator builds an orchestrator over a real network and an
// (augmented) simulator, both assumed safe for concurrent episodes (use
// the EnvPool fields directly for replica pools).
func NewOrchestrator(real, sim slicing.Env, specs []SliceSpec, opts OrchestratorOptions) *Orchestrator {
	return &Orchestrator{
		Real:  SharedEnvPool(real),
		Sim:   SharedEnvPool(sim),
		Space: slicing.DefaultConfigSpace(),
		Opts:  opts,
		specs: append([]SliceSpec(nil), specs...),
	}
}

// Specs returns the declared slices.
func (o *Orchestrator) Specs() []SliceSpec { return append([]SliceSpec(nil), o.specs...) }

// Run executes every slice's admission and online loop and returns the
// per-slice trajectories plus the per-epoch aggregate. It blocks until
// all slices finish.
func (o *Orchestrator) Run() *OrchestratorResult {
	n := len(o.specs)
	intervals := o.Opts.Intervals
	if intervals <= 0 {
		intervals = DefaultOrchestratorOptions().Intervals
	}
	workers := o.Opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// ContinueBNN trains the policy's model in place during online
	// learning, so a Policy shared between specs would be mutated from
	// several goroutines at once; fail those slices up front.
	shared := map[*Policy]bool{}
	if o.Opts.Online.Model == ContinueBNN {
		seen := map[*Policy]int{}
		for _, s := range o.specs {
			if s.Policy != nil {
				seen[s.Policy]++
			}
		}
		for p, c := range seen {
			if c > 1 {
				shared[p] = true
			}
		}
	}

	o.flightMu.Lock()
	o.flights = map[string]*offlineFlight{}
	o.flightMu.Unlock()

	runs := make([]SliceRun, n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range o.specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if spec := o.specs[i]; shared[spec.Policy] {
				runs[i] = SliceRun{Spec: spec, Err: fmt.Errorf(
					"core: slice %q: ContinueBNN trains the policy model in place and requires an unshared Policy", spec.ID)}
				return
			}
			runs[i] = o.runSlice(i, intervals)
		}(i)
	}
	wg.Wait()
	epochs, classes := aggregate(runs, intervals)
	res := &OrchestratorResult{Slices: runs, Epochs: epochs, Classes: classes}

	// Offline accounting: each flight trained or hit exactly once;
	// every additional Train slice on the same fingerprint shared.
	var requests int
	for i := range runs {
		if runs[i].Offline != nil {
			requests++
		}
	}
	o.flightMu.Lock()
	for _, f := range o.flights {
		if f.out.Trained {
			res.OfflineTrainings++
		}
		if f.out.Hit {
			res.OfflineStoreHits++
		}
	}
	if shared := requests - len(o.flights); shared > 0 {
		res.OfflineShared = shared
	}
	o.flightMu.Unlock()
	return res
}

// normalizeSpec defaults a spec's SLA and nominal traffic from its
// service class when the spec leaves them zero. When the spec overrides
// the class's SLA, the class is rebound to the override (the spec is
// authoritative) so its QoE model judges against the overridden
// threshold rather than the one frozen at class construction.
func normalizeSpec(spec SliceSpec) SliceSpec {
	if spec.Class != nil {
		switch {
		case spec.SLA == (slicing.SLA{}):
			spec.SLA = spec.Class.SLA
		case spec.SLA != spec.Class.SLA:
			derived := spec.Class.WithSLA(spec.SLA)
			spec.Class = &derived
		}
		if spec.Traffic == 0 && spec.Class.Traffic >= 1 {
			spec.Traffic = spec.Class.Traffic
		}
	}
	return spec
}

// runSlice is one tenant's full pipeline: optional offline training,
// then the online loop. All randomness derives from (Seed, i) alone.
func (o *Orchestrator) runSlice(i, intervals int) SliceRun {
	spec := normalizeSpec(o.specs[i])
	run := SliceRun{Spec: spec}
	if spec.Traffic < 1 || spec.Traffic > MaxTraffic {
		run.Err = fmt.Errorf("core: slice %q traffic %d outside [1, %d]", spec.ID, spec.Traffic, MaxTraffic)
		return run
	}
	seeds := splitSliceSeeds(o.Opts.Seed, i)
	offRNG, learnRNG, runRNG := seeds[0], seeds[1], seeds[2]
	trafficSeed := seeds[3].Int63()

	policy := spec.Policy
	if policy == nil && spec.Train {
		oo := o.Opts.Offline
		oo.SLA = spec.SLA
		oo.Traffic = spec.Traffic
		oo.Class = spec.Class
		out := o.offlineFor(oo)
		run.Offline = out.Result
		run.WarmHit = out.Hit
		run.OfflineDiag = out.Diag
		policy = run.Offline.Policy
		if o.Opts.Online.Model == ContinueBNN {
			// ContinueBNN trains the policy model in place, and the
			// flight's result may be shared across identical specs; give
			// this slice a private deep copy via the snapshot round trip.
			p, err := PolicyFromSnapshot(SnapshotPolicy(policy), spec.Class, mathx.NewRNG(offRNG.Int63()))
			if err != nil {
				run.Err = fmt.Errorf("core: slice %q: clone shared policy: %w", spec.ID, err)
				return run
			}
			policy = p
		}
	}
	if policy != nil && (policy.SLA != spec.SLA || policy.Traffic != spec.Traffic || policy.Class != spec.Class) {
		// The learner consults the policy's SLA/traffic/class; the spec
		// is authoritative, so rebind a shallow copy rather than
		// mutating a policy the caller may share across slices. The
		// offline model itself stays shared — safe because the residual
		// designs only read it online; the one model that trains in
		// place (ContinueBNN) rejects shared policies in Run.
		p := *policy
		p.SLA = spec.SLA
		p.Traffic = spec.Traffic
		p.Class = spec.Class
		policy = &p
	}

	sim := o.Sim.Get()
	defer o.Sim.Put(sim)
	learner := NewOnlineLearner(policy, sim, o.Opts.Online, learnRNG)
	learner.Class = spec.Class
	run.Learner = learner
	run.Regret = slicing.Regret{OptUsage: spec.OptUsage, OptQoE: spec.OptQoE}

	for it := 0; it < intervals; it++ {
		traffic := spec.Traffic
		if spec.Class != nil {
			// Per-interval demand from the class's traffic model,
			// clamped to the prototype's emulation range so the policy
			// encoding stays normalized.
			traffic = min(spec.Class.TrafficAt(it, spec.Traffic, trafficSeed), MaxTraffic)
			learner.SetTraffic(traffic)
		}
		cfg := learner.Next(it, runRNG)
		real := o.Real.Get()
		tr := slicing.EpisodeFor(real, spec.Class, cfg, traffic, runRNG.Int63())
		o.Real.Put(real)
		usage := o.Space.Usage(cfg)
		qoe := slicing.EvalFor(spec.Class, spec.SLA, tr)
		learner.Observe(it, cfg, usage, qoe)

		run.Configs = append(run.Configs, cfg)
		run.Traffics = append(run.Traffics, traffic)
		run.Usages = append(run.Usages, usage)
		run.QoEs = append(run.QoEs, qoe)
		run.Regret.Observe(usage, qoe)
	}
	return run
}

// splitSliceSeeds derives slice i's (offline, learner, run, traffic)
// RNGs as a pure function of the master seed and the slice index.
func splitSliceSeeds(seed int64, i int) []*rand.Rand {
	return mathx.Split(mathx.ChildSeed(seed, i), 4)
}
