package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// This file is the concurrent multi-slice control loop: one Atlas
// instance per tenant, all learning online at the same time over shared
// infrastructure. The paper evaluates slices one at a time (§10 argues
// the isolation makes that sound); the Orchestrator is the production
// shape of that argument — a worker-pool scheduler that runs N
// independent OnlineLearner loops concurrently, with deterministic
// per-slice seeding and aggregated per-epoch metrics.

// EnvPool hands out network environments to concurrent slice loops.
// Two shapes are supported:
//
//   - a shared pool wraps one Env whose Episode is safe for concurrent
//     use (the bundled simulator and real-network surrogate are
//     stateless per episode) — Get never blocks;
//   - a replica pool serializes access to each of a fixed set of
//     replicas, for environments that keep per-episode mutable state.
//     Size replica pools with at least as many entries as the
//     orchestrator has workers, or slices will queue for an
//     environment.
type EnvPool struct {
	shared slicing.Env
	ch     chan slicing.Env
}

// SharedEnvPool wraps a concurrency-safe environment.
func SharedEnvPool(env slicing.Env) *EnvPool { return &EnvPool{shared: env} }

// NewEnvPool builds a replica pool over the given environments.
func NewEnvPool(envs ...slicing.Env) *EnvPool {
	if len(envs) == 1 {
		return SharedEnvPool(envs[0])
	}
	ch := make(chan slicing.Env, len(envs))
	for _, e := range envs {
		ch <- e
	}
	return &EnvPool{ch: ch}
}

// Get checks an environment out; replica pools block until one is free.
func (p *EnvPool) Get() slicing.Env {
	if p.shared != nil {
		return p.shared
	}
	return <-p.ch
}

// Put returns a checked-out environment to the pool.
func (p *EnvPool) Put(env slicing.Env) {
	if p.shared != nil {
		return
	}
	p.ch <- env
}

// SliceSpec declares one tenant for the orchestrator.
type SliceSpec struct {
	ID      string
	SLA     slicing.SLA
	Traffic int

	// Policy optionally supplies a pre-trained stage-2 artifact. When
	// nil, Train decides between on-admission offline training and a
	// cold start ("No stage 2").
	Policy *Policy
	// Train requests stage-2 offline training during admission, using
	// the orchestrator's Offline options with this spec's SLA/Traffic.
	Train bool

	// OptUsage and OptQoE anchor the slice's regret accounting at the
	// oracle φ*. Leave zero to record raw cumulative sums instead.
	OptUsage float64
	OptQoE   float64
}

// OrchestratorOptions configures the concurrent control loop.
type OrchestratorOptions struct {
	// Workers bounds how many slice loops run at once; zero selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Intervals is the number of online configuration intervals per
	// slice.
	Intervals int
	// Seed is the master seed. Slice i's RNGs are a pure function of
	// (Seed, i), so results are reproducible at any worker count and
	// independent of scheduling order.
	Seed int64
	// Online configures every slice's stage-3 learner.
	Online OnlineOptions
	// Offline configures on-admission training for Train specs; its
	// SLA and Traffic are overridden per slice.
	Offline OfflineOptions
}

// DefaultOrchestratorOptions mirrors the single-slice defaults.
func DefaultOrchestratorOptions() OrchestratorOptions {
	return OrchestratorOptions{
		Workers:   0,
		Intervals: 50,
		Seed:      1,
		Online:    DefaultOnlineOptions(),
		Offline:   DefaultOfflineOptions(),
	}
}

// EpochMetrics aggregates one configuration interval across every
// slice that reached it.
type EpochMetrics struct {
	Epoch  int
	Slices int
	// MeanUsage and MeanQoE average over the slices.
	MeanUsage float64
	MeanQoE   float64
	// Violations counts slices whose delivered QoE fell below their
	// SLA availability target this epoch.
	Violations int
	// UsageRegret and QoERegret sum the per-slice regret increments
	// (zero-anchored for specs without an oracle).
	UsageRegret float64
	QoERegret   float64
}

// epochAgg collects per-epoch metrics from concurrent slice loops.
type epochAgg struct {
	mu     sync.Mutex
	epochs []EpochMetrics
}

func newEpochAgg(intervals int) *epochAgg {
	a := &epochAgg{epochs: make([]EpochMetrics, intervals)}
	for i := range a.epochs {
		a.epochs[i].Epoch = i
	}
	return a
}

// observe folds one slice-interval outcome into the aggregate.
func (a *epochAgg) observe(epoch int, usage, qoe float64, violated bool, uReg, qReg float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := &a.epochs[epoch]
	e.Slices++
	e.MeanUsage += usage
	e.MeanQoE += qoe
	if violated {
		e.Violations++
	}
	e.UsageRegret += uReg
	e.QoERegret += qReg
}

// snapshot finalizes the means and returns the epochs.
func (a *epochAgg) snapshot() []EpochMetrics {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := append([]EpochMetrics(nil), a.epochs...)
	for i := range out {
		if out[i].Slices > 0 {
			out[i].MeanUsage /= float64(out[i].Slices)
			out[i].MeanQoE /= float64(out[i].Slices)
		}
	}
	return out
}

// SliceRun is one tenant's completed trajectory.
type SliceRun struct {
	Spec    SliceSpec
	Learner *OnlineLearner
	// Offline holds the on-admission training artifact for Train specs.
	Offline *OfflineResult
	Configs []slicing.Config
	Usages  []float64
	QoEs    []float64
	Regret  slicing.Regret
	Err     error
}

// OrchestratorResult is the outcome of one orchestrated run.
type OrchestratorResult struct {
	Slices []SliceRun
	Epochs []EpochMetrics
}

// TotalViolations sums QoE violations across all epochs.
func (r *OrchestratorResult) TotalViolations() int {
	var n int
	for _, e := range r.Epochs {
		n += e.Violations
	}
	return n
}

// Orchestrator runs N independent online-learning loops concurrently:
// per-slice stage-2/stage-3 pipelines scheduled over a bounded worker
// pool, querying a shared simulator pool and applying configurations to
// a shared real-network pool.
type Orchestrator struct {
	// Real is the live network the slices run on.
	Real *EnvPool
	// Sim is the (augmented) simulator pool the learners query.
	Sim *EnvPool
	// Space is the shared configuration space.
	Space slicing.ConfigSpace
	Opts  OrchestratorOptions

	specs []SliceSpec
}

// NewOrchestrator builds an orchestrator over a real network and an
// (augmented) simulator, both assumed safe for concurrent episodes (use
// the EnvPool fields directly for replica pools).
func NewOrchestrator(real, sim slicing.Env, specs []SliceSpec, opts OrchestratorOptions) *Orchestrator {
	return &Orchestrator{
		Real:  SharedEnvPool(real),
		Sim:   SharedEnvPool(sim),
		Space: slicing.DefaultConfigSpace(),
		Opts:  opts,
		specs: append([]SliceSpec(nil), specs...),
	}
}

// Specs returns the declared slices.
func (o *Orchestrator) Specs() []SliceSpec { return append([]SliceSpec(nil), o.specs...) }

// Run executes every slice's admission and online loop and returns the
// per-slice trajectories plus the per-epoch aggregate. It blocks until
// all slices finish.
func (o *Orchestrator) Run() *OrchestratorResult {
	n := len(o.specs)
	intervals := o.Opts.Intervals
	if intervals <= 0 {
		intervals = DefaultOrchestratorOptions().Intervals
	}
	workers := o.Opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// ContinueBNN trains the policy's model in place during online
	// learning, so a Policy shared between specs would be mutated from
	// several goroutines at once; fail those slices up front.
	shared := map[*Policy]bool{}
	if o.Opts.Online.Model == ContinueBNN {
		seen := map[*Policy]int{}
		for _, s := range o.specs {
			if s.Policy != nil {
				seen[s.Policy]++
			}
		}
		for p, c := range seen {
			if c > 1 {
				shared[p] = true
			}
		}
	}

	agg := newEpochAgg(intervals)
	runs := make([]SliceRun, n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range o.specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if spec := o.specs[i]; shared[spec.Policy] {
				runs[i] = SliceRun{Spec: spec, Err: fmt.Errorf(
					"core: slice %q: ContinueBNN trains the policy model in place and requires an unshared Policy", spec.ID)}
				return
			}
			runs[i] = o.runSlice(i, intervals, agg)
		}(i)
	}
	wg.Wait()
	return &OrchestratorResult{Slices: runs, Epochs: agg.snapshot()}
}

// runSlice is one tenant's full pipeline: optional offline training,
// then the online loop. All randomness derives from (Seed, i) alone.
func (o *Orchestrator) runSlice(i, intervals int, agg *epochAgg) SliceRun {
	spec := o.specs[i]
	run := SliceRun{Spec: spec}
	if spec.Traffic < 1 {
		run.Err = fmt.Errorf("core: slice %q traffic %d out of range", spec.ID, spec.Traffic)
		return run
	}
	seeds := splitSliceSeeds(o.Opts.Seed, i)
	offRNG, learnRNG, runRNG := seeds[0], seeds[1], seeds[2]

	policy := spec.Policy
	if policy == nil && spec.Train {
		oo := o.Opts.Offline
		oo.SLA = spec.SLA
		oo.Traffic = spec.Traffic
		sim := o.Sim.Get()
		run.Offline = NewOfflineTrainer(sim, oo).Run(offRNG)
		o.Sim.Put(sim)
		policy = run.Offline.Policy
	}
	if policy != nil && (policy.SLA != spec.SLA || policy.Traffic != spec.Traffic) {
		// The learner consults the policy's SLA/traffic; the spec is
		// authoritative, so rebind a shallow copy rather than mutating a
		// policy the caller may share across slices. The offline model
		// itself stays shared — safe because the residual designs only
		// read it online; the one model that trains in place
		// (ContinueBNN) rejects shared policies in Run.
		p := *policy
		p.SLA = spec.SLA
		p.Traffic = spec.Traffic
		policy = &p
	}

	sim := o.Sim.Get()
	defer o.Sim.Put(sim)
	learner := NewOnlineLearner(policy, sim, o.Opts.Online, learnRNG)
	run.Learner = learner
	run.Regret = slicing.Regret{OptUsage: spec.OptUsage, OptQoE: spec.OptQoE}

	for it := 0; it < intervals; it++ {
		cfg := learner.Next(it, runRNG)
		real := o.Real.Get()
		tr := real.Episode(cfg, spec.Traffic, runRNG.Int63())
		o.Real.Put(real)
		usage := o.Space.Usage(cfg)
		qoe := tr.QoE(spec.SLA)
		learner.Observe(it, cfg, usage, qoe)

		run.Configs = append(run.Configs, cfg)
		run.Usages = append(run.Usages, usage)
		run.QoEs = append(run.QoEs, qoe)
		run.Regret.Observe(usage, qoe)
		agg.observe(it, usage, qoe, qoe < spec.SLA.Availability,
			usage-spec.OptUsage, max(spec.OptQoE-qoe, 0))
	}
	return run
}

// splitSliceSeeds derives slice i's (offline, learner, run) RNGs as a
// pure function of the master seed and the slice index.
func splitSliceSeeds(seed int64, i int) []*rand.Rand {
	return mathx.Split(mathx.ChildSeed(seed, i), 3)
}
