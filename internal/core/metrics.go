package core

import (
	"time"

	"github.com/atlas-slicing/atlas/internal/obs"
)

// coreMetrics is the orchestrator's observability bundle: per-stage
// latencies (calibration, offline training, online stepping) and the
// online hot path's throughput counters (candidate scans, interval-memo
// hit rate, simulator queries). A nil bundle no-ops on every method, so
// an uninstrumented System pays one predictable nil check per call
// site; when instrumented, every recording is a plain atomic operation
// — no locks, no allocation — keeping the scan loop inside the
// BENCH_6/BENCH_7 budgets. Nothing here reads an RNG or feeds a
// decision, so instrumented and uninstrumented runs are bit-identical.
type coreMetrics struct {
	calibrateSeconds *obs.Histogram
	offlineSeconds   *obs.Histogram
	stepSeconds      *obs.Histogram

	steps        *obs.Counter
	admissions   *obs.Counter
	offlineWarm  *obs.Counter
	offlineTrain *obs.Counter

	scans          *obs.Counter
	scanCandidates *obs.Counter
	memoHits       *obs.Counter
	memoMisses     *obs.Counter
	simEpisodes    *obs.Counter
}

func newCoreMetrics(reg *obs.Registry) *coreMetrics {
	if reg == nil {
		return nil
	}
	return &coreMetrics{
		calibrateSeconds: reg.Histogram("atlas_stage_seconds",
			"Wall time per orchestrator stage.", nil, obs.L("stage", "calibration")),
		offlineSeconds: reg.Histogram("atlas_stage_seconds",
			"Wall time per orchestrator stage.", nil, obs.L("stage", "offline")),
		stepSeconds: reg.Histogram("atlas_stage_seconds",
			"Wall time per orchestrator stage.", nil, obs.L("stage", "online_step")),
		steps: reg.Counter("atlas_online_steps_total",
			"Per-slice online configuration intervals advanced."),
		admissions: reg.Counter("atlas_core_admissions_total",
			"Slices admitted by the orchestrator."),
		offlineWarm: reg.Counter("atlas_offline_outcomes_total",
			"Offline-stage outcomes by source.", obs.L("source", "warm")),
		offlineTrain: reg.Counter("atlas_offline_outcomes_total",
			"Offline-stage outcomes by source.", obs.L("source", "trained")),
		scans: reg.Counter("atlas_online_scans_total",
			"Candidate-pool posterior scans run by the online stage."),
		scanCandidates: reg.Counter("atlas_online_scan_candidates_total",
			"Candidate configurations evaluated across all scans."),
		memoHits: reg.Counter("atlas_online_memo_hits_total",
			"Interval-memo hits: simulator queries answered from cache."),
		memoMisses: reg.Counter("atlas_online_memo_misses_total",
			"Interval-memo misses: simulator queries actually executed."),
		simEpisodes: reg.Counter("atlas_online_sim_episodes_total",
			"Simulator episodes executed by online-stage queries."),
	}
}

func (m *coreMetrics) recordCalibration(start time.Time) {
	if m == nil {
		return
	}
	m.calibrateSeconds.ObserveSince(start)
}

func (m *coreMetrics) recordOffline(start time.Time) {
	if m == nil {
		return
	}
	m.offlineSeconds.ObserveSince(start)
}

func (m *coreMetrics) recordScan(candidates int) {
	if m == nil {
		return
	}
	m.scans.Inc()
	m.scanCandidates.Add(uint64(candidates))
}

func (m *coreMetrics) recordMemo(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.memoHits.Inc()
	} else {
		m.memoMisses.Inc()
	}
}

func (m *coreMetrics) recordSimEpisodes(n int) {
	if m == nil {
		return
	}
	m.simEpisodes.Add(uint64(n))
}

func (m *coreMetrics) recordStep(start time.Time) {
	if m == nil {
		return
	}
	m.steps.Inc()
	m.stepSeconds.ObserveSince(start)
}

func (m *coreMetrics) recordAdmission(warm bool) {
	if m == nil {
		return
	}
	m.admissions.Inc()
	if warm {
		m.offlineWarm.Inc()
	} else {
		m.offlineTrain.Inc()
	}
}

// Instrument registers the orchestrator's stage timings and online
// hot-path counters with reg, and points every subsequently admitted
// slice's learner at the shared bundle. Call before concurrent use;
// no-op on a nil registry. Instrumentation is result-invariant: it
// consumes no randomness and alters no decision.
func (s *System) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.met = newCoreMetrics(reg)
	if s.Store != nil {
		s.Store.Instrument(reg)
	}
	if s.Ledger != nil {
		s.Ledger.Instrument(reg)
	}
}
