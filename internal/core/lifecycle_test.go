package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/atlas-slicing/atlas/internal/realnet"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/store"
)

func quickSystem() *System {
	s := NewSystem(realnet.New(), simnet.NewDefault(), 1)
	s.CalOpts.Iters, s.CalOpts.Explore, s.CalOpts.Batch, s.CalOpts.Pool = 15, 5, 2, 150
	s.OffOpts.Iters, s.OffOpts.Explore, s.OffOpts.Batch, s.OffOpts.Pool = 20, 6, 2, 150
	s.OnOpts.Pool, s.OnOpts.N = 150, 3
	return s
}

func TestSystemAdmitStepRemove(t *testing.T) {
	s := quickSystem()
	inst, err := s.AdmitSlice("ar", slicing.DefaultSLA(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Offline == nil || inst.Learner == nil || inst.Domains == nil {
		t.Fatal("instance incomplete")
	}
	for i := 0; i < 3; i++ {
		if err := s.Step("ar"); err != nil {
			t.Fatal(err)
		}
	}
	if inst.Iter != 3 || len(inst.QoEs) != 3 {
		t.Fatalf("iter=%d qoes=%d", inst.Iter, len(inst.QoEs))
	}
	if len(inst.Domains.Audit()) == 0 {
		t.Fatal("no domain actions recorded")
	}
	if err := s.RemoveSlice("ar"); err != nil {
		t.Fatal(err)
	}
	if err := s.Step("ar"); err == nil {
		t.Fatal("stepping a removed slice must fail")
	}
}

func TestSystemRejectsDuplicateAdmission(t *testing.T) {
	s := quickSystem()
	if _, err := s.AdmitSlice("a", slicing.DefaultSLA(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AdmitSlice("a", slicing.DefaultSLA(), 1); err == nil {
		t.Fatal("duplicate admission accepted")
	}
}

func TestSystemStepAllMultipleSlices(t *testing.T) {
	s := quickSystem()
	if _, err := s.AdmitSlice("a", slicing.DefaultSLA(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AdmitSlice("b", slicing.SLA{ThresholdMs: 500, Availability: 0.9}, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.StepAll(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		inst, _ := s.Slice(id)
		if inst.Iter != 1 {
			t.Fatalf("slice %s iter = %d", id, inst.Iter)
		}
	}
	if len(s.Slices()) != 2 {
		t.Fatalf("slices = %v", s.Slices())
	}
}

func TestInfrastructureChangedWarmStarts(t *testing.T) {
	s := quickSystem()
	if _, err := s.AdmitSlice("a", slicing.DefaultSLA(), 1); err != nil {
		t.Fatal(err)
	}
	inst, _ := s.Slice("a")
	oldPolicy := inst.Offline.Policy

	// Infrastructure change: the backhaul gets faster.
	s.Sim.Profile.BackhaulDelayMs = 1.0
	if err := s.InfrastructureChanged(12); err != nil {
		t.Fatal(err)
	}
	if inst.Offline.Policy == oldPolicy {
		t.Fatal("offline policy not refreshed")
	}
	// Online learning continues uninterrupted.
	if err := s.Step("a"); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateRequiresCollector(t *testing.T) {
	// A bare simulator does not implement Collect; Calibrate must fail
	// cleanly rather than panic.
	s := NewSystem(simnet.NewDefault(), simnet.NewDefault(), 2)
	if _, err := s.Calibrate(); err == nil {
		t.Fatal("expected error for environment without online collection")
	}
}

// TestSystemAdmitSliceClass: class-based admission threads the service
// class into offline training, the learner, and per-interval stepping
// (traffic model + class QoE).
func TestSystemAdmitSliceClass(t *testing.T) {
	s := quickSystem()
	class := slicing.DefaultServiceClass()
	class.Name = "diurnal-video"
	class.Traffic = 2
	class.TrafficModel = slicing.DiurnalTraffic{PeriodIntervals: 4, MinFactor: 0.25}
	inst, err := s.AdmitSliceClass("dv", class, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Class == nil || inst.Traffic != 2 || inst.SLA != class.SLA {
		t.Fatalf("class defaults not applied: %+v", inst)
	}
	if inst.Offline.Policy.Class == nil {
		t.Fatal("offline policy not bound to the class")
	}
	for i := 0; i < 4; i++ {
		if err := s.Step("dv"); err != nil {
			t.Fatal(err)
		}
	}
	if len(inst.Traffics) != 4 {
		t.Fatalf("traffics recorded %d want 4", len(inst.Traffics))
	}
	varied := false
	for _, tr := range inst.Traffics {
		if tr < 1 || tr > MaxTraffic {
			t.Fatalf("traffic %d outside [1, %d]", tr, MaxTraffic)
		}
		if tr != inst.Traffics[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("diurnal demand never varied over a 4-interval period")
	}
	for _, q := range inst.QoEs {
		if q < 0 || q > 1 {
			t.Fatalf("QoE %v outside [0, 1]", q)
		}
	}
	// Invalid traffic is rejected up front.
	zero := class
	zero.Traffic = 0
	if _, err := s.AdmitSliceClass("bad", zero, -1); err == nil {
		t.Fatal("negative traffic admitted")
	}
}

// TestReleaseSliceTombstonesCheckpoint is the regression test for the
// suspend/decommission split: RemoveSlice leaves the online checkpoint
// live (re-admission of the same id resumes the residual), while
// ReleaseSlice tombstones it, so re-admission after a release is
// deterministically cold — exactly like a first admission.
func TestReleaseSliceTombstonesCheckpoint(t *testing.T) {
	s := quickSystem()
	s.Store = store.InMemory()

	if _, err := s.AdmitSlice("a", slicing.DefaultSLA(), 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Step("a"); err != nil {
			t.Fatal(err)
		}
	}

	// Suspend path: the checkpoint survives RemoveSlice and the same id
	// resumes its residual history.
	if err := s.RemoveSlice("a"); err != nil {
		t.Fatal(err)
	}
	inst, err := s.AdmitSlice("a", slicing.DefaultSLA(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.ResidualWarm {
		t.Fatal("re-admission after RemoveSlice did not resume the checkpoint")
	}
	if got := inst.Learner.Residuals(); got != 3 {
		t.Fatalf("resumed residual count = %d, want 3", got)
	}

	// Decommission path: ReleaseSlice finalizes the checkpoint, so the
	// same id re-admits cold and deterministic.
	if err := s.ReleaseSlice("a"); err != nil {
		t.Fatal(err)
	}
	inst2, err := s.AdmitSlice("a", slicing.DefaultSLA(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if inst2.ResidualWarm {
		t.Fatal("re-admission after ReleaseSlice resumed a tombstoned checkpoint")
	}
	if got := inst2.Learner.Residuals(); got != 0 {
		t.Fatalf("released slice re-admitted with %d residuals, want 0", got)
	}
	if err := s.ReleaseSlice("ghost"); err == nil {
		t.Fatal("releasing an unknown slice must fail")
	}
}

// TestSystemCapacityCheckedAdmission: with a ledger, admission reserves
// the envelope demand, rejections surface ErrInsufficientCapacity, and
// removal frees the reservation.
func TestSystemCapacityCheckedAdmission(t *testing.T) {
	s := quickSystem()
	// Room for roughly one envelope: admissions reserve the offline
	// optimum scaled by the headroom factor (the prototype's optimum
	// leans hard on edge CPU, so ~1.2 cells fits one tenant).
	s.Ledger = slicing.NewCapacityLedger(slicing.CellCapacity(1.2))

	inst, err := s.AdmitSlice("a", slicing.DefaultSLA(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Capped || inst.Demand().IsZero() {
		t.Fatalf("capacity-checked admission left no envelope: %+v", inst.Cap)
	}
	reserved, _, ok := s.SliceDemand("a")
	if !ok || reserved != inst.Demand() {
		t.Fatalf("SliceDemand reserved = %v, want %v", reserved, inst.Demand())
	}
	if u := s.Ledger.Utilization().Max(); u <= 0 || u > 1 {
		t.Fatalf("utilization after admission = %v", u)
	}

	// Fill the remaining capacity until a rejection surfaces.
	rejected := false
	for i := 0; i < 8; i++ {
		if _, err := s.AdmitSlice(fmt.Sprintf("b%d", i), slicing.DefaultSLA(), 1); err != nil {
			if !errors.Is(err, ErrInsufficientCapacity) {
				t.Fatalf("rejection error = %v, want ErrInsufficientCapacity", err)
			}
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("no admission was rejected under 0.55 cells")
	}
	if u := s.Ledger.Utilization().Max(); u > 1 {
		t.Fatalf("ledger overbooked: %v", u)
	}

	// Steps stay inside the envelope.
	if err := s.Step("a"); err != nil {
		t.Fatal(err)
	}
	_, applied, _ := s.SliceDemand("a")
	if !applied.Fits(reserved) {
		t.Fatalf("applied %v exceeds reservation %v", applied, reserved)
	}

	// Removal frees exactly the reservation.
	before := s.Ledger.Used()
	if err := s.RemoveSlice("a"); err != nil {
		t.Fatal(err)
	}
	if diff := before.Sub(s.Ledger.Used()); diff != reserved {
		t.Fatalf("removal freed %v, want %v", diff, reserved)
	}
}

// TestSystemDownscaleFreesCapacity: the preemption-free arbitration
// primitive shrinks a slice's envelope to its learner's cheapest
// posterior-feasible configuration and returns the freed demand.
func TestSystemDownscaleFreesCapacity(t *testing.T) {
	s := quickSystem()
	s.Ledger = slicing.NewCapacityLedger(slicing.CellCapacity(2))
	// A relaxed SLA leaves plenty of posterior-feasible candidates
	// below the reservation envelope.
	if _, err := s.AdmitSlice("a", slicing.SLA{ThresholdMs: 500, Availability: 0.5}, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.Step("a"); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := s.Ledger.Reserved("a")
	freed, ok, err := s.DownscaleSlice("a", 150)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("no posterior-feasible cheaper configuration at this budget")
	}
	after, _ := s.Ledger.Reserved("a")
	if got := before.Sub(after); got != freed {
		t.Fatalf("ledger freed %v, reported %v", got, freed)
	}
	if !after.Fits(before) || freed.IsZero() {
		t.Fatalf("downscale did not shrink: before %v after %v", before, after)
	}
	// The slice keeps running inside the tightened envelope.
	if err := s.Step("a"); err != nil {
		t.Fatal(err)
	}
	_, applied, _ := s.SliceDemand("a")
	if !applied.Fits(after) {
		t.Fatalf("post-downscale step %v escaped envelope %v", applied, after)
	}
}

// TestSystemConcurrentAdmitRemove hammers the admission, stepping, and
// teardown paths from many goroutines at once — the churn pattern the
// fleet control plane drives. Run under -race in CI.
func TestSystemConcurrentAdmitRemove(t *testing.T) {
	s := quickSystem()
	s.Store = store.InMemory()
	s.Ledger = slicing.NewCapacityLedger(slicing.CellCapacity(16))
	if _, err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", i)
			if _, err := s.AdmitSlice(id, slicing.DefaultSLA(), 1); err != nil {
				errs[i] = err
				return
			}
			for k := 0; k < 2; k++ {
				if err := s.Step(id); err != nil {
					errs[i] = err
					return
				}
			}
			if i%2 == 0 {
				errs[i] = s.RemoveSlice(id)
			} else {
				errs[i] = s.ReleaseSlice(id)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if len(s.Slices()) != 0 {
		t.Fatalf("slices left after churn: %v", s.Slices())
	}
	if used := s.Ledger.Used(); !used.IsZero() {
		t.Fatalf("ledger leaked %v after full churn", used)
	}

	// Contended duplicate admissions: exactly one winner.
	var okCount int32
	var mu sync.Mutex
	wg = sync.WaitGroup{}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.AdmitSlice("dup", slicing.DefaultSLA(), 1); err == nil {
				mu.Lock()
				okCount++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if okCount != 1 {
		t.Fatalf("duplicate id admitted %d times, want exactly 1", okCount)
	}
}

// TestSystemResizeSlice: the modify hook re-optimizes a live slice's
// envelope in place — the ledger reservation resizes, the runtime
// rebinds to the re-trained artifact, and unknown ids fail.
func TestSystemResizeSlice(t *testing.T) {
	s := quickSystem()
	s.Store = store.InMemory()
	s.Ledger = slicing.NewCapacityLedger(slicing.CellCapacity(4))
	inst, err := s.AdmitSliceClass("a", slicing.DefaultServiceClass(), 1)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := s.Ledger.Reserved("a")

	d, err := s.ResizeSlice("a", 2)
	if err != nil {
		t.Fatal(err)
	}
	after, ok := s.Ledger.Reserved("a")
	if !ok || after != d {
		t.Fatalf("ledger holds %v, resize reported %v", after, d)
	}
	if inst.Traffic != 2 {
		t.Fatalf("traffic = %d, want 2", inst.Traffic)
	}
	// The slice keeps stepping against the resized envelope.
	if err := s.Step("a"); err != nil {
		t.Fatal(err)
	}
	_, applied, _ := s.SliceDemand("a")
	if !applied.Fits(d) {
		t.Fatalf("applied %v exceeds resized envelope %v", applied, d)
	}
	// Shrinking back reuses the cached traffic-1 artifact and lands on
	// the original envelope.
	d1, err := s.ResizeSlice("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != before {
		t.Fatalf("shrink landed on %v, original reservation was %v", d1, before)
	}

	if _, err := s.ResizeSlice("ghost", 2); err == nil {
		t.Fatal("resizing an unknown slice must fail")
	}
	if _, err := s.ResizeSlice("a", MaxTraffic+1); err == nil {
		t.Fatal("resizing beyond MaxTraffic must fail")
	}
}

// TestSystemResizeSliceAtMigrates: an explicit host site moves the
// reservation across sites; a site that cannot host the envelope
// rejects with ErrInsufficientCapacity and rolls back cleanly.
func TestSystemResizeSliceAtMigrates(t *testing.T) {
	s := quickSystem()
	cells := slicing.CellCapacity(4)
	s.Ledger = slicing.NewTopologyLedger(slicing.TopologyCapacity{
		Sites: []slicing.SiteCapacity{
			{ID: "east", RanPRB: cells.RanPRB},
			{ID: "west", RanPRB: cells.RanPRB},
			{ID: "dead", RanPRB: 0},
		},
		TnMbps: cells.TnMbps,
		CnCPU:  cells.CnCPU,
	})
	if _, err := s.AdmitSliceClassAt("a", slicing.DefaultServiceClass(), 1, "east"); err != nil {
		t.Fatal(err)
	}
	before, _ := s.Ledger.Reserved("a")

	// Migration to a site with no RAN fails and rolls back.
	if _, err := s.ResizeSliceAt("a", 1, "dead"); !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("resize onto dead site: err = %v, want ErrInsufficientCapacity", err)
	}
	if site, _ := s.Ledger.SiteOf("a"); site != "east" {
		t.Fatalf("failed migration left slice at %q, want east", site)
	}
	if d, _ := s.Ledger.Reserved("a"); d != before {
		t.Fatalf("failed migration changed reservation: %v, was %v", d, before)
	}

	// Migration to a healthy site moves the booking.
	d, err := s.ResizeSliceAt("a", 1, "west")
	if err != nil {
		t.Fatal(err)
	}
	if site, _ := s.Ledger.SiteOf("a"); site != "west" {
		t.Fatalf("slice at %q, want west", site)
	}
	if inst, _ := s.Slice("a"); inst.Site != "west" {
		t.Fatalf("instance site %q, want west", inst.Site)
	}
	if got, _ := s.Ledger.Reserved("a"); got != d {
		t.Fatalf("ledger holds %v, resize reported %v", got, d)
	}
	if free := s.Ledger.FreeAt("east"); free.RanPRB != cells.RanPRB {
		t.Fatalf("east not fully freed after migration: %v", free)
	}
}

// TestSystemCheckpointSlice: the drain hook flushes the online residual
// outside the per-Step cadence — proven by never stepping: only
// CheckpointSlice can have written the checkpoint the re-admission
// resumes.
func TestSystemCheckpointSlice(t *testing.T) {
	s := quickSystem()
	s.Store = store.InMemory()
	if _, err := s.AdmitSlice("a", slicing.DefaultSLA(), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointSlice("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveSlice("a"); err != nil {
		t.Fatal(err)
	}
	inst, err := s.AdmitSlice("a", slicing.DefaultSLA(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.ResidualWarm {
		t.Fatal("re-admission did not resume the drain checkpoint")
	}

	if err := s.CheckpointSlice("ghost"); err == nil {
		t.Fatal("checkpointing an unknown slice must fail")
	}
	// Storeless systems no-op.
	s2 := quickSystem()
	if _, err := s2.AdmitSlice("b", slicing.DefaultSLA(), 1); err != nil {
		t.Fatal(err)
	}
	if err := s2.CheckpointSlice("b"); err != nil {
		t.Fatalf("storeless checkpoint: %v", err)
	}
}
