package core

import (
	"testing"

	"github.com/atlas-slicing/atlas/internal/realnet"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

func quickSystem() *System {
	s := NewSystem(realnet.New(), simnet.NewDefault(), 1)
	s.CalOpts.Iters, s.CalOpts.Explore, s.CalOpts.Batch, s.CalOpts.Pool = 15, 5, 2, 150
	s.OffOpts.Iters, s.OffOpts.Explore, s.OffOpts.Batch, s.OffOpts.Pool = 20, 6, 2, 150
	s.OnOpts.Pool, s.OnOpts.N = 150, 3
	return s
}

func TestSystemAdmitStepRemove(t *testing.T) {
	s := quickSystem()
	inst, err := s.AdmitSlice("ar", slicing.DefaultSLA(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Offline == nil || inst.Learner == nil || inst.Domains == nil {
		t.Fatal("instance incomplete")
	}
	for i := 0; i < 3; i++ {
		if err := s.Step("ar"); err != nil {
			t.Fatal(err)
		}
	}
	if inst.Iter != 3 || len(inst.QoEs) != 3 {
		t.Fatalf("iter=%d qoes=%d", inst.Iter, len(inst.QoEs))
	}
	if len(inst.Domains.Audit()) == 0 {
		t.Fatal("no domain actions recorded")
	}
	if err := s.RemoveSlice("ar"); err != nil {
		t.Fatal(err)
	}
	if err := s.Step("ar"); err == nil {
		t.Fatal("stepping a removed slice must fail")
	}
}

func TestSystemRejectsDuplicateAdmission(t *testing.T) {
	s := quickSystem()
	if _, err := s.AdmitSlice("a", slicing.DefaultSLA(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AdmitSlice("a", slicing.DefaultSLA(), 1); err == nil {
		t.Fatal("duplicate admission accepted")
	}
}

func TestSystemStepAllMultipleSlices(t *testing.T) {
	s := quickSystem()
	if _, err := s.AdmitSlice("a", slicing.DefaultSLA(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AdmitSlice("b", slicing.SLA{ThresholdMs: 500, Availability: 0.9}, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.StepAll(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		inst, _ := s.Slice(id)
		if inst.Iter != 1 {
			t.Fatalf("slice %s iter = %d", id, inst.Iter)
		}
	}
	if len(s.Slices()) != 2 {
		t.Fatalf("slices = %v", s.Slices())
	}
}

func TestInfrastructureChangedWarmStarts(t *testing.T) {
	s := quickSystem()
	if _, err := s.AdmitSlice("a", slicing.DefaultSLA(), 1); err != nil {
		t.Fatal(err)
	}
	inst, _ := s.Slice("a")
	oldPolicy := inst.Offline.Policy

	// Infrastructure change: the backhaul gets faster.
	s.Sim.Profile.BackhaulDelayMs = 1.0
	if err := s.InfrastructureChanged(12); err != nil {
		t.Fatal(err)
	}
	if inst.Offline.Policy == oldPolicy {
		t.Fatal("offline policy not refreshed")
	}
	// Online learning continues uninterrupted.
	if err := s.Step("a"); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateRequiresCollector(t *testing.T) {
	// A bare simulator does not implement Collect; Calibrate must fail
	// cleanly rather than panic.
	s := NewSystem(simnet.NewDefault(), simnet.NewDefault(), 2)
	if _, err := s.Calibrate(); err == nil {
		t.Fatal("expected error for environment without online collection")
	}
}

// TestSystemAdmitSliceClass: class-based admission threads the service
// class into offline training, the learner, and per-interval stepping
// (traffic model + class QoE).
func TestSystemAdmitSliceClass(t *testing.T) {
	s := quickSystem()
	class := slicing.DefaultServiceClass()
	class.Name = "diurnal-video"
	class.Traffic = 2
	class.TrafficModel = slicing.DiurnalTraffic{PeriodIntervals: 4, MinFactor: 0.25}
	inst, err := s.AdmitSliceClass("dv", class, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Class == nil || inst.Traffic != 2 || inst.SLA != class.SLA {
		t.Fatalf("class defaults not applied: %+v", inst)
	}
	if inst.Offline.Policy.Class == nil {
		t.Fatal("offline policy not bound to the class")
	}
	for i := 0; i < 4; i++ {
		if err := s.Step("dv"); err != nil {
			t.Fatal(err)
		}
	}
	if len(inst.Traffics) != 4 {
		t.Fatalf("traffics recorded %d want 4", len(inst.Traffics))
	}
	varied := false
	for _, tr := range inst.Traffics {
		if tr < 1 || tr > MaxTraffic {
			t.Fatalf("traffic %d outside [1, %d]", tr, MaxTraffic)
		}
		if tr != inst.Traffics[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("diurnal demand never varied over a 4-interval period")
	}
	for _, q := range inst.QoEs {
		if q < 0 || q > 1 {
			t.Fatalf("QoE %v outside [0, 1]", q)
		}
	}
	// Invalid traffic is rejected up front.
	zero := class
	zero.Traffic = 0
	if _, err := s.AdmitSliceClass("bad", zero, -1); err == nil {
		t.Fatal("negative traffic admitted")
	}
}
