package core

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/atlas-slicing/atlas/internal/domains"
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/store"
)

// System is the slice-lifecycle orchestrator of the paper's §10: one
// individualized Atlas instance per admitted slice, sharing a single
// learning-based simulator for the common infrastructure. It covers the
// scalability and adaptability procedures the paper describes:
//
//   - AdmitSlice builds the tenant's simulator calibration (reusing the
//     shared one), trains the offline policy, and starts online
//     learning;
//   - Step advances every slice one configuration interval;
//   - InfrastructureChanged re-searches the simulation parameters
//     "based on its last optima" and fine-tunes every offline policy in
//     the updated simulator, without interrupting online learning;
//   - RemoveSlice tears a tenant down.
type System struct {
	Real  slicing.Env
	Sim   *simnet.Simulator
	Space slicing.ConfigSpace

	// Budgets for admission-time training.
	CalOpts CalibratorOptions
	OffOpts OfflineOptions
	OnOpts  OnlineOptions

	// Store is the optional artifact store: admission consults it
	// before offline training and writes the trained policy back, the
	// shared calibration is cached under its fingerprint, and every
	// Step checkpoints the slice's online residual state. Nil disables
	// persistence.
	Store *store.Store

	mu     sync.Mutex
	seed   int64 // base seed: canonical training seeds derive from it
	rng    *rand.Rand
	params slicing.SimParams // shared calibrated parameters
	calib  bool
	slices map[string]*SliceInstance
	// diags accumulates non-fatal store diagnostics (corrupt artifacts
	// that forced a fall back to fresh training); see StoreDiagnostics.
	diags []error
}

// StoreDiagnostics returns the non-fatal artifact-store diagnostics the
// system has accumulated: every corrupt, version-skewed, or mismatched
// artifact that silently fell back to fresh training. Operators poll it
// to learn a store needs repair; an empty slice means every read was
// clean.
func (s *System) StoreDiagnostics() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]error(nil), s.diags...)
}

// noteDiag records a non-fatal store diagnostic (nil is ignored).
func (s *System) noteDiag(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	s.diags = append(s.diags, err)
	s.mu.Unlock()
}

// SliceInstance is one tenant's runtime state.
type SliceInstance struct {
	ID      string
	SLA     slicing.SLA
	Traffic int
	// Class is the tenant's service class; nil keeps the prototype
	// workload under the SLA's latency-availability QoE.
	Class *slicing.ServiceClass

	Offline *OfflineResult
	Learner *OnlineLearner
	Domains *domains.Orchestrator

	// WarmStart marks an offline policy restored from the artifact
	// store instead of trained on admission; ResidualWarm marks an
	// online residual model warm-started from a stored checkpoint.
	// StoreDiag carries the non-fatal diagnostic of an admission-time
	// store read that fell back to fresh training.
	WarmStart    bool
	ResidualWarm bool
	StoreDiag    error

	Iter int
	// Traffics records the per-interval demand of the class's traffic
	// model.
	Traffics []int
	Usages   []float64
	QoEs     []float64

	trafficSeed int64
	// storeKey is the slice's artifact fingerprint (set when the system
	// has a store); online checkpoints land under it.
	storeKey string
}

// NewSystem builds an orchestrator over a real network and a simulator.
func NewSystem(real slicing.Env, sim *simnet.Simulator, seed int64) *System {
	return &System{
		Real:    real,
		Sim:     sim,
		Space:   slicing.DefaultConfigSpace(),
		CalOpts: DefaultCalibratorOptions(),
		OffOpts: DefaultOfflineOptions(),
		OnOpts:  DefaultOnlineOptions(),
		seed:    seed,
		rng:     mathx.NewRNG(seed),
		slices:  map[string]*SliceInstance{},
	}
}

// collector is the optional interface a real network provides for
// gathering the online collection D_r (the surrogate implements it).
type collector interface {
	Collect(cfg slicing.Config, traffic, episodes int, seed int64) []float64
}

// Calibrate runs (or re-runs) stage 1 for the shared infrastructure.
// When the simulator was calibrated before, the search warm-starts
// around the last optimum, as §10 prescribes for infrastructure changes.
func (s *System) Calibrate() (*CalibrationResult, error) {
	col, ok := s.Real.(collector)
	if !ok {
		return nil, fmt.Errorf("core: real network does not expose an online collection")
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	dr := col.Collect(FullConfig(), 1, 3, s.rng.Int63())
	opts := s.CalOpts
	if s.calib {
		// Continual search based on the last optimum: recentre the
		// trust region and shrink the exploration phase.
		opts.Space.Original = s.params
		opts.Explore = opts.Explore / 2
	}
	cal := NewCalibrator(s.Sim, dr, opts)
	// The search is cached under the fingerprint of (options,
	// collection, seed): a restarted system with the same seed collects
	// the same measurements and warm-starts instead of re-searching.
	res, _, _, diag := RunCalibrationWithStore(cal, s.rng.Int63(), s.Store, true, true)
	if diag != nil {
		// Already under s.mu; append directly.
		s.diags = append(s.diags, diag)
	}
	s.params = res.BestParams
	s.calib = true
	return res, nil
}

// Augmented returns the shared calibrated simulator.
func (s *System) Augmented() *simnet.Simulator {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.calib {
		return s.Sim
	}
	return s.Sim.WithParams(s.params)
}

// AdmitSlice onboards a tenant under the prototype service behavior:
// offline training in the shared augmented simulator, then an online
// learner and a domain-manager set of its own.
func (s *System) AdmitSlice(id string, sla slicing.SLA, traffic int) (*SliceInstance, error) {
	return s.admit(id, nil, sla, traffic)
}

// AdmitSliceClass onboards a tenant of a specific service class: the
// class's application profile drives offline training and every episode,
// its QoE model judges them, and its traffic model shapes the
// per-interval demand. A zero traffic defaults to the class's nominal
// demand.
func (s *System) AdmitSliceClass(id string, class slicing.ServiceClass, traffic int) (*SliceInstance, error) {
	if traffic == 0 {
		traffic = class.Traffic
	}
	sla := class.SLA
	return s.admit(id, &class, sla, traffic)
}

func (s *System) admit(id string, class *slicing.ServiceClass, sla slicing.SLA, traffic int) (*SliceInstance, error) {
	s.mu.Lock()
	if _, dup := s.slices[id]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: slice %q already admitted", id)
	}
	s.mu.Unlock()
	if traffic < 1 || traffic > MaxTraffic {
		return nil, fmt.Errorf("core: slice %q traffic %d outside [1, %d]", id, traffic, MaxTraffic)
	}

	if !s.calib {
		if _, err := s.Calibrate(); err != nil {
			return nil, err
		}
	}
	aug := s.Augmented()

	opts := s.OffOpts
	opts.SLA = sla
	opts.Traffic = traffic
	opts.Class = class
	// The training seed is a pure function of (system seed, artifact
	// fingerprint), so every admission of the same service class under
	// the same budgets maps to the same artifact: the store hit on the
	// second admission is exactly the policy the first one trained.
	out := RunOfflineWithStore(aug, opts, OfflineSeed(aug, s.seed, opts), s.Store, true, true)
	s.noteDiag(out.Diag)
	off := out.Result

	lo := s.OnOpts
	learner := NewOnlineLearner(off.Policy, aug, lo, mathx.NewRNG(s.rng.Int63()))
	learner.Class = class

	inst := &SliceInstance{
		ID: id, SLA: sla, Traffic: traffic, Class: class,
		Offline:     off,
		Learner:     learner,
		Domains:     domains.NewOrchestrator(id),
		WarmStart:   out.Hit,
		StoreDiag:   out.Diag,
		trafficSeed: s.rng.Int63(),
		storeKey:    out.Key,
	}
	// Warm-start the online residual from the class's last checkpoint,
	// when one exists: the sim-to-real gap is infrastructure-level, so a
	// returning class resumes from its learned residual instead of the
	// prior.
	if s.Store != nil {
		var snap OnlineSnapshot
		found, err := s.Store.Get(store.KindOnline, inst.storeKey, &snap)
		s.noteDiag(err)
		if found && err == nil {
			if rerr := learner.Restore(&snap); rerr != nil {
				s.noteDiag(rerr)
			} else {
				inst.ResidualWarm = true
			}
		}
	}
	s.mu.Lock()
	s.slices[id] = inst
	s.mu.Unlock()
	return inst, nil
}

// RemoveSlice tears a tenant down.
func (s *System) RemoveSlice(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.slices[id]; !ok {
		return fmt.Errorf("core: slice %q not admitted", id)
	}
	delete(s.slices, id)
	return nil
}

// Slice returns a tenant's instance.
func (s *System) Slice(id string) (*SliceInstance, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.slices[id]
	return inst, ok
}

// Slices returns the admitted slice ids.
func (s *System) Slices() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.slices))
	for id := range s.slices {
		out = append(out, id)
	}
	return out
}

// Step advances one slice by one configuration interval: select, apply
// through the domain managers, run the interval on the real network,
// observe.
func (s *System) Step(id string) error {
	inst, ok := s.Slice(id)
	if !ok {
		return fmt.Errorf("core: slice %q not admitted", id)
	}
	traffic := inst.Traffic
	if inst.Class != nil {
		traffic = min(inst.Class.TrafficAt(inst.Iter, inst.Traffic, inst.trafficSeed), MaxTraffic)
		inst.Learner.SetTraffic(traffic)
	}
	cfg := inst.Learner.Next(inst.Iter, s.rng)
	if _, err := inst.Domains.Apply(s.Space.Clamp(cfg)); err != nil {
		return fmt.Errorf("core: slice %q domain apply: %w", id, err)
	}
	tr := slicing.EpisodeFor(s.Real, inst.Class, cfg, traffic, s.rng.Int63())
	usage := s.Space.Usage(cfg)
	qoe := slicing.EvalFor(inst.Class, inst.SLA, tr)
	inst.Learner.Observe(inst.Iter, cfg, usage, qoe)
	inst.Iter++
	inst.Traffics = append(inst.Traffics, traffic)
	inst.Usages = append(inst.Usages, usage)
	inst.QoEs = append(inst.QoEs, qoe)
	// Checkpoint the online residual after every epoch so a process
	// restart (or a later admission of the same class) resumes from the
	// latest learned sim-to-real gap. Checkpoint failures are non-fatal:
	// the in-memory learner is always authoritative.
	if s.Store != nil && inst.storeKey != "" {
		if snap, err := inst.Learner.Snapshot(); err == nil {
			_ = s.Store.Put(store.KindOnline, inst.storeKey, snap)
		}
	}
	return nil
}

// StepAll advances every admitted slice one interval.
func (s *System) StepAll() error {
	for _, id := range s.Slices() {
		if err := s.Step(id); err != nil {
			return err
		}
	}
	return nil
}

// InfrastructureChanged handles the §10 adaptability procedure: re-run
// stage 1 from the last optimum against fresh measurements, then
// fine-tune every slice's offline policy in the updated simulator. The
// online GP models survive untouched — they learn only the residual, so
// they keep adapting continuously.
func (s *System) InfrastructureChanged(fineTuneIters int) error {
	if _, err := s.Calibrate(); err != nil {
		return err
	}
	aug := s.Augmented()
	for _, id := range s.Slices() {
		inst, _ := s.Slice(id)
		opts := s.OffOpts
		opts.SLA = inst.SLA
		opts.Traffic = inst.Traffic
		opts.Class = inst.Class
		if fineTuneIters > 0 {
			opts.Iters = fineTuneIters
			opts.Explore = fineTuneIters / 5
		}
		off := NewOfflineTrainer(aug, opts).Run(mathx.NewRNG(s.rng.Int63()))
		inst.Offline = off
		// The learner keeps its online GP but points at the refreshed
		// offline artifacts and simulator.
		inst.Learner.Policy = off.Policy
		inst.Learner.Sim = aug
	}
	return nil
}
