package core

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/atlas-slicing/atlas/internal/domains"
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// System is the slice-lifecycle orchestrator of the paper's §10: one
// individualized Atlas instance per admitted slice, sharing a single
// learning-based simulator for the common infrastructure. It covers the
// scalability and adaptability procedures the paper describes:
//
//   - AdmitSlice builds the tenant's simulator calibration (reusing the
//     shared one), trains the offline policy, and starts online
//     learning;
//   - Step advances every slice one configuration interval;
//   - InfrastructureChanged re-searches the simulation parameters
//     "based on its last optima" and fine-tunes every offline policy in
//     the updated simulator, without interrupting online learning;
//   - RemoveSlice tears a tenant down.
type System struct {
	Real  slicing.Env
	Sim   *simnet.Simulator
	Space slicing.ConfigSpace

	// Budgets for admission-time training.
	CalOpts CalibratorOptions
	OffOpts OfflineOptions
	OnOpts  OnlineOptions

	mu     sync.Mutex
	rng    *rand.Rand
	params slicing.SimParams // shared calibrated parameters
	calib  bool
	slices map[string]*SliceInstance
}

// SliceInstance is one tenant's runtime state.
type SliceInstance struct {
	ID      string
	SLA     slicing.SLA
	Traffic int
	// Class is the tenant's service class; nil keeps the prototype
	// workload under the SLA's latency-availability QoE.
	Class *slicing.ServiceClass

	Offline *OfflineResult
	Learner *OnlineLearner
	Domains *domains.Orchestrator

	Iter int
	// Traffics records the per-interval demand of the class's traffic
	// model.
	Traffics []int
	Usages   []float64
	QoEs     []float64

	trafficSeed int64
}

// NewSystem builds an orchestrator over a real network and a simulator.
func NewSystem(real slicing.Env, sim *simnet.Simulator, seed int64) *System {
	return &System{
		Real:    real,
		Sim:     sim,
		Space:   slicing.DefaultConfigSpace(),
		CalOpts: DefaultCalibratorOptions(),
		OffOpts: DefaultOfflineOptions(),
		OnOpts:  DefaultOnlineOptions(),
		rng:     mathx.NewRNG(seed),
		slices:  map[string]*SliceInstance{},
	}
}

// collector is the optional interface a real network provides for
// gathering the online collection D_r (the surrogate implements it).
type collector interface {
	Collect(cfg slicing.Config, traffic, episodes int, seed int64) []float64
}

// Calibrate runs (or re-runs) stage 1 for the shared infrastructure.
// When the simulator was calibrated before, the search warm-starts
// around the last optimum, as §10 prescribes for infrastructure changes.
func (s *System) Calibrate() (*CalibrationResult, error) {
	col, ok := s.Real.(collector)
	if !ok {
		return nil, fmt.Errorf("core: real network does not expose an online collection")
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	dr := col.Collect(FullConfig(), 1, 3, s.rng.Int63())
	opts := s.CalOpts
	if s.calib {
		// Continual search based on the last optimum: recentre the
		// trust region and shrink the exploration phase.
		opts.Space.Original = s.params
		opts.Explore = opts.Explore / 2
	}
	cal := NewCalibrator(s.Sim, dr, opts)
	res := cal.Run(mathx.NewRNG(s.rng.Int63()))
	s.params = res.BestParams
	s.calib = true
	return res, nil
}

// Augmented returns the shared calibrated simulator.
func (s *System) Augmented() *simnet.Simulator {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.calib {
		return s.Sim
	}
	return s.Sim.WithParams(s.params)
}

// AdmitSlice onboards a tenant under the prototype service behavior:
// offline training in the shared augmented simulator, then an online
// learner and a domain-manager set of its own.
func (s *System) AdmitSlice(id string, sla slicing.SLA, traffic int) (*SliceInstance, error) {
	return s.admit(id, nil, sla, traffic)
}

// AdmitSliceClass onboards a tenant of a specific service class: the
// class's application profile drives offline training and every episode,
// its QoE model judges them, and its traffic model shapes the
// per-interval demand. A zero traffic defaults to the class's nominal
// demand.
func (s *System) AdmitSliceClass(id string, class slicing.ServiceClass, traffic int) (*SliceInstance, error) {
	if traffic == 0 {
		traffic = class.Traffic
	}
	sla := class.SLA
	return s.admit(id, &class, sla, traffic)
}

func (s *System) admit(id string, class *slicing.ServiceClass, sla slicing.SLA, traffic int) (*SliceInstance, error) {
	s.mu.Lock()
	if _, dup := s.slices[id]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: slice %q already admitted", id)
	}
	s.mu.Unlock()
	if traffic < 1 || traffic > MaxTraffic {
		return nil, fmt.Errorf("core: slice %q traffic %d outside [1, %d]", id, traffic, MaxTraffic)
	}

	if !s.calib {
		if _, err := s.Calibrate(); err != nil {
			return nil, err
		}
	}
	aug := s.Augmented()

	opts := s.OffOpts
	opts.SLA = sla
	opts.Traffic = traffic
	opts.Class = class
	off := NewOfflineTrainer(aug, opts).Run(mathx.NewRNG(s.rng.Int63()))

	lo := s.OnOpts
	learner := NewOnlineLearner(off.Policy, aug, lo, mathx.NewRNG(s.rng.Int63()))
	learner.Class = class

	inst := &SliceInstance{
		ID: id, SLA: sla, Traffic: traffic, Class: class,
		Offline:     off,
		Learner:     learner,
		Domains:     domains.NewOrchestrator(id),
		trafficSeed: s.rng.Int63(),
	}
	s.mu.Lock()
	s.slices[id] = inst
	s.mu.Unlock()
	return inst, nil
}

// RemoveSlice tears a tenant down.
func (s *System) RemoveSlice(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.slices[id]; !ok {
		return fmt.Errorf("core: slice %q not admitted", id)
	}
	delete(s.slices, id)
	return nil
}

// Slice returns a tenant's instance.
func (s *System) Slice(id string) (*SliceInstance, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.slices[id]
	return inst, ok
}

// Slices returns the admitted slice ids.
func (s *System) Slices() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.slices))
	for id := range s.slices {
		out = append(out, id)
	}
	return out
}

// Step advances one slice by one configuration interval: select, apply
// through the domain managers, run the interval on the real network,
// observe.
func (s *System) Step(id string) error {
	inst, ok := s.Slice(id)
	if !ok {
		return fmt.Errorf("core: slice %q not admitted", id)
	}
	traffic := inst.Traffic
	if inst.Class != nil {
		traffic = min(inst.Class.TrafficAt(inst.Iter, inst.Traffic, inst.trafficSeed), MaxTraffic)
		inst.Learner.SetTraffic(traffic)
	}
	cfg := inst.Learner.Next(inst.Iter, s.rng)
	if _, err := inst.Domains.Apply(s.Space.Clamp(cfg)); err != nil {
		return fmt.Errorf("core: slice %q domain apply: %w", id, err)
	}
	tr := slicing.EpisodeFor(s.Real, inst.Class, cfg, traffic, s.rng.Int63())
	usage := s.Space.Usage(cfg)
	qoe := slicing.EvalFor(inst.Class, inst.SLA, tr)
	inst.Learner.Observe(inst.Iter, cfg, usage, qoe)
	inst.Iter++
	inst.Traffics = append(inst.Traffics, traffic)
	inst.Usages = append(inst.Usages, usage)
	inst.QoEs = append(inst.QoEs, qoe)
	return nil
}

// StepAll advances every admitted slice one interval.
func (s *System) StepAll() error {
	for _, id := range s.Slices() {
		if err := s.Step(id); err != nil {
			return err
		}
	}
	return nil
}

// InfrastructureChanged handles the §10 adaptability procedure: re-run
// stage 1 from the last optimum against fresh measurements, then
// fine-tune every slice's offline policy in the updated simulator. The
// online GP models survive untouched — they learn only the residual, so
// they keep adapting continuously.
func (s *System) InfrastructureChanged(fineTuneIters int) error {
	if _, err := s.Calibrate(); err != nil {
		return err
	}
	aug := s.Augmented()
	for _, id := range s.Slices() {
		inst, _ := s.Slice(id)
		opts := s.OffOpts
		opts.SLA = inst.SLA
		opts.Traffic = inst.Traffic
		opts.Class = inst.Class
		if fineTuneIters > 0 {
			opts.Iters = fineTuneIters
			opts.Explore = fineTuneIters / 5
		}
		off := NewOfflineTrainer(aug, opts).Run(mathx.NewRNG(s.rng.Int63()))
		inst.Offline = off
		// The learner keeps its online GP but points at the refreshed
		// offline artifacts and simulator.
		inst.Learner.Policy = off.Policy
		inst.Learner.Sim = aug
	}
	return nil
}
