package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/atlas-slicing/atlas/internal/domains"
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/obs"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/store"
)

// ErrInsufficientCapacity marks an admission rejected by the capacity
// ledger: the tenant's reservation does not fit the free per-domain
// capacity. Callers test with errors.Is.
var ErrInsufficientCapacity = errors.New("insufficient capacity")

// DefaultHeadroom is the reservation envelope factor: a slice reserves
// its offline-optimal configuration scaled by this factor (clamped to
// the space), so online exploration has room above the optimum without
// overbooking the infrastructure.
const DefaultHeadroom = 1.25

// DownscaleHeadroom is the tighter envelope applied when the arbitrator
// shrinks an elastic slice to make room for a newcomer.
const DownscaleHeadroom = 1.05

// System is the slice-lifecycle orchestrator of the paper's §10: one
// individualized Atlas instance per admitted slice, sharing a single
// learning-based simulator for the common infrastructure. It covers the
// scalability and adaptability procedures the paper describes:
//
//   - AdmitSlice builds the tenant's simulator calibration (reusing the
//     shared one), trains the offline policy, and starts online
//     learning;
//   - Step advances every slice one configuration interval;
//   - InfrastructureChanged re-searches the simulation parameters
//     "based on its last optima" and fine-tunes every offline policy in
//     the updated simulator, without interrupting online learning;
//   - RemoveSlice tears a tenant down.
type System struct {
	Real  slicing.Env
	Sim   *simnet.Simulator
	Space slicing.ConfigSpace

	// Budgets for admission-time training.
	CalOpts CalibratorOptions
	OffOpts OfflineOptions
	OnOpts  OnlineOptions

	// Store is the optional artifact store: admission consults it
	// before offline training and writes the trained policy back, the
	// shared calibration is cached under its fingerprint, and every
	// Step checkpoints the slice's online residual state. Nil disables
	// persistence.
	Store *store.Store

	// Ledger is the optional capacity ledger of the fleet control
	// plane. When set, admission reserves the tenant's configuration
	// envelope (offline optimum scaled by Headroom) against the
	// per-domain capacity and fails with ErrInsufficientCapacity when
	// it does not fit; every applied configuration is confined to the
	// slice's reserved envelope, so the fleet never overbooks. Nil
	// means unlimited infrastructure (the pre-fleet behavior).
	Ledger *slicing.CapacityLedger
	// Headroom scales the reservation envelope; zero or negative
	// defaults to DefaultHeadroom.
	Headroom float64

	// calMu serializes first-admission calibration (see
	// ensureCalibrated). Never held together with mu.
	calMu sync.Mutex

	mu     sync.Mutex
	seed   int64 // base seed: canonical training seeds derive from it
	rng    *rand.Rand
	params slicing.SimParams // shared calibrated parameters
	calib  bool
	slices map[string]*SliceInstance
	// diags accumulates non-fatal store diagnostics (corrupt artifacts
	// that forced a fall back to fresh training); see StoreDiagnostics.
	diags []error

	// met is the optional observability bundle (nil = uninstrumented);
	// see Instrument. Written once before concurrent use, shared by
	// every slice's learner afterwards.
	met *coreMetrics

	// Timelines is the optional per-slice flight recorder (nil = off):
	// every Step appends one delivered-QoE + applied-envelope sample to
	// the slice's timeline. Like met, it is written once before
	// concurrent use; recording is post-decision and consumes no
	// randomness, so recorded runs stay bit-identical. The QoE recorded
	// here is the raw model output — any placement locality toll is
	// applied by the fleet layer and visible through the timeline's
	// decision entries' host site.
	Timelines *obs.TimelineStore
}

// StoreDiagnostics returns the non-fatal artifact-store diagnostics the
// system has accumulated: every corrupt, version-skewed, or mismatched
// artifact that silently fell back to fresh training. Operators poll it
// to learn a store needs repair; an empty slice means every read was
// clean.
func (s *System) StoreDiagnostics() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]error(nil), s.diags...)
}

// noteDiag records a non-fatal store diagnostic (nil is ignored).
func (s *System) noteDiag(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	s.diags = append(s.diags, err)
	s.mu.Unlock()
}

// SliceInstance is one tenant's runtime state.
type SliceInstance struct {
	ID      string
	SLA     slicing.SLA
	Traffic int
	// Class is the tenant's service class; nil keeps the prototype
	// workload under the SLA's latency-availability QoE.
	Class *slicing.ServiceClass
	// Site is the cell/edge site hosting the slice's reservation
	// (empty = the ledger's default site, i.e. the single-pool model).
	Site slicing.SiteID

	Offline *OfflineResult
	Learner *OnlineLearner
	Domains *domains.Orchestrator

	// WarmStart marks an offline policy restored from the artifact
	// store instead of trained on admission; ResidualWarm marks an
	// online residual model warm-started from a stored checkpoint.
	// StoreDiag carries the non-fatal diagnostic of an admission-time
	// store read that fell back to fresh training.
	WarmStart    bool
	ResidualWarm bool
	StoreDiag    error

	// Cap is the slice's reserved configuration envelope: every applied
	// configuration is confined (componentwise) to it when the system
	// has a capacity ledger. Capped reports whether the envelope is
	// active.
	Cap    slicing.Config
	Capped bool

	Iter int
	// Traffics records the per-interval demand of the class's traffic
	// model.
	Traffics []int
	Usages   []float64
	QoEs     []float64

	trafficSeed int64
	// rng drives the slice's own stepping randomness (selection and
	// episode seeds), derived once at admission — slices step
	// independently, so concurrent Step calls on distinct slices stay
	// deterministic regardless of interleaving.
	rng *rand.Rand
	// storeKey is the slice's artifact fingerprint (set when the system
	// has a store); onlineKey derives from (storeKey, slice id) and is
	// where the per-step online checkpoints land — per-identity, so
	// concurrent same-class slices never clobber each other's residual
	// state.
	storeKey  string
	onlineKey string
	// lastDemand is the footprint of the configuration applied at the
	// most recent Step.
	lastDemand slicing.Demand
	// finalized is set by ReleaseSlice before it tombstones the online
	// checkpoint; a Step racing the release compensates by re-deleting
	// after its own checkpoint Put, so the tombstone always wins.
	finalized atomic.Bool
}

// Demand returns the slice's reserved per-domain capacity footprint
// (the envelope demand; zero when the system has no ledger).
func (inst *SliceInstance) Demand() slicing.Demand {
	if !inst.Capped {
		return slicing.Demand{}
	}
	return slicing.DemandOf(inst.Cap)
}

// NewSystem builds an orchestrator over a real network and a simulator.
func NewSystem(real slicing.Env, sim *simnet.Simulator, seed int64) *System {
	return &System{
		Real:    real,
		Sim:     sim,
		Space:   slicing.DefaultConfigSpace(),
		CalOpts: DefaultCalibratorOptions(),
		OffOpts: DefaultOfflineOptions(),
		OnOpts:  DefaultOnlineOptions(),
		seed:    seed,
		rng:     mathx.NewRNG(seed),
		slices:  map[string]*SliceInstance{},
	}
}

// collector is the optional interface a real network provides for
// gathering the online collection D_r (the surrogate implements it).
type collector interface {
	Collect(cfg slicing.Config, traffic, episodes int, seed int64) []float64
}

// nextSeed draws from the system RNG under the lock, so concurrent
// admissions never race on the shared stream.
func (s *System) nextSeed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Int63()
}

// calibrated reports whether stage 1 has run.
func (s *System) calibrated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calib
}

// ensureCalibrated runs stage 1 exactly once even under concurrent
// first admissions: the dedicated lock closes the check-then-calibrate
// race, so a second admission waits for (and reuses) the first's
// calibration instead of re-running the continual search against it.
func (s *System) ensureCalibrated() error {
	s.calMu.Lock()
	defer s.calMu.Unlock()
	if s.calibrated() {
		return nil
	}
	_, err := s.Calibrate()
	return err
}

// headroom returns the effective reservation envelope factor.
func (s *System) headroom() float64 {
	if s.Headroom > 0 {
		return s.Headroom
	}
	return DefaultHeadroom
}

// ReservationEnvelope returns the configuration envelope a slice with
// the given offline-optimal configuration reserves: the optimum scaled
// by the headroom factor, clamped to the space. Exported so the fleet
// control plane predicts exactly the demand admission will book.
func ReservationEnvelope(space slicing.ConfigSpace, best slicing.Config, headroom float64) slicing.Config {
	if headroom <= 0 {
		headroom = DefaultHeadroom
	}
	return space.Scale(best, headroom)
}

// Calibrate runs (or re-runs) stage 1 for the shared infrastructure.
// When the simulator was calibrated before, the search warm-starts
// around the last optimum, as §10 prescribes for infrastructure changes.
func (s *System) Calibrate() (*CalibrationResult, error) {
	col, ok := s.Real.(collector)
	if !ok {
		return nil, fmt.Errorf("core: real network does not expose an online collection")
	}
	start := time.Now()
	defer func() { s.met.recordCalibration(start) }()
	s.mu.Lock()
	defer s.mu.Unlock()

	dr := col.Collect(FullConfig(), 1, 3, s.rng.Int63())
	opts := s.CalOpts
	if s.calib {
		// Continual search based on the last optimum: recentre the
		// trust region and shrink the exploration phase.
		opts.Space.Original = s.params
		opts.Explore = opts.Explore / 2
	}
	cal := NewCalibrator(s.Sim, dr, opts)
	// The search is cached under the fingerprint of (options,
	// collection, seed): a restarted system with the same seed collects
	// the same measurements and warm-starts instead of re-searching.
	res, _, _, diag := RunCalibrationWithStore(cal, s.rng.Int63(), s.Store, true, true)
	if diag != nil {
		// Already under s.mu; append directly.
		s.diags = append(s.diags, diag)
	}
	s.params = res.BestParams
	s.calib = true
	return res, nil
}

// Augmented returns the shared calibrated simulator.
func (s *System) Augmented() *simnet.Simulator {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.calib {
		return s.Sim
	}
	return s.Sim.WithParams(s.params)
}

// AdmitSlice onboards a tenant under the prototype service behavior:
// offline training in the shared augmented simulator, then an online
// learner and a domain-manager set of its own.
func (s *System) AdmitSlice(id string, sla slicing.SLA, traffic int) (*SliceInstance, error) {
	return s.admit(id, nil, sla, traffic, "")
}

// AdmitSliceClass onboards a tenant of a specific service class: the
// class's application profile drives offline training and every episode,
// its QoE model judges them, and its traffic model shapes the
// per-interval demand. A zero traffic defaults to the class's nominal
// demand.
func (s *System) AdmitSliceClass(id string, class slicing.ServiceClass, traffic int) (*SliceInstance, error) {
	return s.AdmitSliceClassAt(id, class, traffic, "")
}

// AdmitSliceClassAt is AdmitSliceClass with an explicit host site: the
// tenant's reservation books against that site's local RAN and the
// shared tiers of the system's topology ledger. The empty site is the
// ledger's default site (the single-pool model).
func (s *System) AdmitSliceClassAt(id string, class slicing.ServiceClass, traffic int, site slicing.SiteID) (*SliceInstance, error) {
	if traffic == 0 {
		traffic = class.Traffic
	}
	sla := class.SLA
	return s.admit(id, &class, sla, traffic, site)
}

func (s *System) admit(id string, class *slicing.ServiceClass, sla slicing.SLA, traffic int, site slicing.SiteID) (*SliceInstance, error) {
	s.mu.Lock()
	if _, dup := s.slices[id]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: slice %q already admitted", id)
	}
	s.mu.Unlock()
	if traffic < 1 || traffic > MaxTraffic {
		return nil, fmt.Errorf("core: slice %q traffic %d outside [1, %d]", id, traffic, MaxTraffic)
	}

	out, err := s.offlineOutcome(class, sla, traffic)
	if err != nil {
		return nil, err
	}
	off := out.Result
	aug := s.Augmented()

	lo := s.OnOpts
	learner := NewOnlineLearner(off.Policy, aug, lo, mathx.NewRNG(s.nextSeed()))
	learner.Class = class
	learner.met = s.met
	s.met.recordAdmission(out.Hit)

	inst := &SliceInstance{
		ID: id, SLA: sla, Traffic: traffic, Class: class, Site: site,
		Offline:     off,
		Learner:     learner,
		Domains:     domains.NewOrchestrator(id),
		WarmStart:   out.Hit,
		StoreDiag:   out.Diag,
		trafficSeed: s.nextSeed(),
		rng:         mathx.NewRNG(s.nextSeed()),
		storeKey:    out.Key,
	}
	if inst.storeKey != "" {
		inst.onlineKey = onlineCheckpointKey(inst.storeKey, id, site)
	}
	// Capacity-checked admission: reserve the tenant's configuration
	// envelope (offline optimum scaled by the headroom factor) against
	// the host site's RAN and the shared tiers before the slice goes
	// live.
	if s.Ledger != nil {
		inst.Cap = ReservationEnvelope(s.Space, off.BestConfig, s.headroom())
		inst.Capped = true
		if !s.Ledger.ReserveAt(site, id, slicing.DemandOf(inst.Cap)) {
			if _, held := s.Ledger.Reserved(id); held {
				// A concurrent admission of the same id booked first.
				return nil, fmt.Errorf("core: slice %q already admitted", id)
			}
			where := ""
			if site != "" {
				where = fmt.Sprintf(" at site %q", site)
			}
			return nil, fmt.Errorf("core: slice %q needs %v beyond free capacity %v%s: %w",
				id, slicing.DemandOf(inst.Cap), s.Ledger.FreeAt(site), where, ErrInsufficientCapacity)
		}
	}
	// Warm-start the online residual from this identity's last
	// checkpoint, when one exists: the sim-to-real gap is
	// infrastructure-level, so a returning slice resumes from its
	// learned residual instead of the prior. Checkpoints are keyed per
	// (artifact fingerprint, slice id) — concurrent same-class tenants
	// keep disjoint residual histories, and ReleaseSlice tombstones the
	// entry so a finalized identity re-admits deterministically cold.
	if s.Store != nil {
		var snap OnlineSnapshot
		found, err := s.Store.Get(store.KindOnline, inst.onlineKey, &snap)
		s.noteDiag(err)
		if found && err == nil {
			if rerr := learner.Restore(&snap); rerr != nil {
				s.noteDiag(rerr)
			} else {
				inst.ResidualWarm = true
			}
		}
	}
	s.mu.Lock()
	if _, dup := s.slices[id]; dup {
		// A concurrent admission of the same id won the insert while
		// this one trained; undo the reservation and report the dup.
		s.mu.Unlock()
		if s.Ledger != nil {
			s.Ledger.Release(id)
		}
		return nil, fmt.Errorf("core: slice %q already admitted", id)
	}
	s.slices[id] = inst
	s.mu.Unlock()
	return inst, nil
}

// offlineOutcome runs (or restores) the shared-calibration + offline
// training path of an admission: calibrate stage 1 if needed, then
// load-or-train the class's stage-2 policy. The training seed is a pure
// function of (system seed, artifact fingerprint), so every admission
// of the same service class under the same budgets maps to the same
// artifact: the store hit on the second admission is exactly the policy
// the first one trained.
func (s *System) offlineOutcome(class *slicing.ServiceClass, sla slicing.SLA, traffic int) (OfflineOutcome, error) {
	if err := s.ensureCalibrated(); err != nil {
		return OfflineOutcome{}, err
	}
	aug := s.Augmented()
	opts := s.OffOpts
	opts.SLA = sla
	opts.Traffic = traffic
	opts.Class = class
	start := time.Now()
	out := RunOfflineWithStore(aug, opts, OfflineSeed(aug, s.seed, opts), s.Store, true, true)
	s.met.recordOffline(start)
	s.noteDiag(out.Diag)
	return out, nil
}

// EstimateAdmission previews a class admission without admitting: it
// returns the offline artifact (trained once, then shared with the
// eventual admission through the store) and the envelope demand that
// admission would reserve. The fleet control plane consults it to make
// admission decisions before committing a tenant.
func (s *System) EstimateAdmission(class slicing.ServiceClass, traffic int) (*OfflineResult, slicing.Demand, error) {
	if traffic == 0 {
		traffic = class.Traffic
	}
	if traffic < 1 || traffic > MaxTraffic {
		return nil, slicing.Demand{}, fmt.Errorf("core: class %q traffic %d outside [1, %d]", class.Name, traffic, MaxTraffic)
	}
	out, err := s.offlineOutcome(&class, class.SLA, traffic)
	if err != nil {
		return nil, slicing.Demand{}, err
	}
	env := ReservationEnvelope(s.Space, out.Result.BestConfig, s.headroom())
	return out.Result, slicing.DemandOf(env), nil
}

// onlineCheckpointKey derives the per-identity online checkpoint key
// from the slice's artifact fingerprint, id, and host site (hashed, so
// arbitrary ids stay filesystem-safe). The site is part of the
// identity: a slice re-admitted at a different site is a different
// placement, so it must not resume the residual another placement
// learned. The empty site is omitted from the canonical form, keeping
// pre-topology checkpoint keys valid.
func onlineCheckpointKey(artifactKey, id string, site slicing.SiteID) string {
	return store.Fingerprint(struct {
		Artifact string         `json:"artifact"`
		Slice    string         `json:"slice"`
		Site     slicing.SiteID `json:"site,omitempty"`
	}{artifactKey, id, site})
}

// ResizeSlice re-optimizes a live tenant's reservation for a new
// nominal traffic at its current host site: stage 2 re-runs (or
// restores) the class's offline policy under the new demand, the
// reservation envelope is recomputed from the re-optimized optimum, and
// the ledger reservation is resized in place. Shrinks always succeed;
// growth fails with ErrInsufficientCapacity when the extra demand does
// not fit, leaving the tenant untouched. The slice keeps running
// throughout — this is the serve path's first-class "modify" operation,
// not a delete-and-readmit.
//
// Like Step, ResizeSlice must not race a concurrent Step of the same
// slice; distinct slices are independent.
func (s *System) ResizeSlice(id string, traffic int) (slicing.Demand, error) {
	inst, ok := s.Slice(id)
	if !ok {
		return slicing.Demand{}, fmt.Errorf("core: slice %q not admitted", id)
	}
	return s.ResizeSliceAt(id, traffic, inst.Site)
}

// ResizeSliceAt is ResizeSlice with an explicit host site: when the
// site differs from the tenant's current one, the reservation migrates
// — released at the old site and booked at the new one atomically with
// respect to the ledger, rolling back to the old reservation when the
// new site cannot host the resized envelope. The online checkpoint
// identity moves with the placement (checkpoints are keyed per
// (artifact, id, site)).
func (s *System) ResizeSliceAt(id string, traffic int, site slicing.SiteID) (slicing.Demand, error) {
	inst, ok := s.Slice(id)
	if !ok {
		return slicing.Demand{}, fmt.Errorf("core: slice %q not admitted", id)
	}
	if inst.Class == nil {
		return slicing.Demand{}, fmt.Errorf("core: slice %q has no service class to re-optimize", id)
	}
	if traffic == 0 {
		traffic = inst.Class.Traffic
	}
	if traffic < 1 || traffic > MaxTraffic {
		return slicing.Demand{}, fmt.Errorf("core: slice %q traffic %d outside [1, %d]", id, traffic, MaxTraffic)
	}
	out, err := s.offlineOutcome(inst.Class, inst.SLA, traffic)
	if err != nil {
		return slicing.Demand{}, err
	}
	off := out.Result
	s.noteDiag(out.Diag)
	env := ReservationEnvelope(s.Space, off.BestConfig, s.headroom())
	d := slicing.DemandOf(env)
	if s.Ledger != nil {
		if site == inst.Site {
			if !s.Ledger.Update(id, d) {
				return slicing.Demand{}, fmt.Errorf("core: slice %q resize needs %v beyond free capacity %v: %w",
					id, d, s.Ledger.FreeAt(site), ErrInsufficientCapacity)
			}
		} else {
			old := s.Ledger.Release(id)
			if !s.Ledger.ReserveAt(site, id, d) {
				// Roll back: the old reservation was just freed, so
				// re-booking it at the old site always fits.
				s.Ledger.ReserveAt(inst.Site, id, old)
				return slicing.Demand{}, fmt.Errorf("core: slice %q resize needs %v beyond free capacity %v at site %q: %w",
					id, d, s.Ledger.FreeAt(site), site, ErrInsufficientCapacity)
			}
		}
		inst.Cap = env
		inst.Capped = true
	}
	// Rebind the runtime to the re-optimized artifact. The online GP
	// residual survives — it models the infrastructure-level sim-to-real
	// gap, which a demand change does not invalidate.
	inst.Offline = off
	inst.Learner.Policy = off.Policy
	inst.Learner.InvalidateSimCache()
	inst.Traffic = traffic
	inst.Learner.SetTraffic(traffic)
	inst.Site = site
	inst.WarmStart = out.Hit
	if out.Key != "" {
		inst.storeKey = out.Key
		inst.onlineKey = onlineCheckpointKey(out.Key, id, site)
	}
	return d, nil
}

// CheckpointSlice flushes a tenant's online residual state to the
// artifact store immediately, outside the per-Step cadence — the
// graceful-drain hook: a daemon shutting down checkpoints every live
// slice so a restart resumes each learned residual. A finalized
// (released) slice and a storeless system are no-ops.
func (s *System) CheckpointSlice(id string) error {
	inst, ok := s.Slice(id)
	if !ok {
		return fmt.Errorf("core: slice %q not admitted", id)
	}
	if s.Store == nil || inst.onlineKey == "" || inst.finalized.Load() {
		return nil
	}
	snap, err := inst.Learner.Snapshot()
	if err != nil {
		return fmt.Errorf("core: slice %q snapshot: %w", id, err)
	}
	if err := s.Store.Put(store.KindOnline, inst.onlineKey, snap); err != nil {
		return fmt.Errorf("core: slice %q checkpoint: %w", id, err)
	}
	// Same tombstone compensation as Step: a release racing this write
	// must win in every interleaving.
	if inst.finalized.Load() {
		_ = s.Store.Delete(store.KindOnline, inst.onlineKey)
	}
	return nil
}

// RemoveSlice tears a tenant down, freeing its capacity reservation.
// The slice's online checkpoint stays live in the store — this is the
// suspend path: a later admission under the same identity resumes the
// learned residual. Use ReleaseSlice to decommission for good.
func (s *System) RemoveSlice(id string) error {
	_, err := s.detach(id)
	return err
}

// ReleaseSlice decommissions a tenant: it tears the slice down, frees
// its capacity reservation, and finalizes its online checkpoint by
// tombstoning the store entry. Re-admission of the same id is therefore
// deterministic — it starts from the class's offline artifact with a
// cold residual, exactly like a first admission, instead of resuming
// whatever the departed tenant last checkpointed.
func (s *System) ReleaseSlice(id string) error {
	inst, err := s.detach(id)
	if err != nil {
		return err
	}
	// Order matters: the flag must be visible before the tombstone so
	// that any Step still in flight either sees it (and skips or
	// compensates its checkpoint write) or wrote before the Delete.
	inst.finalized.Store(true)
	if s.Store != nil && inst.onlineKey != "" {
		s.noteDiag(s.Store.Delete(store.KindOnline, inst.onlineKey))
	}
	return nil
}

// detach removes a slice from the system and releases its reservation.
func (s *System) detach(id string) (*SliceInstance, error) {
	s.mu.Lock()
	inst, ok := s.slices[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: slice %q not admitted", id)
	}
	delete(s.slices, id)
	s.mu.Unlock()
	if s.Ledger != nil {
		s.Ledger.Release(id)
	}
	return inst, nil
}

// SliceDemand returns a tenant's per-domain capacity footprint: the
// reserved envelope demand and the demand of the configuration applied
// at the last Step.
func (s *System) SliceDemand(id string) (reserved, applied slicing.Demand, ok bool) {
	inst, ok := s.Slice(id)
	if !ok {
		return slicing.Demand{}, slicing.Demand{}, false
	}
	if s.Ledger != nil {
		if r, held := s.Ledger.Reserved(id); held {
			reserved = r
		}
	}
	return reserved, inst.applied(), true
}

// applied returns the demand of the last applied configuration.
func (inst *SliceInstance) applied() slicing.Demand {
	if len(inst.Usages) == 0 {
		return slicing.Demand{}
	}
	return inst.lastDemand
}

// PreviewDownscale asks a slice's online learner for the cheapest
// configuration whose QoE posterior still meets the SLA target and
// returns the tightened envelope that configuration would reserve plus
// the per-domain demand tightening would free — without applying
// anything. Arbitration callers preview a set of elastic slices first
// and commit only when the combined freed capacity actually admits the
// newcomer, so no slice is degraded for a rejection that happens
// anyway.
func (s *System) PreviewDownscale(id string, pool int) (next slicing.Config, freed slicing.Demand, ok bool, err error) {
	inst, found := s.Slice(id)
	if !found {
		return slicing.Config{}, slicing.Demand{}, false, fmt.Errorf("core: slice %q not admitted", id)
	}
	if s.Ledger == nil || !inst.Capped {
		return slicing.Config{}, slicing.Demand{}, false, nil
	}
	cfg, feasible := inst.Learner.CheapestFeasible(pool, inst.rng)
	if !feasible {
		return slicing.Config{}, slicing.Demand{}, false, nil
	}
	// Confine the tightened envelope's demand dimensions inside the
	// current one so the reservation shrinks monotonically in every
	// capacity domain (the demand-free MCS offsets stay unconstrained).
	next = slicing.ConfineDemand(s.Space.Scale(cfg, DownscaleHeadroom), inst.Cap)
	old, held := s.Ledger.Reserved(id)
	if !held {
		return slicing.Config{}, slicing.Demand{}, false, nil
	}
	freed = old.Sub(slicing.DemandOf(next))
	if freed.IsZero() {
		return slicing.Config{}, slicing.Demand{}, false, nil
	}
	return next, freed, true, nil
}

// CommitDownscale applies a previewed envelope: the slice's reservation
// shrinks to the new envelope's demand and the difference returns to
// the ledger. The slice keeps running throughout (nothing is evicted,
// nothing restarts).
func (s *System) CommitDownscale(id string, next slicing.Config) (slicing.Demand, bool, error) {
	inst, ok := s.Slice(id)
	if !ok {
		return slicing.Demand{}, false, fmt.Errorf("core: slice %q not admitted", id)
	}
	if s.Ledger == nil || !inst.Capped {
		return slicing.Demand{}, false, nil
	}
	old, held := s.Ledger.Reserved(id)
	if !held {
		return slicing.Demand{}, false, nil
	}
	nd := slicing.DemandOf(next)
	freed := old.Sub(nd)
	if freed.IsZero() || !s.Ledger.Update(id, nd) {
		return slicing.Demand{}, false, nil
	}
	inst.Cap = next
	return freed, true, nil
}

// DownscaleSlice is the one-shot preview-and-commit form of the
// preemption-free arbitration primitive. It returns the freed
// per-domain demand and whether any capacity was recovered.
func (s *System) DownscaleSlice(id string, pool int) (slicing.Demand, bool, error) {
	next, _, ok, err := s.PreviewDownscale(id, pool)
	if err != nil || !ok {
		return slicing.Demand{}, false, err
	}
	return s.CommitDownscale(id, next)
}

// Slice returns a tenant's instance.
func (s *System) Slice(id string) (*SliceInstance, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.slices[id]
	return inst, ok
}

// Slices returns the admitted slice ids.
func (s *System) Slices() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.slices))
	for id := range s.slices {
		out = append(out, id)
	}
	return out
}

// Step advances one slice by one configuration interval: select, apply
// through the domain managers, run the interval on the real network,
// observe. All per-step randomness comes from the slice's own RNG, so
// stepping distinct slices concurrently is safe and deterministic
// regardless of interleaving; two concurrent Steps of the same slice
// are not.
func (s *System) Step(id string) error {
	inst, ok := s.Slice(id)
	if !ok {
		return fmt.Errorf("core: slice %q not admitted", id)
	}
	start := time.Now()
	defer func() { s.met.recordStep(start) }()
	traffic := inst.Traffic
	if inst.Class != nil {
		traffic = min(inst.Class.TrafficAt(inst.Iter, inst.Traffic, inst.trafficSeed), MaxTraffic)
		inst.Learner.SetTraffic(traffic)
	}
	cfg := s.Space.Clamp(inst.Learner.Next(inst.Iter, inst.rng))
	if inst.Capped {
		// Confine the applied configuration to the reserved envelope:
		// the learner may propose anything, the infrastructure grants
		// at most the reservation. Only the demand-bearing dimensions
		// are clamped — the MCS offsets consume no capacity, and the
		// online learner needs them free to close the sim-to-real gap.
		cfg = slicing.ConfineDemand(cfg, inst.Cap)
	}
	if _, err := inst.Domains.Apply(cfg); err != nil {
		return fmt.Errorf("core: slice %q domain apply: %w", id, err)
	}
	tr := slicing.EpisodeFor(s.Real, inst.Class, cfg, traffic, inst.rng.Int63())
	usage := s.Space.Usage(cfg)
	qoe := slicing.EvalFor(inst.Class, inst.SLA, tr)
	inst.Learner.Observe(inst.Iter, cfg, usage, qoe)
	inst.Iter++
	inst.Traffics = append(inst.Traffics, traffic)
	inst.Usages = append(inst.Usages, usage)
	inst.QoEs = append(inst.QoEs, qoe)
	inst.lastDemand = slicing.DemandOf(cfg)
	if s.Timelines != nil {
		s.Timelines.Append(id, obs.TimelineEntry{
			Epoch:  inst.Iter - 1,
			Kind:   obs.KindSample,
			Event:  "step",
			Site:   string(inst.Site),
			QoE:    qoe,
			Demand: []float64{inst.lastDemand.RanPRB, inst.lastDemand.TnMbps, inst.lastDemand.CnCPU},
		})
	}
	// Checkpoint the online residual after every epoch so a process
	// restart (or a later admission of the same identity) resumes from
	// the latest learned sim-to-real gap. Checkpoint failures are
	// non-fatal: the in-memory learner is always authoritative.
	if s.Store != nil && inst.onlineKey != "" && !inst.finalized.Load() {
		if snap, err := inst.Learner.Snapshot(); err == nil {
			_ = s.Store.Put(store.KindOnline, inst.onlineKey, snap)
		}
		// A ReleaseSlice racing this step sets finalized before its
		// tombstone; if it fired between our check and our Put, the Put
		// may have resurrected the checkpoint — re-delete so the
		// tombstone wins in every interleaving.
		if inst.finalized.Load() {
			_ = s.Store.Delete(store.KindOnline, inst.onlineKey)
		}
	}
	return nil
}

// StepAll advances every admitted slice one interval, sequentially.
func (s *System) StepAll() error {
	for _, id := range s.Slices() {
		if err := s.Step(id); err != nil {
			return err
		}
	}
	return nil
}

// StepMany advances the given slices one interval each, fanned out over
// a bounded worker pool (workers <= 0 selects GOMAXPROCS). Per-slice
// RNGs make every trajectory independent of scheduling, so results are
// bit-identical at any worker count. All steps run to completion; the
// errors of every failed slice are returned joined (test membership
// with errors.Is).
func (s *System) StepMany(ids []string, workers int) error {
	if len(ids) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	errs := make([]error, len(ids))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = s.Step(id)
		}(i, id)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// StepShard advances the given slices one interval each, sequentially
// in the caller's goroutine — the fan-out unit of a site-sharded
// control plane, where concurrency comes from shards owning disjoint
// slice sets rather than from a per-slice worker pool. Like StepMany,
// every step runs to completion and the failures are returned joined,
// in slice order.
func (s *System) StepShard(ids []string) error {
	var errs []error
	for _, id := range ids {
		if err := s.Step(id); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// StepGroups advances disjoint groups of slices concurrently, one
// goroutine per group, each stepping its group sequentially (the
// per-shard StepMany). Groups must not share ids. Per-slice RNGs make
// every trajectory independent of scheduling, so results are
// bit-identical at any grouping. Failures are joined in group order.
func (s *System) StepGroups(groups [][]string) error {
	switch len(groups) {
	case 0:
		return nil
	case 1:
		return s.StepShard(groups[0])
	}
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for i, g := range groups {
		wg.Add(1)
		go func(i int, g []string) {
			defer wg.Done()
			errs[i] = s.StepShard(g)
		}(i, g)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// InfrastructureChanged handles the §10 adaptability procedure: re-run
// stage 1 from the last optimum against fresh measurements, then
// fine-tune every slice's offline policy in the updated simulator. The
// online GP models survive untouched — they learn only the residual, so
// they keep adapting continuously.
func (s *System) InfrastructureChanged(fineTuneIters int) error {
	if _, err := s.Calibrate(); err != nil {
		return err
	}
	aug := s.Augmented()
	for _, id := range s.Slices() {
		inst, _ := s.Slice(id)
		opts := s.OffOpts
		opts.SLA = inst.SLA
		opts.Traffic = inst.Traffic
		opts.Class = inst.Class
		if fineTuneIters > 0 {
			opts.Iters = fineTuneIters
			opts.Explore = fineTuneIters / 5
		}
		off := NewOfflineTrainer(aug, opts).Run(mathx.NewRNG(s.nextSeed()))
		inst.Offline = off
		// The learner keeps its online GP but points at the refreshed
		// offline artifacts and simulator.
		inst.Learner.Policy = off.Policy
		inst.Learner.Sim = aug
		inst.Learner.InvalidateSimCache()
	}
	return nil
}
