package core

import (
	"math"
	"testing"

	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/realnet"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// quickOrchOpts keeps orchestrated runs test-sized: tiny pools and
// budgets, cold-start online learners unless a spec requests training.
func quickOrchOpts(intervals int) OrchestratorOptions {
	opts := DefaultOrchestratorOptions()
	opts.Intervals = intervals
	opts.Seed = 7
	opts.Online.Pool = 64
	opts.Online.N = 4
	opts.Offline = quickOffOpts()
	opts.Offline.Iters, opts.Offline.Explore = 12, 4
	return opts
}

func quickSpecs(n int) []SliceSpec {
	thresholds := []float64{300, 400, 500}
	specs := make([]SliceSpec, n)
	for i := range specs {
		specs[i] = SliceSpec{
			ID:      string(rune('a' + i)),
			SLA:     slicing.SLA{ThresholdMs: thresholds[i%len(thresholds)], Availability: 0.9},
			Traffic: 1 + i%MaxTraffic,
		}
	}
	return specs
}

// TestOrchestratorDeterministicAcrossWorkers: per-slice results must be
// a pure function of (seed, slice index) — identical whether 8 slices
// run one at a time or all at once.
func TestOrchestratorDeterministicAcrossWorkers(t *testing.T) {
	real := realnet.New()
	sim := simnet.NewDefault()
	specs := quickSpecs(8)

	runAt := func(workers int) *OrchestratorResult {
		opts := quickOrchOpts(4)
		opts.Workers = workers
		return NewOrchestrator(real, sim, specs, opts).Run()
	}
	seq := runAt(1)
	par := runAt(8)

	if len(seq.Slices) != 8 || len(par.Slices) != 8 {
		t.Fatalf("slice counts %d, %d", len(seq.Slices), len(par.Slices))
	}
	for i := range seq.Slices {
		a, b := seq.Slices[i], par.Slices[i]
		if a.Err != nil || b.Err != nil {
			t.Fatalf("slice %d errs: %v, %v", i, a.Err, b.Err)
		}
		if len(a.Usages) != len(b.Usages) {
			t.Fatalf("slice %d lengths %d vs %d", i, len(a.Usages), len(b.Usages))
		}
		for j := range a.Usages {
			if a.Usages[j] != b.Usages[j] || a.QoEs[j] != b.QoEs[j] {
				t.Fatalf("slice %d interval %d: (%v,%v) vs (%v,%v)",
					i, j, a.Usages[j], a.QoEs[j], b.Usages[j], b.QoEs[j])
			}
			if a.Configs[j] != b.Configs[j] {
				t.Fatalf("slice %d interval %d config mismatch", i, j)
			}
		}
	}
	// The epoch aggregate is order-independent too.
	for e := range seq.Epochs {
		if seq.Epochs[e].Slices != par.Epochs[e].Slices ||
			math.Abs(seq.Epochs[e].MeanUsage-par.Epochs[e].MeanUsage) > 1e-12 ||
			math.Abs(seq.Epochs[e].MeanQoE-par.Epochs[e].MeanQoE) > 1e-12 ||
			seq.Epochs[e].Violations != par.Epochs[e].Violations {
			t.Fatalf("epoch %d aggregate mismatch: %+v vs %+v", e, seq.Epochs[e], par.Epochs[e])
		}
	}
}

// TestOrchestratorMatchesSequentialLoop: one orchestrated slice must
// reproduce the hand-rolled sequential loop exactly under the same
// derived seeds.
func TestOrchestratorMatchesSequentialLoop(t *testing.T) {
	real := realnet.New()
	sim := simnet.NewDefault()
	specs := quickSpecs(2)
	opts := quickOrchOpts(4)
	res := NewOrchestrator(real, sim, specs, opts).Run()

	for i, spec := range specs {
		seeds := splitSliceSeeds(opts.Seed, i)
		learner := NewOnlineLearner(nil, sim, opts.Online, seeds[1])
		runRNG := seeds[2]
		space := slicing.DefaultConfigSpace()
		for it := 0; it < opts.Intervals; it++ {
			cfg := learner.Next(it, runRNG)
			tr := real.Episode(cfg, spec.Traffic, runRNG.Int63())
			usage := space.Usage(cfg)
			qoe := tr.QoE(spec.SLA)
			learner.Observe(it, cfg, usage, qoe)
			if got := res.Slices[i]; got.Usages[it] != usage || got.QoEs[it] != qoe {
				t.Fatalf("slice %d interval %d: orchestrated (%v,%v) vs sequential (%v,%v)",
					i, it, got.Usages[it], got.QoEs[it], usage, qoe)
			}
		}
	}
}

// TestOrchestratorTrainsOnAdmission: Train specs get a per-tenant
// offline policy and the learner starts from it.
func TestOrchestratorTrainsOnAdmission(t *testing.T) {
	real := realnet.New()
	sim := simnet.NewDefault()
	specs := quickSpecs(2)
	for i := range specs {
		specs[i].Train = true
	}
	opts := quickOrchOpts(3)
	res := NewOrchestrator(real, sim, specs, opts).Run()
	for i, sr := range res.Slices {
		if sr.Err != nil {
			t.Fatalf("slice %d: %v", i, sr.Err)
		}
		if sr.Offline == nil || sr.Offline.Policy == nil {
			t.Fatalf("slice %d missing offline artifact", i)
		}
		if sr.Learner.Policy == nil {
			t.Fatalf("slice %d learner has no policy", i)
		}
		if got := sr.Learner.Policy.SLA; got != specs[i].SLA {
			t.Fatalf("slice %d policy SLA %+v want %+v", i, got, specs[i].SLA)
		}
	}
}

// TestOrchestratorSharedPolicy: several slices can share one pre-trained
// policy; the orchestrator rebinds SLA/traffic per spec without mutating
// the caller's artifact.
func TestOrchestratorSharedPolicy(t *testing.T) {
	real := realnet.New()
	sim := simnet.NewDefault()
	off := NewOfflineTrainer(sim, quickOffOpts()).Run(mathx.NewRNG(31))
	orig := *off.Policy

	specs := quickSpecs(4)
	for i := range specs {
		specs[i].Policy = off.Policy
	}
	opts := quickOrchOpts(3)
	opts.Workers = 4
	res := NewOrchestrator(real, sim, specs, opts).Run()
	for i, sr := range res.Slices {
		if sr.Err != nil {
			t.Fatalf("slice %d: %v", i, sr.Err)
		}
		if got := sr.Learner.Policy.Traffic; got != specs[i].Traffic {
			t.Fatalf("slice %d learner traffic %d want %d", i, got, specs[i].Traffic)
		}
	}
	if off.Policy.SLA != orig.SLA || off.Policy.Traffic != orig.Traffic {
		t.Fatalf("caller's policy mutated: %+v", off.Policy)
	}
}

// TestOrchestratorMetricsAndRegret: epoch slots cover every slice, and
// oracle-anchored specs accumulate regret.
func TestOrchestratorMetricsAndRegret(t *testing.T) {
	real := realnet.New()
	sim := simnet.NewDefault()
	specs := quickSpecs(3)
	for i := range specs {
		specs[i].OptUsage = 0.2
		specs[i].OptQoE = 0.9
	}
	opts := quickOrchOpts(4)
	res := NewOrchestrator(real, sim, specs, opts).Run()

	if len(res.Epochs) != opts.Intervals {
		t.Fatalf("%d epochs want %d", len(res.Epochs), opts.Intervals)
	}
	for e, ep := range res.Epochs {
		if ep.Epoch != e || ep.Slices != len(specs) {
			t.Fatalf("epoch %d: %+v", e, ep)
		}
		if ep.MeanUsage <= 0 || ep.MeanUsage > 1 {
			t.Fatalf("epoch %d mean usage %v", e, ep.MeanUsage)
		}
		if ep.MeanQoE < 0 || ep.MeanQoE > 1 {
			t.Fatalf("epoch %d mean QoE %v", e, ep.MeanQoE)
		}
	}
	for i, sr := range res.Slices {
		if sr.Regret.N != opts.Intervals {
			t.Fatalf("slice %d regret over %d intervals", i, sr.Regret.N)
		}
	}
}

// TestOrchestratorRejectsBadTraffic: invalid specs fail per-slice, not
// globally.
func TestOrchestratorRejectsBadTraffic(t *testing.T) {
	real := realnet.New()
	sim := simnet.NewDefault()
	specs := quickSpecs(2)
	specs[1].Traffic = 0
	res := NewOrchestrator(real, sim, specs, quickOrchOpts(2)).Run()
	if res.Slices[0].Err != nil {
		t.Fatalf("healthy slice errored: %v", res.Slices[0].Err)
	}
	if res.Slices[1].Err == nil {
		t.Fatal("invalid traffic accepted")
	}
}

// TestEnvPool: shared pools never block; replica pools serialize a
// fixed set.
func TestEnvPool(t *testing.T) {
	sim := simnet.NewDefault()
	shared := SharedEnvPool(sim)
	if shared.Get() != slicing.Env(sim) {
		t.Fatal("shared pool returned a different env")
	}
	shared.Put(sim) // no-op, must not block or grow

	a, b := simnet.NewDefault(), simnet.NewDefault()
	pool := NewEnvPool(a, b)
	e1, e2 := pool.Get(), pool.Get()
	if e1 == nil || e2 == nil || e1 == e2 {
		t.Fatal("replica pool handed out duplicates")
	}
	pool.Put(e1)
	if e3 := pool.Get(); e3 != e1 {
		t.Fatal("replica pool lost a returned env")
	}
}

// TestOrchestratorRejectsSharedContinueBNNPolicy: a policy shared
// between specs is fine for the read-only residual designs but must be
// rejected when ContinueBNN would train it in place concurrently.
func TestOrchestratorRejectsSharedContinueBNNPolicy(t *testing.T) {
	real := realnet.New()
	sim := simnet.NewDefault()
	off := NewOfflineTrainer(sim, quickOffOpts()).Run(mathx.NewRNG(41))

	specs := quickSpecs(3)
	specs[0].Policy = off.Policy
	specs[1].Policy = off.Policy
	opts := quickOrchOpts(2)
	opts.Online.Model = ContinueBNN
	res := NewOrchestrator(real, sim, specs, opts).Run()
	if res.Slices[0].Err == nil || res.Slices[1].Err == nil {
		t.Fatal("shared policy accepted under ContinueBNN")
	}
	if res.Slices[2].Err != nil {
		t.Fatalf("unshared slice errored: %v", res.Slices[2].Err)
	}
}

// TestNormalizeSpecRebindsClassSLA: a spec-level SLA override must reach
// the class's QoE model (the spec is authoritative), while zero specs
// default from the class.
func TestNormalizeSpecRebindsClassSLA(t *testing.T) {
	class := slicing.DefaultServiceClass()

	spec := normalizeSpec(SliceSpec{Class: &class})
	if spec.SLA != class.SLA || spec.Traffic != class.Traffic {
		t.Fatalf("defaults not taken from class: %+v", spec)
	}
	if spec.Class != &class {
		t.Fatal("class needlessly rebound for a defaulting spec")
	}

	over := slicing.SLA{ThresholdMs: 500, Availability: 0.8}
	spec = normalizeSpec(SliceSpec{Class: &class, SLA: over, Traffic: 2})
	if spec.Class == &class {
		t.Fatal("override did not rebind the class")
	}
	if q, ok := spec.Class.QoE.(slicing.AvailabilityQoE); !ok || q.ThresholdMs != 500 {
		t.Fatalf("QoE model not rebound to the override: %+v", spec.Class.QoE)
	}
	if class.QoE.(slicing.AvailabilityQoE).ThresholdMs != 300 {
		t.Fatal("caller's class mutated")
	}
}

// TestOrchestratorRejectsExcessTraffic: traffic above the prototype's
// emulation range fails per-slice with a range error.
func TestOrchestratorRejectsExcessTraffic(t *testing.T) {
	real := realnet.New()
	sim := simnet.NewDefault()
	specs := quickSpecs(2)
	specs[1].Traffic = MaxTraffic + 1
	res := NewOrchestrator(real, sim, specs, quickOrchOpts(2)).Run()
	if res.Slices[0].Err != nil {
		t.Fatalf("healthy slice errored: %v", res.Slices[0].Err)
	}
	if res.Slices[1].Err == nil {
		t.Fatal("excess traffic accepted")
	}
}
