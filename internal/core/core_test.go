package core

import (
	"math"
	"testing"

	"github.com/atlas-slicing/atlas/internal/bnn"
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/realnet"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

func quickCalOpts() CalibratorOptions {
	opts := DefaultCalibratorOptions()
	opts.Iters, opts.Explore, opts.Batch, opts.Pool = 25, 8, 2, 200
	opts.BNN.Hidden = []int{16, 16}
	opts.FitEpochs = 8
	return opts
}

func quickOffOpts() OfflineOptions {
	opts := DefaultOfflineOptions()
	opts.Iters, opts.Explore, opts.Batch, opts.Pool = 35, 10, 2, 200
	opts.BNN.Hidden = []int{16, 16}
	opts.FitEpochs = 8
	return opts
}

func TestEncodeInputShape(t *testing.T) {
	space := slicing.DefaultConfigSpace()
	x := EncodeInput(space, 2, slicing.DefaultSLA(), nil, FullConfig())
	if len(x) != PolicyInputDim {
		t.Fatalf("dim = %d want %d", len(x), PolicyInputDim)
	}
	if x[0] != 0.5 { // traffic 2 of 4
		t.Fatalf("traffic feature = %v", x[0])
	}
	if x[1] != 0.3 { // 300 ms / 1000
		t.Fatalf("threshold feature = %v", x[1])
	}
	if x[2] < 0 || x[2] >= 1 {
		t.Fatalf("class feature = %v outside [0, 1)", x[2])
	}
	for _, v := range x[3:] {
		if v < 0 || v > 1 {
			t.Fatalf("config features not normalized: %v", x)
		}
	}
	// A nil class encodes like the default latency-availability class,
	// and a distinct QoE model moves the fingerprint.
	def := slicing.DefaultServiceClass()
	if y := EncodeInput(space, 2, slicing.DefaultSLA(), &def, FullConfig()); y[2] != x[2] {
		t.Fatalf("default class fingerprint %v differs from nil %v", y[2], x[2])
	}
	urllc := def
	urllc.QoE = slicing.PercentileDeadlineQoE{Percentile: 0.95, DeadlineMs: 150}
	if y := EncodeInput(space, 2, slicing.DefaultSLA(), &urllc, FullConfig()); y[2] == x[2] {
		t.Fatal("distinct QoE models share a fingerprint")
	}
}

func TestDiscrepancyDeterministic(t *testing.T) {
	real := realnet.New()
	dr := real.Collect(FullConfig(), 1, 1, 1)
	cal := NewCalibrator(simnet.NewDefault(), dr, quickCalOpts())
	p := slicing.DefaultSimParams()
	if cal.Discrepancy(p) != cal.Discrepancy(p) {
		t.Fatal("discrepancy must be deterministic per parameter point")
	}
}

func TestWeightedObjectiveComposition(t *testing.T) {
	real := realnet.New()
	dr := real.Collect(FullConfig(), 1, 1, 2)
	opts := quickCalOpts()
	opts.Alpha = 3
	cal := NewCalibrator(simnet.NewDefault(), dr, opts)
	p := opts.Space.Sample(mathx.NewRNG(3))
	want := cal.Discrepancy(p) + 3*opts.Space.Distance(p)
	if got := cal.Weighted(p); math.Abs(got-want) > 1e-12 {
		t.Fatalf("weighted = %v want %v", got, want)
	}
}

func TestCalibratorReducesDiscrepancy(t *testing.T) {
	real := realnet.New()
	dr := real.Collect(FullConfig(), 1, 2, 4)
	sim := simnet.NewDefault()
	cal := NewCalibrator(sim, dr, quickCalOpts())
	orig := cal.Discrepancy(slicing.DefaultSimParams())
	res := cal.Run(mathx.NewRNG(5))
	if res.BestKL >= orig {
		t.Fatalf("calibration failed to improve: %v -> %v", orig, res.BestKL)
	}
	if !cal.Opts.Space.InTrustRegion(res.BestParams) {
		t.Fatal("best parameters escaped trust region")
	}
	if res.History == nil || len(res.History.Ys) == 0 {
		t.Fatal("empty history")
	}
}

func TestCalibratorGPVariantRuns(t *testing.T) {
	real := realnet.New()
	dr := real.Collect(FullConfig(), 1, 1, 6)
	opts := quickCalOpts()
	opts.UseGP = true
	opts.Iters = 15
	cal := NewCalibrator(simnet.NewDefault(), dr, opts)
	res := cal.Run(mathx.NewRNG(7))
	if res.BestWeighted <= 0 || math.IsInf(res.BestWeighted, 1) {
		t.Fatalf("bad GP result %v", res.BestWeighted)
	}
}

func TestOfflineTrainerFindsFeasibleConfig(t *testing.T) {
	trainer := NewOfflineTrainer(simnet.NewDefault(), quickOffOpts())
	res := trainer.Run(mathx.NewRNG(8))
	if res.BestQoE < trainer.Opts.SLA.Availability {
		t.Fatalf("best config infeasible: qoe %v", res.BestQoE)
	}
	if res.BestUsage <= 0 || res.BestUsage >= 1 {
		t.Fatalf("best usage %v", res.BestUsage)
	}
	if len(res.UsageCurve) != trainer.Opts.Iters || len(res.QoECurve) != trainer.Opts.Iters {
		t.Fatal("curve lengths wrong")
	}
	if res.Policy == nil || !res.Policy.Model.Fitted() {
		t.Fatal("policy model untrained")
	}
	if res.Policy.Lambda < 0 {
		t.Fatalf("negative multiplier %v", res.Policy.Lambda)
	}
}

func TestOfflineBeatsRandomOnUsage(t *testing.T) {
	// The trained search should find a feasible config cheaper than the
	// cheapest feasible one among the same number of pure-random draws.
	env := simnet.NewDefault()
	opts := quickOffOpts()
	opts.Iters = 50
	trainer := NewOfflineTrainer(env, opts)
	res := trainer.Run(mathx.NewRNG(9))

	rng := mathx.NewRNG(10)
	randomBest := math.Inf(1)
	for i := 0; i < opts.Iters*opts.Batch; i++ {
		cfg := opts.Space.Sample(rng)
		if trainer.MeasureQoE(cfg) >= opts.SLA.Availability {
			if u := opts.Space.Usage(cfg); u < randomBest {
				randomBest = u
			}
		}
	}
	if res.BestUsage > randomBest {
		t.Fatalf("BO usage %v worse than random search %v", res.BestUsage, randomBest)
	}
}

func TestOfflineGPVariant(t *testing.T) {
	opts := quickOffOpts()
	opts.UseGP = true
	opts.Iters = 20
	trainer := NewOfflineTrainer(simnet.NewDefault(), opts)
	res := trainer.Run(mathx.NewRNG(11))
	if res.BestConfig == (slicing.Config{}) {
		t.Fatal("GP variant produced nothing")
	}
}

func TestPolicySelectConfigRespectsLambda(t *testing.T) {
	// With a huge multiplier the policy must buy QoE (more resources)
	// compared to a zero multiplier.
	trainer := NewOfflineTrainer(simnet.NewDefault(), quickOffOpts())
	res := trainer.Run(mathx.NewRNG(12))
	pol := res.Policy

	pol.Lambda = 0
	cheap := pol.SelectConfig(400, mathx.NewRNG(13))
	pol.Lambda = 50
	rich := pol.SelectConfig(400, mathx.NewRNG(13))
	if pol.Space.Usage(rich) <= pol.Space.Usage(cheap) {
		t.Fatalf("lambda did not buy resources: rich %v cheap %v",
			pol.Space.Usage(rich), pol.Space.Usage(cheap))
	}
}

func TestPredictQoEBatchMatchesScale(t *testing.T) {
	trainer := NewOfflineTrainer(simnet.NewDefault(), quickOffOpts())
	res := trainer.Run(mathx.NewRNG(14))
	pol := res.Policy
	rng := mathx.NewRNG(15)
	inputs := [][]float64{
		pol.Encode(FullConfig()),
		pol.Encode(slicing.Config{BandwidthUL: 8, BandwidthDL: 4, BackhaulMbps: 5, CPURatio: 0.3}),
	}
	means, stds := pol.PredictQoEBatch(inputs, 16, rng)
	if len(means) != 2 || len(stds) != 2 {
		t.Fatal("batch size mismatch")
	}
	for i := range means {
		if stds[i] < 0 {
			t.Fatalf("negative std %v", stds[i])
		}
		if means[i] < -0.5 || means[i] > 1.5 {
			t.Fatalf("QoE mean %v far outside [0,1]", means[i])
		}
	}
}

func TestOnlineLearnerConverges(t *testing.T) {
	real := realnet.New()
	sim := simnet.NewDefault()
	dr := real.Collect(FullConfig(), 1, 2, 16)
	cal := NewCalibrator(sim, dr, quickCalOpts())
	cres := cal.Run(mathx.NewRNG(17))
	aug := sim.WithParams(cres.BestParams)

	off := NewOfflineTrainer(aug, quickOffOpts()).Run(mathx.NewRNG(18))

	lopts := DefaultOnlineOptions()
	lopts.Pool = 300
	lopts.N = 8
	learner := NewOnlineLearner(off.Policy, aug, lopts, mathx.NewRNG(19))

	space := slicing.DefaultConfigSpace()
	sla := slicing.DefaultSLA()
	rng := mathx.NewRNG(20)
	const iters = 25
	for it := 0; it < iters; it++ {
		cfg := learner.Next(it, rng)
		tr := real.Episode(cfg, 1, rng.Int63())
		learner.Observe(it, cfg, space.Usage(cfg), tr.QoE(sla))
	}
	if len(learner.QoEs) != iters {
		t.Fatalf("logged %d iterations", len(learner.QoEs))
	}
	var early, late float64
	for i := 0; i < 5; i++ {
		early += learner.QoEs[i]
		late += learner.QoEs[iters-5+i]
	}
	if late < early-0.5 {
		t.Fatalf("QoE collapsed: early %v late %v", early/5, late/5)
	}
	if learner.Lambda() < 0 {
		t.Fatal("negative multiplier")
	}
}

func TestOnlineLearnerVariantsRun(t *testing.T) {
	real := realnet.New()
	aug := simnet.NewDefault()
	off := NewOfflineTrainer(aug, quickOffOpts()).Run(mathx.NewRNG(21))
	space := slicing.DefaultConfigSpace()
	sla := slicing.DefaultSLA()

	for _, model := range []ResidualModel{ResidualGP, ResidualBNN, ContinueBNN} {
		opts := DefaultOnlineOptions()
		opts.Pool, opts.N = 200, 4
		opts.Model = model
		learner := NewOnlineLearner(off.Policy, aug, opts, mathx.NewRNG(22))
		rng := mathx.NewRNG(23)
		for it := 0; it < 4; it++ {
			cfg := learner.Next(it, rng)
			tr := real.Episode(cfg, 1, rng.Int63())
			learner.Observe(it, cfg, space.Usage(cfg), tr.QoE(sla))
		}
	}
}

func TestOnlineColdStartWithoutPolicy(t *testing.T) {
	real := realnet.New()
	opts := DefaultOnlineOptions()
	opts.Pool, opts.N = 200, 4
	learner := NewOnlineLearner(nil, simnet.NewDefault(), opts, mathx.NewRNG(24))
	space := slicing.DefaultConfigSpace()
	sla := slicing.DefaultSLA()
	rng := mathx.NewRNG(25)
	for it := 0; it < 4; it++ {
		cfg := learner.Next(it, rng)
		tr := real.Episode(cfg, 1, rng.Int63())
		learner.Observe(it, cfg, space.Usage(cfg), tr.QoE(sla))
	}
	if len(learner.QoEs) != 4 {
		t.Fatal("cold-start learner did not log")
	}
}

func TestOnlineNoAccelUpdatesLambdaFromObservations(t *testing.T) {
	aug := simnet.NewDefault()
	off := NewOfflineTrainer(aug, quickOffOpts()).Run(mathx.NewRNG(26))
	opts := DefaultOnlineOptions()
	opts.Pool, opts.OfflineAccel = 200, false
	learner := NewOnlineLearner(off.Policy, aug, opts, mathx.NewRNG(27))
	before := learner.Lambda()
	cfg := FullConfig()
	// A badly violating observation must raise the multiplier.
	learner.Observe(0, cfg, 0.5, 0.0)
	if learner.Lambda() <= before-1e-9 {
		t.Fatalf("lambda %v did not respond to violation (was %v)", learner.Lambda(), before)
	}
}

func TestSeedOfStability(t *testing.T) {
	v := mathx.Vector{1.5, 2.5}
	if seedOf(v) != seedOf(mathx.Vector{1.5, 2.5}) {
		t.Fatal("seedOf not deterministic")
	}
	if seedOf(v) == seedOf(mathx.Vector{1.5, 2.6}) {
		t.Fatal("seedOf ignores values")
	}
}

func TestBNNOptionsPlumbing(t *testing.T) {
	opts := quickCalOpts()
	if len(opts.BNN.Hidden) != 2 {
		t.Fatal("BNN options not applied")
	}
	m := bnn.New(slicing.ParamDim, opts.BNN, mathx.NewRNG(28))
	if m.InDim() != slicing.ParamDim {
		t.Fatal("BNN input dim mismatch")
	}
}
