package core

import (
	"math/rand"
	"runtime"
	"testing"

	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// The batched candidate scan (blocked GP posterior, shared-draw BNN
// accumulation, reused scratch) must be bit-identical to the sequential
// per-candidate evaluation it replaced — same RNG draw order, same
// float arithmetic, same selections — at any worker count.

// refPool is a reference scan result with its own backing arrays.
type refPool struct {
	cfgs                              []slicing.Config
	usage, qsMean, qsStd, gMean, gStd []float64
}

// referenceScan is the seed implementation of scanPoolN: per-candidate
// EncodeInput, one shared PredictQoEBatch over the pool, and a
// sequential per-candidate gpModel.Predict for the residual. It
// consumes rng and l.rng exactly as the production scan does.
func referenceScan(l *OnlineLearner, space slicing.ConfigSpace, pool int, rng *rand.Rand) *refPool {
	n := pool
	if n < 2 {
		n = 2
	}
	p := &refPool{
		cfgs:   make([]slicing.Config, n),
		usage:  make([]float64, n),
		qsMean: make([]float64, n),
		qsStd:  make([]float64, n),
		gMean:  make([]float64, n),
		gStd:   make([]float64, n),
	}
	inputs := make([][]float64, n)
	for i := 0; i < n; i++ {
		p.cfgs[i] = space.Sample(rng)
		p.usage[i] = space.Usage(p.cfgs[i])
		inputs[i] = EncodeInput(space, l.traffic(), l.sla(), l.class(), p.cfgs[i])
	}
	if l.Policy != nil && l.Policy.Model != nil && l.Policy.Model.Fitted() {
		means, stds := l.Policy.PredictQoEBatch(inputs, l.Opts.PredictSamples, l.rng)
		copy(p.qsMean, means)
		copy(p.qsStd, stds)
	}
	for i := 0; i < n; i++ {
		if l.gpModel == nil || !l.gpModel.Fitted() {
			p.gMean[i], p.gStd[i] = 0, 0.3
			continue
		}
		p.gMean[i], p.gStd[i] = l.gpModel.Predict(inputs[i])
	}
	return p
}

// trainedPolicy is one small offline policy shared across subtests; the
// scan only reads it.
func trainedPolicy(t *testing.T) *Policy {
	t.Helper()
	return NewOfflineTrainer(simnet.NewDefault(), quickOffOpts()).Run(mathx.NewRNG(14)).Policy
}

// gpLearner builds an online learner with a fitted residual GP: obs
// observations of a smooth usage-dependent QoE, no simulator (so the
// residual is the observation itself), offline policy optional.
func gpLearner(pol *Policy, obs int, seed int64) *OnlineLearner {
	opts := DefaultOnlineOptions()
	opts.Pool = 150
	l := NewOnlineLearner(pol, nil, opts, mathx.NewRNG(seed))
	space := slicing.DefaultConfigSpace()
	rng := mathx.NewRNG(seed + 1)
	for i := 0; i < obs; i++ {
		cfg := space.Sample(rng)
		l.Observe(i, cfg, space.Usage(cfg), 0.4+0.4*space.Usage(cfg))
	}
	return l
}

func comparePools(t *testing.T, what string, got *candidatePool, want *refPool, checkGStd bool) {
	t.Helper()
	if len(got.cfgs) != len(want.cfgs) {
		t.Fatalf("%s: pool size %d vs %d", what, len(got.cfgs), len(want.cfgs))
	}
	for i := range want.cfgs {
		if got.cfgs[i] != want.cfgs[i] {
			t.Fatalf("%s: cfg[%d] diverged: %v vs %v", what, i, got.cfgs[i], want.cfgs[i])
		}
		if got.usage[i] != want.usage[i] {
			t.Fatalf("%s: usage[%d] %v vs %v", what, i, got.usage[i], want.usage[i])
		}
		if got.qsMean[i] != want.qsMean[i] || got.qsStd[i] != want.qsStd[i] {
			t.Fatalf("%s: qs[%d] (%v, %v) vs (%v, %v)", what, i, got.qsMean[i], got.qsStd[i], want.qsMean[i], want.qsStd[i])
		}
		if got.gMean[i] != want.gMean[i] {
			t.Fatalf("%s: gMean[%d] %v vs %v", what, i, got.gMean[i], want.gMean[i])
		}
		if checkGStd && got.gStd[i] != want.gStd[i] {
			t.Fatalf("%s: gStd[%d] %v vs %v", what, i, got.gStd[i], want.gStd[i])
		}
	}
}

// TestScanPoolMatchesSequentialReference: the production scan equals
// the sequential reference bit for bit, with and without an offline
// policy in the loop.
func TestScanPoolMatchesSequentialReference(t *testing.T) {
	pol := trainedPolicy(t)
	space := slicing.DefaultConfigSpace()
	for _, tc := range []struct {
		name string
		pol  *Policy
	}{
		{"cold-policy", nil},
		{"trained-policy", pol},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := gpLearner(tc.pol, 30, 31)
			b := gpLearner(tc.pol, 30, 31)
			got := a.scanPoolN(space, 137, mathx.NewRNG(41), true)
			want := referenceScan(b, space, 137, mathx.NewRNG(41))
			comparePools(t, tc.name, got, want, true)
		})
	}
}

// TestCheapestFeasibleMatchesSequentialReference: the mean-only scan
// (variance solves skipped) still nominates exactly the configuration
// the sequential reference selects.
func TestCheapestFeasibleMatchesSequentialReference(t *testing.T) {
	space := slicing.DefaultConfigSpace()
	a := gpLearner(nil, 30, 57)
	b := gpLearner(nil, 30, 57)
	// The learner's SLA (DefaultSLA) demands a mean above availability;
	// the observed 0.4+0.4u residual makes high-usage candidates
	// feasible.
	cfgA, okA := a.CheapestFeasible(200, mathx.NewRNG(61))
	want := referenceScan(b, space, 200, mathx.NewRNG(61))
	sla := b.sla()
	best, bestU := -1, 2.0
	for i := range want.cfgs {
		q := mathx.Clip(want.qsMean[i]+want.gMean[i], 0, 1)
		if q >= sla.Availability && want.usage[i] < bestU {
			best, bestU = i, want.usage[i]
		}
	}
	if okA != (best >= 0) {
		t.Fatalf("feasibility verdict diverged: batched %v, reference %v", okA, best >= 0)
	}
	if okA && cfgA != want.cfgs[best] {
		t.Fatalf("selection diverged: batched %v, reference %v", cfgA, want.cfgs[best])
	}
}

// TestScanPoolWorkerCountInvariant: the scan result must not depend on
// GOMAXPROCS — chunk RNGs are derived before any goroutine runs and
// chunking is fixed. Checked for both the GP and the BNN residual
// models.
func TestScanPoolWorkerCountInvariant(t *testing.T) {
	space := slicing.DefaultConfigSpace()
	build := func(model ResidualModel) *OnlineLearner {
		opts := DefaultOnlineOptions()
		opts.Pool = 150
		opts.Model = model
		l := NewOnlineLearner(nil, nil, opts, mathx.NewRNG(71))
		rng := mathx.NewRNG(72)
		for i := 0; i < 6; i++ {
			cfg := space.Sample(rng)
			l.Observe(i, cfg, space.Usage(cfg), 0.4+0.4*space.Usage(cfg))
		}
		return l
	}
	for _, model := range []ResidualModel{ResidualGP, ResidualBNN} {
		a := build(model)
		wide := a.scanPoolN(space, 100, mathx.NewRNG(83), true)
		// Clone the scratch-backed result before the second scan reuses it.
		got := &refPool{
			cfgs:   append([]slicing.Config(nil), wide.cfgs...),
			usage:  append([]float64(nil), wide.usage...),
			qsMean: append([]float64(nil), wide.qsMean...),
			qsStd:  append([]float64(nil), wide.qsStd...),
			gMean:  append([]float64(nil), wide.gMean...),
			gStd:   append([]float64(nil), wide.gStd...),
		}

		prev := runtime.GOMAXPROCS(1)
		b := build(model)
		narrow := b.scanPoolN(space, 100, mathx.NewRNG(83), true)
		runtime.GOMAXPROCS(prev)

		comparePools(t, "worker-invariance", narrow, got, true)
	}
}
