package core

import (
	"fmt"
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/bnn"
	"github.com/atlas-slicing/atlas/internal/gp"
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/simnet/app"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/store"
)

// This file is the persistence and dedup layer of the pipeline: every
// learned artifact — the stage-1 calibration, the stage-2 policy, the
// stage-3 residual GP — gains a versioned snapshot form, a canonical
// fingerprint of everything that determined it, and a load-or-train
// path against the content-addressed artifact store. The paper's §10
// individualizes learning per slice; fingerprinting makes the sharing
// structure explicit instead: identical (class, SLA, traffic, budgets,
// seed) tuples are the same artifact, trained once per class rather
// than once per slice, and surviving process exit.

// ArtifactVersion tags every core-level artifact payload (on top of the
// store's envelope version). Restore rejects other versions with a
// diagnostic.
const ArtifactVersion = 1

// ---- fingerprints ---------------------------------------------------

// classFingerprint is the canonical value-identity of a service class:
// two *ServiceClass pointers with equal fingerprints train identical
// policies, so they share one artifact.
type classFingerprint struct {
	Name         string      `json:"name"`
	QoE          string      `json:"qoe"`
	TrafficModel string      `json:"traffic_model"`
	App          app.Profile `json:"app"`
	SLA          slicing.SLA `json:"sla"`
	Traffic      int         `json:"traffic"`
}

// classFP builds the canonical descriptor of a (possibly nil) class.
// The QoE and traffic models are concrete parameter structs, so their
// %T%+v rendering is a complete, deterministic value identity.
func classFP(c *slicing.ServiceClass) *classFingerprint {
	if c == nil {
		return nil
	}
	fp := &classFingerprint{
		Name:         c.Name,
		App:          c.App,
		SLA:          c.SLA,
		Traffic:      c.Traffic,
		QoE:          fmt.Sprintf("%T%+v", c.QoE, c.QoE),
		TrafficModel: fmt.Sprintf("%T%+v", c.TrafficModel, c.TrafficModel),
	}
	return fp
}

// EnvFingerprinter is implemented by environments whose identity keys
// stored artifacts (the bundled simulator hashes its structural profile
// and calibrated parameters). Policies trained in different
// environments must never share an artifact; environments that do not
// implement it contribute an empty identity, which keeps dedup sound
// within a run but makes cross-process sharing the caller's
// responsibility.
type EnvFingerprinter interface {
	EnvFingerprint() string
}

// envFP extracts an environment's artifact identity, "" when it has
// none.
func envFP(env slicing.Env) string {
	if f, ok := env.(EnvFingerprinter); ok {
		return f.EnvFingerprint()
	}
	return ""
}

// offlineFingerprint is the canonical identity of a stage-2 training
// run: environment, service class, scenario, configuration space,
// every budget, and the training seed. Equal fingerprints produce
// bit-identical policies.
type offlineFingerprint struct {
	Kind      string              `json:"kind"`
	Env       string              `json:"env"`
	Class     *classFingerprint   `json:"class,omitempty"`
	SLA       slicing.SLA         `json:"sla"`
	Traffic   int                 `json:"traffic"`
	Space     slicing.ConfigSpace `json:"space"`
	Iters     int                 `json:"iters"`
	Explore   int                 `json:"explore"`
	Pool      int                 `json:"pool"`
	Batch     int                 `json:"batch"`
	Eps       float64             `json:"eps"`
	Episodes  int                 `json:"episodes"`
	BNN       bnn.Options         `json:"bnn"`
	FitEpochs int                 `json:"fit_epochs"`
	UseGP     bool                `json:"use_gp"`
	GPAcq     string              `json:"gp_acq"`
	Seed      int64               `json:"seed"`
}

// OfflineFingerprint returns the content address of a stage-2 training
// run: a canonical hash of (environment, service-class fingerprint,
// SLA, traffic, config space, budgets, seed). It keys the artifact
// store and the orchestrator's in-run singleflight.
func OfflineFingerprint(env slicing.Env, oo OfflineOptions, seed int64) string {
	return store.Fingerprint(offlineFingerprint{
		Kind:      "offline",
		Env:       envFP(env),
		Class:     classFP(oo.Class),
		SLA:       oo.SLA,
		Traffic:   oo.Traffic,
		Space:     oo.Space,
		Iters:     oo.Iters,
		Explore:   oo.Explore,
		Pool:      oo.Pool,
		Batch:     oo.Batch,
		Eps:       oo.Eps,
		Episodes:  oo.Episodes,
		BNN:       oo.BNN,
		FitEpochs: oo.FitEpochs,
		UseGP:     oo.UseGP,
		GPAcq:     fmt.Sprintf("%T%+v", oo.GPAcq, oo.GPAcq),
		Seed:      seed,
	})
}

// OfflineSeed derives the canonical training seed for a stage-2 run: a
// pure function of the caller's base seed and the run's seedless
// fingerprint. Every slice of a class derives the same seed, which is
// what makes "dedup'd training" and "per-slice training" bit-identical
// — the shared artifact is exactly what each slice would have trained.
func OfflineSeed(env slicing.Env, base int64, oo OfflineOptions) int64 {
	state := uint64(base) ^ uint64(store.FingerprintSeed(OfflineFingerprint(env, oo, 0)))
	return int64(mathx.SplitMix64(&state))
}

// calibrationFingerprint is the canonical identity of a stage-1 search:
// the calibrator options (budgets, search space, measurement condition)
// plus a content hash of the real-measurement collection and the
// search seed.
type calibrationFingerprint struct {
	Kind       string            `json:"kind"`
	Opts       CalibratorOptions `json:"opts"`
	Collection string            `json:"collection"`
	Seed       int64             `json:"seed"`
}

// CalibrationFingerprint returns the content address of a stage-1
// search over the given real-measurement collection.
func CalibrationFingerprint(opts CalibratorOptions, real []float64, seed int64) string {
	return store.Fingerprint(calibrationFingerprint{
		Kind:       "calibration",
		Opts:       opts,
		Collection: store.Fingerprint(real),
		Seed:       seed,
	})
}

// ---- policy and offline artifacts -----------------------------------

// PolicySnapshot is the versioned serializable form of a stage-2
// Policy: the BNN posterior, the scenario bindings, and the final dual
// multiplier. The service class itself is carried by identity (name +
// encoding feature), not by value — restore rebinds the caller's class
// and verifies it matches what the policy was trained for.
type PolicySnapshot struct {
	Version      int                 `json:"version"`
	Model        *bnn.State          `json:"model,omitempty"`
	Space        slicing.ConfigSpace `json:"space"`
	SLA          slicing.SLA         `json:"sla"`
	Traffic      int                 `json:"traffic"`
	Lambda       float64             `json:"lambda"`
	ClassName    string              `json:"class_name,omitempty"`
	ClassFeature float64             `json:"class_feature"`
}

// SnapshotPolicy returns the policy's serializable snapshot.
func SnapshotPolicy(p *Policy) *PolicySnapshot {
	if p == nil {
		return nil
	}
	s := &PolicySnapshot{
		Version: ArtifactVersion,
		Space:   p.Space,
		SLA:     p.SLA,
		Traffic: p.Traffic,
		Lambda:  p.Lambda,
	}
	if p.Model != nil {
		s.Model = p.Model.Snapshot()
	}
	if p.Class != nil {
		s.ClassName = p.Class.Name
		s.ClassFeature = p.Class.Feature()
	}
	return s
}

// PolicyFromSnapshot rebuilds a policy, rebinding it to the caller's
// class (which must match the snapshot's class identity — a mismatch is
// the "restored the wrong blueprint" failure and yields a diagnostic).
// rng seeds the restored model's sampling stream.
func PolicyFromSnapshot(s *PolicySnapshot, class *slicing.ServiceClass, rng *rand.Rand) (*Policy, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil policy snapshot")
	}
	if s.Version != ArtifactVersion {
		return nil, fmt.Errorf("core: policy snapshot version %d, want %d", s.Version, ArtifactVersion)
	}
	var name string
	var feature float64
	if class != nil {
		name = class.Name
		feature = class.Feature()
	}
	if name != s.ClassName || feature != s.ClassFeature {
		return nil, fmt.Errorf("core: policy snapshot trained for class %q (feature %.4f), asked to restore for %q (feature %.4f)",
			s.ClassName, s.ClassFeature, name, feature)
	}
	p := &Policy{Space: s.Space, SLA: s.SLA, Traffic: s.Traffic, Lambda: s.Lambda, Class: class}
	if s.Model != nil {
		m, err := bnn.FromSnapshot(s.Model, rng)
		if err != nil {
			return nil, fmt.Errorf("core: policy model: %w", err)
		}
		if m.InDim() != PolicyInputDim {
			return nil, fmt.Errorf("core: policy model input dim %d, want %d", m.InDim(), PolicyInputDim)
		}
		p.Model = m
	}
	return p, nil
}

// OfflineArtifact is the store payload for one stage-2 training run:
// the policy snapshot plus the measured optimum and training curves, so
// a warm start recovers everything a cold run would have produced.
type OfflineArtifact struct {
	Version     int             `json:"version"`
	Fingerprint string          `json:"fingerprint"`
	Policy      *PolicySnapshot `json:"policy"`
	BestConfig  slicing.Config  `json:"best_config"`
	BestUsage   float64         `json:"best_usage"`
	BestQoE     float64         `json:"best_qoe"`
	UsageCurve  []float64       `json:"usage_curve,omitempty"`
	QoECurve    []float64       `json:"qoe_curve,omitempty"`
	LambdaCurve []float64       `json:"lambda_curve,omitempty"`
}

// NewOfflineArtifact snapshots a training result under its fingerprint.
func NewOfflineArtifact(fingerprint string, res *OfflineResult) *OfflineArtifact {
	return &OfflineArtifact{
		Version:     ArtifactVersion,
		Fingerprint: fingerprint,
		Policy:      SnapshotPolicy(res.Policy),
		BestConfig:  res.BestConfig,
		BestUsage:   res.BestUsage,
		BestQoE:     res.BestQoE,
		UsageCurve:  append([]float64(nil), res.UsageCurve...),
		QoECurve:    append([]float64(nil), res.QoECurve...),
		LambdaCurve: append([]float64(nil), res.LambdaCurve...),
	}
}

// Restore rebuilds the OfflineResult, validating the version and that
// the artifact's recorded fingerprint matches the requested one.
func (a *OfflineArtifact) Restore(fingerprint string, class *slicing.ServiceClass, rng *rand.Rand) (*OfflineResult, error) {
	if a.Version != ArtifactVersion {
		return nil, fmt.Errorf("core: offline artifact version %d, want %d", a.Version, ArtifactVersion)
	}
	if a.Fingerprint != fingerprint {
		return nil, fmt.Errorf("core: offline artifact fingerprint %.12s does not match requested %.12s",
			a.Fingerprint, fingerprint)
	}
	pol, err := PolicyFromSnapshot(a.Policy, class, rng)
	if err != nil {
		return nil, err
	}
	return &OfflineResult{
		Policy:      pol,
		BestConfig:  a.BestConfig,
		BestUsage:   a.BestUsage,
		BestQoE:     a.BestQoE,
		UsageCurve:  append([]float64(nil), a.UsageCurve...),
		QoECurve:    append([]float64(nil), a.QoECurve...),
		LambdaCurve: append([]float64(nil), a.LambdaCurve...),
	}, nil
}

// CalibrationArtifact is the store payload for one stage-1 search: the
// calibrated simulation parameters and the discrepancy decomposition
// (the optimization history is not persisted — it only feeds plots).
type CalibrationArtifact struct {
	Version      int               `json:"version"`
	Fingerprint  string            `json:"fingerprint"`
	Params       slicing.SimParams `json:"params"`
	BestWeighted float64           `json:"best_weighted"`
	BestKL       float64           `json:"best_kl"`
	BestDistance float64           `json:"best_distance"`
}

// Restore rebuilds the CalibrationResult (with a nil History).
func (a *CalibrationArtifact) Restore(fingerprint string) (*CalibrationResult, error) {
	if a.Version != ArtifactVersion {
		return nil, fmt.Errorf("core: calibration artifact version %d, want %d", a.Version, ArtifactVersion)
	}
	if a.Fingerprint != fingerprint {
		return nil, fmt.Errorf("core: calibration artifact fingerprint %.12s does not match requested %.12s",
			a.Fingerprint, fingerprint)
	}
	return &CalibrationResult{
		BestParams:   a.Params,
		BestWeighted: a.BestWeighted,
		BestKL:       a.BestKL,
		BestDistance: a.BestDistance,
	}, nil
}

// ---- online (stage-3) snapshots -------------------------------------

// OnlineSnapshot is the versioned serializable form of an
// OnlineLearner's learned state: the dual multiplier plus the residual
// model — the GP (observed X/y and Cholesky factor), the residual BNN,
// or the continually-trained offline model, per the learner's ablation
// mode. The RNG stream is not captured; warm-started learners reseed.
type OnlineSnapshot struct {
	Version int           `json:"version"`
	Model   ResidualModel `json:"model"`
	Lambda  float64       `json:"lambda"`
	GP      *gp.State     `json:"gp,omitempty"`
	BNN     *bnn.State    `json:"bnn,omitempty"`
	XS      [][]float64   `json:"xs,omitempty"`
	YS      []float64     `json:"ys,omitempty"`
}

// Snapshot returns the learner's serializable learned state.
func (l *OnlineLearner) Snapshot() (*OnlineSnapshot, error) {
	s := &OnlineSnapshot{Version: ArtifactVersion, Model: l.Opts.Model, Lambda: l.lambda}
	switch l.Opts.Model {
	case ResidualBNN:
		s.BNN = l.bnnModel.Snapshot()
		s.XS = mathx.CopyVecs(l.xs)
		s.YS = append([]float64(nil), l.ys...)
	case ContinueBNN:
		if l.Policy != nil && l.Policy.Model != nil {
			s.BNN = l.Policy.Model.Snapshot()
		}
		s.XS = mathx.CopyVecs(l.xs)
		s.YS = append([]float64(nil), l.ys...)
	default:
		gs, err := l.gpModel.Snapshot()
		if err != nil {
			return nil, err
		}
		s.GP = gs
	}
	return s, nil
}

// Restore loads a snapshot's learned state into the learner. The
// snapshot must come from the same residual-model mode; mismatches and
// version skew return diagnostics and leave the learner untouched.
func (l *OnlineLearner) Restore(s *OnlineSnapshot) error {
	if s == nil {
		return fmt.Errorf("core: nil online snapshot")
	}
	if s.Version != ArtifactVersion {
		return fmt.Errorf("core: online snapshot version %d, want %d", s.Version, ArtifactVersion)
	}
	l.InvalidateSimCache()
	if s.Model != l.Opts.Model {
		return fmt.Errorf("core: online snapshot from residual model %d, learner uses %d", s.Model, l.Opts.Model)
	}
	if len(s.XS) != len(s.YS) {
		return fmt.Errorf("core: online snapshot has %d inputs but %d targets", len(s.XS), len(s.YS))
	}
	switch l.Opts.Model {
	case ResidualBNN:
		m, err := bnn.FromSnapshot(s.BNN, mathx.NewRNG(l.rng.Int63()))
		if err != nil {
			return err
		}
		l.bnnModel = m
	case ContinueBNN:
		if s.BNN != nil {
			if l.Policy == nil {
				return fmt.Errorf("core: online snapshot carries a policy model but the learner has no policy")
			}
			m, err := bnn.FromSnapshot(s.BNN, mathx.NewRNG(l.rng.Int63()))
			if err != nil {
				return err
			}
			// The policy may be shared with the caller; rebind a shallow
			// copy around the restored model instead of mutating it.
			p := *l.Policy
			p.Model = m
			l.Policy = &p
		}
	default:
		g, err := gp.FromSnapshot(s.GP)
		if err != nil {
			return err
		}
		l.gpModel = g
	}
	l.lambda = s.Lambda
	l.xs = mathx.CopyVecs(s.XS)
	l.ys = append([]float64(nil), s.YS...)
	return nil
}

// Reseed replaces the learner's internal RNG stream. Snapshots never
// carry RNG state, so a caller that needs two learners (e.g. an
// original and its restored twin) to act identically reseeds both.
func (l *OnlineLearner) Reseed(seed int64) { l.rng = mathx.NewRNG(seed) }

// ---- load-or-train paths --------------------------------------------

// OfflineOutcome reports how a stage-2 artifact was obtained.
type OfflineOutcome struct {
	Result *OfflineResult
	// Key is the artifact's content address (fingerprint).
	Key string
	// Hit is true when the result was restored from the store.
	Hit bool
	// Trained is true when training actually ran.
	Trained bool
	// Diag carries the non-fatal diagnostic of a failed store read
	// (corrupt file, version skew, fingerprint mismatch) that forced the
	// fall back to fresh training.
	Diag error
}

// RunOfflineWithStore is the load-or-train path for stage 2: with a
// store and warm=true it restores the artifact under the run's
// fingerprint; otherwise (or when the read fails) it trains with the
// given seed, and with save=true writes the result back. A nil store
// always trains.
func RunOfflineWithStore(env slicing.Env, oo OfflineOptions, seed int64, st *store.Store, warm, save bool) OfflineOutcome {
	out := OfflineOutcome{Key: OfflineFingerprint(env, oo, seed)}
	if st != nil && warm {
		var art OfflineArtifact
		found, err := st.Get(store.KindOffline, out.Key, &art)
		if err != nil {
			out.Diag = err
		} else if found {
			res, rerr := art.Restore(out.Key, oo.Class, mathx.NewRNG(mathx.ChildSeed(seed, 1)))
			if rerr != nil {
				out.Diag = rerr
			} else {
				out.Result = res
				out.Hit = true
				return out
			}
		}
	}
	out.Result = NewOfflineTrainer(env, oo).Run(mathx.NewRNG(seed))
	out.Trained = true
	if st != nil && save {
		if err := st.Put(store.KindOffline, out.Key, NewOfflineArtifact(out.Key, out.Result)); err != nil && out.Diag == nil {
			out.Diag = err
		}
	}
	return out
}

// RunCalibrationWithStore is the load-or-search path for stage 1,
// mirroring RunOfflineWithStore: hit on the fingerprint of (options,
// collection, seed), else search and write back.
func RunCalibrationWithStore(cal *Calibrator, seed int64, st *store.Store, warm, save bool) (res *CalibrationResult, key string, hit bool, diag error) {
	key = CalibrationFingerprint(cal.Opts, cal.Real, seed)
	if st != nil && warm {
		var art CalibrationArtifact
		found, err := st.Get(store.KindCalibration, key, &art)
		if err != nil {
			diag = err
		} else if found {
			if r, rerr := art.Restore(key); rerr != nil {
				diag = rerr
			} else {
				return r, key, true, diag
			}
		}
	}
	res = cal.Run(mathx.NewRNG(seed))
	if st != nil && save {
		art := &CalibrationArtifact{
			Version:      ArtifactVersion,
			Fingerprint:  key,
			Params:       res.BestParams,
			BestWeighted: res.BestWeighted,
			BestKL:       res.BestKL,
			BestDistance: res.BestDistance,
		}
		if err := st.Put(store.KindCalibration, key, art); err != nil && diag == nil {
			diag = err
		}
	}
	return res, key, false, diag
}
