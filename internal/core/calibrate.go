// Package core implements the paper's contribution: the three-stage
// learn-to-configure system.
//
//   - Stage 1 (Calibrator): search the simulator's parameters to minimize
//     the KL divergence between simulated and real latency distributions
//     (learning-based simulator, §4, Algorithm 1).
//   - Stage 2 (OfflineTrainer): learn the minimum-usage configuration
//     policy under the QoE constraint inside the calibrated simulator via
//     Lagrangian-penalized Bayesian optimization (§5, Algorithm 2).
//   - Stage 3 (OnlineLearner): safely adapt online, learning only the
//     sim-to-real QoE residual with a Gaussian process and exploring with
//     clipped randomized GP-UCB (§6, Algorithm 3).
package core

import (
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/bnn"
	"github.com/atlas-slicing/atlas/internal/bo"
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/stats"
)

// CalibratorOptions configures stage 1.
type CalibratorOptions struct {
	Space slicing.ParamSpace
	// Alpha is the weight of the parameter-distance penalty in the
	// weighted discrepancy KL + α·|x − x̂|₂ (paper: 7).
	Alpha float64
	// Traffic and Cfg describe the condition under which the online
	// collection D_r was logged (paper: traffic 1, full resources).
	Traffic int
	Cfg     slicing.Config
	// Episodes is the number of simulator episodes averaged per
	// discrepancy query.
	Episodes int

	// Optimization budget.
	Iters   int // total iterations (paper: 500)
	Explore int // initial pure-exploration iterations (paper: 100)
	Pool    int // candidates scored per Thompson draw
	Batch   int // parallel queries per iteration (paper: up to 16)

	// UseGP switches the surrogate from the BNN to a Gaussian process
	// (the "GP-based approach" comparator of Fig. 8 and Table 4).
	UseGP bool
	// BNN configures the Bayesian-network surrogate.
	BNN bnn.Options
	// FitEpochs is the surrogate training budget per iteration.
	FitEpochs int
}

// DefaultCalibratorOptions returns harness-scale defaults (see DESIGN.md
// §4: paper-scale budgets are restored with the -paper flag).
func DefaultCalibratorOptions() CalibratorOptions {
	return CalibratorOptions{
		Space:     slicing.DefaultParamSpace(),
		Alpha:     1,
		Traffic:   1,
		Cfg:       FullConfig(),
		Episodes:  1,
		Iters:     150,
		Explore:   30,
		Pool:      2000,
		Batch:     4,
		BNN:       bnn.DefaultOptions(),
		FitEpochs: 15,
	}
}

// FullConfig is the measurement configuration used for online
// collections: all resources granted (the operator logs the incumbent
// deployment, which runs unconstrained).
func FullConfig() slicing.Config {
	return slicing.Config{BandwidthUL: 50, BandwidthDL: 50, BackhaulMbps: 100, CPURatio: 1}
}

// CalibrationResult is the outcome of stage 1.
type CalibrationResult struct {
	BestParams slicing.SimParams
	// BestWeighted is the lowest observed weighted discrepancy.
	BestWeighted float64
	// BestKL and BestDistance decompose the incumbent.
	BestKL       float64
	BestDistance float64
	// History is the raw optimization trajectory; History.IterMean is
	// the average-weighted-discrepancy curve of Figs. 8 and 13.
	History *bo.History
}

// Calibrator runs the stage-1 parameter search (Algorithm 1).
type Calibrator struct {
	Opts CalibratorOptions
	// Sim is the simulator being calibrated; its Params field is the
	// starting point x̂.
	Sim *simnet.Simulator
	// Real is the collection D_r of real-network latencies.
	Real []float64
}

// NewCalibrator builds a calibrator for sim against the online
// collection realLatencies.
func NewCalibrator(sim *simnet.Simulator, realLatencies []float64, opts CalibratorOptions) *Calibrator {
	return &Calibrator{Opts: opts, Sim: sim, Real: realLatencies}
}

// Discrepancy runs the simulator under params and returns the
// KL(D_r ‖ D_s(x)) estimate. Seeds derive deterministically from the
// parameters so repeated queries agree and parallel queries are safe.
func (c *Calibrator) Discrepancy(params slicing.SimParams) float64 {
	sim := c.Sim.WithParams(params)
	var latencies []float64
	base := seedOf(params.Vector())
	for e := 0; e < max(1, c.Opts.Episodes); e++ {
		tr := sim.Episode(c.Opts.Cfg, c.Opts.Traffic, mathx.ChildSeed(base, e))
		latencies = append(latencies, tr.LatenciesMs...)
	}
	return stats.KLDivergence(c.Real, latencies)
}

// Weighted returns the stage-1 objective KL + α·distance for params.
func (c *Calibrator) Weighted(params slicing.SimParams) float64 {
	return c.Discrepancy(params) + c.Opts.Alpha*c.Opts.Space.Distance(params)
}

// Run executes the parameter search and returns the calibration result.
func (c *Calibrator) Run(rng *rand.Rand) *CalibrationResult {
	opts := c.Opts
	space := opts.Space

	var surrogate bo.Surrogate
	if opts.UseGP {
		surrogate = bo.NewGPSurrogate()
	} else {
		model := bnn.New(slicing.ParamDim, opts.BNN, mathx.NewRNG(rng.Int63()))
		s := bo.NewBNNSurrogate(model, mathx.NewRNG(rng.Int63()))
		s.FitEpochs = opts.FitEpochs
		surrogate = s
	}

	min := &bo.Minimizer{
		Surrogate: surrogate,
		Sample: func(rng *rand.Rand) []float64 {
			return space.Normalize(space.Sample(rng))
		},
		Objective: func(x []float64) float64 {
			return c.Weighted(space.Denormalize(x))
		},
		Pool:         opts.Pool,
		Batch:        opts.Batch,
		ExploreIters: opts.Explore,
	}
	if opts.UseGP {
		// The GP comparator follows the classic single-query BO recipe.
		min.Batch = 1
		min.Acq = bo.EI{}
	}

	h := min.Run(opts.Iters, rng)
	best := space.Denormalize(h.BestX)
	return &CalibrationResult{
		BestParams:   best,
		BestWeighted: h.BestY,
		BestKL:       c.Discrepancy(best),
		BestDistance: space.Distance(best),
		History:      h,
	}
}

// seedOf derives a deterministic seed from a parameter vector so that
// the same query point always simulates the same episode.
func seedOf(v mathx.Vector) int64 {
	var h uint64 = 1469598103934665603
	for _, x := range v {
		bits := uint64(int64(x * 1e6))
		for i := 0; i < 8; i++ {
			h ^= (bits >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	return int64(h)
}
