package core

import (
	"testing"

	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// The arbitration primitive's edge cases: CheapestFeasible must refuse
// to nominate a configuration when it has nothing trustworthy to stand
// on (empty posterior), when the SLA is out of reach everywhere
// (all-infeasible pool), and PreviewDownscale must report "nothing to
// free" when the envelope is already at the minimum the learner would
// pick.

// TestCheapestFeasibleEmptyPosterior: a cold learner — no offline
// policy, no online observations — predicts QoE 0 everywhere, so no
// candidate meets any positive availability target and the slice must
// be left alone.
func TestCheapestFeasibleEmptyPosterior(t *testing.T) {
	opts := DefaultOnlineOptions()
	opts.Pool = 120
	l := NewOnlineLearner(nil, nil, opts, mathx.NewRNG(3))
	if _, ok := l.CheapestFeasible(120, mathx.NewRNG(5)); ok {
		t.Fatal("empty posterior nominated a downscale configuration")
	}
}

// TestCheapestFeasibleAllInfeasible: a learner whose observed residuals
// sit far below the SLA target finds every candidate infeasible, while
// the same posterior under a relaxed target nominates a candidate —
// and deterministically so.
func TestCheapestFeasibleAllInfeasible(t *testing.T) {
	space := slicing.DefaultConfigSpace()
	build := func(availability float64) *OnlineLearner {
		opts := DefaultOnlineOptions()
		opts.Pool = 150
		pol := &Policy{Space: space, SLA: slicing.SLA{ThresholdMs: 300, Availability: availability}, Traffic: 1}
		l := NewOnlineLearner(pol, nil, opts, mathx.NewRNG(7))
		// Blanket the space with observations of residual 0.5: the GP
		// posterior mean sits near 0.5 everywhere (the nil offline model
		// contributes 0), far under a 0.99 target.
		rng := mathx.NewRNG(11)
		for i := 0; i < 25; i++ {
			cfg := space.Sample(rng)
			l.Observe(i, cfg, space.Usage(cfg), 0.5)
		}
		return l
	}
	if _, ok := build(0.99).CheapestFeasible(150, mathx.NewRNG(13)); ok {
		t.Fatal("all-infeasible pool nominated a configuration")
	}
	strict := build(0.3)
	cfg1, ok1 := strict.CheapestFeasible(150, mathx.NewRNG(13))
	if !ok1 {
		t.Fatal("relaxed target found no feasible candidate despite a ~0.5 posterior")
	}
	cfg2, ok2 := build(0.3).CheapestFeasible(150, mathx.NewRNG(13))
	if !ok2 || cfg1 != cfg2 {
		t.Fatalf("CheapestFeasible not deterministic: %v vs %v", cfg1, cfg2)
	}
	if u := space.Usage(cfg1); u < 0 || u > 1 {
		t.Fatalf("nominated config outside the space: usage %v", u)
	}
}

// TestPreviewDownscaleMinConfigEnvelope: once a slice's envelope has
// been tightened to (essentially) the minimum configuration, another
// preview frees nothing — the confined candidate cannot shrink any
// demand dimension further — and must report ok=false rather than
// churn the reservation.
func TestPreviewDownscaleMinConfigEnvelope(t *testing.T) {
	s := quickSystem()
	s.Ledger = slicing.NewCapacityLedger(slicing.CellCapacity(2))
	// The relaxed SLA keeps plenty of posterior-feasible candidates, so
	// the preview reaches the envelope-shrink logic rather than bailing
	// on infeasibility.
	if _, err := s.AdmitSlice("a", slicing.SLA{ThresholdMs: 500, Availability: 0.3}, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.Step("a"); err != nil {
			t.Fatal(err)
		}
	}
	// Commit a floor envelope: every demand-bearing dimension at the
	// space minimum (zero), so no candidate can shrink it further.
	floor := slicing.Config{}
	if _, ok, err := s.CommitDownscale("a", floor); err != nil || !ok {
		t.Fatalf("floor commit = %v, %v", ok, err)
	}
	next, freed, ok, err := s.PreviewDownscale("a", 150)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("preview below the floor envelope claimed to free %v (next %v)", freed, next)
	}
	// The reservation is untouched by the refused preview.
	if got, _ := s.Ledger.Reserved("a"); got != slicing.DemandOf(floor) {
		t.Fatalf("refused preview moved the reservation to %v", got)
	}
}
