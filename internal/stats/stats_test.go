package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Fatalf("median = %v", got)
	}
	// The input must not be reordered.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantilesMonotone(t *testing.T) {
	f := func(raw [9]float64) bool {
		xs := raw[:]
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		qs := Quantiles(xs, []float64{0.1, 0.3, 0.5, 0.7, 0.9})
		for i := 1; i < len(qs); i++ {
			if qs[i] < qs[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFracBelow(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := FracBelow(xs, 25); got != 0.5 {
		t.Fatalf("FracBelow = %v", got)
	}
	if got := FracBelow(nil, 25); got != 0 {
		t.Fatalf("empty FracBelow = %v", got)
	}
	if got := FracBelow(xs, 40); got != 1 {
		t.Fatalf("inclusive FracBelow = %v", got)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{-1, 0, 1.9, 5, 9.9, 10, 100})
	if h.Total != 7 {
		t.Fatalf("total = %v", h.Total)
	}
	// Out-of-range folds to edge bins.
	if h.Counts[0] != 3 { // -1, 0, 1.9
		t.Fatalf("bin0 = %v", h.Counts[0])
	}
	if h.Counts[4] != 3 { // 9.9, 10, 100
		t.Fatalf("bin4 = %v", h.Counts[4])
	}
}

func TestHistogramProbsSumToOne(t *testing.T) {
	f := func(raw [16]float64, eps uint8) bool {
		h := NewHistogram(0, 1, 8)
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Add(math.Mod(math.Abs(x), 1))
		}
		e := 0.01 + float64(eps)/64
		ps := h.Probs(e)
		var sum float64
		for _, p := range ps {
			if p <= 0 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKLProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	c := make([]float64, 2000)
	for i := range a {
		a[i] = 100 + 30*rng.NormFloat64()
		b[i] = 100 + 30*rng.NormFloat64()
		c[i] = 200 + 30*rng.NormFloat64()
	}
	same := KLDivergence(a, b)
	far := KLDivergence(a, c)
	if same < 0 || far < 0 {
		t.Fatal("KL must be non-negative")
	}
	if far <= same {
		t.Fatalf("shifted distribution should have larger KL: same=%v far=%v", same, far)
	}
	if self := KLDivergence(a, a); self > 1e-9 {
		t.Fatalf("KL(p||p) = %v", self)
	}
}

func TestKLFromProbsPanicsOnZeroQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero q mass")
		}
	}()
	KLFromProbs([]float64{0.5, 0.5}, []float64{1, 0})
}

func TestKLDivergenceBinned(t *testing.T) {
	a := []float64{1, 2, 3}
	got := KLDivergenceBinned(a, a, 0, 4, 4, 0.5)
	if got > 1e-9 {
		t.Fatalf("self-KL = %v", got)
	}
}

func TestScalerRoundTrip(t *testing.T) {
	f := func(raw [10]float64, y float64) bool {
		ys := raw[:]
		ok := false
		for _, x := range ys {
			if math.IsNaN(x) || math.Abs(x) > 1e9 {
				return true
			}
			if x != ys[0] {
				ok = true
			}
		}
		if !ok || math.IsNaN(y) || math.Abs(y) > 1e9 {
			return true
		}
		var s Scaler
		s.Fit(ys)
		back := s.Inverse(s.Transform(y))
		return math.Abs(back-y) <= 1e-6*(1+math.Abs(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScalerConstantSample(t *testing.T) {
	var s Scaler
	s.Fit([]float64{5, 5, 5})
	if s.Std != 1 {
		t.Fatalf("constant sample std = %v, want fallback 1", s.Std)
	}
	if got := s.Transform(5); got != 0 {
		t.Fatalf("Transform(5) = %v", got)
	}
}

func TestScalerUnfittedIdentity(t *testing.T) {
	var s Scaler
	if s.Transform(3.14) != 3.14 || s.Inverse(2.71) != 2.71 {
		t.Fatal("unfitted scaler must be identity")
	}
}

func TestScalerTransformAllStandardizes(t *testing.T) {
	ys := []float64{10, 20, 30, 40, 50}
	var s Scaler
	s.Fit(ys)
	ts := s.TransformAll(ys)
	sum := Summarize(ts)
	if math.Abs(sum.Mean) > 1e-12 {
		t.Fatalf("standardized mean = %v", sum.Mean)
	}
	if math.Abs(sum.Std-1) > 1e-12 {
		t.Fatalf("standardized std = %v", sum.Std)
	}
}
