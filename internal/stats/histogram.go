package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-width binned density over [Lo, Hi] with underflow
// and overflow folded into the edge bins. It is the common representation
// used for KL-divergence estimation between latency collections.
type Histogram struct {
	Lo, Hi float64
	Counts []float64
	Total  float64
}

// NewHistogram returns an empty histogram with the given range and number
// of bins. It panics on a degenerate range or non-positive bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if !(hi > lo) {
		panic(fmt.Sprintf("stats: bad histogram range [%v, %v]", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]float64, bins)}
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.Counts) }

// binOf maps a sample to its bin index, clamping out-of-range values to
// the edge bins.
func (h *Histogram) binOf(x float64) int {
	if math.IsNaN(x) {
		return 0
	}
	frac := (x - h.Lo) / (h.Hi - h.Lo)
	idx := int(frac * float64(len(h.Counts)))
	if idx < 0 {
		return 0
	}
	if idx >= len(h.Counts) {
		return len(h.Counts) - 1
	}
	return idx
}

// Add records a single sample.
func (h *Histogram) Add(x float64) {
	h.Counts[h.binOf(x)]++
	h.Total++
}

// AddAll records every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Probs returns the bin probabilities smoothed with additive constant eps
// per bin (Laplace smoothing), so the result is strictly positive and
// sums to one. An empty histogram yields the uniform distribution.
func (h *Histogram) Probs(eps float64) []float64 {
	n := len(h.Counts)
	out := make([]float64, n)
	denom := h.Total + eps*float64(n)
	if denom == 0 {
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	for i, c := range h.Counts {
		out[i] = (c + eps) / denom
	}
	return out
}

// HistogramOf builds a histogram over [lo, hi] with the given bins and
// fills it with xs.
func HistogramOf(xs []float64, lo, hi float64, bins int) *Histogram {
	h := NewHistogram(lo, hi, bins)
	h.AddAll(xs)
	return h
}
