// Package stats provides the empirical-distribution machinery Atlas uses
// to compare simulator output against real-network measurements:
// streaming summaries, histograms, smoothed KL divergence, empirical CDFs
// and quantiles, and target standardization for regression models.
package stats

import (
	"math"
	"sort"
)

// Summary holds first- and second-moment statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Std      float64 // sample standard deviation (n-1 denominator)
	Min, Max float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns the quantiles of xs at each q in qs, sorting the
// sample only once.
func Quantiles(xs []float64, qs []float64) []float64 {
	if len(xs) == 0 {
		panic("stats: quantiles of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// FracBelow returns the fraction of xs that are ≤ threshold. This is the
// empirical QoE estimator for latency SLAs: Pr(latency ≤ Y).
func FracBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	count := 0
	for _, x := range xs {
		if x <= threshold {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}
