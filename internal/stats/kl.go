package stats

import (
	"fmt"
	"math"
)

// DefaultKLBins and related constants define the canonical discretization
// Atlas uses when comparing latency collections, mirroring the paper's
// KL-divergence measurements over end-to-end latency distributions.
const (
	DefaultKLBins = 40
	DefaultKLLoMs = 0
	DefaultKLHiMs = 1000
	DefaultKLEps  = 0.1
)

// KLFromProbs returns KL(p || q) = Σ p·log(p/q) in nats. Both arguments
// must be strictly positive distributions of equal length.
func KLFromProbs(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("stats: KL length mismatch %d != %d", len(p), len(q)))
	}
	var kl float64
	for i := range p {
		if p[i] <= 0 {
			continue
		}
		if q[i] <= 0 {
			panic("stats: KL with zero mass in q; smooth the histogram first")
		}
		kl += p[i] * math.Log(p[i]/q[i])
	}
	if kl < 0 { // tiny negative values can appear from rounding
		kl = 0
	}
	return kl
}

// KLDivergence estimates KL(real || sim) between two latency samples by
// discretizing both on the canonical latency grid with Laplace smoothing.
// This is the sim-to-real discrepancy measure from the paper (Eq. 1).
func KLDivergence(real, sim []float64) float64 {
	hr := HistogramOf(real, DefaultKLLoMs, DefaultKLHiMs, DefaultKLBins)
	hs := HistogramOf(sim, DefaultKLLoMs, DefaultKLHiMs, DefaultKLBins)
	return KLFromProbs(hr.Probs(DefaultKLEps), hs.Probs(DefaultKLEps))
}

// KLDivergenceBinned is KLDivergence with an explicit grid, for callers
// comparing quantities other than millisecond latencies.
func KLDivergenceBinned(real, sim []float64, lo, hi float64, bins int, eps float64) float64 {
	hr := HistogramOf(real, lo, hi, bins)
	hs := HistogramOf(sim, lo, hi, bins)
	return KLFromProbs(hr.Probs(eps), hs.Probs(eps))
}
