package stats

import "math"

// Scaler standardizes targets by removing the mean and scaling to unit
// variance, matching the paper's preprocessing for the Gaussian-process
// regressor ("target values are normalized by removing the mean and
// scaling to unit-variance").
type Scaler struct {
	Mean, Std float64
	fitted    bool
}

// Fit computes mean and std from ys. A constant (or empty) sample gets
// Std = 1 so transforms stay well-defined.
func (s *Scaler) Fit(ys []float64) {
	sum := Summarize(ys)
	s.Mean = sum.Mean
	s.Std = sum.Std
	if s.Std <= 0 || math.IsNaN(s.Std) {
		s.Std = 1
	}
	s.fitted = true
}

// Transform maps y to standardized space. An unfitted scaler is the
// identity.
func (s *Scaler) Transform(y float64) float64 {
	if !s.fitted {
		return y
	}
	return (y - s.Mean) / s.Std
}

// TransformAll maps each element of ys to standardized space.
func (s *Scaler) TransformAll(ys []float64) []float64 {
	out := make([]float64, len(ys))
	for i, y := range ys {
		out[i] = s.Transform(y)
	}
	return out
}

// Inverse maps a standardized value back to the original space.
func (s *Scaler) Inverse(z float64) float64 {
	if !s.fitted {
		return z
	}
	return z*s.Std + s.Mean
}

// InverseStd maps a standardized standard deviation back to the original
// space (scale only, no shift).
func (s *Scaler) InverseStd(z float64) float64 {
	if !s.fitted {
		return z
	}
	return z * s.Std
}

// ScalerState is the serializable form of a Scaler, exposing the
// otherwise-unexported fitted flag so snapshot/restore round trips
// reproduce the identity behavior of an unfitted scaler exactly.
type ScalerState struct {
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Fitted bool    `json:"fitted"`
}

// State returns the scaler's serializable snapshot.
func (s *Scaler) State() ScalerState {
	return ScalerState{Mean: s.Mean, Std: s.Std, Fitted: s.fitted}
}

// ScalerFromState rebuilds a scaler from its serialized state.
func ScalerFromState(st ScalerState) Scaler {
	return Scaler{Mean: st.Mean, Std: st.Std, fitted: st.Fitted}
}
