// Package realnet is the real-network surrogate: the stand-in for the
// paper's physical testbed (OpenAirInterface eNB + USRP front-end,
// OnePlus 9 UE, Ruckus SDN switch, OpenAir-CN core, Docker edge).
//
// It reuses the simnet engine but drives it with (a) a *hidden*
// ground-truth parameter vector that differs from the simulator defaults
// and (b) a structural profile containing effects the seven searchable
// simulation parameters cannot express: shadow fading and interference
// bursts, PHY/MAC implementation efficiency losses, lognormal OS jitter
// on compute times, and UE loading jitter. Together these reproduce the
// paper's observations: the real network is a little slower on every
// metric (Table 1), its latency distribution is right-shifted and
// heavier-tailed (Fig. 2), and the gap grows with load (Fig. 3) and
// distance (Fig. 10) — reducible but not removable by parameter search.
package realnet

import (
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// HiddenParams returns the ground-truth radio parameters of the
// surrogate testbed. They sit inside the default search box of stage 1
// (slicing.DefaultParamSpace), so calibration *can* discover them —
// the structural profile is what keeps the discrepancy from reaching
// zero.
func HiddenParams() slicing.SimParams {
	return slicing.SimParams{
		BaselineLoss: 40.0, // the real channel at 1 m loses a bit more than the model
		ENBNoiseFig:  6.5,  // the USRP receive chain is noisier than the LENA default
		UENoiseFig:   10.5, // likewise for the handset
		// The additional transport/compute/loading terms are zero here:
		// the corresponding real-world overheads live in the structural
		// profile below, which is precisely why stage 1 ends up choosing
		// positive "additional" parameters for the simulator.
	}
}

// Profile returns the hidden structural profile of the surrogate
// testbed at the given user–eNB distance in metres. Fading grows with
// distance (more multipath at longer indoor ranges), which is what makes
// the sim-to-real discrepancy distance-dependent (paper Fig. 10).
func Profile(distanceM float64) simnet.Profile {
	p := simnet.CleanProfile()
	p.PathlossExp = 3.5
	p.DistanceM = distanceM
	p.SINRCapDB = 26 // EVM/quantization ceiling of the USRP front-end

	p.FadingSigmaDB = 0.6 + 0.6*distanceM
	p.FadingRho = 0.9
	p.BurstRatePerS = 0.03
	p.BurstDurMeanS = 1.2
	p.BurstDepthDB = 14

	p.ULEfficiency = 0.88
	p.DLEfficiency = 0.95
	p.BasePERUL = 0.009
	p.BasePERDL = 0.005

	p.ULAccessJitterMs = 0.8 * distanceM // grant hunting after CQI changes
	p.PingAccessULMs = 14.5
	p.PingAccessDLMs = 8

	p.BackhaulDelayMs = 3.2 // switch + kernel stack
	p.BackhaulHeadroom = 4  // OpenFlow meter token-bucket burst
	p.CoreProcMs = 4.5

	p.ComputeExtraMs = 3 // container runtime overhead
	p.ComputeJitterSigma = 0.30
	p.ComputeStallProb = 0.05 // GC / page-fault stalls
	p.ComputeStallFactor = 2.5

	p.LoadingBaseMs = 26 // Android capture/encode is slower than modeled
	p.LoadingJitterMs = 12

	return p
}

// Network is the real-network surrogate. It implements slicing.Env.
// Unlike the simulator, its parameters are fixed and hidden; callers can
// only run episodes and observe traces — exactly the interface the
// paper's system.py exposes to the algorithms.
type Network struct {
	inner simnet.Simulator
	// ExtraUsers adds background best-effort users outside the slice
	// (used by the isolation experiment, Fig. 11). Because the
	// prototype isolates slices in every domain, extra users do not
	// perturb the slice's stations; the field exists so experiments can
	// document that the isolation holds by construction *and* measure
	// it.
	ExtraUsers int
}

// New returns the surrogate testbed at 1 m distance.
func New() *Network { return NewAtDistance(1.0) }

// NewAtDistance returns the surrogate testbed with the UE placed at the
// given distance from the eNB.
func NewAtDistance(distanceM float64) *Network {
	return &Network{inner: simnet.Simulator{Profile: Profile(distanceM), Params: HiddenParams()}}
}

// NewRandomWalk returns the surrogate with a mobile UE performing a
// random walk: each episode samples a distance uniformly from
// [1 m, 10 m], further increasing channel variability (the "random"
// condition of Fig. 10).
func NewRandomWalk() *Network {
	n := NewAtDistance(5.5)
	n.inner.Profile.FadingSigmaDB = 6.0 // walk-induced variation dominates
	n.inner.Profile.FadingRho = 0.7
	return n
}

// Episode runs one configuration interval on the surrogate testbed.
func (n *Network) Episode(cfg slicing.Config, traffic int, seed int64) slicing.Trace {
	return n.inner.Episode(cfg, traffic, seed)
}

// EpisodeClass runs one configuration interval under a service class's
// application workload; the testbed's hidden structural effects still
// apply. It implements slicing.ClassEnv.
func (n *Network) EpisodeClass(class slicing.ServiceClass, cfg slicing.Config, traffic int, seed int64) slicing.Trace {
	return n.inner.EpisodeClass(class, cfg, traffic, seed)
}

// Measure runs the Table 1 link-layer measurement campaign.
func (n *Network) Measure(cfg slicing.Config, seed int64) slicing.Trace {
	return n.inner.Measure(cfg, seed)
}

// Collect gathers an online collection D_r of slice latencies under the
// given configuration and traffic: `episodes` configuration intervals
// with distinct seeds, concatenated. This is the minimal-effort logging
// the paper assumes operators already perform.
func (n *Network) Collect(cfg slicing.Config, traffic, episodes int, seed int64) []float64 {
	var out []float64
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < episodes; i++ {
		tr := n.Episode(cfg, traffic, rng.Int63())
		out = append(out, tr.LatenciesMs...)
	}
	return out
}
