package realnet

import (
	"testing"

	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/stats"
)

func fullConfig() slicing.Config {
	return slicing.Config{BandwidthUL: 50, BandwidthDL: 50, BackhaulMbps: 100, CPURatio: 1}
}

func TestRealSlowerThanSim(t *testing.T) {
	real := New()
	sim := simnet.NewDefault()
	mr := stats.Summarize(real.Episode(fullConfig(), 1, 1).LatenciesMs)
	ms := stats.Summarize(sim.Episode(fullConfig(), 1, 2).LatenciesMs)
	if mr.Mean <= ms.Mean {
		t.Fatalf("real %v should be slower than sim %v", mr.Mean, ms.Mean)
	}
	if mr.Std <= ms.Std {
		t.Fatalf("real std %v should exceed sim std %v", mr.Std, ms.Std)
	}
}

func TestGapGrowsWithTraffic(t *testing.T) {
	real := New()
	sim := simnet.NewDefault()
	gap1 := stats.Summarize(real.Episode(fullConfig(), 1, 3).LatenciesMs).Mean -
		stats.Summarize(sim.Episode(fullConfig(), 1, 4).LatenciesMs).Mean
	gap4 := stats.Summarize(real.Episode(fullConfig(), 4, 5).LatenciesMs).Mean -
		stats.Summarize(sim.Episode(fullConfig(), 4, 6).LatenciesMs).Mean
	if gap4 <= gap1 {
		t.Fatalf("discrepancy should grow with load: gap1=%v gap4=%v", gap1, gap4)
	}
}

func TestMeasurementsWorseThanSim(t *testing.T) {
	real := New()
	sim := simnet.NewDefault()
	mr := real.Measure(fullConfig(), 7)
	ms := sim.Measure(fullConfig(), 8)
	if mr.ULThroughputMbps >= ms.ULThroughputMbps {
		t.Fatal("real UL throughput should be lower")
	}
	if mr.DLThroughputMbps >= ms.DLThroughputMbps {
		t.Fatal("real DL throughput should be lower")
	}
	if mr.ULPER <= ms.ULPER {
		t.Fatal("real UL PER should be higher")
	}
	if mr.DLPER <= ms.DLPER {
		t.Fatal("real DL PER should be higher")
	}
}

func TestDiscrepancyGrowsWithDistance(t *testing.T) {
	sim := simnet.NewDefault()
	klAt := func(d float64) float64 {
		real := NewAtDistance(d)
		s := *sim
		s.Profile.DistanceM = d
		var rl, sl []float64
		for e := int64(0); e < 3; e++ {
			rl = append(rl, real.Episode(fullConfig(), 1, 100+e).LatenciesMs...)
			sl = append(sl, s.Episode(fullConfig(), 1, 200+e).LatenciesMs...)
		}
		return stats.KLDivergence(rl, sl)
	}
	near := klAt(1)
	far := klAt(10)
	if far <= near {
		t.Fatalf("discrepancy should grow with distance: %v at 1m vs %v at 10m", near, far)
	}
}

func TestIsolationFromExtraUsers(t *testing.T) {
	base := New()
	loaded := New()
	loaded.ExtraUsers = 2
	m0 := stats.Summarize(base.Episode(fullConfig(), 1, 9).LatenciesMs).Mean
	m2 := stats.Summarize(loaded.Episode(fullConfig(), 1, 9).LatenciesMs).Mean
	if m0 != m2 {
		t.Fatalf("slice isolation violated: %v vs %v", m0, m2)
	}
}

func TestHiddenParamsInsideSearchSpace(t *testing.T) {
	space := slicing.DefaultParamSpace()
	hp := HiddenParams()
	if !space.InTrustRegion(hp) {
		t.Fatalf("hidden parameters %v outside the trust region (distance %v)",
			hp, space.Distance(hp))
	}
}

func TestCollectConcatenatesEpisodes(t *testing.T) {
	real := New()
	one := real.Collect(fullConfig(), 1, 1, 11)
	three := real.Collect(fullConfig(), 1, 3, 11)
	if len(three) <= len(one) {
		t.Fatalf("3 episodes gathered %d samples vs %d for 1", len(three), len(one))
	}
}

func TestRandomWalkIncreasesVariability(t *testing.T) {
	still := NewAtDistance(5.5)
	walk := NewRandomWalk()
	ss := stats.Summarize(still.Episode(fullConfig(), 1, 13).LatenciesMs)
	sw := stats.Summarize(walk.Episode(fullConfig(), 1, 13).LatenciesMs)
	if sw.Std <= ss.Std {
		t.Skipf("random-walk variability not dominant on this seed: %v vs %v", sw.Std, ss.Std)
	}
}
