package bo

import (
	"math"
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/mathx"
)

// Acquisition scores a candidate for *minimization* problems given the
// surrogate posterior at the point and the best (lowest) observed value
// so far. Higher scores are better; the optimizer queries the
// highest-scoring candidate.
type Acquisition interface {
	Score(mean, std, best float64) float64
}

// EI is the expected-improvement acquisition for minimization:
// E[max(best − f(x), 0)].
type EI struct {
	// Xi is the optional improvement margin (0 = classic EI).
	Xi float64
}

// Score implements Acquisition.
func (a EI) Score(mean, std, best float64) float64 {
	if std <= 0 {
		if mean < best-a.Xi {
			return best - a.Xi - mean
		}
		return 0
	}
	z := (best - a.Xi - mean) / std
	return (best-a.Xi-mean)*mathx.NormalCDF(z) + std*mathx.NormalPDF(z)
}

// PI is the probability-of-improvement acquisition for minimization:
// Pr(f(x) < best − ξ).
type PI struct {
	Xi float64
}

// Score implements Acquisition.
func (a PI) Score(mean, std, best float64) float64 {
	if std <= 0 {
		if mean < best-a.Xi {
			return 1
		}
		return 0
	}
	return mathx.NormalCDF((best - a.Xi - mean) / std)
}

// LCB is the lower-confidence-bound acquisition for minimization with a
// fixed β: score = −(mean − √β·std). GP-UCB and the paper's cRGP-UCB
// are LCB with iteration-dependent β schedules (see BetaSchedule).
type LCB struct {
	Beta float64
}

// Score implements Acquisition.
func (a LCB) Score(mean, std, _ float64) float64 {
	return -(mean - math.Sqrt(math.Max(a.Beta, 0))*std)
}

// BetaSchedule produces the per-iteration exploration weight β_t of
// confidence-bound acquisitions.
type BetaSchedule interface {
	Beta(n int, rng *rand.Rand) float64
}

// GPUCBSchedule is the deterministic schedule of Srinivas et al. (2009):
// β_n = 2·log(n²·π²/(6δ)). It guarantees sublinear regret but grows
// large, which over-explores — the behaviour the paper's Fig. 22
// demonstrates.
type GPUCBSchedule struct {
	Delta float64 // confidence parameter, e.g. 0.1
}

// Beta implements BetaSchedule.
func (s GPUCBSchedule) Beta(n int, _ *rand.Rand) float64 {
	if n < 1 {
		n = 1
	}
	delta := s.Delta
	if delta <= 0 {
		delta = 0.1
	}
	return 2 * math.Log(float64(n*n)*math.Pi*math.Pi/(6*delta))
}

// CRGPUCBSchedule is the paper's clipped randomized GP-UCB (§6.2,
// Eq. 13, after Berk et al. 2020): β_t ~ Γ(κ_t, ρ) with
// κ_t = log((n²+1)/√(2π)) / log(1 + ρ/2), clipped to [0, B]. The
// distributional β keeps the Bayesian regret bound while allowing far
// smaller exploration weights than GP-UCB — the conservative behaviour
// online slices need.
type CRGPUCBSchedule struct {
	Rho float64 // scale parameter ρ (paper: 0.1)
	B   float64 // clip bound (paper: 10)
}

// Kappa returns κ_t for iteration n.
func (s CRGPUCBSchedule) Kappa(n int) float64 {
	if n < 1 {
		n = 1
	}
	rho := s.rho()
	return math.Log(float64(n*n+1)/math.Sqrt(2*math.Pi)) / math.Log(1+rho/2)
}

func (s CRGPUCBSchedule) rho() float64 {
	if s.Rho <= 0 {
		return 0.1
	}
	return s.Rho
}

func (s CRGPUCBSchedule) bound() float64 {
	if s.B <= 0 {
		return 10
	}
	return s.B
}

// Beta implements BetaSchedule: a Gamma draw with shape κ_t and scale ρ,
// clipped to [0, B].
func (s CRGPUCBSchedule) Beta(n int, rng *rand.Rand) float64 {
	kappa := s.Kappa(n)
	if kappa <= 0 {
		kappa = 1e-3
	}
	beta := mathx.SampleGamma(rng, kappa, s.rho())
	return mathx.Clip(beta, 0, s.bound())
}
