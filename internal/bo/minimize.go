package bo

import (
	"math"
	"math/rand"
	"sync"

	"github.com/atlas-slicing/atlas/internal/mathx"
)

// Minimizer runs Bayesian optimization of an expensive black-box
// objective. With Acq nil it uses (parallel) Thompson sampling — the
// paper's PTS; with an Acquisition set it scores a candidate pool on the
// surrogate posterior instead.
type Minimizer struct {
	Surrogate Surrogate
	// Sample draws one candidate from the feasible set.
	Sample func(rng *rand.Rand) []float64
	// Objective evaluates a candidate (the expensive query). It must be
	// safe for concurrent calls when Batch > 1.
	Objective func(x []float64) float64

	// Pool is the number of random candidates scored per selection
	// (paper: "tens of thousands"; scaled down by default).
	Pool int
	// Batch is the number of parallel queries per iteration (the
	// paper's parallel Thompson sampling with multiprocessing).
	Batch int
	// ExploreIters is the number of initial iterations with uniformly
	// random queries (paper: first 100 iterations are purely
	// exploration).
	ExploreIters int
	// Acq, when non-nil, replaces Thompson sampling for selection.
	Acq Acquisition
}

// History records the optimization trajectory.
type History struct {
	Xs [][]float64 // every queried candidate, in order
	Ys []float64   // corresponding objective values

	// IterMean[i] is the mean objective value of iteration i's batch —
	// the "average weighted discrepancy" curve of Figs. 8 and 13.
	IterMean []float64

	BestX []float64
	BestY float64
}

// observe appends a query result and updates the incumbent.
func (h *History) observe(x []float64, y float64) {
	h.Xs = append(h.Xs, x)
	h.Ys = append(h.Ys, y)
	if len(h.Xs) == 1 || y < h.BestY {
		h.BestY = y
		h.BestX = append([]float64(nil), x...)
	}
}

// BestSoFar returns the running-minimum curve over queries.
func (h *History) BestSoFar() []float64 {
	out := make([]float64, len(h.Ys))
	best := math.Inf(1)
	for i, y := range h.Ys {
		if y < best {
			best = y
		}
		out[i] = best
	}
	return out
}

// Run executes iters iterations and returns the trajectory. Each
// iteration selects Batch candidates (random during warmup, otherwise by
// Thompson sampling or the acquisition), evaluates them concurrently,
// and refits the surrogate.
func (m *Minimizer) Run(iters int, rng *rand.Rand) *History {
	pool := m.Pool
	if pool <= 0 {
		pool = 2000
	}
	batch := m.Batch
	if batch <= 0 {
		batch = 1
	}
	h := &History{BestY: math.Inf(1)}

	for it := 0; it < iters; it++ {
		var picks [][]float64
		switch {
		case it < m.ExploreIters || len(h.Xs) == 0:
			for b := 0; b < batch; b++ {
				picks = append(picks, m.Sample(rng))
			}
		case m.Acq != nil:
			picks = m.selectAcq(pool, batch, h, rng)
		default:
			picks = m.selectThompson(pool, batch, rng)
		}

		ys := m.evaluate(picks)
		var sum float64
		for i, x := range picks {
			h.observe(x, ys[i])
			sum += ys[i]
		}
		h.IterMean = append(h.IterMean, sum/float64(len(picks)))

		if err := m.Surrogate.Fit(h.Xs, h.Ys); err != nil {
			// A degenerate fit (e.g. duplicate points) falls back to
			// exploration next iteration rather than aborting the run.
			continue
		}
	}
	return h
}

// selectThompson draws one surrogate function per batch slot and
// minimizes it over a fresh candidate pool (parallel Thompson
// sampling).
func (m *Minimizer) selectThompson(pool, batch int, rng *rand.Rand) [][]float64 {
	candidates := m.pool(pool, rng)
	picks := make([][]float64, batch)
	for b := 0; b < batch; b++ {
		draw := m.Surrogate.DrawFunc(rng)
		best, bestVal := candidates[0], math.Inf(1)
		for _, c := range candidates {
			if v := draw(c); v < bestVal {
				best, bestVal = c, v
			}
		}
		picks[b] = best
	}
	return picks
}

// selectAcq scores the pool with the acquisition on the surrogate
// posterior and returns the top-scoring candidates (distinct pool
// indices).
func (m *Minimizer) selectAcq(pool, batch int, h *History, rng *rand.Rand) [][]float64 {
	candidates := m.pool(pool, rng)
	type scored struct {
		idx   int
		score float64
	}
	scores := make([]scored, len(candidates))
	for i, c := range candidates {
		mean, std := m.Surrogate.Predict(c)
		scores[i] = scored{i, m.Acq.Score(mean, std, h.BestY)}
	}
	// Partial selection of the top `batch` scores.
	picks := make([][]float64, 0, batch)
	used := make(map[int]bool, batch)
	for b := 0; b < batch; b++ {
		bestIdx, bestScore := -1, math.Inf(-1)
		for _, s := range scores {
			if !used[s.idx] && s.score > bestScore {
				bestIdx, bestScore = s.idx, s.score
			}
		}
		if bestIdx < 0 {
			break
		}
		used[bestIdx] = true
		picks = append(picks, candidates[bestIdx])
	}
	return picks
}

func (m *Minimizer) pool(n int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = m.Sample(rng)
	}
	return out
}

// evaluate queries the objective for every pick, concurrently when the
// batch has more than one member.
func (m *Minimizer) evaluate(picks [][]float64) []float64 {
	ys := make([]float64, len(picks))
	if len(picks) == 1 {
		ys[0] = m.Objective(picks[0])
		return ys
	}
	var wg sync.WaitGroup
	for i := range picks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ys[i] = m.Objective(picks[i])
		}(i)
	}
	wg.Wait()
	return ys
}

// UnitSampler returns a Sample function drawing uniformly from [0,1]^dim
// — the normalized search boxes Atlas uses everywhere.
func UnitSampler(dim int) func(rng *rand.Rand) []float64 {
	return func(rng *rand.Rand) []float64 {
		x := make([]float64, dim)
		for i := range x {
			x[i] = rng.Float64()
		}
		return x
	}
}

// ClipUnit clamps a point into [0,1]^d in place and returns it.
func ClipUnit(x []float64) []float64 {
	for i := range x {
		x[i] = mathx.Clip(x[i], 0, 1)
	}
	return x
}
