// Package bo provides the Bayesian-optimization framework shared by all
// three Atlas stages: surrogate-model adapters (Bayesian neural network,
// Gaussian process), acquisition functions (EI, PI, GP-UCB, and the
// paper's clipped randomized GP-UCB), candidate pools, and a parallel
// Thompson-sampling minimizer.
package bo

import (
	"math/rand"

	"github.com/atlas-slicing/atlas/internal/bnn"
	"github.com/atlas-slicing/atlas/internal/gp"
)

// FuncDraw is one realized sample of the surrogate's posterior over
// functions. Thompson sampling draws one and optimizes it over a
// candidate pool. Draws must be safe for concurrent evaluation.
type FuncDraw func(x []float64) float64

// Surrogate is a probabilistic model of an expensive black-box function.
type Surrogate interface {
	// Fit conditions the model on all observations collected so far.
	Fit(xs [][]float64, ys []float64) error
	// Predict returns the posterior mean and standard deviation at x.
	Predict(x []float64) (mean, std float64)
	// DrawFunc samples one function realization for Thompson sampling.
	DrawFunc(rng *rand.Rand) FuncDraw
}

// BNNSurrogate adapts a Bayesian neural network to the Surrogate
// interface. Fit continues training from the current posterior (warm
// start), which is how the paper's loop behaves: "train the BNN with new
// added transitions".
type BNNSurrogate struct {
	Model *bnn.Model
	// FitEpochs is the number of passes over the collection per Fit.
	FitEpochs int
	// BatchSize is the minibatch size (paper: 128).
	BatchSize int
	// PredictSamples is the Monte Carlo sample count for Predict.
	PredictSamples int
	// RNG drives prediction-time sampling.
	RNG *rand.Rand
}

// NewBNNSurrogate wraps a model with the defaults used across the
// evaluation.
func NewBNNSurrogate(model *bnn.Model, rng *rand.Rand) *BNNSurrogate {
	return &BNNSurrogate{Model: model, FitEpochs: 20, BatchSize: 128, PredictSamples: 16, RNG: rng}
}

// Fit implements Surrogate.
func (s *BNNSurrogate) Fit(xs [][]float64, ys []float64) error {
	s.Model.Fit(xs, ys, s.FitEpochs, s.BatchSize)
	return nil
}

// Predict implements Surrogate.
func (s *BNNSurrogate) Predict(x []float64) (mean, std float64) {
	return s.Model.Predict(x, s.PredictSamples, s.RNG)
}

// DrawFunc implements Surrogate: a single reparameterized weight draw,
// i.e. "inferring the BNN only once" per Thompson sample (paper §4.2).
func (s *BNNSurrogate) DrawFunc(rng *rand.Rand) FuncDraw {
	d := s.Model.Draw(rng)
	return func(x []float64) float64 { return s.Model.Eval(d, x) }
}

// GPSurrogate adapts the Gaussian-process regressor to the Surrogate
// interface.
type GPSurrogate struct {
	Model *gp.Regressor
}

// NewGPSurrogate returns a Matérn-5/2 GP surrogate.
func NewGPSurrogate() *GPSurrogate {
	return &GPSurrogate{Model: gp.NewRegressor()}
}

// Fit implements Surrogate.
func (s *GPSurrogate) Fit(xs [][]float64, ys []float64) error {
	return s.Model.Fit(xs, ys)
}

// Predict implements Surrogate.
func (s *GPSurrogate) Predict(x []float64) (mean, std float64) {
	return s.Model.Predict(x)
}

// DrawFunc implements Surrogate with independent-marginal posterior
// draws (the standard large-pool approximation to GP Thompson
// sampling). Each DrawFunc call derives its own RNG stream so the draw
// is safe for concurrent evaluation.
func (s *GPSurrogate) DrawFunc(rng *rand.Rand) FuncDraw {
	seed := rng.Int63()
	return func(x []float64) float64 {
		// Hash the point into the stream so repeated evaluations of the
		// same draw at the same x agree.
		h := seed
		for _, v := range x {
			h = h*31 + int64(v*1e6)
		}
		r := rand.New(rand.NewSource(h))
		return s.Model.Sample(x, r)
	}
}
