package bo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/atlas-slicing/atlas/internal/bnn"
	"github.com/atlas-slicing/atlas/internal/mathx"
)

func TestEIProperties(t *testing.T) {
	acq := EI{}
	// Non-negative everywhere.
	f := func(mean, std, best float64) bool {
		if math.IsNaN(mean) || math.IsNaN(std) || math.IsNaN(best) {
			return true
		}
		if math.Abs(mean) > 1e6 || math.Abs(best) > 1e6 || math.Abs(std) > 1e6 {
			return true
		}
		return acq.Score(mean, math.Abs(std), best) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// More uncertainty at equal mean means more expected improvement.
	lo := acq.Score(1.0, 0.1, 1.0)
	hi := acq.Score(1.0, 1.0, 1.0)
	if hi <= lo {
		t.Fatalf("EI should grow with std: %v vs %v", lo, hi)
	}
	// Deterministic point below the incumbent scores its gap.
	if got := acq.Score(0.3, 0, 1.0); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("deterministic EI = %v", got)
	}
}

func TestPIRange(t *testing.T) {
	acq := PI{}
	f := func(mean, std, best float64) bool {
		if math.IsNaN(mean) || math.IsNaN(std) || math.IsNaN(best) {
			return true
		}
		s := acq.Score(mean, math.Abs(std), best)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if got := acq.Score(0, 0, 1); got != 1 {
		t.Fatalf("certain improvement PI = %v", got)
	}
	if got := acq.Score(2, 0, 1); got != 0 {
		t.Fatalf("certain non-improvement PI = %v", got)
	}
}

func TestLCBPrefersLowMeanAndHighStd(t *testing.T) {
	acq := LCB{Beta: 4}
	if acq.Score(1, 0.5, 0) <= acq.Score(2, 0.5, 0) {
		t.Fatal("LCB must prefer lower mean")
	}
	if acq.Score(1, 1.0, 0) <= acq.Score(1, 0.5, 0) {
		t.Fatal("LCB must prefer higher std (optimism)")
	}
}

func TestGPUCBScheduleGrows(t *testing.T) {
	s := GPUCBSchedule{Delta: 0.1}
	rng := rand.New(rand.NewSource(1))
	prev := 0.0
	for n := 1; n <= 100; n *= 2 {
		b := s.Beta(n, rng)
		if b <= prev {
			t.Fatalf("GP-UCB beta not growing at n=%d", n)
		}
		prev = b
	}
}

func TestCRGPUCBClipped(t *testing.T) {
	s := CRGPUCBSchedule{Rho: 0.1, B: 10}
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 200; n += 13 {
		b := s.Beta(n, rng)
		if b < 0 || b > 10 {
			t.Fatalf("beta %v outside [0, 10] at n=%d", b, n)
		}
	}
}

func TestCRGPUCBSmallerThanGPUCB(t *testing.T) {
	// The clipped randomized schedule must explore less than the
	// deterministic one at moderate n (the paper's whole point).
	cr := CRGPUCBSchedule{Rho: 0.1, B: 10}
	gp := GPUCBSchedule{Delta: 0.1}
	rng := rand.New(rand.NewSource(3))
	var crSum, gpSum float64
	const n = 50
	for i := 1; i <= n; i++ {
		crSum += cr.Beta(i, rng)
		gpSum += gp.Beta(i, rng)
	}
	if crSum >= gpSum {
		t.Fatalf("cRGP-UCB mean beta %v not below GP-UCB %v", crSum/n, gpSum/n)
	}
}

func TestCRGPUCBKappaPositive(t *testing.T) {
	s := CRGPUCBSchedule{Rho: 0.1, B: 10}
	// κ_1 = log(2/√2π)/log(1+ρ/2) is negative by the paper's formula;
	// Beta clamps it. From n ≥ 2 the shape must be positive and
	// increasing.
	prev := 0.0
	for n := 2; n < 1000; n += 50 {
		k := s.Kappa(n)
		if k <= 0 {
			t.Fatalf("kappa not positive at n=%d", n)
		}
		if k <= prev {
			t.Fatalf("kappa not increasing at n=%d", n)
		}
		prev = k
	}
	// n=1 must still yield a valid clipped beta.
	b := s.Beta(1, rand.New(rand.NewSource(10)))
	if b < 0 || b > 10 {
		t.Fatalf("beta at n=1 = %v", b)
	}
}

func quadratic(x []float64) float64 {
	return (x[0]-0.3)*(x[0]-0.3) + (x[1]-0.6)*(x[1]-0.6)
}

func TestMinimizerBNNThompson(t *testing.T) {
	min := &Minimizer{
		Surrogate:    NewBNNSurrogate(bnn.New(2, bnn.DefaultOptions(), mathx.NewRNG(4)), mathx.NewRNG(5)),
		Sample:       UnitSampler(2),
		Objective:    quadratic,
		Pool:         500,
		Batch:        4,
		ExploreIters: 5,
	}
	h := min.Run(25, mathx.NewRNG(6))
	if h.BestY > 0.05 {
		t.Fatalf("BNN-TS best %v at %v, want near 0", h.BestY, h.BestX)
	}
	if len(h.Ys) != 25*4 {
		t.Fatalf("expected 100 queries, got %d", len(h.Ys))
	}
	if len(h.IterMean) != 25 {
		t.Fatalf("expected 25 iteration means, got %d", len(h.IterMean))
	}
}

func TestMinimizerGPEI(t *testing.T) {
	min := &Minimizer{
		Surrogate:    NewGPSurrogate(),
		Sample:       UnitSampler(2),
		Objective:    quadratic,
		Pool:         500,
		Batch:        1,
		ExploreIters: 5,
		Acq:          EI{},
	}
	h := min.Run(30, mathx.NewRNG(7))
	if h.BestY > 0.01 {
		t.Fatalf("GP-EI best %v, want near 0", h.BestY)
	}
}

func TestBestSoFarMonotone(t *testing.T) {
	h := &History{}
	for _, y := range []float64{3, 1, 2, 0.5, 4} {
		h.observe([]float64{y}, y)
	}
	curve := h.BestSoFar()
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Fatalf("best-so-far increased at %d: %v", i, curve)
		}
	}
	if h.BestY != 0.5 {
		t.Fatalf("BestY = %v", h.BestY)
	}
}

func TestHistoryBestXCopied(t *testing.T) {
	h := &History{}
	x := []float64{1, 2}
	h.observe(x, 5)
	x[0] = 99
	if h.BestX[0] == 99 {
		t.Fatal("BestX aliases observed slice")
	}
}

func TestUnitSamplerInRange(t *testing.T) {
	s := UnitSampler(4)
	rng := mathx.NewRNG(8)
	for i := 0; i < 100; i++ {
		x := s(rng)
		if len(x) != 4 {
			t.Fatalf("dim = %d", len(x))
		}
		for _, v := range x {
			if v < 0 || v > 1 {
				t.Fatalf("sample %v out of unit box", v)
			}
		}
	}
}

func TestGPSurrogateDrawDeterministicPerPoint(t *testing.T) {
	s := NewGPSurrogate()
	if err := s.Fit([][]float64{{0}, {1}}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	draw := s.DrawFunc(mathx.NewRNG(9))
	x := []float64{0.5}
	if draw(x) != draw(x) {
		t.Fatal("one GP draw must be stable at a point")
	}
}

func TestClipUnit(t *testing.T) {
	x := ClipUnit([]float64{-0.5, 0.5, 1.5})
	if x[0] != 0 || x[1] != 0.5 || x[2] != 1 {
		t.Fatalf("ClipUnit = %v", x)
	}
}
