package topology

import "github.com/atlas-slicing/atlas/internal/slicing"

// Request is one arrival's placement input: the envelope demand the
// admission would reserve, the arrival's home site, and its economics
// (value-aware policies may use them; the built-ins don't need to).
type Request struct {
	ID     string
	Demand slicing.Demand
	// Home is the arrival's home cell — where its users attach.
	Home slicing.SiteID
	// Value and PredictedQoE mirror the admission context.
	Value        float64
	PredictedQoE float64
}

// Policy picks the host site for an arrival before the admission
// pipeline runs against that site's ledger. Implementations must be
// deterministic pure functions of (graph, ledger state, request) — the
// control plane's bit-identical replay depends on it.
//
// Place always returns a target site: when fits is false the demand
// does not currently fit there, but the site is still the policy's
// arbitration target — the admission pipeline may downscale that
// site's elastic tenants and retry.
//
// Every built-in scores one FreeAllSites snapshot: a single lock, one
// summation of the reservation book, and an atomic view across sites.
type Policy interface {
	Name() string
	Place(g *Graph, led *slicing.TopologyLedger, req Request) (site slicing.SiteID, fits bool)
}

// freest returns the snapshot's site with the most free local RAN, in
// snapshot (topology) order on ties — the shared fallback arbitration
// target when nothing fits.
func freest(frees []slicing.SiteFree) slicing.SiteID {
	best, bestFree := frees[0].Site, -1.0
	for _, f := range frees {
		if f.Free.RanPRB > bestFree {
			best, bestFree = f.Site, f.Free.RanPRB
		}
	}
	return best
}

// FirstFit places at the first site in graph order where the demand
// fits — the packing baseline that fills early sites regardless of
// where the arrival's users actually are.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "first-fit" }

// Place implements Policy.
func (FirstFit) Place(g *Graph, led *slicing.TopologyLedger, req Request) (slicing.SiteID, bool) {
	frees := led.FreeAllSites()
	for _, f := range frees {
		if req.Demand.Fits(f.Free) {
			return f.Site, true
		}
	}
	return freest(frees), false
}

// BestFit is the bin-packing policy: among fitting sites it picks the
// one whose local RAN headroom after placement would be smallest,
// keeping large contiguous headroom free for bulky future arrivals.
type BestFit struct{}

// Name implements Policy.
func (BestFit) Name() string { return "best-fit" }

// Place implements Policy.
func (BestFit) Place(g *Graph, led *slicing.TopologyLedger, req Request) (slicing.SiteID, bool) {
	frees := led.FreeAllSites()
	best, bestLeft := slicing.SiteID(""), -1.0
	for _, f := range frees {
		if !req.Demand.Fits(f.Free) {
			continue
		}
		left := f.Free.RanPRB - req.Demand.RanPRB
		if best == "" || left < bestLeft {
			best, bestLeft = f.Site, left
		}
	}
	if best != "" {
		return best, true
	}
	return freest(frees), false
}

// Spread is the fault-isolation policy: among fitting sites it picks
// the one with the most free local RAN, balancing load so no single
// site failure takes out a disproportionate share of the fleet.
type Spread struct{}

// Name implements Policy.
func (Spread) Name() string { return "spread" }

// Place implements Policy.
func (Spread) Place(g *Graph, led *slicing.TopologyLedger, req Request) (slicing.SiteID, bool) {
	frees := led.FreeAllSites()
	best, bestFree := slicing.SiteID(""), -1.0
	for _, f := range frees {
		if !req.Demand.Fits(f.Free) {
			continue
		}
		if f.Free.RanPRB > bestFree {
			best, bestFree = f.Site, f.Free.RanPRB
		}
	}
	if best != "" {
		return best, true
	}
	return freest(frees), false
}

// Locality is the locality-aware scoring policy: among fitting sites
// it prefers the arrival's home cell, then the fewest transport hops
// from home (each hop costs delivered QoE — see Graph.QoEFactor), and
// breaks hop ties toward the freest site so nearby load stays
// balanced. When nothing fits it targets the home site, so site-local
// arbitration frees capacity where the arrival's users actually are.
type Locality struct{}

// Name implements Policy.
func (Locality) Name() string { return "locality" }

// Place implements Policy.
func (Locality) Place(g *Graph, led *slicing.TopologyLedger, req Request) (slicing.SiteID, bool) {
	frees := led.FreeAllSites()
	best, bestHops, bestFree := slicing.SiteID(""), 0, 0.0
	for _, f := range frees {
		if !req.Demand.Fits(f.Free) {
			continue
		}
		hops := g.Hops(req.Home, f.Site)
		if best == "" || hops < bestHops || (hops == bestHops && f.Free.RanPRB > bestFree) {
			best, bestHops, bestFree = f.Site, hops, f.Free.RanPRB
		}
	}
	if best != "" {
		return best, true
	}
	if i := g.siteIdx(req.Home); i >= 0 {
		return g.Sites[i].ID, false
	}
	return freest(frees), false
}

// PolicyByName resolves a placement policy from its CLI name.
func PolicyByName(name string) (Policy, bool) {
	switch name {
	case "first-fit":
		return FirstFit{}, true
	case "best-fit":
		return BestFit{}, true
	case "spread":
		return Spread{}, true
	case "locality":
		return Locality{}, true
	}
	return nil, false
}

// PolicyNames lists the registered placement policies.
func PolicyNames() []string {
	return []string{"first-fit", "best-fit", "spread", "locality"}
}
