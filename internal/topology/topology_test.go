package topology

import (
	"testing"

	"github.com/atlas-slicing/atlas/internal/slicing"
)

func TestGraphValidation(t *testing.T) {
	if _, err := New("empty", nil, nil, 10, 1, 0.1); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := New("dup", []Site{{ID: "a", Cells: 1}, {ID: "a", Cells: 1}}, nil, 10, 1, 0.1); err == nil {
		t.Fatal("duplicate site id accepted")
	}
	if _, err := New("badlink", []Site{{ID: "a", Cells: 1}}, []Link{{A: "a", B: "ghost"}}, 10, 1, 0.1); err == nil {
		t.Fatal("dangling link accepted")
	}
	if _, err := New("badpen", []Site{{ID: "a", Cells: 1}}, nil, 10, 1, 1.5); err == nil {
		t.Fatal("hop penalty >= 1 accepted")
	}
}

func TestHopsAndQoEFactor(t *testing.T) {
	g, err := Hotspot("h", 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Hops("hot", "cold-1"); got != 1 {
		t.Fatalf("hot-cold hops = %d", got)
	}
	if got := g.Hops("cold-1", "cold-3"); got != 2 {
		t.Fatalf("leaf-leaf hops = %d, want 2 (via the hub)", got)
	}
	if got := g.QoEFactor("cold-1", "cold-1"); got != 1 {
		t.Fatalf("home factor = %v", got)
	}
	if got := g.QoEFactor("cold-1", "cold-3"); got != 1-2*DefaultHopPenalty {
		t.Fatalf("2-hop factor = %v", got)
	}
	// Disconnected sites are "far" but the factor stays defined.
	iso := MustNew("iso", []Site{{ID: "a", Cells: 1}, {ID: "b", Cells: 1}}, nil, 10, 1, 0.6)
	if got := iso.Hops("a", "b"); got != 2 {
		t.Fatalf("disconnected hops = %d, want len(sites)", got)
	}
	if got := iso.QoEFactor("a", "b"); got != 0 {
		t.Fatalf("far factor = %v, want floored at 0", got)
	}
}

func TestGridShapeAndAggregateCapacity(t *testing.T) {
	g, err := Grid("g", 2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Sites) != 6 || g.TotalCells() != 6 {
		t.Fatalf("grid sites = %d cells = %v", len(g.Sites), g.TotalCells())
	}
	// Corner-to-corner Manhattan distance on a 2x3 lattice.
	if got := g.Hops("r0c0", "r1c2"); got != 3 {
		t.Fatalf("corner hops = %d", got)
	}
	// A graph of c total cells aggregates to exactly CellCapacity(c),
	// which is what keeps equal-total-capacity comparisons honest.
	if got, want := g.TotalCapacity(), slicing.CellCapacity(6); got != want {
		t.Fatalf("aggregate capacity %v != CellCapacity %v", got, want)
	}
	// GridN honors non-rectangular counts exactly: 5 sites = one full
	// row of 3 plus a partial row of 2, still connected.
	gn, err := GridN("gn", 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gn.Sites) != 5 || gn.TotalCells() != 5 {
		t.Fatalf("GridN(5) = %d sites, %v cells", len(gn.Sites), gn.TotalCells())
	}
	if got := gn.Hops("r0c2", "r1c0"); got != 3 {
		t.Fatalf("partial-grid hops = %d, want 3", got)
	}
	// Edge-constrained ring: same RAN/transport, scaled-down compute.
	r, err := Ring("r", 4, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	full := slicing.CellCapacity(4)
	if got := r.TotalCapacity(); got.CnCPU != full.CnCPU*0.5 || got.RanPRB != full.RanPRB {
		t.Fatalf("ring capacity = %v", got)
	}
}

// placeReq is a fixed-size placement request for the policy tests.
func placeReq(home slicing.SiteID, ran float64) Request {
	return Request{ID: "req", Demand: slicing.Demand{RanPRB: ran, TnMbps: 5, CnCPU: 0.05}, Home: home}
}

func TestPlacementPolicies(t *testing.T) {
	g := MustNew("p",
		[]Site{{ID: "a", Cells: 1}, {ID: "b", Cells: 1}, {ID: "c", Cells: 1}},
		[]Link{{A: "a", B: "b"}, {A: "b", B: "c"}},
		300, 3, DefaultHopPenalty)
	led := g.NewLedger()
	// Pre-load: a is half full, b lightly loaded, c empty.
	if !led.ReserveAt("a", "x", slicing.Demand{RanPRB: 50}) || !led.ReserveAt("b", "y", slicing.Demand{RanPRB: 20}) {
		t.Fatal("setup reservations failed")
	}

	cases := []struct {
		policy Policy
		req    Request
		want   slicing.SiteID
		fits   bool
	}{
		// First-fit packs graph order: a still fits 40.
		{FirstFit{}, placeReq("c", 40), "a", true},
		// Best-fit picks the tightest bin: a leaves 10 free, b 40, c 60.
		{BestFit{}, placeReq("c", 40), "a", true},
		// Spread picks the freest site.
		{Spread{}, placeReq("a", 40), "c", true},
		// Locality prefers home while it fits...
		{Locality{}, placeReq("b", 40), "b", true},
		// ...falls to the nearest fitting neighbor when home is full...
		{Locality{}, placeReq("a", 60), "b", true},
		// ...and targets home for arbitration when nothing fits.
		{Locality{}, placeReq("a", 120), "a", false},
		// First-fit's arbitration target is the freest site.
		{FirstFit{}, placeReq("a", 120), "c", false},
	}
	for _, tc := range cases {
		site, fits := tc.policy.Place(g, led, tc.req)
		if site != tc.want || fits != tc.fits {
			t.Fatalf("%s.Place(home=%s ran=%v) = %s,%v want %s,%v",
				tc.policy.Name(), tc.req.Home, tc.req.Demand.RanPRB, site, fits, tc.want, tc.fits)
		}
	}

	// Every registered policy resolves by name and is deterministic.
	for _, name := range PolicyNames() {
		p, ok := PolicyByName(name)
		if !ok || p.Name() != name {
			t.Fatalf("PolicyByName(%q) = %v, %v", name, p, ok)
		}
		s1, f1 := p.Place(g, led, placeReq("b", 30))
		s2, f2 := p.Place(g, led, placeReq("b", 30))
		if s1 != s2 || f1 != f2 {
			t.Fatalf("%s is not deterministic", name)
		}
	}
}
