// Package topology models the multi-cell infrastructure the fleet
// control plane places slices onto: a deterministic graph of cell/edge
// sites, each owning its local RAN capacity (the PRBs of its cells),
// joined by transport links and sharing regional transport-bandwidth
// and edge-compute tiers. Placement — which site hosts an arriving
// slice — is a first-class decision ahead of admission (see
// placement.go): the slice-creation literature treats instantiation
// location as part of the creation phase, and a single aggregated pool
// overstates what a placed fleet can achieve because RAN headroom
// fragments across sites. Hosting a slice away from its home site
// costs delivered QoE per transport hop (QoEFactor), which is what
// makes locality-aware placement earn more QoE-weighted value than
// blind packing at equal total capacity.
package topology

import (
	"fmt"

	"github.com/atlas-slicing/atlas/internal/slicing"
)

// DefaultHopPenalty is the per-hop delivered-QoE multiplier penalty
// for hosting a slice away from its home site: each transport hop
// between home and host costs this fraction of delivered QoE.
const DefaultHopPenalty = 0.1

// Site is one cell/edge site of the infrastructure graph.
type Site struct {
	ID slicing.SiteID
	// Cells is the site's RAN size in prototype cells: each cell offers
	// one full configuration space of uplink+downlink PRBs.
	Cells float64
}

// Link is an undirected transport adjacency between two sites.
type Link struct {
	A, B slicing.SiteID
}

// Graph is a deterministic cell/edge-site graph: sites with local RAN
// capacity, transport links between them, and the shared regional
// tiers. Build one with New (or the Grid/Hotspot/Ring constructors)
// and hand its ledger to the admission pipeline.
type Graph struct {
	Name  string
	Sites []Site
	Links []Link
	// SharedTnMbps and SharedCnCPU are the regional transport and edge
	// compute tiers every site shares.
	SharedTnMbps float64
	SharedCnCPU  float64
	// HopPenalty is the per-hop delivered-QoE penalty of non-home
	// placement (see QoEFactor).
	HopPenalty float64

	idx  map[slicing.SiteID]int
	hops [][]int
}

// New validates and finishes a graph: site ids must be unique and
// non-empty, links must reference known sites, and the all-pairs hop
// distances are precomputed (unreachable pairs count as len(Sites)
// hops — "far", but still finite so QoEFactor stays defined).
func New(name string, sites []Site, links []Link, tnMbps, cnCPU, hopPenalty float64) (*Graph, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("topology: graph %q has no sites", name)
	}
	if hopPenalty < 0 || hopPenalty >= 1 {
		return nil, fmt.Errorf("topology: graph %q hop penalty %v outside [0, 1)", name, hopPenalty)
	}
	g := &Graph{
		Name:         name,
		Sites:        append([]Site(nil), sites...),
		Links:        append([]Link(nil), links...),
		SharedTnMbps: tnMbps,
		SharedCnCPU:  cnCPU,
		HopPenalty:   hopPenalty,
		idx:          make(map[slicing.SiteID]int, len(sites)),
	}
	for i, s := range g.Sites {
		if s.ID == "" {
			return nil, fmt.Errorf("topology: graph %q site %d has an empty id", name, i)
		}
		if s.Cells <= 0 {
			return nil, fmt.Errorf("topology: graph %q site %q has %v cells", name, s.ID, s.Cells)
		}
		if _, dup := g.idx[s.ID]; dup {
			return nil, fmt.Errorf("topology: graph %q duplicate site id %q", name, s.ID)
		}
		g.idx[s.ID] = i
	}
	adj := make([][]int, len(g.Sites))
	for _, l := range g.Links {
		a, aok := g.idx[l.A]
		b, bok := g.idx[l.B]
		if !aok || !bok {
			return nil, fmt.Errorf("topology: graph %q link %q-%q references an unknown site", name, l.A, l.B)
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	// All-pairs BFS: graphs are a handful of sites, so O(n·(n+e)) is
	// free and the placement hot path never searches.
	far := len(g.Sites)
	g.hops = make([][]int, len(g.Sites))
	for s := range g.Sites {
		dist := make([]int, len(g.Sites))
		for i := range dist {
			dist[i] = far
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if dist[v] > dist[u]+1 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		g.hops[s] = dist
	}
	return g, nil
}

// MustNew is New for static topology catalogs, panicking on invalid
// construction.
func MustNew(name string, sites []Site, links []Link, tnMbps, cnCPU, hopPenalty float64) *Graph {
	g, err := New(name, sites, links, tnMbps, cnCPU, hopPenalty)
	if err != nil {
		panic(err)
	}
	return g
}

// TotalCells sums the sites' RAN sizes.
func (g *Graph) TotalCells() float64 {
	var total float64
	for _, s := range g.Sites {
		total += s.Cells
	}
	return total
}

// SiteIDs returns the site ids in graph order.
func (g *Graph) SiteIDs() []slicing.SiteID {
	out := make([]slicing.SiteID, len(g.Sites))
	for i, s := range g.Sites {
		out[i] = s.ID
	}
	return out
}

// cellRanPRB is the RAN PRB budget of one prototype cell (one full
// configuration space of uplink plus downlink PRBs).
func cellRanPRB() float64 {
	maxc := slicing.DefaultConfigSpace().Max
	return maxc.BandwidthUL + maxc.BandwidthDL
}

// Capacity returns the graph as a ledger topology: each site's cells
// converted to local RAN PRBs, the shared tiers passed through.
func (g *Graph) Capacity() slicing.TopologyCapacity {
	prb := cellRanPRB()
	tc := slicing.TopologyCapacity{TnMbps: g.SharedTnMbps, CnCPU: g.SharedCnCPU}
	for _, s := range g.Sites {
		tc.Sites = append(tc.Sites, slicing.SiteCapacity{ID: s.ID, RanPRB: s.Cells * prb})
	}
	return tc
}

// TotalCapacity returns the aggregated per-domain capacity — what an
// equal-capacity single-pool comparison runs against.
func (g *Graph) TotalCapacity() slicing.Capacity { return g.Capacity().Total() }

// NewLedger builds an empty reservation ledger over the graph.
func (g *Graph) NewLedger() *slicing.TopologyLedger {
	return slicing.NewTopologyLedger(g.Capacity())
}

// Hops returns the transport hop distance between two sites ("" =
// first site; unknown sites count as far).
func (g *Graph) Hops(a, b slicing.SiteID) int {
	ai, bi := g.siteIdx(a), g.siteIdx(b)
	if ai < 0 || bi < 0 {
		return len(g.Sites)
	}
	return g.hops[ai][bi]
}

// QoEFactor is the delivered-QoE multiplier of hosting a slice with
// the given home at the given host site: 1 at home, reduced by
// HopPenalty per transport hop, floored at zero.
func (g *Graph) QoEFactor(home, host slicing.SiteID) float64 {
	f := 1 - g.HopPenalty*float64(g.Hops(home, host))
	if f < 0 {
		return 0
	}
	return f
}

// siteIdx resolves a SiteID ("" = first site) to its index, or -1.
func (g *Graph) siteIdx(id slicing.SiteID) int {
	if id == "" {
		return 0
	}
	if i, ok := g.idx[id]; ok {
		return i
	}
	return -1
}

// sharedTiers sizes the regional transport/compute tiers to the total
// cell count — the same per-cell budgets slicing.CellCapacity uses, so
// a graph of c total cells aggregates to exactly CellCapacity(c).
func sharedTiers(totalCells float64) (tnMbps, cnCPU float64) {
	maxc := slicing.DefaultConfigSpace().Max
	return totalCells * maxc.BackhaulMbps, totalCells * maxc.CPURatio
}

// Grid builds a rows x cols lattice of uniform sites (4-neighbor
// adjacency), cellsPerSite cells each, with shared tiers sized to the
// total cell count. Site ids are "r<row>c<col>".
func Grid(name string, rows, cols int, cellsPerSite float64) (*Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("topology: grid %dx%d invalid", rows, cols)
	}
	var sites []Site
	var links []Link
	id := func(r, c int) slicing.SiteID {
		return slicing.SiteID(fmt.Sprintf("r%dc%d", r, c))
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			sites = append(sites, Site{ID: id(r, c), Cells: cellsPerSite})
			if r > 0 {
				links = append(links, Link{A: id(r-1, c), B: id(r, c)})
			}
			if c > 0 {
				links = append(links, Link{A: id(r, c-1), B: id(r, c)})
			}
		}
	}
	tn, cn := sharedTiers(cellsPerSite * float64(rows*cols))
	return New(name, sites, links, tn, cn, DefaultHopPenalty)
}

// GridN builds a near-square lattice with exactly sites sites: rows =
// floor(sqrt(sites)) full rows of ceil(sites/rows) columns, the last
// row partial when the count is not rectangular. Every site keeps its
// existing 4-neighbor links, so capacity scales exactly with the
// requested count instead of rounding up to a full rectangle.
func GridN(name string, sites int, cellsPerSite float64) (*Graph, error) {
	if sites < 1 {
		return nil, fmt.Errorf("topology: grid needs >= 1 site, got %d", sites)
	}
	rows := 1
	for (rows+1)*(rows+1) <= sites {
		rows++
	}
	cols := (sites + rows - 1) / rows
	var out []Site
	var links []Link
	id := func(r, c int) slicing.SiteID {
		return slicing.SiteID(fmt.Sprintf("r%dc%d", r, c))
	}
	for i := 0; i < sites; i++ {
		r, c := i/cols, i%cols
		out = append(out, Site{ID: id(r, c), Cells: cellsPerSite})
		if r > 0 {
			links = append(links, Link{A: id(r-1, c), B: id(r, c)})
		}
		if c > 0 {
			links = append(links, Link{A: id(r, c-1), B: id(r, c)})
		}
	}
	tn, cn := sharedTiers(cellsPerSite * float64(sites))
	return New(name, out, links, tn, cn, DefaultHopPenalty)
}

// Hotspot builds a star: one hot center site with hotCells, sites-1
// leaves with coldCells each, every leaf linked to the center (leaf to
// leaf is two hops). Shared tiers are sized to the total cell count.
func Hotspot(name string, sites int, hotCells, coldCells float64) (*Graph, error) {
	if sites < 2 {
		return nil, fmt.Errorf("topology: hotspot needs >= 2 sites, got %d", sites)
	}
	out := []Site{{ID: "hot", Cells: hotCells}}
	var links []Link
	for i := 1; i < sites; i++ {
		id := slicing.SiteID(fmt.Sprintf("cold-%d", i))
		out = append(out, Site{ID: id, Cells: coldCells})
		links = append(links, Link{A: "hot", B: id})
	}
	tn, cn := sharedTiers(hotCells + coldCells*float64(sites-1))
	return New(name, out, links, tn, cn, DefaultHopPenalty)
}

// Ring builds a cycle of uniform sites with the shared compute tier
// scaled by cnScale — cnScale < 1 models an edge-constrained region
// where RAN is ample but the shared edge compute is the bottleneck.
func Ring(name string, sites int, cellsPerSite, cnScale float64) (*Graph, error) {
	if sites < 3 {
		return nil, fmt.Errorf("topology: ring needs >= 3 sites, got %d", sites)
	}
	var out []Site
	var links []Link
	for i := 0; i < sites; i++ {
		out = append(out, Site{ID: slicing.SiteID(fmt.Sprintf("edge-%d", i)), Cells: cellsPerSite})
		if i > 0 {
			links = append(links, Link{A: out[i-1].ID, B: out[i].ID})
		}
	}
	links = append(links, Link{A: out[sites-1].ID, B: out[0].ID})
	tn, cn := sharedTiers(cellsPerSite * float64(sites))
	return New(name, out, links, tn, cn*cnScale, DefaultHopPenalty)
}
