package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type artifact struct {
	Name  string    `json:"name"`
	Curve []float64 `json:"curve"`
}

func testKey() string {
	return Fingerprint(struct{ A string }{"round-trip"})
}

// TestStoreRoundTrip: Put then Get returns the artifact bit-identically,
// from memory and — via a fresh store over the same directory — from
// disk.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := artifact{Name: "policy", Curve: []float64{0.25, 0.5, 0.125}}
	key := testKey()
	if err := s.Put(KindOffline, key, want); err != nil {
		t.Fatal(err)
	}

	var got artifact
	found, err := s.Get(KindOffline, key, &got)
	if err != nil || !found {
		t.Fatalf("memory get: found=%v err=%v", found, err)
	}
	if got.Name != want.Name || len(got.Curve) != 3 || got.Curve[2] != 0.125 {
		t.Fatalf("memory get mismatch: %+v", got)
	}

	// A second store over the same directory reads through to disk.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got = artifact{}
	found, err = s2.Get(KindOffline, key, &got)
	if err != nil || !found {
		t.Fatalf("disk get: found=%v err=%v", found, err)
	}
	if got.Curve[1] != 0.5 {
		t.Fatalf("disk get mismatch: %+v", got)
	}
	if st := s2.Stats(); st.Hits != 1 {
		t.Fatalf("stats after disk hit: %+v", st)
	}
}

// TestStoreMiss: absent artifacts are (false, nil) — a miss, not an
// error.
func TestStoreMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var got artifact
	found, err := s.Get(KindOffline, testKey(), &got)
	if found || err != nil {
		t.Fatalf("miss: found=%v err=%v", found, err)
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("stats after miss: %+v", st)
	}
}

// TestStoreTruncatedFile: a file cut mid-JSON yields a diagnostic, not
// a panic, and reports found=false so callers fall back to training.
func TestStoreTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey()
	if err := s.Put(KindOffline, key, artifact{Name: "x", Curve: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, KindOffline, key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir) // fresh store: no memory layer masking the disk
	if err != nil {
		t.Fatal(err)
	}
	var got artifact
	found, err := s2.Get(KindOffline, key, &got)
	if found {
		t.Fatal("truncated artifact reported as found")
	}
	if err == nil {
		t.Fatal("truncated artifact yielded no diagnostic")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats after corrupt read: %+v", st)
	}
}

// TestStoreWrongVersion: an envelope from a future (or past) layout is
// rejected with a diagnostic naming both versions.
func TestStoreWrongVersion(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	payload, _ := json.Marshal(artifact{Name: "x"})
	env, _ := json.Marshal(Envelope{Version: 99, Kind: KindOffline, Key: key, Payload: payload})
	if err := os.MkdirAll(filepath.Join(dir, KindOffline), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, KindOffline, key+".json"), env, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got artifact
	found, err := s.Get(KindOffline, key, &got)
	if found || err == nil {
		t.Fatalf("wrong version accepted: found=%v err=%v", found, err)
	}
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("diagnostic does not mention the version: %v", err)
	}
}

// TestStoreIdentityMismatch: a file copied under a different key (or
// kind) is detected through the envelope's stored identity.
func TestStoreIdentityMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keyA := Fingerprint(struct{ A string }{"a"})
	keyB := Fingerprint(struct{ A string }{"b"})
	if err := s.Put(KindOffline, keyA, artifact{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	// Simulate a misplaced artifact: the bytes for keyA land at keyB's
	// path.
	data, err := os.ReadFile(filepath.Join(dir, KindOffline, keyA+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, KindOffline, keyB+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got artifact
	found, err := s2.Get(KindOffline, keyB, &got)
	if found || err == nil {
		t.Fatalf("identity mismatch accepted: found=%v err=%v", found, err)
	}
	if !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("diagnostic does not mention the mismatch: %v", err)
	}
}

// TestStoreInMemory: a dirless store round-trips and misses cleanly.
func TestStoreInMemory(t *testing.T) {
	s := InMemory()
	key := testKey()
	if err := s.Put(KindOnline, key, artifact{Name: "gp"}); err != nil {
		t.Fatal(err)
	}
	var got artifact
	found, err := s.Get(KindOnline, key, &got)
	if !found || err != nil || got.Name != "gp" {
		t.Fatalf("in-memory round trip: found=%v err=%v got=%+v", found, err, got)
	}
	found, err = s.Get(KindOffline, key, &got)
	if found || err != nil {
		t.Fatalf("in-memory miss: found=%v err=%v", found, err)
	}
}

// TestStoreSanitize: identifiers that could escape the store root are
// rejected on both paths.
func TestStoreSanitize(t *testing.T) {
	s := InMemory()
	for _, bad := range []string{"", "../evil", "a/b", ".hidden", "a b"} {
		if err := s.Put(bad, testKey(), artifact{}); err == nil {
			t.Fatalf("kind %q accepted", bad)
		}
		if _, err := s.Get(KindOffline, bad, &artifact{}); err == nil {
			t.Fatalf("key %q accepted", bad)
		}
	}
}

// TestFingerprintDeterministicAndSensitive: equal values agree, any
// field change moves the address.
func TestFingerprintDeterministicAndSensitive(t *testing.T) {
	type fp struct {
		SLA     float64
		Traffic int
		Class   string
	}
	a := Fingerprint(fp{0.9, 2, "teleop"})
	b := Fingerprint(fp{0.9, 2, "teleop"})
	c := Fingerprint(fp{0.9, 3, "teleop"})
	if a != b {
		t.Fatalf("fingerprint not deterministic: %s vs %s", a, b)
	}
	if a == c {
		t.Fatal("fingerprint insensitive to traffic")
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint length %d", len(a))
	}
	if FingerprintSeed(a) == FingerprintSeed(c) {
		t.Fatal("fingerprint seeds collide for distinct fingerprints")
	}
	if FingerprintSeed(a) != FingerprintSeed(b) {
		t.Fatal("fingerprint seed not deterministic")
	}
}

// TestStoreConcurrentAccess: concurrent Put/Get on overlapping keys is
// race-free (exercised under -race in CI).
func TestStoreConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{
		Fingerprint(struct{ I int }{0}),
		Fingerprint(struct{ I int }{1}),
		Fingerprint(struct{ I int }{2}),
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := keys[(w+i)%len(keys)]
				if err := s.Put(KindOffline, key, artifact{Name: key}); err != nil {
					t.Error(err)
					return
				}
				var got artifact
				if _, err := s.Get(KindOffline, key, &got); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestStoreDelete: Delete tombstones an artifact in both layers — the
// in-memory cache and the disk file — and deleting a missing artifact
// is a clean no-op.
func TestStoreDelete(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey()
	if err := s.Put(KindOnline, key, artifact{Name: "gp"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(KindOnline, key); err != nil {
		t.Fatal(err)
	}
	var got artifact
	if found, err := s.Get(KindOnline, key, &got); found || err != nil {
		t.Fatalf("deleted artifact still readable: found=%v err=%v", found, err)
	}
	if _, err := os.Stat(filepath.Join(dir, KindOnline, key+".json")); !os.IsNotExist(err) {
		t.Fatalf("disk file survived delete: %v", err)
	}
	// A fresh handle over the same directory must not resurrect it.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if found, _ := s2.Get(KindOnline, key, &got); found {
		t.Fatal("deleted artifact resurrected by a fresh handle")
	}
	// Deleting a missing artifact is a no-op, and identifiers are still
	// sanitized.
	if err := s.Delete(KindOnline, key); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	if err := s.Delete(KindOnline, "../escape"); err == nil {
		t.Fatal("unsanitized delete key accepted")
	}
	if got := s.Stats().Deletes; got != 2 {
		t.Fatalf("delete stat = %d, want 2", got)
	}
}
