// Package store is the content-addressed artifact store that lets
// every learned model in the pipeline outlive its process: calibration
// results, offline policy snapshots, and online GP residual state are
// keyed by a canonical fingerprint of everything that determined them
// (service class, SLA, traffic, configuration space, training budgets,
// seed) and persisted as versioned JSON.
//
// The design follows the slice-blueprint reuse of ONAP-style
// automation: a 50-slice fleet sharing one service class trains its
// offline policy once, and a restarted orchestrator warm-starts from
// disk instead of retraining from scratch.
//
// Two layers back the store: an in-memory map (always present, so a
// dirless store works as a process-local cache and dedup point) and an
// optional JSON-on-disk directory with atomic writes (temp file +
// rename). Reads tolerate corruption: a truncated file, a wrong version
// tag, or a key mismatch surfaces as a non-nil diagnostic with
// found=false — callers fall back to fresh training, never panic.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"github.com/atlas-slicing/atlas/internal/obs"
)

// EnvelopeVersion tags the on-disk envelope layout. Get rejects
// envelopes with any other version.
const EnvelopeVersion = 1

// Artifact kinds used by the pipeline. Kinds namespace keys both in
// memory and on disk (one subdirectory per kind).
const (
	KindCalibration = "calibration"
	KindOffline     = "offline"
	KindOnline      = "online"
)

// Envelope is the on-disk frame around every artifact: the version tag
// and the (kind, key) identity are stored with the payload so a
// misplaced or stale file is detected at read time instead of silently
// deserializing into the wrong shape.
type Envelope struct {
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// Stats counts store traffic (snapshot under the store lock; returned
// by value).
type Stats struct {
	Hits    int // Get found a valid artifact
	Misses  int // Get found nothing
	Corrupt int // Get found an unreadable or mismatched artifact
	Puts    int // successful writes
	Deletes int // delete calls (missing artifacts included)
}

// Store is a concurrency-safe artifact store. The zero value is not
// usable; construct with Open or InMemory.
type Store struct {
	dir string // "" = memory only

	mu    sync.Mutex
	mem   map[string][]byte // memKey(kind, key) -> payload bytes
	stats Stats
	// delGen counts Delete calls; Get's disk-to-memory refill re-checks
	// it under the lock so a concurrent Delete can never be undone by a
	// stale refill (a tombstoned artifact must stay tombstoned).
	delGen uint64
}

// Open returns a store rooted at dir, creating the directory as needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory (use InMemory for a dirless store)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	return &Store{dir: dir, mem: map[string][]byte{}}, nil
}

// InMemory returns a store with no disk backing: a process-local cache
// and dedup point with the same API.
func InMemory() *Store {
	return &Store{mem: map[string][]byte{}}
}

// Dir returns the on-disk root ("" for in-memory stores).
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Instrument exports the store's traffic counters into reg as
// collected-at-export counter series — the store keeps its existing
// lock-guarded Stats accounting and the registry reads it on scrape,
// so the Put/Get hot paths gain no extra atomics. No-op on a nil
// registry.
func (s *Store) Instrument(reg *obs.Registry) {
	read := func(pick func(Stats) int) func() float64 {
		return func() float64 { return float64(pick(s.Stats())) }
	}
	reg.CounterFunc("atlas_store_hits_total",
		"Artifact store Gets that found a valid artifact.",
		read(func(st Stats) int { return st.Hits }))
	reg.CounterFunc("atlas_store_misses_total",
		"Artifact store Gets that found nothing.",
		read(func(st Stats) int { return st.Misses }))
	reg.CounterFunc("atlas_store_corrupt_total",
		"Artifact store Gets that found an unreadable or mismatched artifact.",
		read(func(st Stats) int { return st.Corrupt }))
	reg.CounterFunc("atlas_store_puts_total",
		"Artifact store successful writes.",
		read(func(st Stats) int { return st.Puts }))
	reg.CounterFunc("atlas_store_deletes_total",
		"Artifact store delete calls, missing artifacts included.",
		read(func(st Stats) int { return st.Deletes }))
}

func memKey(kind, key string) string { return kind + "/" + key }

// sanitize keeps kind/key filesystem-safe: fingerprints are lowercase
// hex already, but kinds and caller-chosen keys must not escape the
// store root.
func sanitize(s string) error {
	if s == "" {
		return fmt.Errorf("store: empty identifier")
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return fmt.Errorf("store: identifier %q contains %q", s, r)
		}
	}
	if strings.HasPrefix(s, ".") {
		return fmt.Errorf("store: identifier %q starts with a dot", s)
	}
	return nil
}

func (s *Store) path(kind, key string) string {
	return filepath.Join(s.dir, kind, key+".json")
}

// Put stores payload under (kind, key), replacing any existing
// artifact. Disk writes are atomic: the envelope lands in a temp file
// in the destination directory and is renamed into place, so a crash
// mid-write never leaves a truncated artifact under the final name.
func (s *Store) Put(kind, key string, payload any) error {
	if err := sanitize(kind); err != nil {
		return err
	}
	if err := sanitize(key); err != nil {
		return err
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("store: marshal %s/%s: %w", kind, key, err)
	}
	if s.dir != "" {
		env, err := json.Marshal(Envelope{Version: EnvelopeVersion, Kind: kind, Key: key, Payload: raw})
		if err != nil {
			return fmt.Errorf("store: marshal envelope %s/%s: %w", kind, key, err)
		}
		dir := filepath.Join(s.dir, kind)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("store: create %s: %w", dir, err)
		}
		tmp, err := os.CreateTemp(dir, "."+key+".tmp-*")
		if err != nil {
			return fmt.Errorf("store: temp file for %s/%s: %w", kind, key, err)
		}
		tmpName := tmp.Name()
		if _, err := tmp.Write(env); err != nil {
			tmp.Close()
			os.Remove(tmpName)
			return fmt.Errorf("store: write %s/%s: %w", kind, key, err)
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmpName)
			return fmt.Errorf("store: close %s/%s: %w", kind, key, err)
		}
		if err := os.Rename(tmpName, s.path(kind, key)); err != nil {
			os.Remove(tmpName)
			return fmt.Errorf("store: commit %s/%s: %w", kind, key, err)
		}
	}
	s.mu.Lock()
	s.mem[memKey(kind, key)] = raw
	s.stats.Puts++
	s.mu.Unlock()
	return nil
}

// Get loads the artifact under (kind, key) into out (a JSON-decodable
// pointer). It returns (true, nil) on a valid hit, (false, nil) when no
// artifact exists, and (false, diagnostic) when an artifact exists but
// is unreadable — truncated JSON, a foreign envelope version, an
// identity mismatch, or a payload that does not decode. Callers treat
// the diagnostic as "retrain and overwrite", never as fatal.
func (s *Store) Get(kind, key string, out any) (bool, error) {
	if err := sanitize(kind); err != nil {
		return false, err
	}
	if err := sanitize(key); err != nil {
		return false, err
	}
	s.mu.Lock()
	raw, ok := s.mem[memKey(kind, key)]
	s.mu.Unlock()
	if !ok {
		if s.dir == "" {
			s.count(func(st *Stats) { st.Misses++ })
			return false, nil
		}
		// Disk refill re-reads until no Delete raced the read: caching
		// (or returning) bytes read just before a concurrent Delete
		// unlinked the file would resurrect a tombstoned artifact.
		for {
			s.mu.Lock()
			gen := s.delGen
			s.mu.Unlock()
			var err error
			raw, err = s.readDisk(kind, key)
			if err != nil {
				s.count(func(st *Stats) { st.Corrupt++ })
				return false, err
			}
			s.mu.Lock()
			stable := s.delGen == gen
			if stable && raw != nil {
				s.mem[memKey(kind, key)] = raw
			}
			s.mu.Unlock()
			if stable {
				break
			}
		}
		if raw == nil {
			s.count(func(st *Stats) { st.Misses++ })
			return false, nil
		}
	}
	if err := json.Unmarshal(raw, out); err != nil {
		s.count(func(st *Stats) { st.Corrupt++ })
		return false, fmt.Errorf("store: decode %s/%s payload: %w", kind, key, err)
	}
	s.count(func(st *Stats) { st.Hits++ })
	return true, nil
}

// Delete removes the artifact under (kind, key) from both layers: the
// in-memory cache and the on-disk file. Deleting a missing artifact is
// a no-op. This is the finalization path of the slice lifecycle — a
// released slice tombstones its online checkpoint so a later admission
// under the same identity starts deterministically instead of resuming
// whatever the departed tenant last wrote.
func (s *Store) Delete(kind, key string) error {
	if err := sanitize(kind); err != nil {
		return err
	}
	if err := sanitize(key); err != nil {
		return err
	}
	if s.dir != "" {
		if err := os.Remove(s.path(kind, key)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: delete %s/%s: %w", kind, key, err)
		}
	}
	// Drop the memory entry after the unlink and bump the deletion
	// generation, so an in-flight Get refill (which re-checks the
	// generation under this lock) cannot re-cache pre-delete bytes.
	s.mu.Lock()
	delete(s.mem, memKey(kind, key))
	s.stats.Deletes++
	s.delGen++
	s.mu.Unlock()
	return nil
}

// readDisk loads and validates the on-disk envelope for (kind, key),
// returning (nil, nil) when the file does not exist.
func (s *Store) readDisk(kind, key string) ([]byte, error) {
	data, err := os.ReadFile(s.path(kind, key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read %s/%s: %w", kind, key, err)
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("store: corrupt artifact %s/%s: %w", kind, key, err)
	}
	if env.Version != EnvelopeVersion {
		return nil, fmt.Errorf("store: artifact %s/%s has envelope version %d, want %d", kind, key, env.Version, EnvelopeVersion)
	}
	if env.Kind != kind || env.Key != key {
		return nil, fmt.Errorf("store: artifact identity mismatch: file for %s/%s claims %s/%s",
			kind, key, env.Kind, env.Key)
	}
	if len(env.Payload) == 0 {
		return nil, fmt.Errorf("store: artifact %s/%s has an empty payload", kind, key)
	}
	return env.Payload, nil
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Fingerprint returns the canonical content address of v: the SHA-256
// of its JSON encoding, as lowercase hex. Encoding/json marshals struct
// fields in declaration order and map keys sorted, so the fingerprint
// is deterministic across processes for the fingerprint structs the
// pipeline uses (fixed structs of floats, ints, bools, and strings).
func Fingerprint(v any) string {
	raw, err := json.Marshal(v)
	if err != nil {
		// Fingerprint inputs are pipeline-controlled structs; a marshal
		// failure is a programming error, not an I/O condition.
		panic(fmt.Sprintf("store: fingerprint marshal: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// FingerprintSeed folds a fingerprint into a 64-bit seed: the first
// eight bytes of the (hex) content address interpreted big-endian.
// Combined with a caller's base seed it derives the canonical training
// seed for an artifact, making "the seed the dedup'd training would
// use" a pure function of (base seed, fingerprint).
func FingerprintSeed(fp string) int64 {
	b, err := hex.DecodeString(fp)
	if err != nil || len(b) < 8 {
		// Not a hex fingerprint: hash the raw string instead.
		sum := sha256.Sum256([]byte(fp))
		b = sum[:]
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return int64(v)
}
