package fleet_test

import (
	"io"
	"log/slog"
	"reflect"
	"strings"
	"testing"

	"github.com/atlas-slicing/atlas/internal/fleet"
	"github.com/atlas-slicing/atlas/internal/obs"
)

// TestFleetObsParity is the observability plane's result-invariance
// property: a fully instrumented run — metrics registry attached,
// decision tracing on, flight recorder and per-slice timelines
// attached — produces a Result bit-identical (reflect.DeepEqual) to
// the uninstrumented run on every parity scenario, across both the
// lockstep and sharded steppers. Instrumentation may consume no
// randomness and alter no decision; this test is what enforces that
// for every future metric, series, and timeline entry.
func TestFleetObsParity(t *testing.T) {
	for _, sc := range parityScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			for _, mode := range []struct {
				name   string
				mutate func(*fleet.Options)
			}{
				{name: "lockstep", mutate: func(o *fleet.Options) { o.Lockstep = true; o.Workers = 2 }},
				{name: "sharded", mutate: func(o *fleet.Options) {}},
			} {
				plain := parityRun(t, sc, mode.mutate)
				reg := obs.NewRegistry()
				rec := obs.NewRecorder(0)
				tl := obs.NewTimelineStore(0, 0)
				trace := slog.New(slog.NewJSONHandler(io.Discard, nil))
				instr := parityRun(t, sc, func(o *fleet.Options) {
					mode.mutate(o)
					o.Obs = reg
					o.Trace = trace
					o.Recorder = rec
					o.Timeline = tl
				})
				if !reflect.DeepEqual(plain, instr) {
					t.Fatalf("%s: instrumented run diverges from uninstrumented:\n%+v\nvs\n%+v",
						mode.name, instr, plain)
				}
				// Sanity: the instrumented run must actually have
				// recorded decisions — a silently unplugged registry
				// would make this parity vacuous.
				snap := reg.Snapshot()
				if len(snap) == 0 {
					t.Fatalf("%s: instrumented run registered no metrics", mode.name)
				}
				decided := 0.0
				for _, s := range snap {
					if s.Name == "atlas_admission_decisions_total" {
						decided += s.Value
					}
				}
				if int(decided) != plain.Arrivals {
					t.Fatalf("%s: decision counters saw %d arrivals, run had %d",
						mode.name, int(decided), plain.Arrivals)
				}
				// Same for the flight recorder and timelines: parity over
				// empty recordings would prove nothing.
				for _, name := range []string{"live", "acceptance_ratio", "qoe_value"} {
					if pts := rec.Series(name).Points(0); len(pts) != len(plain.Epochs) {
						t.Fatalf("%s: recorder series %q has %d points, run had %d epochs",
							mode.name, name, len(pts), len(plain.Epochs))
					}
				}
				if plain.Admitted > 0 && len(tl.Slices()) == 0 {
					t.Fatalf("%s: run admitted %d slices but no timelines were recorded",
						mode.name, plain.Admitted)
				}
				entries := 0
				for _, id := range tl.Slices() {
					if view, ok := tl.Get(id); ok {
						entries += len(view.Entries)
					}
				}
				if entries < plain.Arrivals {
					t.Fatalf("%s: timelines carry %d entries, expected at least one per arrival (%d)",
						mode.name, entries, plain.Arrivals)
				}
			}
		})
	}
}

// TestFleetObsTraceRecords checks the decision-trace log carries the
// promised audit fields: every arrival produces one admit/reject
// record with slice id, sequence number, and reserve-price context.
func TestFleetObsTraceRecords(t *testing.T) {
	scs := parityScenarios(t)
	sc := scs[1] // churn: value-density policy, so rejections carry context
	var buf strings.Builder
	reg := obs.NewRegistry()
	res := parityRun(t, sc, func(o *fleet.Options) {
		o.Obs = reg
		o.Trace = slog.New(slog.NewJSONHandler(&buf, nil))
	})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	decisions := 0
	for _, ln := range lines {
		if strings.Contains(ln, `"event":"admit"`) || strings.Contains(ln, `"event":"reject"`) {
			decisions++
			for _, field := range []string{`"slice"`, `"seq"`, `"utilization"`, `"density"`, `"policy"`, `"demand"`} {
				if !strings.Contains(ln, field) {
					t.Fatalf("trace record missing %s: %s", field, ln)
				}
			}
		}
	}
	if decisions != res.Arrivals {
		t.Fatalf("trace has %d decision records, run had %d arrivals", decisions, res.Arrivals)
	}
}
