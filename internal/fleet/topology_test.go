package fleet

import (
	"reflect"
	"testing"

	"github.com/atlas-slicing/atlas/internal/realnet"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/topology"
)

// testStar is a small hotspot graph: a 2-cell hub and three 1-cell
// leaves, ample shared tiers.
func testStar(t *testing.T) *topology.Graph {
	t.Helper()
	g, err := topology.Hotspot("test-star", 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTraceOverDrawsHomes(t *testing.T) {
	classes := []ArrivalClass{
		{Class: testVideo(), Rate: 0.5, MeanLifetime: 6, Value: 2},
		{Class: testIoT(), Every: 2, MeanLifetime: 5, Value: 1},
	}
	// Without sites, TraceOver is Trace bit-for-bit.
	plain := Trace(classes, 30, 7)
	if got := TraceOver(classes, 30, 7, nil); !reflect.DeepEqual(plain, got) {
		t.Fatal("TraceOver(nil sites) diverged from Trace")
	}
	for _, a := range plain {
		if a.Home != "" {
			t.Fatalf("single-pool arrival %s has home %q", a.ID, a.Home)
		}
	}
	sites := []slicing.SiteID{"a", "b", "c"}
	sited := TraceOver(classes, 30, 7, sites)
	if len(sited) == 0 {
		t.Fatal("empty sited trace")
	}
	seen := map[slicing.SiteID]int{}
	for _, a := range sited {
		if a.Home != "a" && a.Home != "b" && a.Home != "c" {
			t.Fatalf("arrival %s has home %q outside the site set", a.ID, a.Home)
		}
		seen[a.Home]++
	}
	if len(seen) < 2 {
		t.Fatalf("homes did not spread over the sites: %v", seen)
	}
	if again := TraceOver(classes, 30, 7, sites); !reflect.DeepEqual(sited, again) {
		t.Fatal("sited trace is not deterministic")
	}
}

// TestFleetTopologyDeterministicAcrossWorkers: with a topology and the
// locality placement in play, the full fleet result — placement
// decisions, per-site stats, imbalance, value — is bit-identical at
// any worker count.
func TestFleetTopologyDeterministicAcrossWorkers(t *testing.T) {
	classes := []ArrivalClass{
		{Class: testVideo(), Rate: 0.3, MeanLifetime: 6, Value: 2, Elastic: true},
		{Class: testIoT(), Rate: 0.4, MeanLifetime: 8, Value: 1, Elastic: true},
	}
	run := func(workers int) *Result {
		ctl := NewController(realnet.New(), simnet.NewDefault(), classes, Options{
			Horizon:   10,
			Topology:  testStar(t),
			Placement: topology.Locality{},
			Policy:    ValueDensity{ReservePrice: 4},
			Seed:      21,
			Workers:   workers,
			Tune:      tinyTune,
		})
		res, err := ctl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("topology fleet result differs across worker counts:\n%+v\nvs\n%+v", serial, parallel)
	}
	if serial.Topology != "test-star" || serial.Placement != "locality" {
		t.Fatalf("topology labels = %q/%q", serial.Topology, serial.Placement)
	}
	if len(serial.Sites) != 4 {
		t.Fatalf("site stats = %+v", serial.Sites)
	}
	for _, ss := range serial.Sites {
		if ss.PeakRanUtil > 1 {
			t.Fatalf("site %s reserved RAN utilization %v exceeds its local capacity", ss.Site, ss.PeakRanUtil)
		}
	}
	if serial.PlacementRatio < 0 || serial.PlacementRatio > 1 {
		t.Fatalf("placement ratio = %v", serial.PlacementRatio)
	}
}

// TestFleetArbitrationFreesSharedTiers: when the newcomer is blocked
// by a shared regional tier (not the target site's RAN), the
// arbitrator must reach elastic tenants hosted at *other* sites —
// their freed transport/compute is regional, so it admits the
// newcomer even though their RAN frees elsewhere.
func TestFleetArbitrationFreesSharedTiers(t *testing.T) {
	// Two disconnected 2-cell sites sharing a transport tier sized so
	// the elastic IoT tenant's envelope (~31 Mbps) plus the video
	// envelope (~43 Mbps) cannot coexist untightened.
	topo, err := topology.New("shared-tn",
		[]topology.Site{{ID: "east", Cells: 2}, {ID: "west", Cells: 2}},
		nil, 55, 3, topology.DefaultHopPenalty)
	if err != nil {
		t.Fatal(err)
	}
	classes := []ArrivalClass{
		// The IoT tenant lands first and is elastic.
		{Class: testIoT(), Every: 100, Value: 1, Elastic: true},
		// The video tenant arrives at epoch 4 and needs transport the
		// IoT tenant must give back.
		{Class: testVideo(), Every: 100, Phase: 4, Value: 2},
	}
	// Spread forces the two tenants onto different sites (the second
	// site is freer after the first admission), so the transport crunch
	// is strictly cross-site.
	run := func(policy Policy) *Result {
		ctl := NewController(realnet.New(), simnet.NewDefault(), classes, Options{
			Horizon:   8,
			Topology:  topo,
			Placement: topology.Spread{},
			Policy:    policy,
			Seed:      11,
			Tune:      tinyTune,
		})
		res, err := ctl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	greedy := run(FirstFit{})
	if greedy.Admitted != 1 || greedy.Rejected != 1 {
		t.Fatalf("first-fit admitted=%d rejected=%d, want 1/1", greedy.Admitted, greedy.Rejected)
	}
	arb := run(ValueDensity{})
	if arb.Downscales < 1 || arb.Admitted != 2 || arb.Rejected != 0 {
		t.Fatalf("cross-site arbitration admitted=%d rejected=%d downscales=%d, want 2/0/>=1",
			arb.Admitted, arb.Rejected, arb.Downscales)
	}
	// The two tenants really are on different sites.
	sited := map[slicing.SiteID]int{}
	for _, ss := range arb.Sites {
		sited[ss.Site] = ss.Placed
	}
	if sited["east"] != 1 || sited["west"] != 1 {
		t.Fatalf("tenants not spread across sites: %v", sited)
	}
}

// TestFleetLocalityBeatsFirstFitPlacement: at equal total capacity the
// locality-aware placement earns more QoE-weighted value than blind
// first-fit packing — non-home placement pays a per-hop delivered-QoE
// toll, and first-fit piles arrivals onto the early sites regardless
// of where their users are.
func TestFleetLocalityBeatsFirstFitPlacement(t *testing.T) {
	classes := []ArrivalClass{
		{Class: testVideo(), Rate: 0.25, MeanLifetime: 8, Value: 2, Elastic: true},
		{Class: testIoT(), Rate: 0.35, MeanLifetime: 10, Value: 1, Elastic: true},
	}
	run := func(place topology.Policy) *Result {
		ctl := NewController(realnet.New(), simnet.NewDefault(), classes, Options{
			Horizon:   12,
			Topology:  testStar(t),
			Placement: place,
			Policy:    FirstFit{},
			Seed:      9,
			Tune:      tinyTune,
		})
		res, err := ctl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	packed := run(topology.FirstFit{})
	local := run(topology.Locality{})
	// The arrival trace is identical — only hosting differs.
	if packed.Arrivals != local.Arrivals {
		t.Fatalf("traces diverged: %d vs %d arrivals", packed.Arrivals, local.Arrivals)
	}
	if local.QoEWeightedValue <= packed.QoEWeightedValue {
		t.Fatalf("locality value %v did not beat first-fit %v",
			local.QoEWeightedValue, packed.QoEWeightedValue)
	}
	if packed.ServedEpochs == 0 || local.ServedEpochs == 0 {
		t.Fatal("no service recorded")
	}
}
