// Package fleet is the control plane above the per-slice learning
// pipeline: it decides *which* slices run on finite infrastructure as
// tenants arrive and depart. The paper automates the configuration of
// an admitted slice; this package automates the admission itself — an
// event-driven simulation of per-class arrival processes, lifetimes,
// and departures over per-domain capacity (RAN PRBs, transport
// bandwidth, edge compute), with pluggable admission policies and a
// preemption-free downscale arbitrator that asks the online learner
// for cheaper configurations of elastic slices before rejecting a
// newcomer.
package fleet

import (
	"fmt"
	"math"
	"sort"

	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// ArrivalClass describes one tenant population of a dynamic scenario:
// a service class plus its arrival process, lifetime distribution, and
// economic weight.
type ArrivalClass struct {
	// Class is the tenant template every arrival of this population
	// instantiates.
	Class slicing.ServiceClass
	// Rate is the expected Poisson arrivals per epoch. Ignored when
	// Every > 0.
	Rate float64
	// Every switches to a deterministic process: one arrival every
	// Every epochs, offset by Phase.
	Every int
	Phase int
	// Surge adds a flash-crowd window of extra Poisson arrivals on top
	// of the base process.
	Surge SurgeWindow
	// MeanLifetime is the expected epochs a tenant stays admitted
	// (geometric, minimum 1). Zero or negative means the tenant never
	// departs within the horizon.
	MeanLifetime float64
	// Value is the tenant's per-epoch revenue weight; QoE-weighted
	// value accrues as Value x delivered QoE per served epoch.
	Value float64
	// Elastic marks tenants the downscale arbitrator may shrink to make
	// room for newcomers.
	Elastic bool
}

// SurgeWindow is a bounded burst of extra arrivals (a flash crowd).
type SurgeWindow struct {
	Start int
	Len   int
	Rate  float64
}

// active reports whether the window covers the epoch.
func (w SurgeWindow) active(epoch int) bool {
	return w.Len > 0 && epoch >= w.Start && epoch < w.Start+w.Len
}

// Arrival is one tenant arrival event on the fleet timeline.
type Arrival struct {
	Epoch int
	ID    string
	// ClassIdx indexes the generating ArrivalClass; Class is a copy of
	// its template.
	ClassIdx int
	Class    slicing.ServiceClass
	// Lifetime is how many epochs the tenant wants service after
	// admission (0 = until the horizon ends).
	Lifetime int
	// Traffic overrides the class's nominal demand (0 = class default).
	// Batch traces leave it 0; the serve path threads per-request
	// demand through it.
	Traffic int
	Value   float64
	Elastic bool
	// Home is the arrival's home cell — the site its users attach to.
	// Empty on single-pool traces; drawn uniformly over the topology's
	// sites by TraceOver. Hosting away from home costs delivered QoE
	// per transport hop (topology.Graph.QoEFactor).
	Home slicing.SiteID
}

// poisson draws a Poisson variate with the given mean (Knuth's method;
// fleet arrival rates are small).
func poisson(mean float64, rng interface{ Float64() float64 }) int {
	if mean <= 0 {
		return 0
	}
	limit := math.Exp(-mean)
	k, p := 0, 1.0
	for p > limit && k < 64+int(64*mean) {
		k++
		p *= rng.Float64()
	}
	return k - 1
}

// geometric draws a geometric lifetime with the given mean, minimum 1.
func geometric(mean float64, rng interface{ Float64() float64 }) int {
	if mean <= 1 {
		return 1
	}
	u := rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	// P(L > n) = (1 - 1/mean)^n.
	n := 1 + int(math.Floor(math.Log(u)/math.Log(1-1/mean)))
	if n < 1 {
		return 1
	}
	return n
}

// Trace expands the per-class arrival processes into the deterministic
// event timeline of one fleet run: a pure function of (classes,
// horizon, seed). Each class draws from its own child RNG, so adding a
// class never perturbs another's arrivals; events are ordered by
// (epoch, class index, draw index).
func Trace(classes []ArrivalClass, horizon int, seed int64) []Arrival {
	return TraceOver(classes, horizon, seed, nil)
}

// TraceOver is Trace over a multi-site topology: every arrival
// additionally draws a home cell uniformly over the given sites (in
// order) from the same per-class RNG. A nil or empty site list leaves
// homes empty and reproduces Trace's draws bit-for-bit, so enabling a
// topology is the only thing that changes a trace.
func TraceOver(classes []ArrivalClass, horizon int, seed int64, sites []slicing.SiteID) []Arrival {
	var out []Arrival
	for ci, c := range classes {
		rng := mathx.NewRNG(mathx.ChildSeed(seed, ci))
		serial := 0
		for epoch := 0; epoch < horizon; epoch++ {
			n := 0
			if c.Every > 0 {
				if (epoch-c.Phase)%c.Every == 0 && epoch >= c.Phase {
					n = 1
				}
			} else {
				n = poisson(c.Rate, rng)
			}
			if c.Surge.active(epoch) {
				n += poisson(c.Surge.Rate, rng)
			}
			for k := 0; k < n; k++ {
				life := 0
				if c.MeanLifetime > 0 {
					life = geometric(c.MeanLifetime, rng)
				}
				var home slicing.SiteID
				if len(sites) > 0 {
					home = sites[rng.Intn(len(sites))]
				}
				out = append(out, Arrival{
					Epoch:    epoch,
					ID:       fmt.Sprintf("%s-%03d", c.Class.Name, serial),
					ClassIdx: ci,
					Class:    c.Class,
					Lifetime: life,
					Value:    c.Value,
					Elastic:  c.Elastic,
					Home:     home,
				})
				serial++
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Epoch != out[j].Epoch {
			return out[i].Epoch < out[j].Epoch
		}
		return out[i].ClassIdx < out[j].ClassIdx
	})
	return out
}
