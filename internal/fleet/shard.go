package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/obs"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/topology"
)

// This file is the site-sharded, event-driven stepping engine of the
// fleet control plane. The controller's run loop no longer steps the
// whole fleet in one lockstep StepMany call: arrivals, departures, and
// step ticks become sequence-numbered events routed to the shard that
// owns the tenant's host site. Each shard is a long-lived goroutine
// owning its sites' resident slices (and therefore their online
// learners); it processes its event queue in FIFO order and steps its
// residents concurrently with every other shard. Control events
// (attach/detach) are emitted by the coordinator in one global
// sequence between ticks, and tick results merge at a commit barrier
// in shard-index order — so the whole schedule is deterministic and
// the run's Result is bit-identical to the lockstep reference path at
// any shard count (the cross-PR determinism bar).
//
// Shared TN/CN capacity is the only cross-shard coupling, served by
// the striped TopologyLedger's short shared-tier lock.

// stepper abstracts how the controller's run loop advances the fleet
// one epoch: the legacy lockstep fan-out, or the sharded event engine.
type stepper interface {
	// attach registers a newly admitted tenant with its owner.
	attach(id string, site slicing.SiteID)
	// detach unregisters a departed tenant.
	detach(id string, site slicing.SiteID)
	// tick steps every resident slice one interval. ids is the live
	// set in admission order (the lockstep path's work list; the
	// sharded engine steps from its own residency books).
	tick(epoch int, ids []string) error
	// close tears the stepper down (idempotent).
	close()
}

// lockstepStepper is the pre-sharding reference implementation: one
// epoch-wide StepMany fan-out over a bounded worker pool.
type lockstepStepper struct {
	sys     *core.System
	workers int
}

func (l lockstepStepper) attach(string, slicing.SiteID) {}
func (l lockstepStepper) detach(string, slicing.SiteID) {}
func (l lockstepStepper) close()                        {}

func (l lockstepStepper) tick(_ int, ids []string) error {
	return l.sys.StepMany(ids, l.workers)
}

// evKind enumerates the shard event queue's message types.
type evKind uint8

const (
	evAttach evKind = iota
	evDetach
	evTick
)

// shardEvent is one sequence-numbered message on a shard's queue.
type shardEvent struct {
	kind  evKind
	seq   uint64
	id    string // attach/detach
	epoch int    // tick
}

// shardAck is a shard's commit message for one tick.
type shardAck struct {
	shard int
	seq   uint64
	err   error
}

// shard owns a partition of the fleet: the resident slice ids (in
// admission order) of the sites assigned to it. Only the shard's own
// goroutine touches ids after start.
type shard struct {
	idx int
	ch  chan shardEvent
	ids []string
}

// run is the shard goroutine: drain the event queue in FIFO order,
// maintaining residency on attach/detach and stepping every resident
// on tick. The ack carries the tick's sequence number so the
// coordinator's commit barrier can verify ordered delivery.
func (sh *shard) run(sys *core.System, acks chan<- shardAck, wg *sync.WaitGroup) {
	defer wg.Done()
	for ev := range sh.ch {
		switch ev.kind {
		case evAttach:
			sh.ids = append(sh.ids, ev.id)
		case evDetach:
			for i, v := range sh.ids {
				if v == ev.id {
					sh.ids = append(sh.ids[:i], sh.ids[i+1:]...)
					break
				}
			}
		case evTick:
			acks <- shardAck{shard: sh.idx, seq: ev.seq, err: sys.StepShard(sh.ids)}
		}
	}
}

// shardEngine is the event-driven stepper: a coordinator-facing front
// that routes events to per-site shards and merges tick commits.
type shardEngine struct {
	sys    *core.System
	shards []*shard
	// siteShard maps a site id to its owning shard; the empty site
	// (single-pool runs) belongs to shard 0, matching the ledger's
	// default-site semantics.
	siteShard map[slicing.SiteID]int
	acks      chan shardAck
	seq       uint64
	wg        sync.WaitGroup
	closed    bool
	// met is the optional observability bundle (nil = off): event
	// routing counters, queue-depth gauge, and barrier-wait histogram.
	// Recording reads queue lengths and the wall clock only — it never
	// reorders events or touches a decision, so instrumented runs stay
	// bit-identical.
	met *shardMetrics
}

// resolveShards clamps a requested shard count against the topology:
// 0 (auto) means one shard per site, and a run can never use more
// shards than it has sites (a single-pool run has exactly one).
func resolveShards(requested int, topo *topology.Graph) int {
	sites := 1
	if topo != nil {
		sites = len(topo.Sites)
	}
	n := requested
	if n <= 0 || n > sites {
		n = sites
	}
	return n
}

// newShardEngine starts n shard goroutines over the topology's sites,
// assigned round-robin in site order.
func newShardEngine(sys *core.System, topo *topology.Graph, n int, reg *obs.Registry) *shardEngine {
	n = resolveShards(n, topo)
	se := &shardEngine{
		sys:       sys,
		shards:    make([]*shard, n),
		siteShard: map[slicing.SiteID]int{},
		acks:      make(chan shardAck, n),
		met:       newShardMetrics(reg),
	}
	if topo != nil {
		for i, id := range topo.SiteIDs() {
			se.siteShard[id] = i % n
		}
	}
	for i := range se.shards {
		se.shards[i] = &shard{idx: i, ch: make(chan shardEvent, 16)}
		se.wg.Add(1)
		go se.shards[i].run(sys, se.acks, &se.wg)
	}
	return se
}

// shardOf resolves a tenant's host site to its owning shard.
func (se *shardEngine) shardOf(site slicing.SiteID) *shard {
	return se.shards[se.siteShard[site]]
}

func (se *shardEngine) attach(id string, site slicing.SiteID) {
	se.seq++
	sh := se.shardOf(site)
	sh.ch <- shardEvent{kind: evAttach, seq: se.seq, id: id}
	se.met.recordSend(evAttach, len(sh.ch))
}

func (se *shardEngine) detach(id string, site slicing.SiteID) {
	se.seq++
	sh := se.shardOf(site)
	sh.ch <- shardEvent{kind: evDetach, seq: se.seq, id: id}
	se.met.recordSend(evDetach, len(sh.ch))
}

// tick broadcasts one step event to every shard and blocks at the
// commit barrier until all shards ack. Ack arrival order is whatever
// the scheduler produces, but the merge is deterministic: errors slot
// by shard index and join in that order.
func (se *shardEngine) tick(epoch int, _ []string) error {
	se.seq++
	seq := se.seq
	for _, sh := range se.shards {
		sh.ch <- shardEvent{kind: evTick, seq: seq, epoch: epoch}
		se.met.recordSend(evTick, len(sh.ch))
	}
	barrier := time.Now()
	errs := make([]error, len(se.shards))
	for range se.shards {
		ack := <-se.acks
		if ack.seq != seq {
			return fmt.Errorf("fleet: shard %d acked tick seq %d, want %d", ack.shard, ack.seq, seq)
		}
		errs[ack.shard] = ack.err
	}
	se.met.recordBarrier(barrier)
	return errors.Join(errs...)
}

func (se *shardEngine) close() {
	if se.closed {
		return
	}
	se.closed = true
	for _, sh := range se.shards {
		close(sh.ch)
	}
	se.wg.Wait()
}
