package fleet

import "github.com/atlas-slicing/atlas/internal/slicing"

// AdmissionContext is the fleet state a policy decides against: the
// newcomer's predicted footprint and quality, and the ledger's current
// occupancy.
type AdmissionContext struct {
	Epoch int
	// Demand is the reservation the newcomer would book (its offline
	// optimum scaled by the admission headroom).
	Demand slicing.Demand
	// PredictedQoE is the class's offline-artifact QoE at its optimum —
	// what the newcomer is expected to deliver if admitted.
	PredictedQoE float64
	// Free and Capacity describe the ledger; Utilization is the
	// bottleneck-domain used fraction before this admission.
	Free        slicing.Demand
	Capacity    slicing.Capacity
	Utilization float64
}

// density is the QoE-aware value density: per-epoch value weighted by
// expected QoE, per bottleneck fraction of capacity consumed.
func (ctx AdmissionContext) density(a Arrival) float64 {
	frac := ctx.Demand.BottleneckFrac(ctx.Capacity)
	if frac <= 0 {
		return 0
	}
	return a.Value * ctx.PredictedQoE / frac
}

// Policy decides which arrivals join the fleet. Implementations must be
// deterministic pure functions of their inputs — the control plane's
// bit-identical replay depends on it.
type Policy interface {
	// Name identifies the policy in reports and benchmarks.
	Name() string
	// Admit decides whether to take an arrival that fits (or could be
	// made to fit) the free capacity.
	Admit(ctx AdmissionContext, a Arrival) bool
	// Arbitrate reports whether the controller should ask elastic
	// slices for cheaper configurations to make room for this arrival
	// when it does not fit as-is.
	Arbitrate(ctx AdmissionContext, a Arrival) bool
}

// FirstFit is the baseline greedy policy: admit whatever fits, in
// arrival order, and never disturb the running fleet.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "first-fit" }

// Admit implements Policy.
func (FirstFit) Admit(AdmissionContext, Arrival) bool { return true }

// Arbitrate implements Policy.
func (FirstFit) Arbitrate(AdmissionContext, Arrival) bool { return false }

// PriorityTiered admits greedily like first-fit but lets high-value
// arrivals (Value >= Threshold) trigger the downscale arbitrator: the
// fleet shrinks elastic tenants to fit a premium newcomer, never for a
// best-effort one.
type PriorityTiered struct {
	// Threshold is the per-epoch value at or above which an arrival
	// counts as premium.
	Threshold float64
}

// Name implements Policy.
func (PriorityTiered) Name() string { return "priority-tiered" }

// Admit implements Policy.
func (PriorityTiered) Admit(AdmissionContext, Arrival) bool { return true }

// Arbitrate implements Policy.
func (p PriorityTiered) Arbitrate(_ AdmissionContext, a Arrival) bool {
	return a.Value >= p.Threshold
}

// ValueDensity is the QoE-aware policy: every candidate is scored by
// value density — per-epoch value weighted by its predicted QoE, per
// bottleneck fraction of capacity consumed — and admission is gated by
// a reserve price that rises with utilization. An empty fleet admits
// almost anything; a nearly full one admits only tenants that earn
// their footprint, keeping room for high-density arrivals instead of
// letting early bulky tenants crowd them out. Arbitration is reserved
// for premium arrivals (density >= 2x the reserve price): downscaling
// degrades the elastic slices' delivered QoE, so the fleet only pays
// that cost for newcomers clearly worth more than what it gives up.
type ValueDensity struct {
	// ReservePrice anchors both gates: an arrival is admitted when its
	// density >= ReservePrice x utilization^2, and may trigger the
	// downscale arbitrator when its density >= 2 x ReservePrice. Zero
	// disables both gates (pure fit-with-arbitration).
	ReservePrice float64
}

// Name implements Policy.
func (ValueDensity) Name() string { return "value-density" }

// Admit implements Policy.
func (p ValueDensity) Admit(ctx AdmissionContext, a Arrival) bool {
	if p.ReservePrice <= 0 {
		return true
	}
	u := ctx.Utilization
	return ctx.density(a) >= p.ReservePrice*u*u
}

// Arbitrate implements Policy.
func (p ValueDensity) Arbitrate(ctx AdmissionContext, a Arrival) bool {
	if p.ReservePrice <= 0 {
		return true
	}
	return ctx.density(a) >= 2*p.ReservePrice
}

// AdmitAll takes every arrival unconditionally — the infinite-capacity
// oracle's policy (meaningful only without a capacity constraint).
type AdmitAll struct{}

// Name implements Policy.
func (AdmitAll) Name() string { return "admit-all" }

// Admit implements Policy.
func (AdmitAll) Admit(AdmissionContext, Arrival) bool { return true }

// Arbitrate implements Policy.
func (AdmitAll) Arbitrate(AdmissionContext, Arrival) bool { return false }

// PolicyByName resolves a policy from its CLI name.
func PolicyByName(name string) (Policy, bool) {
	switch name {
	case "first-fit":
		return FirstFit{}, true
	case "priority-tiered":
		return PriorityTiered{Threshold: 3}, true
	case "value-density":
		return ValueDensity{ReservePrice: 4}, true
	case "admit-all":
		return AdmitAll{}, true
	}
	return nil, false
}

// PolicyNames lists the registered admission policies.
func PolicyNames() []string {
	return []string{"first-fit", "priority-tiered", "value-density", "admit-all"}
}
