package fleet

import (
	"context"
	"log/slog"
	"time"

	"github.com/atlas-slicing/atlas/internal/obs"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// engineMetrics is the admission path's observability bundle:
// decision counters split by outcome and rejection reason, placement
// and arbitration accounting, lifecycle (resize/release/suspend)
// counters, and the class-estimate cache hit rate. All methods are
// nil-safe — an uninstrumented Engine pays one nil check per decision
// — and every recording is an atomic add that consumes no randomness
// and alters no decision, so instrumented runs stay bit-identical.
type engineMetrics struct {
	admitted         *obs.Counter
	rejectedPolicy   *obs.Counter
	rejectedCapacity *obs.Counter

	placementAttempts *obs.Counter
	placements        *obs.Counter
	arbitrations      *obs.Counter
	downscales        *obs.Counter

	resizes    *obs.Counter
	migrations *obs.Counter
	releases   *obs.Counter
	removes    *obs.Counter

	estHits   *obs.Counter
	estMisses *obs.Counter

	handleSeconds *obs.Histogram
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	if reg == nil {
		return nil
	}
	const decisions = "atlas_admission_decisions_total"
	const decisionsHelp = "Arrival admission decisions by outcome (rejections carry the reason)."
	return &engineMetrics{
		admitted:         reg.Counter(decisions, decisionsHelp, obs.L("outcome", "admitted")),
		rejectedPolicy:   reg.Counter(decisions, decisionsHelp, obs.L("outcome", "rejected_policy")),
		rejectedCapacity: reg.Counter(decisions, decisionsHelp, obs.L("outcome", "rejected_capacity")),
		placementAttempts: reg.Counter("atlas_placement_attempts_total",
			"Arrivals that reached the placement stage on a topology run."),
		placements: reg.Counter("atlas_placements_total",
			"Arrivals successfully placed and admitted at a host site."),
		arbitrations: reg.Counter("atlas_arbitrations_total",
			"Downscale-arbitration passes triggered by arrivals that did not fit."),
		downscales: reg.Counter("atlas_downscales_total",
			"Elastic tenants shrunk by the downscale arbitrator."),
		resizes: reg.Counter("atlas_resizes_total",
			"Live-tenant envelope resizes committed (in place or migrated)."),
		migrations: reg.Counter("atlas_resize_migrations_total",
			"Resizes that moved the reservation to a different host site."),
		releases: reg.Counter("atlas_releases_total",
			"Tenants decommissioned (capacity freed, checkpoint tombstoned)."),
		removes: reg.Counter("atlas_suspends_total",
			"Tenants suspended (capacity freed, checkpoint kept)."),
		estHits: reg.Counter("atlas_estimate_cache_total",
			"Class admission-estimate cache lookups.", obs.L("result", "hit")),
		estMisses: reg.Counter("atlas_estimate_cache_total",
			"Class admission-estimate cache lookups.", obs.L("result", "miss")),
		handleSeconds: reg.Histogram("atlas_admission_handle_seconds",
			"Wall time of one arrival's full admission path.", nil),
	}
}

func (m *engineMetrics) recordDecision(dec Decision, start time.Time) {
	if m == nil {
		return
	}
	m.handleSeconds.ObserveSince(start)
	if dec.PlacementAttempted {
		m.placementAttempts.Inc()
	}
	switch {
	case dec.Admitted:
		m.admitted.Inc()
		if dec.PlacementAttempted {
			m.placements.Inc()
		}
	case dec.Reason == "policy":
		m.rejectedPolicy.Inc()
	default:
		m.rejectedCapacity.Inc()
	}
	if dec.Downscales > 0 {
		m.downscales.Add(uint64(dec.Downscales))
	}
}

func (m *engineMetrics) recordArbitration() {
	if m == nil {
		return
	}
	m.arbitrations.Inc()
}

func (m *engineMetrics) recordResize(migrated bool) {
	if m == nil {
		return
	}
	m.resizes.Inc()
	if migrated {
		m.migrations.Inc()
	}
}

func (m *engineMetrics) recordRelease() {
	if m == nil {
		return
	}
	m.releases.Inc()
}

func (m *engineMetrics) recordRemove() {
	if m == nil {
		return
	}
	m.removes.Inc()
}

func (m *engineMetrics) recordEstimate(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.estHits.Inc()
	} else {
		m.estMisses.Inc()
	}
}

// EngineCounters is a point-in-time snapshot of the engine's decision
// accounting — the serve daemon surfaces it through GET /stats as the
// daemon-side equivalent of the batch Result's arrival bookkeeping.
// All zeros on an uninstrumented engine.
type EngineCounters struct {
	Arrivals          uint64  `json:"arrivals"`
	Admitted          uint64  `json:"admitted"`
	RejectedPolicy    uint64  `json:"rejected_policy"`
	RejectedCapacity  uint64  `json:"rejected_capacity"`
	AcceptanceRatio   float64 `json:"acceptance_ratio"`
	PlacementAttempts uint64  `json:"placement_attempts"`
	Placements        uint64  `json:"placements"`
	Arbitrations      uint64  `json:"arbitrations"`
	Downscales        uint64  `json:"downscales"`
	Resizes           uint64  `json:"resizes"`
	ResizeMigrations  uint64  `json:"resize_migrations"`
	Releases          uint64  `json:"releases"`
	Suspends          uint64  `json:"suspends"`
	EstimateHits      uint64  `json:"estimate_cache_hits"`
	EstimateMisses    uint64  `json:"estimate_cache_misses"`
}

// Counters snapshots the engine's decision accounting (zeros when the
// engine is uninstrumented). Safe to call concurrently with the
// single-writer mutating path — every read is atomic.
func (e *Engine) Counters() EngineCounters {
	m := e.met
	if m == nil {
		return EngineCounters{}
	}
	c := EngineCounters{
		Admitted:          m.admitted.Value(),
		RejectedPolicy:    m.rejectedPolicy.Value(),
		RejectedCapacity:  m.rejectedCapacity.Value(),
		PlacementAttempts: m.placementAttempts.Value(),
		Placements:        m.placements.Value(),
		Arbitrations:      m.arbitrations.Value(),
		Downscales:        m.downscales.Value(),
		Resizes:           m.resizes.Value(),
		ResizeMigrations:  m.migrations.Value(),
		Releases:          m.releases.Value(),
		Suspends:          m.removes.Value(),
		EstimateHits:      m.estHits.Value(),
		EstimateMisses:    m.estMisses.Value(),
	}
	c.Arrivals = c.Admitted + c.RejectedPolicy + c.RejectedCapacity
	if c.Arrivals > 0 {
		c.AcceptanceRatio = float64(c.Admitted) / float64(c.Arrivals)
	}
	return c
}

// shardMetrics is the sharded stepping engine's observability bundle:
// routed-event counters by kind, the event-queue depth observed at
// each send, and the coordinator's commit-barrier wait per tick. The
// serve reconciler registers the same families for its per-tick site
// fan-out, so both execution modes export one shard vocabulary. All
// methods are nil-safe.
type shardMetrics struct {
	attaches *obs.Counter
	detaches *obs.Counter
	ticks    *obs.Counter

	queueDepth  *obs.Gauge
	barrierWait *obs.Histogram
}

func newShardMetrics(reg *obs.Registry) *shardMetrics {
	if reg == nil {
		return nil
	}
	const events = "atlas_shard_events_total"
	const eventsHelp = "Events routed to shard queues by kind."
	return &shardMetrics{
		attaches: reg.Counter(events, eventsHelp, obs.L("kind", "attach")),
		detaches: reg.Counter(events, eventsHelp, obs.L("kind", "detach")),
		ticks:    reg.Counter(events, eventsHelp, obs.L("kind", "tick")),
		queueDepth: reg.Gauge("atlas_shard_queue_depth",
			"Shard event-queue depth observed at the most recent send."),
		barrierWait: reg.Histogram("atlas_shard_barrier_wait_seconds",
			"Coordinator wall time from tick broadcast to the last shard ack.", nil),
	}
}

func (m *shardMetrics) recordSend(kind evKind, depth int) {
	if m == nil {
		return
	}
	switch kind {
	case evAttach:
		m.attaches.Inc()
	case evDetach:
		m.detaches.Inc()
	case evTick:
		m.ticks.Inc()
	}
	m.queueDepth.Set(float64(depth))
}

func (m *shardMetrics) recordBarrier(start time.Time) {
	if m == nil {
		return
	}
	m.barrierWait.ObserveSince(start)
}

// obsSeq allocates the next decision sequence number when any decision
// sink (trace log or flight-recorder timeline) is attached, and returns
// zero otherwise. One number is drawn per decision and handed to both
// sinks, so a timeline entry's seq matches the -trace line for the same
// decision. Single-writer, like the mutating path that draws it.
func (e *Engine) obsSeq() uint64 {
	if e.traceLog == nil && e.timeline == nil {
		return 0
	}
	e.traceSeq++
	return e.traceSeq
}

// traceAt emits one structured decision-trace record under the given
// sequence number when the engine has a trace logger. Attrs carry the
// decision-specific context. Tracing formats already-made decisions —
// it consumes no randomness and feeds nothing back.
func (e *Engine) traceAt(seq uint64, event string, attrs ...slog.Attr) {
	if e.traceLog == nil {
		return
	}
	all := make([]slog.Attr, 0, len(attrs)+2)
	all = append(all, slog.String("event", event), slog.Uint64("seq", seq))
	all = append(all, attrs...)
	e.traceLog.LogAttrs(context.Background(), slog.LevelInfo, "decision", all...)
}

// demandVec renders a per-domain demand as the timeline's
// [ran_prb, tn_mbps, cn_cpu] vector.
func demandVec(d slicing.Demand) []float64 {
	return []float64{d.RanPRB, d.TnMbps, d.CnCPU}
}

// timelineEvent appends one decision entry to the slice's flight
// recorder timeline under the shared sequence number. Like tracing, it
// records an already-made decision and feeds nothing back.
func (e *Engine) timelineEvent(seq uint64, id, event, site, detail string, demand []float64) {
	if e.timeline == nil {
		return
	}
	e.timeline.Append(id, obs.TimelineEntry{
		Seq:    seq,
		Epoch:  e.epoch,
		Kind:   obs.KindDecision,
		Event:  event,
		Site:   site,
		Detail: detail,
		Demand: demand,
	})
}

// timelineDecision records one arrival's admission outcome on the
// slice's timeline, mirroring traceDecision.
func (e *Engine) timelineDecision(seq uint64, a Arrival, dec Decision) {
	if e.timeline == nil {
		return
	}
	event := "admit"
	detail := ""
	if !dec.Admitted {
		event = "reject"
		detail = dec.Reason
	}
	e.timeline.Append(a.ID, obs.TimelineEntry{
		Seq:    seq,
		Epoch:  a.Epoch,
		Kind:   obs.KindDecision,
		Event:  event,
		Site:   string(dec.Site),
		Detail: detail,
		QoE:    dec.PredictedQoE,
		Demand: demandVec(dec.Demand),
	})
}

// demandAttrs renders a per-domain demand as trace attributes.
func demandAttrs(d slicing.Demand) slog.Attr {
	return slog.Group("demand",
		slog.Float64("ran_prb", d.RanPRB),
		slog.Float64("tn_mbps", d.TnMbps),
		slog.Float64("cn_cpu", d.CnCPU))
}

// traceDecision records one arrival's admission outcome with the
// reserve-price context the policy decided against.
func (e *Engine) traceDecision(seq uint64, a Arrival, dec Decision) {
	if e.traceLog == nil {
		return
	}
	event := "admit"
	if !dec.Admitted {
		event = "reject"
	}
	e.traceAt(seq, event,
		slog.String("slice", a.ID),
		slog.Int("epoch", a.Epoch),
		slog.String("site", string(dec.Site)),
		slog.String("reason", dec.Reason),
		slog.String("policy", e.policy.Name()),
		slog.Float64("value", a.Value),
		slog.Bool("elastic", a.Elastic),
		slog.Float64("predicted_qoe", dec.PredictedQoE),
		slog.Float64("utilization", dec.Utilization),
		slog.Float64("density", dec.Density),
		slog.Int("downscales", dec.Downscales),
		demandAttrs(dec.Demand))
}
