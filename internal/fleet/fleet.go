package fleet

import (
	"errors"
	"fmt"
	"math"

	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/store"
	"github.com/atlas-slicing/atlas/internal/topology"
)

// Options configures one fleet run.
type Options struct {
	// Horizon is the number of control-plane epochs to simulate.
	Horizon int
	// Capacity is the shared infrastructure; the zero value means
	// unlimited (every fit check passes). Ignored when Topology is set.
	Capacity slicing.Capacity
	// Topology, when set, replaces the single aggregated pool with a
	// multi-site infrastructure: per-site RAN capacity plus shared
	// regional transport/compute, arrivals gain home-cell affinity, and
	// a placement stage picks every arrival's host site ahead of
	// admission.
	Topology *topology.Graph
	// Placement picks each arrival's host site when Topology is set;
	// nil defaults to the locality-aware policy.
	Placement topology.Policy
	// Policy is the admission policy; nil defaults to FirstFit.
	Policy Policy
	// Seed drives every random draw (arrival trace, per-slice seeds).
	// Same seed, same options => bit-identical Result.
	Seed int64
	// Workers bounds the concurrent per-epoch stepping (0 =
	// GOMAXPROCS). Results are identical at any worker count.
	Workers int
	// DownscalePool is the candidate-pool size the arbitrator hands the
	// online learner when searching for cheaper configurations (0
	// defaults to 250).
	DownscalePool int
	// Headroom scales reservation envelopes (0 = core.DefaultHeadroom).
	Headroom float64
	// Oracle additionally runs the infinite-capacity admit-all fleet on
	// the same arrival trace and reports the QoE-weighted value an
	// unconstrained infrastructure would have earned.
	Oracle bool
	// Store persists learned artifacts; nil uses a fresh in-memory
	// store, which still dedups training to once per class within the
	// run.
	Store *store.Store
	// Tune, when set, adjusts the per-run core.System (training
	// budgets, online options) after fleet defaults are applied and
	// before calibration.
	Tune func(*core.System)
}

// EpochStat is one epoch's aggregate.
type EpochStat struct {
	Epoch    int
	Live     int
	Arrivals int
	Admitted int
	Rejected int
	// Util is the per-domain reserved fraction at the end of the epoch.
	Util slicing.Utilization
	// MeanQoE averages the live slices' delivered QoE this epoch.
	MeanQoE float64
	// Value is the QoE-weighted value earned this epoch.
	Value float64
}

// Rejection records one refused arrival.
type Rejection struct {
	Epoch  int
	ID     string
	Class  string
	Reason string // "capacity" or "policy"
}

// SiteStat aggregates one topology site over the run.
type SiteStat struct {
	Site slicing.SiteID
	// Placed counts the arrivals admitted with this site as host.
	Placed int
	// MeanRanUtil and PeakRanUtil summarize the site's local reserved
	// RAN utilization over the horizon.
	MeanRanUtil float64
	PeakRanUtil float64
}

// ClassStat aggregates one arrival class over the run.
type ClassStat struct {
	Class    string
	Arrivals int
	Admitted int
	Rejected int
	// Value is the QoE-weighted value the class's admitted tenants
	// earned.
	Value float64
}

// Result is the outcome of one fleet run.
type Result struct {
	Policy  string
	Horizon int

	Arrivals   int
	Admitted   int
	Rejected   int
	Departed   int
	Downscales int
	// AcceptanceRatio is Admitted/Arrivals (1 when no arrivals).
	AcceptanceRatio float64

	// MeanUtil and PeakUtil summarize per-domain reserved utilization
	// over the horizon.
	MeanUtil slicing.Utilization
	PeakUtil slicing.Utilization

	// ServedEpochs counts (slice, epoch) pairs served;  SLAViolations
	// counts those whose delivered QoE missed the class target.
	ServedEpochs  int
	SLAViolations int

	// QoEWeightedValue sums Value x delivered QoE over every served
	// slice-epoch. OracleValue is the same sum for the
	// infinite-capacity admit-all fleet on the same arrival trace
	// (0 unless Options.Oracle), and Regret their difference.
	QoEWeightedValue float64
	OracleValue      float64
	Regret           float64

	Epochs     []EpochStat
	Rejections []Rejection
	Classes    []ClassStat

	// Topology metrics (zero-valued on single-pool runs). Topology and
	// Placement name the site graph and placement policy;
	// PlacementAttempts counts arrivals that passed the admission
	// policy's value gate and therefore needed a host site, Placed
	// those that found one (immediately or after site-local
	// arbitration), and PlacementRatio their quotient (1 with no
	// attempts). Imbalance is the mean over epochs of the spread
	// (max − min) of per-site reserved RAN utilization — 0 means every
	// site carries the same fraction of its local capacity.
	Topology          string
	Placement         string
	PlacementAttempts int
	Placed            int
	PlacementRatio    float64
	Imbalance         float64
	Sites             []SiteStat

	// Diags carries the non-fatal artifact-store diagnostics the
	// underlying system accumulated.
	Diags []error
}

// Controller runs the fleet control plane: an event-driven simulation
// of slice arrivals, admissions, concurrent online learning, and
// departures over finite capacity.
type Controller struct {
	real    slicing.Env
	sim     *simnet.Simulator
	classes []ArrivalClass
	opts    Options
	st      *store.Store
}

// NewController builds a controller over a real network, a simulator,
// and the scenario's arrival classes.
func NewController(real slicing.Env, sim *simnet.Simulator, classes []ArrivalClass, opts Options) *Controller {
	if opts.Horizon <= 0 {
		opts.Horizon = 100
	}
	if opts.Policy == nil {
		opts.Policy = FirstFit{}
	}
	if opts.Placement == nil {
		opts.Placement = topology.Locality{}
	}
	if opts.DownscalePool <= 0 {
		opts.DownscalePool = 250
	}
	st := opts.Store
	if st == nil {
		st = store.InMemory()
	}
	return &Controller{real: real, sim: sim, classes: append([]ArrivalClass(nil), classes...), opts: opts, st: st}
}

// newSystem builds the per-run core.System with fleet-scale budgets.
func (c *Controller) newSystem(capacity slicing.Capacity, topo *topology.Graph) *core.System {
	sys := core.NewSystem(c.real, c.sim, c.opts.Seed)
	sys.Store = c.st
	sys.Headroom = c.opts.Headroom
	if topo != nil {
		sys.Ledger = topo.NewLedger()
	} else if !capacity.IsZero() {
		sys.Ledger = slicing.NewCapacityLedger(capacity)
	}
	// Fleet-scale defaults: churn admits tens of tenants per run, so
	// per-admission budgets are tighter than the single-slice deep
	// dives; the store amortizes them to once per class anyway.
	sys.CalOpts.Iters, sys.CalOpts.Explore, sys.CalOpts.Batch, sys.CalOpts.Pool = 40, 10, 2, 300
	sys.OffOpts.Iters, sys.OffOpts.Explore, sys.OffOpts.Batch, sys.OffOpts.Pool = 60, 12, 2, 300
	sys.OnOpts.Pool, sys.OnOpts.N = 250, 5
	if c.opts.Tune != nil {
		c.opts.Tune(sys)
	}
	return sys
}

// Run executes the fleet simulation and, when Options.Oracle is set,
// the infinite-capacity oracle on the same arrival trace.
func (c *Controller) Run() (*Result, error) {
	// One trace serves both runs: home cells are drawn into the trace
	// (when a topology is set), so the oracle replays exactly the
	// constrained fleet's arrivals.
	var sites []slicing.SiteID
	if c.opts.Topology != nil {
		sites = c.opts.Topology.SiteIDs()
	}
	trace := TraceOver(c.classes, c.opts.Horizon, c.opts.Seed, sites)
	res, err := c.runOnce(c.opts.Policy, c.opts.Capacity, c.opts.Topology, trace)
	if err != nil {
		return nil, err
	}
	if c.opts.Oracle {
		// The oracle is placement-free on purpose: unlimited single-pool
		// capacity with every slice at home, so regret covers both what
		// admission refused and what non-home placement cost.
		oracle, err := c.runOnce(AdmitAll{}, slicing.Capacity{}, nil, trace)
		if err != nil {
			return nil, fmt.Errorf("fleet: oracle run: %w", err)
		}
		res.OracleValue = oracle.QoEWeightedValue
		res.Regret = res.OracleValue - res.QoEWeightedValue
	}
	return res, nil
}

// liveSlice is one admitted tenant's control-plane bookkeeping.
type liveSlice struct {
	a      Arrival
	site   slicing.SiteID // host site (empty on single-pool runs)
	depart int            // epoch at which the tenant leaves; 0 = horizon end
	value  float64
}

// runOnce is one complete fleet simulation under the given policy,
// capacity, and (optional) topology, replaying the given arrival
// trace. All state iterates in admission order, so repeated runs are
// bit-identical at any worker count.
func (c *Controller) runOnce(policy Policy, capacity slicing.Capacity, topo *topology.Graph, trace []Arrival) (*Result, error) {
	sys := c.newSystem(capacity, topo)
	if _, err := sys.Calibrate(); err != nil {
		return nil, err
	}
	placement := c.opts.Placement

	res := &Result{Policy: policy.Name(), Horizon: c.opts.Horizon, Arrivals: len(trace)}
	if topo != nil {
		res.Topology = topo.Name
		res.Placement = placement.Name()
		res.Sites = make([]SiteStat, len(topo.Sites))
		for i, s := range topo.Sites {
			res.Sites[i].Site = s.ID
		}
		capacity = topo.TotalCapacity()
	}
	classStats := make([]ClassStat, len(c.classes))
	for i, ac := range c.classes {
		classStats[i].Class = ac.Class.Name
	}

	live := map[string]*liveSlice{}
	var order []string // admission order; ids stay after departure, skipped via live
	next := 0          // next unprocessed trace index
	var utilSum slicing.Utilization
	var imbalanceSum float64
	siteIdx := map[slicing.SiteID]int{}
	for i, ss := range res.Sites {
		siteIdx[ss.Site] = i
	}

	// Admission estimates are pure per class — same calibration, same
	// artifact, same envelope — so the class fingerprint (and the store
	// read behind it) is computed once per class instead of once per
	// arrival. The oracle replay in particular calls the estimator for
	// every arrival it unconditionally admits; long-horizon runs were
	// paying that hashing hundreds of times over.
	type classEst struct {
		est    *core.OfflineResult
		demand slicing.Demand
	}
	ests := make(map[int]classEst, len(c.classes))
	estimate := func(a Arrival) (classEst, error) {
		if e, ok := ests[a.ClassIdx]; ok {
			return e, nil
		}
		est, demand, err := sys.EstimateAdmission(a.Class, 0)
		if err != nil {
			return classEst{}, err
		}
		e := classEst{est: est, demand: demand}
		ests[a.ClassIdx] = e
		return e, nil
	}

	// Site-aware ledger views: on single-pool runs site is always ""
	// (the ledger's default site), so these collapse to the historical
	// aggregate checks.
	ledgerFreeAt := func(site slicing.SiteID) slicing.Demand {
		if sys.Ledger == nil {
			return slicing.Demand{RanPRB: math.Inf(1), TnMbps: math.Inf(1), CnCPU: math.Inf(1)}
		}
		return sys.Ledger.FreeAt(site)
	}
	ledgerFitsAt := func(site slicing.SiteID, d slicing.Demand) bool {
		return sys.Ledger == nil || sys.Ledger.FitsAt(site, d)
	}
	utilization := func() slicing.Utilization {
		if sys.Ledger == nil {
			return slicing.Utilization{}
		}
		return sys.Ledger.Utilization()
	}

	for epoch := 0; epoch < c.opts.Horizon; epoch++ {
		es := EpochStat{Epoch: epoch}

		// Departures: tenants whose lifetime expired leave and are
		// decommissioned for good (capacity released, online checkpoint
		// finalized).
		for _, id := range order {
			ls, ok := live[id]
			if !ok || ls.depart == 0 || ls.depart > epoch {
				continue
			}
			if err := sys.ReleaseSlice(id); err != nil {
				return nil, fmt.Errorf("fleet: release %s: %w", id, err)
			}
			classStats[ls.a.ClassIdx].Value += ls.value
			delete(live, id)
			res.Departed++
		}

		// Arrivals: estimate the newcomer's footprint, pick a host site
		// (with a topology), consult the admission policy, arbitrate if
		// allowed, then admit or reject.
		for next < len(trace) && trace[next].Epoch == epoch {
			a := trace[next]
			next++
			es.Arrivals++
			classStats[a.ClassIdx].Arrivals++

			ce, err := estimate(a)
			if err != nil {
				return nil, fmt.Errorf("fleet: estimate %s: %w", a.ID, err)
			}
			est, demand := ce.est, ce.demand
			// Placement: pick the host site before admission. When the
			// demand fits nowhere, the returned site is still the
			// policy's arbitration target — downscaling is site-local,
			// so the arbitrator must know where to make room.
			var site slicing.SiteID
			var fits bool
			if topo == nil {
				fits = ledgerFitsAt("", demand)
			} else {
				site, fits = placement.Place(topo, sys.Ledger, topology.Request{
					ID:           a.ID,
					Demand:       demand,
					Home:         a.Home,
					Value:        a.Value,
					PredictedQoE: est.BestQoE,
				})
			}
			ctx := AdmissionContext{
				Epoch:        epoch,
				Demand:       demand,
				PredictedQoE: est.BestQoE,
				Free:         ledgerFreeAt(site),
				Capacity:     capacity,
				Utilization:  utilization().Max(),
			}
			// The policy's value gate runs before any arbitration, so a
			// newcomer the policy would refuse anyway never causes an
			// elastic tenant to shrink.
			reason := ""
			if !policy.Admit(ctx, a) {
				reason = "policy"
			} else {
				if topo != nil {
					res.PlacementAttempts++
				}
				if !fits && policy.Arbitrate(ctx, a) {
					res.Downscales += c.arbitrate(sys, live, order, demand, site)
					fits = ledgerFitsAt(site, demand)
					ctx.Free = ledgerFreeAt(site)
					ctx.Utilization = utilization().Max()
				}
			}
			if reason == "" && !fits {
				reason = "capacity"
			}
			if reason != "" {
				res.Rejected++
				es.Rejected++
				classStats[a.ClassIdx].Rejected++
				res.Rejections = append(res.Rejections, Rejection{Epoch: epoch, ID: a.ID, Class: a.Class.Name, Reason: reason})
				continue
			}
			if _, err := sys.AdmitSliceClassAt(a.ID, a.Class, 0, site); err != nil {
				if errors.Is(err, core.ErrInsufficientCapacity) {
					// The estimate and the reservation derive from the
					// same artifact, so this is unreachable in practice;
					// treat it as a capacity rejection if it ever fires.
					res.Rejected++
					es.Rejected++
					classStats[a.ClassIdx].Rejected++
					res.Rejections = append(res.Rejections, Rejection{Epoch: epoch, ID: a.ID, Class: a.Class.Name, Reason: "capacity"})
					continue
				}
				return nil, fmt.Errorf("fleet: admit %s: %w", a.ID, err)
			}
			depart := 0
			if a.Lifetime > 0 {
				depart = epoch + a.Lifetime
			}
			live[a.ID] = &liveSlice{a: a, site: site, depart: depart}
			order = append(order, a.ID)
			res.Admitted++
			es.Admitted++
			classStats[a.ClassIdx].Admitted++
			if topo != nil {
				res.Placed++
				if i, ok := siteIdx[site]; ok {
					res.Sites[i].Placed++
				}
			}
		}

		// Step every live slice one configuration interval, fanned out
		// over the worker pool; aggregate in admission order.
		ids := make([]string, 0, len(live))
		for _, id := range order {
			if _, ok := live[id]; ok {
				ids = append(ids, id)
			}
		}
		if err := sys.StepMany(ids, c.opts.Workers); err != nil {
			return nil, fmt.Errorf("fleet: step epoch %d: %w", epoch, err)
		}
		for _, id := range ids {
			ls := live[id]
			inst, ok := sys.Slice(id)
			if !ok || len(inst.QoEs) == 0 {
				continue
			}
			qoe := inst.QoEs[len(inst.QoEs)-1]
			if topo != nil {
				// Delivered QoE pays the locality toll: each transport
				// hop between the tenant's home cell and its host site
				// costs a fraction of the experienced quality.
				qoe *= topo.QoEFactor(ls.a.Home, ls.site)
			}
			v := ls.a.Value * qoe
			ls.value += v
			es.MeanQoE += qoe
			es.Value += v
			res.ServedEpochs++
			res.QoEWeightedValue += v
			if qoe < ls.a.Class.SLA.Availability {
				res.SLAViolations++
			}
		}
		es.Live = len(ids)
		if es.Live > 0 {
			es.MeanQoE /= float64(es.Live)
		}
		es.Util = utilization()
		utilSum.RAN += es.Util.RAN
		utilSum.TN += es.Util.TN
		utilSum.CN += es.Util.CN
		if es.Util.RAN > res.PeakUtil.RAN {
			res.PeakUtil.RAN = es.Util.RAN
		}
		if es.Util.TN > res.PeakUtil.TN {
			res.PeakUtil.TN = es.Util.TN
		}
		if es.Util.CN > res.PeakUtil.CN {
			res.PeakUtil.CN = es.Util.CN
		}
		if topo != nil {
			minU, maxU := math.Inf(1), 0.0
			for _, su := range sys.Ledger.SiteUtilizations() {
				i, ok := siteIdx[su.Site]
				if !ok {
					continue
				}
				res.Sites[i].MeanRanUtil += su.RAN
				if su.RAN > res.Sites[i].PeakRanUtil {
					res.Sites[i].PeakRanUtil = su.RAN
				}
				if su.RAN < minU {
					minU = su.RAN
				}
				if su.RAN > maxU {
					maxU = su.RAN
				}
			}
			imbalanceSum += maxU - minU
		}
		res.Epochs = append(res.Epochs, es)
	}

	// Decommission the fleet: every surviving tenant is released so the
	// run leaves no live checkpoints behind (and the oracle run that
	// may follow starts from a clean store).
	for _, id := range order {
		ls, ok := live[id]
		if !ok {
			continue
		}
		if err := sys.ReleaseSlice(id); err != nil {
			return nil, fmt.Errorf("fleet: final release %s: %w", id, err)
		}
		classStats[ls.a.ClassIdx].Value += ls.value
	}

	if res.Arrivals > 0 {
		res.AcceptanceRatio = float64(res.Admitted) / float64(res.Arrivals)
	} else {
		res.AcceptanceRatio = 1
	}
	if c.opts.Horizon > 0 {
		res.MeanUtil = slicing.Utilization{
			RAN: utilSum.RAN / float64(c.opts.Horizon),
			TN:  utilSum.TN / float64(c.opts.Horizon),
			CN:  utilSum.CN / float64(c.opts.Horizon),
		}
	}
	if topo != nil {
		if c.opts.Horizon > 0 {
			for i := range res.Sites {
				res.Sites[i].MeanRanUtil /= float64(c.opts.Horizon)
			}
			res.Imbalance = imbalanceSum / float64(c.opts.Horizon)
		}
		res.PlacementRatio = 1
		if res.PlacementAttempts > 0 {
			res.PlacementRatio = float64(res.Placed) / float64(res.PlacementAttempts)
		}
	}
	res.Classes = classStats
	res.Diags = sys.StoreDiagnostics()
	return res, nil
}

// arbitrate is the preemption-free downscale pass: it walks the live
// elastic slices in admission order and asks each one's online learner
// for a cheaper posterior-feasible configuration, collecting previewed
// envelope tightenings until the needed demand would fit at the target
// site. Site topology shapes what a tightening is worth: a tenant
// hosted at the target site frees local RAN plus the shared tiers,
// while a remote tenant's freed RAN belongs to its own site — only its
// freed transport/compute help, since those tiers are regional. The
// pass therefore walks the target site's tenants first and falls back
// to remote ones only for their shared-tier contribution (skipping any
// whose tightening frees no shared capacity at all). It stays
// transactional: tightenings commit only when they actually make room;
// if the elastic slices together cannot free enough, nothing is
// applied, so no tenant is degraded for an arrival that gets rejected
// anyway. It returns how many slices were downscaled; no slice is ever
// evicted or restarted. (On single-pool runs every slice and every
// arrival has the empty site, so the first pass covers the whole fleet
// as before.)
func (c *Controller) arbitrate(sys *core.System, live map[string]*liveSlice, order []string, need slicing.Demand, site slicing.SiteID) int {
	if sys.Ledger == nil {
		return 0
	}
	type tightening struct {
		id   string
		next slicing.Config
	}
	var plan []tightening
	var freed slicing.Demand
	enough := false
	for pass := 0; pass < 2 && !enough; pass++ {
		for _, id := range order {
			ls, ok := live[id]
			if !ok || !ls.a.Elastic || (ls.site == site) != (pass == 0) {
				continue
			}
			if need.Fits(sys.Ledger.FreeAt(site).Add(freed)) {
				enough = true
				break
			}
			next, f, ok, err := sys.PreviewDownscale(id, c.opts.DownscalePool)
			if err != nil || !ok {
				continue
			}
			if pass == 1 {
				// Remote RAN frees at the remote site, not here; only
				// the shared tiers count toward this admission. A
				// tightening that frees no shared capacity would shrink
				// the tenant for nothing — leave it alone.
				f.RanPRB = 0
				if f.IsZero() {
					continue
				}
			}
			plan = append(plan, tightening{id: id, next: next})
			freed = freed.Add(f)
		}
	}
	if !enough && !need.Fits(sys.Ledger.FreeAt(site).Add(freed)) {
		return 0
	}
	downs := 0
	for _, tg := range plan {
		if _, ok, err := sys.CommitDownscale(tg.id, tg.next); err == nil && ok {
			downs++
		}
	}
	return downs
}
