package fleet

import (
	"fmt"
	"log/slog"
	"math"

	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/obs"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/store"
	"github.com/atlas-slicing/atlas/internal/topology"
)

// Options configures one fleet run.
type Options struct {
	// Horizon is the number of control-plane epochs to simulate.
	Horizon int
	// Capacity is the shared infrastructure; the zero value means
	// unlimited (every fit check passes). Ignored when Topology is set.
	Capacity slicing.Capacity
	// Topology, when set, replaces the single aggregated pool with a
	// multi-site infrastructure: per-site RAN capacity plus shared
	// regional transport/compute, arrivals gain home-cell affinity, and
	// a placement stage picks every arrival's host site ahead of
	// admission.
	Topology *topology.Graph
	// Placement picks each arrival's host site when Topology is set;
	// nil defaults to the locality-aware policy.
	Placement topology.Policy
	// Policy is the admission policy; nil defaults to FirstFit.
	Policy Policy
	// Seed drives every random draw (arrival trace, per-slice seeds).
	// Same seed, same options => bit-identical Result.
	Seed int64
	// Workers bounds the lockstep path's concurrent per-epoch stepping
	// (0 = GOMAXPROCS). Results are identical at any worker count. The
	// sharded engine ignores it — there, concurrency is the shard
	// count.
	Workers int
	// Shards selects the site-sharded event-driven engine's shard
	// count: 0 (auto) means one shard per topology site, and the value
	// is clamped to [1, number of sites] (single-pool runs have one
	// site). Results are bit-identical at any shard count.
	Shards int
	// Lockstep replaces the event-driven sharded engine with the
	// legacy epoch-lockstep stepping path — the reference
	// implementation differential tests and benchmarks compare
	// against. Results are bit-identical either way.
	Lockstep bool
	// DownscalePool is the candidate-pool size the arbitrator hands the
	// online learner when searching for cheaper configurations (0
	// defaults to 250).
	DownscalePool int
	// Headroom scales reservation envelopes (0 = core.DefaultHeadroom).
	Headroom float64
	// Oracle additionally runs the infinite-capacity admit-all fleet on
	// the same arrival trace and reports the QoE-weighted value an
	// unconstrained infrastructure would have earned.
	Oracle bool
	// Store persists learned artifacts; nil uses a fresh in-memory
	// store, which still dedups training to once per class within the
	// run.
	Store *store.Store
	// Tune, when set, adjusts the per-run core.System (training
	// budgets, online options) after fleet defaults are applied and
	// before calibration.
	Tune func(*core.System)
	// Obs registers the run's observability metrics (stage timings,
	// scan/memo throughput, admission decisions, shard queues) with the
	// given registry; nil disables instrumentation. Trace receives one
	// structured record per admission/resize/release decision; nil
	// disables tracing. Both are result-invariant: metrics-on and
	// metrics-off runs produce bit-identical Results (enforced by the
	// fingerprint parity test). An Oracle companion run is never
	// instrumented, so counters reflect the constrained fleet only.
	Obs   *obs.Registry
	Trace *slog.Logger
	// Recorder, when set, samples fleet aggregates (live slices,
	// acceptance ratio, QoE value, per-domain and per-site utilization,
	// oracle regret) into time-series ring buffers once per epoch; nil
	// disables the flight recorder. Timeline, when set, records every
	// engine decision and per-epoch QoE/envelope sample on a bounded
	// per-slice timeline. Both are result-invariant like Obs/Trace, and
	// an Oracle companion run is never recorded (only its per-epoch
	// regret is written back to the Recorder after the fact).
	Recorder *obs.Recorder
	Timeline *obs.TimelineStore
}

// EpochStat is one epoch's aggregate.
type EpochStat struct {
	Epoch    int
	Live     int
	Arrivals int
	Admitted int
	Rejected int
	// Util is the per-domain reserved fraction at the end of the epoch.
	Util slicing.Utilization
	// MeanQoE averages the live slices' delivered QoE this epoch.
	MeanQoE float64
	// Value is the QoE-weighted value earned this epoch.
	Value float64
}

// Rejection records one refused arrival.
type Rejection struct {
	Epoch  int
	ID     string
	Class  string
	Reason string // "capacity" or "policy"
}

// SiteStat aggregates one topology site over the run.
type SiteStat struct {
	Site slicing.SiteID
	// Placed counts the arrivals admitted with this site as host.
	Placed int
	// MeanRanUtil and PeakRanUtil summarize the site's local reserved
	// RAN utilization over the horizon.
	MeanRanUtil float64
	PeakRanUtil float64
}

// ClassStat aggregates one arrival class over the run.
type ClassStat struct {
	Class    string
	Arrivals int
	Admitted int
	Rejected int
	// Value is the QoE-weighted value the class's admitted tenants
	// earned.
	Value float64
}

// Result is the outcome of one fleet run.
type Result struct {
	Policy  string
	Horizon int

	Arrivals   int
	Admitted   int
	Rejected   int
	Departed   int
	Downscales int
	// AcceptanceRatio is Admitted/Arrivals (1 when no arrivals).
	AcceptanceRatio float64

	// MeanUtil and PeakUtil summarize per-domain reserved utilization
	// over the horizon.
	MeanUtil slicing.Utilization
	PeakUtil slicing.Utilization

	// ServedEpochs counts (slice, epoch) pairs served;  SLAViolations
	// counts those whose delivered QoE missed the class target.
	ServedEpochs  int
	SLAViolations int

	// QoEWeightedValue sums Value x delivered QoE over every served
	// slice-epoch. OracleValue is the same sum for the
	// infinite-capacity admit-all fleet on the same arrival trace
	// (0 unless Options.Oracle), and Regret their difference.
	QoEWeightedValue float64
	OracleValue      float64
	Regret           float64

	Epochs     []EpochStat
	Rejections []Rejection
	Classes    []ClassStat

	// Topology metrics (zero-valued on single-pool runs). Topology and
	// Placement name the site graph and placement policy;
	// PlacementAttempts counts arrivals that passed the admission
	// policy's value gate and therefore needed a host site, Placed
	// those that found one (immediately or after site-local
	// arbitration), and PlacementRatio their quotient (1 with no
	// attempts). Imbalance is the mean over epochs of the spread
	// (max − min) of per-site reserved RAN utilization — 0 means every
	// site carries the same fraction of its local capacity.
	Topology          string
	Placement         string
	PlacementAttempts int
	Placed            int
	PlacementRatio    float64
	Imbalance         float64
	Sites             []SiteStat

	// Diags carries the non-fatal artifact-store diagnostics the
	// underlying system accumulated.
	Diags []error
}

// Controller runs the fleet control plane: an event-driven simulation
// of slice arrivals, admissions, concurrent online learning, and
// departures over finite capacity.
type Controller struct {
	real    slicing.Env
	sim     *simnet.Simulator
	classes []ArrivalClass
	opts    Options
	st      *store.Store
}

// NewController builds a controller over a real network, a simulator,
// and the scenario's arrival classes.
func NewController(real slicing.Env, sim *simnet.Simulator, classes []ArrivalClass, opts Options) *Controller {
	if opts.Horizon <= 0 {
		opts.Horizon = 100
	}
	if opts.Policy == nil {
		opts.Policy = FirstFit{}
	}
	if opts.Placement == nil {
		opts.Placement = topology.Locality{}
	}
	if opts.DownscalePool <= 0 {
		opts.DownscalePool = 250
	}
	st := opts.Store
	if st == nil {
		st = store.InMemory()
	}
	return &Controller{real: real, sim: sim, classes: append([]ArrivalClass(nil), classes...), opts: opts, st: st}
}

// newSystem builds the per-run core.System with fleet-scale budgets.
func (c *Controller) newSystem(capacity slicing.Capacity, topo *topology.Graph) *core.System {
	sys := core.NewSystem(c.real, c.sim, c.opts.Seed)
	sys.Store = c.st
	sys.Headroom = c.opts.Headroom
	if topo != nil {
		sys.Ledger = topo.NewLedger()
	} else if !capacity.IsZero() {
		sys.Ledger = slicing.NewCapacityLedger(capacity)
	}
	// Fleet-scale defaults: churn admits tens of tenants per run, so
	// per-admission budgets are tighter than the single-slice deep
	// dives; the store amortizes them to once per class anyway.
	sys.CalOpts.Iters, sys.CalOpts.Explore, sys.CalOpts.Batch, sys.CalOpts.Pool = 40, 10, 2, 300
	sys.OffOpts.Iters, sys.OffOpts.Explore, sys.OffOpts.Batch, sys.OffOpts.Pool = 60, 12, 2, 300
	sys.OnOpts.Pool, sys.OnOpts.N = 250, 5
	if c.opts.Tune != nil {
		c.opts.Tune(sys)
	}
	return sys
}

// Run executes the fleet simulation and, when Options.Oracle is set,
// the infinite-capacity oracle on the same arrival trace.
func (c *Controller) Run() (*Result, error) {
	// One trace serves both runs: home cells are drawn into the trace
	// (when a topology is set), so the oracle replays exactly the
	// constrained fleet's arrivals.
	var sites []slicing.SiteID
	if c.opts.Topology != nil {
		sites = c.opts.Topology.SiteIDs()
	}
	trace := TraceOver(c.classes, c.opts.Horizon, c.opts.Seed, sites)
	res, err := c.runOnce(c.opts.Policy, c.opts.Capacity, c.opts.Topology, trace, c.opts.Obs, c.opts.Trace, c.opts.Recorder, c.opts.Timeline)
	if err != nil {
		return nil, err
	}
	if c.opts.Oracle {
		// The oracle is placement-free on purpose: unlimited single-pool
		// capacity with every slice at home, so regret covers both what
		// admission refused and what non-home placement cost. It is also
		// uninstrumented and unrecorded, so the registry's counters and
		// the flight recorder describe the constrained fleet alone.
		oracle, err := c.runOnce(AdmitAll{}, slicing.Capacity{}, nil, trace, nil, nil, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("fleet: oracle run: %w", err)
		}
		res.OracleValue = oracle.QoEWeightedValue
		res.Regret = res.OracleValue - res.QoEWeightedValue
		// Write the oracle's per-epoch regret trajectory back to the
		// flight recorder post-hoc: the cumulative gap between what an
		// unconstrained infrastructure would have earned and what the
		// constrained fleet did.
		if c.opts.Recorder != nil {
			fleetCum, oracleCum := 0.0, 0.0
			for i := range oracle.Epochs {
				oracleCum += oracle.Epochs[i].Value
				if i < len(res.Epochs) {
					fleetCum += res.Epochs[i].Value
				}
				c.opts.Recorder.Record(i, "oracle_regret", oracleCum-fleetCum)
			}
		}
	}
	return res, nil
}

// runMeta is the per-tenant bookkeeping the batch run layers on top of
// the engine's live set: the scheduled departure epoch and the accrued
// QoE-weighted value.
type runMeta struct {
	depart int // epoch at which the tenant leaves; 0 = horizon end
	value  float64
}

// runOnce is one complete fleet simulation under the given policy,
// capacity, and (optional) topology, replaying the given arrival trace
// through the per-request Engine. Control events (admissions,
// departures) execute in one global sequence and all per-epoch
// aggregation iterates in admission order, so repeated runs are
// bit-identical at any worker or shard count.
func (c *Controller) runOnce(policy Policy, capacity slicing.Capacity, topo *topology.Graph, trace []Arrival, reg *obs.Registry, trc *slog.Logger, rec *obs.Recorder, tl *obs.TimelineStore) (*Result, error) {
	sys := c.newSystem(capacity, topo)
	sys.Instrument(reg)
	if _, err := sys.Calibrate(); err != nil {
		return nil, err
	}
	eng := NewEngine(sys, EngineConfig{
		Policy:        policy,
		Placement:     c.opts.Placement,
		Topology:      topo,
		Capacity:      capacity,
		DownscalePool: c.opts.DownscalePool,
		Obs:           reg,
		Trace:         trc,
		Timeline:      tl,
	})
	var st stepper
	if c.opts.Lockstep {
		st = lockstepStepper{sys: sys, workers: c.opts.Workers}
	} else {
		st = newShardEngine(sys, topo, c.opts.Shards, reg)
	}
	defer st.close()

	res := &Result{Policy: policy.Name(), Horizon: c.opts.Horizon, Arrivals: len(trace)}
	if topo != nil {
		res.Topology = topo.Name
		res.Placement = c.opts.Placement.Name()
		res.Sites = make([]SiteStat, len(topo.Sites))
		for i, s := range topo.Sites {
			res.Sites[i].Site = s.ID
		}
	}
	classStats := make([]ClassStat, len(c.classes))
	for i, ac := range c.classes {
		classStats[i].Class = ac.Class.Name
	}

	meta := map[string]*runMeta{}
	next := 0            // next unprocessed trace index
	var liveBuf []string // reused live-id snapshot, one per loop below
	var utilSum slicing.Utilization
	var imbalanceSum float64
	siteIdx := map[slicing.SiteID]int{}
	for i, ss := range res.Sites {
		siteIdx[ss.Site] = i
	}

	for epoch := 0; epoch < c.opts.Horizon; epoch++ {
		es := EpochStat{Epoch: epoch}
		eng.NoteEpoch(epoch)

		// Departures: tenants whose lifetime expired leave and are
		// decommissioned for good (capacity released, online checkpoint
		// finalized).
		liveBuf = eng.LiveAppend(liveBuf[:0])
		for _, id := range liveBuf {
			m := meta[id]
			if m.depart == 0 || m.depart > epoch {
				continue
			}
			t, err := eng.Release(id)
			if err != nil {
				return nil, fmt.Errorf("fleet: release %s: %w", id, err)
			}
			st.detach(id, t.Site)
			classStats[t.Arrival.ClassIdx].Value += m.value
			delete(meta, id)
			res.Departed++
		}

		// Arrivals: the engine runs the full per-request path —
		// estimate, placement, policy gate, arbitration, reservation.
		for next < len(trace) && trace[next].Epoch == epoch {
			a := trace[next]
			next++
			es.Arrivals++
			classStats[a.ClassIdx].Arrivals++

			dec, err := eng.Handle(a)
			if err != nil {
				return nil, err
			}
			if dec.PlacementAttempted {
				res.PlacementAttempts++
			}
			res.Downscales += dec.Downscales
			if !dec.Admitted {
				res.Rejected++
				es.Rejected++
				classStats[a.ClassIdx].Rejected++
				res.Rejections = append(res.Rejections, Rejection{Epoch: epoch, ID: a.ID, Class: a.Class.Name, Reason: dec.Reason})
				continue
			}
			depart := 0
			if a.Lifetime > 0 {
				depart = epoch + a.Lifetime
			}
			meta[a.ID] = &runMeta{depart: depart}
			st.attach(a.ID, dec.Site)
			res.Admitted++
			es.Admitted++
			classStats[a.ClassIdx].Admitted++
			if topo != nil {
				res.Placed++
				if i, ok := siteIdx[dec.Site]; ok {
					res.Sites[i].Placed++
				}
			}
		}

		// Step every live slice one configuration interval — a tick
		// event fanned out to the shard executors (or the lockstep
		// worker pool); aggregate in admission order after the commit
		// barrier.
		liveBuf = eng.LiveAppend(liveBuf[:0])
		ids := liveBuf
		if err := st.tick(epoch, ids); err != nil {
			return nil, fmt.Errorf("fleet: step epoch %d: %w", epoch, err)
		}
		for _, id := range ids {
			t, _ := eng.Tenant(id)
			inst, ok := sys.Slice(id)
			if !ok || len(inst.QoEs) == 0 {
				continue
			}
			qoe := inst.QoEs[len(inst.QoEs)-1]
			if topo != nil {
				// Delivered QoE pays the locality toll: each transport
				// hop between the tenant's home cell and its host site
				// costs a fraction of the experienced quality.
				qoe *= topo.QoEFactor(t.Arrival.Home, t.Site)
			}
			v := t.Arrival.Value * qoe
			meta[id].value += v
			es.MeanQoE += qoe
			es.Value += v
			res.ServedEpochs++
			res.QoEWeightedValue += v
			if qoe < t.Arrival.Class.SLA.Availability {
				res.SLAViolations++
			}
		}
		es.Live = len(ids)
		if es.Live > 0 {
			es.MeanQoE /= float64(es.Live)
		}
		es.Util = eng.Utilization()
		utilSum.RAN += es.Util.RAN
		utilSum.TN += es.Util.TN
		utilSum.CN += es.Util.CN
		if es.Util.RAN > res.PeakUtil.RAN {
			res.PeakUtil.RAN = es.Util.RAN
		}
		if es.Util.TN > res.PeakUtil.TN {
			res.PeakUtil.TN = es.Util.TN
		}
		if es.Util.CN > res.PeakUtil.CN {
			res.PeakUtil.CN = es.Util.CN
		}
		if topo != nil {
			minU, maxU := math.Inf(1), 0.0
			for _, su := range sys.Ledger.SiteUtilizations() {
				i, ok := siteIdx[su.Site]
				if !ok {
					continue
				}
				res.Sites[i].MeanRanUtil += su.RAN
				if su.RAN > res.Sites[i].PeakRanUtil {
					res.Sites[i].PeakRanUtil = su.RAN
				}
				if su.RAN < minU {
					minU = su.RAN
				}
				if su.RAN > maxU {
					maxU = su.RAN
				}
			}
			imbalanceSum += maxU - minU
		}
		res.Epochs = append(res.Epochs, es)

		// Flight-recorder sampling: read the epoch's already-computed
		// aggregates into the ring buffers. Post-decision, no RNG, no
		// feedback — a recorded run stays bit-identical to an
		// unrecorded one.
		if rec != nil {
			rec.Record(epoch, "live", float64(es.Live))
			if n := res.Admitted + res.Rejected; n > 0 {
				rec.Record(epoch, "acceptance_ratio", float64(res.Admitted)/float64(n))
			} else {
				rec.Record(epoch, "acceptance_ratio", 1)
			}
			rec.Record(epoch, "qoe_mean", es.MeanQoE)
			rec.Record(epoch, "qoe_value", es.Value)
			rec.Record(epoch, "util_ran", es.Util.RAN)
			rec.Record(epoch, "util_tn", es.Util.TN)
			rec.Record(epoch, "util_cn", es.Util.CN)
			if topo != nil {
				for _, su := range sys.Ledger.SiteUtilizations() {
					rec.Record(epoch, "site_ran_util:"+string(su.Site), su.RAN)
				}
			}
		}
	}

	// Decommission the fleet: every surviving tenant is released so the
	// run leaves no live checkpoints behind (and the oracle run that
	// may follow starts from a clean store).
	liveBuf = eng.LiveAppend(liveBuf[:0])
	for _, id := range liveBuf {
		m := meta[id]
		t, err := eng.Release(id)
		if err != nil {
			return nil, fmt.Errorf("fleet: final release %s: %w", id, err)
		}
		st.detach(id, t.Site)
		classStats[t.Arrival.ClassIdx].Value += m.value
	}

	if res.Arrivals > 0 {
		res.AcceptanceRatio = float64(res.Admitted) / float64(res.Arrivals)
	} else {
		res.AcceptanceRatio = 1
	}
	if c.opts.Horizon > 0 {
		res.MeanUtil = slicing.Utilization{
			RAN: utilSum.RAN / float64(c.opts.Horizon),
			TN:  utilSum.TN / float64(c.opts.Horizon),
			CN:  utilSum.CN / float64(c.opts.Horizon),
		}
	}
	if topo != nil {
		if c.opts.Horizon > 0 {
			for i := range res.Sites {
				res.Sites[i].MeanRanUtil /= float64(c.opts.Horizon)
			}
			res.Imbalance = imbalanceSum / float64(c.opts.Horizon)
		}
		res.PlacementRatio = 1
		if res.PlacementAttempts > 0 {
			res.PlacementRatio = float64(res.Placed) / float64(res.PlacementAttempts)
		}
	}
	res.Classes = classStats
	res.Diags = sys.StoreDiagnostics()
	return res, nil
}
