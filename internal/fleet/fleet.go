package fleet

import (
	"errors"
	"fmt"
	"math"

	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/store"
)

// Options configures one fleet run.
type Options struct {
	// Horizon is the number of control-plane epochs to simulate.
	Horizon int
	// Capacity is the shared infrastructure; the zero value means
	// unlimited (every fit check passes).
	Capacity slicing.Capacity
	// Policy is the admission policy; nil defaults to FirstFit.
	Policy Policy
	// Seed drives every random draw (arrival trace, per-slice seeds).
	// Same seed, same options => bit-identical Result.
	Seed int64
	// Workers bounds the concurrent per-epoch stepping (0 =
	// GOMAXPROCS). Results are identical at any worker count.
	Workers int
	// DownscalePool is the candidate-pool size the arbitrator hands the
	// online learner when searching for cheaper configurations (0
	// defaults to 250).
	DownscalePool int
	// Headroom scales reservation envelopes (0 = core.DefaultHeadroom).
	Headroom float64
	// Oracle additionally runs the infinite-capacity admit-all fleet on
	// the same arrival trace and reports the QoE-weighted value an
	// unconstrained infrastructure would have earned.
	Oracle bool
	// Store persists learned artifacts; nil uses a fresh in-memory
	// store, which still dedups training to once per class within the
	// run.
	Store *store.Store
	// Tune, when set, adjusts the per-run core.System (training
	// budgets, online options) after fleet defaults are applied and
	// before calibration.
	Tune func(*core.System)
}

// EpochStat is one epoch's aggregate.
type EpochStat struct {
	Epoch    int
	Live     int
	Arrivals int
	Admitted int
	Rejected int
	// Util is the per-domain reserved fraction at the end of the epoch.
	Util slicing.Utilization
	// MeanQoE averages the live slices' delivered QoE this epoch.
	MeanQoE float64
	// Value is the QoE-weighted value earned this epoch.
	Value float64
}

// Rejection records one refused arrival.
type Rejection struct {
	Epoch  int
	ID     string
	Class  string
	Reason string // "capacity" or "policy"
}

// ClassStat aggregates one arrival class over the run.
type ClassStat struct {
	Class    string
	Arrivals int
	Admitted int
	Rejected int
	// Value is the QoE-weighted value the class's admitted tenants
	// earned.
	Value float64
}

// Result is the outcome of one fleet run.
type Result struct {
	Policy  string
	Horizon int

	Arrivals   int
	Admitted   int
	Rejected   int
	Departed   int
	Downscales int
	// AcceptanceRatio is Admitted/Arrivals (1 when no arrivals).
	AcceptanceRatio float64

	// MeanUtil and PeakUtil summarize per-domain reserved utilization
	// over the horizon.
	MeanUtil slicing.Utilization
	PeakUtil slicing.Utilization

	// ServedEpochs counts (slice, epoch) pairs served;  SLAViolations
	// counts those whose delivered QoE missed the class target.
	ServedEpochs  int
	SLAViolations int

	// QoEWeightedValue sums Value x delivered QoE over every served
	// slice-epoch. OracleValue is the same sum for the
	// infinite-capacity admit-all fleet on the same arrival trace
	// (0 unless Options.Oracle), and Regret their difference.
	QoEWeightedValue float64
	OracleValue      float64
	Regret           float64

	Epochs     []EpochStat
	Rejections []Rejection
	Classes    []ClassStat

	// Diags carries the non-fatal artifact-store diagnostics the
	// underlying system accumulated.
	Diags []error
}

// Controller runs the fleet control plane: an event-driven simulation
// of slice arrivals, admissions, concurrent online learning, and
// departures over finite capacity.
type Controller struct {
	real    slicing.Env
	sim     *simnet.Simulator
	classes []ArrivalClass
	opts    Options
	st      *store.Store
}

// NewController builds a controller over a real network, a simulator,
// and the scenario's arrival classes.
func NewController(real slicing.Env, sim *simnet.Simulator, classes []ArrivalClass, opts Options) *Controller {
	if opts.Horizon <= 0 {
		opts.Horizon = 100
	}
	if opts.Policy == nil {
		opts.Policy = FirstFit{}
	}
	if opts.DownscalePool <= 0 {
		opts.DownscalePool = 250
	}
	st := opts.Store
	if st == nil {
		st = store.InMemory()
	}
	return &Controller{real: real, sim: sim, classes: append([]ArrivalClass(nil), classes...), opts: opts, st: st}
}

// newSystem builds the per-run core.System with fleet-scale budgets.
func (c *Controller) newSystem(capacity slicing.Capacity) *core.System {
	sys := core.NewSystem(c.real, c.sim, c.opts.Seed)
	sys.Store = c.st
	sys.Headroom = c.opts.Headroom
	if !capacity.IsZero() {
		sys.Ledger = slicing.NewCapacityLedger(capacity)
	}
	// Fleet-scale defaults: churn admits tens of tenants per run, so
	// per-admission budgets are tighter than the single-slice deep
	// dives; the store amortizes them to once per class anyway.
	sys.CalOpts.Iters, sys.CalOpts.Explore, sys.CalOpts.Batch, sys.CalOpts.Pool = 40, 10, 2, 300
	sys.OffOpts.Iters, sys.OffOpts.Explore, sys.OffOpts.Batch, sys.OffOpts.Pool = 60, 12, 2, 300
	sys.OnOpts.Pool, sys.OnOpts.N = 250, 5
	if c.opts.Tune != nil {
		c.opts.Tune(sys)
	}
	return sys
}

// Run executes the fleet simulation and, when Options.Oracle is set,
// the infinite-capacity oracle on the same arrival trace.
func (c *Controller) Run() (*Result, error) {
	res, err := c.runOnce(c.opts.Policy, c.opts.Capacity)
	if err != nil {
		return nil, err
	}
	if c.opts.Oracle {
		oracle, err := c.runOnce(AdmitAll{}, slicing.Capacity{})
		if err != nil {
			return nil, fmt.Errorf("fleet: oracle run: %w", err)
		}
		res.OracleValue = oracle.QoEWeightedValue
		res.Regret = res.OracleValue - res.QoEWeightedValue
	}
	return res, nil
}

// liveSlice is one admitted tenant's control-plane bookkeeping.
type liveSlice struct {
	a      Arrival
	depart int // epoch at which the tenant leaves; 0 = horizon end
	value  float64
}

// runOnce is one complete fleet simulation under the given policy and
// capacity. All state iterates in admission order, so repeated runs are
// bit-identical at any worker count.
func (c *Controller) runOnce(policy Policy, capacity slicing.Capacity) (*Result, error) {
	sys := c.newSystem(capacity)
	if _, err := sys.Calibrate(); err != nil {
		return nil, err
	}
	trace := Trace(c.classes, c.opts.Horizon, c.opts.Seed)

	res := &Result{Policy: policy.Name(), Horizon: c.opts.Horizon, Arrivals: len(trace)}
	classStats := make([]ClassStat, len(c.classes))
	for i, ac := range c.classes {
		classStats[i].Class = ac.Class.Name
	}

	live := map[string]*liveSlice{}
	var order []string // admission order; ids stay after departure, skipped via live
	next := 0          // next unprocessed trace index
	var utilSum slicing.Utilization

	ledgerFree := func() slicing.Demand {
		if sys.Ledger == nil {
			return slicing.Demand{RanPRB: math.Inf(1), TnMbps: math.Inf(1), CnCPU: math.Inf(1)}
		}
		return sys.Ledger.Free()
	}
	ledgerFits := func(d slicing.Demand) bool {
		return sys.Ledger == nil || sys.Ledger.Fits(d)
	}
	utilization := func() slicing.Utilization {
		if sys.Ledger == nil {
			return slicing.Utilization{}
		}
		return sys.Ledger.Utilization()
	}

	for epoch := 0; epoch < c.opts.Horizon; epoch++ {
		es := EpochStat{Epoch: epoch}

		// Departures: tenants whose lifetime expired leave and are
		// decommissioned for good (capacity released, online checkpoint
		// finalized).
		for _, id := range order {
			ls, ok := live[id]
			if !ok || ls.depart == 0 || ls.depart > epoch {
				continue
			}
			if err := sys.ReleaseSlice(id); err != nil {
				return nil, fmt.Errorf("fleet: release %s: %w", id, err)
			}
			classStats[ls.a.ClassIdx].Value += ls.value
			delete(live, id)
			res.Departed++
		}

		// Arrivals: estimate the newcomer's footprint, consult the
		// admission policy, arbitrate if allowed, then admit or reject.
		for next < len(trace) && trace[next].Epoch == epoch {
			a := trace[next]
			next++
			es.Arrivals++
			classStats[a.ClassIdx].Arrivals++

			est, demand, err := sys.EstimateAdmission(a.Class, 0)
			if err != nil {
				return nil, fmt.Errorf("fleet: estimate %s: %w", a.ID, err)
			}
			ctx := AdmissionContext{
				Epoch:        epoch,
				Demand:       demand,
				PredictedQoE: est.BestQoE,
				Free:         ledgerFree(),
				Capacity:     capacity,
				Utilization:  utilization().Max(),
			}
			// The policy's value gate runs before any arbitration, so a
			// newcomer the policy would refuse anyway never causes an
			// elastic tenant to shrink.
			reason := ""
			fits := ledgerFits(demand)
			if !policy.Admit(ctx, a) {
				reason = "policy"
			} else if !fits && policy.Arbitrate(ctx, a) {
				res.Downscales += c.arbitrate(sys, live, order, demand)
				fits = ledgerFits(demand)
				ctx.Free = ledgerFree()
				ctx.Utilization = utilization().Max()
			}
			if reason == "" && !fits {
				reason = "capacity"
			}
			if reason != "" {
				res.Rejected++
				es.Rejected++
				classStats[a.ClassIdx].Rejected++
				res.Rejections = append(res.Rejections, Rejection{Epoch: epoch, ID: a.ID, Class: a.Class.Name, Reason: reason})
				continue
			}
			if _, err := sys.AdmitSliceClass(a.ID, a.Class, 0); err != nil {
				if errors.Is(err, core.ErrInsufficientCapacity) {
					// The estimate and the reservation derive from the
					// same artifact, so this is unreachable in practice;
					// treat it as a capacity rejection if it ever fires.
					res.Rejected++
					es.Rejected++
					classStats[a.ClassIdx].Rejected++
					res.Rejections = append(res.Rejections, Rejection{Epoch: epoch, ID: a.ID, Class: a.Class.Name, Reason: "capacity"})
					continue
				}
				return nil, fmt.Errorf("fleet: admit %s: %w", a.ID, err)
			}
			depart := 0
			if a.Lifetime > 0 {
				depart = epoch + a.Lifetime
			}
			live[a.ID] = &liveSlice{a: a, depart: depart}
			order = append(order, a.ID)
			res.Admitted++
			es.Admitted++
			classStats[a.ClassIdx].Admitted++
		}

		// Step every live slice one configuration interval, fanned out
		// over the worker pool; aggregate in admission order.
		ids := make([]string, 0, len(live))
		for _, id := range order {
			if _, ok := live[id]; ok {
				ids = append(ids, id)
			}
		}
		if err := sys.StepMany(ids, c.opts.Workers); err != nil {
			return nil, fmt.Errorf("fleet: step epoch %d: %w", epoch, err)
		}
		for _, id := range ids {
			ls := live[id]
			inst, ok := sys.Slice(id)
			if !ok || len(inst.QoEs) == 0 {
				continue
			}
			qoe := inst.QoEs[len(inst.QoEs)-1]
			v := ls.a.Value * qoe
			ls.value += v
			es.MeanQoE += qoe
			es.Value += v
			res.ServedEpochs++
			res.QoEWeightedValue += v
			if qoe < ls.a.Class.SLA.Availability {
				res.SLAViolations++
			}
		}
		es.Live = len(ids)
		if es.Live > 0 {
			es.MeanQoE /= float64(es.Live)
		}
		es.Util = utilization()
		utilSum.RAN += es.Util.RAN
		utilSum.TN += es.Util.TN
		utilSum.CN += es.Util.CN
		if es.Util.RAN > res.PeakUtil.RAN {
			res.PeakUtil.RAN = es.Util.RAN
		}
		if es.Util.TN > res.PeakUtil.TN {
			res.PeakUtil.TN = es.Util.TN
		}
		if es.Util.CN > res.PeakUtil.CN {
			res.PeakUtil.CN = es.Util.CN
		}
		res.Epochs = append(res.Epochs, es)
	}

	// Decommission the fleet: every surviving tenant is released so the
	// run leaves no live checkpoints behind (and the oracle run that
	// may follow starts from a clean store).
	for _, id := range order {
		ls, ok := live[id]
		if !ok {
			continue
		}
		if err := sys.ReleaseSlice(id); err != nil {
			return nil, fmt.Errorf("fleet: final release %s: %w", id, err)
		}
		classStats[ls.a.ClassIdx].Value += ls.value
	}

	if res.Arrivals > 0 {
		res.AcceptanceRatio = float64(res.Admitted) / float64(res.Arrivals)
	} else {
		res.AcceptanceRatio = 1
	}
	if c.opts.Horizon > 0 {
		res.MeanUtil = slicing.Utilization{
			RAN: utilSum.RAN / float64(c.opts.Horizon),
			TN:  utilSum.TN / float64(c.opts.Horizon),
			CN:  utilSum.CN / float64(c.opts.Horizon),
		}
	}
	res.Classes = classStats
	res.Diags = sys.StoreDiagnostics()
	return res, nil
}

// arbitrate is the preemption-free downscale pass: it walks the live
// elastic slices in admission order and asks each one's online learner
// for a cheaper posterior-feasible configuration, collecting previewed
// envelope tightenings until the needed demand would fit. The pass is
// transactional — tightenings commit only when they actually make room
// for the newcomer; if every elastic slice together cannot free
// enough, nothing is applied, so no tenant is degraded for an arrival
// that gets rejected anyway. It returns how many slices were
// downscaled; no slice is ever evicted or restarted.
func (c *Controller) arbitrate(sys *core.System, live map[string]*liveSlice, order []string, need slicing.Demand) int {
	if sys.Ledger == nil {
		return 0
	}
	type tightening struct {
		id   string
		next slicing.Config
	}
	var plan []tightening
	var freed slicing.Demand
	enough := false
	for _, id := range order {
		ls, ok := live[id]
		if !ok || !ls.a.Elastic {
			continue
		}
		if need.Fits(sys.Ledger.Free().Add(freed)) {
			enough = true
			break
		}
		next, f, ok, err := sys.PreviewDownscale(id, c.opts.DownscalePool)
		if err != nil || !ok {
			continue
		}
		plan = append(plan, tightening{id: id, next: next})
		freed = freed.Add(f)
	}
	if !enough && !need.Fits(sys.Ledger.Free().Add(freed)) {
		return 0
	}
	downs := 0
	for _, tg := range plan {
		if _, ok, err := sys.CommitDownscale(tg.id, tg.next); err == nil && ok {
			downs++
		}
	}
	return downs
}
