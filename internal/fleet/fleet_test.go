package fleet

import (
	"reflect"
	"testing"

	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/realnet"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/simnet/app"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// tinyTune shrinks every training budget to test scale.
func tinyTune(sys *core.System) {
	sys.CalOpts.Iters, sys.CalOpts.Explore, sys.CalOpts.Batch, sys.CalOpts.Pool = 12, 4, 2, 120
	sys.OffOpts.Iters, sys.OffOpts.Explore, sys.OffOpts.Batch, sys.OffOpts.Pool = 15, 5, 2, 120
	sys.OnOpts.Pool, sys.OnOpts.N = 100, 2
}

// testVideo is the prototype class (CPU-hungry envelope), elastic.
func testVideo() slicing.ServiceClass { return slicing.DefaultServiceClass() }

// testTeleop is a URLLC-style class with a small envelope.
func testTeleop() slicing.ServiceClass {
	return slicing.ServiceClass{
		Name:    "teleop",
		App:     app.Profile{FrameKBitMean: 12, FrameKBitStd: 3, ResultKBit: 4, LoadingBaseMs: 2, ComputeScale: 0.08},
		QoE:     slicing.PercentileDeadlineQoE{Percentile: 0.95, DeadlineMs: 150},
		SLA:     slicing.SLA{ThresholdMs: 150, Availability: 0.95},
		Traffic: 1, TrafficModel: slicing.ConstantTraffic{},
	}
}

// testIoT is a relaxed mMTC-style class with the smallest envelope.
func testIoT() slicing.ServiceClass {
	return slicing.ServiceClass{
		Name:    "iot",
		App:     app.Profile{FrameKBitMean: 40, FrameKBitStd: 12, ResultKBit: 2, LoadingBaseMs: 5, ComputeScale: 0.15},
		QoE:     slicing.AvailabilityQoE{ThresholdMs: 500},
		SLA:     slicing.SLA{ThresholdMs: 500, Availability: 0.85},
		Traffic: 2, TrafficModel: slicing.BurstyTraffic{},
	}
}

func TestTraceDeterministicAndOrdered(t *testing.T) {
	classes := []ArrivalClass{
		{Class: testVideo(), Rate: 0.4, MeanLifetime: 8, Value: 2},
		{Class: testTeleop(), Every: 3, Phase: 1, MeanLifetime: 5, Value: 5},
	}
	a := Trace(classes, 30, 9)
	b := Trace(classes, 30, 9)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("trace is not deterministic for a fixed seed")
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	seen := map[string]bool{}
	teleops := 0
	for i, ev := range a {
		if i > 0 && ev.Epoch < a[i-1].Epoch {
			t.Fatalf("trace out of order at %d", i)
		}
		if seen[ev.ID] {
			t.Fatalf("duplicate id %s", ev.ID)
		}
		seen[ev.ID] = true
		if ev.Lifetime < 1 {
			t.Fatalf("lifetime %d for %s", ev.Lifetime, ev.ID)
		}
		if ev.ClassIdx == 1 {
			if (ev.Epoch-1)%3 != 0 {
				t.Fatalf("deterministic arrival off schedule at epoch %d", ev.Epoch)
			}
			teleops++
		}
	}
	if teleops != 10 {
		t.Fatalf("deterministic process produced %d arrivals, want 10", teleops)
	}
	// A different seed moves the Poisson arrivals.
	if c := Trace(classes, 30, 10); reflect.DeepEqual(a, c) {
		t.Fatal("trace insensitive to seed")
	}
}

// TestFleetDeterministicAcrossWorkers: the full fleet result — every
// epoch aggregate, rejection, and value — is bit-identical at any
// worker count.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	classes := []ArrivalClass{
		{Class: testVideo(), Rate: 0.3, MeanLifetime: 6, Value: 2, Elastic: true},
		{Class: testIoT(), Rate: 0.4, MeanLifetime: 8, Value: 1, Elastic: true},
	}
	run := func(workers int) *Result {
		ctl := NewController(realnet.New(), simnet.NewDefault(), classes, Options{
			Horizon:  10,
			Capacity: slicing.CellCapacity(2),
			Policy:   ValueDensity{ReservePrice: 4},
			Seed:     21,
			Workers:  workers,
			Tune:     tinyTune,
		})
		res, err := ctl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("fleet result differs across worker counts:\n%+v\nvs\n%+v", serial, parallel)
	}
}

// TestFleetRejectsUnderConstrainedCapacity: a capacity that fits one
// prototype envelope rejects the rest, utilization never exceeds 1, and
// the books balance.
func TestFleetRejectsUnderConstrainedCapacity(t *testing.T) {
	classes := []ArrivalClass{
		// Arrivals at epochs 0, 3, 6, 9; nobody departs.
		{Class: testVideo(), Every: 3, Value: 2},
	}
	ctl := NewController(realnet.New(), simnet.NewDefault(), classes, Options{
		Horizon:  12,
		Capacity: slicing.CellCapacity(1.3),
		Policy:   FirstFit{},
		Seed:     11,
		Tune:     tinyTune,
	})
	res, err := ctl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals != 4 {
		t.Fatalf("arrivals = %d, want 4", res.Arrivals)
	}
	if res.Admitted < 1 || res.Rejected < 1 {
		t.Fatalf("admitted=%d rejected=%d, want at least one of each", res.Admitted, res.Rejected)
	}
	if got := res.AcceptanceRatio; got <= 0 || got >= 1 {
		t.Fatalf("acceptance ratio = %v", got)
	}
	if u := res.PeakUtil.Max(); u > 1 {
		t.Fatalf("peak utilization %v exceeds capacity", u)
	}
	for _, rj := range res.Rejections {
		if rj.Reason != "capacity" {
			t.Fatalf("first-fit rejected for %q", rj.Reason)
		}
	}
	if res.ServedEpochs == 0 || res.QoEWeightedValue <= 0 {
		t.Fatalf("no service recorded: %+v", res)
	}
}

// TestFleetArbitrationDownscales: a newcomer that does not fit triggers
// the preemption-free arbitrator under an arbitrating policy — elastic
// slices shrink, the newcomer is admitted, and nothing is evicted.
// First-fit, on the same trace, rejects it.
func TestFleetArbitrationDownscales(t *testing.T) {
	classes := []ArrivalClass{
		// The elastic IoT tenant reserves ~31 Mbps of the 55 Mbps
		// transport at epoch 0 — but its relaxed SLA leaves plenty of
		// posterior-feasible cheaper configurations...
		{Class: testIoT(), Every: 100, Value: 1, Elastic: true},
		// ...and the video tenant arriving at epoch 4 needs ~43 Mbps
		// against the ~24 left: it only fits if the arbitrator shrinks
		// the IoT envelope.
		{Class: testVideo(), Every: 100, Phase: 4, Value: 2},
	}
	// Transport-constrained infrastructure; RAN and compute are ample.
	capacity := slicing.Capacity{RanPRB: 150, TnMbps: 55, CnCPU: 3}
	run := func(policy Policy) *Result {
		ctl := NewController(realnet.New(), simnet.NewDefault(), classes, Options{
			Horizon:  8,
			Capacity: capacity,
			Policy:   policy,
			Seed:     11,
			Tune:     tinyTune,
		})
		res, err := ctl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	greedy := run(FirstFit{})
	if greedy.Admitted != 1 || greedy.Rejected != 1 || greedy.Downscales != 0 {
		t.Fatalf("first-fit admitted=%d rejected=%d downscales=%d, want 1/1/0",
			greedy.Admitted, greedy.Rejected, greedy.Downscales)
	}
	arb := run(ValueDensity{})
	if arb.Downscales < 1 {
		t.Fatalf("arbitrating policy never downscaled (admitted=%d rejected=%d)", arb.Admitted, arb.Rejected)
	}
	if arb.Admitted != 2 || arb.Rejected != 0 {
		t.Fatalf("arbitration admitted=%d rejected=%d, want 2/0", arb.Admitted, arb.Rejected)
	}
	// Preemption-free: nobody departed before the horizon.
	if arb.Departed != 0 {
		t.Fatalf("arbitration evicted %d slices", arb.Departed)
	}
	if u := arb.PeakUtil.Max(); u > 1 {
		t.Fatalf("peak utilization %v exceeds capacity", u)
	}
}

// TestFleetOracleRegret: the infinite-capacity oracle on the same trace
// earns at least the constrained fleet's QoE-weighted value, and regret
// is their difference.
func TestFleetOracleRegret(t *testing.T) {
	classes := []ArrivalClass{
		{Class: testVideo(), Every: 2, Value: 2, Elastic: true},
		{Class: testIoT(), Every: 3, Phase: 1, Value: 1, Elastic: true},
	}
	ctl := NewController(realnet.New(), simnet.NewDefault(), classes, Options{
		Horizon:  8,
		Capacity: slicing.CellCapacity(1.3),
		Policy:   FirstFit{},
		Seed:     5,
		Oracle:   true,
		Tune:     tinyTune,
	})
	res, err := ctl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleValue < res.QoEWeightedValue {
		t.Fatalf("oracle value %v below constrained value %v", res.OracleValue, res.QoEWeightedValue)
	}
	if got := res.OracleValue - res.QoEWeightedValue; got != res.Regret {
		t.Fatalf("regret = %v, want %v", res.Regret, got)
	}
	if res.Rejected == 0 {
		t.Fatal("constrained run rejected nothing; oracle comparison is vacuous")
	}
}
