package fleet

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"time"

	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/obs"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/topology"
)

// Engine is the per-request admission + placement core of the fleet
// control plane, extracted from the batch Controller's trace loop so a
// long-lived daemon (atlas serve) can drive the same decision path one
// request at a time: estimate the arrival's footprint, pick a host site,
// consult the admission policy, arbitrate preemption-free downscales,
// and admit or reject. One Engine fronts one core.System and owns the
// admission-order bookkeeping the downscale arbitrator walks.
//
// The Engine is a single-writer component: exactly one goroutine may
// call Handle, Resize, Release, or Remove at a time — the batch
// controller's epoch loop, or the serve reconciler. That goroutine may
// freely interleave the read accessors.
type Engine struct {
	sys       *core.System
	policy    Policy
	placement topology.Policy
	topo      *topology.Graph
	capacity  slicing.Capacity
	pool      int

	// ests caches per-(class, traffic) admission estimates: estimates
	// are pure per class — same calibration, same artifact, same
	// envelope — so the fingerprint (and the store read behind it) is
	// computed once instead of once per arrival. estMu guards the map:
	// unlike the single-writer admission path, Estimate may be called
	// concurrently (shards pre-warming class estimates, serve
	// handlers), and the lock is held across the fill so concurrent
	// misses on one class dedup to a single training run.
	estMu sync.Mutex
	ests  map[string]classEst
	live  map[string]*Tenant
	order []string // admission order, the arbitration walk sequence

	// met, traceLog, and timeline are the optional observability hooks
	// (nil = off): decision counters for the metrics registry, the
	// structured decision-trace log, and the per-slice flight-recorder
	// timeline. traceSeq numbers decision records and is shared between
	// the trace log and the timeline, so entries in the two streams
	// cross-reference; like the mutating path that emits them, it is
	// single-writer. epoch is the control-plane epoch stamped on
	// non-arrival decisions (resize/release/suspend), advanced by the
	// driving loop via NoteEpoch.
	met      *engineMetrics
	traceLog *slog.Logger
	timeline *obs.TimelineStore
	traceSeq uint64
	epoch    int
}

type classEst struct {
	est    *core.OfflineResult
	demand slicing.Demand
}

// Tenant is one live (admitted) tenant's control-plane record.
type Tenant struct {
	Arrival Arrival
	Site    slicing.SiteID
}

// Decision reports one arrival's admission outcome.
type Decision struct {
	// Admitted is true when the tenant was admitted (and is now live);
	// otherwise Reason is "policy" or "capacity".
	Admitted bool
	Reason   string
	// Site is the host site placement picked (empty on single-pool
	// runs); even on a capacity rejection it names the placement
	// policy's arbitration target.
	Site slicing.SiteID
	// Demand is the envelope the tenant reserves (or would have);
	// PredictedQoE the offline artifact's predicted quality.
	Demand       slicing.Demand
	PredictedQoE float64
	// PlacementAttempted marks arrivals that passed the policy's value
	// gate on a topology run (the denominator of the placement ratio);
	// Downscales counts the elastic tenants arbitration shrank.
	PlacementAttempted bool
	Downscales         int
	// Utilization and Density capture the reserve-price context the
	// admission policy decided against: the bottleneck-domain used
	// fraction before this arrival and the arrival's QoE-weighted value
	// density (zero when capacity is unbounded).
	Utilization float64
	Density     float64
}

// EngineConfig parameterizes an Engine. Zero values default like the
// batch controller: FirstFit admission, Locality placement, a 250-wide
// downscale pool, and (with a topology) the graph's total capacity.
type EngineConfig struct {
	Policy        Policy
	Placement     topology.Policy
	Topology      *topology.Graph
	Capacity      slicing.Capacity
	DownscalePool int
	// Obs registers the engine's decision metrics (nil = off); Trace
	// receives one structured record per admission/placement/resize/
	// release decision (nil = off); Timeline records every decision on
	// the per-slice flight-recorder timeline, sharing Trace's sequence
	// numbers (nil = off). All three are result-invariant.
	Obs      *obs.Registry
	Trace    *slog.Logger
	Timeline *obs.TimelineStore
}

// NewEngine builds an engine over an already-configured system (the
// caller wires the system's Ledger to match Topology/Capacity).
func NewEngine(sys *core.System, cfg EngineConfig) *Engine {
	if cfg.Policy == nil {
		cfg.Policy = FirstFit{}
	}
	if cfg.Placement == nil {
		cfg.Placement = topology.Locality{}
	}
	if cfg.DownscalePool <= 0 {
		cfg.DownscalePool = 250
	}
	if cfg.Topology != nil && cfg.Capacity.IsZero() {
		cfg.Capacity = cfg.Topology.TotalCapacity()
	}
	sys.Instrument(cfg.Obs)
	if cfg.Timeline != nil {
		sys.Timelines = cfg.Timeline
	}
	return &Engine{
		sys:       sys,
		policy:    cfg.Policy,
		placement: cfg.Placement,
		topo:      cfg.Topology,
		capacity:  cfg.Capacity,
		pool:      cfg.DownscalePool,
		ests:      map[string]classEst{},
		live:      map[string]*Tenant{},
		met:       newEngineMetrics(cfg.Obs),
		traceLog:  cfg.Trace,
		timeline:  cfg.Timeline,
	}
}

// NoteEpoch records the driving loop's current control-plane epoch so
// non-arrival decisions (resize/release/suspend) are stamped with it in
// the trace and timeline streams. Single-writer, like the mutating
// path.
func (e *Engine) NoteEpoch(epoch int) { e.epoch = epoch }

// System returns the engine's underlying slice-lifecycle system.
func (e *Engine) System() *core.System { return e.sys }

// Topology returns the engine's site graph (nil on single-pool runs).
func (e *Engine) Topology() *topology.Graph { return e.topo }

// estimate returns the cached admission estimate for an arrival's
// (class, traffic) pair. Safe for concurrent callers: the memo lock is
// held across the fill, so a class is estimated once no matter how
// many shards ask at the same time.
func (e *Engine) estimate(a Arrival) (classEst, error) {
	key := fmt.Sprintf("%d\x00%s\x00%d", a.ClassIdx, a.Class.Name, a.Traffic)
	e.estMu.Lock()
	defer e.estMu.Unlock()
	if ce, ok := e.ests[key]; ok {
		e.met.recordEstimate(true)
		return ce, nil
	}
	e.met.recordEstimate(false)
	est, demand, err := e.sys.EstimateAdmission(a.Class, a.Traffic)
	if err != nil {
		return classEst{}, err
	}
	ce := classEst{est: est, demand: demand}
	e.ests[key] = ce
	return ce, nil
}

// Estimate previews the envelope demand and offline artifact an
// admission of the class at the given traffic (0 = nominal) would use,
// through the engine's per-class cache. Unlike the single-writer
// mutating path, Estimate is safe to call concurrently.
func (e *Engine) Estimate(class slicing.ServiceClass, traffic int) (*core.OfflineResult, slicing.Demand, error) {
	ce, err := e.estimate(Arrival{ClassIdx: -1, Class: class, Traffic: traffic})
	if err != nil {
		return nil, slicing.Demand{}, err
	}
	return ce.est, ce.demand, nil
}

// freeAt, fitsAt, and utilization are nil-ledger-tolerant views (no
// ledger = unlimited infrastructure).
func (e *Engine) freeAt(site slicing.SiteID) slicing.Demand {
	if e.sys.Ledger == nil {
		return slicing.Demand{RanPRB: math.Inf(1), TnMbps: math.Inf(1), CnCPU: math.Inf(1)}
	}
	return e.sys.Ledger.FreeAt(site)
}

func (e *Engine) fitsAt(site slicing.SiteID, d slicing.Demand) bool {
	return e.sys.Ledger == nil || e.sys.Ledger.FitsAt(site, d)
}

// Utilization is the per-domain reserved fraction right now (zero
// without a ledger).
func (e *Engine) Utilization() slicing.Utilization {
	if e.sys.Ledger == nil {
		return slicing.Utilization{}
	}
	return e.sys.Ledger.Utilization()
}

// Handle runs one arrival through the full admission path — estimate,
// placement, policy gate, downscale arbitration, reservation — and, on
// admission, tracks the tenant as live. Errors are systemic (training
// or ledger corruption); a refused arrival is a non-error Decision.
func (e *Engine) Handle(a Arrival) (Decision, error) {
	start := time.Now()
	dec, err := e.handle(a)
	if err == nil {
		e.met.recordDecision(dec, start)
		seq := e.obsSeq()
		e.traceDecision(seq, a, dec)
		e.timelineDecision(seq, a, dec)
	}
	return dec, err
}

func (e *Engine) handle(a Arrival) (Decision, error) {
	ce, err := e.estimate(a)
	if err != nil {
		return Decision{}, fmt.Errorf("fleet: estimate %s: %w", a.ID, err)
	}
	est, demand := ce.est, ce.demand

	// Placement: pick the host site before admission. When the demand
	// fits nowhere, the returned site is still the policy's arbitration
	// target — downscaling is site-local, so the arbitrator must know
	// where to make room.
	var site slicing.SiteID
	var fits bool
	if e.topo == nil {
		fits = e.fitsAt("", demand)
	} else {
		site, fits = e.placement.Place(e.topo, e.sys.Ledger, topology.Request{
			ID:           a.ID,
			Demand:       demand,
			Home:         a.Home,
			Value:        a.Value,
			PredictedQoE: est.BestQoE,
		})
	}
	ctx := AdmissionContext{
		Epoch:        a.Epoch,
		Demand:       demand,
		PredictedQoE: est.BestQoE,
		Free:         e.freeAt(site),
		Capacity:     e.capacity,
		Utilization:  e.Utilization().Max(),
	}
	dec := Decision{
		Site: site, Demand: demand, PredictedQoE: est.BestQoE,
		Utilization: ctx.Utilization, Density: ctx.density(a),
	}
	// The policy's value gate runs before any arbitration, so a
	// newcomer the policy would refuse anyway never causes an elastic
	// tenant to shrink.
	if !e.policy.Admit(ctx, a) {
		dec.Reason = "policy"
		return dec, nil
	}
	if e.topo != nil {
		dec.PlacementAttempted = true
	}
	if !fits && e.policy.Arbitrate(ctx, a) {
		e.met.recordArbitration()
		dec.Downscales = e.arbitrate(demand, site)
		fits = e.fitsAt(site, demand)
	}
	if !fits {
		dec.Reason = "capacity"
		return dec, nil
	}
	if _, err := e.sys.AdmitSliceClassAt(a.ID, a.Class, a.Traffic, site); err != nil {
		if errors.Is(err, core.ErrInsufficientCapacity) {
			// The estimate and the reservation derive from the same
			// artifact, so this is unreachable in practice; treat it as
			// a capacity rejection if it ever fires.
			dec.Reason = "capacity"
			return dec, nil
		}
		return dec, fmt.Errorf("fleet: admit %s: %w", a.ID, err)
	}
	dec.Admitted = true
	e.live[a.ID] = &Tenant{Arrival: a, Site: site}
	e.order = append(e.order, a.ID)
	return dec, nil
}

// Resize re-optimizes a live tenant's envelope for a new nominal
// traffic — the serve path's first-class "modify": stage 2 re-runs (or
// restores) under the new demand and the reservation resizes in place
// at the host site. When in-place growth does not fit and the engine
// has a topology, the placement policy re-runs for the resized
// footprint and the reservation migrates to the site it picks (the
// tenant's own current reservation still counts as used during that
// search, so cross-site growth is conservatively checked). The freed
// or grown demand is returned with the (possibly new) host site.
func (e *Engine) Resize(id string, traffic int) (slicing.Demand, slicing.SiteID, error) {
	t, ok := e.live[id]
	if !ok {
		return slicing.Demand{}, "", fmt.Errorf("fleet: tenant %q not live", id)
	}
	d, err := e.sys.ResizeSlice(id, traffic)
	if err == nil {
		t.Arrival.Traffic = traffic
		e.met.recordResize(false)
		seq := e.obsSeq()
		e.traceAt(seq, "resize",
			slog.String("slice", id),
			slog.String("site", string(t.Site)),
			slog.Int("traffic", traffic),
			demandAttrs(d))
		e.timelineEvent(seq, id, "resize", string(t.Site), "", demandVec(d))
		return d, t.Site, nil
	}
	if !errors.Is(err, core.ErrInsufficientCapacity) || e.topo == nil {
		return slicing.Demand{}, "", err
	}
	est, demand, eerr := e.Estimate(t.Arrival.Class, traffic)
	if eerr != nil {
		return slicing.Demand{}, "", eerr
	}
	site, fits := e.placement.Place(e.topo, e.sys.Ledger, topology.Request{
		ID:           id,
		Demand:       demand,
		Home:         t.Arrival.Home,
		Value:        t.Arrival.Value,
		PredictedQoE: est.BestQoE,
	})
	if !fits || site == t.Site {
		return slicing.Demand{}, "", err
	}
	d, rerr := e.sys.ResizeSliceAt(id, traffic, site)
	if rerr != nil {
		return slicing.Demand{}, "", rerr
	}
	from := t.Site
	t.Site = site
	t.Arrival.Traffic = traffic
	e.met.recordResize(true)
	seq := e.obsSeq()
	e.traceAt(seq, "resize_migrate",
		slog.String("slice", id),
		slog.String("site", string(site)),
		slog.String("from_site", string(from)),
		slog.Int("traffic", traffic),
		demandAttrs(d))
	e.timelineEvent(seq, id, "resize_migrate", string(site), "from "+string(from), demandVec(d))
	return d, site, nil
}

// Release decommissions a live tenant — capacity freed, online
// checkpoint tombstoned — and forgets it.
func (e *Engine) Release(id string) (*Tenant, error) {
	t, ok := e.live[id]
	if !ok {
		return nil, fmt.Errorf("fleet: tenant %q not live", id)
	}
	if err := e.sys.ReleaseSlice(id); err != nil {
		return nil, err
	}
	e.forget(id)
	e.met.recordRelease()
	seq := e.obsSeq()
	e.traceAt(seq, "release", slog.String("slice", id), slog.String("site", string(t.Site)))
	e.timelineEvent(seq, id, "release", string(t.Site), "", nil)
	return t, nil
}

// Remove suspends a live tenant: capacity freed, online checkpoint
// kept, so a later admission under the same identity resumes the
// learned residual.
func (e *Engine) Remove(id string) (*Tenant, error) {
	t, ok := e.live[id]
	if !ok {
		return nil, fmt.Errorf("fleet: tenant %q not live", id)
	}
	if err := e.sys.RemoveSlice(id); err != nil {
		return nil, err
	}
	e.forget(id)
	e.met.recordRemove()
	seq := e.obsSeq()
	e.traceAt(seq, "suspend", slog.String("slice", id), slog.String("site", string(t.Site)))
	e.timelineEvent(seq, id, "suspend", string(t.Site), "", nil)
	return t, nil
}

func (e *Engine) forget(id string) {
	delete(e.live, id)
	for i, v := range e.order {
		if v == id {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
}

// Tenant returns a live tenant's record.
func (e *Engine) Tenant(id string) (*Tenant, bool) {
	t, ok := e.live[id]
	return t, ok
}

// Live returns the live tenant ids in admission order.
func (e *Engine) Live() []string {
	return append([]string(nil), e.order...)
}

// LiveAppend appends the live tenant ids in admission order to dst and
// returns the extended slice — the allocation-free form of Live for
// per-epoch loops that reuse one buffer. The result is a snapshot:
// callers may Release tenants while ranging over it.
func (e *Engine) LiveAppend(dst []string) []string {
	return append(dst, e.order...)
}

// arbitrate is the preemption-free downscale pass: it walks the live
// elastic tenants in admission order and asks each one's online learner
// for a cheaper posterior-feasible configuration, collecting previewed
// envelope tightenings until the needed demand would fit at the target
// site. Site topology shapes what a tightening is worth: a tenant
// hosted at the target site frees local RAN plus the shared tiers,
// while a remote tenant's freed RAN belongs to its own site — only its
// freed transport/compute help, since those tiers are regional. The
// pass therefore walks the target site's tenants first and falls back
// to remote ones only for their shared-tier contribution (skipping any
// whose tightening frees no shared capacity at all). It stays
// transactional: tightenings commit only when they actually make room;
// if the elastic tenants together cannot free enough, nothing is
// applied, so no tenant is degraded for an arrival that gets rejected
// anyway. It returns how many slices were downscaled; no slice is ever
// evicted or restarted. (On single-pool runs every tenant and every
// arrival has the empty site, so the first pass covers the whole fleet
// as before.)
func (e *Engine) arbitrate(need slicing.Demand, site slicing.SiteID) int {
	sys := e.sys
	if sys.Ledger == nil {
		return 0
	}
	type tightening struct {
		id   string
		next slicing.Config
	}
	var plan []tightening
	var freed slicing.Demand
	enough := false
	for pass := 0; pass < 2 && !enough; pass++ {
		for _, id := range e.order {
			t, ok := e.live[id]
			if !ok || !t.Arrival.Elastic || (t.Site == site) != (pass == 0) {
				continue
			}
			if need.Fits(sys.Ledger.FreeAt(site).Add(freed)) {
				enough = true
				break
			}
			next, f, ok, err := sys.PreviewDownscale(id, e.pool)
			if err != nil || !ok {
				continue
			}
			if pass == 1 {
				// Remote RAN frees at the remote site, not here; only
				// the shared tiers count toward this admission. A
				// tightening that frees no shared capacity would shrink
				// the tenant for nothing — leave it alone.
				f.RanPRB = 0
				if f.IsZero() {
					continue
				}
			}
			plan = append(plan, tightening{id: id, next: next})
			freed = freed.Add(f)
		}
	}
	if !enough && !need.Fits(sys.Ledger.FreeAt(site).Add(freed)) {
		return 0
	}
	downs := 0
	for _, tg := range plan {
		if _, ok, err := sys.CommitDownscale(tg.id, tg.next); err == nil && ok {
			downs++
		}
	}
	return downs
}
