package fleet_test

import (
	"reflect"
	"runtime"
	"testing"

	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/fleet"
	"github.com/atlas-slicing/atlas/internal/realnet"
	"github.com/atlas-slicing/atlas/internal/scenarios"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/topology"
)

// parityTune shrinks training budgets to parity-test scale.
func parityTune(sys *core.System) {
	sys.CalOpts.Iters, sys.CalOpts.Explore, sys.CalOpts.Batch, sys.CalOpts.Pool = 12, 4, 2, 120
	sys.OffOpts.Iters, sys.OffOpts.Explore, sys.OffOpts.Batch, sys.OffOpts.Pool = 15, 5, 2, 120
	sys.OnOpts.Pool, sys.OnOpts.N = 100, 2
}

// parityScenario is one workload the sharded engine must replay
// bit-identically to the lockstep reference at every shard count.
type parityScenario struct {
	name string
	opts fleet.Options
	cls  []fleet.ArrivalClass
}

// parityScenarios builds the three canonical workloads: the paper's
// homogeneous video-analytics fleet, the mixed-class churn scenario,
// and churn over the hotspot-cell site graph (the multi-shard case).
func parityScenarios(t *testing.T) []parityScenario {
	t.Helper()
	churn, ok := scenarios.GetFleet("churn")
	if !ok {
		t.Fatal("churn fleet scenario missing")
	}
	preset, ok := scenarios.GetTopology("hotspot-cell")
	if !ok {
		t.Fatal("hotspot-cell topology preset missing")
	}
	topo, err := preset.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	paper := []fleet.ArrivalClass{
		{Class: scenarios.VideoAnalytics(), Rate: 0.25, MeanLifetime: 6, Value: 2, Elastic: true},
	}
	return []parityScenario{
		{
			name: "paper",
			cls:  paper,
			opts: fleet.Options{Horizon: 8, Capacity: churn.Capacity, Seed: 11, Tune: parityTune},
		},
		{
			name: "churn",
			cls:  churn.Classes,
			opts: fleet.Options{Horizon: 8, Capacity: churn.Capacity, Policy: fleet.ValueDensity{ReservePrice: 4}, Seed: 7, Tune: parityTune},
		},
		{
			name: "hotspot-cell",
			cls:  churn.Classes,
			opts: fleet.Options{Horizon: 10, Topology: topo, Placement: topology.Locality{}, Seed: 42, Tune: parityTune},
		},
	}
}

func parityRun(t *testing.T, sc parityScenario, mutate func(*fleet.Options)) *fleet.Result {
	t.Helper()
	opts := sc.opts
	if mutate != nil {
		mutate(&opts)
	}
	ctl := fleet.NewController(realnet.New(), simnet.NewDefault(), sc.cls, opts)
	res, err := ctl.Run()
	if err != nil {
		t.Fatalf("%s: %v", sc.name, err)
	}
	return res
}

// TestFleetShardParity is the sharding determinism property: on every
// scenario, the sharded event-driven engine's Result — acceptance,
// value, per-epoch stats, per-site stats, everything — is bit-identical
// (reflect.DeepEqual) to the legacy lockstep run, at one shard, two
// shards, and one shard per site.
func TestFleetShardParity(t *testing.T) {
	for _, sc := range parityScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			ref := parityRun(t, sc, func(o *fleet.Options) { o.Lockstep = true; o.Workers = 2 })
			shardCounts := []int{1, 2}
			if sc.opts.Topology != nil {
				shardCounts = append(shardCounts, len(sc.opts.Topology.Sites))
			}
			for _, n := range shardCounts {
				got := parityRun(t, sc, func(o *fleet.Options) { o.Shards = n })
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("shards=%d diverges from lockstep reference:\n%+v\nvs\n%+v", n, got, ref)
				}
			}
		})
	}
}

// TestFleetShardParityAcrossGOMAXPROCS re-runs the multi-site scenario
// with an inflated GOMAXPROCS: scheduling must not leak into results.
func TestFleetShardParityAcrossGOMAXPROCS(t *testing.T) {
	scs := parityScenarios(t)
	sc := scs[len(scs)-1] // hotspot-cell
	base := parityRun(t, sc, func(o *fleet.Options) { o.Shards = len(sc.opts.Topology.Sites) })
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	wide := parityRun(t, sc, func(o *fleet.Options) { o.Shards = len(sc.opts.Topology.Sites) })
	if !reflect.DeepEqual(base, wide) {
		t.Fatal("sharded fleet result depends on GOMAXPROCS")
	}
}
