package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// expectedIDs is the complete inventory of evaluation artifacts in the
// paper: every table and figure of §2 (motivation) and §8 (evaluation).
var expectedIDs = []string{
	"table1", "table4", "table5",
	"fig2", "fig3", "fig4", "fig5",
	"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
	"fig16", "fig17", "fig18", "fig19",
	"fig20", "fig21", "fig22", "fig23", "fig24", "fig25", "fig26",
}

func TestRegistryComplete(t *testing.T) {
	for _, id := range expectedIDs {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if got, want := len(IDs()), len(expectedIDs); got != want {
		t.Errorf("registry has %d experiments, want %d", got, want)
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	if _, ok := Lookup("TABLE1"); !ok {
		t.Fatal("lookup should be case-insensitive")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestSortedIDsOrder(t *testing.T) {
	ids := SortedIDs()
	// tableN sorts by N among tables; figures interleave by number.
	pos := map[string]int{}
	for i, id := range ids {
		pos[id] = i
	}
	if pos["table1"] > pos["fig2"] {
		t.Fatal("table1 should precede fig2")
	}
	if pos["fig8"] > pos["fig9"] {
		t.Fatal("fig8 should precede fig9")
	}
	if pos["table4"] > pos["fig8"] {
		t.Fatal("table4 (between fig5 and fig8) misplaced")
	}
}

func TestResultPrint(t *testing.T) {
	r := &Result{ID: "x", Title: "demo", Header: []string{"a", "b"}}
	r.AddRow("row1", 1, 2)
	r.AddNote("hello %d", 7)
	var buf bytes.Buffer
	r.Print(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "row1", "hello 7", "a", "b"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckpointHelpers(t *testing.T) {
	c := checkpoints(100, 5)
	if len(c) != 5 || c[0] != 0 || c[4] != 99 {
		t.Fatalf("checkpoints = %v", c)
	}
	if got := checkpoints(3, 10); len(got) != 3 {
		t.Fatalf("oversized k = %v", got)
	}
	if checkpoints(0, 5) != nil {
		t.Fatal("empty series should yield nil")
	}
	vals := at([]float64{10, 20, 30}, []int{0, 2, 9})
	if vals[0] != 10 || vals[1] != 30 || vals[2] != 30 {
		t.Fatalf("at = %v", vals)
	}
}

func TestCumMean(t *testing.T) {
	got := cumMean([]float64{1, 3, 5}, 1)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("cumMean = %v", got)
	}
}

func TestBudgetTiers(t *testing.T) {
	q, d, p := QuickBudget(), DefaultBudget(), PaperBudget()
	if !(q.Stage1Iters < d.Stage1Iters && d.Stage1Iters < p.Stage1Iters) {
		t.Fatal("stage-1 budgets not ordered")
	}
	if p.Stage2Iters != 1000 || p.OnlineIters != 100 || p.Batch != 16 {
		t.Fatalf("paper budget does not match §8: %+v", p)
	}
}

// TestMotivationExperimentsRun exercises the cheap experiments end to
// end on the quick budget; the heavier pipeline experiments are covered
// by the root-level integration test and benchmarks.
func TestMotivationExperimentsRun(t *testing.T) {
	lab := NewLab(7, QuickBudget())
	params := Params{Seed: 7, Budget: QuickBudget(), Lab: lab}
	for _, id := range []string{"table1", "fig2", "fig3", "fig4", "fig11"} {
		f, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		res := f(params)
		if res.ID != id {
			t.Fatalf("result id %q for experiment %s", res.ID, id)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		for _, row := range res.Rows {
			if len(row.Values) == 0 {
				t.Fatalf("%s row %q empty", id, row.Label)
			}
		}
	}
}

func TestLabMemoizesFixtures(t *testing.T) {
	lab := NewLab(9, QuickBudget())
	a := lab.DR()
	b := lab.DR()
	if &a[0] != &b[0] {
		t.Fatal("DR recomputed")
	}
	o1 := lab.Oracle(1, lab.SLA)
	o2 := lab.Oracle(1, lab.SLA)
	if o1.Config != o2.Config {
		t.Fatal("oracle recomputed differently")
	}
	g1 := lab.GridTraces(1)
	g2 := lab.GridTraces(1)
	if len(g1) != len(g2) {
		t.Fatal("grid recomputed differently")
	}
}

func TestStage1ExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("stage-1 pipeline in -short mode")
	}
	lab := NewLab(11, QuickBudget())
	params := Params{Seed: 11, Budget: QuickBudget(), Lab: lab}
	f, _ := Lookup("table4")
	res := f(params)
	if len(res.Rows) != 3 {
		t.Fatalf("table4 rows = %d", len(res.Rows))
	}
	orig := res.Rows[0].Values[0]
	ours := res.Rows[2].Values[0]
	if ours >= orig {
		t.Fatalf("calibration did not reduce discrepancy: %v -> %v", orig, ours)
	}
}
