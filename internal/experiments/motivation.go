package experiments

import (
	"fmt"

	"github.com/atlas-slicing/atlas/internal/baselines"
	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/stats"
)

func init() {
	Register("table1", table1)
	Register("fig2", fig2)
	Register("fig3", fig3)
	Register("fig4", fig4)
	Register("fig5", fig5)
}

// table1 reproduces Table 1: link-layer performance of the simulator
// versus the real network under full resources.
func table1(p Params) *Result {
	l := p.Lab
	sim := l.Sim.Measure(core.FullConfig(), l.rng(1001))
	real := l.Real.Measure(core.FullConfig(), l.rng(1002))

	r := &Result{ID: "table1", Title: "Network performance comparison (10 MHz LTE)",
		Header: []string{"Simulator", "RealNetwork"}}
	r.AddRow("Ping (ms)", sim.PingMs, real.PingMs)
	r.AddRow("UL tput (Mbps)", sim.ULThroughputMbps, real.ULThroughputMbps)
	r.AddRow("DL tput (Mbps)", sim.DLThroughputMbps, real.DLThroughputMbps)
	r.AddRow("UL PER", sim.ULPER, real.ULPER)
	r.AddRow("DL PER", sim.DLPER, real.DLPER)
	r.AddNote("paper: ping 34/34.6 ms, UL 19.87/17.53, DL 32.37/31.12, ULPER 4.16e-3/9.17e-3, DLPER 2.05e-3/5.15e-3")
	r.AddNote("shape: real slightly worse everywhere, PER roughly 2x")
	return r
}

// fig2 reproduces Fig. 2: the end-to-end latency CDF under one slice
// user, simulator vs system.
func fig2(p Params) *Result {
	l := p.Lab
	sim := l.Sim.Episode(core.FullConfig(), 1, l.rng(1011))
	real := l.Real.Episode(core.FullConfig(), 1, l.rng(1012))

	qs := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}
	r := &Result{ID: "fig2", Title: "End-to-end latency CDF under one slice user (quantiles, ms)",
		Header: []string{"p10", "p25", "p50", "p75", "p90", "p95", "p99"}}
	r.AddRow("Simulator", stats.Quantiles(sim.LatenciesMs, qs)...)
	r.AddRow("System", stats.Quantiles(real.LatenciesMs, qs)...)
	ms, mr := stats.Summarize(sim.LatenciesMs), stats.Summarize(real.LatenciesMs)
	r.AddRow("mean", ms.Mean, mr.Mean)
	r.AddNote("paper: system average latency 25.2%% higher than simulator; measured %+.1f%%",
		100*(mr.Mean/ms.Mean-1))
	return r
}

// fig3 reproduces Fig. 3: latency statistics under user traffic 1–4.
func fig3(p Params) *Result {
	l := p.Lab
	r := &Result{ID: "fig3", Title: "End-to-end latency under different user traffic (ms)",
		Header: []string{"simMean", "simStd", "sysMean", "sysStd"}}
	for traffic := 1; traffic <= 4; traffic++ {
		sim := l.Sim.Episode(core.FullConfig(), traffic, l.rng(int64(1020+traffic)))
		real := l.Real.Episode(core.FullConfig(), traffic, l.rng(int64(1030+traffic)))
		ms, mr := stats.Summarize(sim.LatenciesMs), stats.Summarize(real.LatenciesMs)
		r.AddRow(label("traffic", traffic), ms.Mean, ms.Std, mr.Mean, mr.Std)
	}
	r.AddNote("shape: mean and variance of the discrepancy grow with traffic")
	return r
}

// fig4 reproduces Fig. 4: the KL-divergence heatmap of application
// latency over (CPU usage, UL bandwidth usage).
func fig4(p Params) *Result {
	l := p.Lab
	levels := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	r := &Result{ID: "fig4", Title: "KL divergence between system and simulator latency (rows: UL BW usage, cols: CPU usage)",
		Header: []string{"cpu10%", "cpu30%", "cpu50%", "cpu70%", "cpu90%"}}
	for _, ulFrac := range levels {
		row := make([]float64, 0, len(levels))
		for _, cpuFrac := range levels {
			cfg := slicing.Config{
				BandwidthUL:  ulFrac * l.Space.Max.BandwidthUL,
				BandwidthDL:  0.5 * l.Space.Max.BandwidthDL,
				BackhaulMbps: 0.5 * l.Space.Max.BackhaulMbps,
				CPURatio:     cpuFrac * l.Space.Max.CPURatio,
			}
			seed := l.rng(int64(1040 + int(ulFrac*100) + int(cpuFrac*10)))
			sim := l.Sim.Episode(cfg, 1, seed)
			real := l.Real.Episode(cfg, 1, seed+1)
			row = append(row, stats.KLDivergence(real.LatenciesMs, sim.LatenciesMs))
		}
		r.AddRow(labelPct("ulbw", ulFrac), row...)
	}
	r.AddNote("shape: discrepancy is uneven across resource configurations (paper: up to >10 at scarce resources)")
	return r
}

// fig5 reproduces Fig. 5: the online-learning footprint (resource usage
// vs QoE) of two state-of-the-art methods, DLDA and plain Bayesian
// optimization, showing how many explored actions violate the QoE
// requirement.
func fig5(p Params) *Result {
	l := p.Lab
	iters := p.Budget.OnlineIters
	oracle := l.Oracle(1, l.SLA)

	bobl := baselines.NewDirectBO(l.Space, l.SLA, 1)
	boRun := baselines.RunOnline(bobl, l.Real, l.Space, l.SLA, 1, iters, oracle, l.rng(1051))

	dlda := l.NewDLDA(1, l.SLA, 1052)
	dldaRun := baselines.RunOnline(dlda, l.Real, l.Space, l.SLA, 1, iters, oracle, l.rng(1053))

	r := &Result{ID: "fig5", Title: "Footprint of online learning methods (fraction of actions by outcome)",
		Header: []string{"meetQoE", "violate", "meanUsage%", "meanQoE"}}
	for _, run := range []*baselines.RunResult{boRun, dldaRun} {
		meet := 0
		for _, q := range run.QoEs {
			if q >= l.SLA.Availability {
				meet++
			}
		}
		n := float64(len(run.QoEs))
		r.AddRow(run.Name, float64(meet)/n, 1-float64(meet)/n,
			100*mathx.Vector(run.Usages).Mean(), mathx.Vector(run.QoEs).Mean())
	}
	r.AddNote("paper: most configuration actions explored by both solutions fail the QoE requirement of 0.9")
	return r
}

func label(prefix string, v int) string { return fmt.Sprintf("%s=%d", prefix, v) }

func labelPct(prefix string, frac float64) string {
	return fmt.Sprintf("%s=%d%%", prefix, int(frac*100+0.5))
}
