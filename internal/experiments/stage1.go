package experiments

import (
	"fmt"

	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/realnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
	"github.com/atlas-slicing/atlas/internal/stats"
)

func init() {
	Register("table4", table4)
	Register("fig8", fig8)
	Register("fig9", fig9)
	Register("fig10", fig10)
	Register("fig11", fig11)
	Register("fig12", fig12)
	Register("fig13", fig13)
	Register("fig14", fig14)
	Register("fig15", fig15)
}

// table4 reproduces Table 4: the learning-based simulator's result —
// discrepancy and parameter distance for the original simulator, the
// GP-based searcher, and ours.
func table4(p Params) *Result {
	l := p.Lab
	origKL := l.OriginalKL()
	gp := l.CalibrationGP()
	ours := l.CalibrationOurs()

	r := &Result{ID: "table4", Title: "Details of offline learning-based simulator",
		Header: []string{"KL", "paramDist"}}
	r.AddRow("Original", origKL, 0)
	r.AddRow("Aug. GP", gp.BestKL, gp.BestDistance)
	r.AddRow("Aug. Ours", ours.BestKL, ours.BestDistance)
	r.AddNote("ours params: %v", ours.BestParams)
	r.AddNote("GP params:   %v", gp.BestParams)
	r.AddNote("paper: 1.38/0 original, 0.31/0.16 GP, 0.26/0.12 ours (%.0f%% reduction measured vs 81%% in paper)",
		100*(1-ours.BestKL/origKL))
	return r
}

// fig8 reproduces Fig. 8: the searching progress (average weighted
// discrepancy per iteration) of the GP-based approach vs ours.
func fig8(p Params) *Result {
	l := p.Lab
	ours := l.CalibrationOurs()
	gp := l.CalibrationGP()

	r := &Result{ID: "fig8", Title: "Stage-1 searching progress: avg weighted discrepancy at iteration checkpoints"}
	check := checkpoints(minInt(len(ours.History.IterMean), len(gp.History.IterMean)), 8)
	header := make([]string, len(check))
	for i, c := range check {
		header[i] = fmt.Sprintf("it%d", c)
	}
	r.Header = header
	r.AddRow("GP", at(gp.History.IterMean, check)...)
	r.AddRow("Ours", at(ours.History.IterMean, check)...)
	r.AddRow("GP best", at(gp.History.BestSoFar(), scaleIdx(check, len(gp.History.BestSoFar()), len(gp.History.IterMean)))...)
	r.AddRow("Ours best", at(ours.History.BestSoFar(), scaleIdx(check, len(ours.History.BestSoFar()), len(ours.History.IterMean)))...)
	r.AddNote("paper: ours reduces average weighted discrepancy ~24.5%% below the GP approach")
	return r
}

// fig9 reproduces Fig. 9: latency CDFs of the calibrated simulators
// against the system.
func fig9(p Params) *Result {
	l := p.Lab
	gpSim := l.Sim.WithParams(l.CalibrationGP().BestParams)
	ourSim := l.Sim.WithParams(l.CalibrationOurs().BestParams)

	qs := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}
	r := &Result{ID: "fig9", Title: "Latency CDF under best simulation parameters (quantiles, ms)",
		Header: []string{"p10", "p25", "p50", "p75", "p90", "p95", "p99"}}
	tr := l.Real.Episode(core.FullConfig(), 1, l.rng(1101))
	r.AddRow("System", stats.Quantiles(tr.LatenciesMs, qs)...)
	tg := gpSim.Episode(core.FullConfig(), 1, l.rng(1102))
	r.AddRow("Sim (GP)", stats.Quantiles(tg.LatenciesMs, qs)...)
	to := ourSim.Episode(core.FullConfig(), 1, l.rng(1103))
	r.AddRow("Sim (Ours)", stats.Quantiles(to.LatenciesMs, qs)...)
	r.AddNote("shape: ours hugs the system CDF; GP shows a longer tail (paper Fig. 9)")
	return r
}

// fig10 reproduces Fig. 10: sim-to-real discrepancy under user mobility
// (distance between user and base station, plus a random-walk case). The
// discrepancy is measured against the original simulator — the study
// shows how far the raw channel model drifts from reality as mobility
// grows (the paper attributes the trend to the pathloss-model
// disparity).
func fig10(p Params) *Result {
	l := p.Lab
	params := slicing.DefaultSimParams()
	r := &Result{ID: "fig10", Title: "Sim-to-real discrepancy under user mobility",
		Header: []string{"KL"}}
	for _, d := range []float64{1, 3, 5, 7, 10} {
		real := realnet.NewAtDistance(d)
		sim := l.Sim.WithParams(params)
		sim.Profile.DistanceM = d
		kl := distanceKL(real, sim, l, int64(d*10))
		r.AddRow(fmt.Sprintf("d=%gm", d), kl)
	}
	walk := realnet.NewRandomWalk()
	sim := l.Sim.WithParams(params)
	sim.Profile.DistanceM = 5.5
	r.AddRow("random walk", distanceKL(walk, sim, l, 999))
	r.AddNote("paper: monotone growth with distance; here the channel stays SINR-capped below ~40 m, so the trend is weak/noisy (see EXPERIMENTS.md)")
	return r
}

func distanceKL(real *realnet.Network, sim interface {
	Episode(slicing.Config, int, int64) slicing.Trace
}, l *Lab, salt int64) float64 {
	var rl, sl []float64
	for e := 0; e < maxInt(2, l.Budget.DrEpisodes); e++ {
		rl = append(rl, real.Episode(core.FullConfig(), 1, l.rng(1200+salt+int64(e))).LatenciesMs...)
		sl = append(sl, sim.Episode(core.FullConfig(), 1, l.rng(1300+salt+int64(e))).LatenciesMs...)
	}
	return stats.KLDivergence(rl, sl)
}

// fig11 reproduces Fig. 11: slice latency while extra best-effort users
// attach, stream, and detach — the end-to-end isolation check.
func fig11(p Params) *Result {
	l := p.Lab
	r := &Result{ID: "fig11", Title: "Slice latency under extra mobile users (isolation)",
		Header: []string{"mean", "p95"}}
	for extra := 0; extra <= 2; extra++ {
		net := realnet.New()
		net.ExtraUsers = extra
		tr := net.Episode(core.FullConfig(), 1, l.rng(int64(1400+extra)))
		s := stats.Summarize(tr.LatenciesMs)
		r.AddRow(fmt.Sprintf("extra=%d", extra), s.Mean, stats.Quantile(tr.LatenciesMs, 0.95))
	}
	r.AddNote("shape: latency stable regardless of extra users — per-domain isolation holds (paper Fig. 11)")
	return r
}

// fig12 reproduces Fig. 12: the Pareto boundary between sim-to-real
// discrepancy and parameter distance, swept via the weight α.
func fig12(p Params) *Result {
	l := p.Lab
	r := &Result{ID: "fig12", Title: "Pareto boundary of the augmented simulator (alpha sweep)",
		Header: []string{"KL", "paramDist"}}
	iters := scaled(l.Budget.Stage1Iters, l.Budget.SweepScale)
	explore := scaled(l.Budget.Stage1Explore, l.Budget.SweepScale)
	for i, alpha := range []float64{0.25, 0.5, 1, 2, 4} {
		opts := l.calibratorOptions()
		opts.Alpha = alpha
		opts.Iters = iters
		opts.Explore = explore
		cal := core.NewCalibrator(l.Sim, l.DR(), opts)
		res := cal.Run(mathx.NewRNG(l.rng(int64(1500 + i))))
		r.AddRow(fmt.Sprintf("alpha=%.2g", alpha), res.BestKL, res.BestDistance)
	}
	r.AddNote("shape: monotone tradeoff — smaller alpha buys lower discrepancy at larger parameter distance (paper Fig. 12)")
	return r
}

// fig13 reproduces Fig. 13: stage-1 searching progress under different
// numbers of parallel queries.
func fig13(p Params) *Result {
	l := p.Lab
	r := &Result{ID: "fig13", Title: "Stage-1 progress with parallel queries (avg discrepancy at checkpoints)"}
	iters := scaled(l.Budget.Stage1Iters, l.Budget.SweepScale)
	explore := scaled(l.Budget.Stage1Explore, l.Budget.SweepScale)
	var rows [][]float64
	parallels := []int{1, 2, 4, 8, 16}
	for i, par := range parallels {
		opts := l.calibratorOptions()
		opts.Iters = iters
		opts.Explore = explore
		opts.Batch = par
		cal := core.NewCalibrator(l.Sim, l.DR(), opts)
		res := cal.Run(mathx.NewRNG(l.rng(int64(1600 + i))))
		rows = append(rows, res.History.BestSoFar())
	}
	check := checkpoints(lenMin(rows), 8)
	r.Header = make([]string, len(check))
	for i, c := range check {
		r.Header[i] = fmt.Sprintf("q%d", c)
	}
	for i, par := range parallels {
		r.AddRow(fmt.Sprintf("parallel=%d", par), at(rows[i], scaleIdx(check, len(rows[i]), lenMin(rows)))...)
	}
	r.AddNote("shape: more parallel queries converge lower/faster per iteration (paper Fig. 13); series indexed by query count")
	return r
}

// fig14 reproduces Fig. 14: discrepancy reduction under different user
// traffic, with parameters searched only at traffic 1.
func fig14(p Params) *Result {
	l := p.Lab
	params := l.CalibrationOurs().BestParams
	aug := l.Sim.WithParams(params)
	r := &Result{ID: "fig14", Title: "Sim-to-real discrepancy under user traffic (params searched at traffic 1)",
		Header: []string{"original", "ours", "reduction"}}
	for traffic := 1; traffic <= 4; traffic++ {
		var rl, so, sa []float64
		for e := 0; e < maxInt(2, l.Budget.DrEpisodes); e++ {
			rl = append(rl, l.Real.Episode(core.FullConfig(), traffic, l.rng(int64(1700+traffic*10+e))).LatenciesMs...)
			so = append(so, l.Sim.Episode(core.FullConfig(), traffic, l.rng(int64(1750+traffic*10+e))).LatenciesMs...)
			sa = append(sa, aug.Episode(core.FullConfig(), traffic, l.rng(int64(1780+traffic*10+e))).LatenciesMs...)
		}
		orig := stats.KLDivergence(rl, so)
		ours := stats.KLDivergence(rl, sa)
		r.AddRow(label("traffic", traffic), orig, ours, 1-ours/orig)
	}
	r.AddNote("paper: reductions 81.2%%, 56.7%%, 43.6%%, 61.6%% — uneven across traffic, largest at the search condition")
	return r
}

// fig15 reproduces Fig. 15: discrepancy reduction across resource
// configurations (1.0 means the calibrated simulator removed all of the
// original discrepancy).
func fig15(p Params) *Result {
	l := p.Lab
	aug := l.Sim.WithParams(l.CalibrationOurs().BestParams)
	levels := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	r := &Result{ID: "fig15", Title: "Discrepancy reduction under resources (rows: UL BW, cols: CPU; 1.0 = 100%)",
		Header: []string{"cpu10%", "cpu30%", "cpu50%", "cpu70%", "cpu90%"}}
	for _, ulFrac := range levels {
		row := make([]float64, 0, len(levels))
		for _, cpuFrac := range levels {
			cfg := slicing.Config{
				BandwidthUL:  ulFrac * l.Space.Max.BandwidthUL,
				BandwidthDL:  0.5 * l.Space.Max.BandwidthDL,
				BackhaulMbps: 0.5 * l.Space.Max.BackhaulMbps,
				CPURatio:     cpuFrac * l.Space.Max.CPURatio,
			}
			seed := l.rng(int64(1800 + int(ulFrac*100) + int(cpuFrac*10)))
			rl := l.Real.Episode(cfg, 1, seed).LatenciesMs
			orig := stats.KLDivergence(rl, l.Sim.Episode(cfg, 1, seed+1).LatenciesMs)
			ours := stats.KLDivergence(rl, aug.Episode(cfg, 1, seed+2).LatenciesMs)
			red := 0.0
			if orig > 0 {
				red = 1 - ours/orig
			}
			row = append(row, red)
		}
		r.AddRow(labelPct("ulbw", ulFrac), row...)
	}
	r.AddNote("paper: 79.3%% average reduction, positive almost everywhere but uneven")
	return r
}

// checkpoints picks up to k indices spread across [0, n).
func checkpoints(n, k int) []int {
	if n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = i * (n - 1) / maxInt(1, k-1)
	}
	return out
}

// at selects values at the given indices.
func at(xs []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		if j >= len(xs) {
			j = len(xs) - 1
		}
		out[i] = xs[j]
	}
	return out
}

// scaleIdx rescales checkpoint indices from one series length to
// another (batched runs store one entry per query, not per iteration).
func scaleIdx(idx []int, target, source int) []int {
	if source <= 1 {
		return idx
	}
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = j * (target - 1) / (source - 1)
	}
	return out
}

func lenMin(rows [][]float64) int {
	m := 1 << 30
	for _, r := range rows {
		if len(r) < m {
			m = len(r)
		}
	}
	if m == 1<<30 {
		return 0
	}
	return m
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
