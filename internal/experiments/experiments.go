// Package experiments regenerates every table and figure of the paper's
// evaluation (§2 motivation and §8). Each experiment is registered under
// the paper's artifact id (table1, fig2, …, fig26) and emits the same
// rows or series the paper reports, so `atlas-bench -run all` produces a
// complete reproduction log.
//
// Budgets come in three tiers: Quick (unit tests), Default (minutes on a
// laptop core), and Paper (the paper's iteration counts).
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Budget sets the iteration counts and pool sizes of the pipeline.
type Budget struct {
	Stage1Iters   int
	Stage1Explore int
	Stage2Iters   int
	Stage2Explore int
	OnlineIters   int
	Batch         int
	Pool          int
	OracleBudget  int
	DrEpisodes    int // episodes in the online collection D_r
	GridLevels    []float64
	SweepScale    float64 // multiplies stage budgets inside parameter sweeps
}

// QuickBudget is sized for unit tests.
func QuickBudget() Budget {
	return Budget{
		Stage1Iters: 30, Stage1Explore: 10,
		Stage2Iters: 40, Stage2Explore: 12,
		OnlineIters: 8, Batch: 2, Pool: 200,
		OracleBudget: 60, DrEpisodes: 1,
		GridLevels: []float64{0.0, 0.45, 0.9},
		SweepScale: 0.5,
	}
}

// DefaultBudget runs the full suite in tens of minutes on one core.
func DefaultBudget() Budget {
	return Budget{
		Stage1Iters: 150, Stage1Explore: 30,
		Stage2Iters: 200, Stage2Explore: 40,
		OnlineIters: 100, Batch: 4, Pool: 1500,
		OracleBudget: 400, DrEpisodes: 3,
		GridLevels: []float64{0.0, 0.3, 0.6, 0.9},
		SweepScale: 0.6,
	}
}

// PaperBudget restores the paper's §8 settings (500/1000/100 iterations,
// 16 parallel queries, 10K selection pools).
func PaperBudget() Budget {
	return Budget{
		Stage1Iters: 500, Stage1Explore: 100,
		Stage2Iters: 1000, Stage2Explore: 100,
		OnlineIters: 100, Batch: 16, Pool: 10000,
		OracleBudget: 1500, DrEpisodes: 5,
		GridLevels: []float64{0.0, 0.3, 0.6, 0.9},
		SweepScale: 1.0,
	}
}

// Params configures one experiment run.
type Params struct {
	Seed   int64
	Budget Budget
	// Lab carries shared fixtures across experiments in one process;
	// NewLab(seed, budget) builds one.
	Lab *Lab
}

// Row is one labelled series of values in a result table.
type Row struct {
	Label  string
	Values []float64
}

// Result is the reproduction of one paper artifact.
type Result struct {
	ID     string
	Title  string
	Header []string // column labels (optional)
	Rows   []Row
	Notes  []string
}

// AddRow appends a labelled series.
func (r *Result) AddRow(label string, values ...float64) {
	r.Rows = append(r.Rows, Row{Label: label, Values: values})
}

// AddNote appends a free-form observation (paper-vs-measured comments).
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Print renders the result as an aligned text table.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	labelW := 12
	for _, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
	}
	if len(r.Header) > 0 {
		fmt.Fprintf(w, "%-*s", labelW+2, "")
		for _, h := range r.Header {
			fmt.Fprintf(w, "%12s", h)
		}
		fmt.Fprintln(w)
	}
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-*s", labelW+2, row.Label)
		for _, v := range row.Values {
			fmt.Fprintf(w, "%12.4g", v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Func runs one experiment.
type Func func(p Params) *Result

var registry = map[string]Func{}
var order []string

// Register adds an experiment under its paper artifact id.
func Register(id string, f Func) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = f
	order = append(order, id)
}

// Lookup returns the experiment registered under id.
func Lookup(id string) (Func, bool) {
	f, ok := registry[strings.ToLower(id)]
	return f, ok
}

// IDs returns all registered experiment ids in registration order.
func IDs() []string {
	out := append([]string(nil), order...)
	return out
}

// SortedIDs returns ids sorted with tables first then figures by number.
func SortedIDs() []string {
	out := IDs()
	sort.Slice(out, func(i, j int) bool { return artifactKey(out[i]) < artifactKey(out[j]) })
	return out
}

func artifactKey(id string) int {
	var n int
	switch {
	case strings.HasPrefix(id, "table"):
		fmt.Sscanf(id, "table%d", &n)
		return n * 10
	case strings.HasPrefix(id, "fig"):
		fmt.Sscanf(id, "fig%d", &n)
		return n*10 + 5
	default:
		return 1 << 20
	}
}
