package experiments

import (
	"fmt"
	"sync"

	"github.com/atlas-slicing/atlas/internal/baselines"
	"github.com/atlas-slicing/atlas/internal/core"
	"github.com/atlas-slicing/atlas/internal/mathx"
	"github.com/atlas-slicing/atlas/internal/realnet"
	"github.com/atlas-slicing/atlas/internal/simnet"
	"github.com/atlas-slicing/atlas/internal/slicing"
)

// Lab owns the shared fixtures of the evaluation — the real-network
// surrogate, the simulator, the online collection D_r, calibration
// results, offline policies, oracles and grid datasets — and memoizes
// them so a full `-run all` sweep computes each expensive artifact once.
// All accessors are safe for use from a single goroutine (the bench
// harness runs experiments sequentially).
type Lab struct {
	Seed   int64
	Budget Budget

	Real  *realnet.Network
	Sim   *simnet.Simulator
	Space slicing.ConfigSpace
	SLA   slicing.SLA

	once struct {
		dr, calOurs, calGP sync.Once
	}
	dr      []float64
	calOurs *core.CalibrationResult
	calGP   *core.CalibrationResult

	policies map[string]*core.OfflineResult
	oracles  map[string]baselines.Oracle
	grids    map[int][]GridPoint
	runs     map[string][]*baselines.RunResult
}

// GridPoint is one grid-searched configuration with its measured latency
// trace; QoE labels for any threshold Y derive from the trace.
type GridPoint struct {
	Config    slicing.Config
	Latencies []float64
}

// NewLab builds a lab with fresh fixtures.
func NewLab(seed int64, budget Budget) *Lab {
	return &Lab{
		Seed:     seed,
		Budget:   budget,
		Real:     realnet.New(),
		Sim:      simnet.NewDefault(),
		Space:    slicing.DefaultConfigSpace(),
		SLA:      slicing.DefaultSLA(),
		policies: map[string]*core.OfflineResult{},
		oracles:  map[string]baselines.Oracle{},
		grids:    map[int][]GridPoint{},
		runs:     map[string][]*baselines.RunResult{},
	}
}

func (l *Lab) rng(salt int64) int64 { return mathx.ChildSeed(l.Seed, int(salt%1024)) }

// DR returns the online collection D_r (traffic 1, full resources).
func (l *Lab) DR() []float64 {
	l.once.dr.Do(func() {
		l.dr = l.Real.Collect(core.FullConfig(), 1, l.Budget.DrEpisodes, l.rng(1))
	})
	return l.dr
}

func (l *Lab) calibratorOptions() core.CalibratorOptions {
	opts := core.DefaultCalibratorOptions()
	opts.Iters = l.Budget.Stage1Iters
	opts.Explore = l.Budget.Stage1Explore
	opts.Batch = l.Budget.Batch
	opts.Pool = l.Budget.Pool
	return opts
}

// CalibrationOurs returns the stage-1 result with the BNN+PTS searcher.
func (l *Lab) CalibrationOurs() *core.CalibrationResult {
	l.once.calOurs.Do(func() {
		cal := core.NewCalibrator(l.Sim, l.DR(), l.calibratorOptions())
		l.calOurs = cal.Run(mathx.NewRNG(l.rng(2)))
	})
	return l.calOurs
}

// CalibrationGP returns the stage-1 result with the GP comparator.
func (l *Lab) CalibrationGP() *core.CalibrationResult {
	l.once.calGP.Do(func() {
		opts := l.calibratorOptions()
		opts.UseGP = true
		cal := core.NewCalibrator(l.Sim, l.DR(), opts)
		l.calGP = cal.Run(mathx.NewRNG(l.rng(3)))
	})
	return l.calGP
}

// Augmented returns the calibrated ("augmented") simulator.
func (l *Lab) Augmented() *simnet.Simulator {
	return l.Sim.WithParams(l.CalibrationOurs().BestParams)
}

// OriginalKL returns the uncalibrated simulator's discrepancy.
func (l *Lab) OriginalKL() float64 {
	cal := core.NewCalibrator(l.Sim, l.DR(), l.calibratorOptions())
	return cal.Discrepancy(slicing.DefaultSimParams())
}

func scenarioKey(traffic int, sla slicing.SLA) string {
	return fmt.Sprintf("t%d-y%.0f-e%.3f", traffic, sla.ThresholdMs, sla.Availability)
}

// Offline returns the stage-2 result for a scenario, training it in the
// augmented simulator on first use. Scenarios other than the primary
// one (traffic 1, default SLA) use the sweep-scaled budget.
func (l *Lab) Offline(traffic int, sla slicing.SLA) *core.OfflineResult {
	key := scenarioKey(traffic, sla)
	if res, ok := l.policies[key]; ok {
		return res
	}
	opts := core.DefaultOfflineOptions()
	opts.Traffic = traffic
	opts.SLA = sla
	opts.Iters = l.Budget.Stage2Iters
	opts.Explore = l.Budget.Stage2Explore
	opts.Batch = l.Budget.Batch
	opts.Pool = l.Budget.Pool
	primary := traffic == 1 && sla == slicing.DefaultSLA()
	if !primary {
		opts.Iters = scaled(opts.Iters, l.Budget.SweepScale)
		opts.Explore = scaled(opts.Explore, l.Budget.SweepScale)
	}
	res := core.NewOfflineTrainer(l.Augmented(), opts).Run(mathx.NewRNG(l.rng(int64(10 + len(key)))))
	l.policies[key] = res
	return res
}

// Oracle returns φ* for a scenario on the real network.
func (l *Lab) Oracle(traffic int, sla slicing.SLA) baselines.Oracle {
	key := scenarioKey(traffic, sla)
	if o, ok := l.oracles[key]; ok {
		return o
	}
	o := baselines.FindOracle(l.Real, l.Space, sla, traffic, l.Budget.OracleBudget, 2, l.rng(int64(100+len(key))))
	l.oracles[key] = o
	return o
}

// GridTraces returns the DLDA offline grid dataset for a traffic level,
// collected in the *uncalibrated* simulator (DLDA has no equivalent of
// Atlas's stage 1; the learning-based simulator is Atlas's own
// contribution): each grid configuration's full latency trace, so QoE
// labels can be derived for any SLA threshold.
func (l *Lab) GridTraces(traffic int) []GridPoint {
	if g, ok := l.grids[traffic]; ok {
		return g
	}
	levels := l.Budget.GridLevels
	env := l.Sim
	rng := mathx.NewRNG(l.rng(int64(200 + traffic)))
	var out []GridPoint
	u := make([]float64, slicing.ConfigDim)
	var rec func(dim int)
	rec = func(dim int) {
		if dim == slicing.ConfigDim {
			cfg := l.Space.Denormalize(append([]float64(nil), u...))
			tr := env.Episode(cfg, traffic, rng.Int63())
			out = append(out, GridPoint{Config: cfg, Latencies: tr.LatenciesMs})
			return
		}
		for _, v := range levels {
			u[dim] = v
			rec(dim + 1)
		}
	}
	rec(0)
	l.grids[traffic] = out
	return out
}

// NewDLDA builds the DLDA baseline trained on the lab's grid dataset for
// the scenario.
func (l *Lab) NewDLDA(traffic int, sla slicing.SLA, seedSalt int64) *baselines.DLDA {
	d := baselines.NewDLDA(l.Space, sla, traffic, mathx.NewRNG(l.rng(300+seedSalt)))
	grid := l.GridTraces(traffic)
	cfgs := make([]slicing.Config, len(grid))
	traces := make([][]float64, len(grid))
	for i, g := range grid {
		cfgs[i] = g.Config
		traces[i] = g.Latencies
	}
	d.TrainFromTraces(cfgs, traces, l.rng(400+seedSalt))
	return d
}

// NewAtlasLearner builds the stage-3 learner for a scenario with the
// given option overrides applied.
func (l *Lab) NewAtlasLearner(traffic int, sla slicing.SLA, seedSalt int64, mutate func(*core.OnlineOptions)) *core.OnlineLearner {
	opts := core.DefaultOnlineOptions()
	opts.Pool = l.Budget.Pool
	if mutate != nil {
		mutate(&opts)
	}
	pol := l.Offline(traffic, sla).Policy
	return core.NewOnlineLearner(pol, l.Augmented(), opts, mathx.NewRNG(l.rng(500+seedSalt)))
}

func scaled(n int, f float64) int {
	if f <= 0 {
		return n
	}
	out := int(float64(n) * f)
	if out < 10 {
		out = 10
	}
	return out
}
